// Figure 4 (motivation): memory-intensive application latency of existing
// secure containers vs OS-level containers — HVM and PVM, bare-metal and
// nested, normalized to RunC-BM. The paper's headline: nested HVM degrades
// memory-intensive applications by 28%~226%.
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workloads/mem_apps.h"

namespace cki {
namespace {

void Run() {
  std::vector<std::string> app_names;
  for (const MemAppSpec& spec : MemoryAppSuite()) {
    app_names.emplace_back(spec.name);
  }
  ReportTable latency("Figure 4: motivation, memory-intensive latency (ms)", "config", app_names);

  for (const BenchConfig& config : MotivationConfigs()) {
    std::vector<double> row;
    for (const MemAppSpec& spec : MemoryAppSuite()) {
      Testbed bed(config.kind, config.deployment);
      row.push_back(static_cast<double>(RunMemApp(bed.engine(), spec)) * 1e-6);
    }
    latency.AddRow(config.label, row);
  }
  latency.Print(std::cout, 2);
  latency.NormalizedTo("RunC-BM").Print(std::cout, 3);
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
