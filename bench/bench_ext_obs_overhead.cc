// Extension benchmark: what does observing cost? (obs self-accounting,
// DESIGN.md §11)
//
// Runs the same syscall-dense workload three ways — observability off,
// full-rate, and sampled (1 in kSampleEvery) — and measures host
// wall-clock per simulated op for each. The obs layer's own counters
// (ObsSelfStats) say exactly how many writes each mode performed, so the
// bench checks two kinds of invariant:
//
//   structural (deterministic, never flaky):
//     * simulated time is identical across all three modes — observing
//       never charges the virtual clock
//     * the sampling gate suppresses the expected fraction of writes
//       (sampled_ops == ceil(root_ops / kSampleEvery), ring writes drop
//       by at least 8x at 1-in-64 sampling)
//
//   budget (wall clock, generous margins for CI/sanitizer noise):
//     * full-rate overhead stays under kFullBudgetRatio x the obs-off
//       baseline
//     * sampled-mode overhead is a step-function below full-rate
//       (<= kSampledVsFullRatio of the full-rate overhead), unless
//       full-rate overhead is itself below the noise floor
//
// Any violated invariant exits non-zero — this is the CI gate that keeps
// "always-on telemetry" honest. --smoke shrinks the op count for
// sanitizer builds.
#include <algorithm>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>

#include "bench/bench_util.h"
#include "src/guest/syscall.h"
#include "src/metrics/report.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

constexpr uint32_t kSampleEvery = 64;
constexpr int kReps = 3;                    // min-of-reps timing
// The obs-off baseline is a very cheap simulated getpid (~tens of ns of
// host work), so even a healthy fixed per-op telemetry cost is a large
// multiple of it. 12x flags a pathological hot path (accidental O(n),
// allocation per write) without tripping on a constant-cost layer.
constexpr double kFullBudgetRatio = 12.0;   // full-rate wall <= 12x obs-off wall
constexpr double kSampledVsFullRatio = 0.6; // sampled overhead <= 60% of full
constexpr double kNoiseFloorNsPerOp = 10.0; // below this, overhead is noise

enum class Mode { kOff, kFull, kSampled };

const char* ModeName(Mode m) {
  switch (m) {
    case Mode::kOff:
      return "off";
    case Mode::kFull:
      return "full";
    case Mode::kSampled:
      return "sampled";
  }
  return "?";
}

struct ModeResult {
  double wall_ns_per_op = 0;  // min over reps
  SimNanos sim_ns = 0;        // simulated time (must match across modes)
  ObsSelfStats self;          // from the last rep
};

// One rep: a fresh testbed running `ops` cheap syscalls under `mode`.
// Returns host wall ns; fills sim/self outputs.
double RunRep(Mode mode, uint64_t ops, SimNanos* sim_ns, ObsSelfStats* self) {
  Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
  SimContext& ctx = bed.ctx();
  if (mode != Mode::kOff) {
    ctx.obs().Enable();
    ctx.obs().set_sample_every(mode == Mode::kSampled ? kSampleEvery : 1);
  }
  SyscallRequest req{.no = Sys::kGetpid};
  auto start = std::chrono::steady_clock::now();
  SimNanos sim_before = ctx.clock().now();
  for (uint64_t i = 0; i < ops; ++i) {
    bed.engine().UserSyscall(req);
  }
  *sim_ns = ctx.clock().now() - sim_before;
  auto end = std::chrono::steady_clock::now();
  if (mode != Mode::kOff) {
    ctx.obs().Disable();
    *self = ctx.obs().self_stats();
  } else {
    *self = ObsSelfStats{};
  }
  return static_cast<double>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(end - start).count());
}

ModeResult RunMode(Mode mode, uint64_t ops) {
  ModeResult r;
  double best = 0;
  for (int rep = 0; rep < kReps; ++rep) {
    SimNanos sim = 0;
    ObsSelfStats self;
    double wall = RunRep(mode, ops, &sim, &self);
    if (rep == 0 || wall < best) {
      best = wall;
    }
    r.sim_ns = sim;
    r.self = self;
  }
  r.wall_ns_per_op = best / static_cast<double>(ops);
  return r;
}

int Run(uint64_t ops, BenchObsSink* sink) {
  ModeResult off = RunMode(Mode::kOff, ops);
  ModeResult full = RunMode(Mode::kFull, ops);
  ModeResult sampled = RunMode(Mode::kSampled, ops);

  ReportTable table("Observability self-cost (" + std::to_string(ops) + " getpid ops)", "mode",
                    {"wall ns/op", "ring writes", "suppressed", "hist samples", "slo samples"});
  struct Row {
    Mode mode;
    const ModeResult* r;
  };
  const Row rows[] = {{Mode::kOff, &off}, {Mode::kFull, &full}, {Mode::kSampled, &sampled}};
  for (const Row& row : rows) {
    const ModeResult& r = *row.r;
    table.AddRow(ModeName(row.mode),
                 {r.wall_ns_per_op, static_cast<double>(r.self.ring_writes),
                  static_cast<double>(r.self.suppressed_writes),
                  static_cast<double>(r.self.hist_samples),
                  static_cast<double>(r.self.slo_samples)});
  }
  table.Print(std::cout, 1);

  double full_overhead = full.wall_ns_per_op - off.wall_ns_per_op;
  double sampled_overhead = sampled.wall_ns_per_op - off.wall_ns_per_op;
  std::cout << "\nfull-rate overhead:   " << full_overhead << " ns/op\n"
            << "sampled (1/" << kSampleEvery << ") overhead: " << sampled_overhead << " ns/op\n";

  int failures = 0;
  auto check = [&](bool ok, const std::string& what) {
    if (!ok) {
      failures++;
      std::cerr << "FAIL: " << what << "\n";
    }
  };

  // Structural invariants (deterministic).
  check(off.sim_ns == full.sim_ns && off.sim_ns == sampled.sim_ns,
        "simulated time must be identical across obs modes (off=" +
            std::to_string(off.sim_ns) + " full=" + std::to_string(full.sim_ns) +
            " sampled=" + std::to_string(sampled.sim_ns) + ")");
  uint64_t expect_sampled = (full.self.root_ops + kSampleEvery - 1) / kSampleEvery;
  check(sampled.self.root_ops == full.self.root_ops,
        "both observed modes must see the same root op count");
  check(sampled.self.sampled_ops == expect_sampled,
        "sampling gate must keep exactly ceil(root_ops/" + std::to_string(kSampleEvery) +
            ") ops (kept " + std::to_string(sampled.self.sampled_ops) + ", expected " +
            std::to_string(expect_sampled) + ")");
  check(sampled.self.ring_writes * 8 <= full.self.ring_writes,
        "1-in-" + std::to_string(kSampleEvery) +
            " sampling must cut ring writes by at least 8x (full=" +
            std::to_string(full.self.ring_writes) +
            " sampled=" + std::to_string(sampled.self.ring_writes) + ")");
  check(sampled.self.slo_samples == full.self.slo_samples,
        "SLO windows must stay at full rate under sampling");

  // Wall-clock budgets (generous: sanitizers inflate everything evenly).
  check(full.wall_ns_per_op <= kFullBudgetRatio * off.wall_ns_per_op,
        "full-rate observing must stay under " + std::to_string(kFullBudgetRatio) +
            "x the obs-off baseline");
  if (full_overhead > kNoiseFloorNsPerOp) {
    check(sampled_overhead <= kSampledVsFullRatio * full_overhead,
          "sampled-mode overhead must be a step-function below full rate");
  }

  if (sink != nullptr && sink->active()) {
    // Export the full-rate run's metrics/self stats once more for files.
    Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
    SimContext& ctx = bed.ctx();
    ctx.obs().Enable();
    ctx.obs().set_sample_every(sink->io().sample_every);
    SimNanos sim = bed.Measure([&] {
      SyscallRequest req{.no = Sys::kGetpid};
      for (uint64_t i = 0; i < ops; ++i) {
        bed.engine().UserSyscall(req);
      }
    });
    ctx.obs().Disable();
    ctx.obs().ExportSelfMetrics(ctx.obs().metrics());
    sink->AddConfig("obs_overhead", sim, ctx.obs());
  }

  std::cout << (failures == 0 ? "\nAll observability overhead invariants hold.\n"
                              : "\nERROR: observability overhead gate failed (see above).\n");
  return failures == 0 ? 0 : 1;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  uint64_t ops = 200000;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      ops = 20000;
    }
  }
  // Strip --smoke before the shared parser (it rejects unknown flags).
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") != 0) {
      args.push_back(argv[i]);
    }
  }
  cki::BenchObsSink sink(cki::BenchIo::Parse(static_cast<int>(args.size()), args.data()));
  int rc = cki::Run(ops, &sink);
  return sink.Write("ext_obs_overhead") ? rc : 1;
}
