// Extension bench: the deterministic cluster orchestrator under
// production-shaped traffic (src/orch, DESIGN.md §12).
//
// A fleet of CKI shards serves a diurnal + flash-crowd open-loop arrival
// process while seeded chaos kills whole machines and individual
// containers mid-rebalance. Two control policies run over the identical
// workload and chaos seeds:
//   * static   — replacement only: refill killed capacity, never adapt,
//   * reactive — autoscale hot shards, CKISNAP1-migrate off saturated
//                ones, reap idle containers.
// Reported per policy: SLO attainment (epochs meeting the p99 target with
// zero lost arrivals), overall request p99, cold starts per 1k requests,
// clone/migration/reap counts, chaos kills, and lost arrivals.
//
// Hard self-checks (CI runs `--smoke` in release and under ASan/UBSan;
// the process exits non-zero when any fails):
//   1. the combined cluster+control trace hash of the reactive run is
//      bit-identical at --threads 1, 2 and 8,
//   2. chaos actually struck (machine and container kills > 0) and every
//      victim was re-placed with zero leaked frames,
//   3. the reactive policy migrated off hot shards and reaped idle
//      containers, and both policies kept serving (served > 0).
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/orch/orchestrator.h"
#include "src/orch/policy.h"

namespace cki {
namespace {

OrchConfig BaseConfig(const BenchIo& io, bool smoke) {
  OrchConfig cfg;
  cfg.shards = io.ShardsOr(smoke ? 4 : 6);
  cfg.threads = io.ThreadsOr(1);
  cfg.root_seed = io.root_seed;
  cfg.epochs = smoke ? 24 : 64;
  cfg.epoch_ns = 1'000'000;       // 1 simulated ms control epochs
  cfg.slo_p99_ns = 400'000;
  cfg.initial_containers = 2;
  // Diurnal day with a 4x flash crowd; later shards run hotter so the
  // reactive policy has real imbalance to migrate away. The first two
  // slots become dead-of-night (zero traffic) so containers genuinely go
  // idle and the reap path runs every simulated day.
  cfg.arrivals = ArrivalConfig::DiurnalBurst(/*seed=*/0, /*base_rate_per_sec=*/90'000);
  cfg.arrivals.diurnal[0] = 0.0;
  cfg.arrivals.diurnal[1] = 0.0;
  cfg.shard_load_skew = 0.6;
  // Chaos: roughly one machine funeral and a handful of container kills
  // per run at the default epoch counts.
  cfg.machine_kill_rate = 0.02;
  cfg.container_kill_rate = 0.05;
  // Crash-only arms: this bench is about hard chaos + rebalancing; the
  // request resilience layer (deadlines/retries/hedges/shedding) has its
  // own controlled comparison in bench_ext_resilience.
  cfg.resil.enabled = false;
  return cfg;
}

ReactiveConfig ReactiveTuning() {
  ReactiveConfig rc;
  rc.min_containers = 1;
  rc.max_containers = 3;           // hot shards cap out and must migrate
  rc.capacity_ops_per_sec = 90'000;
  rc.reap_idle_epochs = 4;
  return rc;
}

struct PolicyOutcome {
  std::string label;
  OrchStats stats;
  uint64_t combined_hash = 0;
};

PolicyOutcome RunPolicy(const OrchConfig& cfg, const OrchPolicy& policy) {
  Orchestrator orch(cfg, policy);
  PolicyOutcome out;
  out.label = std::string(policy.name());
  out.stats = orch.Run();
  out.combined_hash = orch.CombinedHash();
  return out;
}

void WriteJsonOut(const std::string& path, const std::vector<PolicyOutcome>& outcomes,
                  const OrchConfig& cfg) {
  std::ofstream os(path);
  os << "{\"bench\":\"bench_ext_orchestrator\",\"shards\":" << cfg.shards
     << ",\"epochs\":" << cfg.epochs << ",\"epoch_ns\":" << cfg.epoch_ns
     << ",\"slo_p99_ns\":" << cfg.slo_p99_ns << ",\"policies\":[";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const OrchStats& s = outcomes[i].stats;
    os << (i > 0 ? "," : "") << "\n{\"policy\":";
    WriteJsonString(os, outcomes[i].label);
    os << ",\"requests\":" << s.requests << ",\"served\":" << s.served
       << ",\"lost\":" << s.lost << ",\"slo_attainment\":" << s.SloAttainment()
       << ",\"overall_p99_ns\":" << s.overall_p99_ns
       << ",\"cold_starts_per_1k\":" << s.ColdStartPerK() << ",\"clones\":" << s.clones
       << ",\"template_boots\":" << s.template_boots << ",\"migrations\":" << s.migrations
       << ",\"migrations_aborted\":" << s.migrations_aborted << ",\"reaps\":" << s.reaps
       << ",\"machine_kills\":" << s.machine_kills
       << ",\"container_kills\":" << s.container_kills
       << ",\"replacements\":" << s.replacements
       << ",\"leaked_frames\":" << s.leaked_frames << ",\"combined_hash\":\"0x" << std::hex
       << outcomes[i].combined_hash << std::dec << "\"}";
  }
  os << "\n]}\n";
  os.flush();
  std::cerr << (os ? "wrote " : "error: could not write ") << path << "\n";
}

int Run(const BenchIo& io, bool smoke) {
  const OrchConfig cfg = BaseConfig(io, smoke);
  int rc = 0;

  StaticPolicy static_policy(cfg.initial_containers);
  ReactivePolicy reactive_policy(ReactiveTuning());
  std::vector<PolicyOutcome> outcomes;
  outcomes.push_back(RunPolicy(cfg, static_policy));
  outcomes.push_back(RunPolicy(cfg, reactive_policy));

  ReportTable table("Orchestrated fleet under diurnal+burst traffic with chaos, " +
                        std::to_string(cfg.shards) + " shards x " +
                        std::to_string(cfg.epochs) + " epochs",
                    "policy",
                    {"SLO att %", "p99 us", "cold/1k req", "clones", "migrations", "reaps",
                     "kills", "lost"});
  for (const PolicyOutcome& out : outcomes) {
    const OrchStats& s = out.stats;
    table.AddRow(out.label,
                 {100.0 * s.SloAttainment(), static_cast<double>(s.overall_p99_ns) * 1e-3,
                  s.ColdStartPerK(), static_cast<double>(s.clones),
                  static_cast<double>(s.migrations), static_cast<double>(s.reaps),
                  static_cast<double>(s.machine_kills + s.container_kills),
                  static_cast<double>(s.lost)},
                 /*weight=*/s.requests > 0 ? s.requests : 1);
  }
  table.Print(std::cout, 2);

  // --- hard self-checks -----------------------------------------------------

  // 1. Control-plane determinism: the combined cluster+control hash of
  //    the reactive configuration is bit-identical at any thread count.
  std::cout << "determinism: reactive combined hash across --threads {1,2,8}:";
  uint64_t want_hash = 0;
  bool hash_ok = true;
  for (uint32_t threads : {1u, 2u, 8u}) {
    OrchConfig tcfg = cfg;
    tcfg.threads = threads;
    Orchestrator orch(tcfg, reactive_policy);
    orch.Run();
    uint64_t h = orch.CombinedHash();
    std::cout << " 0x" << std::hex << h << std::dec;
    if (threads == 1) {
      want_hash = h;
    } else if (h != want_hash) {
      hash_ok = false;
    }
  }
  std::cout << "\n";
  if (!hash_ok) {
    std::cout << "FAIL: cluster+control trace hash diverged across thread counts\n";
    rc = 1;
  } else {
    std::cout << "determinism: OK (bit-identical at 1, 2 and 8 threads)\n";
  }

  // 2. Chaos struck and every victim was re-placed without leaking.
  for (const PolicyOutcome& out : outcomes) {
    const OrchStats& s = out.stats;
    if (s.machine_kills == 0 || s.container_kills == 0) {
      std::cout << "FAIL: " << out.label << " saw no chaos (machine_kills="
                << s.machine_kills << ", container_kills=" << s.container_kills << ")\n";
      rc = 1;
    }
    if (s.leaked_frames != 0) {
      std::cout << "FAIL: " << out.label << " leaked " << s.leaked_frames
                << " frames across kills/reaps/migrations\n";
      rc = 1;
    }
    if (s.replacements == 0) {
      std::cout << "FAIL: " << out.label << " never re-placed killed capacity\n";
      rc = 1;
    }
    if (s.served == 0 || s.requests != s.served + s.lost) {
      std::cout << "FAIL: " << out.label << " request accounting broken (requests="
                << s.requests << ", served=" << s.served << ", lost=" << s.lost << ")\n";
      rc = 1;
    }
  }

  // 3. The reactive policy actually adapted: migrations and reaps > 0.
  const OrchStats& reactive = outcomes[1].stats;
  if (reactive.migrations == 0) {
    std::cout << "FAIL: reactive policy performed no live migrations\n";
    rc = 1;
  }
  if (reactive.reaps == 0) {
    std::cout << "FAIL: reactive policy never reaped idle capacity\n";
    rc = 1;
  }
  if (rc == 0) {
    std::cout << "chaos overlap: OK (" << reactive.machine_kills << " machine + "
              << reactive.container_kills << " container kills re-placed, "
              << reactive.migrations << " migrations, " << reactive.reaps
              << " reaps, 0 leaked frames)\n";
  }

  if (!io.json_out.empty()) {
    WriteJsonOut(io.json_out, outcomes, cfg);
  }
  if (!io.metrics_csv.empty()) {
    std::ofstream os(io.metrics_csv);
    MetricsRegistry::WriteCsvHeader(os);
    for (const OrchPolicy* p :
         std::initializer_list<const OrchPolicy*>{&static_policy, &reactive_policy}) {
      Orchestrator orch(cfg, *p);
      orch.Run();
      orch.metrics().WriteCsvRows(os, p->name());
    }
    os.flush();
    std::cerr << (os ? "wrote " : "error: could not write ") << io.metrics_csv << "\n";
  }
  return rc;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  // Strip --smoke before BenchIo sees (and rejects) it.
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  return cki::Run(cki::BenchIo::Parse(static_cast<int>(args.size()), args.data()), smoke);
}
