// Shared helpers for the per-figure/table benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <cstdint>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "src/obs/json_util.h"
#include "src/obs/trace_export.h"
#include "src/runtime/runtime.h"

namespace cki {

struct BenchConfig {
  std::string label;
  RuntimeKind kind;
  Deployment deployment;
};

// Figure 4/5 (motivation): secure containers vs RunC, without CKI.
inline std::vector<BenchConfig> MotivationConfigs() {
  return {
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"PVM-NST", RuntimeKind::kPvm, Deployment::kNested},
      {"RunC-BM", RuntimeKind::kRunc, Deployment::kBareMetal},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM-BM", RuntimeKind::kPvm, Deployment::kBareMetal},
  };
}

// Figure 12 main configurations.
inline std::vector<BenchConfig> Fig12Configs() {
  return {
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
      {"RunC", RuntimeKind::kRunc, Deployment::kBareMetal},
  };
}

// Figure 11 / Figure 14 configurations (bare-metal).
inline std::vector<BenchConfig> BareMetalConfigs() {
  return {
      {"RunC", RuntimeKind::kRunc, Deployment::kBareMetal},
      {"HVM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
  };
}

// Figure 16 configurations.
inline std::vector<BenchConfig> Fig16Configs() {
  return {
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"PVM-BM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"PVM-NST", RuntimeKind::kPvm, Deployment::kNested},
      {"CKI-BM", RuntimeKind::kCki, Deployment::kBareMetal},
      {"CKI-NST", RuntimeKind::kCki, Deployment::kNested},
  };
}

// Options shared by all bench binaries — the one consolidated usage block
// (every IO flag every bench accepts lives here; keep it in sync with
// Parse below and the error message it prints).
//
// Observability output:
//   --json-out=<file>     machine-readable per-config metrics dump
//   --trace-out=<file>    merged Chrome trace-event file (Perfetto-loadable;
//                         includes causal request flows, DESIGN.md §11)
//   --metrics-csv=<file>  flat CSV of every counter/histogram per config
//                         (spreadsheet-ready companion of --json-out)
//
// Telemetry cost control (DESIGN.md §11):
//   --sample-every=<n>    keep recorder/span/histogram writes for 1 in n
//                         root operations (default 1 = full rate; SLO
//                         windows and self-accounting stay always-on).
//                         Never changes simulated time or trace hashes.
//
// Cluster scale-out (benches built on SimCluster, DESIGN.md §9):
//   --shards=<n>          independent simulated machines (0: bench default)
//   --threads=<n>         worker OS threads (0: bench default; results are
//                         identical at any value — threads change
//                         wall-clock time only)
//   --root-seed=<n>       root of the deterministic per-shard seed split
struct BenchIo {
  std::string json_out;
  std::string trace_out;
  std::string metrics_csv;
  uint32_t sample_every = 1;  // 1: full rate
  uint32_t shards = 0;        // 0: bench-specific default
  uint32_t threads = 0;       // 0: bench-specific default
  uint64_t root_seed = 1;

  bool observing() const {
    return !json_out.empty() || !trace_out.empty() || !metrics_csv.empty();
  }

  // The shard/thread counts to actually run with, given bench defaults.
  uint32_t ShardsOr(uint32_t fallback) const { return shards != 0 ? shards : fallback; }
  uint32_t ThreadsOr(uint32_t fallback) const { return threads != 0 ? threads : fallback; }

  static BenchIo Parse(int argc, char** argv) {
    BenchIo io;
    for (int i = 1; i < argc; ++i) {
      std::string_view arg = argv[i];
      if (arg.rfind("--json-out=", 0) == 0) {
        io.json_out = arg.substr(std::string_view("--json-out=").size());
      } else if (arg.rfind("--trace-out=", 0) == 0) {
        io.trace_out = arg.substr(std::string_view("--trace-out=").size());
      } else if (arg.rfind("--metrics-csv=", 0) == 0) {
        io.metrics_csv = arg.substr(std::string_view("--metrics-csv=").size());
      } else if (arg.rfind("--sample-every=", 0) == 0) {
        io.sample_every = ParseUint(arg.substr(std::string_view("--sample-every=").size()));
        if (io.sample_every == 0) {
          io.sample_every = 1;
        }
      } else if (arg.rfind("--shards=", 0) == 0) {
        io.shards = ParseUint(arg.substr(std::string_view("--shards=").size()));
      } else if (arg.rfind("--threads=", 0) == 0) {
        io.threads = ParseUint(arg.substr(std::string_view("--threads=").size()));
      } else if (arg.rfind("--root-seed=", 0) == 0) {
        io.root_seed = ParseUint64(arg.substr(std::string_view("--root-seed=").size()));
      } else {
        std::cerr << "unknown argument: " << arg
                  << " (supported: --json-out=<file> --trace-out=<file>"
                     " --metrics-csv=<file> --sample-every=<n>"
                     " --shards=<n> --threads=<n> --root-seed=<n>)\n";
      }
    }
    return io;
  }

 private:
  static uint64_t ParseUint64(std::string_view s) {
    uint64_t v = 0;
    for (char c : s) {
      if (c < '0' || c > '9') {
        std::cerr << "bad numeric argument value: " << s << "\n";
        return 0;
      }
      v = v * 10 + static_cast<uint64_t>(c - '0');
    }
    return v;
  }
  static uint32_t ParseUint(std::string_view s) { return static_cast<uint32_t>(ParseUint64(s)); }
};

// Accumulates the observability output of several measured configurations
// (one Testbed each) and writes the merged files on Write(). Each config
// becomes one JSON entry and one trace process track.
class BenchObsSink {
 public:
  explicit BenchObsSink(BenchIo io) : io_(std::move(io)) {}

  bool active() const { return io_.observing(); }
  const BenchIo& io() const { return io_; }

  // Captures one configuration after its measured region: `total_ns` is the
  // raw end-to-end simulated time of the measured region; `obs` holds the
  // spans/metrics/records collected during it.
  void AddConfig(std::string_view label, SimNanos total_ns, const Observability& obs) {
    if (!active()) {
      return;
    }
    std::ostringstream json;
    json << "{\"label\":";
    WriteJsonString(json, label);
    json << ",\"total_ns\":" << total_ns << ",\"obs\":";
    obs.WriteJson(json);
    json << "}";
    config_json_.push_back(json.str());
    std::ostringstream trace;
    WriteChromeTraceEvents(obs, static_cast<uint32_t>(config_json_.size()), label, &trace_first_,
                           trace);
    trace_events_ << trace.str();
    if (obs.has_data()) {
      // The CSV gets the registry plus the per-container SLO gauges, so
      // rolling p99/rate/fault columns land next to the raw counters.
      MetricsRegistry with_slo = obs.metrics();
      obs.ExportSloMetrics(with_slo);
      with_slo.WriteCsvRows(csv_rows_, label);
    }
  }

  // Writes the requested files; call once after all configs ran. Returns
  // false (and reports on stderr) if any requested file could not be written.
  bool Write(std::string_view bench_name) {
    bool ok = true;
    if (!io_.json_out.empty()) {
      std::ofstream os(io_.json_out);
      os << "{\"bench\":";
      WriteJsonString(os, bench_name);
      os << ",\"configs\":[";
      for (size_t i = 0; i < config_json_.size(); ++i) {
        os << (i > 0 ? ",\n" : "\n") << config_json_[i];
      }
      os << "\n]}\n";
      ok &= ReportWrite(os, io_.json_out);
    }
    if (!io_.trace_out.empty()) {
      std::ofstream os(io_.trace_out);
      os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n"
         << trace_events_.str() << "\n]}\n";
      ok &= ReportWrite(os, io_.trace_out);
    }
    if (!io_.metrics_csv.empty()) {
      std::ofstream os(io_.metrics_csv);
      MetricsRegistry::WriteCsvHeader(os);
      os << csv_rows_.str();
      ok &= ReportWrite(os, io_.metrics_csv);
    }
    return ok;
  }

 private:
  static bool ReportWrite(std::ofstream& os, const std::string& path) {
    os.flush();
    if (!os) {
      std::cerr << "error: could not write " << path << "\n";
      return false;
    }
    std::cerr << "wrote " << path << "\n";
    return true;
  }

  BenchIo io_;
  std::vector<std::string> config_json_;
  std::ostringstream trace_events_;
  std::ostringstream csv_rows_;
  bool trace_first_ = true;
};

}  // namespace cki

#endif  // BENCH_BENCH_UTIL_H_
