// Shared helpers for the per-figure/table benchmark binaries.
#ifndef BENCH_BENCH_UTIL_H_
#define BENCH_BENCH_UTIL_H_

#include <string>
#include <vector>

#include "src/runtime/runtime.h"

namespace cki {

struct BenchConfig {
  std::string label;
  RuntimeKind kind;
  Deployment deployment;
};

// Figure 4/5 (motivation): secure containers vs RunC, without CKI.
inline std::vector<BenchConfig> MotivationConfigs() {
  return {
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"PVM-NST", RuntimeKind::kPvm, Deployment::kNested},
      {"RunC-BM", RuntimeKind::kRunc, Deployment::kBareMetal},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM-BM", RuntimeKind::kPvm, Deployment::kBareMetal},
  };
}

// Figure 12 main configurations.
inline std::vector<BenchConfig> Fig12Configs() {
  return {
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
      {"RunC", RuntimeKind::kRunc, Deployment::kBareMetal},
  };
}

// Figure 11 / Figure 14 configurations (bare-metal).
inline std::vector<BenchConfig> BareMetalConfigs() {
  return {
      {"RunC", RuntimeKind::kRunc, Deployment::kBareMetal},
      {"HVM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
  };
}

// Figure 16 configurations.
inline std::vector<BenchConfig> Fig16Configs() {
  return {
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"PVM-BM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"PVM-NST", RuntimeKind::kPvm, Deployment::kNested},
      {"CKI-BM", RuntimeKind::kCki, Deployment::kBareMetal},
      {"CKI-NST", RuntimeKind::kCki, Deployment::kNested},
  };
}

}  // namespace cki

#endif  // BENCH_BENCH_UTIL_H_
