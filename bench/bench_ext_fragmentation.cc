// Extension bench: the memory-utilization cost of CKI's contiguous-segment
// delegation — the limitation the paper states in section 4.3 ("allocating
// contiguous physical memory segments ... may result in low memory
// utilization due to memory fragmentation"). Compares host physical memory
// committed per container for page-granular designs vs segment delegation,
// across container working-set sizes.
#include <iostream>

#include "src/cki/cki_engine.h"
#include "src/metrics/report.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

// Frames a container actually dirties for a given working set, vs frames
// the host had to commit to it.
void Run() {
  const int working_sets[] = {64, 256, 1024, 4096};  // pages actually used
  std::vector<std::string> cols;
  for (int ws : working_sets) {
    cols.push_back(std::to_string(ws * 4) + "KiB used");
  }
  ReportTable committed("Host frames committed per container", "design", cols);
  ReportTable utilization("Memory utilization (%)", "design", cols);

  // Page-granular designs allocate on demand.
  for (RuntimeKind kind : {RuntimeKind::kRunc, RuntimeKind::kHvm, RuntimeKind::kPvm}) {
    std::vector<double> committed_row;
    std::vector<double> util_row;
    for (int ws : working_sets) {
      Machine machine(MachineConfigFor(kind, Deployment::kBareMetal));
      auto engine = MakeEngine(machine, kind);
      engine->Boot();
      uint64_t before = machine.frames().allocated_frames();
      uint64_t base = engine->MmapAnon(static_cast<uint64_t>(ws) * kPageSize, false);
      for (int i = 0; i < ws; ++i) {
        engine->UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
      }
      double frames = static_cast<double>(machine.frames().allocated_frames() - before);
      committed_row.push_back(frames);
      util_row.push_back(100.0 * ws / frames);
    }
    committed.AddRow(std::string(RuntimeKindName(kind)), committed_row);
    utilization.AddRow(std::string(RuntimeKindName(kind)), util_row);
  }
  // CKI commits its delegated segment up front (sized for the container's
  // peak, here 4096 pages + kernel overhead).
  {
    std::vector<double> committed_row;
    std::vector<double> util_row;
    for (int ws : working_sets) {
      Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
      CkiEngine engine(machine, CkiAblation::kNone, /*segment_pages=*/4608);
      uint64_t before = machine.frames().allocated_frames();
      engine.Boot();
      uint64_t base = engine.MmapAnon(static_cast<uint64_t>(ws) * kPageSize, false);
      for (int i = 0; i < ws; ++i) {
        engine.UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
      }
      double frames = static_cast<double>(machine.frames().allocated_frames() - before);
      committed_row.push_back(frames);
      util_row.push_back(100.0 * ws / frames);
    }
    committed.AddRow("CKI (4.5K-page segment)", committed_row);
    utilization.AddRow("CKI (4.5K-page segment)", util_row);
  }

  committed.Print(std::cout, 0);
  utilization.Print(std::cout, 1);
  std::cout << "The paper's stated limitation, quantified: a mostly-idle CKI container\n"
               "holds its whole delegated segment, while demand-paged designs commit\n"
               "only the working set (plus table/shadow overhead).\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
