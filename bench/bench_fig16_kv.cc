// Figure 16: throughput of memcached and Redis under memtier-style load
// with varying client counts, across HVM/PVM/CKI in bare-metal and nested
// deployments. Claim C3: CKI-NST reaches 6.8x HVM-NST on memcached and 2.0x
// on Redis; CKI beats PVM by 1.8x/1.5x (memcached BM/NST) and 1.4x/1.3x
// (Redis).
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workloads/kv_store.h"

namespace cki {
namespace {

void RunKind(KvKind kind, const char* title, const char* tag, BenchObsSink* sink) {
  const int client_counts[] = {1, 2, 4, 8, 16, 32, 64};
  std::vector<std::string> cols;
  for (int c : client_counts) {
    cols.push_back(std::to_string(c) + " clients");
  }
  ReportTable tput(title, "config", cols);

  std::vector<BenchConfig> configs = Fig16Configs();
  configs.insert(configs.begin(),
                 BenchConfig{"RunC-BM", RuntimeKind::kRunc, Deployment::kBareMetal});
  for (const BenchConfig& config : configs) {
    std::vector<double> row;
    for (int clients : client_counts) {
      Testbed bed(config.kind, config.deployment);
      if (sink != nullptr && sink->active()) {
        bed.ctx().obs().Enable();
        bed.ctx().obs().set_owner(bed.engine().id());
      }
      KvConfig kv{.kind = kind, .clients = clients, .total_requests = 4000};
      SimNanos t0 = bed.ctx().clock().now();
      row.push_back(RunKvBenchmark(bed.engine(), kv).requests_per_sec * 1e-3);
      if (sink != nullptr && sink->active()) {
        bed.ctx().obs().Disable();
        // The workload exported its NIC/switch counters into the metrics
        // registry before tearing the network down.
        sink->AddConfig(std::string(tag) + "/" + config.label + "/c" +
                            std::to_string(clients),
                        bed.ctx().clock().now() - t0, bed.ctx().obs());
      }
    }
    tput.AddRow(config.label, row);
  }
  tput.Print(std::cout, 1);

  size_t last = std::size(client_counts) - 1;
  std::cout << "Saturated ratios (64 clients): CKI-NST/HVM-NST = "
            << tput.ValueAt("CKI-NST", last) / tput.ValueAt("HVM-NST", last)
            << "x, CKI-BM/PVM-BM = "
            << tput.ValueAt("CKI-BM", last) / tput.ValueAt("PVM-BM", last)
            << "x, CKI-NST/PVM-NST = "
            << tput.ValueAt("CKI-NST", last) / tput.ValueAt("PVM-NST", last) << "x\n\n";
}

void Run(BenchObsSink* sink) {
  RunKind(KvKind::kMemcached, "Figure 16a: memcached throughput (kreq/s)", "memcached",
          sink);
  RunKind(KvKind::kRedis, "Figure 16b: Redis throughput (kreq/s)", "redis", sink);
  std::cout << "Paper: memcached CKI-NST/HVM-NST 6.8x, CKI/PVM 1.8x (BM) 1.5x (NST);\n"
               "Redis CKI-NST/HVM-NST 2.0x, CKI/PVM 1.4x (BM) 1.3x (NST).\n";
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  cki::BenchObsSink sink(cki::BenchIo::Parse(argc, argv));
  cki::Run(&sink);
  return sink.Write("fig16_kv") ? 0 : 1;
}
