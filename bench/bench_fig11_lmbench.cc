// Figure 11: lmbench micro-operations under RunC, HVM, CKI, PVM
// (bare-metal), normalized to RunC. Expected shape: HVM ~= RunC (no VM
// exits on these paths); PVM pays syscall redirection (short syscalls ~2x),
// shadow paging (page fault, fork), and hypercall-based context switching;
// CKI adds only cheap KSM calls.
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workloads/lmbench.h"

namespace cki {
namespace {

void Run() {
  std::vector<std::string> op_names;
  for (LmbenchOp op : LmbenchSuite()) {
    op_names.emplace_back(LmbenchOpName(op));
  }
  ReportTable latency("Figure 11: lmbench latency (ns)", "config", op_names);

  for (const BenchConfig& config : BareMetalConfigs()) {
    std::vector<double> row;
    for (LmbenchOp op : LmbenchSuite()) {
      // Fresh testbed per op: fork-based ops leave extra processes behind.
      Testbed bed(config.kind, config.deployment);
      row.push_back(static_cast<double>(RunLmbenchOp(bed.engine(), op)));
    }
    latency.AddRow(config.label, row);
  }
  latency.Print(std::cout, 0);
  latency.NormalizedTo("RunC").Print(std::cout, 2);
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
