// Figure 13: secure-container overhead (vs RunC) as workload parameters
// shift the page-fault intensity: (a) BTree lookup/insert ratio — overhead
// falls as lookups dominate; (b) XSBench particle count — overhead falls as
// the calculation phase grows relative to fault-heavy initialization.
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workloads/mem_apps.h"

namespace cki {
namespace {

double OverheadPct(RuntimeKind kind, Deployment dep, double runc_ns, double measured_ns) {
  (void)kind;
  (void)dep;
  return (measured_ns / runc_ns - 1.0) * 100.0;
}

void Run() {
  const std::vector<BenchConfig> configs = {
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
  };

  // (a) BTree: lookup:insert ratio sweep.
  const double ratios[] = {0.5, 1, 2, 4, 8, 16};
  std::vector<std::string> ratio_labels;
  for (double r : ratios) {
    ratio_labels.push_back("L/I=" + std::to_string(r).substr(0, 4));
  }
  ReportTable btree("Figure 13a: BTree overhead vs RunC (%)", "config", ratio_labels);
  std::vector<double> runc_base;
  for (double r : ratios) {
    Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
    runc_base.push_back(static_cast<double>(RunBtreeRatio(bed.engine(), r)));
  }
  for (const BenchConfig& config : configs) {
    std::vector<double> row;
    for (size_t i = 0; i < std::size(ratios); ++i) {
      Testbed bed(config.kind, config.deployment);
      double ns = static_cast<double>(RunBtreeRatio(bed.engine(), ratios[i]));
      row.push_back(OverheadPct(config.kind, config.deployment, runc_base[i], ns));
    }
    btree.AddRow(config.label, row);
  }
  btree.Print(std::cout, 1);

  // (b) XSBench: particle-count sweep.
  const int particles[] = {2000, 5000, 10000, 20000, 40000};
  std::vector<std::string> particle_labels;
  for (int p : particles) {
    particle_labels.push_back(std::to_string(p) + "p");
  }
  ReportTable xs("Figure 13b: XSBench overhead vs RunC (%)", "config", particle_labels);
  std::vector<double> runc_xs;
  for (int p : particles) {
    Testbed bed(RuntimeKind::kRunc, Deployment::kBareMetal);
    runc_xs.push_back(static_cast<double>(RunXsbenchParticles(bed.engine(), p)));
  }
  for (const BenchConfig& config : configs) {
    std::vector<double> row;
    for (size_t i = 0; i < std::size(particles); ++i) {
      Testbed bed(config.kind, config.deployment);
      double ns = static_cast<double>(RunXsbenchParticles(bed.engine(), particles[i]));
      row.push_back(OverheadPct(config.kind, config.deployment, runc_xs[i], ns));
    }
    xs.AddRow(config.label, row);
  }
  xs.Print(std::cout, 1);
  std::cout << "Expected: overhead decreases left to right for every secure container;\n"
               "CKI stays low and flat across parameters (sec 7.2).\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
