// Figure 13: secure-container overhead (vs RunC) as workload parameters
// shift the page-fault intensity: (a) BTree lookup/insert ratio — overhead
// falls as lookups dominate; (b) XSBench particle count — overhead falls as
// the calculation phase grows relative to fault-heavy initialization.
//
// Scale-out: every (config, parameter) cell is an independent simulated
// machine, so the whole sweep runs as one SimCluster over `--threads`
// workers (DESIGN.md §9). Cell results are merged in cell order, so the
// tables and the determinism hash are identical at any thread count.
//
// The cell list and per-cell body live in bench/fig13_cells.h, shared with
// bench_ext_simspeed so the raw-speed gate pins the hash of *this* sweep.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig13_cells.h"
#include "src/cluster/sim_cluster.h"
#include "src/metrics/report.h"
#include "src/workloads/mem_apps.h"

namespace cki {
namespace {

double OverheadPct(double runc_ns, double measured_ns) {
  return (measured_ns / runc_ns - 1.0) * 100.0;
}

void Run(const BenchIo& io) {
  const std::vector<BenchConfig> configs = {
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
  };
  const std::vector<Fig13Cell> cells = Fig13CellList();

  ClusterConfig cc;
  cc.shards = static_cast<uint32_t>(cells.size());
  cc.threads = io.ThreadsOr(1);
  cc.root_seed = io.root_seed;
  SimCluster cluster(cc);

  ClusterResult result = cluster.Run([&cells](const ShardTask& task) {
    return RunFig13Cell(cells[task.index]);
  });

  // Reassemble the tables from the flat cell results.
  auto cell_ns = [&](const std::string& label, Fig13App app, double param) {
    for (size_t i = 0; i < cells.size(); ++i) {
      const Fig13Cell& cell = cells[i];
      if (cell.label == label && cell.app == app && cell.param == param) {
        return result.shards()[i].values.at("ns");
      }
    }
    return 0.0;
  };

  size_t n_ratios = 0;
  const double* ratios = Fig13Ratios(&n_ratios);
  std::vector<std::string> ratio_labels;
  for (size_t i = 0; i < n_ratios; ++i) {
    ratio_labels.push_back("L/I=" + std::to_string(ratios[i]).substr(0, 4));
  }
  ReportTable btree("Figure 13a: BTree overhead vs RunC (%)", "config", ratio_labels);
  for (const BenchConfig& config : configs) {
    std::vector<double> row;
    for (size_t i = 0; i < n_ratios; ++i) {
      row.push_back(OverheadPct(cell_ns("RunC", Fig13App::kBtree, ratios[i]),
                                cell_ns(config.label, Fig13App::kBtree, ratios[i])));
    }
    btree.AddRow(config.label, row);
  }
  btree.Print(std::cout, 1);

  size_t n_particles = 0;
  const int* particles = Fig13Particles(&n_particles);
  std::vector<std::string> particle_labels;
  for (size_t i = 0; i < n_particles; ++i) {
    particle_labels.push_back(std::to_string(particles[i]) + "p");
  }
  ReportTable xs("Figure 13b: XSBench overhead vs RunC (%)", "config", particle_labels);
  for (const BenchConfig& config : configs) {
    std::vector<double> row;
    for (size_t i = 0; i < n_particles; ++i) {
      double p = static_cast<double>(particles[i]);
      row.push_back(OverheadPct(cell_ns("RunC", Fig13App::kXsbench, p),
                                cell_ns(config.label, Fig13App::kXsbench, p)));
    }
    xs.AddRow(config.label, row);
  }
  xs.Print(std::cout, 1);

  std::cout << "cluster: " << cells.size() << " cells, " << cluster.config().threads
            << " threads, root-seed=" << cc.root_seed << "\n";
  std::cout << "determinism-hash: 0x" << std::hex << result.trace_hash() << std::dec << "\n";
  std::cout << "Expected: overhead decreases left to right for every secure container;\n"
               "CKI stays low and flat across parameters (sec 7.2).\n";
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  cki::Run(cki::BenchIo::Parse(argc, argv));
  return 0;
}
