// Figure 13: secure-container overhead (vs RunC) as workload parameters
// shift the page-fault intensity: (a) BTree lookup/insert ratio — overhead
// falls as lookups dominate; (b) XSBench particle count — overhead falls as
// the calculation phase grows relative to fault-heavy initialization.
//
// Scale-out: every (config, parameter) cell is an independent simulated
// machine, so the whole sweep runs as one SimCluster over `--threads`
// workers (DESIGN.md §9). Cell results are merged in cell order, so the
// tables and the determinism hash are identical at any thread count.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/sim_cluster.h"
#include "src/metrics/report.h"
#include "src/workloads/mem_apps.h"

namespace cki {
namespace {

enum class SweepApp : uint8_t { kBtree, kXsbench };

// One independent simulated machine of the sweep.
struct Cell {
  std::string label;  // config label ("RunC" rows are the baselines)
  RuntimeKind kind;
  Deployment deployment;
  SweepApp app;
  double param;  // lookup/insert ratio or particle count
};

double OverheadPct(double runc_ns, double measured_ns) {
  return (measured_ns / runc_ns - 1.0) * 100.0;
}

void Run(const BenchIo& io) {
  const std::vector<BenchConfig> configs = {
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
  };
  const double ratios[] = {0.5, 1, 2, 4, 8, 16};
  const int particles[] = {2000, 5000, 10000, 20000, 40000};

  // Build the cell list: RunC baselines first, then every config, for
  // both sweeps. Cell order is the merge order and never depends on the
  // thread count.
  std::vector<Cell> cells;
  auto add_sweep = [&cells, &configs](SweepApp app, const double* params, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      cells.push_back({"RunC", RuntimeKind::kRunc, Deployment::kBareMetal, app, params[i]});
    }
    for (const BenchConfig& config : configs) {
      for (size_t i = 0; i < n; ++i) {
        cells.push_back({config.label, config.kind, config.deployment, app, params[i]});
      }
    }
  };
  add_sweep(SweepApp::kBtree, ratios, std::size(ratios));
  std::vector<double> particle_params(std::begin(particles), std::end(particles));
  add_sweep(SweepApp::kXsbench, particle_params.data(), particle_params.size());

  ClusterConfig cc;
  cc.shards = static_cast<uint32_t>(cells.size());
  cc.threads = io.ThreadsOr(1);
  cc.root_seed = io.root_seed;
  SimCluster cluster(cc);

  ClusterResult result = cluster.Run([&cells](const ShardTask& task) {
    const Cell& cell = cells[task.index];
    ShardResult r;
    Testbed bed(cell.kind, cell.deployment);
    SimNanos ns = cell.app == SweepApp::kBtree
                      ? RunBtreeRatio(bed.engine(), cell.param)
                      : RunXsbenchParticles(bed.engine(), static_cast<int>(cell.param));
    r.sim_ns = bed.ctx().clock().now();
    r.values["ns"] = static_cast<double>(ns);
    r.HashMix(ns);
    return r;
  });

  // Reassemble the tables from the flat cell results.
  auto cell_ns = [&](const std::string& label, SweepApp app, double param) {
    for (size_t i = 0; i < cells.size(); ++i) {
      const Cell& cell = cells[i];
      if (cell.label == label && cell.app == app && cell.param == param) {
        return result.shards()[i].values.at("ns");
      }
    }
    return 0.0;
  };

  std::vector<std::string> ratio_labels;
  for (double r : ratios) {
    ratio_labels.push_back("L/I=" + std::to_string(r).substr(0, 4));
  }
  ReportTable btree("Figure 13a: BTree overhead vs RunC (%)", "config", ratio_labels);
  for (const BenchConfig& config : configs) {
    std::vector<double> row;
    for (double ratio : ratios) {
      row.push_back(OverheadPct(cell_ns("RunC", SweepApp::kBtree, ratio),
                                cell_ns(config.label, SweepApp::kBtree, ratio)));
    }
    btree.AddRow(config.label, row);
  }
  btree.Print(std::cout, 1);

  std::vector<std::string> particle_labels;
  for (int p : particles) {
    particle_labels.push_back(std::to_string(p) + "p");
  }
  ReportTable xs("Figure 13b: XSBench overhead vs RunC (%)", "config", particle_labels);
  for (const BenchConfig& config : configs) {
    std::vector<double> row;
    for (double p : particle_params) {
      row.push_back(OverheadPct(cell_ns("RunC", SweepApp::kXsbench, p),
                                cell_ns(config.label, SweepApp::kXsbench, p)));
    }
    xs.AddRow(config.label, row);
  }
  xs.Print(std::cout, 1);

  std::cout << "cluster: " << cells.size() << " cells, " << cluster.config().threads
            << " threads, root-seed=" << cc.root_seed << "\n";
  std::cout << "determinism-hash: 0x" << std::hex << result.trace_hash() << std::dec << "\n";
  std::cout << "Expected: overhead decreases left to right for every secure container;\n"
               "CKI stays low and flat across parameters (sec 7.2).\n";
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  cki::Run(cki::BenchIo::Parse(argc, argv));
  return 0;
}
