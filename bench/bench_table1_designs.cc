// Table 1 / Figure 3: the design-space exploration of VM-level container
// architectures. Every design is implemented; the qualitative cells of
// Table 1 are backed by measured datapoints (syscall / page fault /
// host-request latency, bare-metal and nested) and by demonstrated
// security/compatibility probes.
#include <iostream>

#include "src/metrics/report.h"
#include "src/runtime/runtime.h"
#include "src/virt/libos_engine.h"

namespace cki {
namespace {

SimNanos SyscallNs(Testbed& bed) {
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  constexpr int kIters = 64;
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kIters; ++i) {
      bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    }
  });
  return total / kIters;
}

SimNanos FaultNs(Testbed& bed) {
  constexpr int kPages = 64;
  uint64_t base = bed.engine().MmapAnon(kPages * kPageSize, false);
  bed.engine().UserTouch(base, true);
  SimNanos total = bed.Measure([&] {
    for (int i = 1; i < kPages; ++i) {
      bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
    }
  });
  return total / (kPages - 1);
}

SimNanos HostReqNs(Testbed& bed) {
  constexpr int kIters = 64;
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kIters; ++i) {
      bed.engine().GuestHypercall(HypercallOp::kNop);
    }
  });
  return total / kIters;
}

void Run() {
  ReportTable table("Table 1 (quantified): VM-level container designs", "design",
                    {"syscall ns", "pgfault BM ns", "pgfault NST ns", "host-req NST ns"});

  struct Design {
    const char* label;
    RuntimeKind kind;
  };
  const Design designs[] = {
      {"HW-Assisted VM (HVM)", RuntimeKind::kHvm},
      {"SW-Based VM (PVM)", RuntimeKind::kPvm},
      {"Proc-Like LibOS", RuntimeKind::kLibOs},
      {"Userspace Kernel (gVisor)", RuntimeKind::kGvisor},
      {"CKI", RuntimeKind::kCki},
  };
  for (const Design& d : designs) {
    Testbed s(d.kind, Deployment::kBareMetal);
    Testbed f_bm(d.kind, Deployment::kBareMetal);
    Testbed f_nst(d.kind, Deployment::kNested);
    Testbed h(d.kind, Deployment::kNested);
    table.AddRow(d.label, {static_cast<double>(SyscallNs(s)), static_cast<double>(FaultNs(f_bm)),
                           static_cast<double>(FaultNs(f_nst)), static_cast<double>(HostReqNs(h))});
  }
  table.Print(std::cout, 0);

  // The qualitative columns, demonstrated.
  {
    Testbed libos(RuntimeKind::kLibOs, Deployment::kBareMetal);
    bool breach = static_cast<LibOsEngine&>(libos.engine()).AppCanTouchLibOsState();
    bool fork_ok =
        libos.engine().UserSyscall(SyscallRequest{.no = Sys::kFork}).ok();
    std::cout << "LibOS: app writes libOS internal state: "
              << (breach ? "SUCCEEDS (no U/K isolation)" : "blocked") << "; fork(): "
              << (fork_ok ? "ok" : "unsupported (binary compatibility gap)") << "\n";
  }
  {
    Testbed cki_bed(RuntimeKind::kCki, Deployment::kBareMetal);
    bool fork_ok = cki_bed.engine().UserSyscall(SyscallRequest{.no = Sys::kFork}).ok();
    std::cout << "CKI: guest U/K isolation: enforced (PTE U/K bit + PKS); fork(): "
              << (fork_ok ? "ok (full compatibility)" : "unsupported") << "\n";
  }
  std::cout << "\nTable 1 summary: only CKI combines fast syscalls AND fast memory\n"
               "(both deployments) AND guest U/K isolation AND nested deployment AND\n"
               "binary compatibility.\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
