// The Figure 13 sweep cell list, shared between bench_fig13_sweep (the
// paper tables) and bench_ext_simspeed (the raw-speed gate). Both must run
// the *same* cells in the *same* order so the determinism hash pinned by
// the speed gate is the hash of the real sweep, not of a lookalike.
#ifndef BENCH_FIG13_CELLS_H_
#define BENCH_FIG13_CELLS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/sim_cluster.h"
#include "src/workloads/mem_apps.h"

namespace cki {

enum class Fig13App : uint8_t { kBtree, kXsbench };

// One independent simulated machine of the sweep.
struct Fig13Cell {
  std::string label;  // config label ("RunC" rows are the baselines)
  RuntimeKind kind;
  Deployment deployment;
  Fig13App app;
  double param;  // lookup/insert ratio or particle count
};

inline const double* Fig13Ratios(size_t* n) {
  static const double ratios[] = {0.5, 1, 2, 4, 8, 16};
  *n = std::size(ratios);
  return ratios;
}

inline const int* Fig13Particles(size_t* n) {
  static const int particles[] = {2000, 5000, 10000, 20000, 40000};
  *n = std::size(particles);
  return particles;
}

// Builds the cell list: RunC baselines first, then every config, for both
// sweeps. Cell order is the merge order and never depends on thread count.
inline std::vector<Fig13Cell> Fig13CellList() {
  const std::vector<BenchConfig> configs = {
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
  };
  std::vector<Fig13Cell> cells;
  auto add_sweep = [&cells, &configs](Fig13App app, const double* params, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      cells.push_back({"RunC", RuntimeKind::kRunc, Deployment::kBareMetal, app, params[i]});
    }
    for (const BenchConfig& config : configs) {
      for (size_t i = 0; i < n; ++i) {
        cells.push_back({config.label, config.kind, config.deployment, app, params[i]});
      }
    }
  };
  size_t n_ratios = 0;
  const double* ratios = Fig13Ratios(&n_ratios);
  add_sweep(Fig13App::kBtree, ratios, n_ratios);
  size_t n_particles = 0;
  const int* particles = Fig13Particles(&n_particles);
  std::vector<double> particle_params(particles, particles + n_particles);
  add_sweep(Fig13App::kXsbench, particle_params.data(), particle_params.size());
  return cells;
}

// Runs one cell on a fresh simulated machine. Mixes only the workload's
// simulated time into the shard digest — host-side data structures and
// wall-clock speed are free to change under this hash (DESIGN.md §14).
inline ShardResult RunFig13Cell(const Fig13Cell& cell) {
  ShardResult r;
  Testbed bed(cell.kind, cell.deployment);
  SimNanos ns = cell.app == Fig13App::kBtree
                    ? RunBtreeRatio(bed.engine(), cell.param)
                    : RunXsbenchParticles(bed.engine(), static_cast<int>(cell.param));
  r.sim_ns = bed.ctx().clock().now();
  r.values["ns"] = static_cast<double>(ns);
  r.values["events"] = static_cast<double>(bed.ctx().trace().TotalEvents());
  r.HashMix(ns);
  return r;
}

}  // namespace cki

#endif  // BENCH_FIG13_CELLS_H_
