// Table 3: the privileged-instruction policy of the CKI hardware extension,
// verified live against a booted CKI container — each instruction is
// actually executed on the simulated CPU with PKRS = PKRS_GUEST and the
// observed behavior (blocked / allowed) must match the table.
#include <cstdio>

#include "src/cki/priv_policy.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

void Run() {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  Cpu& cpu = bed.machine().cpu();
  cpu.set_cpl(Cpl::kKernel);  // the deprivileged guest kernel: ring 0, PKRS != 0

  std::printf("== Table 3: privileged instructions in the CKI guest kernel ==\n");
  std::printf("%-16s %-8s %-18s %-10s %s\n", "instruction", "blocked", "virtualized via",
              "observed", "note");
  int mismatches = 0;
  for (const PrivPolicyEntry& e : PrivPolicyTable()) {
    Fault f = cpu.ExecPriv(e.instr);
    bool observed_blocked = (f.type == FaultType::kPrivInstrBlocked);
    if (observed_blocked != e.blocked) {
      mismatches++;
    }
    std::printf("%-16.*s %-8s %-18.*s %-10s %.*s\n",
                static_cast<int>(PrivInstrName(e.instr).size()), PrivInstrName(e.instr).data(),
                e.blocked ? "yes" : "no",
                static_cast<int>(PrivStrategyName(e.strategy).size()),
                PrivStrategyName(e.strategy).data(), observed_blocked ? "trapped" : "executed",
                static_cast<int>(e.note.size()), e.note.data());
  }
  std::printf("\npolicy/hardware mismatches: %d (must be 0)\n", mismatches);
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
