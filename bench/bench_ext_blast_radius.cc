// Extension benchmark: blast-radius containment. N containers share one
// machine; one of them is killed (or chaos-injected to death) mid-run, and
// the benchmark reports what the neighbors felt:
//   * neighbor per-round latency p50/p99, undisturbed vs with the kill —
//     these must be within noise of each other (containment);
//   * recovery time: the simulated cost of the kill + frame-reclaim sweep
//     (the `fault/kill` and `fault/reclaim` TraceScopes);
//   * frames still owned by the victim after the sweep — must be zero.
//
// A second chaos phase arms the deterministic FaultInjector on every
// engine, NIC, and the vswitch, runs the same mixed workload twice with the
// same seed, and checks that the fault traces (injector draw hash, fault-bus
// record hash, switch packet hash) are bit-identical — the determinism
// contract that makes chaos failures replayable.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/fault_injector.h"
#include "src/metrics/report.h"
#include "src/net/virt_nic.h"
#include "src/net/vswitch.h"
#include "src/runtime/runtime.h"
#include "src/sim/stats.h"

namespace cki {
namespace {

constexpr int kContainers = 4;
constexpr int kRounds = 300;
constexpr int kKillRound = 150;
constexpr uint64_t kRoundPages = 16;
constexpr uint64_t kChaosSeed = 42;
constexpr int kChaosRounds = 200;

std::vector<BenchConfig> Configs() {
  return {
      {"RunC", RuntimeKind::kRunc, Deployment::kBareMetal},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
      {"gVisor", RuntimeKind::kGvisor, Deployment::kBareMetal},
  };
}

// One round of per-container work, driven entirely through the syscall path
// (the engines share one CPU, so touches would fight over CR3).
void OpRound(ContainerEngine& eng) {
  eng.UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  uint64_t base = eng.MmapAnon(kRoundPages * kPageSize, /*populate=*/true);
  if (base != 0) {
    eng.UserSyscall(SyscallRequest{
        .no = Sys::kMunmap, .arg0 = base, .arg1 = kRoundPages * kPageSize});
  }
  eng.UserSyscall(SyscallRequest{.no = Sys::kWrite, .arg0 = 1, .arg1 = 256});
}

struct DisturbedResult {
  Stats neighbor_ns;        // per-round latency of the non-victim containers
  SimNanos recovery_ns = 0; // simulated cost of kill + reclaim
  uint64_t victim_frames_after = 0;
  uint64_t victim_frames_before = 0;
  uint64_t containers_killed = 0;
};

DisturbedResult RunPoint(const BenchConfig& config, bool kill_victim,
                         BenchObsSink* sink) {
  Machine machine(MachineConfigFor(config.kind, config.deployment));
  SimContext& ctx = machine.ctx();
  std::vector<std::unique_ptr<ContainerEngine>> engines;
  for (int i = 0; i < kContainers; ++i) {
    engines.push_back(MakeEngine(machine, config.kind));
    engines.back()->Boot();
  }
  ContainerEngine& victim = *engines.front();

  SimNanos observed_from = ctx.clock().now();
  ctx.obs().Enable();
  ctx.obs().set_owner(0);
  DisturbedResult out;
  for (int round = 0; round < kRounds; ++round) {
    if (kill_victim && round == kKillRound) {
      out.victim_frames_before = machine.frames().OwnedFrames(victim.id());
      SimNanos before = ctx.clock().now();
      machine.faults().Kill(
          FaultReport{FaultKind::kProtectionViolation, victim.id(), 0});
      out.recovery_ns = ctx.clock().now() - before;
    }
    for (int i = 0; i < kContainers; ++i) {
      if (!engines[static_cast<size_t>(i)]->alive()) {
        continue;
      }
      SimNanos t0 = ctx.clock().now();
      OpRound(*engines[static_cast<size_t>(i)]);
      if (i != 0) {  // the victim's own rounds are not "neighbor" samples
        out.neighbor_ns.Add(static_cast<double>(ctx.clock().now() - t0));
      }
    }
  }
  ctx.obs().Disable();
  out.victim_frames_after = machine.frames().OwnedFrames(victim.id());
  out.containers_killed = machine.faults().containers_killed();

  if (sink != nullptr && sink->active() && kill_victim) {
    machine.faults().ExportMetrics(ctx.obs().metrics());
    sink->AddConfig(std::string(config.label) + "/kill",
                    ctx.clock().now() - observed_from, ctx.obs());
  }
  return out;
}

struct ChaosTrace {
  uint64_t injector_hash = 0;
  uint64_t bus_hash = 0;
  uint64_t switch_hash = 0;
  uint64_t injected = 0;
  uint64_t draws = 0;
  uint64_t killed = 0;
  uint64_t faults_reported = 0;
  int survivors = 0;
};

ChaosTrace RunChaos(const BenchConfig& config, BenchObsSink* sink,
                    const std::string& sink_label) {
  Machine machine(MachineConfigFor(config.kind, config.deployment));
  SimContext& ctx = machine.ctx();
  InjectorConfig inject;
  inject.seed = kChaosSeed;
  inject.pks_violation_rate = 0.002;
  inject.pte_flip_rate = 0.001;
  inject.segment_oom_rate = 0.003;
  inject.virtio_corrupt_rate = 0.004;
  inject.packet_drop_rate = 0.02;
  inject.packet_dup_rate = 0.01;
  FaultInjector injector(inject);

  VSwitch vswitch(ctx);
  vswitch.set_injector(&injector);
  std::vector<std::unique_ptr<ContainerEngine>> engines;
  std::vector<std::unique_ptr<VirtNic>> nics;
  for (int i = 0; i < kContainers; ++i) {
    engines.push_back(MakeEngine(machine, config.kind));
    engines.back()->Boot();
    engines.back()->set_injector(&injector);
    nics.push_back(std::make_unique<VirtNic>(*engines.back(), vswitch,
                                             "c" + std::to_string(i)));
    nics.back()->set_injector(&injector);
  }
  // Ring of pre-established flows: container i streams to container i+1.
  std::vector<int> flows;
  for (int i = 0; i < kContainers; ++i) {
    int peer = (i + 1) % kContainers;
    int flow = vswitch.AllocFlow();
    nics[static_cast<size_t>(i)]->OpenRawFlow(flow, nics[static_cast<size_t>(peer)]->port());
    nics[static_cast<size_t>(peer)]->OpenRawFlow(flow, nics[static_cast<size_t>(i)]->port());
    flows.push_back(flow);
  }

  SimNanos observed_from = ctx.clock().now();
  ctx.obs().Enable();
  ctx.obs().set_owner(0);
  for (int round = 0; round < kChaosRounds; ++round) {
    for (int i = 0; i < kContainers; ++i) {
      ContainerEngine& eng = *engines[static_cast<size_t>(i)];
      if (!eng.alive()) {
        continue;
      }
      OpRound(eng);
      // Touches hit the injector's PKS-violation site; under the shared CPU
      // the access itself may miss this engine's mappings, which is fine —
      // the result is an error return either way, never an abort.
      eng.UserTouch(0x5000'0000 + static_cast<uint64_t>(round) * kPageSize,
                    /*write=*/true);
      nics[static_cast<size_t>(i)]->Transmit(flows[static_cast<size_t>(i)], 1500);
      nics[static_cast<size_t>(i)]->Flush();
    }
  }
  ctx.obs().Disable();

  ChaosTrace trace;
  trace.injector_hash = injector.trace_hash();
  trace.bus_hash = machine.faults().trace_hash();
  trace.switch_hash = vswitch.trace_hash();
  trace.injected = injector.injected();
  trace.draws = injector.draws();
  trace.killed = machine.faults().containers_killed();
  trace.faults_reported = machine.faults().faults_reported();
  for (const auto& eng : engines) {
    trace.survivors += eng->alive() ? 1 : 0;
  }
  if (sink != nullptr && sink->active() && !sink_label.empty()) {
    machine.faults().ExportMetrics(ctx.obs().metrics());
    vswitch.ExportMetrics(ctx.obs().metrics());
    ctx.obs().metrics().Inc("fault/faults_injected", injector.injected());
    ctx.obs().metrics().Inc("fault/injector_draws", injector.draws());
    sink->AddConfig(sink_label, ctx.clock().now() - observed_from, ctx.obs());
  }
  return trace;
}

bool Run(BenchObsSink* sink) {
  ReportTable blast("Blast radius: kill 1 of " + std::to_string(kContainers) +
                        " containers mid-run (neighbor ns/round)",
                    "config",
                    {"p50 calm", "p99 calm", "p50 kill", "p99 kill",
                     "recover us", "victim frames"});
  bool ok = true;
  for (const BenchConfig& config : Configs()) {
    DisturbedResult calm = RunPoint(config, /*kill_victim=*/false, nullptr);
    DisturbedResult kill = RunPoint(config, /*kill_victim=*/true, sink);
    blast.AddRow(config.label,
                 {calm.neighbor_ns.Percentile(50), calm.neighbor_ns.Percentile(99),
                  kill.neighbor_ns.Percentile(50), kill.neighbor_ns.Percentile(99),
                  static_cast<double>(kill.recovery_ns) * 1e-3,
                  static_cast<double>(kill.victim_frames_after)});
    if (kill.containers_killed != 1 || kill.victim_frames_after != 0) {
      ok = false;
      std::cerr << "ERROR: " << config.label << ": killed="
                << kill.containers_killed << " victim_frames_after="
                << kill.victim_frames_after << " (want 1 and 0)\n";
    }
  }
  blast.Print(std::cout, 0);

  ReportTable chaos("Chaos: deterministic injection, seed " +
                        std::to_string(kChaosSeed),
                    "config",
                    {"draws", "injected", "faults", "killed", "survivors",
                     "replay ok"});
  for (const BenchConfig& config : Configs()) {
    ChaosTrace a = RunChaos(config, sink, std::string(config.label) + "/chaos");
    ChaosTrace b = RunChaos(config, nullptr, "");
    bool replay_ok = a.injector_hash == b.injector_hash &&
                     a.bus_hash == b.bus_hash && a.switch_hash == b.switch_hash;
    if (!replay_ok) {
      ok = false;
      std::cerr << "ERROR: " << config.label
                << ": same seed produced different fault traces\n";
    }
    chaos.AddRow(config.label,
                 {static_cast<double>(a.draws), static_cast<double>(a.injected),
                  static_cast<double>(a.faults_reported),
                  static_cast<double>(a.killed),
                  static_cast<double>(a.survivors), replay_ok ? 1.0 : 0.0});
  }
  chaos.Print(std::cout, 0);
  std::cout << (ok ? "Blast radius contained: neighbors' percentiles are "
                     "unchanged, the victim's frames are fully reclaimed, and "
                     "every fault trace replays bit-identically.\n"
                   : "ERROR: blast-radius or determinism check failed (see "
                     "stderr).\n");
  return ok;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  cki::BenchObsSink sink(cki::BenchIo::Parse(argc, argv));
  bool ok = cki::Run(&sink);
  bool wrote = sink.Write("ext_blast_radius");
  return ok && wrote ? 0 : 1;
}
