// Figure 15: breakdown of CKI's syscall optimizations on SQLite — overhead
// (%) vs unmodified CKI for PVM, CKI-wo-OPT2 (page-table switches added)
// and CKI-wo-OPT3 (sysret/swapgs blocked).
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workloads/sqlite_bench.h"

namespace cki {
namespace {

void Run() {
  std::vector<std::string> pattern_names;
  for (const SqlitePattern& p : SqliteSuite()) {
    pattern_names.emplace_back(p.name);
  }
  ReportTable overhead("Figure 15: syscall-optimization ablation, overhead vs CKI (%)", "config",
                       pattern_names);

  // Baseline: unmodified CKI.
  std::vector<double> cki_tput;
  for (const SqlitePattern& p : SqliteSuite()) {
    Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
    cki_tput.push_back(RunSqlitePattern(bed.engine(), p).ops_per_sec);
  }

  const std::vector<BenchConfig> configs = {
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI-wo-OPT2", RuntimeKind::kCkiNoOpt2, Deployment::kBareMetal},
      {"CKI-wo-OPT3", RuntimeKind::kCkiNoOpt3, Deployment::kBareMetal},
  };
  for (const BenchConfig& config : configs) {
    std::vector<double> row;
    size_t i = 0;
    for (const SqlitePattern& p : SqliteSuite()) {
      Testbed bed(config.kind, config.deployment);
      double tput = RunSqlitePattern(bed.engine(), p).ops_per_sec;
      row.push_back((cki_tput[i] / tput - 1.0) * 100.0);
      i++;
    }
    overhead.AddRow(config.label, row);
  }
  overhead.Print(std::cout, 1);
  std::cout << "Paper: PVM 24/17/23/22/22/1/0; CKI-wo-OPT2 15/1/15/13/12/1/1;\n"
               "CKI-wo-OPT3 9/0/8/5/6/0/0 (%).\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
