// Extension bench: the request resilience layer under gray-failure chaos
// (src/resil + src/fault/gray_fault.h, DESIGN.md §13).
//
// The orchestrated fleet serves the same diurnal + flash-crowd open-loop
// traffic as bench_ext_orchestrator, but the chaos is GRAY: seeded
// degradation episodes (latency inflation, throughput throttles, packet
// blackholes, syscall jitter — injector sites 10-13) make machines slow
// or lossy without making them dead. Two arms run over the identical
// workload and chaos seeds:
//   * resilience-off — crash-only baseline: no deadlines, retries,
//     hedges, breakers or shedding; the policy cannot see gray health,
//   * resilience-on  — deadline propagation, budgeted retries with
//     backoff, quantile hedging, per-destination circuit breakers,
//     admission shedding, and health-probe-driven drains off gray shards.
// Reported per arm: SLO attainment, overall request p99, lost arrivals,
// blackholed attempts, retries (+budget denials), hedges fired/won,
// sheds, drains and breaker opens.
//
// Hard self-checks (CI runs `--smoke` in release and under ASan/UBSan;
// the process exits non-zero when any fails):
//   1. resilience-on beats resilience-off on SLO attainment AND fleet
//      p99 over the identical gray chaos,
//   2. the combined cluster+control trace hash of the resilience-on arm
//      is bit-identical at --threads 1, 2 and 8,
//   3. the retry budget held: retries never exceed
//      cap * shards + ratio * served (no retry storm under blackholes),
//      and the baseline arm issued zero retries/hedges/sheds,
//   4. gray chaos actually struck (episodes and blackholed attempts > 0
//      in both arms), every defense engaged (retries, hedges, drains,
//      probes > 0), request accounting balances, zero leaked frames.
//
// `--chaos-kinds=a,b,...` arms only the named gray fault kinds
// (FaultKindFromName names, e.g. packet_blackhole); default is all four.
#include <iomanip>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/fault/fault_domain.h"
#include "src/metrics/report.h"
#include "src/orch/orchestrator.h"
#include "src/orch/policy.h"

namespace cki {
namespace {

// Which gray sites the run arms. Parsed from --chaos-kinds via the
// compile-checked FaultKindFromName table, so a typo'd kind name is a
// startup error instead of a silently-disarmed site.
struct GrayKinds {
  bool latency = false;
  bool throttle = false;
  bool blackhole = false;
  bool jitter = false;
};

bool ParseChaosKinds(std::string_view list, GrayKinds* kinds) {
  while (!list.empty()) {
    size_t comma = list.find(',');
    std::string_view name = list.substr(0, comma);
    list = comma == std::string_view::npos ? std::string_view() : list.substr(comma + 1);
    if (name.empty()) {
      continue;
    }
    auto kind = FaultKindFromName(name);
    if (!kind.has_value()) {
      std::cerr << "error: --chaos-kinds: unknown fault kind '" << name << "'\n";
      return false;
    }
    switch (*kind) {
      case FaultKind::kLatencyInflation:
        kinds->latency = true;
        break;
      case FaultKind::kThroughputThrottle:
        kinds->throttle = true;
        break;
      case FaultKind::kPacketBlackhole:
        kinds->blackhole = true;
        break;
      case FaultKind::kSyscallJitter:
        kinds->jitter = true;
        break;
      default:
        std::cerr << "error: --chaos-kinds: '" << name
                  << "' is not a gray kind (sites 10-13)\n";
        return false;
    }
  }
  return true;
}

OrchConfig BaseConfig(const BenchIo& io, bool smoke, const GrayKinds& kinds) {
  OrchConfig cfg;
  cfg.shards = io.ShardsOr(smoke ? 4 : 6);
  cfg.threads = io.ThreadsOr(1);
  cfg.root_seed = io.root_seed;
  cfg.epochs = smoke ? 32 : 64;
  cfg.epoch_ns = 1'000'000;  // 1 simulated ms control epochs
  cfg.slo_p99_ns = 400'000;
  cfg.initial_containers = 2;
  // Same production-shaped traffic as bench_ext_orchestrator: diurnal day
  // with a 4x flash crowd, later shards hotter. No hard kills — this
  // bench isolates gray degradation, where the machine keeps answering
  // (slowly, lossily) and crash-only recovery never triggers.
  // Run the fleet near — not past — saturation: the flash crowd should
  // stress queues without structurally exceeding capacity, so gray
  // degradation (not overload) is the dominant failure source and the
  // two arms differ by how they handle it.
  cfg.arrivals = ArrivalConfig::DiurnalBurst(/*seed=*/0, /*base_rate_per_sec=*/40'000);
  // Soften the flash crowd from 4x to 2.5x: a 4x spike structurally
  // exceeds what the autoscaler can add within an epoch, so both arms
  // fail burst epochs identically and the SLO comparison loses signal.
  // At 2.5x a healthy fleet absorbs the crowd and the epochs that differ
  // are exactly the gray ones.
  cfg.arrivals.burst[4] = 2.5;
  // Gray chaos: per-epoch per-machine episode-start rates. At these rates
  // a 64-epoch run sees a steady drizzle of multi-epoch episodes on a
  // few machines at a time — gray, not globally down.
  cfg.latency_inflation_rate = kinds.latency ? 0.15 : 0;
  cfg.throughput_throttle_rate = kinds.throttle ? 0.05 : 0;
  cfg.packet_blackhole_rate = kinds.blackhole ? 0.10 : 0;
  cfg.syscall_jitter_rate = kinds.jitter ? 0.10 : 0;
  return cfg;
}

// Both arms run the same autoscaler tuning; only gray awareness differs.
// Headroom (max_containers 8) lets the autoscaler absorb the flash crowd,
// so shedding stays a gray-episode defense instead of a steady-state one.
ReactiveConfig ReactiveTuning(bool gray_aware) {
  ReactiveConfig rc;
  rc.reap_idle_epochs = 4;
  rc.gray_health_x1000 = gray_aware ? 700 : 0;
  return rc;
}

struct ArmOutcome {
  std::string label;
  OrchStats stats;
  uint64_t combined_hash = 0;
};

ArmOutcome RunArm(const std::string& label, const OrchConfig& cfg, const OrchPolicy& policy) {
  Orchestrator orch(cfg, policy);
  ArmOutcome out;
  out.label = label;
  out.stats = orch.Run();
  out.combined_hash = orch.CombinedHash();
  return out;
}

void WriteJsonOut(const std::string& path, const std::vector<ArmOutcome>& outcomes,
                  const OrchConfig& cfg) {
  std::ofstream os(path);
  os << "{\"bench\":\"bench_ext_resilience\",\"shards\":" << cfg.shards
     << ",\"epochs\":" << cfg.epochs << ",\"epoch_ns\":" << cfg.epoch_ns
     << ",\"slo_p99_ns\":" << cfg.slo_p99_ns
     << ",\"deadline_ns\":" << cfg.resil.deadline_ns << ",\"arms\":[";
  for (size_t i = 0; i < outcomes.size(); ++i) {
    const OrchStats& s = outcomes[i].stats;
    os << (i > 0 ? "," : "") << "\n{\"arm\":";
    WriteJsonString(os, outcomes[i].label);
    os << ",\"requests\":" << s.requests << ",\"served\":" << s.served
       << ",\"lost\":" << s.lost << ",\"slo_attainment\":" << s.SloAttainment()
       << ",\"overall_p99_ns\":" << s.overall_p99_ns
       << ",\"gray_episodes\":" << s.gray_episodes << ",\"blackholed\":" << s.blackholed
       << ",\"retries\":" << s.retries << ",\"retries_denied\":" << s.retries_denied
       << ",\"hedges\":" << s.hedges << ",\"hedge_wins\":" << s.hedge_wins
       << ",\"hedges_cancelled\":" << s.hedges_cancelled << ",\"sheds\":" << s.sheds
       << ",\"deadline_misses\":" << s.deadline_misses << ",\"drains\":" << s.drains
       << ",\"probes\":" << s.probes << ",\"breaker_opens\":" << s.breaker_opens
       << ",\"breaker_short_circuits\":" << s.breaker_short_circuits
       << ",\"leaked_frames\":" << s.leaked_frames << ",\"combined_hash\":\"0x" << std::hex
       << outcomes[i].combined_hash << std::dec << "\"}";
  }
  os << "\n]}\n";
  os.flush();
  std::cerr << (os ? "wrote " : "error: could not write ") << path << "\n";
}

int Run(const BenchIo& io, bool smoke, const GrayKinds& kinds) {
  OrchConfig off_cfg = BaseConfig(io, smoke, kinds);
  off_cfg.resil.enabled = false;
  OrchConfig on_cfg = BaseConfig(io, smoke, kinds);
  on_cfg.resil.enabled = true;
  int rc = 0;

  ReactivePolicy blind_policy(ReactiveTuning(/*gray_aware=*/false));
  ReactivePolicy aware_policy(ReactiveTuning(/*gray_aware=*/true));
  std::vector<ArmOutcome> outcomes;
  outcomes.push_back(RunArm("resilience-off", off_cfg, blind_policy));
  outcomes.push_back(RunArm("resilience-on", on_cfg, aware_policy));
  const OrchStats& off = outcomes[0].stats;
  const OrchStats& on = outcomes[1].stats;

  ReportTable table("Gray-failure chaos, resilience off vs on, " +
                        std::to_string(on_cfg.shards) + " shards x " +
                        std::to_string(on_cfg.epochs) + " epochs",
                    "arm",
                    {"SLO att %", "p99 us", "lost", "blackholed", "retries", "hedges",
                     "sheds", "drains"});
  for (const ArmOutcome& out : outcomes) {
    const OrchStats& s = out.stats;
    table.AddRow(out.label,
                 {100.0 * s.SloAttainment(), static_cast<double>(s.overall_p99_ns) * 1e-3,
                  static_cast<double>(s.lost), static_cast<double>(s.blackholed),
                  static_cast<double>(s.retries), static_cast<double>(s.hedges),
                  static_cast<double>(s.sheds), static_cast<double>(s.drains)},
                 /*weight=*/s.requests > 0 ? s.requests : 1);
  }
  table.Print(std::cout, 2);

  // --- hard self-checks -----------------------------------------------------

  // The arm-comparison and defense-engagement checks assume the full
  // four-kind chaos mix; a --chaos-kinds subset is an exploration run
  // where e.g. a jitter-only fleet never blackholes and never retries.
  const bool full_chaos = kinds.latency && kinds.throttle && kinds.blackhole && kinds.jitter;
  if (!full_chaos) {
    std::cout << "note: --chaos-kinds subset armed; arm-comparison and "
                 "engagement checks skipped\n";
  }

  // 1. The resilience layer earns its keep on every headline axis at
  //    once. This is the hard part: the baseline's blackhole losses act
  //    as free load shedding (lost requests record no latency), so the
  //    on arm must beat a survivor-biased p99 while also serving more.
  if (full_chaos && on.SloAttainment() <= off.SloAttainment()) {
    std::cout << "FAIL: resilience did not improve SLO attainment (on="
              << on.SloAttainment() << ", off=" << off.SloAttainment() << ")\n";
    rc = 1;
  }
  if (full_chaos && on.overall_p99_ns >= off.overall_p99_ns) {
    std::cout << "FAIL: resilience did not improve fleet p99 (on=" << on.overall_p99_ns
              << "ns, off=" << off.overall_p99_ns << "ns)\n";
    rc = 1;
  }
  // Lost arrivals are reported but not gated: the off arm's losses are
  // silent blackhole drops while the on arm's are mostly deliberate
  // sheds of deadline-infeasible work, so the raw counts are not
  // comparable across arms (the served-within-deadline axes above are).

  // 2. Determinism: gray episodes, timeouts, hedges, breaker state and
  //    drains are all functions of simulated time — the resilience-on
  //    hash must be bit-identical at any thread count.
  std::cout << "determinism: resilience-on combined hash across --threads {1,2,8}:";
  uint64_t want_hash = 0;
  bool hash_ok = true;
  for (uint32_t threads : {1u, 2u, 8u}) {
    OrchConfig tcfg = on_cfg;
    tcfg.threads = threads;
    Orchestrator orch(tcfg, aware_policy);
    orch.Run();
    uint64_t h = orch.CombinedHash();
    std::cout << " 0x" << std::hex << h << std::dec;
    if (threads == 1) {
      want_hash = h;
    } else if (h != want_hash) {
      hash_ok = false;
    }
  }
  std::cout << "\n";
  if (!hash_ok) {
    std::cout << "FAIL: resilience trace hash diverged across thread counts\n";
    rc = 1;
  } else {
    std::cout << "determinism: OK (bit-identical at 1, 2 and 8 threads)\n";
  }

  // 3. No retry storm: the token bucket bounds total retry volume even
  //    with blackholes swallowing attempts all run long.
  const uint64_t retry_bound =
      static_cast<uint64_t>(on_cfg.resil.retry_budget_cap) * on_cfg.shards +
      static_cast<uint64_t>(on_cfg.resil.retry_budget_ratio *
                            static_cast<double>(on.served)) +
      1;
  if (on.retries > retry_bound) {
    std::cout << "FAIL: retry storm — " << on.retries << " retries exceed budget bound "
              << retry_bound << "\n";
    rc = 1;
  }
  if (off.retries != 0 || off.hedges != 0 || off.sheds != 0 || off.probes != 0 ||
      off.breaker_opens != 0 || off.drains != 0) {
    std::cout << "FAIL: baseline arm ran resilience machinery (retries=" << off.retries
              << ", hedges=" << off.hedges << ", sheds=" << off.sheds
              << ", probes=" << off.probes << ", drains=" << off.drains << ")\n";
    rc = 1;
  }

  // 4. The chaos was real and every defense engaged.
  for (const ArmOutcome& out : outcomes) {
    const OrchStats& s = out.stats;
    if (s.gray_episodes == 0 || (kinds.blackhole && s.blackholed == 0)) {
      std::cout << "FAIL: " << out.label << " saw no gray chaos (episodes="
                << s.gray_episodes << ", blackholed=" << s.blackholed << ")\n";
      rc = 1;
    }
    if (s.leaked_frames != 0) {
      std::cout << "FAIL: " << out.label << " leaked " << s.leaked_frames << " frames\n";
      rc = 1;
    }
    // Sheds are a subset of lost: a shed arrival was minted but never
    // served, so the top-level books still balance.
    if (s.served == 0 || s.requests != s.served + s.lost || s.sheds > s.lost) {
      std::cout << "FAIL: " << out.label << " request accounting broken (requests="
                << s.requests << ", served=" << s.served << ", lost=" << s.lost
                << ", sheds=" << s.sheds << ")\n";
      rc = 1;
    }
  }
  if (full_chaos &&
      (on.retries == 0 || on.hedges == 0 || on.drains == 0 || on.probes == 0)) {
    std::cout << "FAIL: a defense never engaged (retries=" << on.retries
              << ", hedges=" << on.hedges << ", drains=" << on.drains
              << ", probes=" << on.probes << ")\n";
    rc = 1;
  }
  if (rc == 0) {
    std::cout << "resilience: OK (" << on.gray_episodes << " gray episodes, "
              << on.blackholed << " blackholed; recovered via " << on.retries
              << " retries (" << on.retries_denied << " denied), " << on.hedges
              << " hedges (" << on.hedge_wins << " wins), " << on.sheds << " sheds, "
              << on.drains << " drains, " << on.breaker_opens << " breaker opens)\n";
  }

  if (!io.json_out.empty()) {
    WriteJsonOut(io.json_out, outcomes, on_cfg);
  }
  if (!io.metrics_csv.empty()) {
    std::ofstream os(io.metrics_csv);
    MetricsRegistry::WriteCsvHeader(os);
    {
      Orchestrator orch(off_cfg, blind_policy);
      orch.Run();
      orch.metrics().WriteCsvRows(os, "resilience-off");
    }
    {
      Orchestrator orch(on_cfg, aware_policy);
      orch.Run();
      orch.metrics().WriteCsvRows(os, "resilience-on");
    }
    os.flush();
    std::cerr << (os ? "wrote " : "error: could not write ") << io.metrics_csv << "\n";
  }
  return rc;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  // Strip --smoke and --chaos-kinds before BenchIo sees (and rejects) them.
  bool smoke = false;
  std::string chaos_kinds;
  bool kinds_given = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--chaos-kinds=", 0) == 0) {
      chaos_kinds = arg.substr(std::string_view("--chaos-kinds=").size());
      kinds_given = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  cki::GrayKinds kinds;
  if (kinds_given) {
    if (!cki::ParseChaosKinds(chaos_kinds, &kinds)) {
      return 2;
    }
    if (!kinds.latency && !kinds.throttle && !kinds.blackhole && !kinds.jitter) {
      std::cerr << "error: --chaos-kinds armed no gray fault kinds\n";
      return 2;
    }
  } else {
    kinds = cki::GrayKinds{true, true, true, true};
  }
  return cki::Run(cki::BenchIo::Parse(static_cast<int>(args.size()), args.data()), smoke,
                  kinds);
}
