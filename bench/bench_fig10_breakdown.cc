// Figure 10: (a) page-fault latency breakdown, (b) syscall latency with the
// CKI optimization ablations. The breakdown segments are reconstructed from
// the event trace: handler time vs mechanism time (VM exits / SPT emulation
// / EPT faults / KSM calls).
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/virt/pvm_engine.h"

namespace cki {
namespace {

struct FaultBreakdown {
  double total = 0;
  double handler = 0;    // guest-side delivery + handler + return
  double mechanism = 0;  // exits, shadow emulation, EPT faults, KSM calls
};

FaultBreakdown MeasureFault(RuntimeKind kind, Deployment dep, std::string_view label,
                            BenchObsSink* sink) {
  Testbed bed(kind, dep);
  constexpr int kPages = 128;
  uint64_t base = bed.engine().MmapAnon(kPages * kPageSize, false);
  // Warm the intermediate tables with the first page (not measured).
  bed.engine().UserTouch(base, true);

  // Observe only the measured region: boot and warmup stay out of the span
  // tree, so the profiler's root total equals the measured latency.
  if (sink != nullptr && sink->active()) {
    bed.ctx().obs().Enable();
    bed.ctx().obs().set_owner(bed.engine().id());
  }
  // Measure total, then re-measure the pure handler share on a RunC bed
  // with identical kernel work. Mechanism = total - handler-equivalent.
  SimNanos total = bed.Measure([&] {
    for (int i = 1; i < kPages; ++i) {
      bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
    }
  });
  if (sink != nullptr && sink->active()) {
    bed.ctx().obs().Disable();
    sink->AddConfig(label, total, bed.ctx().obs());
  }
  FaultBreakdown b;
  b.total = static_cast<double>(total) / (kPages - 1);

  const CostModel& c = bed.ctx().cost();
  double handler = static_cast<double>(c.fault_delivery + c.pgfault_handler_core);
  if (kind == RuntimeKind::kHvm) {
    handler += static_cast<double>(c.hvm_guest_handler_extra + c.iret_native);
    if (dep == Deployment::kNested) {
      handler += static_cast<double>(c.hvm_nested_guest_handler_extra);
    }
  } else if (kind == RuntimeKind::kPvm) {
    handler += static_cast<double>(c.pvm_guest_handler_extra);
  } else if (kind == RuntimeKind::kRunc) {
    handler += static_cast<double>(c.iret_native);
  }
  b.handler = handler;
  b.mechanism = b.total - handler;
  return b;
}

SimNanos SyscallNs(RuntimeKind kind, std::string_view label, BenchObsSink* sink) {
  Testbed bed(kind, Deployment::kBareMetal);
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  constexpr int kIters = 128;
  if (sink != nullptr && sink->active()) {
    bed.ctx().obs().Enable();
    bed.ctx().obs().set_owner(bed.engine().id());
  }
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kIters; ++i) {
      bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    }
  });
  if (sink != nullptr && sink->active()) {
    bed.ctx().obs().Disable();
    sink->AddConfig(label, total, bed.ctx().obs());
  }
  return total / kIters;
}

void Run(BenchObsSink* sink) {
  ReportTable fig10a("Figure 10a: page-fault latency breakdown (ns)", "config",
                     {"total", "pgfault handler", "mechanism (exits/SPT/EPT/KSM)"});
  struct Cfg {
    const char* label;
    RuntimeKind kind;
    Deployment dep;
    const char* paper;
  };
  const Cfg cfgs[] = {
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested, "32565 = 1684 + 30881"},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal, "3257 = 1164 + 2093"},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal, "4407 = 1065 + 1532 + 1828"},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal, "1067 = 990 + 77"},
      {"RunC", RuntimeKind::kRunc, Deployment::kBareMetal, "1000"},
  };
  for (const Cfg& cfg : cfgs) {
    FaultBreakdown b =
        MeasureFault(cfg.kind, cfg.dep, std::string("fault/") + cfg.label, sink);
    fig10a.AddRow(cfg.label, {b.total, b.handler, b.mechanism});
  }
  fig10a.Print(std::cout, 0);
  std::cout << "Paper: HVM-NST 32565 (1684+30881), HVM-BM 3257 (1164+2093),\n"
               "PVM 4407 (1065+1532+1828), CKI 1067 (990+77), RunC ~1000.\n\n";

  ReportTable fig10b("Figure 10b: syscall latency (ns)", "config", {"latency"});
  fig10b.AddRow("RunC", {static_cast<double>(SyscallNs(RuntimeKind::kRunc, "syscall/RunC", sink))});
  fig10b.AddRow("HVM", {static_cast<double>(SyscallNs(RuntimeKind::kHvm, "syscall/HVM", sink))});
  fig10b.AddRow("CKI", {static_cast<double>(SyscallNs(RuntimeKind::kCki, "syscall/CKI", sink))});
  fig10b.AddRow("CKI-wo-OPT3", {static_cast<double>(SyscallNs(RuntimeKind::kCkiNoOpt3, "syscall/CKI-wo-OPT3", sink))});
  fig10b.AddRow("CKI-wo-OPT2", {static_cast<double>(SyscallNs(RuntimeKind::kCkiNoOpt2, "syscall/CKI-wo-OPT2", sink))});
  fig10b.AddRow("PVM", {static_cast<double>(SyscallNs(RuntimeKind::kPvm, "syscall/PVM", sink))});
  fig10b.Print(std::cout, 0);
  std::cout << "Paper: RunC/HVM/CKI ~90, CKI-wo-OPT3 153, CKI-wo-OPT2 238, PVM 336.\n";
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  cki::BenchObsSink sink(cki::BenchIo::Parse(argc, argv));
  cki::Run(&sink);
  return sink.Write("fig10_breakdown") ? 0 : 1;
}
