// Table 2: container performance on microbenchmarks (ns): syscall, page
// fault (cold: fresh memory incl. host backing allocation) and hypercall,
// for RunC / HVM / PVM in bare-metal and nested deployments. CKI columns
// are added for reference (the paper reports them in Fig 10 / sec 7.1).
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/virt/hvm_engine.h"
#include "src/virt/pvm_engine.h"

namespace cki {
namespace {

SimNanos SyscallNs(Testbed& bed) {
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  constexpr int kIters = 128;
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kIters; ++i) {
      bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    }
  });
  return total / kIters;
}

SimNanos ColdFaultNs(Testbed& bed) {
  if (auto* hvm = dynamic_cast<HvmEngine*>(&bed.engine())) {
    hvm->set_cold_faults(true);
  }
  if (auto* pvm = dynamic_cast<PvmEngine*>(&bed.engine())) {
    pvm->set_cold_faults(true);
  }
  constexpr int kPages = 128;
  uint64_t base = bed.engine().MmapAnon(kPages * kPageSize, false);
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kPages; ++i) {
      bed.engine().UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
    }
  });
  return total / kPages;
}

SimNanos HypercallNs(Testbed& bed) {
  if (bed.kind() == RuntimeKind::kRunc) {
    return 0;  // "-" in the paper: no hypervisor below an OS-level container
  }
  constexpr int kIters = 128;
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kIters; ++i) {
      bed.engine().GuestHypercall(HypercallOp::kNop);
    }
  });
  return total / kIters;
}

void Run() {
  ReportTable table("Table 2: microbenchmark latencies (ns)", "op",
                    {"RunC-BM", "HVM-BM", "PVM-BM", "CKI-BM", "HVM-NST", "PVM-NST", "CKI-NST"});
  std::vector<std::pair<RuntimeKind, Deployment>> configs = {
      {RuntimeKind::kRunc, Deployment::kBareMetal}, {RuntimeKind::kHvm, Deployment::kBareMetal},
      {RuntimeKind::kPvm, Deployment::kBareMetal},  {RuntimeKind::kCki, Deployment::kBareMetal},
      {RuntimeKind::kHvm, Deployment::kNested},     {RuntimeKind::kPvm, Deployment::kNested},
      {RuntimeKind::kCki, Deployment::kNested},
  };

  std::vector<double> syscalls;
  std::vector<double> faults;
  std::vector<double> hypercalls;
  for (auto [kind, dep] : configs) {
    {
      Testbed bed(kind, dep);
      syscalls.push_back(static_cast<double>(SyscallNs(bed)));
    }
    {
      Testbed bed(kind, dep);
      faults.push_back(static_cast<double>(ColdFaultNs(bed)));
    }
    {
      Testbed bed(kind, dep);
      hypercalls.push_back(static_cast<double>(HypercallNs(bed)));
    }
  }
  table.AddRow("syscall", syscalls);
  table.AddRow("pgfault (cold)", faults);
  table.AddRow("hypercall", hypercalls);
  table.Print(std::cout, 0);

  std::cout << "Paper (Table 2): syscall 93/91/336 (BM), 91/336 (NST); pgfault\n"
               "1000/4347/6727 (BM), 34050/7346 (NST); hypercall -/1088/466 (BM),\n"
               "6746/486 (NST). CKI (sec 7.1): syscall 90, pgfault 1067, hypercall 390.\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
