// Figure 12: latencies of memory-intensive (page-fault-intensive)
// applications under HVM-NST, HVM-BM, PVM, CKI and RunC, plus the 2 MiB
// huge-page variants of HVM-BM and PVM.
//
// Paper claims (C1): CKI reduces latency by 24~72% vs HVM-NST, 1~18% vs
// HVM-BM, 2~47% vs PVM, and stays within 3% of RunC.
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/virt/hvm_engine.h"
#include "src/workloads/mem_apps.h"

namespace cki {
namespace {

void Run() {
  std::vector<std::string> app_names;
  for (const MemAppSpec& spec : MemoryAppSuite()) {
    app_names.emplace_back(spec.name);
  }
  ReportTable latency("Figure 12: memory-intensive app latency (ms, simulated)", "config",
                      app_names);

  for (const BenchConfig& config : Fig12Configs()) {
    std::vector<double> row;
    for (const MemAppSpec& spec : MemoryAppSuite()) {
      Testbed bed(config.kind, config.deployment);
      row.push_back(static_cast<double>(RunMemApp(bed.engine(), spec)) * 1e-6);
    }
    latency.AddRow(config.label, row);
  }
  // 2 MiB EPT backing for HVM-BM ("2M"): EPT faults amortize per 512 pages.
  {
    std::vector<double> row;
    for (const MemAppSpec& spec : MemoryAppSuite()) {
      Testbed bed(RuntimeKind::kHvm, Deployment::kBareMetal);
      static_cast<HvmEngine&>(bed.engine()).set_ept_huge_pages(true);
      row.push_back(static_cast<double>(RunMemApp(bed.engine(), spec)) * 1e-6);
    }
    latency.AddRow("HVM-BM-2M", row);
  }
  // PVM with 2 MiB backing: host-side backing allocation amortizes, but the
  // per-fault VM exits and shadow emulation remain (the paper's point: CKI
  // still reduces btree/dedup by 44%/42% against it).
  {
    std::vector<double> row;
    for (const MemAppSpec& spec : MemoryAppSuite()) {
      Testbed bed(RuntimeKind::kPvm, Deployment::kBareMetal);
      row.push_back(static_cast<double>(RunMemApp(bed.engine(), spec)) * 1e-6);
    }
    latency.AddRow("PVM-2M", row);
  }

  latency.Print(std::cout, 2);
  latency.NormalizedTo("RunC").Print(std::cout, 3);
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
