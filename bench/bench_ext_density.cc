// Extension bench: container boot cost and memory density per design —
// the serverless/high-density context the paper's introduction cites
// (RunD, Firecracker). Measures simulated boot time of a container
// (guest-kernel init through the design's PTE mechanism) and host memory
// consumed per idle container.
#include <iostream>

#include "src/cki/cki_engine.h"
#include "src/metrics/report.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

void Run() {
  ReportTable table("Container boot cost & density", "design",
                    {"boot us", "host frames/container", "boots/s (1 core)"});

  for (RuntimeKind kind : {RuntimeKind::kRunc, RuntimeKind::kHvm, RuntimeKind::kPvm,
                           RuntimeKind::kGvisor, RuntimeKind::kLibOs, RuntimeKind::kCki}) {
    Machine machine(MachineConfigFor(kind, Deployment::kBareMetal));
    uint64_t frames_before = machine.frames().allocated_frames();
    SimNanos t0 = machine.ctx().clock().now();
    std::unique_ptr<ContainerEngine> engine;
    if (kind == RuntimeKind::kCki) {
      // Density configuration: a small delegated segment per container.
      engine = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, /*segment_pages=*/2048);
    } else {
      engine = MakeEngine(machine, kind);
    }
    engine->Boot();
    // First request readiness: run one trivial syscall + one page touch.
    engine->UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    uint64_t page = engine->MmapAnon(kPageSize, false);
    engine->UserTouch(page, true);
    double boot_us = static_cast<double>(machine.ctx().clock().now() - t0) * 1e-3;
    double frames = static_cast<double>(machine.frames().allocated_frames() - frames_before);
    table.AddRow(std::string(RuntimeKindName(kind)),
                 {boot_us, frames, boot_us > 0 ? 1e6 / boot_us : 0});
  }
  table.Print(std::cout, 1);
  std::cout << "Note: CKI's per-container footprint includes the delegated physical\n"
               "segment (sized here for density) plus KSM pages; PVM adds shadow\n"
               "tables; HVM adds EPT tables. Boot cost is dominated by how the\n"
               "design prices the guest kernel's initialization PTE stores.\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
