// Extension bench: container boot cost and memory density per design —
// the serverless/high-density context the paper's introduction cites
// (RunD, Firecracker). Measures simulated boot time of a container
// (guest-kernel init through the design's PTE mechanism) and host memory
// consumed per idle container.
//
// Scale-out: the run shards `--shards` independent simulated machines
// across `--threads` workers (SimCluster, DESIGN.md §9), each machine
// booting a batch of containers, so total density scales to hundreds of
// containers per design. Boot latencies merge bucket-wise into one
// histogram; the printed table and the determinism hash are identical at
// any thread count.
#include <iostream>
#include <memory>
#include <vector>

#include "bench/bench_util.h"
#include "src/cki/cki_engine.h"
#include "src/cluster/sim_cluster.h"
#include "src/sim/fnv.h"
#include "src/metrics/report.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

constexpr uint32_t kDefaultShards = 8;
constexpr int kContainersPerShard = 8;

// Boots one batch of containers on a fresh machine and records per-boot
// latency + frame footprint into the shard's metrics.
ShardResult RunShard(RuntimeKind kind, const ShardTask& task, bool observe) {
  ShardResult r;
  Machine machine(MachineConfigFor(kind, Deployment::kBareMetal));
  if (observe) {
    machine.ctx().obs().Enable();
  }
  {
    std::vector<std::unique_ptr<ContainerEngine>> engines;
    for (int c = 0; c < kContainersPerShard; ++c) {
      uint64_t frames_before = machine.frames().allocated_frames();
      SimNanos t0 = machine.ctx().clock().now();
      std::unique_ptr<ContainerEngine> engine;
      if (kind == RuntimeKind::kCki) {
        // Density configuration: a small delegated segment per container.
        engine = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, /*segment_pages=*/2048);
      } else {
        engine = MakeEngine(machine, kind);
      }
      engine->Boot();
      // First request readiness: run one trivial syscall + one page touch.
      engine->UserSyscall(SyscallRequest{.no = Sys::kGetpid});
      uint64_t page = engine->MmapAnon(kPageSize, false);
      engine->UserTouch(page, true);
      SimNanos boot_ns = machine.ctx().clock().now() - t0;
      uint64_t frames = machine.frames().allocated_frames() - frames_before;
      r.metrics.Hist("density/boot_ns").Add(boot_ns);
      r.metrics.Inc("density/frames", frames);
      r.metrics.Inc("density/containers");
      r.HashMix(boot_ns);
      r.HashMix(frames);
      engines.push_back(std::move(engine));
    }
    // Engines tear down here, before the machine; their teardown events
    // still land in the shard's recorder.
  }
  r.sim_ns = machine.ctx().clock().now();
  r.values["containers"] = kContainersPerShard;
  r.obs = machine.ctx().obs().Detach();
  (void)task;  // density workload is deterministic; the seed feeds chaos variants
  return r;
}

void Run(const BenchIo& io) {
  ClusterConfig cc;
  cc.shards = io.ShardsOr(kDefaultShards);
  cc.threads = io.ThreadsOr(1);
  cc.root_seed = io.root_seed;
  SimCluster cluster(cc);
  BenchObsSink sink(io);

  ReportTable table("Container boot cost & density", "design",
                    {"containers", "boot us p50", "boot us p99", "host frames/container",
                     "boots/s (1 core)"});
  uint64_t fleet_hash = kFnvOffsetBasis;

  for (RuntimeKind kind : {RuntimeKind::kRunc, RuntimeKind::kHvm, RuntimeKind::kPvm,
                           RuntimeKind::kGvisor, RuntimeKind::kLibOs, RuntimeKind::kCki}) {
    ClusterResult result = cluster.Run(
        [kind, &sink](const ShardTask& task) { return RunShard(kind, task, sink.active()); });
    MetricsRegistry merged = result.MergedMetrics();
    const Histogram* boots = merged.FindHist("density/boot_ns");
    double containers = static_cast<double>(merged.CounterValue("density/containers"));
    double frames = static_cast<double>(merged.CounterValue("density/frames"));
    double p50_us = boots != nullptr ? boots->Percentile(50) * 1e-3 : 0;
    double p99_us = boots != nullptr ? boots->Percentile(99) * 1e-3 : 0;
    double mean_us = boots != nullptr ? boots->Mean() * 1e-3 : 0;
    table.AddRow(std::string(RuntimeKindName(kind)),
                 {containers, p50_us, p99_us, containers > 0 ? frames / containers : 0,
                  mean_us > 0 ? 1e6 / mean_us : 0});
    // Fold per-design cluster hashes into one fleet digest, design order.
    fleet_hash ^= result.trace_hash();
    fleet_hash *= kFnvPrime;  // whole-word fold, not the byte-wise mixer
    for (const ShardResult& shard : result.shards()) {
      sink.AddConfig(std::string(RuntimeKindName(kind)) + "/shard-" +
                         std::to_string(shard.index),
                     shard.sim_ns, shard.obs);
    }
  }
  table.Print(std::cout, 1);
  std::cout << "cluster: " << cc.shards << " shards x " << kContainersPerShard
            << " containers, " << cluster.config().threads
            << " threads, root-seed=" << cc.root_seed << "\n";
  std::cout << "determinism-hash: 0x" << std::hex << fleet_hash << std::dec << "\n";
  std::cout << "Note: CKI's per-container footprint includes the delegated physical\n"
               "segment (sized here for density) plus KSM pages; PVM adds shadow\n"
               "tables; HVM adds EPT tables. Boot cost is dominated by how the\n"
               "design prices the guest kernel's initialization PTE stores.\n";
  if (sink.active()) {
    sink.Write("bench_ext_density");
  }
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  cki::Run(cki::BenchIo::Parse(argc, argv));
  return 0;
}
