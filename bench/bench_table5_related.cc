// Table 5: comparison with prior intra-kernel isolation systems. The CKI
// column is not just asserted — each property is demonstrated live on the
// simulated machine (scalable domains, in-domain page-table management,
// no virtualization hardware, complete privileged-instruction isolation,
// interrupt redirection, interrupt-forgery prevention).
#include <cstdio>

#include "src/cki/cki_engine.h"
#include "src/hw/idt.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

struct RelatedRow {
  const char* system;
  bool scalable_domains;
  bool secure_pgtbl;
  bool no_virt_hw;
  bool complete_priv_iso;
  bool intr_redirect;
  bool intr_forgery_prevent;
};

void Run() {
  // Prior-work rows as published in Table 5.
  const RelatedRow rows[] = {
      {"Nested Kernel", false, true, true, false, false, false},
      {"LVD", false, false, false, true, true, false},
      {"UnderBridge", false, false, false, true, true, false},
      {"NICKLE", false, true, true, false, false, false},
      {"SILVER", true, true, true, false, true, false},
      {"BULKHEAD", true, true, true, false, true, false},
  };

  // CKI column, demonstrated on the simulator.
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  // Scalable domains: boot more containers than PKS has keys (16).
  constexpr int kContainers = 24;
  std::vector<std::unique_ptr<CkiEngine>> engines;
  for (int i = 0; i < kContainers; ++i) {
    // Small delegated segments so two dozen containers share one machine.
    engines.push_back(
        std::make_unique<CkiEngine>(machine, CkiAblation::kNone, /*segment_pages=*/4096));
    engines.back()->Boot();
  }
  bool scalable = engines.size() > 16;

  CkiEngine& cki_engine = *engines.back();
  // Secure & efficient in-domain page-table management: the guest mapped
  // pages through the monitor during boot.
  bool secure_pgtbl = cki_engine.ksm().monitor().checked_stores() > 0 &&
                      cki_engine.ksm().monitor().declared_ptps() > 0;
  // No virtualization hardware: no EPT active on the CPU.
  bool no_virt_hw = machine.cpu().ept() == nullptr;
  // Complete privileged-instruction isolation: hardware gating, not binary
  // rewriting, blocks e.g. an unaligned wrmsr.
  machine.cpu().set_cpl(Cpl::kKernel);
  bool complete_priv =
      machine.cpu().ExecPriv(PrivInstr::kWrmsr).type == FaultType::kPrivInstrBlocked;
  // Interrupt redirection: a hardware interrupt reaches the host.
  bool intr_redirect = cki_engine.DeliverHardwareInterrupt(kVecTimer);
  // Forgery prevention: a software `int` cannot impersonate one.
  bool forgery_prevented = !cki_engine.gates().AttackForgeInterrupt(kVecVirtioNet);

  std::printf("== Table 5: intra-kernel isolation domain comparison ==\n");
  std::printf("%-14s %-9s %-8s %-9s %-9s %-9s %s\n", "system", "scalable", "pgtbl",
              "no-virtHW", "priv-iso", "intr-rdr", "forgery-prevent");
  auto yn = [](bool b) { return b ? "yes" : "-"; };
  for (const RelatedRow& r : rows) {
    std::printf("%-14s %-9s %-8s %-9s %-9s %-9s %s\n", r.system, yn(r.scalable_domains),
                yn(r.secure_pgtbl), yn(r.no_virt_hw), yn(r.complete_priv_iso),
                yn(r.intr_redirect), yn(r.intr_forgery_prevent));
  }
  std::printf("%-14s %-9s %-8s %-9s %-9s %-9s %s   <- demonstrated live\n", "CKI", yn(scalable),
              yn(secure_pgtbl), yn(no_virt_hw), yn(complete_priv), yn(intr_redirect),
              yn(forgery_prevented));
  std::printf("\n(%d CKI containers booted on one machine with 3 PKS keys in use each)\n",
              kContainers);
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
