// Extension bench: the paper's two future-work directions (section 9),
// quantified on the simulator.
//   1. Driver sandboxing in ring 0 via PKS domains vs microkernel-style
//      ring-3 driver servers.
//   2. Kernel-level syscall optimization: in-kernel PKS-domain apps vs
//      classic syscalls (with and without user/kernel side-channel
//      mitigation).
#include <iostream>

#include "src/cki/driver_sandbox.h"
#include "src/cki/kernel_app.h"
#include "src/metrics/report.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

void Run() {
  // --- 1: driver sandboxing ------------------------------------------------
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  DriverSandbox sandbox(machine);
  int nic = sandbox.RegisterDriver("nic", [&machine](uint64_t req) {
    machine.ctx().ChargeWork(600);  // driver work: descriptor handling
    return req + 1;
  });

  constexpr int kCalls = 1000;
  SimNanos t0 = machine.ctx().clock().now();
  for (int i = 0; i < kCalls; ++i) {
    sandbox.CallDriver(nic, static_cast<uint64_t>(i));
  }
  double per_call = static_cast<double>(machine.ctx().clock().now() - t0) / kCalls;

  ReportTable drivers("Future work 1: untrusted-driver isolation cost (ns per call)", "mechanism",
                      {"gate only", "incl. 600ns driver work"});
  drivers.AddRow("CKI PKS sandbox (ring 0)",
                 {static_cast<double>(sandbox.GateCost()), per_call});
  drivers.AddRow("microkernel IPC (ring 3)",
                 {static_cast<double>(sandbox.MicrokernelIpcCost()),
                  static_cast<double>(sandbox.MicrokernelIpcCost()) + 600});
  drivers.Print(std::cout, 0);
  std::cout << "PKS keys used per address space: 1 shared + 1 kernel-private + "
            << sandbox.driver_count() << " driver domain(s)\n\n";

  // --- 2: kernel-level syscall optimization ---------------------------------
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  InKernelApp app(bed.machine(), bed.engine().kernel(), /*app_key=*/5);
  t0 = bed.ctx().clock().now();
  for (int i = 0; i < kCalls; ++i) {
    app.Call(SyscallRequest{.no = Sys::kGetpid});
  }
  double measured = static_cast<double>(bed.ctx().clock().now() - t0) / kCalls;

  ReportTable syscalls("Future work 2: syscall mechanisms (ns per getpid)", "mechanism",
                       {"cost"});
  syscalls.AddRow("classic syscall (no mitigation)",
                  {static_cast<double>(app.ClassicSyscallCost())});
  syscalls.AddRow("classic syscall + PTI/IBRS",
                  {static_cast<double>(app.ClassicMitigatedSyscallCost())});
  syscalls.AddRow("in-kernel PKS-domain call (measured)", {measured});
  syscalls.Print(std::cout, 0);
  std::cout << "The PKS gate needs no PTI/IBRS because the app domain maps only its\n"
               "own data; against a mitigated kernel it wins ~2.3x on the null call.\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
