// Extension bench: multi-machine scale-out of the simulator itself.
//
// Fixed total work — `--shards` independent simulated machines, each
// booting a container per design and running a page-fault-heavy workload
// — executed repeatedly under a growing worker-thread count (1 → 16,
// capped by `--threads`). Reports wall-clock speedup at fixed work and,
// more importantly, proves the SimCluster determinism contract: the
// merged cluster hash must be bit-identical for every thread count
// (DESIGN.md §9). The process exits non-zero on any hash mismatch, so CI
// can smoke this directly.
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "src/cluster/sim_cluster.h"
#include "src/metrics/report.h"
#include "src/runtime/runtime.h"
#include "src/workloads/mem_apps.h"

namespace cki {
namespace {

constexpr uint32_t kDefaultShards = 24;

// One shard = one machine, one container per paper design, a btree slice
// each. The per-shard seed varies the workload stream so shards are not
// clones (and the hash actually exercises the seed split).
ShardResult RunShard(const ShardTask& task) {
  ShardResult r;
  for (RuntimeKind kind :
       {RuntimeKind::kRunc, RuntimeKind::kHvm, RuntimeKind::kPvm, RuntimeKind::kCki}) {
    Testbed bed(kind, Deployment::kBareMetal);
    SimNanos ns = RunBtreeRatio(bed.engine(), /*lookup_per_insert=*/4, /*total_ops=*/6000,
                                /*seed=*/task.seed ^ static_cast<uint64_t>(kind));
    r.metrics.Hist("scale/btree_ns").Add(ns);
    r.HashMix(static_cast<uint64_t>(kind));
    r.HashMix(ns);
    r.sim_ns += bed.ctx().clock().now();
  }
  r.values["machines"] = 1;
  return r;
}

int Run(const BenchIo& io) {
  const uint32_t shards = io.ShardsOr(kDefaultShards);
  const uint32_t max_threads = io.ThreadsOr(16);
  std::vector<uint32_t> sweep;
  for (uint32_t t = 1; t <= 16 && t <= max_threads; t *= 2) {
    sweep.push_back(t);
  }

  ReportTable table("Cluster scale-out: fixed work, growing thread pool", "threads",
                    {"wall ms", "speedup", "efficiency %", "sim ms total"});
  std::vector<uint64_t> hashes;
  double base_ms = 0;

  for (uint32_t threads : sweep) {
    ClusterConfig cc;
    cc.shards = shards;
    cc.threads = threads;
    cc.root_seed = io.root_seed;
    SimCluster cluster(cc);
    auto t0 = std::chrono::steady_clock::now();
    ClusterResult result = cluster.Run(RunShard);
    auto t1 = std::chrono::steady_clock::now();
    double wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
    if (threads == 1) {
      base_ms = wall_ms;
    }
    double speedup = wall_ms > 0 ? base_ms / wall_ms : 0;
    table.AddRow(std::to_string(threads),
                 {wall_ms, speedup, 100.0 * speedup / threads,
                  static_cast<double>(result.TotalSimNs()) * 1e-6});
    hashes.push_back(result.trace_hash());
  }

  table.Print(std::cout, 2);
  std::cout << "work: " << shards << " shards x 4 designs, root-seed=" << io.root_seed
            << "; host has " << std::thread::hardware_concurrency()
            << " hardware threads (speedup caps at min(threads, cores))\n";
  for (size_t i = 0; i < sweep.size(); ++i) {
    std::cout << "determinism-hash[" << sweep[i] << " threads]: 0x" << std::hex << hashes[i]
              << std::dec << "\n";
  }
  for (uint64_t h : hashes) {
    if (h != hashes.front()) {
      std::cout << "FAIL: determinism hash differs across thread counts\n";
      return 1;
    }
  }
  std::cout << "determinism: OK (identical merged hash at every thread count)\n";
  return 0;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  return cki::Run(cki::BenchIo::Parse(argc, argv));
}
