// Table 4: finish time of TLB-miss-intensive applications (GUPS, BTree
// lookup) in bare-metal. HVM pays the two-dimensional page walk on every
// TLB miss; RunC/PVM/CKI walk one stage (PVM's shadow tables are flat
// one-stage tables, which is why it matches RunC here).
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/virt/hvm_engine.h"
#include "src/workloads/tlb_apps.h"

namespace cki {
namespace {

void Run() {
  ReportTable table("Table 4: TLB-miss-intensive finish time (ms, simulated)", "app",
                    {"RunC-BM", "HVM-BM", "HVM-BM-2M(EPT)", "PVM-BM", "CKI-BM"});

  auto run_gups = [](RuntimeKind kind, bool huge) {
    Testbed bed(kind, Deployment::kBareMetal);
    if (huge) {
      static_cast<HvmEngine&>(bed.engine()).set_ept_huge_pages(true);
    }
    return static_cast<double>(RunGups(bed.engine()).elapsed) * 1e-6;
  };
  auto run_btree = [](RuntimeKind kind, bool huge) {
    Testbed bed(kind, Deployment::kBareMetal);
    if (huge) {
      static_cast<HvmEngine&>(bed.engine()).set_ept_huge_pages(true);
    }
    return static_cast<double>(RunBtreeLookup(bed.engine()).elapsed) * 1e-6;
  };

  table.AddRow("GUPS", {run_gups(RuntimeKind::kRunc, false), run_gups(RuntimeKind::kHvm, false),
                        run_gups(RuntimeKind::kHvm, true), run_gups(RuntimeKind::kPvm, false),
                        run_gups(RuntimeKind::kCki, false)});
  table.AddRow("BTree-Lookup",
               {run_btree(RuntimeKind::kRunc, false), run_btree(RuntimeKind::kHvm, false),
                run_btree(RuntimeKind::kHvm, true), run_btree(RuntimeKind::kPvm, false),
                run_btree(RuntimeKind::kCki, false)});
  table.Print(std::cout, 2);
  std::cout << "Paper (s): GUPS 54.9 / 67.8|67.1 / 54.9 / 55.1;\n"
               "BTree-Lookup 22.6 / 24.1|24.2 / 21.7 / 22.6.\n"
               "Shape: HVM ~19-23% slower on GUPS (2-D walk), ~6% on BTree;\n"
               "EPT huge pages do not remove the 2-D walk cost.\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
