// Ablation: side-channel mitigation costs (PTI + IBRS). The paper's KSM
// gate carries no mitigation because only container-private data is mapped
// in the KSM (section 3.3, citing the unmapped speculation contract). This
// bench re-runs the microbenchmarks with mitigations disabled to show who
// was paying for them.
#include <iostream>

#include "src/metrics/report.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

SimNanos SyscallNs(Testbed& bed) {
  bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
  constexpr int kIters = 64;
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kIters; ++i) {
      bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid});
    }
  });
  return total / kIters;
}

SimNanos HypercallNs(Testbed& bed) {
  constexpr int kIters = 64;
  SimNanos total = bed.Measure([&] {
    for (int i = 0; i < kIters; ++i) {
      bed.engine().GuestHypercall(HypercallOp::kNop);
    }
  });
  return total / kIters;
}

void Run() {
  CostModel mitigated = CostModel::Calibrated();
  CostModel bare = mitigated;
  bare.pti_overhead = 0;
  bare.ibrs_overhead = 0;

  ReportTable table("Side-channel mitigation ablation (ns)", "metric",
                    {"mitigated", "PTI/IBRS off", "delta"});

  auto add = [&](const std::string& label, RuntimeKind kind, bool hypercall) {
    Testbed with(kind, Deployment::kBareMetal, mitigated);
    Testbed without(kind, Deployment::kBareMetal, bare);
    double a = static_cast<double>(hypercall ? HypercallNs(with) : SyscallNs(with));
    double b = static_cast<double>(hypercall ? HypercallNs(without) : SyscallNs(without));
    table.AddRow(label, {a, b, a - b});
  };

  add("PVM syscall", RuntimeKind::kPvm, false);
  add("CKI syscall", RuntimeKind::kCki, false);
  add("PVM hypercall", RuntimeKind::kPvm, true);
  add("CKI hypercall", RuntimeKind::kCki, true);
  table.Print(std::cout, 0);
  std::cout << "PVM pays PTI+IBRS on every syscall (two mitigated CR3 switches);\n"
               "CKI's syscall path has no switches at all, so mitigation settings\n"
               "cannot touch it — only its host-bound hypercalls see the delta.\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
