// Extension bench: virtio-blk storage paths. The unbatchable fsync barrier
// (WAL commit loop) exposes per-exit costs like netperf-RR does on the
// network; the batched sequential scan amortizes them.
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workloads/blk_workload.h"

namespace cki {
namespace {

void Run() {
  ReportTable table("virtio-blk: WAL commits and sequential scan", "config",
                    {"WAL txn/s", "WAL exits/txn", "scan req/s"});
  const std::vector<BenchConfig> configs = {
      {"RunC-BM", RuntimeKind::kRunc, Deployment::kBareMetal},
      {"HVM-BM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"HVM-NST", RuntimeKind::kHvm, Deployment::kNested},
      {"PVM-BM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"PVM-NST", RuntimeKind::kPvm, Deployment::kNested},
      {"CKI-BM", RuntimeKind::kCki, Deployment::kBareMetal},
      {"CKI-NST", RuntimeKind::kCki, Deployment::kNested},
  };
  for (const BenchConfig& config : configs) {
    Testbed wal_bed(config.kind, config.deployment);
    BlkResult wal = RunWalCommit(wal_bed.engine());
    Testbed scan_bed(config.kind, config.deployment);
    BlkResult scan = RunSequentialScan(scan_bed.engine());
    table.AddRow(config.label,
                 {wal.ops_per_sec,
                  static_cast<double>(wal.kicks + wal.interrupts) / 500.0,
                  scan.ops_per_sec});
  }
  table.Print(std::cout, 1);
  std::cout << "Expected shape: WAL (fsync-bound) mirrors the hypercall ladder —\n"
               "CKI > PVM > HVM-BM >> HVM-NST; the batched scan narrows the gap.\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
