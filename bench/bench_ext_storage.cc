// Extension bench: the layered block store + guest page cache (src/blkfs,
// DESIGN.md §15). Four phases, three of them hard gates (CI runs
// `--smoke` under ASan/UBSan and the process exits non-zero on any FAIL):
//
//   1. Per-engine table across the six Fig.16 configurations: WAL commits
//      (fsync barrier per transaction) and a sequential scan run cold
//      then warm, with page-cache hit/miss/readahead/writeback columns.
//      Gate: the warm scan beats the cold scan on the same trace for
//      every engine, and every WAL fsync reached the device as a FLUSH.
//   2. Dedup density: N containers boot from one template image through
//      one LayerStore and each reads the full image. Gate: the base
//      image is materialized in host frames exactly once (not once per
//      container), no container pays a single private frame for it, and
//      after KillFromFault every container's owned + shared frame count
//      is exactly zero.
//   3. Cluster determinism: the same sharded blkfs workload (WAL + scan
//      per container, optional blkfs_io_error chaos) runs at --threads
//      1, 2 and 8. Gate: the combined blkfs + injector + fault-bus trace
//      hash is bit-identical across all three thread counts.
//
// `--chaos-kinds=blkfs_io_error` arms the storage chaos site (injector
// site 14) for phase 3; kind names go through the compile-checked
// FaultKindFromName / BlkfsOpFromName tables so a typo is a startup
// error instead of a silently-disarmed site.
#include <iomanip>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/blkfs/blkfs.h"
#include "src/cki/cki_engine.h"
#include "src/cluster/sim_cluster.h"
#include "src/fault/fault_injector.h"
#include "src/metrics/report.h"
#include "src/workloads/blkfs_workload.h"

namespace cki {
namespace {

constexpr uint64_t kWalName = 0x6c6177;      // "wal"
constexpr uint64_t kDataName = 0x64617461;   // "data"
constexpr uint64_t kScanBlocks = 192;        // fits the 256-page cache with the WAL window
constexpr uint64_t kCkiSegmentPages = 1024;  // small per-container segment for density

// The template image every phase boots from: a 64-block WAL window plus
// the scan file. Phase 2 swaps in a larger single-file root image.
BlkfsImageSpec BenchSpec(uint64_t data_blocks) {
  return BlkfsImageSpec{{{.name = kWalName, .blocks = 64, .tag_seed = 7},
                         {.name = kDataName, .blocks = data_blocks, .tag_seed = 9}}};
}

std::unique_ptr<ContainerEngine> NewEngine(Machine& machine, RuntimeKind kind) {
  if (kind == RuntimeKind::kCki) {
    return std::make_unique<CkiEngine>(machine, CkiAblation::kNone, kCkiSegmentPages);
  }
  return MakeEngine(machine, kind);
}

// --- phase 1: per-engine cache columns + warm-beats-cold gate -------------

int RunEngineTable(const BenchIo& io, BenchObsSink* sink, bool smoke) {
  (void)io;
  const int wal_txns = smoke ? 64 : 200;
  int rc = 0;
  ReportTable table("blkfs: WAL commits and cold/warm sequential scan", "config",
                    {"WAL txn/s", "flush/txn", "cold scan req/s", "warm scan req/s",
                     "warm hit%", "readahead", "writebacks"});
  for (const BenchConfig& config : Fig16Configs()) {
    Testbed bed(config.kind, config.deployment);
    LayerStore store(bed.machine());
    BlkfsImageSpec spec = BenchSpec(kScanBlocks);
    int image = BuildBlkfsImage(store, spec);
    Blkfs fs(bed.engine(), store, image, spec);

    if (sink->active()) {
      bed.ctx().obs().Enable();
      bed.ctx().obs().set_owner(bed.engine().id());
      bed.ctx().obs().set_sample_every(sink->io().sample_every);
    }
    SimNanos t0 = bed.ctx().clock().now();
    BlkfsRunResult wal = RunBlkfsWal(bed.engine(), fs, wal_txns, kWalName);
    BlkfsRunResult cold = RunBlkfsScan(bed.engine(), fs, kDataName, kScanBlocks);
    BlkfsRunResult warm = RunBlkfsScan(bed.engine(), fs, kDataName, kScanBlocks);
    if (sink->active()) {
      bed.ctx().obs().Disable();
      fs.ExportMetrics(bed.ctx().obs().metrics());
      sink->AddConfig("storage/" + config.label, bed.ctx().clock().now() - t0, bed.ctx().obs());
    }

    double warm_lookups = static_cast<double>(warm.hits + warm.misses);
    table.AddRow(config.label,
                 {wal.ops_per_sec, static_cast<double>(wal.dev_flushes) / wal_txns,
                  cold.ops_per_sec, warm.ops_per_sec,
                  warm_lookups > 0 ? 100.0 * static_cast<double>(warm.hits) / warm_lookups : 0,
                  static_cast<double>(cold.readahead), static_cast<double>(wal.writebacks)});

    if (wal.dev_flushes < static_cast<uint64_t>(wal_txns)) {
      std::cout << "FAIL: " << config.label << " WAL issued " << wal.dev_flushes
                << " device flushes for " << wal_txns << " fsyncs (barrier path skipped)\n";
      rc = 1;
    }
    if (warm.elapsed >= cold.elapsed) {
      std::cout << "FAIL: " << config.label << " warm scan (" << warm.elapsed
                << " ns) did not beat the cold scan (" << cold.elapsed
                << " ns) on the same trace\n";
      rc = 1;
    }
  }
  table.Print(std::cout, 1);
  if (rc == 0) {
    std::cout << "cache: OK (warm scan beat cold scan on every engine; every fsync "
                 "reached the device)\n";
  }
  std::cout << "\n";
  return rc;
}

// --- phase 2: one image, N containers, exact frame accounting -------------

int RunDedupDensity(bool smoke) {
  const uint32_t n = smoke ? 8 : 32;
  const uint64_t image_blocks = smoke ? 128 : 512;
  const uint64_t root_name = 0x726f6f74;  // "root"

  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  LayerStore store(machine);
  BlkfsImageSpec spec{{{.name = root_name, .blocks = image_blocks, .tag_seed = 21}}};
  int image = BuildBlkfsImage(store, spec);

  // The cache holds the whole image so nothing evicts mid-measurement and
  // the share counts below are exact.
  BlkfsConfig cfg;
  cfg.cache_pages = image_blocks;

  std::vector<std::unique_ptr<ContainerEngine>> engines;
  std::vector<std::unique_ptr<Blkfs>> fss;  // destroyed before the engines
  uint64_t private_delta = 0;
  uint64_t boot_frames = 0;
  for (uint32_t i = 0; i < n; ++i) {
    engines.push_back(NewEngine(machine, RuntimeKind::kCki));
    engines.back()->Boot();
    uint64_t booted = machine.frames().OwnedFrames(engines.back()->id());
    boot_frames += booted;
    fss.push_back(std::make_unique<Blkfs>(*engines.back(), store, image, spec, cfg));
    RunBlkfsScan(*engines.back(), *fss.back(), root_name, image_blocks);
    private_delta += machine.frames().OwnedFrames(engines.back()->id()) - booted;
  }

  uint64_t materialized = store.materialized_frames(image);
  uint64_t shared_maps = 0;
  for (const auto& e : engines) {
    shared_maps += machine.frames().SharedFrames(e->id());
  }
  std::cout << "dedup: " << n << " containers x " << image_blocks << "-frame image -> "
            << materialized << " base frames materialized, "
            << static_cast<double>(private_delta) / n << " private frames/ctr, "
            << static_cast<double>(shared_maps) / n << " shared mappings/ctr, "
            << static_cast<double>(materialized + private_delta) / n
            << " physical frames/ctr amortized\n";
  std::cout << "dedup: boot footprint " << static_cast<double>(boot_frames) / n
            << " frames/ctr (kernel + page tables, not image data)\n";

  int rc = 0;
  if (materialized != image_blocks) {
    std::cout << "FAIL: base image materialized " << materialized << " frames, want exactly "
              << image_blocks << " (one physical copy for the fleet)\n";
    rc = 1;
  }
  if (private_delta != 0) {
    std::cout << "FAIL: containers paid " << private_delta
              << " private frames reading a read-only shared image, want 0\n";
    rc = 1;
  }

  for (auto& e : engines) {
    e->KillFromFault();
  }
  uint64_t leaked = 0;
  for (const auto& e : engines) {
    leaked += machine.frames().OwnedFrames(e->id()) + machine.frames().SharedFrames(e->id());
  }
  if (leaked != 0) {
    std::cout << "FAIL: " << leaked << " frames still owned/shared after killing all " << n
              << " containers\n";
    rc = 1;
  }
  if (rc == 0) {
    std::cout << "dedup: OK (one physical image copy, zero private frames, zero leaks "
                 "after reap)\n";
  }
  std::cout << "\n";
  return rc;
}

// --- phase 3: cluster hash identity across thread counts ------------------

struct ClusterOutcome {
  uint64_t hash = 0;
  bool ok = false;
  double wal_txn_s = 0;
  uint64_t io_errors = 0;
};

ClusterOutcome RunClusterOnce(uint32_t shards, uint32_t threads, uint64_t root_seed,
                              double io_error_rate, bool smoke) {
  const int wal_txns = smoke ? 16 : 48;
  const uint64_t scan_blocks = 64;
  const uint32_t containers = 4;

  SimCluster cluster(
      ClusterConfig{.shards = shards, .threads = threads, .root_seed = root_seed});
  ClusterResult result =
      cluster.Run([io_error_rate, wal_txns, scan_blocks, containers](const ShardTask& task) {
        ShardResult shard;
        shard.index = task.index;
        Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
        FaultInjector injector(
            InjectorConfig{.seed = task.seed, .blkfs_io_error_rate = io_error_rate});
        LayerStore store(machine);
        BlkfsImageSpec spec = BenchSpec(scan_blocks);
        int image = BuildBlkfsImage(store, spec);

        BlkfsConfig cfg;
        cfg.cache_pages = 128;
        std::vector<std::unique_ptr<ContainerEngine>> engines;
        std::vector<std::unique_ptr<Blkfs>> fss;  // destroyed before the engines
        double txn_s = 0;
        uint64_t io_errors = 0;
        for (uint32_t i = 0; i < containers; ++i) {
          engines.push_back(
              std::make_unique<CkiEngine>(machine, CkiAblation::kNone, kCkiSegmentPages));
          engines.back()->Boot();
          fss.push_back(std::make_unique<Blkfs>(*engines.back(), store, image, spec, cfg));
          fss.back()->set_injector(&injector);
          BlkfsRunResult wal = RunBlkfsWal(*engines.back(), *fss.back(), wal_txns, kWalName);
          RunBlkfsScan(*engines.back(), *fss.back(), kDataName, scan_blocks);
          RunBlkfsScan(*engines.back(), *fss.back(), kDataName, scan_blocks);
          txn_s += wal.ops_per_sec;
          io_errors += fss.back()->frontend().io_errors();
          shard.HashMix(fss.back()->trace_hash());
        }
        // The full determinism surface: per-container cache traces above,
        // then the chaos schedule and every fault the machine recorded.
        shard.HashMix(injector.trace_hash());
        shard.HashMix(machine.faults().trace_hash());

        for (auto& e : engines) {
          e->KillFromFault();
        }
        uint64_t leaked = 0;
        for (const auto& e : engines) {
          leaked +=
              machine.frames().OwnedFrames(e->id()) + machine.frames().SharedFrames(e->id());
        }
        if (leaked != 0) {
          shard.ok = false;
          shard.error = "leaked " + std::to_string(leaked) + " frames after reap";
        }
        shard.values["wal_txn_s"] = txn_s / containers;
        shard.values["blkfs_io_errors"] = static_cast<double>(io_errors);
        shard.sim_ns = machine.ctx().clock().now();
        return shard;
      });

  ClusterOutcome out;
  out.ok = result.all_ok();
  out.hash = result.trace_hash();
  out.wal_txn_s = result.SumValue("wal_txn_s") / shards;
  out.io_errors = static_cast<uint64_t>(result.SumValue("blkfs_io_errors"));
  if (!out.ok) {
    for (const ShardResult& s : result.shards()) {
      if (!s.ok) {
        std::cout << "FAIL: shard " << s.index << ": " << s.error << "\n";
      }
    }
  }
  return out;
}

int RunClusterDeterminism(const BenchIo& io, bool smoke, double io_error_rate) {
  const uint32_t shards = io.ShardsOr(smoke ? 4 : 8);
  int rc = 0;
  std::cout << "cluster: " << shards << " shards, 4 containers each, chaos rate "
            << io_error_rate << " (blkfs_io_error)\n";
  ClusterOutcome base;
  for (uint32_t threads : {1u, 2u, 8u}) {
    ClusterOutcome out = RunClusterOnce(shards, threads, io.root_seed, io_error_rate, smoke);
    std::cout << "cluster: threads=" << threads << " hash=0x" << std::hex << out.hash
              << std::dec << " wal=" << out.wal_txn_s
              << " txn/s/ctr io-errors=" << out.io_errors << "\n";
    if (!out.ok) {
      rc = 1;
    }
    if (threads == 1) {
      base = out;
    } else if (out.hash != base.hash) {
      std::cout << "FAIL: cluster trace hash drifted across thread counts (threads=1 -> 0x"
                << std::hex << base.hash << ", threads=" << std::dec << threads << " -> 0x"
                << std::hex << out.hash << std::dec << ")\n";
      rc = 1;
    }
  }
  if (rc == 0) {
    std::cout << "cluster: OK (blkfs+injector+fault hash bit-identical at --threads 1/2/8, "
                 "zero leaked frames)\n";
  }
  return rc;
}

int Run(const BenchIo& io, bool smoke, double io_error_rate) {
  BenchObsSink sink(io);
  int rc = RunEngineTable(io, &sink, smoke);
  rc |= RunDedupDensity(smoke);
  rc |= RunClusterDeterminism(io, smoke, io_error_rate);
  if (sink.active() && !sink.Write("bench_ext_storage")) {
    rc = 1;
  }
  return rc;
}

// --chaos-kinds parsing through the compile-checked name tables: the only
// storage chaos site is blkfs_io_error (injector site 14); a blkfs *op*
// name gets a targeted error instead of "unknown".
bool ParseChaosKinds(std::string_view list, double* io_error_rate) {
  while (!list.empty()) {
    size_t comma = list.find(',');
    std::string_view name = list.substr(0, comma);
    list = comma == std::string_view::npos ? std::string_view() : list.substr(comma + 1);
    if (name.empty()) {
      continue;
    }
    auto kind = FaultKindFromName(name);
    if (!kind.has_value()) {
      if (BlkfsOpFromName(name) != BlkfsOp::kCount) {
        std::cerr << "error: --chaos-kinds: '" << name
                  << "' is a blkfs trace op, not an injectable fault kind\n";
      } else {
        std::cerr << "error: --chaos-kinds: unknown fault kind '" << name << "'\n";
      }
      return false;
    }
    if (*kind != FaultKind::kBlkfsIoError) {
      std::cerr << "error: --chaos-kinds: '" << name
                << "' is not a storage kind (this bench arms site 14 only)\n";
      return false;
    }
    *io_error_rate = 0.01;
  }
  return true;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  // Strip --smoke and --chaos-kinds before BenchIo sees (and rejects) them.
  bool smoke = false;
  std::string chaos_kinds;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    std::string_view arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--chaos-kinds=", 0) == 0) {
      chaos_kinds = arg.substr(std::string_view("--chaos-kinds=").size());
    } else {
      args.push_back(argv[i]);
    }
  }
  double io_error_rate = 0;
  if (!cki::ParseChaosKinds(chaos_kinds, &io_error_rate)) {
    return 2;
  }
  return cki::Run(cki::BenchIo::Parse(static_cast<int>(args.size()), args.data()), smoke,
                  io_error_rate);
}
