// Extension bench: cold start vs snapshot restore vs CoW clone (src/snap).
//
// For each engine and each container count N in {1, 16, 64, 256}, starts
// N containers three ways on one machine and reports per-container
// simulated latency plus the per-container dirty-memory footprint:
//   * cold    — boot a fresh engine and run the warm-up workload from
//               scratch (the serverless cold-start baseline),
//   * restore — RestoreContainer() from one checkpoint of a warmed
//               template (every frame copied, no sharing),
//   * clone   — CloneContainer() from the live template (CoW frame
//               sharing), then dirty a 16-page working set so the clone
//               pays its realistic first-write CoW breaks.
//
// Hard self-check (CI runs `--smoke` under ASan/UBSan): the CKI clone
// path must start containers at least 5x faster than cold boot at N=64,
// and a checkpoint restored on two fresh SimCluster shards must replay a
// deterministic workload bit-identically (cross-shard migration). The
// process exits non-zero if either property fails.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/cki/cki_engine.h"
#include "src/cluster/sim_cluster.h"
#include "src/metrics/report.h"
#include "src/runtime/runtime.h"
#include "src/snap/snap_stream.h"
#include "src/snap/snapshot.h"

namespace cki {
namespace {

// Clones share the template's CKI segment budget, so density runs want a
// small per-container segment instead of the 2 GiB production default.
constexpr uint64_t kCkiSegmentPages = 1024;
constexpr uint64_t kWarmMmapPages = 384;
constexpr uint64_t kCloneDirtyPages = 16;
constexpr double kRequiredCloneSpeedup = 5.0;

std::vector<BenchConfig> Configs() {
  return {
      {"RunC", RuntimeKind::kRunc, Deployment::kBareMetal},
      {"HVM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
      {"gVisor", RuntimeKind::kGvisor, Deployment::kBareMetal},
  };
}

std::unique_ptr<ContainerEngine> NewEngine(Machine& machine, RuntimeKind kind) {
  if (kind == RuntimeKind::kCki) {
    return std::make_unique<CkiEngine>(machine, CkiAblation::kNone, kCkiSegmentPages);
  }
  return MakeEngine(machine, kind);
}

// The serverless "function warm-up": page in code+data via anonymous
// memory and stage a request log in tmpfs. Returns the mapping base so
// later phases can dirty the same working set.
uint64_t WarmWorkload(ContainerEngine& e) {
  SyscallResult r = e.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 1});
  if (r.ok()) {
    uint64_t fd = static_cast<uint64_t>(r.value);
    e.UserSyscall(SyscallRequest{.no = Sys::kWrite, .arg0 = fd, .arg1 = 16384});
    e.UserSyscall(SyscallRequest{.no = Sys::kClose, .arg0 = fd});
  }
  return e.MmapAnon(kWarmMmapPages * kPageSize, /*populate=*/true);
}

// Deterministic post-start probe used by the migration check: syscall
// results + kernel counters, folded FNV-1a style. No clock reads.
uint64_t WorkloadHash(ContainerEngine& e) {
  uint64_t h = kFnvOffsetBasis;
  auto mix = [&h](uint64_t v) { h = FnvMix64(h, v); };
  mix(static_cast<uint64_t>(e.UserSyscall(SyscallRequest{.no = Sys::kGetpid}).value));
  mix(static_cast<uint64_t>(e.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 1}).value));
  mix(static_cast<uint64_t>(e.UserSyscall(SyscallRequest{.no = Sys::kBrk, .arg0 = 0}).value));
  uint64_t extra = e.MmapAnon(4 * kPageSize, /*populate=*/true);
  mix(extra);
  mix(static_cast<uint64_t>(e.UserTouch(extra, /*write=*/true)));
  mix(e.kernel().total_syscalls());
  mix(e.kernel().total_page_faults());
  return h;
}

struct ScaleRow {
  double cold_us_per = 0;
  double restore_us_per = 0;
  double clone_us_per = 0;
  double speedup = 0;
  double cold_frames = 0;
  double clone_dirty_frames = 0;
};

ScaleRow RunScale(const BenchConfig& config, uint32_t n) {
  Machine machine(MachineConfigFor(config.kind, config.deployment));
  SimContext& ctx = machine.ctx();
  ScaleRow row;

  // Cold starts: boot + warm from scratch, N times.
  {
    std::vector<std::unique_ptr<ContainerEngine>> engines;
    SimNanos t0 = ctx.clock().now();
    for (uint32_t i = 0; i < n; ++i) {
      engines.push_back(NewEngine(machine, config.kind));
      engines.back()->Boot();
      WarmWorkload(*engines.back());
    }
    row.cold_us_per = static_cast<double>(ctx.clock().now() - t0) * 1e-3 / n;
    uint64_t frames = 0;
    for (const auto& e : engines) {
      frames += machine.frames().OwnedFrames(e->id());
    }
    row.cold_frames = static_cast<double>(frames) / n;
    for (auto& e : engines) {
      e->KillFromFault();  // release frames before the next phase
    }
  }

  // Template for the snapshot paths.
  std::unique_ptr<ContainerEngine> tmpl = NewEngine(machine, config.kind);
  tmpl->Boot();
  uint64_t base = WarmWorkload(*tmpl);
  SnapshotImage image = CheckpointContainer(*tmpl);

  // Restores: full frame copies from the image, no sharing.
  {
    std::vector<std::unique_ptr<ContainerEngine>> engines;
    SimNanos t0 = ctx.clock().now();
    for (uint32_t i = 0; i < n; ++i) {
      RestoreOutcome out = RestoreContainer(machine, image);
      if (!out.ok) {
        std::cerr << "restore failed for " << config.label << " at n=" << n << "\n";
        std::exit(1);
      }
      engines.push_back(std::move(out.engine));
    }
    row.restore_us_per = static_cast<double>(ctx.clock().now() - t0) * 1e-3 / n;
    for (auto& e : engines) {
      e->KillFromFault();
    }
  }

  // Clones: CoW shares, then each clone dirties its 16-page working set.
  {
    std::vector<std::unique_ptr<ContainerEngine>> clones;
    SimNanos t0 = ctx.clock().now();
    for (uint32_t i = 0; i < n; ++i) {
      clones.push_back(CloneContainer(*tmpl));
      // CloneContainer leaves the clone's address space active on the CPU.
      for (uint64_t p = 0; p < kCloneDirtyPages; ++p) {
        clones.back()->UserTouch(base + p * kPageSize, /*write=*/true);
      }
    }
    row.clone_us_per = static_cast<double>(ctx.clock().now() - t0) * 1e-3 / n;
    uint64_t dirty = 0;
    for (const auto& c : clones) {
      dirty += machine.frames().OwnedFrames(c->id());
    }
    row.clone_dirty_frames = static_cast<double>(dirty) / n;
    for (auto& c : clones) {
      c->KillFromFault();
    }
  }

  row.speedup = row.clone_us_per > 0 ? row.cold_us_per / row.clone_us_per : 0;
  return row;
}

// Checkpoint on the source machine, restore on two fresh cluster shards,
// and require the deterministic workload to replay bit-identically.
int RunMigrationCheck(uint64_t root_seed) {
  Machine source(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  std::unique_ptr<ContainerEngine> tmpl = NewEngine(source, RuntimeKind::kCki);
  tmpl->Boot();
  WarmWorkload(*tmpl);
  SnapshotImage image = CheckpointContainer(*tmpl);
  const uint64_t want = WorkloadHash(*tmpl);

  SimCluster cluster(ClusterConfig{.shards = 2, .threads = 2, .root_seed = root_seed});
  ClusterResult result = cluster.Run([&image, want](const ShardTask& task) {
    ShardResult shard;
    shard.index = task.index;
    Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
    RestoreOutcome out = RestoreContainer(machine, image);
    if (!out.ok) {
      shard.ok = false;
      shard.error = "restore failed on shard";
      return shard;
    }
    uint64_t h = WorkloadHash(*out.engine);
    shard.HashMix(h);
    shard.ok = h == want;
    if (!shard.ok) {
      shard.error = "workload hash diverged after migration";
    }
    return shard;
  });

  std::cout << "migration: image=" << image.bytes.size() << " B hash=0x" << std::hex
            << image.content_hash() << " cluster-hash=0x" << result.trace_hash() << std::dec
            << "\n";
  if (!result.all_ok() ||
      result.shards()[0].trace_hash() != result.shards()[1].trace_hash()) {
    std::cout << "FAIL: cross-shard migration did not reproduce the workload\n";
    return 1;
  }
  std::cout << "migration: OK (both shards replayed the source workload bit-identically)\n";
  return 0;
}

int Run(const BenchIo& io, bool smoke) {
  std::vector<uint32_t> scales = smoke ? std::vector<uint32_t>{1, 64}
                                       : std::vector<uint32_t>{1, 16, 64, 256};
  int rc = 0;
  double cki_speedup_at_64 = 0;

  for (uint32_t n : scales) {
    ReportTable table("Container start: cold boot vs restore vs CoW clone, N=" +
                          std::to_string(n),
                      "engine",
                      {"cold us/ctr", "restore us/ctr", "clone us/ctr", "clone speedup",
                       "cold frames", "clone dirty"});
    for (const BenchConfig& config : Configs()) {
      ScaleRow row = RunScale(config, n);
      table.AddRow(config.label, {row.cold_us_per, row.restore_us_per, row.clone_us_per,
                                  row.speedup, row.cold_frames, row.clone_dirty_frames});
      if (config.kind == RuntimeKind::kCki && n == 64) {
        cki_speedup_at_64 = row.speedup;
      }
    }
    table.Print(std::cout, 1);
    std::cout << "\n";
  }

  std::cout << "clone working set: " << kCloneDirtyPages << " dirty pages of a "
            << kWarmMmapPages << "-page template\n";
  if (cki_speedup_at_64 < kRequiredCloneSpeedup) {
    std::cout << "FAIL: CKI clone speedup at N=64 is " << cki_speedup_at_64 << "x, need >= "
              << kRequiredCloneSpeedup << "x\n";
    rc = 1;
  } else {
    std::cout << "speedup: OK (CKI clone " << cki_speedup_at_64 << "x faster than cold at N=64)\n";
  }

  rc |= RunMigrationCheck(io.root_seed);
  return rc;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  // Strip --smoke before BenchIo sees (and rejects) it.
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  return cki::Run(cki::BenchIo::Parse(static_cast<int>(args.size()), args.data()), smoke);
}
