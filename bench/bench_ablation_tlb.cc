// Ablation: one- vs two-dimensional page-walk cost as the working set
// scales past TLB reach — the mechanism behind Table 4. Sweeps the table
// size and reports per-access cost and TLB miss rate for 1-stage (CKI/RunC)
// vs 2-stage (HVM) translation.
#include <iostream>

#include "src/metrics/report.h"
#include "src/runtime/runtime.h"
#include "src/sim/rng.h"
#include "src/workloads/tlb_apps.h"

namespace cki {
namespace {

void Run() {
  const int sizes[] = {256, 512, 1024, 4096, 16384, 65536};  // pages
  std::vector<std::string> cols;
  for (int s : sizes) {
    cols.push_back(std::to_string(s * 4 / 1024) + "MiB");
  }
  ReportTable cost("TLB ablation: ns per random access vs working set", "config", cols);
  ReportTable miss("TLB ablation: miss rate (%)", "config", cols);

  for (RuntimeKind kind : {RuntimeKind::kRunc, RuntimeKind::kHvm, RuntimeKind::kCki}) {
    std::vector<double> cost_row;
    std::vector<double> miss_row;
    for (int pages : sizes) {
      Testbed bed(kind, Deployment::kBareMetal);
      TlbAppResult r = RunGups(bed.engine(), /*updates=*/50000, pages);
      cost_row.push_back(static_cast<double>(r.elapsed) / 50000.0);
      double total = static_cast<double>(r.tlb_misses + r.tlb_hits);
      miss_row.push_back(total > 0 ? 100.0 * static_cast<double>(r.tlb_misses) / total : 0);
    }
    cost.AddRow(std::string(RuntimeKindName(kind)), cost_row);
    miss.AddRow(std::string(RuntimeKindName(kind)), miss_row);
  }
  cost.Print(std::cout, 1);
  miss.Print(std::cout, 1);
  std::cout << "Expected: costs converge while the set fits the TLB; once misses\n"
               "dominate, HVM pays the 24-reference 2-D walk vs 4 references (1-D).\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
