// Raw simulator speed gate (ROADMAP item 4, DESIGN.md §14).
//
// Runs the full Figure 13 sweep (55 independent simulated machines) at
// --threads 1, 2 and 8 and reports wall clock, simulated ops/sec (trace
// events retired per wall second) and containers per wall second. Speedups
// are only real if results never move, so the bench hard-fails (exit 1) if
//
//  * the merged determinism hash differs across any two thread counts, or
//  * the hash drifts from the pre-refactor golden pinned below.
//
// The golden changes ONLY when the simulated workload or cost model
// legitimately changes — never because a host-side data structure got
// faster. A perf refactor that moves this hash is a broken refactor
// (DESIGN.md §14 explains how to prove a change hash-neutral).
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iostream>
#include <string_view>
#include <vector>

#include "bench/bench_util.h"
#include "bench/fig13_cells.h"
#include "src/cluster/sim_cluster.h"
#include "src/metrics/report.h"

namespace cki {
namespace {

// Merged fig13-sweep hash, pinned before the ISSUE-9 raw-speed refactor
// (bench_fig13_sweep "determinism-hash" line). Cells consume no random
// draws, so the hash is independent of --root-seed.
constexpr uint64_t kGoldenHash = 0x487be7a142a8c9daULL;

struct SpeedRun {
  uint32_t threads = 1;
  double wall_ms = 0;
  double events = 0;      // simulated ops: trace events retired
  double sim_ns = 0;      // aggregate simulated machine-time
  uint64_t hash = 0;
  size_t cells = 0;

  double MopsPerSec() const { return wall_ms > 0 ? events / 1e3 / wall_ms : 0; }
  double CellsPerSec() const { return wall_ms > 0 ? cells * 1e3 / wall_ms : 0; }
  // Simulated seconds retired per wall second ("how much faster than the
  // fiction's own hardware the simulator runs").
  double SimPerWall() const { return wall_ms > 0 ? sim_ns / 1e6 / wall_ms : 0; }
};

SpeedRun RunSweep(const std::vector<Fig13Cell>& cells, uint32_t threads, uint64_t root_seed) {
  ClusterConfig cc;
  cc.shards = static_cast<uint32_t>(cells.size());
  cc.threads = threads;
  cc.root_seed = root_seed;
  SimCluster cluster(cc);

  auto t0 = std::chrono::steady_clock::now();
  ClusterResult result = cluster.Run([&cells](const ShardTask& task) {
    return RunFig13Cell(cells[task.index]);
  });
  auto t1 = std::chrono::steady_clock::now();

  SpeedRun run;
  run.threads = threads;
  run.wall_ms = std::chrono::duration<double, std::milli>(t1 - t0).count();
  run.events = result.SumValue("events");
  run.sim_ns = static_cast<double>(result.TotalSimNs());
  run.hash = result.trace_hash();
  run.cells = cells.size();
  return run;
}

int Run(const BenchIo& io, bool smoke) {
  const std::vector<Fig13Cell> cells = Fig13CellList();
  const uint32_t thread_counts[] = {1, 2, 8};
  // Timing noise: keep the best (fastest) wall clock of `reps` runs per
  // thread count; hashes are checked on every rep.
  const int reps = smoke ? 1 : 3;

  std::vector<SpeedRun> runs;
  bool hash_ok = true;
  for (uint32_t threads : thread_counts) {
    SpeedRun best;
    for (int rep = 0; rep < reps; ++rep) {
      SpeedRun r = RunSweep(cells, threads, io.root_seed);
      if (rep == 0 || r.wall_ms < best.wall_ms) {
        best = r;
      }
      if (r.hash != kGoldenHash) {
        hash_ok = false;
      }
    }
    runs.push_back(best);
  }

  ReportTable table("bench_ext_simspeed: fig13 sweep raw speed", "threads",
                    {"wall_ms", "Mops/s", "cells/s", "sim_s_per_wall_s"});
  for (const SpeedRun& r : runs) {
    table.AddRow(std::to_string(r.threads),
                 {r.wall_ms, r.MopsPerSec(), r.CellsPerSec(), r.SimPerWall()});
  }
  table.Print(std::cout, 2);

  double peak_mops = 0;
  for (const SpeedRun& r : runs) {
    peak_mops = std::max(peak_mops, r.MopsPerSec());
  }
  std::cout << "cells: " << cells.size() << ", simulated ops: "
            << static_cast<uint64_t>(runs[0].events) << ", peak "
            << peak_mops << " Mops/s\n";
  for (const SpeedRun& r : runs) {
    std::cout << "determinism-hash[threads=" << r.threads << "]: 0x" << std::hex << r.hash
              << std::dec << "\n";
  }

  if (!io.json_out.empty()) {
    std::ofstream os(io.json_out);
    os << "{\"bench\":\"ext_simspeed\",\"cells\":" << cells.size() << ",\"runs\":[";
    for (size_t i = 0; i < runs.size(); ++i) {
      const SpeedRun& r = runs[i];
      char hash_hex[32];
      std::snprintf(hash_hex, sizeof(hash_hex), "0x%016llx",
                    static_cast<unsigned long long>(r.hash));
      os << (i > 0 ? ",\n" : "\n") << "{\"threads\":" << r.threads << ",\"wall_ms\":" << r.wall_ms
         << ",\"events\":" << static_cast<uint64_t>(r.events)
         << ",\"sim_ns\":" << static_cast<uint64_t>(r.sim_ns)
         << ",\"mops_per_sec\":" << r.MopsPerSec()
         << ",\"cells_per_sec\":" << r.CellsPerSec()
         << ",\"hash\":\"" << hash_hex << "\"}";
    }
    os << "\n]}\n";
    std::cerr << "wrote " << io.json_out << "\n";
  }

  // Hard gates.
  int rc = 0;
  for (size_t i = 1; i < runs.size(); ++i) {
    if (runs[i].hash != runs[0].hash) {
      std::cerr << "FAIL: determinism hash differs across thread counts ("
                << runs[0].threads << " vs " << runs[i].threads << ")\n";
      rc = 1;
    }
  }
  if (!hash_ok) {
    std::cerr << "FAIL: determinism hash drifted from pre-refactor golden 0x" << std::hex
              << kGoldenHash << std::dec
              << " — the refactor changed simulated results, not just speed\n";
    rc = 1;
  }
  if (rc == 0) {
    std::cout << "simspeed gate ok: hash bit-identical at threads 1/2/8 and equal to golden\n";
  }
  return rc;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  // Strip --smoke before BenchIo sees (and rejects) it.
  bool smoke = false;
  std::vector<char*> args;
  for (int i = 0; i < argc; ++i) {
    if (std::string_view(argv[i]) == "--smoke") {
      smoke = true;
    } else {
      args.push_back(argv[i]);
    }
  }
  return cki::Run(cki::BenchIo::Parse(static_cast<int>(args.size()), args.data()), smoke);
}
