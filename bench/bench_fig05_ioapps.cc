// Figure 5 (motivation): I/O-intensive application throughput of existing
// secure containers vs RunC-BM. Headline: nested HVM degrades I/O-intensive
// applications by 1.8x~4.3x relative to PVM (which avoids L0 exits).
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workloads/io_apps.h"

namespace cki {
namespace {

void Run() {
  std::vector<std::string> app_names;
  for (const IoAppSpec& spec : IoAppSuite()) {
    app_names.emplace_back(spec.name);
  }
  ReportTable tput("Figure 5: motivation, I/O-intensive throughput (req/s)", "config", app_names);

  for (const BenchConfig& config : MotivationConfigs()) {
    std::vector<double> row;
    for (const IoAppSpec& spec : IoAppSuite()) {
      Testbed bed(config.kind, config.deployment);
      row.push_back(RunIoApp(bed.engine(), spec));
    }
    tput.AddRow(config.label, row);
  }
  tput.Print(std::cout, 0);
  tput.NormalizedTo("RunC-BM", /*invert=*/true).Print(std::cout, 3);

  // The paper's PVM-vs-HVM nested ratio (1.8x ~ 4.3x).
  std::cout << "HVM-NST vs PVM-NST throughput ratio (PVM/HVM):\n";
  for (size_t i = 0; i < tput.columns().size(); ++i) {
    double hvm = tput.ValueAt("HVM-NST", i);
    double pvm = tput.ValueAt("PVM-NST", i);
    std::cout << "  " << tput.columns()[i] << ": " << (hvm > 0 ? pvm / hvm : 0) << "x\n";
  }
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
