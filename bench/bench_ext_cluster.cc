// Extension benchmark: a two-hop service chain (load generator ->
// nginx-style proxy container -> redis-style backend container) on one
// machine, swept across engines and concurrency. Each request crosses every
// container boundary twice, so the designs' kick/interrupt/syscall costs
// amplify across hops — the cluster-level view the single-container figures
// cannot show. The obs layer attributes the measured time per hop
// (chain/client, chain/proxy, chain/backend) and the per-hop totals must
// sum to the measured elapsed time.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/obs/span_profiler.h"
#include "src/runtime/runtime.h"
#include "src/workloads/service_chain.h"

namespace cki {
namespace {

constexpr int kConcurrencies[] = {1, 4, 16, 64};
constexpr int kRequests = 1000;
constexpr int kHopDetailConc = 16;  // concurrency shown in the per-hop table

SimNanos SpanTotal(const SpanProfiler& prof, std::string_view name) {
  int node = prof.FindChild(-1, name);
  return node < 0 ? 0 : prof.nodes()[static_cast<size_t>(node)].total;
}

struct SweepPoint {
  ChainResult result;
  SimNanos client_ns = 0;
  SimNanos proxy_ns = 0;
  SimNanos backend_ns = 0;
  SimNanos hop_sum() const { return client_ns + proxy_ns + backend_ns; }
};

SweepPoint RunPoint(const BenchConfig& config, int concurrency, BenchObsSink* sink) {
  Machine machine(MachineConfigFor(config.kind, config.deployment));
  std::unique_ptr<ContainerEngine> proxy = MakeEngine(machine, config.kind);
  proxy->Boot();
  std::unique_ptr<ContainerEngine> backend = MakeEngine(machine, config.kind);
  backend->Boot();

  // Observe every run (not just when exporting): the per-hop span totals
  // feed both the per-hop table and the consistency check below.
  SimContext& ctx = machine.ctx();
  SimNanos observed_from = ctx.clock().now();
  ctx.obs().Enable();
  ctx.obs().set_owner(0);
  ChainConfig chain{.concurrency = concurrency, .total_requests = kRequests};
  SweepPoint point;
  point.result = RunServiceChain(*proxy, *backend, chain);
  ctx.obs().Disable();
  // Everything the clock did while observed (connection setup included)
  // sits under a root span, so the exported root totals sum to this window.
  SimNanos observed_ns = ctx.clock().now() - observed_from;

  const SpanProfiler& prof = ctx.obs().profiler();
  point.client_ns = SpanTotal(prof, "chain/client");
  point.proxy_ns = SpanTotal(prof, "chain/proxy");
  point.backend_ns = SpanTotal(prof, "chain/backend");
  if (sink != nullptr && sink->active()) {
    sink->AddConfig(std::string(config.label) + "/c" + std::to_string(concurrency),
                    observed_ns, ctx.obs());
  }
  return point;
}

void Run(BenchObsSink* sink) {
  std::vector<BenchConfig> configs = Fig16Configs();
  configs.insert(configs.begin(),
                 BenchConfig{"RunC-BM", RuntimeKind::kRunc, Deployment::kBareMetal});

  std::vector<std::string> cols;
  for (int c : kConcurrencies) {
    cols.push_back(std::to_string(c) + " conc");
  }
  ReportTable tput("Cluster chain: end-to-end throughput (kreq/s)", "config", cols);
  ReportTable events("Cluster chain: doorbells + interrupts per request (both hops)",
                     "config", cols);
  ReportTable hops("Cluster chain: per-hop latency at " +
                       std::to_string(kHopDetailConc) + " conc (ns/req)",
                   "config", {"client", "proxy", "backend", "hop sum", "measured"});

  bool spans_consistent = true;
  for (const BenchConfig& config : configs) {
    std::vector<double> tput_row;
    std::vector<double> event_row;
    for (int conc : kConcurrencies) {
      SweepPoint point = RunPoint(config, conc, sink);
      const ChainResult& r = point.result;
      double served = static_cast<double>(r.served > 0 ? r.served : 1);
      tput_row.push_back(r.requests_per_sec * 1e-3);
      event_row.push_back(
          static_cast<double>(r.proxy_nic.kicks + r.backend_nic.kicks +
                              r.proxy_nic.interrupts + r.backend_nic.interrupts) /
          served);
      if (conc == kHopDetailConc) {
        hops.AddRow(config.label, {static_cast<double>(point.client_ns) / served,
                                   static_cast<double>(point.proxy_ns) / served,
                                   static_cast<double>(point.backend_ns) / served,
                                   static_cast<double>(point.hop_sum()) / served,
                                   static_cast<double>(r.elapsed_ns) / served});
      }
      if (point.hop_sum() != r.elapsed_ns) {
        spans_consistent = false;
        std::cerr << "WARNING: " << config.label << " conc=" << conc
                  << ": hop spans sum to " << point.hop_sum()
                  << " ns but measured " << r.elapsed_ns << " ns\n";
      }
    }
    tput.AddRow(config.label, tput_row);
    events.AddRow(config.label, event_row);
  }

  tput.Print(std::cout, 1);
  std::cout << "\n";
  events.Print(std::cout, 2);
  std::cout << "\n";
  hops.Print(std::cout, 0);
  std::cout << (spans_consistent
                    ? "\nPer-hop span totals sum to the measured time for every config.\n"
                    : "\nERROR: span totals diverge from measured time (see warnings).\n")
            << "Doorbells/interrupts per request fall with concurrency (NAPI + doorbell\n"
               "batching); the engine gap widens versus the single-container figures\n"
               "because every hop repays the design's kick/interrupt tax.\n";
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  cki::BenchObsSink sink(cki::BenchIo::Parse(argc, argv));
  cki::Run(&sink);
  return sink.Write("ext_cluster") ? 0 : 1;
}
