// Extension benchmark: a two-hop service chain (load generator ->
// nginx-style proxy container -> redis-style backend container) on one
// machine, swept across engines and concurrency. Each request crosses every
// container boundary twice, so the designs' kick/interrupt/syscall costs
// amplify across hops — the cluster-level view the single-container figures
// cannot show. The obs layer attributes the measured time per hop
// (chain/client, chain/proxy, chain/backend) and the per-hop totals must
// sum to the measured elapsed time.
//
// Two causal-tracing gates ride on top (DESIGN.md §11), and each failure
// makes the binary exit non-zero:
//   * flow continuity — every served response must carry the trace id its
//     request was minted with (ChainResult.matched_traces == served), and
//     at full recording rate the flight recorder must hold the
//     kFlowStart/kFlowStep/kFlowEnd points Perfetto needs to render one
//     request as a single arrow chain across containers.
//   * migration continuity — a request is sent to a CKI backend on machine
//     A, the backend receives it (adopting its trace), is checkpointed
//     mid-flight and restored on machine B, and the response it then sends
//     must still carry machine A's minted trace id. With --trace-out both
//     machines export as separate process tracks joined by one flow.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/net/load_gen.h"
#include "src/net/virt_nic.h"
#include "src/obs/span_profiler.h"
#include "src/runtime/runtime.h"
#include "src/snap/snapshot.h"
#include "src/workloads/service_chain.h"

namespace cki {
namespace {

constexpr int kConcurrencies[] = {1, 4, 16, 64};
constexpr int kRequests = 1000;
constexpr int kHopDetailConc = 16;  // concurrency shown in the per-hop table

SimNanos SpanTotal(const SpanProfiler& prof, std::string_view name) {
  int node = prof.FindChild(-1, name);
  return node < 0 ? 0 : prof.nodes()[static_cast<size_t>(node)].total;
}

struct SweepPoint {
  ChainResult result;
  SimNanos client_ns = 0;
  SimNanos proxy_ns = 0;
  SimNanos backend_ns = 0;
  // Flow points retained by the flight recorder (full rate only; the
  // sampling gate may legitimately suppress them at --sample-every > 1).
  uint64_t flow_starts = 0;
  uint64_t flow_steps = 0;
  uint64_t flow_ends = 0;
  SimNanos hop_sum() const { return client_ns + proxy_ns + backend_ns; }
};

SweepPoint RunPoint(const BenchConfig& config, int concurrency, BenchObsSink* sink) {
  Machine machine(MachineConfigFor(config.kind, config.deployment));
  std::unique_ptr<ContainerEngine> proxy = MakeEngine(machine, config.kind);
  proxy->Boot();
  std::unique_ptr<ContainerEngine> backend = MakeEngine(machine, config.kind);
  backend->Boot();

  // Observe every run (not just when exporting): the per-hop span totals
  // feed both the per-hop table and the consistency check below.
  SimContext& ctx = machine.ctx();
  SimNanos observed_from = ctx.clock().now();
  ctx.obs().Enable();
  ctx.obs().set_owner(0);
  ctx.obs().set_sample_every(sink != nullptr ? sink->io().sample_every : 1);
  ChainConfig chain{.concurrency = concurrency, .total_requests = kRequests};
  SweepPoint point;
  point.result = RunServiceChain(*proxy, *backend, chain);
  ctx.obs().Disable();
  for (const TraceRecord& rec : ctx.obs().recorder().Chronological()) {
    switch (rec.kind) {
      case TraceRecordKind::kFlowStart:
        point.flow_starts++;
        break;
      case TraceRecordKind::kFlowStep:
        point.flow_steps++;
        break;
      case TraceRecordKind::kFlowEnd:
        point.flow_ends++;
        break;
      default:
        break;
    }
  }
  // Everything the clock did while observed (connection setup included)
  // sits under a root span, so the exported root totals sum to this window.
  SimNanos observed_ns = ctx.clock().now() - observed_from;

  const SpanProfiler& prof = ctx.obs().profiler();
  point.client_ns = SpanTotal(prof, "chain/client");
  point.proxy_ns = SpanTotal(prof, "chain/proxy");
  point.backend_ns = SpanTotal(prof, "chain/backend");
  if (sink != nullptr && sink->active()) {
    sink->AddConfig(std::string(config.label) + "/c" + std::to_string(concurrency),
                    observed_ns, ctx.obs());
  }
  return point;
}

int Run(BenchObsSink* sink) {
  std::vector<BenchConfig> configs = Fig16Configs();
  configs.insert(configs.begin(),
                 BenchConfig{"RunC-BM", RuntimeKind::kRunc, Deployment::kBareMetal});

  std::vector<std::string> cols;
  for (int c : kConcurrencies) {
    cols.push_back(std::to_string(c) + " conc");
  }
  ReportTable tput("Cluster chain: end-to-end throughput (kreq/s)", "config", cols);
  ReportTable events("Cluster chain: doorbells + interrupts per request (both hops)",
                     "config", cols);
  ReportTable hops("Cluster chain: per-hop latency at " +
                       std::to_string(kHopDetailConc) + " conc (ns/req)",
                   "config", {"client", "proxy", "backend", "hop sum", "measured"});

  const uint32_t sample_every = sink != nullptr ? sink->io().sample_every : 1;
  bool spans_consistent = true;
  int trace_failures = 0;
  for (const BenchConfig& config : configs) {
    std::vector<double> tput_row;
    std::vector<double> event_row;
    for (int conc : kConcurrencies) {
      SweepPoint point = RunPoint(config, conc, sink);
      const ChainResult& r = point.result;
      double served = static_cast<double>(r.served > 0 ? r.served : 1);
      // Flow continuity: identity must survive every hop — each served
      // response carries the trace id its request was minted with.
      if (r.matched_traces != r.served) {
        trace_failures++;
        std::cerr << "FAIL: " << config.label << " conc=" << conc << ": only "
                  << r.matched_traces << " of " << r.served
                  << " responses carried their request's trace id\n";
      }
      // At full recording rate the recorder must hold the Perfetto flow
      // chain (mint -> hop steps -> response). Presence, not exact counts:
      // the ring legitimately overwrites its oldest records on overflow.
      if (sample_every == 1 &&
          (point.flow_starts == 0 || point.flow_steps == 0 || point.flow_ends == 0)) {
        trace_failures++;
        std::cerr << "FAIL: " << config.label << " conc=" << conc
                  << ": recorder lacks flow points (start=" << point.flow_starts
                  << " step=" << point.flow_steps << " end=" << point.flow_ends << ")\n";
      }
      tput_row.push_back(r.requests_per_sec * 1e-3);
      event_row.push_back(
          static_cast<double>(r.proxy_nic.kicks + r.backend_nic.kicks +
                              r.proxy_nic.interrupts + r.backend_nic.interrupts) /
          served);
      if (conc == kHopDetailConc) {
        hops.AddRow(config.label, {static_cast<double>(point.client_ns) / served,
                                   static_cast<double>(point.proxy_ns) / served,
                                   static_cast<double>(point.backend_ns) / served,
                                   static_cast<double>(point.hop_sum()) / served,
                                   static_cast<double>(r.elapsed_ns) / served});
      }
      // Span totals only cover every round when every root scope records;
      // under --sample-every > 1 the gap is expected, not an error.
      if (sample_every == 1 && point.hop_sum() != r.elapsed_ns) {
        spans_consistent = false;
        std::cerr << "WARNING: " << config.label << " conc=" << conc
                  << ": hop spans sum to " << point.hop_sum()
                  << " ns but measured " << r.elapsed_ns << " ns\n";
      }
    }
    tput.AddRow(config.label, tput_row);
    events.AddRow(config.label, event_row);
  }

  tput.Print(std::cout, 1);
  std::cout << "\n";
  events.Print(std::cout, 2);
  std::cout << "\n";
  hops.Print(std::cout, 0);
  std::cout << (spans_consistent
                    ? "\nPer-hop span totals sum to the measured time for every config.\n"
                    : "\nERROR: span totals diverge from measured time (see warnings).\n")
            << (trace_failures == 0
                    ? "Every served response carried its request's trace id end to end.\n"
                    : "ERROR: causal trace identity was lost on some path (see FAILs).\n")
            << "Doorbells/interrupts per request fall with concurrency (NAPI + doorbell\n"
               "batching); the engine gap widens versus the single-container figures\n"
               "because every hop repays the design's kick/interrupt tax.\n";
  return (spans_consistent ? 0 : 1) + trace_failures;
}

// Mid-flight cross-shard migration: machine A's backend receives a traced
// request (adopting its causal identity), is checkpointed with the request
// logically in service, and the restored container on machine B answers a
// reconnected client — the response must still carry machine A's minted
// trace id (the ambient net trace survives the CKISNAP1 stream). Both
// machines export as separate trace process tracks; with --trace-out the
// request renders as one Perfetto flow crossing them.
int RunMigration(BenchObsSink* sink) {
  constexpr uint16_t kService = 6379;
  const uint32_t sample_every = sink != nullptr ? sink->io().sample_every : 1;

  // --- machine A: serve one traced request halfway, checkpoint ------------
  Machine a(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  SimContext& ctx_a = a.ctx();
  ctx_a.obs().Enable();
  ctx_a.obs().set_sample_every(sample_every);
  std::unique_ptr<ContainerEngine> backend = MakeEngine(a, RuntimeKind::kCki);
  backend->Boot();
  VSwitch sw_a(ctx_a);
  VirtNic nic_a(*backend, sw_a, "mig0");
  LoadGenerator gen_a(ctx_a, sw_a, "clientA", /*trace_seed=*/0xA11CE);
  backend->kernel().set_net(&nic_a);

  SyscallResult lfd = backend->UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = kService, .arg1 = 16});
  int flow = static_cast<int>(gen_a.Connect(nic_a.port(), kService));
  SyscallResult fd = backend->UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
  gen_a.SendRequests(flow, 1, 512);
  backend->UserSyscall(SyscallRequest{.no = Sys::kEpollWait});
  backend->UserSyscall(SyscallRequest{
      .no = Sys::kRecvfrom, .arg0 = static_cast<uint64_t>(fd.value), .arg1 = 1024});
  uint64_t minted = gen_a.last_request_trace();

  int failures = 0;
  if (backend->kernel().net_trace().trace_id != minted) {
    failures++;
    std::cerr << "FAIL: migration: backend did not adopt the request trace on receive\n";
  }
  SnapshotImage image = CheckpointContainer(*backend, nullptr, &nic_a);
  ctx_a.obs().Disable();
  if (sink != nullptr && sink->active()) {
    sink->AddConfig("migrate/shardA", ctx_a.clock().now(), ctx_a.obs());
  }

  // --- machine B: restore, reconnect, answer ------------------------------
  Machine b(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  SimContext& ctx_b = b.ctx();
  ctx_b.obs().Enable();
  ctx_b.obs().set_sample_every(sample_every);
  RestoreOutcome restored = RestoreContainer(b, image);
  if (!restored.ok) {
    std::cerr << "FAIL: migration: restore on machine B failed\n";
    return failures + 1;
  }
  VSwitch sw_b(ctx_b);
  VirtNic nic_b(*restored.engine, sw_b, "mig0");
  ApplySnapshotDeviceState(nic_b, restored.device_state);
  restored.engine->kernel().set_net(&nic_b);

  // Live flows are dropped by design (like real live migration dropping
  // established TCP state): the restored container re-listens and the
  // client reconnects, but the in-service request's identity is kernel
  // state and traveled in the stream.
  SyscallResult lfd_b = restored.engine->UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = kService, .arg1 = 16});
  LoadGenerator gen_b(ctx_b, sw_b, "clientB", /*trace_seed=*/0xB0B);
  gen_b.Connect(nic_b.port(), kService);
  SyscallResult fd_b = restored.engine->UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd_b.value)});
  restored.engine->UserSyscall(SyscallRequest{
      .no = Sys::kSendto, .arg0 = static_cast<uint64_t>(fd_b.value), .arg1 = 256});
  nic_b.Flush();
  ctx_b.obs().Disable();
  if (sink != nullptr && sink->active()) {
    sink->AddConfig("migrate/shardB", ctx_b.clock().now(), ctx_b.obs());
  }

  if (gen_b.last_response_trace() != minted) {
    failures++;
    std::cerr << "FAIL: migration: response trace id 0x" << std::hex
              << gen_b.last_response_trace() << " != minted 0x" << minted << std::dec
              << " — causal identity lost across checkpoint/restore\n";
  }
  std::cout << (failures == 0
                    ? "\nMid-flight migration: the restored backend's response still "
                      "carries the trace id minted on machine A.\n"
                    : "\nERROR: mid-flight migration broke causal tracing (see FAILs).\n");
  return failures;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  cki::BenchObsSink sink(cki::BenchIo::Parse(argc, argv));
  int failures = cki::Run(&sink);
  failures += cki::RunMigration(&sink);
  if (!sink.Write("ext_cluster")) {
    failures++;
  }
  return failures == 0 ? 0 : 1;
}
