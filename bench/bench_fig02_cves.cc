// Figure 2: Linux kernel CVEs exploitable by containers (2022-2023),
// classified by security effect, with the DoS share that motivates
// kernel-separation (VM-level) containers over kernel-sharing (enclave)
// containers.
#include <cstdio>
#include <iostream>

#include "src/metrics/report.h"
#include "src/workloads/cve_data.h"

namespace cki {
namespace {

void Run() {
  ReportTable table("Figure 2: container-exploitable Linux CVEs (209 total)", "effect",
                    {"count", "share %", "DoS", "contained: kernel-sep", "contained: enclave"});
  int total = 0;
  for (const CveClass& c : CveClasses()) {
    total += c.count;
  }
  for (const CveClass& c : CveClasses()) {
    table.AddRow(std::string(c.effect),
                 {static_cast<double>(c.count),
                  100.0 * static_cast<double>(c.count) / static_cast<double>(total),
                  c.dos_capable ? 1.0 : 0.0, ContainedByKernelSeparation(c) ? 1.0 : 0.0,
                  ContainedByKernelSharing(c) ? 1.0 : 0.0});
  }
  table.Print(std::cout, 1);
  std::printf("DoS-capable share: %.1f%% (paper: 97.3%%)\n", DosShare() * 100.0);
  std::printf("Kernel separation contains all %d classes; kernel sharing contains only the\n"
              "non-DoS class (information leakage).\n",
              static_cast<int>(CveClasses().size()));
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
