// Ablation: the primitive costs behind the design (google-benchmark).
// Measures the simulated cost of each privilege-crossing primitive — PKS
// switch, mitigated CR3 switch, mode switch, KSM call, PVM exit, VM exit
// (BM), nested VM exit — the ladder that explains every figure.
#include <benchmark/benchmark.h>

#include "src/cki/cki_engine.h"
#include "src/runtime/runtime.h"
#include "src/virt/hvm_engine.h"
#include "src/virt/pvm_engine.h"

namespace cki {
namespace {

// Reports simulated nanoseconds per operation as the "sim_ns" counter.
template <typename Setup, typename Op>
void RunSim(benchmark::State& state, Setup&& setup, Op&& op) {
  auto bed = setup();
  uint64_t iters = 0;
  SimNanos start = bed->ctx().clock().now();
  for (auto _ : state) {
    op(*bed);
    iters++;
  }
  SimNanos elapsed = bed->ctx().clock().now() - start;
  state.counters["sim_ns"] =
      benchmark::Counter(iters > 0 ? static_cast<double>(elapsed) / static_cast<double>(iters) : 0);
}

void BM_PksSwitchPair(benchmark::State& state) {
  RunSim(
      state,
      [] { return std::make_unique<Testbed>(RuntimeKind::kCki, Deployment::kBareMetal); },
      [](Testbed& bed) {
        auto& engine = static_cast<CkiEngine&>(bed.engine());
        engine.gates().EnterKsm();
        engine.gates().ExitKsm();
      });
}
BENCHMARK(BM_PksSwitchPair);

void BM_KsmCallPteUpdate(benchmark::State& state) {
  auto bed = std::make_unique<Testbed>(RuntimeKind::kCki, Deployment::kBareMetal);
  uint64_t base = bed->engine().MmapAnon(kPageSize, true);
  auto& engine = static_cast<CkiEngine&>(bed->engine());
  uint64_t iters = 0;
  SimNanos start = bed->ctx().clock().now();
  for (auto _ : state) {
    // Re-protect the same page via the monitor-checked path.
    engine.UserSyscall(SyscallRequest{.no = Sys::kMprotect,
                                      .arg0 = base,
                                      .arg1 = kPageSize,
                                      .arg2 = kProtRead | kProtWrite});
    iters++;
  }
  state.counters["sim_ns"] = benchmark::Counter(
      iters > 0 ? static_cast<double>(bed->ctx().clock().now() - start) / iters : 0);
}
BENCHMARK(BM_KsmCallPteUpdate);

void BM_CkiHypercall(benchmark::State& state) {
  RunSim(
      state,
      [] { return std::make_unique<Testbed>(RuntimeKind::kCki, Deployment::kBareMetal); },
      [](Testbed& bed) { bed.engine().GuestHypercall(HypercallOp::kNop); });
}
BENCHMARK(BM_CkiHypercall);

void BM_PvmExit(benchmark::State& state) {
  RunSim(
      state,
      [] { return std::make_unique<Testbed>(RuntimeKind::kPvm, Deployment::kBareMetal); },
      [](Testbed& bed) { bed.engine().GuestHypercall(HypercallOp::kNop); });
}
BENCHMARK(BM_PvmExit);

void BM_VmExitBareMetal(benchmark::State& state) {
  RunSim(
      state,
      [] { return std::make_unique<Testbed>(RuntimeKind::kHvm, Deployment::kBareMetal); },
      [](Testbed& bed) { bed.engine().GuestHypercall(HypercallOp::kNop); });
}
BENCHMARK(BM_VmExitBareMetal);

void BM_VmExitNested(benchmark::State& state) {
  RunSim(
      state,
      [] { return std::make_unique<Testbed>(RuntimeKind::kHvm, Deployment::kNested); },
      [](Testbed& bed) { bed.engine().GuestHypercall(HypercallOp::kNop); });
}
BENCHMARK(BM_VmExitNested);

void BM_SyscallNative(benchmark::State& state) {
  RunSim(
      state,
      [] { return std::make_unique<Testbed>(RuntimeKind::kCki, Deployment::kBareMetal); },
      [](Testbed& bed) { bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid}); });
}
BENCHMARK(BM_SyscallNative);

void BM_SyscallRedirected(benchmark::State& state) {
  RunSim(
      state,
      [] { return std::make_unique<Testbed>(RuntimeKind::kPvm, Deployment::kBareMetal); },
      [](Testbed& bed) { bed.engine().UserSyscall(SyscallRequest{.no = Sys::kGetpid}); });
}
BENCHMARK(BM_SyscallRedirected);

}  // namespace
}  // namespace cki

BENCHMARK_MAIN();
