// Figure 14: SQLite (sqlite-bench on tmpfs) throughput per access pattern
// for PVM / CKI / HVM / RunC, plus the syscall frequency strip. Claim C2:
// CKI increases write-pattern throughput by up to 24% over PVM; reads show
// no significant gap; CKI/HVM/RunC are equivalent (native syscalls, no
// virtualized I/O on tmpfs).
#include <iostream>

#include "bench/bench_util.h"
#include "src/metrics/report.h"
#include "src/workloads/sqlite_bench.h"

namespace cki {
namespace {

void Run() {
  std::vector<std::string> pattern_names;
  for (const SqlitePattern& p : SqliteSuite()) {
    pattern_names.emplace_back(p.name);
  }
  ReportTable tput("Figure 14: SQLite throughput (kops/s)", "config", pattern_names);
  ReportTable freq("Figure 14 (bottom): syscall frequency (M/s)", "config", pattern_names);

  const std::vector<BenchConfig> configs = {
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
      {"HVM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"RunC", RuntimeKind::kRunc, Deployment::kBareMetal},
  };
  for (const BenchConfig& config : configs) {
    std::vector<double> tput_row;
    std::vector<double> freq_row;
    for (const SqlitePattern& p : SqliteSuite()) {
      Testbed bed(config.kind, config.deployment);
      SqliteResult r = RunSqlitePattern(bed.engine(), p);
      tput_row.push_back(r.ops_per_sec * 1e-3);
      freq_row.push_back(r.syscalls_per_sec * 1e-6);
    }
    tput.AddRow(config.label, tput_row);
    freq.AddRow(config.label, freq_row);
  }
  tput.Print(std::cout, 1);
  tput.NormalizedTo("RunC", /*invert=*/true).Print(std::cout, 3);
  freq.Print(std::cout, 2);
  std::cout << "Paper: PVM loses 19~24% on write patterns (syscall redirection\n"
               "proportional to syscall frequency); reads show little gap;\n"
               "CKI == HVM == RunC.\n";
}

}  // namespace
}  // namespace cki

int main() {
  cki::Run();
  return 0;
}
