// Figure 14: SQLite (sqlite-bench on tmpfs) throughput per access pattern
// for PVM / CKI / HVM / RunC, plus the syscall frequency strip. Claim C2:
// CKI increases write-pattern throughput by up to 24% over PVM; reads show
// no significant gap; CKI/HVM/RunC are equivalent (native syscalls, no
// virtualized I/O on tmpfs).
//
// Extension section: the same workload with the database on the blkfs
// block store (src/blkfs) across the six Fig.16 configurations — the
// journal barrier now reaches a device FLUSH and every page access goes
// through the guest page cache, so the table carries cache hit/miss/
// readahead/writeback columns. `--json-out` / `--metrics-csv` dump the
// per-config observability (including the blkfs/* counters).
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/blkfs/blkfs.h"
#include "src/metrics/report.h"
#include "src/workloads/sqlite_bench.h"

namespace cki {
namespace {

// The db file name RunOnce opens (sqlite_bench.cc) and its 64-page
// pre-sized extent, as base blocks of a template image.
constexpr uint64_t kDbName = 777;
constexpr uint64_t kDbBlocks = 64;

const SqlitePattern& PatternNamed(std::string_view name) {
  for (const SqlitePattern& p : SqliteSuite()) {
    if (p.name == name) {
      return p;
    }
  }
  std::cerr << "unknown sqlite pattern: " << name << "\n";
  std::exit(2);
}

void RunTmpfs() {
  std::vector<std::string> pattern_names;
  for (const SqlitePattern& p : SqliteSuite()) {
    pattern_names.emplace_back(p.name);
  }
  ReportTable tput("Figure 14: SQLite throughput (kops/s)", "config", pattern_names);
  ReportTable freq("Figure 14 (bottom): syscall frequency (M/s)", "config", pattern_names);

  const std::vector<BenchConfig> configs = {
      {"PVM", RuntimeKind::kPvm, Deployment::kBareMetal},
      {"CKI", RuntimeKind::kCki, Deployment::kBareMetal},
      {"HVM", RuntimeKind::kHvm, Deployment::kBareMetal},
      {"RunC", RuntimeKind::kRunc, Deployment::kBareMetal},
  };
  for (const BenchConfig& config : configs) {
    std::vector<double> tput_row;
    std::vector<double> freq_row;
    for (const SqlitePattern& p : SqliteSuite()) {
      Testbed bed(config.kind, config.deployment);
      SqliteResult r = RunSqlitePattern(bed.engine(), p);
      tput_row.push_back(r.ops_per_sec * 1e-3);
      freq_row.push_back(r.syscalls_per_sec * 1e-6);
    }
    tput.AddRow(config.label, tput_row);
    freq.AddRow(config.label, freq_row);
  }
  tput.Print(std::cout, 1);
  tput.NormalizedTo("RunC", /*invert=*/true).Print(std::cout, 3);
  freq.Print(std::cout, 2);
  std::cout << "Paper: PVM loses 19~24% on write patterns (syscall redirection\n"
               "proportional to syscall frequency); reads show little gap;\n"
               "CKI == HVM == RunC.\n\n";
}

void RunBlkfs(BenchObsSink* sink) {
  const SqlitePattern& fillseq = PatternNamed("fillseq");
  const SqlitePattern& readrandom = PatternNamed("readrandom");
  ReportTable table("Figure 14 (ext): SQLite on the blkfs block store", "config",
                    {"fillseq kops/s", "readrand kops/s", "cache hit%", "misses",
                     "readahead", "writebacks"});
  for (const BenchConfig& config : Fig16Configs()) {
    Testbed bed(config.kind, config.deployment);
    LayerStore store(bed.machine());
    BlkfsImageSpec spec{{{.name = kDbName, .blocks = kDbBlocks, .tag_seed = 5}}};
    int image = BuildBlkfsImage(store, spec);
    Blkfs fs(bed.engine(), store, image, spec);

    if (sink->active()) {
      bed.ctx().obs().Enable();
      bed.ctx().obs().set_owner(bed.engine().id());
      bed.ctx().obs().set_sample_every(sink->io().sample_every);
    }
    SimNanos t0 = bed.ctx().clock().now();
    BlkfsCounters before = fs.counters();
    SqliteResult w = RunSqlitePatternBlkfs(bed.engine(), fillseq);
    SqliteResult r = RunSqlitePatternBlkfs(bed.engine(), readrandom);
    const BlkfsCounters& after = fs.counters();
    if (sink->active()) {
      bed.ctx().obs().Disable();
      fs.ExportMetrics(bed.ctx().obs().metrics());
      sink->AddConfig("sqlite-blkfs/" + config.label, bed.ctx().clock().now() - t0,
                      bed.ctx().obs());
    }

    double hits = static_cast<double>(after.hits - before.hits);
    double misses = static_cast<double>(after.misses - before.misses);
    double lookups = hits + misses;
    table.AddRow(config.label,
                 {w.ops_per_sec * 1e-3, r.ops_per_sec * 1e-3,
                  lookups > 0 ? 100.0 * hits / lookups : 0, misses,
                  static_cast<double>(after.readahead - before.readahead),
                  static_cast<double>(after.writebacks - before.writebacks)});
  }
  table.Print(std::cout, 1);
  std::cout << "blkfs moves the journal barrier onto the device: write patterns pay\n"
               "the virtio FLUSH ladder on top of the Figure 14 syscall gap; the\n"
               "read pattern stays cache-resident after the warm pass.\n";
}

int Run(const BenchIo& io) {
  BenchObsSink sink(io);
  RunTmpfs();
  RunBlkfs(&sink);
  if (sink.active() && !sink.Write("bench_fig14_sqlite")) {
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace cki

int main(int argc, char** argv) {
  return cki::Run(cki::BenchIo::Parse(argc, argv));
}
