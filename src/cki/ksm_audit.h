// KSM auditor: an fsck-style global consistency checker over a live CKI
// container. Where the PtpMonitor validates each update *incrementally*,
// the auditor re-derives the invariants from scratch by walking the actual
// page-table pages in simulated physical memory and cross-checking against
// the monitor's bookkeeping:
//
//   A1  every present entry inside a declared PTP points to memory owned
//       by the container (or, in a top-level copy, to KSM subtrees);
//   A2  every intermediate entry targets a declared PTP of exactly the
//       next-lower level;
//   A3  no PTP is referenced from more than one intermediate entry;
//   A4  no leaf inside a declared PTP is kernel-executable unless its
//       frame belongs to the frozen kernel text;
//   A5  every leaf mapping of a declared PTP is read-only and carries
//       pkey_PTP;
//   A6  each per-vCPU top-level copy equals its original on every guest
//       slot and carries the KSM mappings on the reserved slots.
//
// Run it after churn (the soak tests do) to catch any drift between the
// incremental checks and reality.
#ifndef SRC_CKI_KSM_AUDIT_H_
#define SRC_CKI_KSM_AUDIT_H_

#include <string>
#include <vector>

#include "src/cki/cki_engine.h"

namespace cki {

struct AuditReport {
  std::vector<std::string> violations;
  uint64_t ptps_walked = 0;
  uint64_t entries_checked = 0;

  bool clean() const { return violations.empty(); }
};

// Audits every declared top-level PTP reachable from the engine's live
// processes, plus their per-vCPU copies.
AuditReport AuditContainer(CkiEngine& engine);

}  // namespace cki

#endif  // SRC_CKI_KSM_AUDIT_H_
