// Future-work direction 1 of the paper (section 9): sandboxing untrusted
// kernel drivers *within ring 0* using the CKI hardware extensions —
// instead of deprivileging them to ring 3 as microkernels do.
//
// Each driver gets its own PKS key. While driver code runs, PKRS denies
// every other domain (kernel private data, other drivers); because PKRS is
// non-zero, the same PKS-gating extension that deprivileges container
// kernels blocks the driver's privileged instructions for free. Crossing
// into and out of a driver is a pair of checked PKS switches — no mode
// switch, no page-table switch, no IPC.
#ifndef SRC_CKI_DRIVER_SANDBOX_H_
#define SRC_CKI_DRIVER_SANDBOX_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/host/machine.h"
#include "src/hw/pks.h"

namespace cki {

// A driver entry point: receives an opaque request, returns a status.
using DriverFn = std::function<uint64_t(uint64_t request)>;

class DriverSandbox {
 public:
  explicit DriverSandbox(Machine& machine);

  // Registers a driver; allocates a PKS key and its keyed memory page.
  // Returns the driver id, or -1 if the key space (keys 4..15) is full.
  int RegisterDriver(const std::string& name, DriverFn fn);

  // Invokes driver `id` through the sandbox gate:
  //   wrpkrs(driver PKRS) + check -> driver fn -> wrpkrs(0) + check.
  // Returns the driver's status, or ~0ull if the call was rejected.
  uint64_t CallDriver(int id, uint64_t request);

  // The PKRS value in force while driver `id` runs: every domain except
  // the shared-kernel key 0 and the driver's own key is access-disabled.
  uint32_t DriverPkrs(int id) const;

  // Keyed private page of the kernel (what drivers must not touch) and of
  // a driver (what other drivers must not touch).
  uint64_t kernel_private_va() const { return kKernelPrivVa; }
  uint64_t driver_page_va(int id) const;

  // --- attack probes (tests) ----------------------------------------------
  // Runs `probe` in driver `id`'s PKS context and reports the fault type
  // observed (kNone if the access succeeded).
  FaultType ProbeAccessFromDriver(int id, uint64_t va, bool write);
  // Attempts a privileged instruction from driver context.
  FaultType ProbePrivInstrFromDriver(int id, PrivInstr instr);

  int driver_count() const { return static_cast<int>(drivers_.size()); }
  uint64_t calls() const { return calls_; }

  // Cost of one sandboxed driver call (gate only, excluding driver work).
  SimNanos GateCost() const;
  // Cost of the microkernel-style alternative: ring crossing + address
  // space switch + IPC rendezvous, both ways.
  SimNanos MicrokernelIpcCost() const;

 private:
  struct Driver {
    std::string name;
    DriverFn fn;
    uint32_t pkey;
    uint64_t page_va;
  };

  static constexpr uint64_t kKernelPrivVa = 0xC000'0000'0000;
  static constexpr uint64_t kDriverVaBase = 0xC100'0000'0000;
  static constexpr uint32_t kKernelPrivKey = 3;
  static constexpr uint32_t kFirstDriverKey = 4;

  void MapKeyedPage(uint64_t va, uint32_t pkey);

  Machine& machine_;
  uint64_t root_pa_;  // host-kernel page table root used for the probes
  std::vector<Driver> drivers_;
  uint64_t calls_ = 0;
};

}  // namespace cki

#endif  // SRC_CKI_DRIVER_SANDBOX_H_
