// Table 3 of the paper as data: how CKI virtualizes each privileged
// instruction of the container guest kernel — blocked by the hardware
// extension and replaced by a KSM call or hypercall, kept in memory, or
// left directly executable.
#ifndef SRC_CKI_PRIV_POLICY_H_
#define SRC_CKI_PRIV_POLICY_H_

#include <string_view>
#include <vector>

#include "src/hw/instr.h"

namespace cki {

enum class PrivStrategy : uint8_t {
  kDirect,        // executable in the guest kernel
  kKsmCall,       // replaced with a call into the KSM
  kHypercall,     // replaced with a host-kernel hypercall
  kInMemoryState, // replaced by a memory flag visible to the host
  kUnused,        // not needed by a para-virtualized container guest
};

struct PrivPolicyEntry {
  PrivInstr instr;
  bool blocked;            // blocked by the PKS-gating hardware extension
  PrivStrategy strategy;
  std::string_view note;   // the "usage" column of Table 3
};

// The full policy table (one entry per modeled privileged instruction).
const std::vector<PrivPolicyEntry>& PrivPolicyTable();

// Lookup; never fails for a valid instruction.
const PrivPolicyEntry& PolicyFor(PrivInstr instr);

std::string_view PrivStrategyName(PrivStrategy s);

}  // namespace cki

#endif  // SRC_CKI_PRIV_POLICY_H_
