#include "src/cki/ptp_monitor.h"

#include "src/hw/pks.h"

namespace cki {

std::string_view PtpVerdictName(PtpVerdict v) {
  switch (v) {
    case PtpVerdict::kOk:
      return "ok";
    case PtpVerdict::kNotDeclared:
      return "slot_not_in_declared_ptp";
    case PtpVerdict::kWrongLevel:
      return "wrong_level";
    case PtpVerdict::kForeignFrame:
      return "foreign_frame";
    case PtpVerdict::kTargetNotPtp:
      return "target_not_ptp";
    case PtpVerdict::kPtpAlreadyLinked:
      return "ptp_already_linked";
    case PtpVerdict::kKernelExecMapping:
      return "kernel_exec_mapping";
    case PtpVerdict::kBadPkey:
      return "bad_pkey";
    case PtpVerdict::kRootNotDeclared:
      return "root_not_declared";
    case PtpVerdict::kReservedSlot:
      return "reserved_top_level_slot";
    case PtpVerdict::kDataPageInUse:
      return "data_page_in_use";
  }
  return "unknown";
}

PtpMonitor::PtpMonitor(const FrameAllocator& frames, OwnerId owner)
    : frames_(frames), owner_(owner) {}

PtpVerdict PtpMonitor::DeclarePtp(uint64_t pa, int level) {
  uint64_t pfn = pa >> kPageShift;
  if (frames_.OwnerOf(pa) != owner_) {
    return PtpVerdict::kForeignFrame;
  }
  auto it = pages_.find(pfn);
  if (it != pages_.end() && it->second.is_ptp) {
    return PtpVerdict::kDataPageInUse;  // double declaration
  }
  pages_[pfn] = PageInfo{.is_ptp = true, .level = level, .link_count = 0};
  declared_++;
  return PtpVerdict::kOk;
}

PtpVerdict PtpMonitor::UndeclarePtp(uint64_t pa) {
  uint64_t pfn = pa >> kPageShift;
  auto it = pages_.find(pfn);
  if (it == pages_.end() || !it->second.is_ptp) {
    return PtpVerdict::kNotDeclared;
  }
  if (it->second.link_count > 0) {
    return PtpVerdict::kPtpAlreadyLinked;  // still referenced from a table
  }
  pages_.erase(it);
  declared_--;
  // Drop slot tracking for the page so a future redeclaration starts clean.
  uint64_t base = pfn << kPageShift;
  for (int i = 0; i < kPtEntries; ++i) {
    slot_values_.erase(base + static_cast<uint64_t>(i) * 8);
  }
  return PtpVerdict::kOk;
}

bool PtpMonitor::IsPtp(uint64_t pa) const {
  auto it = pages_.find(pa >> kPageShift);
  return it != pages_.end() && it->second.is_ptp;
}

int PtpMonitor::PtpLevel(uint64_t pa) const {
  auto it = pages_.find(pa >> kPageShift);
  return (it != pages_.end() && it->second.is_ptp) ? it->second.level : -1;
}

void PtpMonitor::UpdateLinkCounts(uint64_t old_value, uint64_t value, int slot_level) {
  if (slot_level <= 1) {
    return;  // leaf slots never link PTPs as children
  }
  if (PtePresent(old_value) && !PteHuge(old_value)) {
    auto it = pages_.find(PteAddr(old_value) >> kPageShift);
    if (it != pages_.end() && it->second.link_count > 0) {
      it->second.link_count--;
    }
  }
  if (PtePresent(value) && !PteHuge(value)) {
    auto it = pages_.find(PteAddr(value) >> kPageShift);
    if (it != pages_.end()) {
      it->second.link_count++;
    }
  }
}

PtpVerdict PtpMonitor::CheckStore(uint64_t slot_pa, uint64_t value, int slot_level, uint64_t va,
                                  uint64_t* sanitized) {
  checked_++;
  *sanitized = value;
  // (1) the slot must live inside a declared PTP of the matching level.
  uint64_t slot_page = slot_pa & ~(kPageSize - 1);
  auto it = pages_.find(slot_page >> kPageShift);
  if (it == pages_.end() || !it->second.is_ptp) {
    rejected_++;
    return PtpVerdict::kNotDeclared;
  }
  if (it->second.level != slot_level) {
    rejected_++;
    return PtpVerdict::kWrongLevel;
  }
  // Top-level slots reserved for the KSM cannot be rewritten by the guest.
  if (slot_level == kPtLevels) {
    int index = static_cast<int>((slot_pa & (kPageSize - 1)) / 8);
    auto res = reserved_slots_.find(index);
    if (res != reserved_slots_.end() && res->second) {
      rejected_++;
      return PtpVerdict::kReservedSlot;
    }
  }
  if (PtePresent(value)) {
    // The guest must not pick protection keys; the monitor assigns them.
    if (PtePkey(value) != 0) {
      rejected_++;
      return PtpVerdict::kBadPkey;
    }
    uint64_t target = PteAddr(value);
    // Shares-aware: a CoW clone legitimately maps frames whose primary
    // owner is its template; everything else stays foreign.
    if (!frames_.OwnedOrSharedBy(target, owner_)) {
      rejected_++;
      return PtpVerdict::kForeignFrame;
    }
    bool is_leaf = (slot_level == 1) || PteHuge(value);
    if (!is_leaf) {
      // Intermediate entry: must reference a declared PTP of level-1,
      // linked nowhere else (invariant: a PTP maps once).
      int target_level = PtpLevel(target);
      if (target_level < 0) {
        rejected_++;
        return PtpVerdict::kTargetNotPtp;
      }
      if (target_level != slot_level - 1) {
        rejected_++;
        return PtpVerdict::kWrongLevel;
      }
      auto tgt = pages_.find(target >> kPageShift);
      uint64_t old_value = 0;
      auto old_it = slot_values_.find(slot_pa);
      if (old_it != slot_values_.end()) {
        old_value = old_it->second;
      }
      bool relink_same = PtePresent(old_value) && PteAddr(old_value) == target;
      if (tgt->second.link_count > 0 && !relink_same) {
        rejected_++;
        return PtpVerdict::kPtpAlreadyLinked;
      }
    } else {
      // Leaf entry. Mapping a declared PTP as data is forced read-only in
      // the PTP key domain (how the guest reads its own tables).
      if (IsPtp(target)) {
        *sanitized = MakePte(target, (value & ~(kPteW | kPtePkeyMask)), kPkeyPtp);
      }
      // No new kernel-executable mappings after boot (sec 4.1: prevents
      // the guest from conjuring wrpkrs bytes). Frames that were mapped
      // executable during boot form the frozen kernel text and may be
      // re-mapped (e.g. into a fresh process's address space).
      bool kernel_exec = !PteUser(value) && !PteNoExec(value);
      if (kernel_exec) {
        uint64_t tfn = target >> kPageShift;
        if (boot_mode_) {
          kernel_text_frames_[tfn] = true;
        } else if (kernel_text_frames_.count(tfn) == 0) {
          rejected_++;
          return PtpVerdict::kKernelExecMapping;
        }
      }
    }
  }
  // Bookkeeping after all checks passed.
  uint64_t old_value = 0;
  auto old_it = slot_values_.find(slot_pa);
  if (old_it != slot_values_.end()) {
    old_value = old_it->second;
  }
  UpdateLinkCounts(old_value, *sanitized, slot_level);
  slot_values_[slot_pa] = *sanitized;
  (void)va;
  return PtpVerdict::kOk;
}

PtpVerdict PtpMonitor::CheckCr3(uint64_t root_pa) const {
  auto it = pages_.find(Cr3Root(root_pa) >> kPageShift);
  if (it == pages_.end() || !it->second.is_ptp || it->second.level != kPtLevels) {
    return PtpVerdict::kRootNotDeclared;
  }
  return PtpVerdict::kOk;
}

}  // namespace cki
