#include "src/cki/kernel_app.h"

namespace cki {

InKernelApp::InKernelApp(Machine& machine, GuestKernel& kernel, uint32_t app_key)
    : machine_(machine), kernel_(kernel) {
  // The app's domain: kernel-private data (keys 1..4, incl. KSM/PTP keys)
  // is unreachable; the app's own key and the shared key 0 are open.
  app_pkrs_ = 0;
  for (uint32_t key = 1; key < kNumPkeys; ++key) {
    if (key != app_key) {
      app_pkrs_ |= PkAccessDisable(static_cast<int>(key));
    }
  }
}

SyscallResult InKernelApp::Call(const SyscallRequest& req) {
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kKernel);
  // Gate into kernel service context: one checked PKS switch. No swapgs,
  // no stack switch through IST, no PTI page-table swap, no IBRS write.
  if (cpu.Wrpkrs(kPkrsMonitor) || cpu.pkrs() != kPkrsMonitor) {
    return {kEFAULT};
  }
  machine_.ctx().ChargeWork(machine_.ctx().cost().syscall_handler_min);
  SyscallResult result = kernel_.HandleSyscall(req);
  // Gate back into the app domain.
  cpu.Wrpkrs(app_pkrs_);
  calls_++;
  return result;
}

SimNanos InKernelApp::ClassicSyscallCost() const {
  const CostModel& c = machine_.ctx().cost();
  return c.syscall_entry + c.syscall_handler_min + c.sysret_exit;
}

SimNanos InKernelApp::ClassicMitigatedSyscallCost() const {
  // PTI swaps the page table and IBRS fences the predictor on both edges
  // of every syscall once the kernel distrusts its userspace.
  const CostModel& c = machine_.ctx().cost();
  return ClassicSyscallCost() + 2 * (c.pti_overhead + c.ibrs_overhead + c.cr3_write_raw);
}

SimNanos InKernelApp::InKernelCallCost() const {
  const CostModel& c = machine_.ctx().cost();
  return 2 * c.pks_switch + c.syscall_handler_min;
}

}  // namespace cki
