#include "src/cki/cki_engine.h"

#include <cassert>
#include <string>

#include "src/fault/fault_injector.h"
#include "src/hw/pks.h"
#include "src/obs/trace_scope.h"
#include "src/snap/snap_stream.h"

namespace cki {

CkiEngine::CkiEngine(Machine& machine, CkiAblation ablation, uint64_t segment_pages,
                     int n_vcpus)
    : ContainerEngine(machine),
      ablation_(ablation),
      segment_pages_(segment_pages),
      n_vcpus_(n_vcpus < 1 ? 1 : n_vcpus) {
  AllocPcids(256);
  fast_touch_ = true;  // DoUserTouch prologue is the canonical hit sequence
  if (!machine.cpu().extensions().pks_priv_gating) {
    throw FatalHostError(
        "CkiEngine requires a machine with the CKI hardware extensions");
  }
}

std::string_view CkiEngine::name() const {
  switch (ablation_) {
    case CkiAblation::kNone:
      return nested() ? "CKI-NST" : "CKI-BM";
    case CkiAblation::kNoOpt2:
      return "CKI-wo-OPT2";
    case CkiAblation::kNoOpt3:
      return "CKI-wo-OPT3";
  }
  return "CKI";
}

void CkiEngine::Boot() {
  // The host delegates a contiguous host-physical segment that the guest
  // kernel manages directly (no second translation stage).
  segment_ = machine_.frames().AllocSegment(segment_pages_, id_);
  ksm_ = std::make_unique<Ksm>(machine_, id_, n_vcpus_);
  gates_ = std::make_unique<Gates>(machine_, *ksm_);
  machine_.cpu().set_idt(&ksm_->idt());

  // Guest kernel code image: wrpkrs appears only at the registered gates;
  // the binary-rewriting pass proves it (section 4.1).
  guest_code_image_.assign(64 * 1024, 0x90);
  rewriter_.RegisterGateOffset(0x1000);  // KSM call gate
  rewriter_.RegisterGateOffset(0x1100);  // KSM call gate (exit switch)
  rewriter_.RegisterGateOffset(0x2000);  // hypercall gate entry
  rewriter_.RegisterGateOffset(0x2080);  // hypercall gate exit
  for (size_t off : rewriter_.gate_offsets()) {
    EmitWrpkrs(guest_code_image_, off);
  }
  ScanReport report = rewriter_.Scan(guest_code_image_);
  assert(report.clean() && "stray wrpkrs in guest kernel image");
  (void)report;

  ContainerEngine::Boot();  // boots the kernel (monitor in boot mode)
  ksm_->monitor().SealKernelText();

  // Hand control to the deprivileged guest: PKRS = PKRS_GUEST.
  machine_.cpu().Wrpkrs(kPkrsGuest);
}

uint64_t CkiEngine::SegmentAlloc() {
  // Chaos mode: simulate premature exhaustion of the delegated segment.
  if (injector_ != nullptr && injector_->InjectSegmentOom()) {
    return kNoPage;
  }
  if (!guest_free_list_.empty()) {
    uint64_t pa = guest_free_list_.back();
    guest_free_list_.pop_back();
    return pa;
  }
  if (segment_next_ >= segment_.pages) {
    return kNoPage;  // the guest kernel turns this into ENOMEM
  }
  return segment_.base + (segment_next_++) * kPageSize;
}

void CkiEngine::ChargeKsmRoundtrip(SimNanos op_work) {
  TraceScope obs_scope(ctx_, "ksm/roundtrip");
  gates_->EnterKsm();
  ctx_.ChargeWork(op_work);
  gates_->ExitKsm();
}

SyscallResult CkiEngine::DoUserSyscall(const SyscallRequest& req) {
  // Fast path: the guest kernel is reachable from user mode without host
  // intervention — same 90 ns as native (Fig 10b).
  SyscallScope obs_scope(ctx_, id_, SysName(req.no));
  Cpu& cpu = machine_.cpu();
  const CostModel& c = ctx_.cost();
  ctx_.Charge(c.syscall_entry, PathEvent::kSyscallEntry);
  cpu.SyscallEntry();
  if (ablation_ == CkiAblation::kNoOpt2) {
    // Without OPT2 the guest kernel lives in a separate page table.
    ctx_.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  }
  if (ablation_ == CkiAblation::kNoOpt3) {
    // Without OPT3, entry came through the KSM: PKRS 0 -> PKRS_GUEST.
    gates_->SwitchPksTo(kPkrsGuest);
  }
  ctx_.ChargeWork(c.syscall_handler_min);
  SyscallResult result = kernel_->HandleSyscall(req);
  if (ablation_ == CkiAblation::kNoOpt2) {
    ctx_.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  }
  if (ablation_ == CkiAblation::kNoOpt3) {
    // sysret must run in the KSM: PKRS_GUEST -> 0; returning to user mode
    // restores the guest key (no third switch, hardware-assisted).
    gates_->SwitchPksTo(kPkrsMonitor);
  }
  ctx_.Charge(c.sysret_exit, PathEvent::kSyscallExit);
  cpu.Sysret(/*requested_if=*/true);
  if (ablation_ == CkiAblation::kNoOpt3) {
    cpu.SetPkrsDirect(kPkrsGuest);
  }
  return result;
}

TouchResult CkiEngine::DoUserTouch(uint64_t va, bool write) {
  TraceScope obs_scope(ctx_, id_, "touch");
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kUser);
  AccessIntent intent = write ? AccessIntent::Write() : AccessIntent::Read();
  const CostModel& c = ctx_.cost();
  for (int attempt = 0; attempt < 4; ++attempt) {
    Fault f = cpu.Access(va, intent);
    if (!f) {
      return TouchResult::kOk;
    }
    if (f.type == FaultType::kPageKeyViolation) {
      // A PKS trap in a deprivileged guest means the guest kernel tried to
      // cross its key boundary: container-fatal, host keeps running.
      machine_.faults().Raise(FaultReport{FaultKind::kPksTrap, id_, va});
    }
    if (f.type != FaultType::kPageNotPresent && f.type != FaultType::kPageProtection) {
      return TouchResult::kSegv;
    }
    // Direct delivery into the guest kernel (PKRS stays PKRS_GUEST; the
    // IDT entry for #PF needs no PKS switch).
    TraceScope fault_scope(ctx_, "fault");
    ctx_.Charge(c.fault_delivery, PathEvent::kPageFault);
    cpu.set_cpl(Cpl::kKernel);
    if (ablation_ == CkiAblation::kNoOpt2) {
      // Separate guest-kernel page table: exceptions pay the switch too.
      ctx_.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
    }
    in_fault_ = true;
    ksm_open_ = false;
    bool resolved = kernel_->HandlePageFault(va, write);
    // Exit: the final iret is a KSM operation. When the fault handler
    // already entered the KSM for its PTE update, the iret rides the same
    // gate crossing (extended iret restores PKRS on the way out).
    if (ksm_open_) {
      ctx_.ChargeWork(c.ksm_iret_work + c.iret_native);
      ksm_->IretToUser();
      ksm_open_ = false;
    } else {
      gates_->EnterKsm();
      ctx_.ChargeWork(c.ksm_iret_work + c.iret_native);
      ksm_->IretToUser();  // iret restores PKRS_GUEST; no exit wrpkrs
    }
    in_fault_ = false;
    if (ablation_ == CkiAblation::kNoOpt2) {
      ctx_.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
    }
    cpu.set_cpl(Cpl::kUser);
    if (!resolved) {
      return TouchResult::kSegv;
    }
  }
  return TouchResult::kSegv;
}

uint64_t CkiEngine::DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  return Hypercall(op, a0, a1);
}

void CkiEngine::OnKill() {
  // A kill can arrive mid-operation (PTE batch, fault handler) with the
  // KSM gate still open; reset the gate state so teardown never charges
  // through guest paths.
  in_fault_ = false;
  ksm_open_ = false;
  in_batch_ = false;
  guest_free_list_.clear();
  current_root_ = 0;
  pending_virqs_.clear();
}

uint64_t CkiEngine::Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  (void)op;
  (void)a0;
  (void)a1;
  // Hypercalls are issued by the guest kernel (ring 0, PKRS_GUEST); a user
  // process reaches this point only through a syscall into the guest
  // kernel first.
  TraceScope obs_scope(ctx_, "hypercall");
  Cpu& cpu = machine_.cpu();
  Cpl saved_cpl = cpu.cpl();
  cpu.set_cpl(Cpl::kKernel);
  // Same cost in bare-metal and nested clouds: the guest and host share
  // one VMCS (or none), so no L0 intervention ever occurs (section 7.1).
  gates_->HypercallRoundtrip();
  cpu.set_cpl(saved_cpl);
  return 0;
}

SimNanos CkiEngine::KickCost() const {
  // Virtio kicks are plain hypercalls (MMIO was removed, section 5).
  const CostModel& c = ctx_.cost();
  return 2 * c.pks_switch + 2 * c.Cr3SwitchMitigated() + c.cki_switcher_save_restore +
         c.hypercall_dispatch;
}

SimNanos CkiEngine::DeviceInterruptCost() const {
  const CostModel& c = ctx_.cost();
  // Interrupt gate to host + virtual interrupt on resume.
  return c.hw_interrupt_delivery + c.cki_switcher_save_restore + 2 * c.Cr3SwitchMitigated() +
         c.virq_inject;
}

bool CkiEngine::SelectVcpu(int vcpu) {
  if (vcpu < 0 || vcpu >= n_vcpus_ || current_root_ == 0) {
    return false;
  }
  // The host migrates the vCPU context; resuming loads the per-vCPU copy
  // of the same guest root through the validated KSM path.
  current_vcpu_ = vcpu;
  gates_->EnterKsm();
  ctx_.ChargeWork(ctx_.cost().ksm_pte_validate);
  ctx_.Charge(ctx_.cost().cr3_write_raw, PathEvent::kCr3Switch);
  PtpVerdict v = ksm_->LoadGuestCr3(current_root_, current_pcid_, current_vcpu_);
  gates_->ExitKsm();
  return v == PtpVerdict::kOk;
}

void CkiEngine::GuestSetVirtualIf(bool enabled) {
  // A plain in-memory store — no privileged instruction, no trap.
  ctx_.ChargeWork(2);
  virtual_if_ = enabled;
  if (virtual_if_ && !pending_virqs_.empty()) {
    // The host notices the bit flip on its next injection opportunity and
    // drains the deferred queue.
    std::vector<uint8_t> pending;
    pending.swap(pending_virqs_);
    for (uint8_t vec : pending) {
      InjectVirq(vec);
    }
  }
}

bool CkiEngine::InjectVirq(uint8_t vector) {
  if (!virtual_if_) {
    pending_virqs_.push_back(vector);
    return false;
  }
  ctx_.Charge(ctx_.cost().virq_inject, PathEvent::kVirqInject);
  delivered_virqs_++;
  (void)vector;
  return true;
}

bool CkiEngine::DeliverHardwareInterrupt(uint8_t vector) {
  bool ok = gates_->HardwareInterruptToHost(vector);
  if (ok) {
    ctx_.Charge(ctx_.cost().virq_inject, PathEvent::kVirqInject);
  }
  return ok;
}

uint64_t CkiEngine::ReadPte(uint64_t pte_pa) {
  // PTPs are readable by the guest (read-only under pkey_PTP).
  return machine_.mem().ReadU64(pte_pa);
}

bool CkiEngine::StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) {
  TraceScope obs_scope(ctx_, "ksm/store_pte");
  const CostModel& c = ctx_.cost();
  // Chaos mode: flip a physical-address bit in the guest's PTE store. The
  // KSM monitor must catch the forged mapping; its rejection kills the
  // container (the PTP invariant is unrecoverable from the guest's side).
  bool flipped = injector_ != nullptr && injector_->InjectPteFlip();
  if (flipped) {
    value ^= 1ull << 50;
  }
  PtpVerdict verdict;
  if (in_batch_ || (in_fault_ && ksm_open_)) {
    // Already inside the KSM: validate + store only.
    ctx_.ChargeWork(c.ksm_pte_validate + c.pte_write_native);
    verdict = ksm_->UpdatePte(pte_pa, value, level, va);
  } else if (in_fault_) {
    // First update of a fault handler: one-way gate entry; the matching
    // exit is fused with the iret (Fig 10a: 77 ns for both KSM calls).
    gates_->EnterKsm();
    ksm_open_ = true;
    ctx_.ChargeWork(c.ksm_pte_validate + c.pte_write_native);
    verdict = ksm_->UpdatePte(pte_pa, value, level, va);
  } else {
    gates_->EnterKsm();
    ctx_.ChargeWork(c.ksm_pte_validate + c.pte_write_native);
    verdict = ksm_->UpdatePte(pte_pa, value, level, va);
    gates_->ExitKsm();
  }
  if (flipped && verdict != PtpVerdict::kOk) {
    machine_.faults().Raise(
        FaultReport{FaultKind::kPtpVerdictRejected, id_, pte_pa});
  }
  return verdict == PtpVerdict::kOk;
}

void CkiEngine::BeginPteBatch() {
  if (!in_batch_) {
    gates_->EnterKsm();
    in_batch_ = true;
  }
}

void CkiEngine::EndPteBatch() {
  if (in_batch_) {
    gates_->ExitKsm();
    in_batch_ = false;
  }
}

uint64_t CkiEngine::AllocDataPage() {
  uint64_t pa = SegmentAlloc();
  if (pa == kNoPage) {
    // Data-page exhaustion is survivable: the guest kernel fails the
    // allocation with ENOMEM (counted on the fault bus, no kill).
    machine_.faults().Note(
        FaultReport{FaultKind::kSegmentExhausted, id_, segment_.pages});
  }
  return pa;
}

void CkiEngine::FreeDataPage(uint64_t pa) {
  if (ReleaseSharedDataFrame(pa)) {
    // A frame shared with (or adopted from) a clone sibling must never
    // re-enter this container's segment free list: after the release this
    // engine no longer holds it, and the monitor would reject a remap.
    return;
  }
  guest_free_list_.push_back(pa);
}

uint64_t CkiEngine::AllocPtp(int level) {
  uint64_t pa = SegmentAlloc();
  if (pa == kNoPage) {
    // No segment page left for a page-table page: the address space under
    // construction is unrecoverable — kill the container, not the host.
    machine_.faults().Raise(
        FaultReport{FaultKind::kSegmentExhausted, id_, segment_.pages});
  }
  if (in_batch_ || (in_fault_ && ksm_open_)) {
    ctx_.ChargeWork(ctx_.cost().ksm_pte_validate);
    ksm_->DeclarePtp(pa, level);
  } else {
    ChargeKsmRoundtrip(ctx_.cost().ksm_pte_validate);
    ksm_->DeclarePtp(pa, level);
  }
  return pa;
}

void CkiEngine::FreePtp(uint64_t pa, int level) {
  (void)level;
  if (in_batch_) {
    ctx_.ChargeWork(ctx_.cost().ksm_pte_validate);
  } else {
    ChargeKsmRoundtrip(ctx_.cost().ksm_pte_validate);
  }
  if (ksm_->UndeclarePtp(pa) == PtpVerdict::kOk) {
    guest_free_list_.push_back(pa);
  }
}

void CkiEngine::LoadAddressSpace(uint64_t root_pa, uint16_t asid) {
  // KSM call: validate the root is a declared top-level PTP, then load the
  // current vCPU's copy of it.
  const CostModel& c = ctx_.cost();
  current_pcid_ = static_cast<uint16_t>(pcid_base_ + (asid & 0xFF));
  gates_->EnterKsm();
  ctx_.ChargeWork(c.ksm_pte_validate);
  ctx_.Charge(c.cr3_write_raw, PathEvent::kCr3Switch);
  PtpVerdict v = ksm_->LoadGuestCr3(root_pa, current_pcid_, current_vcpu_);
  gates_->ExitKsm();
  current_root_ = root_pa;
  if (v != PtpVerdict::kOk) {
    // The monitor refused the root: the guest tried to load an undeclared
    // or foreign top-level PTP. Kill the container, keep the machine.
    machine_.faults().Raise(FaultReport{FaultKind::kPtpVerdictRejected, id_,
                                        static_cast<uint64_t>(v)});
  }
}

void CkiEngine::InvalidatePage(uint64_t va) { machine_.cpu().Invlpg(va); }

void CkiEngine::SnapCaptureConfig(SnapWriter& w) const {
  w.PutU64(segment_pages_);
  w.PutU32(static_cast<uint32_t>(n_vcpus_));
}

void CkiEngine::SnapApplyConfig(SnapReader& r) {
  // Applied before Boot(): the fresh engine carves a segment of the same
  // size, so restored containers have the template's memory budget.
  segment_pages_ = r.GetU64();
  n_vcpus_ = static_cast<int>(r.GetU32());
  if (segment_pages_ == 0 || n_vcpus_ <= 0) {
    r.MarkCorrupt();
    segment_pages_ = 1;
    n_vcpus_ = 1;
  }
}

void CkiEngine::SnapCaptureState(SnapWriter& w) const {
  w.PutBool(virtual_if_);
  w.PutU32(static_cast<uint32_t>(current_vcpu_));
  w.PutU64(delivered_virqs_);
  w.PutU32(static_cast<uint32_t>(pending_virqs_.size()));
  for (uint8_t vector : pending_virqs_) {
    w.PutU8(vector);
  }
}

void CkiEngine::SnapApplyState(SnapReader& r) {
  virtual_if_ = r.GetBool();
  int vcpu = static_cast<int>(r.GetU32());
  if (vcpu >= 0 && vcpu < n_vcpus_ && vcpu != current_vcpu_) {
    // Through the real migration path so the KSM loads that vCPU's copy
    // of the (already restored) top-level PTP.
    SelectVcpu(vcpu);
  }
  delivered_virqs_ = r.GetU64();
  pending_virqs_.clear();
  uint64_t n = r.GetCount(1);
  for (uint64_t i = 0; i < n; ++i) {
    pending_virqs_.push_back(r.GetU8());
  }
}

}  // namespace cki
