// The Kernel Security Monitor (KSM) of a CKI secure container.
//
// One KSM instance is mapped into each container's address space and
// isolated from the deprivileged guest kernel by PKS (section 3.3): KSM
// memory carries pkey_KSM, unreachable under PKRS_GUEST. The KSM implements
// the privileged operations that touch only the container's private data —
// page-table declaration/updates (via the PtpMonitor), CR3 loads of
// validated per-vCPU top-level copies, and iret — reachable through a fast
// PKS call gate that needs no PTI/IBRS because only private data is mapped.
//
// It also owns the container's IDT and IST stacks (allocated in KSM memory
// so the guest cannot redirect or starve interrupts, section 4.4) and the
// per-vCPU areas that sit at a constant virtual address in every per-vCPU
// top-level copy (section 4.2, Figure 8c).
#ifndef SRC_CKI_KSM_H_
#define SRC_CKI_KSM_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/cki/ptp_monitor.h"
#include "src/host/machine.h"
#include "src/hw/idt.h"

namespace cki {

// Fixed kernel-half layout (48-bit VA, PML4 slots).
inline constexpr uint64_t kKsmRegionVa = 0xA000'0000'0000;    // PML4 slot 320
inline constexpr uint64_t kPerVcpuAreaVa = 0xB000'0000'0000;  // PML4 slot 352
inline constexpr int kKsmRegionSlot = 320;
inline constexpr int kPerVcpuSlot = 352;

// Handler tags installed in the container IDT.
inline constexpr uint32_t kHandlerGuestPageFault = 1;  // guest kernel handler
inline constexpr uint32_t kHandlerHostInterrupt = 2;   // interrupt gate -> host

class Ksm {
 public:
  Ksm(Machine& machine, OwnerId owner, int n_vcpus);
  // Returns every host frame the KSM holds (region, per-vCPU areas, their
  // subtrees, remaining top-level copies) to the allocator, so a reaped
  // container's whole footprint — host side included — is reusable.
  ~Ksm();

  Ksm(const Ksm&) = delete;
  Ksm& operator=(const Ksm&) = delete;

  PtpMonitor& monitor() { return monitor_; }
  const Idt& idt() const { return idt_; }
  int n_vcpus() const { return n_vcpus_; }

  // --- KSM call operations (reached through the PKS call gate) ------------
  // Declares a guest page as a PTP; for top-level PTPs this also creates
  // the per-vCPU copies with the KSM mappings pre-installed.
  PtpVerdict DeclarePtp(uint64_t pa, int level);
  PtpVerdict UndeclarePtp(uint64_t pa);

  // Validates and applies a guest PTE store; top-level stores are mirrored
  // into every per-vCPU copy.
  PtpVerdict UpdatePte(uint64_t slot_pa, uint64_t value, int level, uint64_t va);

  // Validates a CR3 target and loads the current vCPU's copy of it.
  PtpVerdict LoadGuestCr3(uint64_t root_pa, uint16_t pcid, int vcpu);

  // Reads a top-level PTE with accessed/dirty bits propagated from the
  // per-vCPU copies into the original (section 4.3).
  uint64_t ReadTopLevelPte(uint64_t root_pa, int index);

  // iret on behalf of the guest: returns to user mode, hardware-restoring
  // PKRS to the guest value (the extended-iret feature).
  void IretToUser();

  // --- addresses -----------------------------------------------------------
  // The constant-VA secure stack / vCPU context area (Fig 8c).
  uint64_t per_vcpu_area_va() const { return kPerVcpuAreaVa; }
  uint64_t per_vcpu_area_pa(int vcpu) const { return area_pas_[static_cast<size_t>(vcpu)]; }
  // Physical page holding KSM private data (pkey_KSM tagged).
  uint64_t ksm_region_pa() const { return ksm_region_pa_; }

  // The per-vCPU hardware copy of a declared top-level PTP; 0 if unknown.
  uint64_t TopLevelCopy(uint64_t root_pa, int vcpu) const;

  uint64_t ksm_calls() const { return calls_; }

 private:
  // Installs the KSM-region and per-vCPU-area mappings into a top-level
  // copy (the two reserved PML4 slots).
  void InstallKsmSlots(uint64_t copy_pa, int vcpu);
  uint64_t AllocKsmFrame();
  // Builds a 3-level subtree (PDPT/PD/PT) mapping `va` -> `pa` with
  // pkey_KSM, returning the PDPT physical address for the PML4 slot.
  uint64_t BuildSubtree(uint64_t va, uint64_t pa);

  Machine& machine_;
  OwnerId owner_;
  int n_vcpus_;
  PtpMonitor monitor_;
  Idt idt_;

  uint64_t ksm_region_pa_ = 0;
  uint64_t ksm_region_pdpt_ = 0;                 // shared across copies
  std::vector<uint64_t> area_pas_;               // per-vCPU area pages
  std::vector<uint64_t> area_pdpts_;             // per-vCPU subtrees
  std::unordered_map<uint64_t, std::vector<uint64_t>> top_copies_;
  std::vector<uint64_t> static_frames_;          // construction-time frames
  uint64_t calls_ = 0;
};

}  // namespace cki

#endif  // SRC_CKI_KSM_H_
