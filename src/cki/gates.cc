#include "src/cki/gates.h"

#include "src/hw/pks.h"
#include "src/obs/trace_scope.h"

namespace cki {

bool Gates::SwitchPks(uint32_t value) {
  Cpu& cpu = machine_.cpu();
  Fault f = cpu.Wrpkrs(value);
  if (f) {
    return false;
  }
  // Fig 8a: `cmp \pkrs, %rax; jne abort` — the new PKRS is compared with
  // the gate's constant after the write, so a ROP jump that supplies a
  // different value aborts before any privileged code runs.
  if (cpu.pkrs() != value) {
    aborted_switches_++;
    return false;
  }
  return true;
}

bool Gates::EnterKsm() {
  if (!SwitchPks(kPkrsMonitor)) {
    return false;
  }
  // Stack switch to the per-vCPU secure stack (constant VA, Fig 8c) and
  // handler dispatch.
  SimContext& ctx = machine_.ctx();
  ctx.Charge(ctx.cost().ksm_dispatch, PathEvent::kKsmCall);
  return true;
}

bool Gates::ExitKsm() { return SwitchPks(kPkrsGuest); }

void Gates::HypercallRoundtrip() {
  SimContext& ctx = machine_.ctx();
  const CostModel& c = ctx.cost();
  TraceScope obs_scope(ctx, "gate/hypercall");
  ctx.RecordEvent(PathEvent::kHypercall);
  // Entry: PKS to monitor rights, save guest context into the per-vCPU
  // area, switch to the host page table (with IBRS; PTI is unnecessary for
  // a dedicated host address space but the mitigated cost is charged as
  // the paper's switcher includes side-channel mitigation).
  SwitchPks(kPkrsMonitor);
  ctx.ChargeWork(c.cki_switcher_save_restore);
  ctx.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  ctx.ChargeWork(c.hypercall_dispatch);
  // Return: restore guest CR3 + context + PKS.
  ctx.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  SwitchPks(kPkrsGuest);
}

bool Gates::HardwareInterruptToHost(uint8_t vector) {
  Cpu& cpu = machine_.cpu();
  SimContext& ctx = machine_.ctx();
  InterruptEntry entry = cpu.DeliverInterrupt(vector, /*hardware=*/true);
  if (entry.fault) {
    return false;
  }
  TraceScope obs_scope(ctx, "gate/hw_interrupt");
  ctx.Charge(ctx.cost().hw_interrupt_delivery, PathEvent::kHwInterrupt);
  // The IDT extension has zeroed PKRS; the gate saves the interrupt info
  // to the per-vCPU area and performs the full exit to the host kernel.
  const CostModel& c = ctx.cost();
  ctx.ChargeWork(c.cki_switcher_save_restore);
  ctx.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  // ... host kernel handles the interrupt ...
  ctx.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  // Extended iret restores the saved PKRS when resuming the guest.
  cpu.IretTrusted(Cpl::kKernel, entry.saved_pkrs);
  return true;
}

bool Gates::AttackRopWrpkrs(uint32_t desired_pkrs) {
  // The attacker jumps at the wrpkrs inside the KSM call gate with a
  // chosen register value. The instruction executes — but the gate's
  // post-write check compares against the gate constant.
  Cpu& cpu = machine_.cpu();
  uint32_t saved = cpu.pkrs();
  Fault f = cpu.Wrpkrs(desired_pkrs);
  if (f) {
    return false;  // wrpkrs itself refused (e.g. user mode)
  }
  if (cpu.pkrs() != kPkrsMonitor || desired_pkrs != kPkrsMonitor) {
    // Mismatch with the gate constant: abort path taken, attack stopped.
    aborted_switches_++;
    machine_.ctx().RecordEvent(PathEvent::kSecurityViolation);
    cpu.Wrpkrs(saved);  // abort handler restores a safe state
    return false;
  }
  // The attacker supplied exactly the gate constant — that is simply the
  // legitimate gate entry, which lands on the fixed KSM dispatcher (no
  // attacker-controlled continuation), not arbitrary code.
  cpu.Wrpkrs(saved);
  return false;
}

bool Gates::AttackForgeInterrupt(uint8_t vector) {
  // Software `int N` (or a direct jump to the gate body): the hardware
  // does NOT zero PKRS. The gate's first action — saving state to the
  // per-vCPU area in KSM memory — then faults under PKRS_GUEST.
  Cpu& cpu = machine_.cpu();
  InterruptEntry entry = cpu.DeliverInterrupt(vector, /*hardware=*/false);
  if (entry.fault) {
    return false;
  }
  if (!entry.pks_switched && cpu.pkrs() != kPkrsMonitor) {
    Fault f = cpu.Access(ksm_.per_vcpu_area_va(), AccessIntent::Write());
    if (f.type == FaultType::kPageKeyViolation) {
      machine_.ctx().RecordEvent(PathEvent::kSecurityViolation);
      cpu.IretTrusted(Cpl::kKernel, std::nullopt);
      return false;  // forged interrupt never reaches the host
    }
  }
  // PKRS was zero (the caller was already trusted) — not a forgery.
  cpu.IretTrusted(Cpl::kKernel, std::nullopt);
  return true;
}

bool Gates::SecureStackAccessible() {
  Fault f = machine_.cpu().Access(ksm_.per_vcpu_area_va(), AccessIntent::Write());
  return !f;
}

}  // namespace cki
