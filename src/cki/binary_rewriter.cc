#include "src/cki/binary_rewriter.h"

namespace cki {

void EmitWrpkrs(std::vector<uint8_t>& image, size_t offset) {
  for (size_t i = 0; i < kWrpkrsOpcodeLen; ++i) {
    image[offset + i] = kWrpkrsOpcode[i];
  }
}

ScanReport BinaryRewriter::Scan(const std::vector<uint8_t>& image) const {
  ScanReport report;
  if (image.size() < kWrpkrsOpcodeLen) {
    return report;
  }
  for (size_t off = 0; off + kWrpkrsOpcodeLen <= image.size(); ++off) {
    bool match = true;
    for (size_t i = 0; i < kWrpkrsOpcodeLen; ++i) {
      if (image[off + i] != kWrpkrsOpcode[i]) {
        match = false;
        break;
      }
    }
    if (!match) {
      continue;
    }
    if (gate_offsets_.count(off) != 0) {
      report.gate_occurrences++;
    } else {
      report.violations.push_back(off);
    }
  }
  return report;
}

size_t BinaryRewriter::Rewrite(std::vector<uint8_t>& image) const {
  ScanReport report = Scan(image);
  for (size_t off : report.violations) {
    for (size_t i = 0; i < kWrpkrsOpcodeLen; ++i) {
      image[off + i] = 0x90;  // NOP
    }
  }
  return report.violations.size();
}

}  // namespace cki
