#include "src/cki/ksm_audit.h"

#include <map>
#include <sstream>

#include "src/hw/pks.h"

namespace cki {

namespace {

struct AuditState {
  CkiEngine* engine = nullptr;
  PhysMem* mem = nullptr;
  AuditReport report;
  // child PTP pa -> referencing slot pa (for A3).
  std::map<uint64_t, uint64_t> seen_links;

  void Violate(const std::string& what) { report.violations.push_back(what); }
};

std::string Hex(uint64_t v) {
  std::ostringstream os;
  os << "0x" << std::hex << v;
  return os.str();
}

void AuditTable(AuditState& state, uint64_t table_pa, int level) {
  CkiEngine& engine = *state.engine;
  PtpMonitor& monitor = engine.ksm().monitor();
  state.report.ptps_walked++;
  for (int i = 0; i < kPtEntries; ++i) {
    uint64_t slot_pa = table_pa + static_cast<uint64_t>(i) * 8;
    uint64_t entry = state.mem->ReadU64(slot_pa);
    if (!PtePresent(entry)) {
      continue;
    }
    state.report.entries_checked++;
    uint64_t target = PteAddr(entry);
    bool is_leaf = (level == 1) || PteHuge(entry);
    // A1: container ownership of everything referenced.
    if (engine.machine().frames().OwnerOf(target) != engine.id()) {
      state.Violate("A1 foreign frame " + Hex(target) + " via slot " + Hex(slot_pa));
      continue;
    }
    if (!is_leaf) {
      // A2: next-level declared PTP.
      if (monitor.PtpLevel(target) != level - 1) {
        state.Violate("A2 intermediate slot " + Hex(slot_pa) + " targets level " +
                      std::to_string(monitor.PtpLevel(target)) + " page " + Hex(target));
        continue;
      }
      // A3: unique linkage.
      auto [it, fresh] = state.seen_links.emplace(target, slot_pa);
      if (!fresh && it->second != slot_pa) {
        state.Violate("A3 PTP " + Hex(target) + " linked from " + Hex(it->second) + " and " +
                      Hex(slot_pa));
        continue;
      }
      AuditTable(state, target, level - 1);
    } else {
      // A4: kernel-executable closure.
      bool kernel_exec = !PteUser(entry) && !PteNoExec(entry);
      if (kernel_exec && !monitor.IsKernelTextFrame(target)) {
        state.Violate("A4 kernel-exec leaf at slot " + Hex(slot_pa) + " -> " + Hex(target));
      }
      // A5: PTP-as-data mappings are read-only + pkey_PTP.
      if (monitor.IsPtp(target)) {
        if (PteWritable(entry) || PtePkey(entry) != kPkeyPtp) {
          state.Violate("A5 PTP " + Hex(target) + " mapped writable/unkeyed at " + Hex(slot_pa));
        }
      }
    }
  }
}

void AuditTopLevelCopies(AuditState& state, uint64_t root) {
  CkiEngine& engine = *state.engine;
  PhysMem& mem = *state.mem;
  for (int v = 0; v < engine.n_vcpus(); ++v) {
    uint64_t copy = engine.ksm().TopLevelCopy(root, v);
    if (copy == 0) {
      state.Violate("A6 missing per-vCPU copy " + std::to_string(v) + " for root " + Hex(root));
      continue;
    }
    for (int i = 0; i < kPtEntries; ++i) {
      uint64_t off = static_cast<uint64_t>(i) * 8;
      uint64_t orig = mem.ReadU64(root + off);
      uint64_t mirrored = mem.ReadU64(copy + off);
      if (i == kKsmRegionSlot || i == kPerVcpuSlot) {
        if (!PtePresent(mirrored)) {
          state.Violate("A6 KSM slot " + std::to_string(i) + " absent in copy of " + Hex(root));
        }
        if (PtePresent(orig)) {
          state.Violate("A6 KSM slot " + std::to_string(i) + " leaked into original " +
                        Hex(root));
        }
      } else if ((orig | kPteA | kPteD) != (mirrored | kPteA | kPteD)) {
        // A/D bits may legitimately differ between copies and original.
        state.Violate("A6 slot " + std::to_string(i) + " diverged: orig " + Hex(orig) +
                      " copy " + Hex(mirrored));
      }
    }
  }
}

}  // namespace

AuditReport AuditContainer(CkiEngine& engine) {
  AuditState state;
  state.engine = &engine;
  state.mem = &engine.machine().mem();
  for (int pid : engine.kernel().LivePids()) {
    Process* proc = engine.kernel().process(pid);
    if (proc == nullptr || proc->pt_root == 0) {
      continue;
    }
    if (engine.ksm().monitor().PtpLevel(proc->pt_root) != kPtLevels) {
      state.Violate("root " + Hex(proc->pt_root) + " of pid " + std::to_string(pid) +
                    " is not a declared top-level PTP");
      continue;
    }
    AuditTable(state, proc->pt_root, kPtLevels);
    AuditTopLevelCopies(state, proc->pt_root);
  }
  return state.report;
}

}  // namespace cki
