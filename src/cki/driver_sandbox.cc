#include "src/cki/driver_sandbox.h"

#include "src/hw/page_table.h"

namespace cki {

DriverSandbox::DriverSandbox(Machine& machine) : machine_(machine) {
  // A host-kernel address space for the sandbox: kernel-private data page
  // keyed kKernelPrivKey.
  root_pa_ = machine_.frames().AllocFrame(kHostOwner);
  machine_.cpu().LoadCr3(MakeCr3(root_pa_, /*pcid=*/0));
  MapKeyedPage(kKernelPrivVa, kKernelPrivKey);
}

void DriverSandbox::MapKeyedPage(uint64_t va, uint32_t pkey) {
  PhysMem& mem = machine_.mem();
  PageTableEditor editor(
      mem, [this](int) { return machine_.frames().AllocFrame(kHostOwner); },
      [&mem](uint64_t pte_pa, uint64_t value, int, uint64_t) {
        mem.WriteU64(pte_pa, value);
        return true;
      });
  uint64_t page = machine_.frames().AllocFrame(kHostOwner);
  editor.MapPage(root_pa_, va, page, kPteP | kPteW | kPteNx, pkey, PageSize::k4K);
}

int DriverSandbox::RegisterDriver(const std::string& name, DriverFn fn) {
  uint32_t pkey = kFirstDriverKey + static_cast<uint32_t>(drivers_.size());
  if (pkey >= kNumPkeys) {
    return -1;  // key space exhausted (12 sandboxed drivers per space)
  }
  uint64_t va = kDriverVaBase + static_cast<uint64_t>(drivers_.size()) * kPageSize;
  MapKeyedPage(va, pkey);
  drivers_.push_back(Driver{name, std::move(fn), pkey, va});
  return static_cast<int>(drivers_.size()) - 1;
}

uint32_t DriverSandbox::DriverPkrs(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= drivers_.size()) {
    return 0;
  }
  // Deny everything keyed except key 0 (shared kernel text/API surface)
  // and the driver's own domain.
  uint32_t pkrs = 0;
  for (uint32_t key = 1; key < kNumPkeys; ++key) {
    if (key != drivers_[static_cast<size_t>(id)].pkey) {
      pkrs |= PkAccessDisable(static_cast<int>(key));
    }
  }
  return pkrs;
}

uint64_t DriverSandbox::driver_page_va(int id) const {
  if (id < 0 || static_cast<size_t>(id) >= drivers_.size()) {
    return 0;
  }
  return drivers_[static_cast<size_t>(id)].page_va;
}

uint64_t DriverSandbox::CallDriver(int id, uint64_t request) {
  if (id < 0 || static_cast<size_t>(id) >= drivers_.size()) {
    return ~0ull;
  }
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kKernel);
  uint32_t driver_pkrs = DriverPkrs(id);
  // Entry gate: wrpkrs + post-write check (same pattern as the KSM gate).
  if (cpu.Wrpkrs(driver_pkrs) || cpu.pkrs() != driver_pkrs) {
    return ~0ull;
  }
  calls_++;
  uint64_t status = drivers_[static_cast<size_t>(id)].fn(request);
  // Exit gate.
  cpu.Wrpkrs(kPkrsMonitor);
  return status;
}

FaultType DriverSandbox::ProbeAccessFromDriver(int id, uint64_t va, bool write) {
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kKernel);
  uint32_t saved = cpu.pkrs();
  cpu.SetPkrsDirect(DriverPkrs(id));
  Fault f = cpu.Access(va, write ? AccessIntent::Write() : AccessIntent::Read());
  cpu.SetPkrsDirect(saved);
  return f.type;
}

FaultType DriverSandbox::ProbePrivInstrFromDriver(int id, PrivInstr instr) {
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kKernel);
  uint32_t saved = cpu.pkrs();
  cpu.SetPkrsDirect(DriverPkrs(id));
  Fault f = cpu.ExecPriv(instr);
  cpu.SetPkrsDirect(saved);
  return f.type;
}

SimNanos DriverSandbox::GateCost() const {
  // Two checked PKS switches; no mode switch, no CR3 switch, no PTI/IBRS.
  return 2 * machine_.ctx().cost().pks_switch;
}

SimNanos DriverSandbox::MicrokernelIpcCost() const {
  // Ring-3 driver server: syscall-style entry + exit, two mitigated
  // address-space switches, and IPC rendezvous/scheduling work — each way
  // amortized into one round trip.
  const CostModel& c = machine_.ctx().cost();
  return 2 * c.mode_switch + 2 * c.Cr3SwitchMitigated() + c.syscall_entry + c.sysret_exit +
         c.context_switch_kernel / 2;
}

}  // namespace cki
