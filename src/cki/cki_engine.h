// CKI: the paper's contribution. The guest kernel runs in kernel mode
// inside a new, PKS-defined privilege level:
//   * syscalls/exceptions enter it directly (no redirection, no page-table
//     switch: guest kernel memory is mapped U/K-isolated in the user space);
//   * there is no second translation stage — the host delegates contiguous
//     host-physical segments and the guest fills hPAs into its own PTEs,
//     with every update validated by the KSM through a fast PKS gate;
//   * privileged instructions are blocked in hardware while PKRS != 0 and
//     virtualized via KSM calls / hypercalls (Table 3);
//   * hardware interrupts reach the host through forgery-proof gates.
#ifndef SRC_CKI_CKI_ENGINE_H_
#define SRC_CKI_CKI_ENGINE_H_

#include <memory>

#include "src/cki/binary_rewriter.h"
#include "src/cki/gates.h"
#include "src/cki/ksm.h"
#include "src/runtime/engine.h"

namespace cki {

// Syscall-path ablations of section 7.1 (Figure 10b / 15).
enum class CkiAblation : uint8_t {
  kNone = 0,
  kNoOpt2,  // adds two page-table switches to every syscall
  kNoOpt3,  // blocks sysret/swapgs: two PKS switches per syscall
};

class CkiEngine : public ContainerEngine {
 public:
  explicit CkiEngine(Machine& machine, CkiAblation ablation = CkiAblation::kNone,
                     uint64_t segment_pages = 1ull << 19,  // 2 GiB default
                     int n_vcpus = 1);

  std::string_view name() const override;
  RuntimeKind kind() const override {
    switch (ablation_) {
      case CkiAblation::kNoOpt2:
        return RuntimeKind::kCkiNoOpt2;
      case CkiAblation::kNoOpt3:
        return RuntimeKind::kCkiNoOpt3;
      case CkiAblation::kNone:
        break;
    }
    return RuntimeKind::kCki;
  }

  void Boot() override;

  // --- snapshot hooks --------------------------------------------------
  // Config: segment size + vCPU count (the ablation is the kind itself).
  // State: virtual-IF latch, deferred virq queue, selected vCPU.
  void SnapCaptureConfig(SnapWriter& w) const override;
  void SnapApplyConfig(SnapReader& r) override;
  void SnapCaptureState(SnapWriter& w) const override;
  void SnapApplyState(SnapReader& r) override;

  SimNanos KickCost() const override;
  SimNanos DeviceInterruptCost() const override;

  Ksm& ksm() { return *ksm_; }
  Gates& gates() { return *gates_; }
  BinaryRewriter& rewriter() { return rewriter_; }
  const PhysSegment& segment() const { return segment_; }

  // Delivers one hardware device interrupt through the real gate path
  // (tests use this; I/O workloads use DeviceInterruptCost()).
  bool DeliverHardwareInterrupt(uint8_t vector);

  // Migrates execution to vCPU `vcpu`: the KSM loads that vCPU's copy of
  // the current top-level PTP, so the same thread finds its per-vCPU area
  // at the same constant VA backed by different physical memory (Fig 8c).
  bool SelectVcpu(int vcpu);
  int current_vcpu() const { return current_vcpu_; }
  int n_vcpus() const { return n_vcpus_; }

  // --- para-virtual interrupt state (Table 3: STI/CLI/POPF) -----------------
  // The guest cannot execute cli/sti; it maintains its interrupt-enabled
  // state as an in-memory bit visible to the host. The host defers
  // *virtual* interrupt injection while the bit is clear — but hardware
  // interrupts still reach the host (that is the DoS guarantee).
  void GuestSetVirtualIf(bool enabled);
  bool virtual_if() const { return virtual_if_; }
  // Queues a virtual interrupt for the guest; injects immediately when the
  // virtual IF allows, otherwise defers until GuestSetVirtualIf(true).
  // Returns true if the interrupt was injected (vs deferred).
  bool InjectVirq(uint8_t vector);
  size_t pending_virqs() const { return pending_virqs_.size(); }
  uint64_t delivered_virqs() const { return delivered_virqs_; }

  // --- EnginePort ------------------------------------------------------
  uint64_t ReadPte(uint64_t pte_pa) override;
  bool StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) override;
  void BeginPteBatch() override;
  void EndPteBatch() override;
  uint64_t AllocDataPage() override;
  void FreeDataPage(uint64_t pa) override;
  uint64_t AllocPtp(int level) override;
  void FreePtp(uint64_t pa, int level) override;
  uint64_t Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
  void LoadAddressSpace(uint64_t root_pa, uint16_t asid) override;
  void InvalidatePage(uint64_t va) override;

 protected:
  SyscallResult DoUserSyscall(const SyscallRequest& req) override;
  TouchResult DoUserTouch(uint64_t va, bool write) override;
  uint64_t DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
  void OnKill() override;

 private:
  uint64_t SegmentAlloc();
  // Charges one standalone KSM call round trip (enter + op + exit).
  void ChargeKsmRoundtrip(SimNanos op_work);

  CkiAblation ablation_;
  uint64_t segment_pages_;
  int n_vcpus_;
  int current_vcpu_ = 0;
  uint64_t current_root_ = 0;
  bool virtual_if_ = true;
  std::vector<uint8_t> pending_virqs_;
  uint64_t delivered_virqs_ = 0;
  PhysSegment segment_{};
  uint64_t segment_next_ = 0;
  std::vector<uint64_t> guest_free_list_;

  std::unique_ptr<Ksm> ksm_;
  std::unique_ptr<Gates> gates_;
  BinaryRewriter rewriter_;
  std::vector<uint8_t> guest_code_image_;

  uint16_t current_pcid_ = 0;

  // Fault-path state: the PTE update and the final iret share one KSM gate
  // crossing (Fig 10a: both KSM calls together cost 77 ns).
  bool in_fault_ = false;
  bool ksm_open_ = false;   // currently executing with PKRS == 0
  bool in_batch_ = false;
};

}  // namespace cki

#endif  // SRC_CKI_CKI_ENGINE_H_
