// Future-work direction 2 of the paper (section 9): kernel-level syscall
// optimization — running a syscall-intensive application *inside* the
// kernel, deprivileged by a PKS domain, so "syscalls" become direct calls
// through a PKS gate instead of ring crossings.
//
// The win is largest when the user/kernel boundary carries side-channel
// mitigation (PTI/IBRS): the PKS gate needs none, because the app domain
// maps only its own data (the unmapped-speculation-contract argument the
// paper cites).
#ifndef SRC_CKI_KERNEL_APP_H_
#define SRC_CKI_KERNEL_APP_H_

#include "src/guest/guest_kernel.h"
#include "src/host/machine.h"
#include "src/hw/pks.h"

namespace cki {

class InKernelApp {
 public:
  // The app is deprivileged into PKS key `app_key`: while it runs, PKRS
  // denies the kernel-private domains; crossing into kernel service
  // routines is one checked PKS switch each way.
  InKernelApp(Machine& machine, GuestKernel& kernel, uint32_t app_key = 5);

  // A "syscall" from the in-kernel app: PKS gate in, handler, gate out.
  SyscallResult Call(const SyscallRequest& req);

  // The PKRS value while the app domain executes.
  uint32_t app_pkrs() const { return app_pkrs_; }

  // Comparison points (ns per minimal call):
  // classic ring-3 syscall with user/kernel side-channel mitigation.
  SimNanos ClassicMitigatedSyscallCost() const;
  // classic syscall without mitigation (the paper's 90 ns baseline).
  SimNanos ClassicSyscallCost() const;
  // this mechanism.
  SimNanos InKernelCallCost() const;

  uint64_t calls() const { return calls_; }

 private:
  Machine& machine_;
  GuestKernel& kernel_;
  uint32_t app_pkrs_;
  uint64_t calls_ = 0;
};

}  // namespace cki

#endif  // SRC_CKI_KERNEL_APP_H_
