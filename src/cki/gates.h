// PKS switch gates (paper section 4.2, Figure 8).
//
// Three gates connect the deprivileged guest kernel to trusted code:
//   KSM call gate  — fast path: wrpkrs to 0 with a post-write check (anti
//                    ROP), secure-stack switch in the per-vCPU area found at
//                    a constant VA (kernel_gs is untrusted), dispatch,
//                    wrpkrs back. No PTI/IBRS: the KSM maps only private
//                    data of this container.
//   hypercall gate — slow path: PKS switch + full context save/restore +
//                    mitigated CR3 switch to the host kernel.
//   interrupt gate — hardware-interrupt entry; the IDT extension zeroes
//                    PKRS during delivery, so the gate itself contains no
//                    wrpkrs a guest could jump to (anti forgery).
#ifndef SRC_CKI_GATES_H_
#define SRC_CKI_GATES_H_

#include "src/cki/ksm.h"
#include "src/host/machine.h"

namespace cki {

class Gates {
 public:
  Gates(Machine& machine, Ksm& ksm) : machine_(machine), ksm_(ksm) {}

  // --- legitimate transitions -------------------------------------------
  // Enters the KSM: wrpkrs(0) + post-write check + stack/dispatch cost.
  // Returns false if the post-write check aborted (gate abuse).
  bool EnterKsm();
  // Leaves the KSM back to the guest kernel: wrpkrs(PKRS_GUEST) + check.
  bool ExitKsm();

  // A bare checked PKS switch (no dispatch): used by the CKI-wo-OPT3
  // ablation where sysret/swapgs are blocked and the syscall path crosses
  // the gate twice.
  bool SwitchPksTo(uint32_t value) { return SwitchPks(value); }

  // Full hypercall round trip to the host kernel: PKS switches, context
  // save/restore, mitigated CR3 switches, dispatch.
  void HypercallRoundtrip();

  // Hardware-interrupt entry through the IDT + exit-to-host + virtual-
  // interrupt resume. Returns false if delivery failed (triple fault).
  bool HardwareInterruptToHost(uint8_t vector);

  // --- attack entry points (for the security analysis) --------------------
  // A compromised guest kernel jumps straight at the gate's wrpkrs with a
  // chosen value (ROP). Returns true if the attacker ended up executing
  // KSM-privileged code — i.e. the attack succeeded.
  bool AttackRopWrpkrs(uint32_t desired_pkrs);

  // A compromised guest kernel jumps to the interrupt-gate entry to forge
  // an interrupt (software `int N` or direct jump): the IDT extension only
  // re-keys on genuine hardware delivery, so the gate body faults on its
  // first KSM-memory access. Returns true if the forged interrupt reached
  // the host as authentic — i.e. the attack succeeded.
  bool AttackForgeInterrupt(uint8_t vector);

  // Verifies the secure stack at the constant per-vCPU VA is reachable
  // with the current PKRS (used by tests from both sides of the gate).
  bool SecureStackAccessible();

  uint64_t aborted_switches() const { return aborted_switches_; }

 private:
  // The switch_pks macro of Fig 8a: wrpkrs + compare-to-expected.
  bool SwitchPks(uint32_t value);

  Machine& machine_;
  Ksm& ksm_;
  uint64_t aborted_switches_ = 0;
};

}  // namespace cki

#endif  // SRC_CKI_GATES_H_
