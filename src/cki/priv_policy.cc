#include "src/cki/priv_policy.h"

#include <cassert>

namespace cki {

std::string_view PrivStrategyName(PrivStrategy s) {
  switch (s) {
    case PrivStrategy::kDirect:
      return "direct";
    case PrivStrategy::kKsmCall:
      return "KSM call";
    case PrivStrategy::kHypercall:
      return "hypercall";
    case PrivStrategy::kInMemoryState:
      return "in-memory state";
    case PrivStrategy::kUnused:
      return "unused (paravirt)";
  }
  return "unknown";
}

const std::vector<PrivPolicyEntry>& PrivPolicyTable() {
  static const std::vector<PrivPolicyEntry> table = {
      // System registers: boot-time only, replaced with KSM calls.
      {PrivInstr::kLidt, true, PrivStrategy::kKsmCall, "IDT lives in KSM memory"},
      {PrivInstr::kLgdt, true, PrivStrategy::kKsmCall, "boot-time only"},
      {PrivInstr::kLtr, true, PrivStrategy::kKsmCall, "boot-time only"},
      // MSRs: timer and IPI become hypercalls.
      {PrivInstr::kRdmsr, true, PrivStrategy::kHypercall, "pv clock / features"},
      {PrivInstr::kWrmsr, true, PrivStrategy::kHypercall, "timer update, IPI send"},
      // Control registers.
      {PrivInstr::kMovFromCr, false, PrivStrategy::kDirect, "reading CR0/CR4 is harmless"},
      {PrivInstr::kMovToCr0, true, PrivStrategy::kKsmCall, "init, TS-bit lazy-FPU toggle"},
      {PrivInstr::kMovToCr4, true, PrivStrategy::kKsmCall, "init only"},
      {PrivInstr::kMovToCr3, true, PrivStrategy::kKsmCall, "address-space switching"},
      {PrivInstr::kClac, false, PrivStrategy::kDirect, "AC-bit toggling is harmless"},
      {PrivInstr::kStac, false, PrivStrategy::kDirect, "AC-bit toggling is harmless"},
      // TLB state.
      {PrivInstr::kInvlpg, false, PrivStrategy::kDirect,
       "PCID contexts confine the flush to this container"},
      {PrivInstr::kInvpcid, true, PrivStrategy::kUnused,
       "could flush other containers' PCID contexts"},
      // Syscall/exception plumbing.
      {PrivInstr::kSwapgs, false, PrivStrategy::kDirect, "syscall fast path (OPT3)"},
      {PrivInstr::kSysret, false, PrivStrategy::kDirect,
       "with the IF-enforcement extension (no DoS via masked interrupts)"},
      {PrivInstr::kIret, true, PrivStrategy::kKsmCall, "can rewrite segment state"},
      // Others.
      {PrivInstr::kHlt, false, PrivStrategy::kHypercall, "pause-vCPU hypercall"},
      {PrivInstr::kSti, true, PrivStrategy::kInMemoryState, "interrupt flag lives in memory"},
      {PrivInstr::kCli, true, PrivStrategy::kInMemoryState, "interrupt flag lives in memory"},
      {PrivInstr::kPopf, true, PrivStrategy::kInMemoryState, "could clear IF"},
      {PrivInstr::kInOut, true, PrivStrategy::kUnused, "no port I/O in a pv guest"},
      {PrivInstr::kSmsw, true, PrivStrategy::kUnused, "legacy/system management"},
      // The gate primitive itself.
      {PrivInstr::kWrpkrs, false, PrivStrategy::kDirect,
       "only at registered switch gates (binary rewriting)"},
      {PrivInstr::kVmcall, false, PrivStrategy::kDirect, "hypercall entry"},
  };
  return table;
}

const PrivPolicyEntry& PolicyFor(PrivInstr instr) {
  for (const PrivPolicyEntry& e : PrivPolicyTable()) {
    if (e.instr == instr) {
      return e;
    }
  }
  assert(false && "instruction missing from policy table");
  static const PrivPolicyEntry fallback{PrivInstr::kCount, false, PrivStrategy::kDirect, ""};
  return fallback;
}

}  // namespace cki
