// Page-table protection monitor of the KSM (paper section 4.3).
//
// CKI intercepts and verifies every page-table update of the guest kernel,
// using nested-kernel-style invariants enforced through PKS instead of the
// PTE writable bit:
//   (1) only declared pages can be used as page-table pages (PTPs);
//   (2) declared PTPs are read-only in the guest (pkey_PTP, write-disabled
//       under PKRS_GUEST);
//   (3) only a declared top-level PTP can be loaded into CR3.
// Additional rules: a PTP maps into the hierarchy at most once (refcount),
// leaf mappings of a PTP are forced read-only in the PTP key domain, every
// mapped frame must belong to the container, and no new kernel-executable
// mappings may appear after boot (anti-wrpkrs-injection, section 4.1).
#ifndef SRC_CKI_PTP_MONITOR_H_
#define SRC_CKI_PTP_MONITOR_H_

#include <cstdint>
#include <string_view>
#include <unordered_map>

#include "src/host/frame_allocator.h"
#include "src/hw/pte.h"

namespace cki {

enum class PtpVerdict : uint8_t {
  kOk = 0,
  kNotDeclared,          // store targets a page that is not a declared PTP
  kWrongLevel,           // slot level does not match the declared level
  kForeignFrame,         // mapped frame is not owned by this container
  kTargetNotPtp,         // intermediate entry points to a non-declared page
  kPtpAlreadyLinked,     // PTP would be referenced twice in the hierarchy
  kKernelExecMapping,    // new kernel-executable mapping after boot
  kBadPkey,              // guest tried to choose protection keys itself
  kRootNotDeclared,      // CR3 load of an undeclared/non-top-level page
  kReservedSlot,         // top-level slot reserved for KSM mappings
  kDataPageInUse,        // declaring a PTP over a page mapped as data
};

std::string_view PtpVerdictName(PtpVerdict v);

class PtpMonitor {
 public:
  PtpMonitor(const FrameAllocator& frames, OwnerId owner);

  // Marks boot complete: from now on, new kernel-executable mappings are
  // rejected (guest kernel code is frozen).
  void SealKernelText() { boot_mode_ = false; }
  bool sealed() const { return !boot_mode_; }

  // Reserves top-level (PML4) slot indices for KSM-owned mappings; guest
  // updates to these indices are rejected.
  void ReserveTopLevelSlot(int index) { reserved_slots_[index] = true; }

  // Declares `pa` as a PTP of `level`. Verifies ownership and that the page
  // is not already declared or mapped as data.
  PtpVerdict DeclarePtp(uint64_t pa, int level);

  // Removes the declaration (teardown) once nothing links to the PTP.
  PtpVerdict UndeclarePtp(uint64_t pa);

  // Validates a guest-requested PTE store. `slot_pa` is the address of the
  // PTE being written (it must sit inside a declared PTP of `slot_level`),
  // `value` the proposed entry. On success, `*sanitized` holds the value
  // to actually store (the monitor may force read-only + pkey_PTP when the
  // guest maps a PTP as data).
  PtpVerdict CheckStore(uint64_t slot_pa, uint64_t value, int slot_level, uint64_t va,
                        uint64_t* sanitized);

  // Validates a CR3 target (invariant 3).
  PtpVerdict CheckCr3(uint64_t root_pa) const;

  // True if `pa` is a declared PTP (any level).
  bool IsPtp(uint64_t pa) const;
  int PtpLevel(uint64_t pa) const;  // -1 if not declared

  // True if the frame was mapped kernel-executable during boot (frozen
  // kernel text) — the only frames allowed to stay kernel-executable.
  bool IsKernelTextFrame(uint64_t pa) const {
    return kernel_text_frames_.count(pa >> kPageShift) != 0;
  }

  uint64_t declared_ptps() const { return declared_; }
  uint64_t checked_stores() const { return checked_; }
  uint64_t rejected_stores() const { return rejected_; }

 private:
  struct PageInfo {
    bool is_ptp = false;
    int level = 0;
    int link_count = 0;  // references from parent tables
  };

  // Applies the bookkeeping of replacing `old_value` with `value` in a slot.
  void UpdateLinkCounts(uint64_t old_value, uint64_t value, int slot_level);

  const FrameAllocator& frames_;
  OwnerId owner_;
  bool boot_mode_ = true;
  std::unordered_map<uint64_t, PageInfo> pages_;  // pfn -> info
  // Frames mapped kernel-executable during boot (the frozen kernel text);
  // only these may be re-mapped executable after sealing.
  std::unordered_map<uint64_t, bool> kernel_text_frames_;
  std::unordered_map<int, bool> reserved_slots_;
  // Last stored value per slot (for link-count maintenance).
  std::unordered_map<uint64_t, uint64_t> slot_values_;

  uint64_t declared_ = 0;
  uint64_t checked_ = 0;
  uint64_t rejected_ = 0;
};

}  // namespace cki

#endif  // SRC_CKI_PTP_MONITOR_H_
