// Binary-rewriting verifier for guest kernel code (section 4.1).
//
// wrpkrs must appear only inside registered switch gates; any other
// occurrence — aligned or not, including sequences that straddle intended
// instruction boundaries — would let the guest raise its own PKRS. The
// scanner checks every byte offset of the frozen code image (the monitor
// separately guarantees no new kernel-executable mappings appear, so a scan
// at seal time covers the container's lifetime).
#ifndef SRC_CKI_BINARY_REWRITER_H_
#define SRC_CKI_BINARY_REWRITER_H_

#include <cstdint>
#include <set>
#include <vector>

#include "src/hw/instr.h"

namespace cki {

struct ScanReport {
  // Byte offsets of wrpkrs sequences found outside registered gates.
  std::vector<size_t> violations;
  size_t gate_occurrences = 0;

  bool clean() const { return violations.empty(); }
};

class BinaryRewriter {
 public:
  // Registers a legitimate gate site (offset of its wrpkrs instruction).
  void RegisterGateOffset(size_t offset) { gate_offsets_.insert(offset); }

  const std::set<size_t>& gate_offsets() const { return gate_offsets_; }

  // Scans the code image at every byte offset for the wrpkrs byte pattern.
  ScanReport Scan(const std::vector<uint8_t>& image) const;

  // Rewrites non-gate occurrences in place (NOP fill), returning how many
  // sites were patched. Models the offline rewriting pass.
  size_t Rewrite(std::vector<uint8_t>& image) const;

 private:
  std::set<size_t> gate_offsets_;
};

// Helper used by tests and the engine: writes the wrpkrs byte pattern into
// an image at `offset`.
void EmitWrpkrs(std::vector<uint8_t>& image, size_t offset);

}  // namespace cki

#endif  // SRC_CKI_BINARY_REWRITER_H_
