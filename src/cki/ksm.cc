#include "src/cki/ksm.h"

#include "src/hw/page_table.h"
#include "src/hw/pks.h"

namespace cki {

Ksm::Ksm(Machine& machine, OwnerId owner, int n_vcpus)
    : machine_(machine), owner_(owner), n_vcpus_(n_vcpus), monitor_(machine.frames(), owner) {
  monitor_.ReserveTopLevelSlot(kKsmRegionSlot);
  monitor_.ReserveTopLevelSlot(kPerVcpuSlot);

  // KSM private memory + one per-vCPU area page per vCPU, all host frames:
  // the guest cannot even name them through its delegated segments.
  ksm_region_pa_ = AllocKsmFrame();
  static_frames_.push_back(ksm_region_pa_);
  ksm_region_pdpt_ = BuildSubtree(kKsmRegionVa, ksm_region_pa_);
  area_pas_.reserve(static_cast<size_t>(n_vcpus));
  area_pdpts_.reserve(static_cast<size_t>(n_vcpus));
  for (int v = 0; v < n_vcpus; ++v) {
    uint64_t area = AllocKsmFrame();
    static_frames_.push_back(area);
    area_pas_.push_back(area);
    area_pdpts_.push_back(BuildSubtree(kPerVcpuAreaVa, area));
  }

  // IDT in KSM memory: user exceptions enter the guest kernel directly with
  // PKRS unchanged; hardware interrupts use the interrupt gate with the
  // IDT-PKS-switch extension and an IST stack inside the per-vCPU area.
  idt_.SetGate(kVecPageFault,
               IdtGate{.present = true, .handler_tag = kHandlerGuestPageFault, .ist_index = 0,
                       .pks_switch = false});
  idt_.SetGate(kVecGeneralProtection,
               IdtGate{.present = true, .handler_tag = kHandlerHostInterrupt, .ist_index = 1,
                       .pks_switch = true});
  for (uint8_t vec : {kVecTimer, kVecVirtioNet, kVecVirtioBlk}) {
    idt_.SetGate(vec, IdtGate{.present = true, .handler_tag = kHandlerHostInterrupt,
                              .ist_index = 1, .pks_switch = true});
  }
  idt_.SetIstStack(1, kPerVcpuAreaVa + 0xF00);  // secure stack top
}

Ksm::~Ksm() {
  // Per-vCPU top-level copies the guest never undeclared, then the
  // construction-time frames (region, areas, subtrees).
  for (const auto& [root, copies] : top_copies_) {
    for (uint64_t copy : copies) {
      machine_.frames().FreeFrame(copy);
    }
  }
  for (auto it = static_frames_.rbegin(); it != static_frames_.rend(); ++it) {
    machine_.frames().FreeFrame(*it);
  }
}

uint64_t Ksm::AllocKsmFrame() { return machine_.frames().AllocFrame(kHostOwner); }

uint64_t Ksm::BuildSubtree(uint64_t va, uint64_t pa) {
  PhysMem& mem = machine_.mem();
  uint64_t pdpt = AllocKsmFrame();
  uint64_t pd = AllocKsmFrame();
  uint64_t pt = AllocKsmFrame();
  static_frames_.push_back(pdpt);
  static_frames_.push_back(pd);
  static_frames_.push_back(pt);
  mem.WriteU64(pdpt + static_cast<uint64_t>(PtIndex(va, 3)) * 8, MakePte(pd, kPteP | kPteW));
  mem.WriteU64(pd + static_cast<uint64_t>(PtIndex(va, 2)) * 8, MakePte(pt, kPteP | kPteW));
  mem.WriteU64(pt + static_cast<uint64_t>(PtIndex(va, 1)) * 8,
               MakePte(pa, kPteP | kPteW | kPteNx, kPkeyKsm));
  return pdpt;
}

void Ksm::InstallKsmSlots(uint64_t copy_pa, int vcpu) {
  PhysMem& mem = machine_.mem();
  mem.WriteU64(copy_pa + static_cast<uint64_t>(kKsmRegionSlot) * 8,
               MakePte(ksm_region_pdpt_, kPteP | kPteW));
  mem.WriteU64(copy_pa + static_cast<uint64_t>(kPerVcpuSlot) * 8,
               MakePte(area_pdpts_[static_cast<size_t>(vcpu)], kPteP | kPteW));
}

PtpVerdict Ksm::DeclarePtp(uint64_t pa, int level) {
  calls_++;
  PtpVerdict v = monitor_.DeclarePtp(pa, level);
  if (v != PtpVerdict::kOk) {
    return v;
  }
  if (level == kPtLevels) {
    // Create the per-vCPU hardware copies with KSM mappings pre-installed.
    PhysMem& mem = machine_.mem();
    std::vector<uint64_t>& copies = top_copies_[pa];
    copies.clear();
    for (int vcpu = 0; vcpu < n_vcpus_; ++vcpu) {
      uint64_t copy = AllocKsmFrame();
      for (int i = 0; i < kPtEntries; ++i) {
        mem.WriteU64(copy + static_cast<uint64_t>(i) * 8,
                     mem.ReadU64(pa + static_cast<uint64_t>(i) * 8));
      }
      InstallKsmSlots(copy, vcpu);
      copies.push_back(copy);
    }
  }
  return PtpVerdict::kOk;
}

PtpVerdict Ksm::UndeclarePtp(uint64_t pa) {
  calls_++;
  PtpVerdict v = monitor_.UndeclarePtp(pa);
  if (v == PtpVerdict::kOk) {
    auto it = top_copies_.find(pa);
    if (it != top_copies_.end()) {
      for (uint64_t copy : it->second) {
        machine_.frames().FreeFrame(copy);
      }
      top_copies_.erase(it);
    }
  }
  return v;
}

PtpVerdict Ksm::UpdatePte(uint64_t slot_pa, uint64_t value, int level, uint64_t va) {
  calls_++;
  uint64_t sanitized = value;
  PtpVerdict v = monitor_.CheckStore(slot_pa, value, level, va, &sanitized);
  if (v != PtpVerdict::kOk) {
    machine_.ctx().RecordEvent(PathEvent::kSecurityViolation, slot_pa);
    return v;
  }
  PhysMem& mem = machine_.mem();
  mem.WriteU64(slot_pa, sanitized);
  if (level == kPtLevels) {
    // Mirror into every per-vCPU copy of this root.
    uint64_t root = slot_pa & ~(kPageSize - 1);
    auto it = top_copies_.find(root);
    if (it != top_copies_.end()) {
      uint64_t offset = slot_pa & (kPageSize - 1);
      for (uint64_t copy : it->second) {
        mem.WriteU64(copy + offset, sanitized);
      }
    }
  }
  machine_.ctx().RecordEvent(PathEvent::kPteUpdate);
  return PtpVerdict::kOk;
}

PtpVerdict Ksm::LoadGuestCr3(uint64_t root_pa, uint16_t pcid, int vcpu) {
  calls_++;
  PtpVerdict v = monitor_.CheckCr3(root_pa);
  if (v != PtpVerdict::kOk) {
    machine_.ctx().RecordEvent(PathEvent::kSecurityViolation, root_pa);
    return v;
  }
  uint64_t copy = TopLevelCopy(root_pa, vcpu);
  if (copy == 0) {
    return PtpVerdict::kRootNotDeclared;
  }
  machine_.cpu().LoadCr3(MakeCr3(copy, pcid));
  return PtpVerdict::kOk;
}

uint64_t Ksm::TopLevelCopy(uint64_t root_pa, int vcpu) const {
  auto it = top_copies_.find(Cr3Root(root_pa));
  if (it == top_copies_.end() || vcpu < 0 ||
      static_cast<size_t>(vcpu) >= it->second.size()) {
    return 0;
  }
  return it->second[static_cast<size_t>(vcpu)];
}

uint64_t Ksm::ReadTopLevelPte(uint64_t root_pa, int index) {
  calls_++;
  PhysMem& mem = machine_.mem();
  uint64_t offset = static_cast<uint64_t>(index) * 8;
  uint64_t value = mem.ReadU64(root_pa + offset);
  auto it = top_copies_.find(root_pa);
  if (it != top_copies_.end()) {
    for (uint64_t copy : it->second) {
      // Propagate accessed/dirty from the hardware-visible copies.
      value |= mem.ReadU64(copy + offset) & (kPteA | kPteD);
    }
  }
  return value;
}

void Ksm::IretToUser() {
  calls_++;
  machine_.cpu().IretTrusted(Cpl::kUser, kPkrsGuest);
}

}  // namespace cki
