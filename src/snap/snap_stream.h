// Byte-stream primitives of the container snapshot format (DESIGN.md §10).
//
// SnapWriter serializes little-endian scalars and raw byte runs while
// folding every byte into a running FNV-1a digest — the same hash family
// as the vswitch/fault trace hashes, so "bit-identical stream" and
// "equal content hash" are one property. SnapReader is the strict
// inverse: every read is bounds-checked, and any overrun or bad magic
// latches a sticky corrupt flag instead of throwing — Restore turns that
// flag into a typed FaultReport, never a host abort.
//
// Determinism contract: writers emit fields in a canonical order (callers
// sort map contents before writing), so checkpoint -> restore ->
// checkpoint reproduces the byte-identical stream.
//
// Thread-safety: none; a stream belongs to one checkpoint/restore call.
// Ownership: self-contained value types over std::vector<uint8_t>.
#ifndef SRC_SNAP_SNAP_STREAM_H_
#define SRC_SNAP_SNAP_STREAM_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "src/sim/fnv.h"

namespace cki {

inline constexpr uint64_t kSnapFnvBasis = kFnvOffsetBasis;

// FNV-1a over a byte range, continuing from `hash`.
inline uint64_t SnapHashBytes(uint64_t hash, const uint8_t* data, size_t n) {
  return FnvMixBytes(hash, data, n);
}

class SnapWriter {
 public:
  void PutU8(uint8_t v) { bytes_.push_back(v); }
  void PutU16(uint16_t v) { PutLe(v, 2); }
  void PutU32(uint32_t v) { PutLe(v, 4); }
  void PutU64(uint64_t v) { PutLe(v, 8); }
  void PutI64(int64_t v) { PutLe(static_cast<uint64_t>(v), 8); }
  void PutBool(bool v) { PutU8(v ? 1 : 0); }

  void PutBytes(const uint8_t* data, size_t n) {
    bytes_.insert(bytes_.end(), data, data + n);
  }
  void PutBlob(const std::vector<uint8_t>& blob) {
    PutU32(static_cast<uint32_t>(blob.size()));
    PutBytes(blob.data(), blob.size());
  }

  // FNV-1a over everything written so far.
  uint64_t Hash() const { return SnapHashBytes(kSnapFnvBasis, bytes_.data(), bytes_.size()); }

  const std::vector<uint8_t>& bytes() const { return bytes_; }
  std::vector<uint8_t> Take() { return std::move(bytes_); }
  size_t size() const { return bytes_.size(); }

 private:
  void PutLe(uint64_t v, int n) {
    for (int i = 0; i < n; ++i) {
      bytes_.push_back(static_cast<uint8_t>(v >> (i * 8)));
    }
  }

  std::vector<uint8_t> bytes_;
};

class SnapReader {
 public:
  SnapReader(const uint8_t* data, size_t size) : data_(data), size_(size) {}
  explicit SnapReader(const std::vector<uint8_t>& bytes)
      : SnapReader(bytes.data(), bytes.size()) {}

  uint8_t GetU8() { return static_cast<uint8_t>(GetLe(1)); }
  uint16_t GetU16() { return static_cast<uint16_t>(GetLe(2)); }
  uint32_t GetU32() { return static_cast<uint32_t>(GetLe(4)); }
  uint64_t GetU64() { return GetLe(8); }
  int64_t GetI64() { return static_cast<int64_t>(GetLe(8)); }
  bool GetBool() { return GetU8() != 0; }

  bool GetBytes(uint8_t* out, size_t n) {
    if (!CheckAvail(n)) {
      return false;
    }
    for (size_t i = 0; i < n; ++i) {
      out[i] = data_[pos_ + i];
    }
    pos_ += n;
    return true;
  }

  std::vector<uint8_t> GetBlob() {
    uint32_t n = GetU32();
    if (!CheckAvail(n)) {
      return {};
    }
    std::vector<uint8_t> blob(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return blob;
  }

  // A count field about to drive a loop/reserve: anything larger than the
  // bytes left cannot be honest, so it latches corruption (otherwise a
  // flipped length bit could drive a multi-gigabyte allocation).
  uint64_t GetCount(uint64_t element_bytes) {
    uint64_t n = GetU32();
    if (element_bytes > 0 && n > (size_ - pos_) / element_bytes + 1) {
      corrupt_ = true;
      return 0;
    }
    return corrupt_ ? 0 : n;
  }

  size_t pos() const { return pos_; }
  size_t size() const { return size_; }
  size_t remaining() const { return size_ - pos_; }
  bool ok() const { return !corrupt_; }
  void MarkCorrupt() { corrupt_ = true; }

 private:
  bool CheckAvail(size_t n) {
    if (corrupt_ || n > size_ - pos_) {
      corrupt_ = true;
      return false;
    }
    return true;
  }

  uint64_t GetLe(int n) {
    if (!CheckAvail(static_cast<size_t>(n))) {
      return 0;
    }
    uint64_t v = 0;
    for (int i = 0; i < n; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + static_cast<size_t>(i)]) << (i * 8);
    }
    pos_ += static_cast<size_t>(n);
    return v;
  }

  const uint8_t* data_;
  size_t size_;
  size_t pos_ = 0;
  bool corrupt_ = false;
};

}  // namespace cki

#endif  // SRC_SNAP_SNAP_STREAM_H_
