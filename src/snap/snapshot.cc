#include "src/snap/snapshot.h"

#include <array>

#include "src/blkfs/blkfs.h"
#include "src/fault/fault_injector.h"
#include "src/net/virt_nic.h"
#include "src/runtime/runtime.h"
#include "src/snap/snap_stream.h"

namespace cki {

namespace {

constexpr size_t kWordsPerPage = kPageSize / 8;
// magic + version + kind + (empty) config blob + trailing hash.
constexpr size_t kMinStreamBytes = 8 + 4 + 1 + 4 + 8;

uint64_t TrailingHash(const std::vector<uint8_t>& bytes) {
  uint64_t v = 0;
  size_t base = bytes.size() - 8;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(bytes[base + static_cast<size_t>(i)]) << (i * 8);
  }
  return v;
}

bool KindInRange(uint8_t kind) {
  return kind <= static_cast<uint8_t>(RuntimeKind::kLibOs);
}

}  // namespace

RuntimeKind SnapshotImage::kind() const {
  if (bytes.size() < kMinStreamBytes) {
    return RuntimeKind::kRunc;
  }
  return static_cast<RuntimeKind>(bytes[12]);
}

uint64_t SnapshotImage::content_hash() const {
  if (bytes.size() < kMinStreamBytes) {
    return 0;
  }
  return TrailingHash(bytes);
}

bool SnapshotImage::Valid() const {
  if (bytes.size() < kMinStreamBytes) {
    return false;
  }
  SnapReader r(bytes.data(), bytes.size());
  if (r.GetU64() != kSnapMagic || r.GetU32() != kSnapVersion || !KindInRange(r.GetU8())) {
    return false;
  }
  return TrailingHash(bytes) == SnapHashBytes(kSnapFnvBasis, bytes.data(), bytes.size() - 8);
}

SnapshotImage CheckpointContainer(ContainerEngine& engine, FaultInjector* injector,
                                  const VirtNic* nic, Blkfs* blkfs) {
  SimContext& ctx = engine.machine().ctx();
  PhysMem& mem = engine.machine().mem();
  ctx.ChargeWork(ctx.cost().snap_fixed);

  // Quiesce storage before the kernel section: writeback demotes PTEs
  // (write-protect), so it must happen before page tables serialize.
  if (blkfs != nullptr) {
    blkfs->FlushAll();
  }

  SnapWriter w;
  w.PutU64(kSnapMagic);
  w.PutU32(kSnapVersion);
  w.PutU8(static_cast<uint8_t>(engine.kind()));

  SnapWriter cfg;
  engine.SnapCaptureConfig(cfg);
  w.PutBlob(cfg.bytes());

  engine.kernel().SnapshotTo(w, [&](uint64_t pa, SnapWriter& fw) {
    ctx.ChargeWork(ctx.cost().snap_page_capture);
    uint64_t host = engine.HostFrameFor(pa);
    if (host == kNoPage) {
      // Lazy HVM/PVM page never backed: all-zero by construction.
      fw.PutBool(false);
      return;
    }
    std::array<uint64_t, kWordsPerPage> words;
    bool nonzero = false;
    for (size_t i = 0; i < kWordsPerPage; ++i) {
      words[i] = mem.ReadU64(host + i * 8);
      nonzero = nonzero || words[i] != 0;
    }
    fw.PutBool(nonzero);
    if (nonzero) {
      for (uint64_t word : words) {
        fw.PutU64(word);
      }
    }
  });

  SnapWriter state;
  engine.SnapCaptureState(state);
  w.PutBlob(state.bytes());

  SnapWriter dev;
  dev.PutBool(nic != nullptr);
  if (nic != nullptr) {
    nic->SnapCapture(dev);
  }
  w.PutBlob(dev.bytes());

  SnapWriter bw;
  bw.PutBool(blkfs != nullptr);
  if (blkfs != nullptr) {
    blkfs->SnapCapture(bw);
  }
  w.PutBlob(bw.bytes());

  w.PutU64(w.Hash());
  SnapshotImage image{w.Take()};

  // Chaos site 7: one deterministic bit-flip somewhere in the finished
  // stream (position derives from the injector's draw count, so the same
  // seed corrupts the same bit).
  if (injector != nullptr && injector->InjectSnapshotCorruption()) {
    uint64_t bit = (injector->draws() * 0x9E3779B97F4A7C15ULL) % (image.bytes.size() * 8);
    image.bytes[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
  }
  return image;
}

RestoreOutcome RestoreContainer(Machine& machine, const SnapshotImage& image) {
  RestoreOutcome out;
  out.fault = FaultReport{FaultKind::kSnapshotCorrupt, /*owner=*/0, /*detail=*/0};
  const std::vector<uint8_t>& bytes = image.bytes;

  // Content hash first: any damage anywhere in the stream is caught here
  // before a single byte drives an allocation.
  if (bytes.size() < kMinStreamBytes ||
      TrailingHash(bytes) != SnapHashBytes(kSnapFnvBasis, bytes.data(), bytes.size() - 8)) {
    out.fault.detail = bytes.size() < kMinStreamBytes ? 0 : TrailingHash(bytes);
    machine.faults().Note(out.fault);
    return out;
  }
  SnapReader r(bytes.data(), bytes.size() - 8);
  uint8_t kind_byte = 0;
  if (r.GetU64() != kSnapMagic || r.GetU32() != kSnapVersion ||
      !KindInRange(kind_byte = r.GetU8())) {
    machine.faults().Note(out.fault);
    return out;
  }
  RuntimeKind kind = static_cast<RuntimeKind>(kind_byte);

  SimContext& ctx = machine.ctx();
  ctx.ChargeWork(ctx.cost().snap_fixed);
  std::unique_ptr<ContainerEngine> engine = MakeEngine(machine, kind);

  std::vector<uint8_t> cfg = r.GetBlob();
  {
    SnapReader cr(cfg);
    engine->SnapApplyConfig(cr);
    if (!cr.ok() || !r.ok()) {
      machine.faults().Note(out.fault);
      return out;
    }
  }

  bool booted = false;
  try {
    engine->Boot();
    booted = true;
    bool restored = engine->kernel().RestoreFrom(r, [&](uint64_t pa, SnapReader& fr) {
      uint64_t host = engine->EnsureHostFrame(pa);
      if (host == kNoPage) {
        return false;
      }
      bool nonzero = fr.GetBool();
      if (!fr.ok()) {
        return false;
      }
      if (!nonzero) {
        machine.mem().ZeroFrame(host);
        return true;
      }
      for (size_t i = 0; i < kWordsPerPage; ++i) {
        machine.mem().WriteU64(host + i * 8, fr.GetU64());
      }
      return fr.ok();
    });
    if (restored && r.ok()) {
      std::vector<uint8_t> state = r.GetBlob();
      SnapReader sr(state);
      engine->SnapApplyState(sr);
      out.device_state = r.GetBlob();
      out.blkfs_state = r.GetBlob();
      restored = sr.ok() && r.ok();
    }
    if (!restored || !r.ok()) {
      // Reject the stream, reclaim whatever the half-restore allocated,
      // and report the typed fault — never a host abort.
      engine->KillFromFault();
      machine.faults().Note(out.fault);
      return out;
    }
  } catch (const ContainerKilled& killed) {
    out.fault = killed.report();
    return out;
  } catch (const FatalHostError&) {
    if (booted) {
      engine->KillFromFault();
    }
    throw;  // genuinely host-fatal; not a stream problem
  }

  out.ok = true;
  out.engine = std::move(engine);
  return out;
}

bool ApplySnapshotDeviceState(VirtNic& nic, const std::vector<uint8_t>& blob) {
  SnapReader r(blob);
  if (!r.GetBool() || !r.ok()) {
    return false;
  }
  nic.SnapApply(r);
  return r.ok();
}

std::unique_ptr<ContainerEngine> CloneContainer(ContainerEngine& parent) {
  Machine& machine = parent.machine();
  SimContext& ctx = machine.ctx();
  ctx.ChargeWork(ctx.cost().snap_fixed);

  std::unique_ptr<ContainerEngine> clone = MakeEngine(machine, parent.kind());
  SnapWriter cfg;
  parent.SnapCaptureConfig(cfg);
  {
    SnapReader cr(cfg.bytes());
    clone->SnapApplyConfig(cr);
  }
  clone->Boot();

  ContainerEngine* clone_ptr = clone.get();
  clone->kernel().CloneFrom(parent.kernel(), [&parent, clone_ptr](uint64_t parent_pa) {
    uint64_t host = parent.HostFrameFor(parent_pa);
    if (host == kNoPage) {
      // Never-backed lazy page: give the clone its own private zero page
      // instead of a share record (there is nothing to share).
      return clone_ptr->AllocDataPage();
    }
    return clone_ptr->AdoptSharedFrame(host);
  });

  // The parent's writable mappings were just demoted to read-only; flush
  // every TLB context it may have cached them under.
  machine.cpu().tlb().InvalidatePcidRange(parent.pcid_base(), parent.pcid_count());

  SnapWriter state;
  parent.SnapCaptureState(state);
  {
    SnapReader sr(state.bytes());
    clone->SnapApplyState(sr);
  }
  return clone;
}

}  // namespace cki
