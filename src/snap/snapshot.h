// Container checkpoint/restore and copy-on-write clone (DESIGN.md §10).
//
// Three operations on a live container engine:
//   * CheckpointContainer — serializes the whole container (guest kernel,
//     processes/VMAs, tmpfs, page tables, dirty frame contents, engine
//     config/state, optional NIC device state) into a versioned,
//     PA-independent byte stream ending in an FNV-1a content hash.
//   * RestoreContainer — rebuilds the container from a stream under a
//     fresh engine of the recorded kind, on the same or any other Machine
//     (cross-shard migration), remapping every frame. A corrupt stream is
//     rejected with a typed FaultReport{kSnapshotCorrupt}; it never
//     aborts the host, and a half-built engine is killed and reclaimed.
//   * CloneContainer — CoW fork on the same Machine: the clone adopts the
//     template's frames read-only via FrameAllocator share records, so N
//     warm clones cost O(dirty pages), not O(container size). The first
//     write on either side breaks the sharing (guest_kernel_mm.cc).
//
// Determinism contract: checkpoint -> restore -> checkpoint reproduces a
// bit-identical stream with an equal content hash, across all engines.
#ifndef SRC_SNAP_SNAPSHOT_H_
#define SRC_SNAP_SNAPSHOT_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/fault/fault_domain.h"
#include "src/runtime/engine.h"

namespace cki {

class Blkfs;
class FaultInjector;
class VirtNic;

// Stream header constants (little-endian on the wire).
inline constexpr uint64_t kSnapMagic = 0x3150414E53494B43ULL;  // "CKISNAP1"
inline constexpr uint32_t kSnapVersion = 1;

// A serialized container. Self-contained value type: copy it, ship it to
// another shard, keep it as a warm-start template.
struct SnapshotImage {
  std::vector<uint8_t> bytes;

  // Peeks the recorded engine kind (valid only if the header is intact).
  RuntimeKind kind() const;
  // The trailing FNV-1a digest over the rest of the stream.
  uint64_t content_hash() const;
  // Magic, version, and content hash all check out.
  bool Valid() const;
};

// Result of RestoreContainer. On failure `engine` is null and `fault`
// says why (kSnapshotCorrupt for any stream damage).
struct RestoreOutcome {
  bool ok = false;
  FaultReport fault;
  std::unique_ptr<ContainerEngine> engine;
  // Opaque NIC device blob carried by the stream; apply it to a NIC
  // attached to the restored engine with ApplySnapshotDeviceState (a NIC
  // can only be constructed after the engine exists, hence two steps).
  std::vector<uint8_t> device_state;
  // Opaque blkfs blob (config, image tags, delta, inode table); rebuild
  // the filesystem with RestoreBlkfsState (src/blkfs/blkfs.h) against
  // the destination machine's LayerStore.
  std::vector<uint8_t> blkfs_state;
};

// Serializes `engine`'s full container state. `nic` adds the device blob;
// `injector` arms the snapshot-corruption chaos site (a deterministic
// bit-flip in the finished stream); `blkfs` quiesces the filesystem
// (writeback + barrier) and appends its delta-layer blob.
SnapshotImage CheckpointContainer(ContainerEngine& engine, FaultInjector* injector = nullptr,
                                  const VirtNic* nic = nullptr, Blkfs* blkfs = nullptr);

// Rebuilds the container on `machine` (same or different shard).
RestoreOutcome RestoreContainer(Machine& machine, const SnapshotImage& image);

// Applies a restored stream's NIC blob; false if the blob carries no
// device section or is corrupt.
bool ApplySnapshotDeviceState(VirtNic& nic, const std::vector<uint8_t>& blob);

// CoW fork of `parent` on its own Machine. Returns the booted clone;
// throws FatalHostError only for host-fatal conditions (as Boot would).
std::unique_ptr<ContainerEngine> CloneContainer(ContainerEngine& parent);

}  // namespace cki

#endif  // SRC_SNAP_SNAPSHOT_H_
