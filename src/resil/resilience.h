// Request resilience primitives: deadlines, retry budgets, hedging,
// circuit breaking, load shedding (DESIGN.md section 13).
//
// Gray failures (src/fault/gray_fault.h) make a machine slow or lossy
// without making it dead, so the serving path needs client-side defenses:
// a deadline carried with each request, bounded retries paid from a
// token-bucket budget (so a blackhole cannot ignite a retry storm), a
// hedge issued after a latency-quantile delay, a per-destination circuit
// breaker that stops hammering a destination whose rolling failure rate
// crossed threshold, and admission shedding of requests whose deadline is
// already infeasible.
//
// Determinism contract: every primitive here is a pure function of
// simulated time and its own call sequence — no wall clock, no RNG, no
// threads. Timeouts compare SimNanos; the breaker's rolling window is the
// SloWindow epoch-bucket ring; backoff is a shift. Two runs that feed the
// same sequence of (now, outcome) make identical decisions at any host
// thread count.
//
// Thread-safety: none — each instance belongs to one shard/flow and is
// only touched from that shard's thread (the fault_injector.h contract).
#ifndef SRC_RESIL_RESILIENCE_H_
#define SRC_RESIL_RESILIENCE_H_

#include <cstdint>
#include <vector>

#include "src/guest/syscall.h"
#include "src/sim/clock.h"

namespace cki {

// Knobs for the whole resilience layer. `enabled = false` turns every
// defense off (the bench's control arm); individual features disarm with
// their own zero values.
struct ResilConfig {
  bool enabled = true;
  // Deadline budget granted to each request at arrival (0 = no deadline).
  // Kept a little above the orchestrator's default SLO p99 target
  // (400us): late enough that healthy requests never miss, tight enough
  // that shedding and deadline-fed breakers engage while an epoch can
  // still be saved.
  SimNanos deadline_ns = 500'000;
  // Retries: total attempts per request including the first.
  uint32_t max_attempts = 3;
  SimNanos backoff_base_ns = 10'000;  // first retry waits this long
  SimNanos backoff_cap_ns = 80'000;   // exponential backoff ceiling
  // How long an attempt may stay unanswered before it is declared lost (a
  // blackholed request has no RST to learn from). Kept near the healthy
  // tail latency: a recovered request should finish well inside the
  // deadline instead of dragging the fleet p99 up with it.
  SimNanos attempt_timeout_ns = 100'000;
  // Token-bucket retry budget: bucket starts at `cap`, refills by `ratio`
  // tokens per successful request, each retry spends one whole token.
  // ratio = 0.2 caps sustained retry volume at 20% of successes.
  double retry_budget_ratio = 0.2;
  double retry_budget_cap = 32;
  // Hedging: issue a second copy once the first has been in flight for the
  // rolling `hedge_quantile` latency (never sooner than `hedge_floor_ns`).
  // quantile = 0 disables hedging.
  double hedge_quantile = 97;
  SimNanos hedge_floor_ns = 100'000;
  // Circuit breaker: open when the rolling window holds at least
  // `breaker_min_samples` outcomes and failures/total >= threshold_x1000.
  uint32_t breaker_threshold_x1000 = 500;  // 50% failure rate trips
  uint32_t breaker_min_samples = 8;
  SimNanos breaker_open_ns = 2'000'000;    // open hold before half-open
  uint32_t breaker_half_open_probes = 2;   // trial requests in half-open
  SimNanos breaker_bucket_ns = 1'000'000;  // rolling-window bucket size
  uint32_t breaker_buckets = 8;
  // Admission control: shed on arrival when queue-wait + estimated
  // service cannot finish within deadline - slack. 0 slack = exact bound.
  SimNanos shed_slack_ns = 0;
};

// Exponential backoff with a ceiling: base << (attempt-1), attempt >= 1.
inline constexpr SimNanos BackoffNs(const ResilConfig& cfg, uint32_t attempt) {
  if (attempt == 0 || cfg.backoff_base_ns <= 0) {
    return 0;
  }
  uint32_t shift = attempt - 1 < 20 ? attempt - 1 : 20;
  SimNanos b = cfg.backoff_base_ns << shift;
  return b < cfg.backoff_cap_ns ? b : cfg.backoff_cap_ns;
}

// One request's hedge decision, computed deterministically up front: the
// hedge is scheduled for issue + delay (delay = the rolling latency
// quantile, floored); it FIRES only if the primary is still in flight at
// that instant — a primary that finishes first cancels it, and no second
// request ever exists. Pure function: trivially replayable, and testable
// without a cluster (tests/resil_test.cc).
struct HedgePlan {
  bool scheduled = false;  // hedging armed for this request
  bool fired = false;      // primary was still in flight at fire_at
  SimNanos fire_at = 0;
};

inline HedgePlan PlanHedge(const ResilConfig& cfg, SimNanos issue, SimNanos primary_finish,
                           SimNanos observed_delay) {
  HedgePlan plan;
  if (!cfg.enabled || cfg.hedge_quantile <= 0) {
    return plan;
  }
  SimNanos delay = observed_delay > cfg.hedge_floor_ns ? observed_delay : cfg.hedge_floor_ns;
  plan.scheduled = true;
  plan.fire_at = issue + delay;
  plan.fired = primary_finish > plan.fire_at;
  return plan;
}

// Which errno values the retry layer may retry: transient conditions
// (momentarily full backlog, would-block) yes; structural ones (no
// listener at all) no — retrying kECONNREFUSED just re-asks a void.
inline constexpr bool IsRetryableErrno(int64_t err) {
  return err == kEBUSY || err == kEAGAIN;
}

// Token-bucket retry budget. Tokens start at cap; every success deposits
// `ratio` tokens, every granted retry withdraws one. When the bucket is
// dry the retry is denied — that is the storm-breaker: retry volume can
// never exceed cap + ratio * successes no matter how gray the fleet gets.
class RetryBudget {
 public:
  RetryBudget(double ratio, double cap)
      : ratio_(ratio), cap_(cap > 0 ? cap : 0), tokens_(cap > 0 ? cap : 0) {}

  void OnSuccess() {
    tokens_ += ratio_;
    if (tokens_ > cap_) {
      tokens_ = cap_;
    }
  }

  // Spends one token if available. Denials are counted so the bench can
  // assert the budget actually bit under blackhole chaos.
  bool TryAcquire() {
    if (tokens_ < 1.0) {
      denied_++;
      return false;
    }
    tokens_ -= 1.0;
    granted_++;
    return true;
  }

  double tokens() const { return tokens_; }
  uint64_t granted() const { return granted_; }
  uint64_t denied() const { return denied_; }

 private:
  double ratio_;
  double cap_;
  double tokens_;
  uint64_t granted_ = 0;
  uint64_t denied_ = 0;
};

// Per-destination circuit breaker: closed -> open on rolling failure
// rate, open -> half-open after `breaker_open_ns`, half-open -> closed
// after `breaker_half_open_probes` consecutive probe successes (any probe
// failure slams it back open). The rolling window is an epoch-keyed
// bucket ring (the SloWindow::Touch pattern) over simulated time.
class CircuitBreaker {
 public:
  enum class State : uint8_t { kClosed = 0, kOpen, kHalfOpen };

  explicit CircuitBreaker(const ResilConfig& cfg);

  // Whether a request may be sent to this destination at `now`. An open
  // breaker that has cooled for breaker_open_ns transitions to half-open
  // and admits up to `breaker_half_open_probes` trials. Denials are
  // counted as short-circuits.
  bool Allow(SimNanos now);

  void OnSuccess(SimNanos now);
  // Records a failure; returns true when this failure tripped the breaker
  // closed->open or half-open->open.
  bool OnFailure(SimNanos now);

  State state() const { return state_; }
  uint64_t opens() const { return opens_; }
  uint64_t short_circuits() const { return short_circuits_; }
  uint64_t WindowFailures() const;
  uint64_t WindowTotal() const;

 private:
  struct Bucket {
    int64_t epoch = -1;
    uint32_t ok = 0;
    uint32_t fail = 0;
  };

  Bucket& Touch(SimNanos now);
  void TripOpen(SimNanos now);

  SimNanos bucket_ns_;
  uint32_t threshold_x1000_;
  uint32_t min_samples_;
  SimNanos open_ns_;
  uint32_t half_open_probes_;
  std::vector<Bucket> ring_;
  SimNanos last_ns_ = 0;
  State state_ = State::kClosed;
  SimNanos opened_at_ = 0;
  uint32_t half_open_inflight_ = 0;
  uint32_t half_open_ok_ = 0;
  uint64_t opens_ = 0;
  uint64_t short_circuits_ = 0;
};

}  // namespace cki

#endif  // SRC_RESIL_RESILIENCE_H_
