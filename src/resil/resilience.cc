#include "src/resil/resilience.h"

namespace cki {

CircuitBreaker::CircuitBreaker(const ResilConfig& cfg)
    : bucket_ns_(cfg.breaker_bucket_ns > 0 ? cfg.breaker_bucket_ns : 1),
      threshold_x1000_(cfg.breaker_threshold_x1000),
      min_samples_(cfg.breaker_min_samples > 0 ? cfg.breaker_min_samples : 1),
      open_ns_(cfg.breaker_open_ns),
      half_open_probes_(cfg.breaker_half_open_probes > 0 ? cfg.breaker_half_open_probes : 1) {
  ring_.resize(cfg.breaker_buckets > 0 ? cfg.breaker_buckets : 1);
}

CircuitBreaker::Bucket& CircuitBreaker::Touch(SimNanos now) {
  if (now > last_ns_) {
    last_ns_ = now;
  }
  int64_t epoch = static_cast<int64_t>(now / bucket_ns_);
  Bucket& b = ring_[static_cast<size_t>(epoch) % ring_.size()];
  if (b.epoch != epoch) {
    b.ok = 0;
    b.fail = 0;
    b.epoch = epoch;
  }
  return b;
}

uint64_t CircuitBreaker::WindowFailures() const {
  int64_t anchor = static_cast<int64_t>(last_ns_ / bucket_ns_);
  uint64_t n = 0;
  for (const Bucket& b : ring_) {
    if (b.epoch >= 0 && b.epoch > anchor - static_cast<int64_t>(ring_.size()) &&
        b.epoch <= anchor) {
      n += b.fail;
    }
  }
  return n;
}

uint64_t CircuitBreaker::WindowTotal() const {
  int64_t anchor = static_cast<int64_t>(last_ns_ / bucket_ns_);
  uint64_t n = 0;
  for (const Bucket& b : ring_) {
    if (b.epoch >= 0 && b.epoch > anchor - static_cast<int64_t>(ring_.size()) &&
        b.epoch <= anchor) {
      n += b.ok + b.fail;
    }
  }
  return n;
}

bool CircuitBreaker::Allow(SimNanos now) {
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - opened_at_ >= open_ns_) {
        state_ = State::kHalfOpen;
        half_open_inflight_ = 0;
        half_open_ok_ = 0;
        // fallthrough into half-open admission below
      } else {
        short_circuits_++;
        return false;
      }
      [[fallthrough]];
    case State::kHalfOpen:
      if (half_open_inflight_ < half_open_probes_) {
        half_open_inflight_++;
        return true;
      }
      short_circuits_++;
      return false;
  }
  return true;  // unreachable
}

void CircuitBreaker::OnSuccess(SimNanos now) {
  Bucket& b = Touch(now);
  b.ok++;
  if (state_ == State::kHalfOpen) {
    half_open_ok_++;
    if (half_open_ok_ >= half_open_probes_) {
      // Every probe came back clean: close and start a fresh window so
      // stale open-era failures cannot immediately re-trip.
      state_ = State::kClosed;
      for (Bucket& rb : ring_) {
        rb = Bucket{};
      }
      Touch(now).ok++;
    }
  }
}

bool CircuitBreaker::OnFailure(SimNanos now) {
  Bucket& b = Touch(now);
  b.fail++;
  if (state_ == State::kHalfOpen) {
    TripOpen(now);  // one bad probe slams it shut again
    return true;
  }
  if (state_ == State::kClosed) {
    uint64_t total = WindowTotal();
    if (total >= min_samples_ &&
        WindowFailures() * 1000 >= static_cast<uint64_t>(threshold_x1000_) * total) {
      TripOpen(now);
      return true;
    }
  }
  return false;
}

void CircuitBreaker::TripOpen(SimNanos now) {
  state_ = State::kOpen;
  opened_at_ = now;
  opens_++;
}

}  // namespace cki
