// Probe-driven machine health score: the dead/gray discriminator.
//
// Liveness (up / not up) already falls out of machine kills (src/orch);
// what it cannot see is the machine that answers probes three times
// slower than it used to. HealthTracker turns a stream of probe
// latencies into an integer health score in [0, 1000]: the baseline is
// the running minimum probe latency ever seen (the machine's own healthy
// self, not a fleet constant), each sample scores baseline/sample scaled
// to 1000, and an integer EWMA smooths episode noise. 1000 = as fast as
// its best self; 333 = three times slower.
//
// All-integer arithmetic on purpose: the score rides inside
// ShardSignal/ClusterSnapshot whose Hash() folds only integers
// (src/orch/policy.h), so health is part of the control-determinism
// digest — a probe divergence across thread counts fails the hash check.
//
// Thread-safety: none — one tracker per shard, touched only from that
// shard's thread.
#ifndef SRC_RESIL_HEALTH_H_
#define SRC_RESIL_HEALTH_H_

#include <cstdint>

#include "src/sim/clock.h"

namespace cki {

class HealthTracker {
 public:
  // `ewma_num/ewma_den`: smoothing weight of the new sample, e.g. 1/4
  // means score = (3*old + new) / 4.
  HealthTracker(uint32_t ewma_num = 1, uint32_t ewma_den = 4)
      : ewma_num_(ewma_num > 0 ? ewma_num : 1),
        ewma_den_(ewma_den > ewma_num_ ? ewma_den : ewma_num_ + 1) {}

  void Observe(SimNanos probe_latency_ns) {
    if (probe_latency_ns <= 0) {
      probe_latency_ns = 1;
    }
    if (baseline_ns_ == 0 || probe_latency_ns < baseline_ns_) {
      baseline_ns_ = probe_latency_ns;
    }
    uint64_t sample_x1000 =
        static_cast<uint64_t>(baseline_ns_) * 1000 / static_cast<uint64_t>(probe_latency_ns);
    if (sample_x1000 > 1000) {
      sample_x1000 = 1000;
    }
    if (probes_ == 0) {
      score_x1000_ = static_cast<uint32_t>(sample_x1000);
    } else {
      score_x1000_ = static_cast<uint32_t>(
          (static_cast<uint64_t>(score_x1000_) * (ewma_den_ - ewma_num_) +
           sample_x1000 * ewma_num_) /
          ewma_den_);
    }
    probes_++;
  }

  // Fresh machine (reboot/replacement): its past grayness is gone.
  void Reset() {
    baseline_ns_ = 0;
    score_x1000_ = 1000;
    probes_ = 0;
  }

  // 1000 = healthy, lower = grayer; 1000 before any probe (innocent until
  // probed otherwise, so boot epochs never look gray).
  uint32_t score_x1000() const { return score_x1000_; }
  SimNanos baseline_ns() const { return baseline_ns_; }
  uint64_t probes() const { return probes_; }

 private:
  uint32_t ewma_num_;
  uint32_t ewma_den_;
  SimNanos baseline_ns_ = 0;
  uint32_t score_x1000_ = 1000;
  uint64_t probes_ = 0;
};

}  // namespace cki

#endif  // SRC_RESIL_HEALTH_H_
