#include "src/fault/gray_fault.h"

#include "src/sim/fnv.h"

#include "src/fault/fault_injector.h"

namespace cki {

void GrayFault::Advance(SimNanos now, FaultInjector& injector, FaultBus* bus) {
  // Fixed site order (10..13) so the injector stream is consumed
  // identically on every machine every epoch.
  if (injector.InjectLatencyInflation()) {
    Open(now, &latency_until_, FaultKind::kLatencyInflation, bus);
  }
  if (injector.InjectThroughputThrottle()) {
    Open(now, &throttle_until_, FaultKind::kThroughputThrottle, bus);
  }
  if (injector.InjectPacketBlackhole()) {
    Open(now, &blackhole_until_, FaultKind::kPacketBlackhole, bus);
  }
  if (injector.InjectSyscallJitter()) {
    Open(now, &jitter_until_, FaultKind::kSyscallJitter, bus);
  }
}

void GrayFault::Open(SimNanos now, SimNanos* until, FaultKind kind, FaultBus* bus) {
  *until = now + config_.episode_ns;
  episodes_++;
  Mix(static_cast<uint64_t>(kind), static_cast<uint64_t>(now));
  if (bus != nullptr) {
    // Advisory only: the machine is degraded, not dead — nothing to kill.
    bus->Note({kind, /*owner=*/0, /*detail=*/static_cast<uint64_t>(now)});
  }
}

void GrayFault::Mix(uint64_t salt, uint64_t value) {
  const uint64_t words[] = {salt, value};
  trace_hash_ = FnvMixWords(trace_hash_, words, 2);
}

}  // namespace cki
