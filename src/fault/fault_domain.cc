#include "src/fault/fault_domain.h"

#include <algorithm>

#include "src/obs/metrics_registry.h"
#include "src/sim/context.h"
#include "src/sim/fnv.h"

namespace cki {

void FaultBus::RegisterDomain(uint32_t owner, std::string name,
                              std::function<void()> on_kill) {
  Domain& d = domains_[owner];
  d.name = std::move(name);
  d.on_kill = std::move(on_kill);
  d.killed = false;
}

void FaultBus::UnregisterDomain(uint32_t owner) { domains_.erase(owner); }

uint64_t FaultBus::AddKillHook(uint32_t owner, std::function<void()> fn) {
  uint64_t token = next_hook_token_++;
  hooks_.push_back(Hook{token, owner, std::move(fn)});
  return token;
}

void FaultBus::RemoveKillHook(uint64_t token) {
  hooks_.erase(std::remove_if(hooks_.begin(), hooks_.end(),
                              [token](const Hook& h) { return h.token == token; }),
               hooks_.end());
}

bool FaultBus::alive(uint32_t owner) const {
  auto it = domains_.find(owner);
  return it == domains_.end() || !it->second.killed;
}

void FaultBus::Record(const FaultReport& report) {
  faults_reported_++;
  kind_counts_[static_cast<size_t>(report.kind)]++;
  trace_hash_ = FnvMix64(trace_hash_, static_cast<uint64_t>(report.kind));
  trace_hash_ = FnvMix64(trace_hash_, report.owner);
  trace_hash_ = FnvMix64(trace_hash_, report.detail);
  // Rolling per-container fault count for the SLO window (always-on
  // telemetry; no-op while observability is disabled).
  ctx_.obs().SloIncFault(report.owner, ctx_.clock().now());
}

bool FaultBus::KillOwner(const FaultReport& report) {
  auto it = domains_.find(report.owner);
  if (it == domains_.end() || it->second.killed) {
    return it != domains_.end();  // already killed counts as contained
  }
  // Mark killed before running anything: a handler that re-reports a fault
  // for the same owner must not recurse into a second kill.
  it->second.killed = true;
  containers_killed_++;
  ctx_.RecordEvent(PathEvent::kContainerKill, report.owner);
  // Device hooks first (NIC port detach) so no packet can be delivered
  // into a container whose frames are being reclaimed.
  for (size_t i = 0; i < hooks_.size(); ++i) {
    if (hooks_[i].owner == report.owner && hooks_[i].fn) {
      hooks_[i].fn();
    }
  }
  if (it->second.on_kill) {
    it->second.on_kill();
  }
  return true;
}

void FaultBus::Note(const FaultReport& report) { Record(report); }

void FaultBus::Kill(const FaultReport& report) {
  Record(report);
  if (!KillOwner(report)) {
    throw FatalHostError(std::string("host-fatal fault: ") +
                         std::string(FaultKindName(report.kind)) +
                         " attributed to unregistered owner " +
                         std::to_string(report.owner));
  }
}

void FaultBus::Raise(const FaultReport& report) {
  Kill(report);
  throw ContainerKilled(report);
}

void FaultBus::NoteReclaim(uint32_t owner, uint64_t frames) {
  (void)owner;
  frames_reclaimed_ += frames;
}

void FaultBus::NoteLeak(uint32_t owner, uint64_t frames) {
  (void)owner;
  frames_leaked_ += frames;
}

void FaultBus::ExportMetrics(MetricsRegistry& metrics) const {
  metrics.Inc("fault/faults_reported", faults_reported_);
  metrics.Inc("fault/containers_killed", containers_killed_);
  metrics.Inc("fault/frames_reclaimed", frames_reclaimed_);
  metrics.Inc("fault/frames_leaked", frames_leaked_);
  for (size_t i = 0; i < kind_counts_.size(); ++i) {
    if (kind_counts_[i] > 0) {
      metrics.Inc(std::string("fault/kind/") + std::string(kFaultKindNames[i]),
                  kind_counts_[i]);
    }
  }
}

}  // namespace cki
