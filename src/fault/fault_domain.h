// Per-container fault domains: blast-radius containment for the simulator.
//
// CKI's headline claim is isolation — a compromised or buggy guest kernel
// must be contained to its own container while the host and neighbor
// containers keep running (paper section 1). The FaultBus realizes that
// claim in the simulation: container-attributable faults (protection
// violations, rejected PTP verdicts, PKS traps, resource exhaustion,
// virtio corruption) are routed to the owning container's fault domain,
// which kills that container — tearing down its processes, reclaiming its
// frames, flushing its PCID range — while the Machine and every other
// engine keep running. Host-fatal conditions (missing hardware extensions
// at construction, host-owned allocation failures) surface through one
// typed exception, FatalHostError, instead of std::abort().
//
// Determinism contract (mirrors vswitch.h): every recorded fault is mixed
// into an FNV-1a trace hash in arrival order; two runs that experience the
// same fault sequence produce bit-identical hashes.
//
// Thread-safety: none — a FaultBus belongs to one Machine and both are
// driven from that machine's single simulation thread. Scale-out happens
// one bus per shard (SimCluster): a kill, or even a FatalHostError, in
// one shard can never reach a sibling shard's bus. Fold each shard's
// trace_hash() into its ShardResult to carry the contract fleet-wide.
// Ownership: the bus borrows its SimContext (outlived by the Machine)
// and owns the registered domains/hooks; handlers and hooks are
// std::functions whose captures must outlive the registration
// (engines/devices unregister in their destructors).
#ifndef SRC_FAULT_FAULT_DOMAIN_H_
#define SRC_FAULT_FAULT_DOMAIN_H_

#include <array>
#include <cstdint>
#include <functional>
#include <optional>
#include <stdexcept>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace cki {

class SimContext;
class MetricsRegistry;

// Taxonomy of container-attributable faults. Crash kinds map to "kill the
// owning container", never "abort the machine" (DESIGN.md section 8); the
// gray kinds (latency inflation, throttling, blackhole, syscall jitter —
// DESIGN.md section 13) are advisory degradation episodes: the component
// is alive but wrong-slow, so they are Note()d, never killed on.
enum class FaultKind : uint8_t {
  kProtectionViolation = 0,  // guest touched memory it does not own
  kPtpVerdictRejected,       // KSM monitor rejected a page-table update
  kPksTrap,                  // PKS violation trapped in a deprivileged guest
  kSegmentExhausted,         // delegated contiguous segment ran dry
  kFrameExhausted,           // host frame allocator ran dry on a guest alloc
  kDoubleFree,               // frame freed twice (allocator corruption)
  kVirtioRingCorruption,     // malformed descriptor in a virtio ring
  kNicOverload,              // sustained RX-ring overrun (backpressure gauge)
  kSnapshotCorrupt,          // snapshot stream failed its content hash
  kLatencyInflation,         // gray: machine serves, but inflated (advisory)
  kThroughputThrottle,       // gray: link/NIC rate silently degraded
  kPacketBlackhole,          // gray: intermittent packet loss episode
  kSyscallJitter,            // gray: slow-syscall stalls on a live machine
  kBlkfsIoError,             // advisory: device read failed into the blkfs
                             // path (surfaced to the guest as -EIO, no kill)
  kCount,
};

inline constexpr auto kFaultKindNames = std::to_array<std::string_view>({
    "protection_violation",
    "ptp_verdict_rejected",
    "pks_trap",
    "segment_exhausted",
    "frame_exhausted",
    "double_free",
    "virtio_ring_corruption",
    "nic_overload",
    "snapshot_corrupt",
    "latency_inflation",
    "throughput_throttle",
    "packet_blackhole",
    "syscall_jitter",
    "blkfs_io_error",
});
static_assert(kFaultKindNames.size() == static_cast<size_t>(FaultKind::kCount),
              "kFaultKindNames must cover every FaultKind");

inline constexpr std::string_view FaultKindName(FaultKind k) {
  return kFaultKindNames[static_cast<size_t>(k)];
}

// Inverse of FaultKindName (the PathEventFromName pattern); nullopt for
// unknown names. Bench flag parsing (--chaos-kinds) goes through here so a
// renamed kind breaks loudly instead of silently disarming a site.
inline constexpr std::optional<FaultKind> FaultKindFromName(std::string_view name) {
  for (size_t i = 0; i < kFaultKindNames.size(); ++i) {
    if (kFaultKindNames[i] == name) {
      return static_cast<FaultKind>(i);
    }
  }
  return std::nullopt;
}

// One typed fault. `owner` is the container OwnerId the fault is
// attributed to (0 = host); `detail` is kind-specific (faulting address,
// rejected verdict, flow id, ...). Plain uint32_t/uint64_t keep this
// header free of host-layer dependencies.
struct FaultReport {
  FaultKind kind = FaultKind::kProtectionViolation;
  uint32_t owner = 0;
  uint64_t detail = 0;
};

// Host-fatal condition: the simulated machine itself cannot continue
// (missing hardware extension at construction, host-owned resource
// exhaustion). Replaces std::abort() so the bench harness and tests can
// observe the failure instead of dying with it.
class FatalHostError : public std::runtime_error {
 public:
  explicit FatalHostError(const std::string& what) : std::runtime_error(what) {}
};

// Thrown by FaultBus::Raise to unwind a synchronous guest operation after
// the owning container has been killed. Engine entry points catch their
// own id and convert to kEKILLED / TouchResult::kKilled; a foreign id
// propagates (it means a bug in fault routing, not a guest fault).
class ContainerKilled : public std::runtime_error {
 public:
  explicit ContainerKilled(const FaultReport& report)
      : std::runtime_error(std::string("container killed: ") +
                           std::string(FaultKindName(report.kind))),
        report_(report) {}

  uint32_t owner() const { return report_.owner; }
  const FaultReport& report() const { return report_; }

 private:
  FaultReport report_;
};

// Machine-wide fault router. Engines register a fault domain per OwnerId;
// devices (VirtNic) add kill hooks that run before the engine teardown so
// ports detach before frames vanish. Not thread-safe (the simulator is
// single-threaded by design).
class FaultBus {
 public:
  explicit FaultBus(SimContext& ctx) : ctx_(ctx) {}

  // Registers the kill handler for `owner`. The handler must be
  // reentrancy-safe in the sense that it will be invoked at most once:
  // the bus marks the domain killed *before* calling it.
  void RegisterDomain(uint32_t owner, std::string name,
                      std::function<void()> on_kill);
  void UnregisterDomain(uint32_t owner);

  // Runs `fn` just before `owner`'s kill handler (device detach). Returns
  // a token for RemoveKillHook.
  uint64_t AddKillHook(uint32_t owner, std::function<void()> fn);
  void RemoveKillHook(uint64_t token);

  // False once `owner` has been killed; true for live or unregistered ids.
  bool alive(uint32_t owner) const;

  // Records a fault without killing anyone (advisory kinds: NIC overload,
  // host-side double-free accounting).
  void Note(const FaultReport& report);

  // Records the fault and kills the owning container in place; returns
  // normally. For asynchronous/device contexts where unwinding would rip
  // through an innocent caller's stack (e.g. the *sender* of a corrupt
  // virtio frame). Host-attributed or unregistered owners throw
  // FatalHostError: there is no container to contain the blast.
  void Kill(const FaultReport& report);

  // Kill + unwind: same as Kill, then throws ContainerKilled so the
  // faulting guest operation never "completes". For synchronous guest
  // contexts (syscall, touch, PTE update).
  [[noreturn]] void Raise(const FaultReport& report);

  // Teardown accounting, reported by FrameAllocator/engine destructors.
  void NoteReclaim(uint32_t owner, uint64_t frames);
  void NoteLeak(uint32_t owner, uint64_t frames);

  uint64_t faults_reported() const { return faults_reported_; }
  uint64_t containers_killed() const { return containers_killed_; }
  uint64_t frames_reclaimed() const { return frames_reclaimed_; }
  uint64_t frames_leaked() const { return frames_leaked_; }
  uint64_t CountForKind(FaultKind k) const {
    return kind_counts_[static_cast<size_t>(k)];
  }

  // FNV-1a digest over (kind, owner, detail) of every recorded fault, in
  // order. Same fault sequence => identical hash (vswitch.h contract).
  uint64_t trace_hash() const { return trace_hash_; }

  // Emits fault/* counters (faults_reported, containers_killed,
  // frames_reclaimed, frames_leaked, kind/<name>).
  void ExportMetrics(MetricsRegistry& metrics) const;

 private:
  struct Domain {
    std::string name;
    std::function<void()> on_kill;
    bool killed = false;
  };
  struct Hook {
    uint64_t token = 0;
    uint32_t owner = 0;
    std::function<void()> fn;
  };

  void Record(const FaultReport& report);
  // Marks the domain killed and runs hooks + handler; returns false when
  // there is no live registered domain to kill (host-fatal for callers).
  bool KillOwner(const FaultReport& report);

  SimContext& ctx_;
  std::unordered_map<uint32_t, Domain> domains_;
  std::vector<Hook> hooks_;
  uint64_t next_hook_token_ = 1;
  uint64_t faults_reported_ = 0;
  uint64_t containers_killed_ = 0;
  uint64_t frames_reclaimed_ = 0;
  uint64_t frames_leaked_ = 0;
  std::array<uint64_t, static_cast<size_t>(FaultKind::kCount)> kind_counts_{};
  uint64_t trace_hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace cki

#endif  // SRC_FAULT_FAULT_DOMAIN_H_
