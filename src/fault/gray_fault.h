// Gray failures: the degraded-but-alive machine (DESIGN.md section 13).
//
// Crash chaos (FaultInjector sites 8/9) models the easy failure mode — a
// machine or container that is simply gone. The failure mode that actually
// dominates production tail latency is grayness: a machine that still
// answers, just 3x slower, or a link that silently drops a third of its
// frames for a few milliseconds. A GrayFault holds that state for one
// machine: four independent episode sites (latency inflation, throughput
// throttling, intermittent packet blackhole, slow-syscall jitter), each
// opened by a FaultInjector draw once per control epoch and lasting
// `episode_ns` of simulated time.
//
// Determinism contract (the fault_injector.h contract extended to
// degradation): episode starts come from the injector's xorshift64*
// stream, and the per-packet / per-request draws inside an episode come
// from this object's own seeded stream — consumed only while an episode is
// open, in shard-serial order. The whole gray schedule, including every
// individual blackholed packet and jitter stall, is therefore a pure
// function of (injector seed, gray seed, query sequence), bit-identical
// at any thread count, and folded into trace_hash() for replay checks.
//
// Thread-safety: none — one GrayFault belongs to one machine/shard and is
// only queried from that shard's thread (the FaultInjector contract).
#ifndef SRC_FAULT_GRAY_FAULT_H_
#define SRC_FAULT_GRAY_FAULT_H_

#include <cstdint>

#include "src/fault/fault_domain.h"
#include "src/sim/clock.h"
#include "src/sim/fnv.h"
#include "src/sim/seed_split.h"

namespace cki {

class FaultInjector;

// Episode magnitudes. Rates live in InjectorConfig (sites 10-13); this
// struct says how bad an episode is once it starts, not how often.
struct GrayConfig {
  uint64_t seed = 1;                   // per-packet/per-request draw stream
  SimNanos episode_ns = 4'000'000;     // how long one episode lasts
  uint32_t latency_mult_x1000 = 3000;  // 3x service-time inflation
  uint32_t throttle_div = 4;           // serialization rate divided by this
  uint32_t blackhole_permille = 300;   // per-packet drop prob in an episode
  SimNanos jitter_max_ns = 150'000;    // worst extra slow-syscall stall
};

// Per-machine gray-failure state: which episodes are open and until when.
class GrayFault {
 public:
  explicit GrayFault(const GrayConfig& config) : config_(config), rng_(config.seed) {}

  const GrayConfig& config() const { return config_; }

  // One control-epoch advance at simulated time `now`: one injector draw
  // per armed site (sites 10-13); a hit opens (or extends) that site's
  // episode to now + episode_ns. Episode starts are Note()d to `bus` as
  // advisory FaultReports (host-attributed: the machine, not a container,
  // is gray) when a bus is provided — pass nullptr while the machine is
  // dark so the episode schedule stays a pure function of the seeds.
  void Advance(SimNanos now, FaultInjector& injector, FaultBus* bus);

  // --- episode queries (pure against the open episodes) -------------------

  // Multiplier (x1000) applied to service/hop latency; 1000 when healthy.
  uint32_t LatencyMultX1000(SimNanos now) const {
    return now < latency_until_ ? config_.latency_mult_x1000 : 1000;
  }
  // Divisor applied to link serialization rate; 1 when healthy.
  uint32_t ThrottleDiv(SimNanos now) const {
    return now < throttle_until_ && config_.throttle_div > 0 ? config_.throttle_div : 1;
  }
  bool LatencyInflated(SimNanos now) const { return now < latency_until_; }
  bool Throttled(SimNanos now) const { return now < throttle_until_; }
  bool BlackholeOpen(SimNanos now) const { return now < blackhole_until_; }
  bool JitterOpen(SimNanos now) const { return now < jitter_until_; }
  bool AnyOpen(SimNanos now) const {
    return LatencyInflated(now) || Throttled(now) || BlackholeOpen(now) || JitterOpen(now);
  }

  // --- per-event draws (consume from the gray stream only in-episode) ------

  // True when the packet offered at `now` vanishes into the blackhole.
  bool SwallowPacket(SimNanos now) {
    if (!BlackholeOpen(now)) {
      return false;
    }
    bool dropped = rng_.Next() % 1000 < config_.blackhole_permille;
    if (dropped) {
      swallowed_++;
      Mix(0xB1AC, swallowed_);
    }
    return dropped;
  }

  // Extra stall charged to the request served at `now`; 0 when healthy.
  SimNanos JitterNs(SimNanos now) {
    if (!JitterOpen(now) || config_.jitter_max_ns == 0) {
      return 0;
    }
    SimNanos j = static_cast<SimNanos>(rng_.Next() % static_cast<uint64_t>(config_.jitter_max_ns));
    Mix(0x717E, static_cast<uint64_t>(j));
    return j;
  }

  // Inflates a base service duration with the latency episode multiplier
  // plus one jitter draw — the one-stop gray tax for a request at `now`.
  SimNanos DegradeServiceNs(SimNanos base_ns, SimNanos now) {
    SimNanos out = base_ns * LatencyMultX1000(now) / 1000;
    return out + JitterNs(now);
  }

  uint64_t episodes() const { return episodes_; }
  uint64_t swallowed() const { return swallowed_; }
  // FNV-1a digest over every episode start and in-episode draw, in order.
  // Same seeds + same query sequence => identical hash.
  uint64_t trace_hash() const { return trace_hash_; }

 private:
  void Open(SimNanos now, SimNanos* until, FaultKind kind, FaultBus* bus);
  void Mix(uint64_t salt, uint64_t value);

  GrayConfig config_;
  XorShift64Star rng_;
  SimNanos latency_until_ = 0;
  SimNanos throttle_until_ = 0;
  SimNanos blackhole_until_ = 0;
  SimNanos jitter_until_ = 0;
  uint64_t episodes_ = 0;
  uint64_t swallowed_ = 0;
  uint64_t trace_hash_ = kFnvOffsetBasis;
};

}  // namespace cki

#endif  // SRC_FAULT_GRAY_FAULT_H_
