// Seeded deterministic fault injector ("chaos mode").
//
// Armed per-run with per-site rates, the injector answers "should this
// operation fail right now?" from a private xorshift64* stream — no
// wall-clock, no global state — so the same seed and the same sequence of
// queries produce the bit-identical decision sequence and an identical
// FNV-1a trace hash (the vswitch.h determinism contract applied to
// faults). Sites that are disarmed (rate <= 0) consume no draw, so arming
// one site does not perturb the decision stream of another.
//
// Thread-safety: none — an injector's decision stream is serial by
// definition, so each injector belongs to one shard/machine and is only
// queried from that shard's thread. For cluster runs, derive one
// injector per shard from SimCluster::ShardSeed(root_seed, shard_index)
// (the same split scheme this class's xorshift64* stream uses): shard
// streams are decorrelated, and the whole fleet's chaos schedule is a
// pure function of the root seed.
// Ownership: self-contained value type; engines hold a non-owning
// pointer via set_injector, so the injector must outlive the run.
#ifndef SRC_FAULT_FAULT_INJECTOR_H_
#define SRC_FAULT_FAULT_INJECTOR_H_

#include <cstdint>

#include "src/sim/fnv.h"
#include "src/sim/seed_split.h"

namespace cki {

struct InjectorConfig {
  uint64_t seed = 1;
  // Per-site injection probabilities in [0, 1]; 0 disarms the site.
  double pks_violation_rate = 0;    // spurious PKS trap on a user touch
  double pte_flip_rate = 0;         // bit-flip in a guest PTE store
  double segment_oom_rate = 0;      // premature delegated-segment exhaustion
  double virtio_corrupt_rate = 0;   // malformed virtio RX descriptor
  double packet_drop_rate = 0;      // vswitch drops a forwarded packet
  double packet_dup_rate = 0;       // vswitch duplicates a forwarded packet
  double snapshot_corrupt_rate = 0; // bit-flip in a serialized snapshot
  // Orchestration chaos (src/orch): queried once per control epoch per
  // machine / per managed container, so the rate is "per epoch".
  double machine_kill_rate = 0;     // whole simulated machine drops dead
  double container_kill_rate = 0;   // one container dies mid-rebalance
  // Gray-failure episode starts (src/fault/gray_fault.h): queried once per
  // epoch per machine, so each rate is "episodes begun per epoch". The
  // struck machine stays alive but degraded for the episode length.
  double latency_inflation_rate = 0;    // service latency silently inflated
  double throughput_throttle_rate = 0;  // link/NIC serialization rate cut
  double packet_blackhole_rate = 0;     // intermittent packet loss
  double syscall_jitter_rate = 0;       // slow-syscall stalls
  // Storage chaos (src/blkfs): queried once per device block read, so the
  // rate is "per read request". Advisory — surfaces as -EIO, never a kill.
  double blkfs_io_error_rate = 0;       // device read fails into blkfs
};

class FaultInjector {
 public:
  explicit FaultInjector(const InjectorConfig& config)
      : config_(config), rng_(config.seed) {}

  const InjectorConfig& config() const { return config_; }

  bool InjectPksViolation() { return Draw(config_.pks_violation_rate, 1); }
  bool InjectPteFlip() { return Draw(config_.pte_flip_rate, 2); }
  bool InjectSegmentOom() { return Draw(config_.segment_oom_rate, 3); }
  bool InjectVirtioCorruption() { return Draw(config_.virtio_corrupt_rate, 4); }
  bool InjectPacketDrop() { return Draw(config_.packet_drop_rate, 5); }
  bool InjectPacketDup() { return Draw(config_.packet_dup_rate, 6); }
  bool InjectSnapshotCorruption() { return Draw(config_.snapshot_corrupt_rate, 7); }
  bool InjectMachineKill() { return Draw(config_.machine_kill_rate, 8); }
  bool InjectContainerKill() { return Draw(config_.container_kill_rate, 9); }
  bool InjectLatencyInflation() { return Draw(config_.latency_inflation_rate, 10); }
  bool InjectThroughputThrottle() { return Draw(config_.throughput_throttle_rate, 11); }
  bool InjectPacketBlackhole() { return Draw(config_.packet_blackhole_rate, 12); }
  bool InjectSyscallJitter() { return Draw(config_.syscall_jitter_rate, 13); }
  bool InjectBlkfsIoError() { return Draw(config_.blkfs_io_error_rate, 14); }

  uint64_t draws() const { return draws_; }
  uint64_t injected() const { return injected_; }

  // FNV-1a digest over (site, draw index) of every injected fault, in
  // order. Same seed + same query sequence => identical hash.
  uint64_t trace_hash() const { return trace_hash_; }

 private:
  bool Draw(double rate, uint8_t site) {
    if (rate <= 0) {
      return false;  // disarmed sites do not consume a draw
    }
    draws_++;
    double u = rng_.NextUnit();
    if (u >= rate) {
      return false;
    }
    injected_++;
    trace_hash_ = Mix(trace_hash_, site);
    trace_hash_ = Mix(trace_hash_, draws_);
    return true;
  }

  static uint64_t Mix(uint64_t hash, uint64_t value) { return FnvMix64(hash, value); }

  InjectorConfig config_;
  XorShift64Star rng_;  // the shared fold + step scheme (seed_split.h)
  uint64_t draws_ = 0;
  uint64_t injected_ = 0;
  uint64_t trace_hash_ = kFnvOffsetBasis;
};

}  // namespace cki

#endif  // SRC_FAULT_FAULT_INJECTOR_H_
