// Named counters and bounded histograms, dumpable as machine-readable
// JSON. The registry is the always-on metrics side of the observability
// subsystem: fixed memory per metric, stable (sorted) output order.
//
// Thread-safety: none — a registry belongs to exactly one shard/machine
// and must only be touched from that shard's thread. Cross-thread
// aggregation happens by value: each shard fills its own registry, and
// after the shard threads join, one thread folds them together with
// Merge() in shard-index order (SimCluster does exactly this), which
// keeps merged output bit-identical regardless of thread count.
// Ownership: the registry owns its metrics; Hist() references are
// invalidated only by Clear()/destruction, never by adding other metrics.
#ifndef SRC_OBS_METRICS_REGISTRY_H_
#define SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "src/obs/histogram.h"

namespace cki {

class MetricsRegistry {
 public:
  // Returns the named histogram, creating it on first use. The reference
  // stays valid until Clear() (node-based map: later insertions never
  // move it).
  Histogram& Hist(std::string_view name);
  // Convenience for hierarchical names: Hist("syscall", "getpid") is
  // Hist("syscall/getpid").
  Histogram& Hist(std::string_view family, std::string_view item);

  // Adds `delta` to the named counter, creating it at 0 on first use.
  void Inc(std::string_view name, uint64_t delta = 1);

  // Lookup without creation; nullptr / 0 for unknown names.
  const Histogram* FindHist(std::string_view name) const;
  uint64_t CounterValue(std::string_view name) const;
  size_t hist_count() const { return hists_.size(); }

  // Folds `other` into this registry: counters add, histograms merge
  // bucket-wise (Histogram::Merge). `other` is untouched. Merging the
  // per-shard registries of a cluster run in shard-index order yields the
  // same registry a single-machine run over the union of samples would
  // have produced.
  void Merge(const MetricsRegistry& other);

  // {"counters":{...},"histograms":{"name":{"count":..,"p50":..,...}}}
  void WriteJson(std::ostream& os) const;

  // Spreadsheet export (bench_util.h --metrics-csv). One row per metric,
  // sorted name order:
  //   <config>,counter,<name>,<value>,,,,,,
  //   <config>,hist,<name>,,<count>,<min>,<max>,<mean>,<p50>,<p95>,<p99>
  // `config` must not contain commas or quotes (bench labels never do).
  static void WriteCsvHeader(std::ostream& os);
  void WriteCsvRows(std::ostream& os, std::string_view config) const;

  void Clear();

 private:
  std::map<std::string, Histogram, std::less<>> hists_;
  std::map<std::string, uint64_t, std::less<>> counters_;
};

}  // namespace cki

#endif  // SRC_OBS_METRICS_REGISTRY_H_
