// Named counters and bounded histograms, dumpable as machine-readable
// JSON. The registry is the always-on metrics side of the observability
// subsystem: fixed memory per metric, stable (sorted) output order.
#ifndef SRC_OBS_METRICS_REGISTRY_H_
#define SRC_OBS_METRICS_REGISTRY_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>

#include "src/obs/histogram.h"

namespace cki {

class MetricsRegistry {
 public:
  // Returns the named histogram, creating it on first use.
  Histogram& Hist(std::string_view name);
  // Convenience for hierarchical names: Hist("syscall", "getpid") is
  // Hist("syscall/getpid").
  Histogram& Hist(std::string_view family, std::string_view item);

  void Inc(std::string_view name, uint64_t delta = 1);

  const Histogram* FindHist(std::string_view name) const;
  uint64_t CounterValue(std::string_view name) const;
  size_t hist_count() const { return hists_.size(); }

  // {"counters":{...},"histograms":{"name":{"count":..,"p50":..,...}}}
  void WriteJson(std::ostream& os) const;

  void Clear();

 private:
  std::map<std::string, Histogram, std::less<>> hists_;
  std::map<std::string, uint64_t, std::less<>> counters_;
};

}  // namespace cki

#endif  // SRC_OBS_METRICS_REGISTRY_H_
