// Minimal JSON helpers for the observability exporters and their tests:
// escaped string emission, and a small recursive-descent parser used to
// validate that emitted documents (metrics dumps, Chrome traces) are
// well-formed and to read values back in golden tests. Not a general JSON
// library — no external dependencies is the point.
//
// Thread-safety: all functions are pure/re-entrant (no shared state); a
// JsonValue is a plain value type owned by whoever parsed it and safe to
// share read-only across threads.
#ifndef SRC_OBS_JSON_UTIL_H_
#define SRC_OBS_JSON_UTIL_H_

#include <optional>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace cki {

// Writes `s` as a quoted JSON string, escaping control and quote chars.
void WriteJsonString(std::ostream& os, std::string_view s);

// Parsed JSON value (tree of variants).
struct JsonValue {
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool bool_value = false;
  double number = 0;
  std::string string_value;
  std::vector<JsonValue> items;                              // kArray
  std::vector<std::pair<std::string, JsonValue>> members;    // kObject

  bool is_object() const { return kind == Kind::kObject; }
  bool is_array() const { return kind == Kind::kArray; }
  bool is_number() const { return kind == Kind::kNumber; }
  bool is_string() const { return kind == Kind::kString; }

  // Object member lookup; nullptr when absent or not an object.
  const JsonValue* Find(std::string_view key) const;
};

// Parses a complete JSON document. Returns nullopt (and sets `error` if
// given) on malformed input or trailing garbage.
std::optional<JsonValue> ParseJson(std::string_view text, std::string* error = nullptr);

}  // namespace cki

#endif  // SRC_OBS_JSON_UTIL_H_
