#include "src/obs/observability.h"

namespace cki {

void Observability::Enable(size_t ring_capacity) {
  if (recorder_ == nullptr) {
    recorder_ = std::make_unique<FlightRecorder>(ring_capacity);
    profiler_ = std::make_unique<SpanProfiler>();
    metrics_ = std::make_unique<MetricsRegistry>();
  }
  enabled_ = true;
}

Observability Observability::Detach() {
  Observability out;
  out.owner_ = owner_;
  out.recorder_ = std::move(recorder_);
  out.profiler_ = std::move(profiler_);
  out.metrics_ = std::move(metrics_);
  enabled_ = false;
  owner_ = 0;
  recorder_.reset();
  profiler_.reset();
  metrics_.reset();
  return out;
}

void Observability::WriteJson(std::ostream& os) const {
  if (recorder_ == nullptr) {
    os << "{\"enabled\":false}";
    return;
  }
  os << "{\"enabled\":" << (enabled_ ? "true" : "false") << ",\"recorder\":{\"size\":"
     << recorder_->size() << ",\"capacity\":" << recorder_->capacity()
     << ",\"dropped\":" << recorder_->dropped() << "},\"spans\":";
  profiler_->WriteJson(os);
  os << ",\"metrics\":";
  metrics_->WriteJson(os);
  os << "}";
}

}  // namespace cki
