#include "src/obs/observability.h"

namespace cki {

void Observability::Enable(size_t ring_capacity) {
  if (recorder_ == nullptr) {
    recorder_ = std::make_unique<FlightRecorder>(ring_capacity);
    profiler_ = std::make_unique<SpanProfiler>();
    metrics_ = std::make_unique<MetricsRegistry>();
    slos_ = std::make_unique<std::map<uint32_t, SloWindow>>();
  }
  enabled_ = true;
}

SloWindow& Observability::Slo(uint32_t owner) {
  auto it = slos_->find(owner);
  if (it == slos_->end()) {
    it = slos_->emplace(owner, SloWindow(slo_config_)).first;
  }
  return it->second;
}

const SloWindow* Observability::FindSlo(uint32_t owner) const {
  if (slos_ == nullptr) {
    return nullptr;
  }
  auto it = slos_->find(owner);
  return it == slos_->end() ? nullptr : &it->second;
}

void Observability::ExportSelfMetrics(MetricsRegistry& metrics) const {
  metrics.Inc("obs/self/root_ops", self_.root_ops);
  metrics.Inc("obs/self/sampled_ops", self_.sampled_ops);
  metrics.Inc("obs/self/ring_writes", self_.ring_writes);
  metrics.Inc("obs/self/suppressed_writes", self_.suppressed_writes);
  metrics.Inc("obs/self/hist_samples", self_.hist_samples);
  metrics.Inc("obs/self/flow_points", self_.flow_points);
  metrics.Inc("obs/self/slo_samples", self_.slo_samples);
}

void Observability::ExportSloMetrics(MetricsRegistry& metrics) const {
  if (slos_ == nullptr) {
    return;
  }
  // One gauge set per container window, under slo/<owner>/..., so the SLO
  // view reaches --metrics-csv and merged cluster registries. Rates are
  // rounded to integers (counters are u64); the JSON slo section keeps
  // full precision.
  for (const auto& [owner, window] : *slos_) {
    std::string prefix = "slo/" + std::to_string(owner) + "/";
    metrics.Inc(prefix + "p99_ns", window.Percentile(99));
    metrics.Inc(prefix + "window_ops", window.WindowOps());
    metrics.Inc(prefix + "ops_per_sec", static_cast<uint64_t>(window.OpsPerSec() + 0.5));
    metrics.Inc(prefix + "faults", window.WindowFaults());
    metrics.Inc(prefix + "overload", window.WindowOverloads());
    metrics.Inc(prefix + "gauge", window.gauge());
  }
}

Observability Observability::Detach() {
  Observability out;
  out.owner_ = owner_;
  out.sample_every_ = sample_every_;
  out.self_ = self_;
  out.slo_config_ = slo_config_;
  out.recorder_ = std::move(recorder_);
  out.profiler_ = std::move(profiler_);
  out.metrics_ = std::move(metrics_);
  out.slos_ = std::move(slos_);
  enabled_ = false;
  owner_ = 0;
  scope_depth_ = 0;
  current_sampled_ = true;
  self_ = ObsSelfStats{};
  recorder_.reset();
  profiler_.reset();
  metrics_.reset();
  slos_.reset();
  return out;
}

void Observability::WriteJson(std::ostream& os) const {
  if (recorder_ == nullptr) {
    os << "{\"enabled\":false}";
    return;
  }
  os << "{\"enabled\":" << (enabled_ ? "true" : "false") << ",\"recorder\":{\"size\":"
     << recorder_->size() << ",\"capacity\":" << recorder_->capacity()
     << ",\"dropped\":" << recorder_->dropped() << "},\"spans\":";
  profiler_->WriteJson(os);
  os << ",\"metrics\":";
  metrics_->WriteJson(os);
  os << ",\"sample_every\":" << sample_every_ << ",\"slo\":{";
  bool first = true;
  for (const auto& [owner, window] : *slos_) {
    os << (first ? "" : ",") << "\"" << owner << "\":";
    window.WriteJson(os);
    first = false;
  }
  os << "},\"self\":{\"root_ops\":" << self_.root_ops << ",\"sampled_ops\":" << self_.sampled_ops
     << ",\"ring_writes\":" << self_.ring_writes
     << ",\"suppressed_writes\":" << self_.suppressed_writes
     << ",\"hist_samples\":" << self_.hist_samples << ",\"flow_points\":" << self_.flow_points
     << ",\"slo_samples\":" << self_.slo_samples << "}}";
}

}  // namespace cki
