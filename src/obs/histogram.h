// Bounded-memory latency histogram (HDR-style log2 buckets).
//
// Each power-of-two range is split into 2^kSubBits linear sub-buckets, so
// relative quantile error is bounded by ~2^-(kSubBits+1) regardless of how
// many samples are recorded. Unlike Stats (which stores raw samples), a
// Histogram occupies fixed memory, making it safe for always-on recording
// in soak runs and million-op workloads.
//
// Thread-safety: none — a histogram is written by exactly one shard's
// thread. Cross-thread aggregation is merge-by-value after the writers
// stop: Merge() is bucket-wise addition, so merging per-shard histograms
// (in any order) is exactly equivalent to having recorded every sample
// into one histogram — counts, min/max, sum, and every quantile agree
// (tested in tests/cluster_test.cc). This is what makes per-shard
// recording under SimCluster lossless.
// Ownership: plain value type; copy/move freely.
#ifndef SRC_OBS_HISTOGRAM_H_
#define SRC_OBS_HISTOGRAM_H_

#include <algorithm>
#include <array>
#include <bit>
#include <cmath>
#include <cstdint>
#include <ostream>

namespace cki {

class Histogram {
 public:
  // 8 linear sub-buckets per octave: worst-case quantile error ~6%.
  static constexpr int kSubBits = 3;
  static constexpr uint64_t kSubCount = 1ULL << kSubBits;
  // Last fully resolved octave is [2^39, 2^40) — about 18 simulated
  // minutes in nanoseconds. Larger values land in the overflow bucket.
  static constexpr int kMaxExp = 39;
  static constexpr size_t kOverflowBucket =
      static_cast<size_t>(kMaxExp - kSubBits + 2) * kSubCount;
  static constexpr size_t kBucketCount = kOverflowBucket + 1;

  // Maps a value to its bucket index.
  static constexpr size_t BucketIndex(uint64_t v) {
    if (v < kSubCount) {
      return static_cast<size_t>(v);
    }
    int h = std::bit_width(v) - 1;  // position of the top set bit
    if (h > kMaxExp) {
      return kOverflowBucket;
    }
    uint64_t sub = (v >> (h - kSubBits)) & (kSubCount - 1);
    return static_cast<size_t>(h - kSubBits + 1) * kSubCount + static_cast<size_t>(sub);
  }

  // Smallest value that lands in bucket `idx`.
  static constexpr uint64_t BucketLowerBound(size_t idx) {
    if (idx < kSubCount) {
      return idx;
    }
    if (idx >= kOverflowBucket) {
      return 1ULL << (kMaxExp + 1);
    }
    uint64_t block = idx / kSubCount;  // >= 1
    uint64_t sub = idx % kSubCount;
    int shift = static_cast<int>(block) - 1;
    return (kSubCount + sub) << shift;
  }

  // Width of bucket `idx` (1 for the exact low buckets).
  static constexpr uint64_t BucketWidth(size_t idx) {
    return idx < kSubCount ? 1 : BucketLowerBound(idx + 1) - BucketLowerBound(idx);
  }

  // Records one sample. O(1), no allocation.
  void Add(uint64_t v) {
    buckets_[BucketIndex(v)]++;
    count_++;
    sum_ += static_cast<double>(v);
    min_ = (count_ == 1) ? v : std::min(min_, v);
    max_ = std::max(max_, v);
  }

  // Folds `other` into this histogram bucket-wise; `other` is untouched.
  // Equivalent to replaying every sample of `other` into this histogram.
  void Merge(const Histogram& other) {
    if (other.count_ == 0) {
      return;
    }
    for (size_t i = 0; i < kBucketCount; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    min_ = (count_ == 0) ? other.min_ : std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
    count_ += other.count_;
    sum_ += other.sum_;
  }

  uint64_t count() const { return count_; }
  uint64_t min() const { return min_; }
  uint64_t max() const { return max_; }
  double Sum() const { return sum_; }
  double Mean() const { return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_); }
  uint64_t bucket(size_t idx) const { return buckets_[idx]; }
  uint64_t overflow_count() const { return buckets_[kOverflowBucket]; }

  // Quantile estimate (bucket midpoint, clamped to [min, max]), p in
  // [0, 100]. Error is bounded by the bucket width, not the sample count.
  double Percentile(double p) const {
    if (count_ == 0) {
      return 0.0;
    }
    double want = std::ceil((p / 100.0) * static_cast<double>(count_));
    uint64_t target = static_cast<uint64_t>(std::clamp(want, 1.0, static_cast<double>(count_)));
    if (target == count_) {
      return static_cast<double>(max_);  // the exact max is tracked
    }
    uint64_t cum = 0;
    for (size_t i = 0; i < kBucketCount; ++i) {
      cum += buckets_[i];
      if (cum >= target) {
        if (i == kOverflowBucket) {
          return static_cast<double>(max_);
        }
        uint64_t rep = BucketLowerBound(i) + BucketWidth(i) / 2;
        return static_cast<double>(std::clamp(rep, min_, max_));
      }
    }
    return static_cast<double>(max_);  // unreachable: cum == count_ by the end
  }

  void Clear() {
    buckets_.fill(0);
    count_ = 0;
    min_ = 0;
    max_ = 0;
    sum_ = 0;
  }

  // One-line JSON summary: {"count":..,"min":..,"p50":..,...}
  void WriteJson(std::ostream& os) const {
    os << "{\"count\":" << count_ << ",\"min\":" << min_ << ",\"max\":" << max_
       << ",\"mean\":" << Mean() << ",\"p50\":" << Percentile(50)
       << ",\"p95\":" << Percentile(95) << ",\"p99\":" << Percentile(99)
       << ",\"overflow\":" << overflow_count() << "}";
  }

 private:
  std::array<uint64_t, kBucketCount> buckets_{};
  uint64_t count_ = 0;
  uint64_t min_ = 0;
  uint64_t max_ = 0;
  double sum_ = 0;
};

}  // namespace cki

#endif  // SRC_OBS_HISTOGRAM_H_
