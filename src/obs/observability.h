// Observability hub attached to every SimContext: a flight recorder
// (bounded event ring), a span profiler (simulated-time phase tree), a
// metrics registry (counters + bounded histograms), and per-container SLO
// windows (rolling time-series over simulated time).
//
// Disabled by default: the only cost on the simulation fast path is one
// branch on `enabled()`. Enable() allocates the backing stores lazily, so
// a SimContext that never observes pays nothing beyond a few pointers.
//
// Sampling (DESIGN.md §11): set_sample_every(N) keeps recorder, span and
// histogram writes for 1 in N *root* operations — the decision is latched
// when the outermost TraceScope opens, so a sampled operation records its
// whole span subtree and an unsampled one records nothing (begin/end stay
// paired, the span tree stays consistent). The gate is a pure counter:
// no RNG, no clock reads, no effect on simulated time or any determinism
// digest — enabling sampling cannot change a trace hash. SLO-window
// writes and self-accounting stay at full rate (that is the point:
// bounded-memory telemetry that is cheap enough to leave always on).
//
// Self-accounting: the hub counts every write it performs and every write
// the gate suppressed (ObsSelfStats); bench_ext_obs_overhead turns these
// into a CI-enforced overhead budget.
//
// Thread-safety: none — the hub lives inside one SimContext and is only
// ever touched by that machine's (single) simulation thread. Under
// SimCluster each shard has its own hub; a shard hands its recorded data
// to the merging thread by value via Detach(), after which the context's
// hub is back to the never-enabled state and the detached copy is owned
// exclusively by the caller.
// Ownership: the hub owns recorder/profiler/metrics/SLO windows;
// references returned by the accessors are valid until Detach() or
// destruction.
#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include <map>
#include <memory>
#include <ostream>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/slo_window.h"
#include "src/obs/span_profiler.h"
#include "src/sim/trace.h"

namespace cki {

// What observing cost us: every counter is "writes the obs layer
// performed (or suppressed) on behalf of the simulation".
struct ObsSelfStats {
  uint64_t root_ops = 0;           // outermost scopes opened
  uint64_t sampled_ops = 0;        // root ops the gate kept
  uint64_t ring_writes = 0;        // flight-recorder records written
  uint64_t suppressed_writes = 0;  // ring writes skipped by the gate
  uint64_t hist_samples = 0;       // histogram samples added
  uint64_t flow_points = 0;        // causal flow records written
  uint64_t slo_samples = 0;        // SLO-window latency observations
};

class Observability {
 public:
  bool enabled() const { return enabled_; }

  // Turns recording on, allocating the stores on first use. Re-enabling
  // keeps previously recorded data; `ring_capacity` applies only to the
  // first Enable.
  void Enable(size_t ring_capacity = FlightRecorder::kDefaultCapacity);
  // Stops recording but keeps the data for export.
  void Disable() { enabled_ = false; }
  // Whether Enable() ever ran (the accessors below are valid only then).
  bool has_data() const { return recorder_ != nullptr; }

  // Current container attribution for recorded events (0: host kernel).
  uint32_t owner() const { return owner_; }
  void set_owner(uint32_t owner) { owner_ = owner; }

  // --- sampling gate -------------------------------------------------------

  // Keep recorder/span/histogram writes for 1 in `n` root operations
  // (n <= 1: full rate). Takes effect at the next root scope.
  void set_sample_every(uint32_t n) { sample_every_ = n == 0 ? 1 : n; }
  uint32_t sample_every() const { return sample_every_; }

  // Called by TraceScope on entry/exit. The outermost scope latches the
  // keep/suppress decision for the whole operation; the return value is
  // that decision. Never hold a scope across Detach().
  bool EnterScope() {
    if (scope_depth_++ == 0) {
      current_sampled_ = (self_.root_ops % sample_every_) == 0;
      self_.root_ops++;
      if (current_sampled_) {
        self_.sampled_ops++;
      }
    }
    return current_sampled_;
  }
  void ExitScope() {
    if (scope_depth_ > 0) {
      scope_depth_--;
    }
  }
  // Whether a write at this point should be kept. Writes outside any
  // scope (setup, teardown) are always kept — only hot-path operations
  // under a root scope are sampled.
  bool ShouldRecord() const { return scope_depth_ == 0 || current_sampled_; }

  // Valid only after Enable() (checked in debug builds via the deref).
  FlightRecorder& recorder() { return *recorder_; }
  const FlightRecorder& recorder() const { return *recorder_; }
  SpanProfiler& profiler() { return *profiler_; }
  const SpanProfiler& profiler() const { return *profiler_; }
  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }

  // Self-accounted ring write (TraceScope span markers go through here).
  void RecordRing(const TraceRecord& r) {
    self_.ring_writes++;
    recorder_->Record(r);
  }

  // Self-accounted histogram sample (LatencyScope / SyscallScope).
  void AddHistSample(std::string_view family, std::string_view item, SimNanos v) {
    self_.hist_samples++;
    metrics_->Hist(family, item).Add(v);
  }

  // Fast-path hook called by SimContext for every architectural event.
  void OnEvent(SimNanos now, PathEvent e, uint64_t arg = 0) {
    if (!enabled_) {
      return;
    }
    if (!ShouldRecord()) {
      self_.suppressed_writes++;
      return;
    }
    self_.ring_writes++;
    recorder_->Record(TraceRecord{.ts = now,
                                  .arg = arg,
                                  .owner = owner_,
                                  .code = static_cast<uint16_t>(e),
                                  .kind = TraceRecordKind::kInstant});
  }

  // Causal flow point for request `trace_id` (kFlowStart/Step/End).
  // No-op for inactive traces; subject to the sampling gate like every
  // other ring write.
  void RecordFlowPoint(SimNanos now, TraceRecordKind kind, uint64_t trace_id) {
    if (!enabled_ || trace_id == 0) {
      return;
    }
    if (!ShouldRecord()) {
      self_.suppressed_writes++;
      return;
    }
    self_.flow_points++;
    self_.ring_writes++;
    recorder_->Record(TraceRecord{.ts = now, .arg = trace_id, .owner = owner_, .code = 0,
                                  .kind = kind});
  }

  // --- per-container SLO windows (always on while enabled) -----------------

  // Window geometry for SLO windows created after this call.
  void set_slo_config(SloWindow::Config config) { slo_config_ = config; }

  void SloObserveSyscall(uint32_t owner, SimNanos now, SimNanos latency_ns) {
    if (!enabled_) {
      return;
    }
    self_.slo_samples++;
    Slo(owner).ObserveLatency(now, latency_ns);
  }
  void SloIncFault(uint32_t owner, SimNanos now) {
    if (!enabled_) {
      return;
    }
    Slo(owner).IncFaults(now);
  }
  // RX-ring overrun event (VirtNic backpressure -> rolling SLO view).
  void SloIncOverload(uint32_t owner, SimNanos now) {
    if (!enabled_) {
      return;
    }
    Slo(owner).IncOverloads(now);
  }
  void SloSetGauge(uint32_t owner, SimNanos now, uint64_t value) {
    if (!enabled_) {
      return;
    }
    Slo(owner).SetGauge(now, value);
  }

  // The window for `owner`, created on first use. Valid only when
  // has_data().
  SloWindow& Slo(uint32_t owner);
  // All windows (nullptr before Enable); keyed by container id.
  const std::map<uint32_t, SloWindow>* slos() const { return slos_.get(); }
  const SloWindow* FindSlo(uint32_t owner) const;

  const ObsSelfStats& self_stats() const { return self_; }
  // Dumps the self-accounting as counters `obs/self/<name>`.
  void ExportSelfMetrics(MetricsRegistry& metrics) const;
  // Dumps every container SLO window as gauges `slo/<owner>/{p99_ns,
  // window_ops,ops_per_sec,faults,overload,gauge}` so the rolling SLO view shows
  // up in --metrics-csv and merged cluster registries (SimCluster and
  // BenchObsSink call this; values are point-in-time, not additive).
  void ExportSloMetrics(MetricsRegistry& metrics) const;

  // Moves the recorded data (recorder, profiler, metrics, SLO windows,
  // self stats, owner stamp) into a standalone hub and resets this one to
  // the never-enabled state (enabled() false, has_data() false). Used by
  // cluster shard bodies to hand their machine's observations across the
  // thread join without leaving the live context with dangling
  // enabled-but-empty state. The returned hub is disabled (export-only):
  // WriteJson and the accessors work, OnEvent is a no-op.
  Observability Detach();

  // Full machine-readable dump:
  //   {"enabled":..,"recorder":{..},"spans":[..],"metrics":{..},
  //    "slo":{"<owner>":{..}},"self":{..}}
  void WriteJson(std::ostream& os) const;

 private:
  bool enabled_ = false;
  uint32_t owner_ = 0;
  uint32_t sample_every_ = 1;
  uint32_t scope_depth_ = 0;
  bool current_sampled_ = true;
  ObsSelfStats self_;
  SloWindow::Config slo_config_;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<SpanProfiler> profiler_;
  std::unique_ptr<MetricsRegistry> metrics_;
  std::unique_ptr<std::map<uint32_t, SloWindow>> slos_;
};

}  // namespace cki

#endif  // SRC_OBS_OBSERVABILITY_H_
