// Observability hub attached to every SimContext: a flight recorder
// (bounded event ring), a span profiler (simulated-time phase tree), and a
// metrics registry (counters + bounded histograms).
//
// Disabled by default: the only cost on the simulation fast path is one
// branch on `enabled()`. Enable() allocates the backing stores lazily, so
// a SimContext that never observes pays nothing beyond a few pointers.
//
// Thread-safety: none — the hub lives inside one SimContext and is only
// ever touched by that machine's (single) simulation thread. Under
// SimCluster each shard has its own hub; a shard hands its recorded data
// to the merging thread by value via Detach(), after which the context's
// hub is back to the never-enabled state and the detached copy is owned
// exclusively by the caller.
// Ownership: the hub owns recorder/profiler/metrics; references returned
// by the accessors are valid until Detach() or destruction.
#ifndef SRC_OBS_OBSERVABILITY_H_
#define SRC_OBS_OBSERVABILITY_H_

#include <memory>
#include <ostream>

#include "src/obs/flight_recorder.h"
#include "src/obs/metrics_registry.h"
#include "src/obs/span_profiler.h"
#include "src/sim/trace.h"

namespace cki {

class Observability {
 public:
  bool enabled() const { return enabled_; }

  // Turns recording on, allocating the stores on first use. Re-enabling
  // keeps previously recorded data; `ring_capacity` applies only to the
  // first Enable.
  void Enable(size_t ring_capacity = FlightRecorder::kDefaultCapacity);
  // Stops recording but keeps the data for export.
  void Disable() { enabled_ = false; }
  // Whether Enable() ever ran (the accessors below are valid only then).
  bool has_data() const { return recorder_ != nullptr; }

  // Current container attribution for recorded events (0: host kernel).
  uint32_t owner() const { return owner_; }
  void set_owner(uint32_t owner) { owner_ = owner; }

  // Valid only after Enable() (checked in debug builds via the deref).
  FlightRecorder& recorder() { return *recorder_; }
  const FlightRecorder& recorder() const { return *recorder_; }
  SpanProfiler& profiler() { return *profiler_; }
  const SpanProfiler& profiler() const { return *profiler_; }
  MetricsRegistry& metrics() { return *metrics_; }
  const MetricsRegistry& metrics() const { return *metrics_; }

  // Fast-path hook called by SimContext for every architectural event.
  void OnEvent(SimNanos now, PathEvent e, uint64_t arg = 0) {
    if (!enabled_) {
      return;
    }
    recorder_->Record(TraceRecord{.ts = now,
                                  .arg = arg,
                                  .owner = owner_,
                                  .code = static_cast<uint16_t>(e),
                                  .kind = TraceRecordKind::kInstant});
  }

  // Moves the recorded data (recorder, profiler, metrics, owner stamp)
  // into a standalone hub and resets this one to the never-enabled state
  // (enabled() false, has_data() false). Used by cluster shard bodies to
  // hand their machine's observations across the thread join without
  // leaving the live context with dangling enabled-but-empty state. The
  // returned hub is disabled (export-only): WriteJson and the accessors
  // work, OnEvent is a no-op.
  Observability Detach();

  // Full machine-readable dump:
  //   {"enabled":..,"recorder":{..},"spans":[..],"metrics":{..}}
  void WriteJson(std::ostream& os) const;

 private:
  bool enabled_ = false;
  uint32_t owner_ = 0;
  std::unique_ptr<FlightRecorder> recorder_;
  std::unique_ptr<SpanProfiler> profiler_;
  std::unique_ptr<MetricsRegistry> metrics_;
};

}  // namespace cki

#endif  // SRC_OBS_OBSERVABILITY_H_
