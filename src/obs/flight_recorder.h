// Fixed-capacity ring buffer of timestamped trace records.
//
// The flight recorder keeps the most recent N records (architectural
// events and span begin/end markers) with bounded memory; when the ring
// wraps, the oldest records are overwritten and counted — overflow is
// never silent. Records carry the owning container id so multi-tenant
// traces attribute each event to the container that caused it.
//
// Thread-safety: none — one recorder belongs to one machine's
// observability hub and is only touched from that shard's thread. Under
// SimCluster each shard keeps its own recorder and hands it across the
// thread join by value (Observability::Detach); recorders are never
// merged — each shard exports as its own trace process track, which is
// how --trace-out stays exact under parallelism.
// Ownership: owned by its Observability hub; Chronological() returns an
// independent copy the caller owns.
#ifndef SRC_OBS_FLIGHT_RECORDER_H_
#define SRC_OBS_FLIGHT_RECORDER_H_

#include <cstdint>
#include <vector>

#include "src/sim/clock.h"

namespace cki {

enum class TraceRecordKind : uint8_t {
  kInstant = 0,  // architectural event; code is a PathEvent
  kSpanBegin,    // TraceScope entry; code is a SpanProfiler phase id
  kSpanEnd,      // TraceScope exit; code is a SpanProfiler phase id
  // Causal flow points: `arg` is the request trace_id (trace_context.h);
  // the exporter turns these into Perfetto flow events, which render one
  // request as a single arrow chain across containers and shards.
  kFlowStart,  // request minted (load generator)
  kFlowStep,   // request crossed a hop (switch forward / NIC receive)
  kFlowEnd,    // response arrived back at the generator
};

struct TraceRecord {
  SimNanos ts = 0;     // simulated time of the record
  uint64_t arg = 0;    // event-specific payload (0 when unused)
  uint32_t owner = 0;  // container id (0: host kernel)
  uint16_t code = 0;   // PathEvent or phase id, per `kind`
  TraceRecordKind kind = TraceRecordKind::kInstant;
};

class FlightRecorder {
 public:
  static constexpr size_t kDefaultCapacity = 1 << 16;

  explicit FlightRecorder(size_t capacity = kDefaultCapacity)
      : ring_(capacity == 0 ? 1 : capacity) {}

  // Appends one record, overwriting the oldest when full. O(1).
  void Record(const TraceRecord& r) {
    ring_[next_] = r;
    next_ = (next_ + 1) % ring_.size();
    total_++;
  }

  size_t capacity() const { return ring_.size(); }
  size_t size() const { return total_ < ring_.size() ? static_cast<size_t>(total_) : ring_.size(); }
  // Records ever submitted, including overwritten ones.
  uint64_t total_recorded() const { return total_; }
  // Records lost to ring overwrite.
  uint64_t dropped() const { return total_ - size(); }

  // The retained records, oldest first.
  std::vector<TraceRecord> Chronological() const {
    std::vector<TraceRecord> out;
    size_t n = size();
    out.reserve(n);
    size_t start = (total_ > ring_.size()) ? next_ : 0;
    for (size_t i = 0; i < n; ++i) {
      out.push_back(ring_[(start + i) % ring_.size()]);
    }
    return out;
  }

  void Clear() {
    next_ = 0;
    total_ = 0;
  }

 private:
  std::vector<TraceRecord> ring_;
  size_t next_ = 0;
  uint64_t total_ = 0;
};

}  // namespace cki

#endif  // SRC_OBS_FLIGHT_RECORDER_H_
