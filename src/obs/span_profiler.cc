#include "src/obs/span_profiler.h"

namespace cki {

int SpanProfiler::InternPhase(std::string_view name) {
  auto it = phase_ids_.find(std::string(name));
  if (it != phase_ids_.end()) {
    return it->second;
  }
  int id = static_cast<int>(phase_names_.size());
  phase_names_.emplace_back(name);
  phase_ids_.emplace(phase_names_.back(), id);
  return id;
}

std::string_view SpanProfiler::PhaseName(int phase_id) const {
  if (phase_id < 0 || static_cast<size_t>(phase_id) >= phase_names_.size()) {
    return "unknown";
  }
  return phase_names_[static_cast<size_t>(phase_id)];
}

int SpanProfiler::BeginSpan(int phase_id, SimNanos now) {
  int parent = stack_.empty() ? -1 : stack_.back().node;
  auto [it, inserted] = edges_.try_emplace({parent, phase_id}, -1);
  if (inserted) {
    int node = static_cast<int>(nodes_.size());
    nodes_.push_back(Node{.name = std::string(PhaseName(phase_id)), .parent = parent});
    it->second = node;
    if (parent < 0) {
      roots_.push_back(node);
    } else {
      nodes_[static_cast<size_t>(parent)].children.push_back(node);
    }
  }
  stack_.push_back(Frame{.node = it->second, .start = now});
  return it->second;
}

void SpanProfiler::EndSpan(SimNanos now) {
  if (stack_.empty()) {
    return;  // unbalanced end (e.g. observability enabled mid-span)
  }
  Frame frame = stack_.back();
  stack_.pop_back();
  SimNanos elapsed = now - frame.start;
  Node& node = nodes_[static_cast<size_t>(frame.node)];
  node.total += elapsed;
  node.self += elapsed - frame.child_ns;
  node.count++;
  if (!stack_.empty()) {
    stack_.back().child_ns += elapsed;
  }
}

SimNanos SpanProfiler::RootTotal() const {
  SimNanos total = 0;
  for (int root : roots_) {
    total += nodes_[static_cast<size_t>(root)].total;
  }
  return total;
}

int SpanProfiler::FindChild(int parent, std::string_view name) const {
  const std::vector<int>* candidates;
  if (parent < 0) {
    candidates = &roots_;
  } else {
    candidates = &nodes_[static_cast<size_t>(parent)].children;
  }
  for (int child : *candidates) {
    if (nodes_[static_cast<size_t>(child)].name == name) {
      return child;
    }
  }
  return -1;
}

void SpanProfiler::WriteNodeJson(std::ostream& os, int index) const {
  const Node& node = nodes_[static_cast<size_t>(index)];
  os << "{\"name\":\"" << node.name << "\",\"count\":" << node.count
     << ",\"total_ns\":" << node.total << ",\"self_ns\":" << node.self << ",\"children\":[";
  for (size_t i = 0; i < node.children.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    WriteNodeJson(os, node.children[i]);
  }
  os << "]}";
}

void SpanProfiler::WriteJson(std::ostream& os) const {
  os << "[";
  for (size_t i = 0; i < roots_.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    WriteNodeJson(os, roots_[i]);
  }
  os << "]";
}

void SpanProfiler::PrintNode(std::ostream& os, int index, int depth) const {
  const Node& node = nodes_[static_cast<size_t>(index)];
  for (int i = 0; i < depth; ++i) {
    os << "  ";
  }
  os << node.name << "  total=" << node.total << "ns self=" << node.self
     << "ns count=" << node.count << "\n";
  for (int child : node.children) {
    PrintNode(os, child, depth + 1);
  }
}

void SpanProfiler::PrintTree(std::ostream& os) const {
  for (int root : roots_) {
    PrintNode(os, root, 0);
  }
}

void SpanProfiler::Clear() {
  nodes_.clear();
  roots_.clear();
  edges_.clear();
  stack_.clear();
  phase_ids_.clear();
  phase_names_.clear();
}

}  // namespace cki
