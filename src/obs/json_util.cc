#include "src/obs/json_util.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace cki {

void WriteJsonString(std::ostream& os, std::string_view s) {
  os << '"';
  for (char c : s) {
    switch (c) {
      case '"':
        os << "\\\"";
        break;
      case '\\':
        os << "\\\\";
        break;
      case '\n':
        os << "\\n";
        break;
      case '\r':
        os << "\\r";
        break;
      case '\t':
        os << "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          os << buf;
        } else {
          os << c;
        }
    }
  }
  os << '"';
}

const JsonValue* JsonValue::Find(std::string_view key) const {
  if (kind != Kind::kObject) {
    return nullptr;
  }
  for (const auto& [name, value] : members) {
    if (name == key) {
      return &value;
    }
  }
  return nullptr;
}

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::string* error) : text_(text), error_(error) {}

  std::optional<JsonValue> Parse() {
    std::optional<JsonValue> v = ParseValue();
    if (!v.has_value()) {
      return std::nullopt;
    }
    SkipWs();
    if (pos_ != text_.size()) {
      return Fail("trailing characters after document");
    }
    return v;
  }

 private:
  std::optional<JsonValue> Fail(const std::string& message) {
    if (error_ != nullptr && error_->empty()) {
      *error_ = message + " at offset " + std::to_string(pos_);
    }
    return std::nullopt;
  }

  void SkipWs() {
    while (pos_ < text_.size() && (text_[pos_] == ' ' || text_[pos_] == '\t' ||
                                   text_[pos_] == '\n' || text_[pos_] == '\r')) {
      pos_++;
    }
  }

  bool Consume(char c) {
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return false;
  }

  bool ConsumeLiteral(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<std::string> ParseString() {
    if (!Consume('"')) {
      Fail("expected string");
      return std::nullopt;
    }
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') {
        return out;
      }
      if (c == '\\') {
        if (pos_ >= text_.size()) {
          break;
        }
        char esc = text_[pos_++];
        switch (esc) {
          case '"':
          case '\\':
          case '/':
            out.push_back(esc);
            break;
          case 'b':
            out.push_back('\b');
            break;
          case 'f':
            out.push_back('\f');
            break;
          case 'n':
            out.push_back('\n');
            break;
          case 'r':
            out.push_back('\r');
            break;
          case 't':
            out.push_back('\t');
            break;
          case 'u': {
            if (pos_ + 4 > text_.size()) {
              Fail("truncated \\u escape");
              return std::nullopt;
            }
            // Decoded as a single replacement byte: the exporters only emit
            // ASCII, so fidelity beyond validity is not needed here.
            pos_ += 4;
            out.push_back('?');
            break;
          }
          default:
            Fail("bad escape");
            return std::nullopt;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        Fail("raw control character in string");
        return std::nullopt;
      } else {
        out.push_back(c);
      }
    }
    Fail("unterminated string");
    return std::nullopt;
  }

  std::optional<JsonValue> ParseValue() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return Fail("unexpected end of input");
    }
    char c = text_[pos_];
    if (c == '{') {
      return ParseObject();
    }
    if (c == '[') {
      return ParseArray();
    }
    if (c == '"') {
      std::optional<std::string> s = ParseString();
      if (!s.has_value()) {
        return std::nullopt;
      }
      JsonValue v;
      v.kind = JsonValue::Kind::kString;
      v.string_value = std::move(*s);
      return v;
    }
    if (ConsumeLiteral("true")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      v.bool_value = true;
      return v;
    }
    if (ConsumeLiteral("false")) {
      JsonValue v;
      v.kind = JsonValue::Kind::kBool;
      return v;
    }
    if (ConsumeLiteral("null")) {
      return JsonValue{};
    }
    return ParseNumber();
  }

  std::optional<JsonValue> ParseNumber() {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      pos_++;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) {
      return Fail("expected value");
    }
    std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') {
      return Fail("malformed number");
    }
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::optional<JsonValue> ParseArray() {
    pos_++;  // '['
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    SkipWs();
    if (Consume(']')) {
      return v;
    }
    while (true) {
      std::optional<JsonValue> item = ParseValue();
      if (!item.has_value()) {
        return std::nullopt;
      }
      v.items.push_back(std::move(*item));
      if (Consume(']')) {
        return v;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or ']'");
      }
    }
  }

  std::optional<JsonValue> ParseObject() {
    pos_++;  // '{'
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    SkipWs();
    if (Consume('}')) {
      return v;
    }
    while (true) {
      SkipWs();
      std::optional<std::string> key = ParseString();
      if (!key.has_value()) {
        return std::nullopt;
      }
      if (!Consume(':')) {
        return Fail("expected ':'");
      }
      std::optional<JsonValue> value = ParseValue();
      if (!value.has_value()) {
        return std::nullopt;
      }
      v.members.emplace_back(std::move(*key), std::move(*value));
      if (Consume('}')) {
        return v;
      }
      if (!Consume(',')) {
        return Fail("expected ',' or '}'");
      }
    }
  }

  std::string_view text_;
  std::string* error_;
  size_t pos_ = 0;
};

}  // namespace

std::optional<JsonValue> ParseJson(std::string_view text, std::string* error) {
  return Parser(text, error).Parse();
}

}  // namespace cki
