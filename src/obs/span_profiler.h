// Hierarchical span profiler over simulated time.
//
// TraceScope (src/obs/trace_scope.h) opens a named span; nested scopes
// build a tree of phases (e.g. syscall -> getpid -> ksm/roundtrip), and
// closing a span attributes the elapsed simulated nanoseconds to its tree
// node: `total` includes children, `self` excludes them. The tree makes
// latency breakdowns like the paper's Fig. 10 an output of instrumentation
// instead of hand-wired cost arithmetic.
//
// Thread-safety: none — the open-span stack is inherently per-execution-
// thread state, so a profiler belongs to exactly one machine's hub and is
// only driven from that shard's thread. Cluster runs keep one profiler
// per shard (Observability::Detach moves it out with the hub) and export
// them side by side rather than merging trees.
// Ownership: the profiler owns its nodes; node/phase indices and the
// references returned by nodes()/PhaseName stay valid until Clear().
#ifndef SRC_OBS_SPAN_PROFILER_H_
#define SRC_OBS_SPAN_PROFILER_H_

#include <cstdint>
#include <map>
#include <ostream>
#include <string>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/sim/clock.h"

namespace cki {

class SpanProfiler {
 public:
  struct Node {
    std::string name;      // phase name (leaf component of the path)
    int parent = -1;       // node index, -1 for roots
    SimNanos total = 0;    // simulated ns including children
    SimNanos self = 0;     // simulated ns excluding children
    uint64_t count = 0;    // completed spans
    std::vector<int> children;
  };

  // Maps a phase name to a stable small id (interned on first use).
  int InternPhase(std::string_view name);
  std::string_view PhaseName(int phase_id) const;
  size_t phase_count() const { return phase_names_.size(); }

  // Opens/closes a span; driven by TraceScope. Returns the node index.
  int BeginSpan(int phase_id, SimNanos now);
  void EndSpan(SimNanos now);
  size_t depth() const { return stack_.size(); }

  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<int>& roots() const { return roots_; }
  // Total simulated ns attributed to root spans (the end-to-end time the
  // instrumented operations covered).
  SimNanos RootTotal() const;
  // Finds the direct child of `parent` (-1: roots) named `name`, or -1.
  int FindChild(int parent, std::string_view name) const;

  // Nested JSON array of root nodes:
  //   [{"name":..,"count":..,"total_ns":..,"self_ns":..,"children":[..]}]
  void WriteJson(std::ostream& os) const;
  // Indented human-readable tree (debugging, bench stdout).
  void PrintTree(std::ostream& os) const;

  void Clear();

 private:
  struct Frame {
    int node = -1;
    SimNanos start = 0;
    SimNanos child_ns = 0;  // time consumed by completed child spans
  };

  void WriteNodeJson(std::ostream& os, int node) const;
  void PrintNode(std::ostream& os, int node, int depth) const;

  std::vector<Node> nodes_;
  std::vector<int> roots_;
  std::map<std::pair<int, int>, int> edges_;  // (parent node, phase id) -> node
  std::vector<Frame> stack_;
  std::unordered_map<std::string, int> phase_ids_;
  std::vector<std::string> phase_names_;
};

}  // namespace cki

#endif  // SRC_OBS_SPAN_PROFILER_H_
