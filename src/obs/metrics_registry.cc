#include "src/obs/metrics_registry.h"

#include "src/obs/json_util.h"

namespace cki {

Histogram& MetricsRegistry::Hist(std::string_view name) {
  auto it = hists_.find(name);
  if (it == hists_.end()) {
    it = hists_.emplace(std::string(name), Histogram{}).first;
  }
  return it->second;
}

Histogram& MetricsRegistry::Hist(std::string_view family, std::string_view item) {
  std::string name;
  name.reserve(family.size() + 1 + item.size());
  name.append(family);
  name.push_back('/');
  name.append(item);
  return Hist(name);
}

void MetricsRegistry::Inc(std::string_view name, uint64_t delta) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    counters_.emplace(std::string(name), delta);
  } else {
    it->second += delta;
  }
}

const Histogram* MetricsRegistry::FindHist(std::string_view name) const {
  auto it = hists_.find(name);
  return it == hists_.end() ? nullptr : &it->second;
}

uint64_t MetricsRegistry::CounterValue(std::string_view name) const {
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

void MetricsRegistry::Merge(const MetricsRegistry& other) {
  for (const auto& [name, value] : other.counters_) {
    Inc(name, value);
  }
  for (const auto& [name, hist] : other.hists_) {
    Hist(name).Merge(hist);
  }
}

void MetricsRegistry::WriteJson(std::ostream& os) const {
  os << "{\"counters\":{";
  bool first = true;
  for (const auto& [name, value] : counters_) {
    if (!first) {
      os << ",";
    }
    first = false;
    WriteJsonString(os, name);
    os << ":" << value;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& [name, hist] : hists_) {
    if (!first) {
      os << ",";
    }
    first = false;
    WriteJsonString(os, name);
    os << ":";
    hist.WriteJson(os);
  }
  os << "}}";
}

void MetricsRegistry::WriteCsvHeader(std::ostream& os) {
  os << "config,type,name,value,count,min,max,mean,p50,p95,p99\n";
}

void MetricsRegistry::WriteCsvRows(std::ostream& os, std::string_view config) const {
  for (const auto& [name, value] : counters_) {
    os << config << ",counter," << name << "," << value << ",,,,,,,\n";
  }
  for (const auto& [name, hist] : hists_) {
    os << config << ",hist," << name << ",," << hist.count() << "," << hist.min() << ","
       << hist.max() << "," << hist.Mean() << "," << hist.Percentile(50) << ","
       << hist.Percentile(95) << "," << hist.Percentile(99) << "\n";
  }
}

void MetricsRegistry::Clear() {
  hists_.clear();
  counters_.clear();
}

}  // namespace cki
