// Causal request identity carried across container boundaries.
//
// A TraceContext names one end-to-end request: `trace_id` is minted once
// (by the load generator, from its deterministic seed and a per-request
// sequence number) and never changes as the request crosses VSwitch hops,
// containers, checkpoints and shard migrations; `span_id` names the causal
// step within the request and is re-derived at every hop. Both are pure
// FNV-1a mixes of deterministic inputs — never wall clock, never
// addresses — so the same seed replays the same trace ids at any thread
// count (the DESIGN.md §9 determinism contract extended to identities).
//
// Propagation rules (DESIGN.md §11):
//   * mint    — LoadGenerator::SendRequests creates a fresh context per
//               request frame
//   * carry   — Packet ships (trace_id, span_id) with every data frame
//   * adopt   — VirtNic::Receive stores the frame's context as the guest
//               kernel's ambient `net_trace`
//   * stamp   — VirtNic::Transmit copies the ambient context onto outgoing
//               frames with a freshly derived span id
//   * persist — GuestKernel snapshot/restore/clone carry the ambient
//               context, so a migrated container keeps its request identity
//
// Propagation is always on (a few u64 copies); *recording* flow points is
// gated by the observability hub like everything else.
#ifndef SRC_OBS_TRACE_CONTEXT_H_
#define SRC_OBS_TRACE_CONTEXT_H_

#include <cstdint>

#include "src/sim/fnv.h"

namespace cki {

struct TraceContext {
  uint64_t trace_id = 0;  // request identity; 0 means "no trace"
  uint64_t span_id = 0;   // causal step within the request

  bool active() const { return trace_id != 0; }
};

// FNV-1a over the 8 bytes of `v`, chained from `h` (the canonical mixer).
inline uint64_t TraceMix(uint64_t h, uint64_t v) { return FnvMix64(h, v); }

inline constexpr uint64_t kTraceFnvBasis = kFnvOffsetBasis;

// Mints the context for request `sequence` of the generator seeded with
// `seed`. Pure function of its arguments; never returns trace_id 0.
inline TraceContext MakeTraceContext(uint64_t seed, uint64_t sequence) {
  uint64_t id = TraceMix(TraceMix(kTraceFnvBasis, seed), sequence);
  if (id == 0) {
    id = kTraceFnvBasis;  // vanishing FNV output; keep "no trace" reserved
  }
  return TraceContext{.trace_id = id, .span_id = id};
}

// Derives the next causal span id from `tc` and a hop-local salt (port,
// per-port frame counter, ...). Inactive contexts stay inactive.
inline uint64_t DeriveSpanId(const TraceContext& tc, uint64_t salt) {
  if (!tc.active()) {
    return 0;
  }
  uint64_t s = TraceMix(TraceMix(kTraceFnvBasis, tc.span_id), salt);
  return s == 0 ? kTraceFnvBasis : s;
}

}  // namespace cki

#endif  // SRC_OBS_TRACE_CONTEXT_H_
