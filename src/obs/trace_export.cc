#include "src/obs/trace_export.h"

#include <cstdio>
#include <map>

#include "src/obs/json_util.h"

namespace cki {

namespace {

// Chrome trace timestamps are microseconds; keep ns resolution as
// fractional digits.
void WriteTs(std::ostream& os, SimNanos ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  os << buf;
}

std::string_view RecordName(const Observability& obs, const TraceRecord& r) {
  if (r.kind == TraceRecordKind::kInstant) {
    return r.code < static_cast<uint16_t>(PathEvent::kCount)
               ? PathEventName(static_cast<PathEvent>(r.code))
               : std::string_view("unknown");
  }
  return obs.profiler().PhaseName(r.code);
}

}  // namespace

void WriteChromeTraceEvents(const Observability& obs, uint32_t pid, std::string_view process_name,
                            bool* first, std::ostream& os) {
  auto emit_comma = [&] {
    if (!*first) {
      os << ",\n";
    }
    *first = false;
  };
  emit_comma();
  os << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << pid << ",\"tid\":0,\"args\":{\"name\":";
  WriteJsonString(os, process_name);
  os << "}}";
  if (!obs.has_data()) {
    return;
  }
  // The recorder ring drops its oldest records on overflow, which can
  // truncate a span's Begin marker while its End survives; emitting such an
  // orphan End would unbalance the track, so track per-tid depth and skip.
  std::map<uint32_t, uint64_t> open_spans;
  for (const TraceRecord& r : obs.recorder().Chronological()) {
    if (r.kind == TraceRecordKind::kFlowStart || r.kind == TraceRecordKind::kFlowStep ||
        r.kind == TraceRecordKind::kFlowEnd) {
      // Causal flow point: `arg` is the request trace_id. Same name/cat/id
      // across all points of one request lets Perfetto draw the arrow
      // chain between the slices the points land on — across containers
      // (tids) and across shards (pids).
      emit_comma();
      char id[32];
      std::snprintf(id, sizeof(id), "0x%016llx", static_cast<unsigned long long>(r.arg));
      os << "{\"name\":\"req\",\"cat\":\"flow\",\"ph\":\""
         << (r.kind == TraceRecordKind::kFlowStart
                 ? 's'
                 : r.kind == TraceRecordKind::kFlowStep ? 't' : 'f')
         << "\"";
      if (r.kind == TraceRecordKind::kFlowEnd) {
        os << ",\"bp\":\"e\"";
      }
      os << ",\"ts\":";
      WriteTs(os, r.ts);
      os << ",\"pid\":" << pid << ",\"tid\":" << r.owner << ",\"id\":\"" << id << "\"}";
      continue;
    }
    if (r.kind == TraceRecordKind::kSpanBegin) {
      open_spans[r.owner]++;
    } else if (r.kind == TraceRecordKind::kSpanEnd) {
      if (open_spans[r.owner] == 0) {
        continue;
      }
      open_spans[r.owner]--;
    }
    emit_comma();
    os << "{\"name\":";
    WriteJsonString(os, RecordName(obs, r));
    os << ",\"cat\":";
    switch (r.kind) {
      case TraceRecordKind::kInstant:
        os << "\"event\",\"ph\":\"i\",\"s\":\"t\"";
        break;
      case TraceRecordKind::kSpanBegin:
        os << "\"span\",\"ph\":\"B\"";
        break;
      case TraceRecordKind::kSpanEnd:
        os << "\"span\",\"ph\":\"E\"";
        break;
      case TraceRecordKind::kFlowStart:
      case TraceRecordKind::kFlowStep:
      case TraceRecordKind::kFlowEnd:
        break;  // handled (and `continue`d) above
    }
    os << ",\"ts\":";
    WriteTs(os, r.ts);
    os << ",\"pid\":" << pid << ",\"tid\":" << r.owner;
    if (r.arg != 0) {
      os << ",\"args\":{\"arg\":" << r.arg << "}";
    }
    os << "}";
  }
}

void WriteChromeTrace(const Observability& obs, std::ostream& os) {
  os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
  bool first = true;
  WriteChromeTraceEvents(obs, 1, "cki-sim", &first, os);
  os << "\n]}\n";
}

}  // namespace cki
