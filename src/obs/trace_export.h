// Chrome trace-event JSON export of the flight recorder.
//
// The emitted file loads directly in Perfetto (ui.perfetto.dev) or
// chrome://tracing: spans become B/E duration events, architectural
// events become thread-scoped instants, and the container/owner id maps
// to the tid so per-container activity lands on its own track.
//
// Thread-safety: pure readers — they take the hub and stream by reference
// and touch no global state, so exporting is safe from any single thread
// once recording has stopped (e.g. after a cluster's shard threads have
// joined and handed their hubs over via Observability::Detach).
// Ownership: the caller owns both the hub and the output stream.
#ifndef SRC_OBS_TRACE_EXPORT_H_
#define SRC_OBS_TRACE_EXPORT_H_

#include <cstdint>
#include <ostream>
#include <string_view>

#include "src/obs/observability.h"

namespace cki {

// Writes a complete {"traceEvents":[...]} document for one context.
void WriteChromeTrace(const Observability& obs, std::ostream& os);

// Appends one context's records to an already-open traceEvents array under
// process id `pid` (named `process_name` via a metadata event). `first`
// tracks comma placement across calls; the caller owns the surrounding
// document. Lets benches merge several Testbeds into one trace, one
// process track per configuration.
void WriteChromeTraceEvents(const Observability& obs, uint32_t pid, std::string_view process_name,
                            bool* first, std::ostream& os);

}  // namespace cki

#endif  // SRC_OBS_TRACE_EXPORT_H_
