// RAII span instrumentation over simulated time.
//
// TraceScope opens a named phase on the SimContext's span profiler and
// mirrors begin/end markers into the flight recorder; nesting scopes
// builds the phase tree (syscall -> getpid -> ksm/roundtrip -> ...).
// Phase names are an API: exporters, tests, and the DESIGN.md taxonomy
// all key on them, so treat renames as breaking changes.
//
// Sampling (DESIGN.md §11): every scope reports to the hub's gate
// (EnterScope/ExitScope). The outermost scope latches the keep/suppress
// decision for the whole operation, so a sampled op records its full
// span subtree and an unsampled one records nothing — begin/end markers
// always stay paired. SyscallScope additionally feeds the per-container
// SLO window at full rate regardless of the gate.
//
// All scopes are no-ops (one branch) when observability is disabled.
//
// Thread-safety: a scope borrows its SimContext for the enclosing block
// and must open and close on that context's (single) simulation thread —
// spans nest by construction order, which only makes sense within one
// thread. Never hold a scope across an Observability::Detach.
// Ownership: scopes own nothing; they write into the context's hub.
#ifndef SRC_OBS_TRACE_SCOPE_H_
#define SRC_OBS_TRACE_SCOPE_H_

#include <string_view>

#include "src/sim/context.h"

namespace cki {

class TraceScope {
 public:
  TraceScope(SimContext& ctx, std::string_view phase) : ctx_(ctx) { Enter(phase); }

  // Also stamps `owner` as the current container attribution.
  TraceScope(SimContext& ctx, uint32_t owner, std::string_view phase) : ctx_(ctx) {
    if (ctx.obs().enabled()) {
      ctx.obs().set_owner(owner);
    }
    Enter(phase);
  }

  ~TraceScope() {
    if (!entered_) {
      return;
    }
    Observability& obs = ctx_.obs();
    if (recording_) {
      SimNanos now = ctx_.clock().now();
      obs.RecordRing(TraceRecord{.ts = now,
                                 .owner = obs.owner(),
                                 .code = static_cast<uint16_t>(phase_),
                                 .kind = TraceRecordKind::kSpanEnd});
      obs.profiler().EndSpan(now);
    }
    obs.ExitScope();
  }

  // Whether this operation won the sampling gate (always true at full
  // rate). False also when observability is disabled.
  bool recording() const { return recording_; }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void Enter(std::string_view phase) {
    Observability& obs = ctx_.obs();
    if (!obs.enabled()) {
      return;
    }
    entered_ = true;
    recording_ = obs.EnterScope();
    if (!recording_) {
      return;
    }
    phase_ = obs.profiler().InternPhase(phase);
    SimNanos now = ctx_.clock().now();
    obs.profiler().BeginSpan(phase_, now);
    obs.RecordRing(TraceRecord{.ts = now,
                               .owner = obs.owner(),
                               .code = static_cast<uint16_t>(phase_),
                               .kind = TraceRecordKind::kSpanBegin});
  }

  SimContext& ctx_;
  bool entered_ = false;
  bool recording_ = false;
  int phase_ = -1;
};

// TraceScope plus a latency sample: on exit, the elapsed simulated ns are
// also recorded into the metrics histogram `family/item`. The histogram
// write follows the scope's sampling decision.
class LatencyScope {
 public:
  LatencyScope(SimContext& ctx, uint32_t owner, std::string_view phase, std::string_view family,
               std::string_view item)
      : ctx_(ctx), scope_(ctx, owner, phase), family_(family), item_(item) {
    if (scope_.recording()) {
      start_ = ctx_.clock().now();
    }
  }

  ~LatencyScope() {
    if (scope_.recording()) {
      ctx_.obs().AddHistSample(family_, item_, ctx_.clock().now() - start_);
    }
  }

  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

 private:
  SimContext& ctx_;
  TraceScope scope_;
  std::string_view family_;
  std::string_view item_;
  SimNanos start_ = 0;
};

// The engines' per-syscall instrumentation: a "syscall" span plus the
// per-syscall latency histogram (both behind the sampling gate) plus the
// owning container's SLO window (always on — the rolling window is the
// telemetry that must survive sampling). `sys_name` must outlive the
// scope; the engines pass entries of the static kSysNames table.
class SyscallScope {
 public:
  SyscallScope(SimContext& ctx, uint32_t owner, std::string_view sys_name)
      : ctx_(ctx), scope_(ctx, owner, "syscall"), owner_(owner), sys_name_(sys_name),
        active_(ctx.obs().enabled()) {
    if (active_) {
      start_ = ctx_.clock().now();
    }
  }

  ~SyscallScope() {
    if (!active_) {
      return;
    }
    Observability& obs = ctx_.obs();
    SimNanos now = ctx_.clock().now();
    SimNanos latency = now - start_;
    if (scope_.recording()) {
      obs.AddHistSample("syscall", sys_name_, latency);
    }
    obs.SloObserveSyscall(owner_, now, latency);
  }

  SyscallScope(const SyscallScope&) = delete;
  SyscallScope& operator=(const SyscallScope&) = delete;

 private:
  SimContext& ctx_;
  TraceScope scope_;
  uint32_t owner_;
  std::string_view sys_name_;
  bool active_;
  SimNanos start_ = 0;
};

}  // namespace cki

#endif  // SRC_OBS_TRACE_SCOPE_H_
