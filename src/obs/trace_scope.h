// RAII span instrumentation over simulated time.
//
// TraceScope opens a named phase on the SimContext's span profiler and
// mirrors begin/end markers into the flight recorder; nesting scopes
// builds the phase tree (syscall -> getpid -> ksm/roundtrip -> ...).
// Phase names are an API: exporters, tests, and the DESIGN.md taxonomy
// all key on them, so treat renames as breaking changes.
//
// Both scopes are no-ops (one branch) when observability is disabled.
//
// Thread-safety: a scope borrows its SimContext for the enclosing block
// and must open and close on that context's (single) simulation thread —
// spans nest by construction order, which only makes sense within one
// thread. Never hold a scope across an Observability::Detach.
// Ownership: scopes own nothing; they write into the context's hub.
#ifndef SRC_OBS_TRACE_SCOPE_H_
#define SRC_OBS_TRACE_SCOPE_H_

#include <string>
#include <string_view>

#include "src/sim/context.h"

namespace cki {

class TraceScope {
 public:
  TraceScope(SimContext& ctx, std::string_view phase) : ctx_(ctx), active_(ctx.obs().enabled()) {
    if (active_) {
      Begin(phase);
    }
  }

  // Also stamps `owner` as the current container attribution.
  TraceScope(SimContext& ctx, uint32_t owner, std::string_view phase)
      : ctx_(ctx), active_(ctx.obs().enabled()) {
    if (active_) {
      ctx_.obs().set_owner(owner);
      Begin(phase);
    }
  }

  ~TraceScope() {
    if (active_) {
      Observability& obs = ctx_.obs();
      obs.recorder().Record(TraceRecord{.ts = ctx_.clock().now(),
                                        .owner = obs.owner(),
                                        .code = static_cast<uint16_t>(phase_),
                                        .kind = TraceRecordKind::kSpanEnd});
      obs.profiler().EndSpan(ctx_.clock().now());
    }
  }

  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;

 private:
  void Begin(std::string_view phase) {
    Observability& obs = ctx_.obs();
    phase_ = obs.profiler().InternPhase(phase);
    SimNanos now = ctx_.clock().now();
    obs.profiler().BeginSpan(phase_, now);
    obs.recorder().Record(TraceRecord{.ts = now,
                                      .owner = obs.owner(),
                                      .code = static_cast<uint16_t>(phase_),
                                      .kind = TraceRecordKind::kSpanBegin});
  }

  SimContext& ctx_;
  bool active_;
  int phase_ = -1;
};

// TraceScope plus a latency sample: on exit, the elapsed simulated ns are
// also recorded into the metrics histogram `family/item` (e.g. the
// per-syscall-number latency distributions of the engines).
class LatencyScope {
 public:
  LatencyScope(SimContext& ctx, uint32_t owner, std::string_view phase, std::string_view family,
               std::string_view item)
      : ctx_(ctx), scope_(ctx, owner, phase), active_(ctx.obs().enabled()) {
    if (active_) {
      start_ = ctx_.clock().now();
      hist_family_ = family;
      hist_item_ = item;
    }
  }

  ~LatencyScope() {
    if (active_) {
      ctx_.obs().metrics().Hist(hist_family_, hist_item_).Add(ctx_.clock().now() - start_);
    }
  }

  LatencyScope(const LatencyScope&) = delete;
  LatencyScope& operator=(const LatencyScope&) = delete;

 private:
  SimContext& ctx_;
  TraceScope scope_;
  bool active_;
  SimNanos start_ = 0;
  std::string hist_family_;
  std::string hist_item_;
};

}  // namespace cki

#endif  // SRC_OBS_TRACE_SCOPE_H_
