// Rolling-window time series over simulated time: the always-on SLO view.
//
// A SloWindow is a ring of time buckets, each holding one HDR histogram of
// syscall latencies plus op/fault counters for one bucket-sized slice of
// simulated time. Writes touch exactly one bucket (O(1), no allocation
// after construction); queries fold the live buckets together, answering
// "p99 over the last W ms", "syscall rate", "faults in window" and the
// latest resident-frames gauge per container. Buckets expire by epoch:
// writing into a slot whose epoch moved on clears it first, so a window
// never reports samples older than `window_ns()`.
//
// Everything is keyed off the simulated clock — the window is as
// deterministic as the simulation feeding it, and identical at any host
// thread count.
//
// Thread-safety: none — owned by one Observability hub, touched only from
// that shard's thread (the hub's contract).
#ifndef SRC_OBS_SLO_WINDOW_H_
#define SRC_OBS_SLO_WINDOW_H_

#include <cstdint>
#include <ostream>
#include <vector>

#include "src/obs/histogram.h"
#include "src/sim/clock.h"

namespace cki {

class SloWindow {
 public:
  struct Config {
    SimNanos bucket_ns = 1'000'000;  // 1 simulated ms per bucket
    uint32_t buckets = 8;            // window = bucket_ns * buckets
  };

  SloWindow() { Init(); }
  explicit SloWindow(Config config) : config_(config) { Init(); }

  SimNanos window_ns() const { return config_.bucket_ns * config_.buckets; }

  void ObserveLatency(SimNanos now, SimNanos latency_ns) {
    Bucket& b = Touch(now);
    b.latency.Add(latency_ns);
    b.ops++;
    total_ops_++;
  }

  void IncFaults(SimNanos now, uint64_t n = 1) {
    Touch(now).faults += n;
    total_faults_ += n;
  }

  // RX-ring overrun backpressure events (kNicOverload promoted from
  // advisory-only): windowed like faults so shedding decisions and
  // dashboards see *current* backpressure, not lifetime totals.
  void IncOverloads(SimNanos now, uint64_t n = 1) {
    Touch(now).overloads += n;
    total_overloads_ += n;
  }

  // Latest point-in-time gauge (resident frames); last write wins.
  void SetGauge(SimNanos now, uint64_t value) {
    Touch(now);
    gauge_ = value;
  }

  uint64_t gauge() const { return gauge_; }
  uint64_t total_ops() const { return total_ops_; }
  uint64_t total_faults() const { return total_faults_; }
  uint64_t total_overloads() const { return total_overloads_; }
  // Simulated time of the most recent write (queries anchor here).
  SimNanos last_ns() const { return last_ns_; }

  // --- window queries, anchored at the most recent write ------------------

  uint64_t WindowOps() const {
    uint64_t n = 0;
    ForLive([&](const Bucket& b) { n += b.ops; });
    return n;
  }

  uint64_t WindowFaults() const {
    uint64_t n = 0;
    ForLive([&](const Bucket& b) { n += b.faults; });
    return n;
  }

  uint64_t WindowOverloads() const {
    uint64_t n = 0;
    ForLive([&](const Bucket& b) { n += b.overloads; });
    return n;
  }

  // Ops per simulated second over the window span.
  double OpsPerSec() const {
    double secs = static_cast<double>(window_ns()) * 1e-9;
    return secs > 0 ? static_cast<double>(WindowOps()) / secs : 0;
  }

  // Latency percentile over the live buckets (0 with no samples).
  uint64_t Percentile(double p) const {
    Histogram merged;
    ForLive([&](const Bucket& b) { merged.Merge(b.latency); });
    return merged.count() == 0 ? 0 : merged.Percentile(p);
  }

  // {"window_ns":..,"ops":..,"ops_per_sec":..,"p50":..,"p99":..,
  //  "faults":..,"overloads":..,"gauge":..}
  void WriteJson(std::ostream& os) const {
    Histogram merged;
    ForLive([&](const Bucket& b) { merged.Merge(b.latency); });
    os << "{\"window_ns\":" << window_ns() << ",\"ops\":" << WindowOps()
       << ",\"ops_per_sec\":" << OpsPerSec()
       << ",\"p50\":" << (merged.count() ? merged.Percentile(50) : 0)
       << ",\"p99\":" << (merged.count() ? merged.Percentile(99) : 0)
       << ",\"faults\":" << WindowFaults() << ",\"overloads\":" << WindowOverloads()
       << ",\"gauge\":" << gauge_ << "}";
  }

 private:
  struct Bucket {
    int64_t epoch = -1;  // now / bucket_ns when last written; -1: never
    Histogram latency;
    uint64_t ops = 0;
    uint64_t faults = 0;
    uint64_t overloads = 0;
  };

  void Init() {
    if (config_.bucket_ns < 1) {
      config_.bucket_ns = 1;
    }
    if (config_.buckets < 1) {
      config_.buckets = 1;
    }
    ring_.resize(config_.buckets);
  }

  Bucket& Touch(SimNanos now) {
    if (now > last_ns_) {
      last_ns_ = now;
    }
    int64_t epoch = static_cast<int64_t>(now / config_.bucket_ns);
    Bucket& b = ring_[static_cast<size_t>(epoch) % ring_.size()];
    if (b.epoch != epoch) {
      b.latency.Clear();
      b.ops = 0;
      b.faults = 0;
      b.overloads = 0;
      b.epoch = epoch;
    }
    return b;
  }

  // Applies `fn` to every bucket still inside the window ending at
  // last_ns_ (epochs within `buckets` of the anchor epoch).
  template <typename Fn>
  void ForLive(Fn&& fn) const {
    int64_t anchor = static_cast<int64_t>(last_ns_ / config_.bucket_ns);
    for (const Bucket& b : ring_) {
      if (b.epoch >= 0 && b.epoch > anchor - static_cast<int64_t>(ring_.size()) &&
          b.epoch <= anchor) {
        fn(b);
      }
    }
  }

  Config config_;
  std::vector<Bucket> ring_;
  SimNanos last_ns_ = 0;
  uint64_t gauge_ = 0;
  uint64_t total_ops_ = 0;
  uint64_t total_faults_ = 0;
  uint64_t total_overloads_ = 0;
};

}  // namespace cki

#endif  // SRC_OBS_SLO_WINDOW_H_
