// Deterministic placement/autoscaling policies for the cluster
// orchestrator (DESIGN.md §12).
//
// The control loop runs in fixed epochs. After every epoch the
// orchestrator folds each shard's load signals into one ClusterSnapshot —
// a plain value, ordered by (shard index, container id) — and hands it to
// a policy. A policy is a *pure function* of that snapshot: no RNG, no
// clock reads, no mutable state, no peeking at live machines. It returns
// the epoch's actions ordered by (shard index, container id), so the
// decision trace of a whole run is a pure function of (workload, seed)
// and can be FNV-1a-hashed for cross-thread-count determinism checks.
//
// Thread-safety: policies are immutable after construction and may be
// shared freely; Decide is const and reentrant.
#ifndef SRC_ORCH_POLICY_H_
#define SRC_ORCH_POLICY_H_

#include <cstdint>
#include <string_view>
#include <vector>

#include "src/sim/clock.h"

namespace cki {

// Rolling per-container load signals, sampled at the control epoch
// boundary from the container's SloWindow and the frame allocator.
struct ContainerSignal {
  uint32_t shard = 0;
  uint32_t id = 0;  // OwnerId on its shard's machine (unique per machine)
  bool alive = true;
  uint64_t p99_ns = 0;         // rolling request p99 (SloWindow)
  uint64_t window_ops = 0;     // requests served inside the window
  double ops_per_sec = 0;      // rolling request rate
  uint64_t resident_frames = 0;
  uint64_t faults = 0;         // engine-path faults inside the window
  uint32_t idle_epochs = 0;    // consecutive epochs with zero requests
};

// One shard's view at the epoch boundary. `containers` is ordered by id.
struct ShardSignal {
  uint32_t index = 0;
  bool up = true;            // false while the machine is chaos-killed
  bool has_template = false; // warm clone template available
  SimNanos backlog_ns = 0;   // how far serving lags the epoch end (overload)
  uint64_t epoch_requests = 0;
  uint64_t epoch_lost = 0;   // arrivals dropped (down machine / no capacity)
  uint64_t epoch_p99_ns = 0; // this epoch's request p99 on this shard
  // Probe-driven machine health (src/resil/health.h): 1000 = as fast as
  // the machine's best self, lower = gray. Integer so it rides the Hash.
  // Dead is `!up`; gray is `up && health below the policy threshold`.
  uint32_t health_x1000 = 1000;
  std::vector<ContainerSignal> containers;
};

// The deterministic cluster state a policy decides from.
struct ClusterSnapshot {
  uint64_t epoch = 0;
  SimNanos epoch_ns = 0;
  SimNanos slo_p99_ns = 0;
  std::vector<ShardSignal> shards;  // ordered by shard index

  // FNV-1a digest over every integer field in (shard, container) order.
  // Doubles are excluded so the digest never depends on float formatting;
  // the integer fields already pin the state.
  uint64_t Hash() const;
};

enum class OrchActionKind : uint8_t {
  kScaleUp = 0,  // clone one container from the shard's template
  kMigrate,      // checkpoint container off `shard`, restore on `dst_shard`
  kReap,         // kill + reclaim an idle container
  kDrain,        // migrate off a gray (degraded-but-alive) machine
};

struct OrchAction {
  OrchActionKind kind = OrchActionKind::kScaleUp;
  uint32_t shard = 0;      // target for scale-up; source for migrate/reap
  uint32_t container = 0;  // victim id for migrate/reap; 0 for scale-up
  uint32_t dst_shard = 0;  // migrate destination; 0 otherwise
};

class OrchPolicy {
 public:
  virtual ~OrchPolicy() = default;
  virtual std::string_view name() const = 0;
  // Pure function of the snapshot. Must emit actions ordered by
  // (shard index, container id); the orchestrator applies them in order.
  virtual std::vector<OrchAction> Decide(const ClusterSnapshot& snap) const = 0;
};

// Replacement-only baseline: keeps every up shard at `target_containers`
// serving containers (so chaos victims are re-placed) but never scales
// past it, never migrates, never reaps.
class StaticPolicy : public OrchPolicy {
 public:
  explicit StaticPolicy(uint32_t target_containers) : target_(target_containers) {}
  std::string_view name() const override { return "static"; }
  std::vector<OrchAction> Decide(const ClusterSnapshot& snap) const override;

 private:
  uint32_t target_;
};

// Reactive autoscaler: scale up hot shards, migrate off saturated ones,
// reap idle containers, re-place chaos victims.
struct ReactiveConfig {
  uint32_t min_containers = 1;      // per up shard
  uint32_t max_containers = 8;      // per shard
  // A shard is HOT when its epoch p99 misses the SLO target or its
  // backlog exceeds this fraction of the epoch (x1000: 250 = 25%).
  uint32_t hot_backlog_permille = 250;
  // A container is SATURATED above this rolling request rate.
  double capacity_ops_per_sec = 150'000;
  // Reap a container after this many consecutive idle epochs.
  uint32_t reap_idle_epochs = 4;
  // Gray handling (DESIGN.md §13): a shard with up==true but
  // health_x1000 below this is GRAY — drain up to `drain_per_epoch` of
  // its containers per epoch toward healthy shards, never scale it up,
  // never pick it as a migration destination. 0 disables (crash-only
  // behavior, the pre-resilience baseline).
  uint32_t gray_health_x1000 = 0;
  uint32_t drain_per_epoch = 1;
};

class ReactivePolicy : public OrchPolicy {
 public:
  explicit ReactivePolicy(const ReactiveConfig& config) : config_(config) {}
  std::string_view name() const override { return "reactive"; }
  const ReactiveConfig& config() const { return config_; }
  std::vector<OrchAction> Decide(const ClusterSnapshot& snap) const override;

 private:
  ReactiveConfig config_;
};

}  // namespace cki

#endif  // SRC_ORCH_POLICY_H_
