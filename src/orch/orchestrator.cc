#include "src/orch/orchestrator.h"

#include <algorithm>
#include <utility>

#include "src/cki/cki_engine.h"
#include "src/obs/histogram.h"
#include "src/obs/slo_window.h"
#include "src/obs/trace_context.h"
#include "src/resil/health.h"
#include "src/snap/snapshot.h"

namespace cki {
namespace {

// Hash salts that keep action records and chaos strikes from colliding in
// the control digest (each record is salt + its fields, in order).
constexpr uint64_t kHashEpochMark = 0xE70C;
constexpr uint64_t kHashAction = 0xAC71;
constexpr uint64_t kHashMachineKill = 0xFA11;
constexpr uint64_t kHashContainerKill = 0xFA22;

// Request served per arrival: open the warm tmpfs log, pread a record,
// close. pread never allocates tmpfs blocks, so serving any number of
// requests cannot grow the container past its delegated segment.
constexpr uint64_t kRequestPathId = 1;
constexpr uint64_t kRequestReadBytes = 512;
constexpr uint64_t kTemplateLogBytes = 16384;

}  // namespace

// One serving container. The SloWindow and queue position travel with the
// container across live migration; the engine pointer is null once the
// container died (chaos) or was killed by the control plane this epoch —
// dead entries linger until the end of Apply so a policy action aimed at
// a chaos victim is detected (and counted aborted) instead of resolving
// to a stale neighbor.
struct Orchestrator::Managed {
  std::unique_ptr<ContainerEngine> engine;
  uint32_t id = 0;  // engine OwnerId, cached so dead entries stay addressable
  SimNanos busy_until = 0;  // epoch-timeline instant the container frees up
  SloWindow window;
  uint64_t served_epoch = 0;
  uint32_t idle_epochs = 0;
  // Per-destination circuit breaker (null when resilience is disabled).
  // Not migrated with the container: breaker history indicts the machine
  // underneath, and the destination machine is a different suspect.
  std::unique_ptr<CircuitBreaker> breaker;
};

// One shard: a machine plus everything that must survive the machine.
// The arrival process, the fault injector, and the work-jitter RNG are
// deliberately NOT rebuilt when chaos destroys the machine — traffic and
// the chaos schedule are pure functions of the seeds, independent of how
// often the hardware underneath died.
struct Orchestrator::ShardState {
  uint32_t index;
  uint64_t shard_seed;
  bool up = false;
  uint64_t down_until_epoch = 0;

  // machine outlives tmpl/containers (declaration order = reverse
  // destruction order), so engines never outlive their machine.
  std::unique_ptr<Machine> machine;
  std::unique_ptr<ContainerEngine> tmpl;
  std::vector<Managed> containers;

  ArrivalProcess arrivals;
  FaultInjector injector;
  XorShift64Star work_rng;
  GrayFault gray;            // degradation episodes for this machine
  HealthTracker health;      // probe-driven dead-vs-gray discriminator
  RetryBudget retry_budget;  // shard-wide token bucket (storm guard)
  SloWindow latency_window;  // rolling client latency (hedge-delay quantile)
  SloWindow service_window;  // rolling raw service time (admission estimate)

  size_t rr = 0;  // round-robin serve cursor
  Histogram epoch_lat;
  uint64_t epoch_requests = 0;
  uint64_t epoch_lost = 0;
  SimNanos backlog_ns = 0;
  uint64_t serve_hash = kTraceFnvBasis;  // cumulative per-shard serve digest
  MetricsRegistry metrics;
  std::vector<SimNanos> arrival_buf;

  // Cumulative resilience accounting, summed into OrchStats after Run.
  uint64_t blackholed = 0;
  uint64_t probes = 0;
  uint64_t retries = 0;
  uint64_t hedges = 0;
  uint64_t hedge_wins = 0;
  uint64_t hedges_cancelled = 0;
  uint64_t sheds = 0;
  uint64_t deadline_misses = 0;
  uint64_t breaker_opens = 0;
  uint64_t breaker_short_circuits = 0;

  ShardState(const OrchConfig& cfg, uint32_t idx, uint64_t seed)
      : index(idx),
        shard_seed(seed),
        arrivals(SkewedArrivals(cfg, idx, seed)),
        injector(InjectorConfigFor(cfg, seed)),
        work_rng(SplitSeed(seed, 2)),
        gray(GrayConfigFor(cfg, seed)),
        retry_budget(cfg.resil.retry_budget_ratio, cfg.resil.retry_budget_cap),
        latency_window(SloWindow::Config{.bucket_ns = cfg.epoch_ns, .buckets = 8}),
        service_window(SloWindow::Config{.bucket_ns = cfg.epoch_ns, .buckets = 8}) {}

  static ArrivalConfig SkewedArrivals(const OrchConfig& cfg, uint32_t idx, uint64_t seed) {
    ArrivalConfig ac = cfg.arrivals;
    ac.seed = SplitSeed(seed, 0);
    ac.base_rate_per_sec *= 1.0 + cfg.shard_load_skew * idx;
    return ac;
  }
  static InjectorConfig InjectorConfigFor(const OrchConfig& cfg, uint64_t seed) {
    InjectorConfig ic;
    ic.seed = SplitSeed(seed, 1);
    ic.machine_kill_rate = cfg.machine_kill_rate;
    ic.container_kill_rate = cfg.container_kill_rate;
    ic.latency_inflation_rate = cfg.latency_inflation_rate;
    ic.throughput_throttle_rate = cfg.throughput_throttle_rate;
    ic.packet_blackhole_rate = cfg.packet_blackhole_rate;
    ic.syscall_jitter_rate = cfg.syscall_jitter_rate;
    return ic;
  }
  static GrayConfig GrayConfigFor(const OrchConfig& cfg, uint64_t seed) {
    GrayConfig gc = cfg.gray;
    gc.seed = SplitSeed(seed, 3);
    return gc;
  }

  SloWindow::Config WindowConfig(const OrchConfig& cfg) const {
    return SloWindow::Config{.bucket_ns = cfg.epoch_ns, .buckets = 8};
  }
};

Orchestrator::Orchestrator(const OrchConfig& config, const OrchPolicy& policy)
    : config_(config),
      policy_(policy),
      cluster_(ClusterConfig{.shards = config.shards,
                             .threads = config.threads,
                             .root_seed = config.root_seed}),
      control_hash_(kTraceFnvBasis),
      cluster_hash_(kTraceFnvBasis) {
  if (config_.shards == 0) {
    config_.shards = 1;
  }
  if (config_.epoch_ns == 0) {
    config_.epoch_ns = 1;
  }
  shards_.reserve(config_.shards);
  for (uint32_t i = 0; i < config_.shards; ++i) {
    shards_.push_back(std::make_unique<ShardState>(
        config_, i, SimCluster::ShardSeed(config_.root_seed, i)));
    BootShard(i);
  }
}

Orchestrator::~Orchestrator() = default;

uint64_t Orchestrator::CombinedHash() const {
  return TraceMix(TraceMix(kTraceFnvBasis, control_hash_), cluster_hash_);
}

namespace {

std::unique_ptr<ContainerEngine> NewEngine(Machine& machine, const OrchConfig& cfg) {
  if (cfg.kind == RuntimeKind::kCki) {
    // Dense fleets want small delegated segments, not the production
    // default (the bench_ext_coldstart convention).
    return std::make_unique<CkiEngine>(machine, CkiAblation::kNone, cfg.cki_segment_pages);
  }
  return MakeEngine(machine, cfg.kind);
}

// The serverless warm-up: stage the request log in tmpfs and page in the
// function's working set, so clones serve their first request warm.
void WarmTemplate(ContainerEngine& e, const OrchConfig& cfg) {
  SyscallResult r = e.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = kRequestPathId});
  if (r.ok()) {
    uint64_t fd = static_cast<uint64_t>(r.value);
    e.UserSyscall(SyscallRequest{.no = Sys::kWrite, .arg0 = fd, .arg1 = kTemplateLogBytes});
    e.UserSyscall(SyscallRequest{.no = Sys::kClose, .arg0 = fd});
  }
  e.MmapAnon(cfg.template_warm_pages * kPageSize, /*populate=*/true);
}

}  // namespace

void Orchestrator::BootShard(uint32_t index) {
  ShardState& s = *shards_[index];
  s.machine = std::make_unique<Machine>(
      MachineConfigFor(config_.kind, Deployment::kBareMetal));
  s.tmpl = NewEngine(*s.machine, config_);
  s.tmpl->Boot();
  WarmTemplate(*s.tmpl, config_);
  stats_.template_boots++;
  s.containers.clear();
  s.rr = 0;
  s.health.Reset();  // a rebuilt machine starts with a clean health record
  for (uint32_t i = 0; i < config_.initial_containers; ++i) {
    Managed c;
    c.engine = CloneContainer(*s.tmpl);
    c.id = c.engine->id();
    c.window = SloWindow(s.WindowConfig(config_));
    if (config_.resil.enabled) {
      c.breaker = std::make_unique<CircuitBreaker>(config_.resil);
    }
    s.containers.push_back(std::move(c));
    stats_.clones++;
  }
  s.up = true;
  s.down_until_epoch = 0;
}

OrchStats Orchestrator::Run() {
  if (ran_) {
    return stats_;
  }
  ran_ = true;
  for (uint64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    // Revival sweep: machines chaos-killed `machine_down_epochs` ago come
    // back as a full cold boot (template + minimum fleet).
    for (uint32_t i = 0; i < config_.shards; ++i) {
      if (!shards_[i]->up && epoch >= shards_[i]->down_until_epoch) {
        BootShard(i);
      }
    }
    ServeEpoch(epoch);
    ClusterSnapshot snap = Collect(epoch);
    cluster_hash_ = TraceMix(cluster_hash_, snap.Hash());
    std::vector<OrchAction> actions = policy_.Decide(snap);
    control_hash_ = TraceMix(control_hash_, kHashEpochMark);
    control_hash_ = TraceMix(control_hash_, epoch);
    for (const OrchAction& a : actions) {
      control_hash_ = TraceMix(control_hash_, kHashAction);
      control_hash_ = TraceMix(control_hash_, static_cast<uint64_t>(a.kind));
      control_hash_ = TraceMix(control_hash_, a.shard);
      control_hash_ = TraceMix(control_hash_, a.container);
      control_hash_ = TraceMix(control_hash_, a.dst_shard);
    }
    Chaos(epoch);
    Apply(epoch, actions);
    FinishEpoch(epoch);
    last_snapshot_ = std::move(snap);
  }
  // Merge per-shard metrics in index order (bit-stable at any thread
  // count) and derive the fleet-wide latency tail from the merged
  // histogram.
  for (const auto& s : shards_) {
    metrics_.Merge(s->metrics);
  }
  const Histogram* lat = metrics_.FindHist("orch/request_latency_ns");
  stats_.overall_p99_ns = (lat != nullptr && lat->count() > 0) ? lat->Percentile(99) : 0;
  // Fold the per-shard resilience accounting (kept shard-local during the
  // parallel serve phase) into the fleet stats, in shard-index order.
  for (const auto& sp : shards_) {
    stats_.gray_episodes += sp->gray.episodes();
    stats_.blackholed += sp->blackholed;
    stats_.probes += sp->probes;
    stats_.retries += sp->retries;
    stats_.retries_denied += sp->retry_budget.denied();
    stats_.hedges += sp->hedges;
    stats_.hedge_wins += sp->hedge_wins;
    stats_.hedges_cancelled += sp->hedges_cancelled;
    stats_.sheds += sp->sheds;
    stats_.deadline_misses += sp->deadline_misses;
    stats_.breaker_opens += sp->breaker_opens;
    stats_.breaker_short_circuits += sp->breaker_short_circuits;
  }
  metrics_.Inc("resil/gray_episodes", stats_.gray_episodes);
  metrics_.Inc("resil/blackholed", stats_.blackholed);
  metrics_.Inc("resil/retries", stats_.retries);
  metrics_.Inc("resil/retries_denied", stats_.retries_denied);
  metrics_.Inc("resil/hedges", stats_.hedges);
  metrics_.Inc("resil/hedge_wins", stats_.hedge_wins);
  metrics_.Inc("resil/sheds", stats_.sheds);
  metrics_.Inc("resil/deadline_misses", stats_.deadline_misses);
  metrics_.Inc("resil/breaker_opens", stats_.breaker_opens);
  metrics_.Inc("resil/drains", stats_.drains);
  return stats_;
}

void Orchestrator::ServeEpoch(uint64_t epoch) {
  const SimNanos begin = epoch * config_.epoch_ns;
  const SimNanos end = begin + config_.epoch_ns;
  cluster_.Run([this, begin, end](const ShardTask& task) {
    ShardState& s = *shards_[task.index];
    s.epoch_lat.Clear();
    s.epoch_requests = 0;
    s.epoch_lost = 0;
    s.backlog_ns = 0;

    // Traffic is open-loop: the arrival stream advances whether or not
    // this shard has a machine to serve it.
    s.arrival_buf.clear();
    s.arrivals.DrainUntil(end, &s.arrival_buf);
    s.epoch_requests = s.arrival_buf.size();

    // Gray episodes advance on the seed schedule even while the machine
    // is dark, so the episode calendar is a pure function of the seeds —
    // independent of how often the hardware underneath died.
    s.gray.Advance(begin, s.injector,
                   s.up && s.machine != nullptr ? &s.machine->faults() : nullptr);

    if (!s.up) {
      s.epoch_lost += s.arrival_buf.size();
      s.serve_hash = TraceMix(s.serve_hash, s.epoch_lost);
      return ShardResult{};
    }

    SimContext& ctx = s.machine->ctx();
    const SimNanos jitter_span =
        config_.request_compute_max_ns > config_.request_compute_min_ns
            ? config_.request_compute_max_ns - config_.request_compute_min_ns
            : 0;
    for (SimNanos arrival : s.arrival_buf) {
      ServeArrival(s, arrival, jitter_span);
    }

    // Epoch-boundary bookkeeping: backlog (how far the most-behind
    // container lags the epoch end), idle streaks, resident-frame gauges.
    for (Managed& c : s.containers) {
      if (c.engine == nullptr || !c.engine->alive()) {
        continue;
      }
      if (c.busy_until > end) {
        s.backlog_ns = std::max(s.backlog_ns, c.busy_until - end);
      }
      c.idle_epochs = c.served_epoch == 0 ? c.idle_epochs + 1 : 0;
      c.served_epoch = 0;
      c.window.SetGauge(end, s.machine->frames().OwnedFrames(c.id));
    }

    // Health probe, off the serving path: one canonical request on the
    // template engine, degraded through the gray model, feeds the
    // dead-vs-gray tracker. The probe latency rides the serve hash so any
    // health divergence across thread counts breaks the determinism check.
    // Part of the resilience layer — the crash-only baseline has no
    // probing and reports every up machine as fully healthy.
    if (config_.resil.enabled && s.tmpl != nullptr && s.tmpl->alive()) {
      const SimNanos t0 = ctx.clock().now();
      SyscallResult r =
          s.tmpl->UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = kRequestPathId});
      if (r.ok()) {
        uint64_t fd = static_cast<uint64_t>(r.value);
        s.tmpl->UserSyscall(
            SyscallRequest{.no = Sys::kPread, .arg0 = fd, .arg1 = kRequestReadBytes});
        s.tmpl->UserSyscall(SyscallRequest{.no = Sys::kClose, .arg0 = fd});
        const SimNanos probe = s.gray.DegradeServiceNs(ctx.clock().now() - t0, end);
        s.health.Observe(probe);
        s.probes++;
        s.serve_hash = TraceMix(s.serve_hash, probe);
      }
    }
    s.serve_hash = TraceMix(s.serve_hash, s.gray.trace_hash());
    return ShardResult{};
  });
}

Orchestrator::Managed* Orchestrator::PickContainer(ShardState& s, SimNanos at,
                                                   bool respect_breakers,
                                                   const Managed* exclude) {
  const size_t n = s.containers.size();
  if (n == 0) {
    return nullptr;
  }
  for (size_t tries = 0; tries < n; ++tries) {
    Managed& cand = s.containers[s.rr++ % n];
    if (&cand == exclude || cand.engine == nullptr || !cand.engine->alive()) {
      continue;
    }
    if (respect_breakers && cand.breaker != nullptr && !cand.breaker->Allow(at)) {
      s.breaker_short_circuits++;
      continue;
    }
    return &cand;
  }
  return nullptr;
}

SimNanos Orchestrator::RunRequest(ShardState& s, Managed& c, SimNanos at,
                                  SimNanos jitter_span) {
  SimContext& ctx = s.machine->ctx();
  const SimNanos t0 = ctx.clock().now();
  SyscallResult r =
      c.engine->UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = kRequestPathId});
  if (!r.ok()) {
    return 0;
  }
  uint64_t fd = static_cast<uint64_t>(r.value);
  c.engine->UserSyscall(
      SyscallRequest{.no = Sys::kPread, .arg0 = fd, .arg1 = kRequestReadBytes});
  c.engine->UserSyscall(SyscallRequest{.no = Sys::kClose, .arg0 = fd});
  if (jitter_span > 0) {
    ctx.ChargeWork(config_.request_compute_min_ns + s.work_rng.Next() % jitter_span);
  } else {
    ctx.ChargeWork(config_.request_compute_min_ns);
  }
  return s.gray.DegradeServiceNs(ctx.clock().now() - t0, at);
}

void Orchestrator::ServeArrival(ShardState& s, SimNanos arrival, SimNanos jitter_span) {
  const ResilConfig& resil = config_.resil;
  const bool armed = resil.enabled;
  const SimNanos deadline =
      armed && resil.deadline_ns > 0 ? arrival + resil.deadline_ns : 0;
  SimNanos issue = arrival;
  uint32_t attempt = 1;
  for (;;) {
    // Breakers steer load; they must never become a self-inflicted
    // outage. If every live container's breaker is open, fall back to
    // ignoring them rather than dropping the request on the floor.
    Managed* chosen = PickContainer(s, issue, /*respect_breakers=*/armed, nullptr);
    if (chosen == nullptr && armed) {
      chosen = PickContainer(s, issue, /*respect_breakers=*/false, nullptr);
    }
    if (chosen == nullptr) {
      s.epoch_lost++;
      return;
    }
    const SimNanos start = std::max(issue, chosen->busy_until);

    // Admission control: shed now if queue wait plus the rolling median
    // service time cannot land inside the deadline anyway.
    if (deadline != 0) {
      const SimNanos est = s.service_window.Percentile(50);
      if (start + est + resil.shed_slack_ns > deadline) {
        s.sheds++;
        s.epoch_lost++;
        return;
      }
    }

    // Blackhole: the attempt vanishes without an error. The baseline arm
    // just loses the request; the armed arm detects it by attempt
    // timeout, charges the breaker, and retries on the budget's dime.
    if (s.gray.SwallowPacket(start)) {
      s.blackholed++;
      if (!armed) {
        s.epoch_lost++;
        return;
      }
      const SimNanos detect = start + resil.attempt_timeout_ns;
      if (chosen->breaker != nullptr && chosen->breaker->OnFailure(detect)) {
        s.breaker_opens++;
      }
      const SimNanos next_issue = detect + BackoffNs(resil, attempt);
      if (attempt < resil.max_attempts && (deadline == 0 || next_issue < deadline) &&
          s.retry_budget.TryAcquire()) {
        s.retries++;
        attempt++;
        issue = next_issue;
        continue;
      }
      s.epoch_lost++;
      return;
    }

    const SimNanos service = RunRequest(s, *chosen, start, jitter_span);
    if (service == 0) {
      s.epoch_lost++;
      return;
    }
    chosen->busy_until = start + service;
    SimNanos finish = chosen->busy_until;

    // Hedge: planned deterministically from the rolling latency quantile.
    // A primary that beats the fire time cancels it (no second request);
    // otherwise the hedge runs on a different container and the client
    // takes whichever copy finishes first.
    if (armed && attempt == 1) {
      const SimNanos observed = s.latency_window.Percentile(resil.hedge_quantile);
      const HedgePlan plan = PlanHedge(resil, issue, finish, observed);
      if (plan.scheduled && (deadline == 0 || plan.fire_at < deadline)) {
        if (!plan.fired) {
          s.hedges_cancelled++;
        } else {
          Managed* h = PickContainer(s, plan.fire_at, /*respect_breakers=*/true, chosen);
          if (h != nullptr) {
            s.hedges++;
            const SimNanos h_start = std::max(plan.fire_at, h->busy_until);
            const SimNanos h_service = RunRequest(s, *h, h_start, jitter_span);
            if (h_service > 0) {
              h->busy_until = h_start + h_service;
              h->served_epoch++;
              const bool h_late = deadline != 0 && h->busy_until > deadline;
              if (h->breaker != nullptr) {
                if (h_late) {
                  if (h->breaker->OnFailure(h->busy_until)) {
                    s.breaker_opens++;
                  }
                } else {
                  h->breaker->OnSuccess(h->busy_until);
                }
              }
              if (h->busy_until < finish) {
                s.hedge_wins++;
                finish = h->busy_until;
              }
            }
          }
        }
      }
    }

    // Outcome bookkeeping. A served-but-late request still completes for
    // the client, but it counts against the destination's breaker — a
    // gray machine fails by being slow, not by erroring.
    const bool late = deadline != 0 && finish > deadline;
    if (late) {
      s.deadline_misses++;
      if (chosen->breaker != nullptr && chosen->breaker->OnFailure(chosen->busy_until)) {
        s.breaker_opens++;
      }
    } else if (chosen->breaker != nullptr) {
      chosen->breaker->OnSuccess(chosen->busy_until);
    }
    if (armed) {
      s.retry_budget.OnSuccess();
    }

    const SimNanos latency = finish - arrival;
    chosen->window.ObserveLatency(chosen->busy_until, latency);
    chosen->served_epoch++;
    s.latency_window.ObserveLatency(finish, latency);
    s.service_window.ObserveLatency(finish, service);
    s.epoch_lat.Add(latency);
    s.metrics.Hist("orch/request_latency_ns").Add(latency);
    s.metrics.Inc("orch/requests_served");
    s.serve_hash = TraceMix(s.serve_hash, arrival);
    s.serve_hash = TraceMix(s.serve_hash, chosen->id);
    s.serve_hash = TraceMix(s.serve_hash, latency);
    s.serve_hash = TraceMix(s.serve_hash, attempt);
    return;
  }
}

ClusterSnapshot Orchestrator::Collect(uint64_t epoch) {
  ClusterSnapshot snap;
  snap.epoch = epoch;
  snap.epoch_ns = config_.epoch_ns;
  snap.slo_p99_ns = config_.slo_p99_ns;
  snap.shards.reserve(shards_.size());
  for (const auto& sp : shards_) {
    const ShardState& s = *sp;
    ShardSignal sig;
    sig.index = s.index;
    sig.up = s.up;
    sig.has_template = s.tmpl != nullptr && s.tmpl->alive();
    sig.backlog_ns = s.backlog_ns;
    sig.epoch_requests = s.epoch_requests;
    sig.epoch_lost = s.epoch_lost;
    sig.epoch_p99_ns = s.epoch_lat.count() > 0 ? s.epoch_lat.Percentile(99) : 0;
    sig.health_x1000 = s.health.score_x1000();
    for (const Managed& c : s.containers) {
      ContainerSignal cs;
      cs.shard = s.index;
      cs.id = c.id;
      cs.alive = c.engine != nullptr && c.engine->alive();
      cs.p99_ns = c.window.Percentile(99);
      cs.window_ops = c.window.WindowOps();
      cs.ops_per_sec = c.window.OpsPerSec();
      cs.resident_frames = c.window.gauge();
      cs.faults = c.window.WindowFaults();
      cs.idle_epochs = c.idle_epochs;
      sig.containers.push_back(cs);
    }
    std::sort(sig.containers.begin(), sig.containers.end(),
              [](const ContainerSignal& a, const ContainerSignal& b) { return a.id < b.id; });
    snap.shards.push_back(std::move(sig));
  }
  return snap;
}

void Orchestrator::Chaos(uint64_t epoch) {
  for (auto& sp : shards_) {
    ShardState& s = *sp;
    if (!s.up) {
      continue;  // a dark machine consumes no chaos draws
    }
    if (s.injector.InjectMachineKill()) {
      stats_.machine_kills++;
      control_hash_ = TraceMix(control_hash_, kHashMachineKill);
      control_hash_ = TraceMix(control_hash_, s.index);
      for (Managed& c : s.containers) {
        KillAndAudit(s, c);
      }
      if (s.tmpl != nullptr) {
        if (s.tmpl->alive()) {
          s.tmpl->KillFromFault();
        }
        const OwnerId tid = s.tmpl->id();
        s.tmpl.reset();
        stats_.leaked_frames +=
            s.machine->frames().OwnedFrames(tid) + s.machine->frames().SharedFrames(tid);
      }
      s.machine.reset();
      s.up = false;
      s.down_until_epoch = epoch + 1 + config_.machine_down_epochs;
      continue;  // no per-container draws on a machine that just died
    }
    for (Managed& c : s.containers) {
      if (c.engine == nullptr || !c.engine->alive()) {
        continue;
      }
      if (s.injector.InjectContainerKill()) {
        stats_.container_kills++;
        control_hash_ = TraceMix(control_hash_, kHashContainerKill);
        control_hash_ = TraceMix(control_hash_, s.index);
        control_hash_ = TraceMix(control_hash_, c.id);
        KillAndAudit(s, c);
      }
    }
  }
}

void Orchestrator::Apply(uint64_t epoch, const std::vector<OrchAction>& actions) {
  const SimNanos boundary = (epoch + 1) * config_.epoch_ns;
  for (const OrchAction& a : actions) {
    if (a.shard >= shards_.size()) {
      continue;
    }
    ShardState& s = *shards_[a.shard];
    switch (a.kind) {
      case OrchActionKind::kScaleUp: {
        // The shard (or its template) may have died between Decide and
        // Apply — chaos overlaps the rebalance by design.
        if (!s.up || s.tmpl == nullptr || !s.tmpl->alive()) {
          break;
        }
        uint32_t alive_before = 0;
        for (const Managed& c : s.containers) {
          alive_before += (c.engine != nullptr && c.engine->alive()) ? 1 : 0;
        }
        Managed c;
        c.engine = CloneContainer(*s.tmpl);
        c.id = c.engine->id();
        c.busy_until = boundary;
        c.window = SloWindow(s.WindowConfig(config_));
        if (config_.resil.enabled) {
          c.breaker = std::make_unique<CircuitBreaker>(config_.resil);
        }
        s.containers.push_back(std::move(c));
        stats_.clones++;
        if (alive_before < config_.initial_containers) {
          stats_.replacements++;
        }
        break;
      }
      case OrchActionKind::kMigrate:
      case OrchActionKind::kDrain: {
        Managed* victim = nullptr;
        for (Managed& c : s.containers) {
          if (c.id == a.container) {
            victim = &c;
            break;
          }
        }
        ShardState* dst =
            a.dst_shard < shards_.size() ? shards_[a.dst_shard].get() : nullptr;
        // Aborted when either end died mid-rebalance (the victim under a
        // chaos strike, or a whole machine on either side).
        if (!s.up || victim == nullptr || victim->engine == nullptr ||
            !victim->engine->alive() || dst == nullptr || !dst->up) {
          stats_.migrations_aborted++;
          break;
        }
        SnapshotImage image = CheckpointContainer(*victim->engine);
        RestoreOutcome out = RestoreContainer(*dst->machine, image);
        if (!out.ok) {
          stats_.migrations_aborted++;
          break;
        }
        Managed moved;
        moved.engine = std::move(out.engine);
        moved.id = moved.engine->id();
        // The queue position and the rolling SLO history migrate with the
        // container: a hot container stays "hot" on its new machine.
        moved.busy_until = std::max(victim->busy_until, boundary);
        moved.window = victim->window;
        moved.idle_epochs = victim->idle_epochs;
        // Breaker history stays behind: it indicted the old machine, and
        // the destination machine is a different suspect.
        if (config_.resil.enabled) {
          moved.breaker = std::make_unique<CircuitBreaker>(config_.resil);
        }
        KillAndAudit(s, *victim);
        dst->containers.push_back(std::move(moved));
        if (a.kind == OrchActionKind::kDrain) {
          stats_.drains++;
        } else {
          stats_.migrations++;
        }
        break;
      }
      case OrchActionKind::kReap: {
        if (!s.up) {
          break;
        }
        for (Managed& c : s.containers) {
          if (c.id == a.container) {
            if (c.engine != nullptr && c.engine->alive()) {
              KillAndAudit(s, c);
              stats_.reaps++;
            }
            break;
          }
        }
        break;
      }
    }
  }
  // Dead entries served their purpose (mid-rebalance victim detection);
  // drop them so the next epoch's snapshot only lists real containers.
  for (auto& sp : shards_) {
    auto& v = sp->containers;
    v.erase(std::remove_if(v.begin(), v.end(),
                           [](const Managed& c) {
                             return c.engine == nullptr || !c.engine->alive();
                           }),
            v.end());
  }
}

void Orchestrator::FinishEpoch(uint64_t epoch) {
  (void)epoch;
  Histogram merged;
  uint64_t requests = 0;
  uint64_t lost = 0;
  for (const auto& sp : shards_) {
    merged.Merge(sp->epoch_lat);
    requests += sp->epoch_requests;
    lost += sp->epoch_lost;
    cluster_hash_ = TraceMix(cluster_hash_, sp->serve_hash);
  }
  const uint64_t p99 = merged.count() > 0 ? merged.Percentile(99) : 0;
  stats_.epochs++;
  stats_.requests += requests;
  stats_.lost += lost;
  stats_.served += requests - lost;
  if (p99 <= config_.slo_p99_ns && lost == 0) {
    stats_.epochs_slo_met++;
  }
}

void Orchestrator::KillAndAudit(ShardState& shard, Managed& c) {
  if (c.engine == nullptr) {
    return;
  }
  if (c.engine->alive()) {
    c.engine->KillFromFault();
  }
  const OwnerId id = c.engine->id();
  c.engine.reset();
  // The reclaim contract: after a kill the owner holds nothing — no owned
  // frames, no CoW shares. Anything left is a leak the bench hard-fails on.
  stats_.leaked_frames +=
      shard.machine->frames().OwnedFrames(id) + shard.machine->frames().SharedFrames(id);
}

}  // namespace cki
