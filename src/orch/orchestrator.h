// Deterministic cluster orchestrator: the "cloud region in a process"
// control plane (DESIGN.md §12).
//
// An Orchestrator owns a fleet of per-shard machines (one SimCluster
// shard each) plus the control loop that runs on top of them in fixed
// control epochs of `epoch_ns` simulated nanoseconds:
//
//   1. SERVE (parallel, via SimCluster::Run) — every shard drains its
//      open-loop ArrivalProcess for the epoch window and serves each
//      request on one of its containers (round-robin over a per-container
//      busy_until queue), recording request latency into per-container
//      SloWindows. Arrivals are a pure function of (root seed, shard
//      index, simulated time) — traffic never slows down because the
//      service did.
//   2. CONTROL (serial, on the caller thread, shard-index order) —
//      collect a ClusterSnapshot of load signals, let the policy decide,
//      overlap deterministic chaos (FaultInjector machine/container
//      kills), then apply the surviving actions: CloneContainer on
//      scale-up, CKISNAP1 checkpoint/restore live migration off hot
//      shards, kill/reclaim on reap. Every kill is audited for leaked
//      frames on the spot.
//
// Determinism contract (DESIGN.md §9 lifted to the control plane): the
// serve phase touches only shard-local state; everything cross-shard
// (signals, decisions, chaos draws, migrations) happens serially in
// (epoch, shard index, container id) order. The control trace hash and
// cluster trace hash are therefore bit-identical at any --threads value.
//
// Thread-safety: none — construct, Run once, read results from one
// thread. Worker threads live only inside the serve phases.
#ifndef SRC_ORCH_ORCHESTRATOR_H_
#define SRC_ORCH_ORCHESTRATOR_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/cluster/sim_cluster.h"
#include "src/fault/fault_injector.h"
#include "src/fault/gray_fault.h"
#include "src/net/load_gen.h"
#include "src/obs/metrics_registry.h"
#include "src/orch/policy.h"
#include "src/resil/resilience.h"
#include "src/runtime/runtime.h"

namespace cki {

struct OrchConfig {
  uint32_t shards = 4;
  uint32_t threads = 1;  // serve-phase workers; never changes results
  uint64_t root_seed = 1;

  uint32_t epochs = 48;
  SimNanos epoch_ns = 1'000'000;   // 1 simulated ms per control epoch
  SimNanos slo_p99_ns = 400'000;   // request p99 target

  RuntimeKind kind = RuntimeKind::kCki;
  uint64_t cki_segment_pages = 1024;  // small segments for dense fleets
  uint32_t initial_containers = 2;    // per shard at boot
  uint32_t template_warm_pages = 64;  // template working set (pages)

  // Per-shard open-loop traffic: the arrival seed comes from
  // SplitSeed(root_seed, shard), the rate is base * (1 + skew * shard)
  // so later shards run hotter and the policy has real imbalance to fix.
  ArrivalConfig arrivals = ArrivalConfig::DiurnalBurst(/*seed=*/0, /*base=*/120'000);
  double shard_load_skew = 0;

  // Deterministic chaos, drawn once per epoch per machine / container
  // from the shard's FaultInjector (sites 8 and 9).
  double machine_kill_rate = 0;
  double container_kill_rate = 0;
  uint32_t machine_down_epochs = 4;  // epochs a killed machine stays dark

  // Per-request service work: syscalls plus this much extra app compute,
  // jittered deterministically per request in [min, max).
  SimNanos request_compute_min_ns = 1'000;
  SimNanos request_compute_max_ns = 5'000;

  // Gray-failure chaos (src/fault/gray_fault.h, sites 10-13): per-epoch
  // per-machine episode-start rates; `gray` holds the episode magnitudes
  // (its seed is overridden with SplitSeed(shard_seed, 3) per shard).
  double latency_inflation_rate = 0;
  double throughput_throttle_rate = 0;
  double packet_blackhole_rate = 0;
  double syscall_jitter_rate = 0;
  GrayConfig gray;

  // Request resilience layer (src/resil, DESIGN.md §13). enabled=false is
  // the crash-only baseline: no deadlines, no retries, no hedges, no
  // breakers, no shedding — a blackholed request is simply lost and a
  // gray machine keeps its full traffic share.
  ResilConfig resil;
};

// Fleet-level outcome of one orchestrated run.
struct OrchStats {
  uint64_t requests = 0;       // open-loop arrivals minted
  uint64_t served = 0;
  uint64_t lost = 0;           // arrivals with no machine/container to run on
  uint64_t epochs = 0;
  uint64_t epochs_slo_met = 0; // epoch p99 <= target and nothing lost
  uint64_t overall_p99_ns = 0; // p99 over every served request

  uint64_t clones = 0;           // scale-up cold starts (CoW clones)
  uint64_t template_boots = 0;   // full cold boots (initial + rebuilds)
  uint64_t migrations = 0;       // completed checkpoint->restore moves
  uint64_t migrations_aborted = 0;  // victim died mid-rebalance
  uint64_t reaps = 0;
  uint64_t machine_kills = 0;
  uint64_t container_kills = 0;
  uint64_t replacements = 0;   // scale-ups on shards below their minimum
  uint64_t leaked_frames = 0;  // nonzero means a reclaim path is broken

  // Gray failures + resilience (DESIGN.md §13).
  uint64_t gray_episodes = 0;  // degradation episodes opened fleet-wide
  uint64_t blackholed = 0;     // request attempts swallowed by blackholes
  uint64_t drains = 0;         // containers moved off gray machines
  uint64_t probes = 0;         // health probes executed
  uint64_t retries = 0;        // re-issued attempts, each paid from budget
  uint64_t retries_denied = 0; // retry wanted but the bucket was dry
  uint64_t hedges = 0;         // hedge requests actually fired
  uint64_t hedge_wins = 0;     // hedge finished before the primary
  uint64_t hedges_cancelled = 0;  // primary beat the hedge delay
  uint64_t sheds = 0;          // deadline-infeasible arrivals shed on admission
  uint64_t deadline_misses = 0;   // served, but past the deadline
  uint64_t breaker_opens = 0;
  uint64_t breaker_short_circuits = 0;

  double SloAttainment() const {
    return epochs > 0 ? static_cast<double>(epochs_slo_met) / static_cast<double>(epochs) : 0;
  }
  // Cold starts (clones + template boots) per 1000 requests.
  double ColdStartPerK() const {
    return requests > 0
               ? 1000.0 * static_cast<double>(clones + template_boots) /
                     static_cast<double>(requests)
               : 0;
  }
};

class Orchestrator {
 public:
  Orchestrator(const OrchConfig& config, const OrchPolicy& policy);
  ~Orchestrator();

  Orchestrator(const Orchestrator&) = delete;
  Orchestrator& operator=(const Orchestrator&) = delete;

  // Runs the full control loop (config.epochs epochs). Call once.
  OrchStats Run();

  const OrchConfig& config() const { return config_; }
  const OrchStats& stats() const { return stats_; }

  // FNV-1a digest of every policy decision and chaos strike, in
  // (epoch, shard index, container id) order.
  uint64_t control_hash() const { return control_hash_; }
  // FNV-1a digest of every epoch's ClusterSnapshot plus each shard's
  // serve-phase event stream, folded in shard-index order.
  uint64_t cluster_hash() const { return cluster_hash_; }
  // The two digests combined — the one number benches compare across
  // thread counts.
  uint64_t CombinedHash() const;

  // Fleet metrics (counters + request-latency histograms), merged across
  // shards in index order after Run.
  const MetricsRegistry& metrics() const { return metrics_; }
  // The last control epoch's snapshot (policy inputs; for tests/benches).
  const ClusterSnapshot& last_snapshot() const { return last_snapshot_; }

 private:
  struct Managed;     // one serving container
  struct ShardState;  // one machine + its fleet slice

  void BootShard(uint32_t index);                 // fresh machine + template
  void ServeEpoch(uint64_t epoch);                // parallel phase
  // One arrival through the resilience loop (shard-local; runs on the
  // serve-phase worker): pick -> shed check -> blackhole/retry -> serve
  // -> hedge -> breaker/budget bookkeeping.
  void ServeArrival(ShardState& s, SimNanos arrival, SimNanos jitter_span);
  // Round-robin over live containers; optionally skips open breakers and
  // one excluded container (hedge placement). nullptr when nothing fits.
  Managed* PickContainer(ShardState& s, SimNanos at, bool respect_breakers,
                         const Managed* exclude);
  // Executes the canonical request on `c` starting at `at`; returns the
  // gray-degraded service time (> 0), or 0 when the container failed it.
  SimNanos RunRequest(ShardState& s, Managed& c, SimNanos at, SimNanos jitter_span);
  ClusterSnapshot Collect(uint64_t epoch);        // serial signal sweep
  void Chaos(uint64_t epoch);                     // deterministic strikes
  void Apply(uint64_t epoch, const std::vector<OrchAction>& actions);
  void FinishEpoch(uint64_t epoch);               // SLO accounting + hashes

  // Kills `c`'s engine (if alive) and audits the reclaim; folds any
  // leaked frame count into stats_.leaked_frames.
  void KillAndAudit(ShardState& shard, Managed& c);

  OrchConfig config_;
  const OrchPolicy& policy_;
  SimCluster cluster_;
  std::vector<std::unique_ptr<ShardState>> shards_;
  OrchStats stats_;
  MetricsRegistry metrics_;
  ClusterSnapshot last_snapshot_;
  uint64_t control_hash_;
  uint64_t cluster_hash_;
  bool ran_ = false;
};

}  // namespace cki

#endif  // SRC_ORCH_ORCHESTRATOR_H_
