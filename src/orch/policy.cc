#include "src/orch/policy.h"

#include <algorithm>

#include "src/obs/trace_context.h"

namespace cki {

uint64_t ClusterSnapshot::Hash() const {
  uint64_t h = kTraceFnvBasis;
  h = TraceMix(h, epoch);
  h = TraceMix(h, epoch_ns);
  h = TraceMix(h, slo_p99_ns);
  for (const ShardSignal& s : shards) {
    h = TraceMix(h, s.index);
    h = TraceMix(h, s.up ? 1 : 0);
    h = TraceMix(h, s.has_template ? 1 : 0);
    h = TraceMix(h, s.backlog_ns);
    h = TraceMix(h, s.epoch_requests);
    h = TraceMix(h, s.epoch_lost);
    h = TraceMix(h, s.epoch_p99_ns);
    h = TraceMix(h, s.health_x1000);
    for (const ContainerSignal& c : s.containers) {
      h = TraceMix(h, c.id);
      h = TraceMix(h, c.alive ? 1 : 0);
      h = TraceMix(h, c.p99_ns);
      h = TraceMix(h, c.window_ops);
      h = TraceMix(h, c.resident_frames);
      h = TraceMix(h, c.faults);
      h = TraceMix(h, c.idle_epochs);
    }
  }
  return h;
}

namespace {

uint32_t AliveCount(const ShardSignal& s) {
  uint32_t n = 0;
  for (const ContainerSignal& c : s.containers) {
    n += c.alive ? 1 : 0;
  }
  return n;
}

// Destination for a migration: the least-backlogged up shard with room,
// excluding `src` and (when a gray threshold is set) gray shards — moving
// work onto a degraded machine would re-create the problem elsewhere.
// Ties break toward the lower shard index, so the choice is a pure
// function of the snapshot. Returns false when no shard fits.
bool PickDestination(const ClusterSnapshot& snap, uint32_t src, uint32_t max_containers,
                     uint32_t gray_health_x1000, uint32_t* dst) {
  bool found = false;
  SimNanos best_backlog = 0;
  uint64_t best_ops = 0;
  for (const ShardSignal& s : snap.shards) {
    if (s.index == src || !s.up || AliveCount(s) >= max_containers ||
        (gray_health_x1000 > 0 && s.health_x1000 < gray_health_x1000)) {
      continue;
    }
    uint64_t ops = s.epoch_requests;
    if (!found || s.backlog_ns < best_backlog ||
        (s.backlog_ns == best_backlog && ops < best_ops)) {
      found = true;
      best_backlog = s.backlog_ns;
      best_ops = ops;
      *dst = s.index;
    }
  }
  return found;
}

}  // namespace

std::vector<OrchAction> StaticPolicy::Decide(const ClusterSnapshot& snap) const {
  std::vector<OrchAction> actions;
  for (const ShardSignal& s : snap.shards) {
    if (!s.up) {
      continue;
    }
    for (uint32_t i = AliveCount(s); i < target_; ++i) {
      actions.push_back(OrchAction{OrchActionKind::kScaleUp, s.index, 0, 0});
    }
  }
  return actions;
}

std::vector<OrchAction> ReactivePolicy::Decide(const ClusterSnapshot& snap) const {
  std::vector<OrchAction> actions;
  for (const ShardSignal& s : snap.shards) {
    if (!s.up) {
      continue;
    }
    const uint32_t alive = AliveCount(s);
    // Gray: alive but probing far slower than its healthy self. Drain
    // containers toward healthy shards instead of feeding it more work.
    const bool gray =
        config_.gray_health_x1000 > 0 && s.health_x1000 < config_.gray_health_x1000;
    if (gray) {
      // Never drain below the shard minimum: arrivals are shard-local, so
      // an emptied gray machine would lose its whole traffic share — the
      // remaining containers serve slowly, which still beats not at all.
      uint32_t can_drain =
          alive > config_.min_containers ? alive - config_.min_containers : 0;
      if (can_drain > config_.drain_per_epoch) {
        can_drain = config_.drain_per_epoch;
      }
      uint32_t drained = 0;
      for (const ContainerSignal& c : s.containers) {
        if (drained >= can_drain) {
          break;
        }
        uint32_t dst = 0;
        if (!c.alive ||
            !PickDestination(snap, s.index, config_.max_containers,
                             config_.gray_health_x1000, &dst)) {
          continue;
        }
        actions.push_back(OrchAction{OrchActionKind::kDrain, s.index, c.id, dst});
        drained++;
      }
      // No scale-up, no reap, no hot handling on a gray shard: shrink it
      // and let the health probe decide when it has earned traffic back.
      continue;
    }
    const SimNanos hot_backlog =
        snap.epoch_ns * config_.hot_backlog_permille / 1000;
    const bool hot = s.epoch_p99_ns > snap.slo_p99_ns || s.backlog_ns > hot_backlog;
    // Saturation by rolling rate: capacity is per serving container.
    double rate = 0;
    for (const ContainerSignal& c : s.containers) {
      rate += c.alive ? c.ops_per_sec : 0;
    }
    const bool saturated =
        alive > 0 && rate > config_.capacity_ops_per_sec * static_cast<double>(alive);

    // Reaps first (container-ordered): quiet shards shed idle capacity.
    uint32_t reapable = alive > config_.min_containers ? alive - config_.min_containers : 0;
    if (!hot && !saturated) {
      for (const ContainerSignal& c : s.containers) {
        if (reapable == 0) {
          break;
        }
        if (c.alive && c.idle_epochs >= config_.reap_idle_epochs) {
          actions.push_back(OrchAction{OrchActionKind::kReap, s.index, c.id, 0});
          reapable--;
        }
      }
    }

    // Replacement + scale-up: dead or under-min shards are refilled; hot
    // or saturated shards grow by one container per epoch.
    uint32_t want = std::max(alive, config_.min_containers);
    if ((hot || saturated) && want < config_.max_containers) {
      want++;
    }
    for (uint32_t i = alive; i < want; ++i) {
      actions.push_back(OrchAction{OrchActionKind::kScaleUp, s.index, 0, 0});
    }

    // A shard already at max that is still hot moves its busiest
    // container to the least-loaded shard with room.
    if ((hot || saturated) && alive >= config_.max_containers) {
      uint32_t dst = 0;
      if (PickDestination(snap, s.index, config_.max_containers, config_.gray_health_x1000,
                          &dst)) {
        const ContainerSignal* busiest = nullptr;
        for (const ContainerSignal& c : s.containers) {
          if (c.alive && (busiest == nullptr || c.window_ops > busiest->window_ops)) {
            busiest = &c;
          }
        }
        if (busiest != nullptr) {
          actions.push_back(
              OrchAction{OrchActionKind::kMigrate, s.index, busiest->id, dst});
        }
      }
    }
  }
  return actions;
}

}  // namespace cki
