// Lifecycle, scheduling, and syscall layer of the model guest kernel.
#include "src/guest/guest_kernel.h"

#include <algorithm>
#include <cassert>

#include "src/obs/trace_scope.h"

#include "src/hw/pte.h"

namespace cki {

std::string_view HypercallOpName(HypercallOp op) {
  switch (op) {
    case HypercallOp::kNop:
      return "nop";
    case HypercallOp::kPauseVcpu:
      return "pause_vcpu";
    case HypercallOp::kSetTimer:
      return "set_timer";
    case HypercallOp::kSendIpi:
      return "send_ipi";
    case HypercallOp::kVirtioKick:
      return "virtio_kick";
    case HypercallOp::kYield:
      return "yield";
    case HypercallOp::kLogByte:
      return "log_byte";
    case HypercallOp::kCount:
      break;
  }
  return "unknown";
}

GuestKernel::GuestKernel(SimContext& ctx, EnginePort& port)
    : ctx_(ctx),
      port_(port),
      editor_([&port](uint64_t pa) { return port.ReadPte(pa); },
              [&port](int level) { return port.AllocPtp(level); },
              [&port](uint64_t pte_pa, uint64_t value, int level, uint64_t va) {
                return port.StorePte(pte_pa, value, level, va);
              }) {}

SimNanos GuestKernel::HandlerCost(Sys s) const {
  const CostModel& c = ctx_.cost();
  // Handler *body* beyond the generic 40 ns minimum charged with the entry
  // path. Values give native lmbench-like absolute latencies; the paper
  // compares containers by ratio, which the engine mechanisms produce.
  switch (s) {
    case Sys::kGetpid:
    case Sys::kGettimeofday:
      return 0;
    case Sys::kRead:
    case Sys::kWrite:
      return 60;
    case Sys::kPread:
    case Sys::kPwrite:
      return 70;
    case Sys::kOpen:
      return 260;
    case Sys::kClose:
      return 110;
    case Sys::kStat:
      return 210;
    case Sys::kFstat:
      return 110;
    case Sys::kFsync:
      return 150;
    case Sys::kMmap:
      return 260;
    case Sys::kMunmap:
      return 210;
    case Sys::kMprotect:
      return 160;
    case Sys::kBrk:
      return 60;
    case Sys::kFork:
      return 24960;  // dup_mm, task struct, scheduler insertion
    case Sys::kExecve:
      return 29960;  // binary load, mm replacement
    case Sys::kExit:
      return 7960;   // task teardown beyond page-table work
    case Sys::kWaitpid:
      return 160;
    case Sys::kPipe:
      return 360;
    case Sys::kSocketpair:
      return 410;
    case Sys::kSchedYield:
      return 110;
    case Sys::kEpollWait:
      return 260;
    case Sys::kSendto:
    case Sys::kRecvfrom:
      return c.net_stack_per_packet;
    case Sys::kListen:
      return 310;
    case Sys::kAccept:
      return 460;
    case Sys::kConnect:
      return c.net_stack_per_packet;  // handshake traverses the stack
    case Sys::kCount:
      break;
  }
  return 0;
}

int GuestKernel::InstallNetSocket(int conn_id) {
  Process& proc = current();
  int fdn = proc.AllocFd();
  proc.fds[static_cast<size_t>(fdn)] = FileDesc{.kind = FdKind::kNetSocket, .net_conn = conn_id};
  return fdn;
}

int GuestKernel::NewProcessSlot() {
  int pid = next_pid_++;
  auto proc = std::make_unique<Process>();
  proc->pid = pid;
  proc->asid = next_asid_++;
  procs_.Adopt(std::move(proc));
  return pid;
}

int GuestKernel::CreateInitProcess() {
  int pid = NewProcessSlot();
  Process& proc = *procs_.Get(pid);
  proc.pt_root = NewAddressSpace();
  proc.vmas.Insert(Vma{.start = kUserTextBase,
                       .end = kUserTextBase + kTextPages * kPageSize,
                       .prot = kProtRead | kProtExec,
                       .kind = VmaKind::kText});
  proc.vmas.Insert(Vma{.start = kUserStackTop - kStackPages * kPageSize,
                       .end = kUserStackTop,
                       .prot = kProtRead | kProtWrite,
                       .kind = VmaKind::kStack});
  // stdin/stdout/stderr on the console inode.
  int console = tmpfs_.OpenOrCreate("/dev/console");
  proc.fds.resize(3);
  for (int i = 0; i < 3; ++i) {
    proc.fds[static_cast<size_t>(i)] = FileDesc{.kind = FdKind::kTmpfsFile, .ino = console};
  }
  if (current_pid_ < 0) {
    current_pid_ = pid;
    port_.LoadAddressSpace(proc.pt_root, proc.asid);
  }
  return pid;
}

Process* GuestKernel::process(int pid) { return procs_.Get(pid); }

Process& GuestKernel::current() {
  Process* p = process(current_pid_);
  assert(p != nullptr && "no current process");
  return *p;
}

void GuestKernel::SwitchTo(int pid) {
  Process* next = process(pid);
  assert(next != nullptr && next->state == ProcState::kRunnable);
  if (pid == current_pid_) {
    return;
  }
  ctx_.Charge(ctx_.cost().context_switch_kernel, PathEvent::kContextSwitch);
  current_pid_ = pid;
  port_.LoadAddressSpace(next->pt_root, next->asid);
}

int GuestKernel::Schedule() {
  // Round robin: next runnable pid after the current one.
  std::vector<int> pids;
  pids.reserve(procs_.size());
  procs_.ForEach([&pids](Process& proc) {
    if (proc.state == ProcState::kRunnable) {
      pids.push_back(proc.pid);
    }
  });
  if (pids.empty()) {
    return -1;
  }
  // pids are ascending by construction (pid-indexed slab) — no sort.
  auto it = std::upper_bound(pids.begin(), pids.end(), current_pid_);
  int next = (it == pids.end()) ? pids.front() : *it;
  SwitchTo(next);
  return next;
}

void GuestKernel::KillAllProcesses() {
  // Pure data-structure teardown; the frames themselves are swept by the
  // engine's OwnerId reclaim, and the dying container's page tables are
  // never walked again.
  procs_.ForEach([](Process& proc) {
    proc.fds.clear();
    proc.vmas.Clear();
    proc.pt_root = 0;
    proc.state = ProcState::kZombie;
  });
  current_pid_ = -1;
  channels_.clear();
  page_refs_.clear();
  file_pages_.clear();
  kernel_image_pas_.clear();
}

std::vector<int> GuestKernel::LivePids() const {
  std::vector<int> pids;
  procs_.ForEach([&pids](Process& proc) {
    if (proc.pt_root != 0) {
      pids.push_back(proc.pid);
    }
  });
  return pids;
}

size_t GuestKernel::live_processes() const {
  size_t n = 0;
  procs_.ForEach([&n](Process& proc) {
    if (proc.state == ProcState::kRunnable || proc.state == ProcState::kBlocked) {
      n++;
    }
  });
  return n;
}

SyscallResult GuestKernel::HandleSyscall(const SyscallRequest& req) {
  TraceScope obs_scope(ctx_, SysName(req.no));
  syscalls_++;
  ctx_.ChargeWork(HandlerCost(req.no));
  Process& proc = current();
  switch (req.no) {
    case Sys::kGetpid:
      return {proc.pid};
    case Sys::kGettimeofday:
      return {static_cast<int64_t>(ctx_.clock().now() / 1000)};
    case Sys::kRead:
      return SysRead(proc, req);
    case Sys::kWrite:
      return SysWrite(proc, req);
    case Sys::kPread:
      return SysRead(proc, req);
    case Sys::kPwrite:
      return SysWrite(proc, req);
    case Sys::kOpen:
      return SysOpen(proc, req);
    case Sys::kClose:
      return SysClose(proc, req);
    case Sys::kStat:
      return SysStat(proc, req);
    case Sys::kFstat:
      return SysStat(proc, req);
    case Sys::kFsync:
      return SysFsync(proc, req);
    case Sys::kMmap:
      return SysMmap(proc, req);
    case Sys::kMunmap:
      return SysMunmap(proc, req);
    case Sys::kMprotect:
      return SysMprotect(proc, req);
    case Sys::kBrk:
      return SysBrk(proc, req);
    case Sys::kFork:
      return SysFork(proc);
    case Sys::kExecve:
      return SysExecve(proc);
    case Sys::kExit:
      return SysExit(proc, req);
    case Sys::kWaitpid:
      return SysWaitpid(proc, req);
    case Sys::kPipe:
      return SysPipe(proc);
    case Sys::kSocketpair:
      return SysSocketpair(proc);
    case Sys::kSchedYield:
      Schedule();
      return {0};
    case Sys::kEpollWait:
      return SysEpollWait(proc, req);
    case Sys::kSendto:
      return SysSendRecv(proc, req, /*send=*/true);
    case Sys::kRecvfrom:
      return SysSendRecv(proc, req, /*send=*/false);
    case Sys::kListen:
      return SysListen(proc, req);
    case Sys::kAccept:
      return SysAccept(proc, req);
    case Sys::kConnect:
      return SysConnect(proc, req);
    case Sys::kCount:
      break;
  }
  return {kEINVAL};
}

// --- file + ipc syscalls -----------------------------------------------

SyscallResult GuestKernel::SysRead(Process& proc, const SyscallRequest& req) {
  FileDesc* fd = proc.fd(static_cast<int>(req.arg0));
  if (fd == nullptr) {
    return {kEBADF};
  }
  uint64_t bytes = req.arg1;
  switch (fd->kind) {
    case FdKind::kTmpfsFile: {
      const TmpfsInode* node = tmpfs_.Get(fd->ino);
      if (node == nullptr) {
        return {kEBADF};
      }
      uint64_t offset = (req.no == Sys::kPread) ? req.arg2 : fd->offset;
      uint64_t avail = (offset < node->size) ? node->size - offset : 0;
      uint64_t got = std::min(bytes, avail);
      ctx_.ChargeWork(ctx_.cost().copy_per_4k * ((got + kPageSize - 1) / kPageSize));
      if (req.no != Sys::kPread) {
        fd->offset += got;
      }
      return {static_cast<int64_t>(got)};
    }
    case FdKind::kChannelRead:
    case FdKind::kChannelBoth: {
      auto it = channels_.find(fd->channel);
      if (it == channels_.end()) {
        return {kEBADF};
      }
      uint64_t got = it->second.Read(bytes);
      if (got == 0) {
        return {kEAGAIN};  // caller (or the workload driver) blocks/yields
      }
      ctx_.ChargeWork(ctx_.cost().copy_per_4k * ((got + kPageSize - 1) / kPageSize));
      return {static_cast<int64_t>(got)};
    }
    case FdKind::kNetSocket:
      return SysSendRecv(proc, req, /*send=*/false);
    case FdKind::kBlkFile: {
      if (blkfs_ == nullptr) {
        return {kEBADF};
      }
      uint64_t offset = (req.no == Sys::kPread) ? req.arg2 : fd->offset;
      int64_t got = blkfs_->Read(fd->ino - kBlkfsInoBase, offset, bytes, fd->direct);
      if (got < 0) {
        return {got};
      }
      if (!fd->direct) {
        // Copy-out from the page cache; O_DIRECT lands in the user buffer.
        ctx_.ChargeWork(ctx_.cost().copy_per_4k *
                        ((static_cast<uint64_t>(got) + kPageSize - 1) / kPageSize));
      }
      if (req.no != Sys::kPread) {
        fd->offset += static_cast<uint64_t>(got);
      }
      return {got};
    }
    default:
      return {kEBADF};
  }
}

SyscallResult GuestKernel::SysWrite(Process& proc, const SyscallRequest& req) {
  FileDesc* fd = proc.fd(static_cast<int>(req.arg0));
  if (fd == nullptr) {
    return {kEBADF};
  }
  uint64_t bytes = req.arg1;
  switch (fd->kind) {
    case FdKind::kTmpfsFile: {
      TmpfsInode* node = tmpfs_.Get(fd->ino);
      if (node == nullptr) {
        return {kEBADF};
      }
      uint64_t offset = (req.no == Sys::kPwrite) ? req.arg2 : fd->offset;
      uint64_t new_end = offset + bytes;
      if (new_end > node->size) {
        int64_t new_blocks = tmpfs_.Resize(fd->ino, new_end);
        if (new_blocks > 0) {
          // Page-cache allocation for the fresh blocks.
          ctx_.ChargeWork(ctx_.cost().page_zero_4k * static_cast<uint64_t>(new_blocks));
        }
      }
      ctx_.ChargeWork(ctx_.cost().copy_per_4k * ((bytes + kPageSize - 1) / kPageSize));
      if (req.no != Sys::kPwrite) {
        fd->offset += bytes;
      }
      return {static_cast<int64_t>(bytes)};
    }
    case FdKind::kChannelWrite:
    case FdKind::kChannelBoth: {
      auto it = channels_.find(fd->channel);
      if (it == channels_.end()) {
        return {kEBADF};
      }
      uint64_t put = it->second.Write(bytes);
      if (put == 0) {
        return {kEAGAIN};
      }
      ctx_.ChargeWork(ctx_.cost().copy_per_4k * ((put + kPageSize - 1) / kPageSize));
      return {static_cast<int64_t>(put)};
    }
    case FdKind::kNetSocket:
      return SysSendRecv(proc, req, /*send=*/true);
    case FdKind::kBlkFile: {
      if (blkfs_ == nullptr) {
        return {kEBADF};
      }
      uint64_t offset = (req.no == Sys::kPwrite) ? req.arg2 : fd->offset;
      int64_t put = blkfs_->Write(fd->ino - kBlkfsInoBase, offset, bytes, fd->direct);
      if (put < 0) {
        return {put};
      }
      if (!fd->direct) {
        ctx_.ChargeWork(ctx_.cost().copy_per_4k *
                        ((static_cast<uint64_t>(put) + kPageSize - 1) / kPageSize));
      }
      if (req.no != Sys::kPwrite) {
        fd->offset += static_cast<uint64_t>(put);
      }
      return {put};
    }
    default:
      return {kEBADF};
  }
}

SyscallResult GuestKernel::SysOpen(Process& proc, const SyscallRequest& req) {
  // arg0: a small integer naming the file (paths are interned by callers).
  // arg1: open flags (kOpenBlkfs routes to the block filesystem).
  if ((req.arg1 & kOpenBlkfs) != 0) {
    if (blkfs_ == nullptr) {
      return {kENOENT};
    }
    int64_t ino = blkfs_->Open(req.arg0);
    if (ino < 0) {
      return {ino};
    }
    int fdn = proc.AllocFd();
    proc.fds[static_cast<size_t>(fdn)] =
        FileDesc{.kind = FdKind::kBlkFile,
                 .ino = kBlkfsInoBase + static_cast<int>(ino),
                 .direct = (req.arg1 & kOpenDirect) != 0};
    return {fdn};
  }
  std::string path = "/file" + std::to_string(req.arg0);
  int ino = tmpfs_.OpenOrCreate(path);
  int fdn = proc.AllocFd();
  proc.fds[static_cast<size_t>(fdn)] = FileDesc{.kind = FdKind::kTmpfsFile, .ino = ino};
  return {fdn};
}

void GuestKernel::CloseFd(Process& proc, FileDesc& fd) {
  (void)proc;
  if (fd.kind == FdKind::kChannelRead || fd.kind == FdKind::kChannelWrite ||
      fd.kind == FdKind::kChannelBoth) {
    auto it = channels_.find(fd.channel);
    if (it != channels_.end() && it->second.Release()) {
      channels_.erase(it);
    }
  } else if (fd.kind == FdKind::kNetSocket && net_ != nullptr) {
    net_->CloseConn(fd.net_conn);
  }
  fd = FileDesc{};
}

SyscallResult GuestKernel::SysClose(Process& proc, const SyscallRequest& req) {
  FileDesc* fd = proc.fd(static_cast<int>(req.arg0));
  if (fd == nullptr) {
    return {kEBADF};
  }
  CloseFd(proc, *fd);
  return {0};
}

SyscallResult GuestKernel::SysStat(Process& proc, const SyscallRequest& req) {
  if (req.no == Sys::kFstat) {
    FileDesc* fd = proc.fd(static_cast<int>(req.arg0));
    if (fd == nullptr) {
      return {kEBADF};
    }
    if (fd->kind == FdKind::kBlkFile) {
      return blkfs_ != nullptr ? SyscallResult{blkfs_->FileSize(fd->ino - kBlkfsInoBase)}
                               : SyscallResult{kEBADF};
    }
    if (fd->kind != FdKind::kTmpfsFile) {
      return {kEBADF};
    }
    return {static_cast<int64_t>(tmpfs_.Get(fd->ino)->size)};
  }
  std::string path = "/file" + std::to_string(req.arg0);
  int ino = tmpfs_.Lookup(path);
  if (ino < 0) {
    return {kENOENT};
  }
  return {static_cast<int64_t>(tmpfs_.Get(ino)->size)};
}

SyscallResult GuestKernel::SysFsync(Process& proc, const SyscallRequest& req) {
  FileDesc* fd = proc.fd(static_cast<int>(req.arg0));
  if (fd == nullptr) {
    return {kEBADF};
  }
  if (fd->kind == FdKind::kBlkFile) {
    if (blkfs_ == nullptr) {
      return {kEBADF};
    }
    return {blkfs_->Fsync(fd->ino - kBlkfsInoBase)};
  }
  // tmpfs and channels are memory-backed: nothing to make durable.
  return {0};
}

SyscallResult GuestKernel::SysPipe(Process& proc) {
  int ch = next_channel_++;
  channels_.emplace(ch, IpcChannel(ChannelKind::kPipe));
  IpcChannel& channel = channels_.at(ch);
  channel.AddRef();
  channel.AddRef();
  int rfd = proc.AllocFd();
  proc.fds[static_cast<size_t>(rfd)] = FileDesc{.kind = FdKind::kChannelRead, .channel = ch};
  int wfd = proc.AllocFd();
  proc.fds[static_cast<size_t>(wfd)] = FileDesc{.kind = FdKind::kChannelWrite, .channel = ch};
  // Encodes both fds: rfd | wfd << 16 (test convenience).
  return {static_cast<int64_t>(rfd) | (static_cast<int64_t>(wfd) << 16)};
}

SyscallResult GuestKernel::SysSocketpair(Process& proc) {
  int ch = next_channel_++;
  channels_.emplace(ch, IpcChannel(ChannelKind::kUnixSocket));
  IpcChannel& channel = channels_.at(ch);
  channel.AddRef();
  channel.AddRef();
  int fd0 = proc.AllocFd();
  proc.fds[static_cast<size_t>(fd0)] = FileDesc{.kind = FdKind::kChannelBoth, .channel = ch};
  int fd1 = proc.AllocFd();
  proc.fds[static_cast<size_t>(fd1)] = FileDesc{.kind = FdKind::kChannelBoth, .channel = ch};
  return {static_cast<int64_t>(fd0) | (static_cast<int64_t>(fd1) << 16)};
}

SyscallResult GuestKernel::SysEpollWait(Process& proc, const SyscallRequest& req) {
  (void)proc;
  (void)req;
  if (net_ != nullptr && net_->HasPending()) {
    return {1};
  }
  // Any readable ipc channel counts as an event.
  for (const auto& [id, channel] : channels_) {
    (void)id;
    if (channel.readable()) {
      return {1};
    }
  }
  return {0};
}

SyscallResult GuestKernel::SysSendRecv(Process& proc, const SyscallRequest& req, bool send) {
  FileDesc* fd = proc.fd(static_cast<int>(req.arg0));
  if (fd == nullptr) {
    return {kEBADF};
  }
  // AF_UNIX sockets: datagram over an in-kernel channel.
  if (fd->kind == FdKind::kChannelBoth) {
    auto it = channels_.find(fd->channel);
    if (it == channels_.end()) {
      return {kEBADF};
    }
    uint64_t moved = send ? it->second.Write(req.arg1) : it->second.Read(req.arg1);
    if (moved == 0) {
      return {kEAGAIN};
    }
    return {static_cast<int64_t>(moved)};
  }
  if (fd->kind != FdKind::kNetSocket) {
    return {kEBADF};
  }
  if (net_ == nullptr) {
    return {kEINVAL};
  }
  uint64_t bytes = req.arg1;
  ctx_.ChargeWork(ctx_.cost().copy_per_4k * ((bytes + kPageSize - 1) / kPageSize));
  uint64_t moved = send ? net_->Transmit(fd->net_conn, bytes)
                        : net_->Receive(fd->net_conn, bytes);
  if (moved == 0 && !send) {
    return {kEAGAIN};
  }
  return {static_cast<int64_t>(moved)};
}

// --- network connection syscalls ----------------------------------------

SyscallResult GuestKernel::SysListen(Process& proc, const SyscallRequest& req) {
  if (net_ == nullptr) {
    return {kEINVAL};
  }
  int64_t handle = net_->Listen(static_cast<uint16_t>(req.arg0), static_cast<int>(req.arg1));
  if (handle < 0) {
    return {handle};
  }
  int fdn = proc.AllocFd();
  proc.fds[static_cast<size_t>(fdn)] =
      FileDesc{.kind = FdKind::kNetListen, .net_conn = static_cast<int>(handle)};
  return {fdn};
}

SyscallResult GuestKernel::SysAccept(Process& proc, const SyscallRequest& req) {
  FileDesc* fd = proc.fd(static_cast<int>(req.arg0));
  if (fd == nullptr || fd->kind != FdKind::kNetListen) {
    return {kEBADF};
  }
  if (net_ == nullptr) {
    return {kEINVAL};
  }
  int64_t conn = net_->Accept(fd->net_conn);
  if (conn < 0) {
    return {conn};  // kEAGAIN when the backlog is empty
  }
  return {InstallNetSocket(static_cast<int>(conn))};
}

SyscallResult GuestKernel::SysConnect(Process& proc, const SyscallRequest& req) {
  (void)proc;
  if (net_ == nullptr) {
    return {kEINVAL};
  }
  int64_t conn = net_->Connect(static_cast<int>(req.arg0), static_cast<uint16_t>(req.arg1));
  if (conn < 0) {
    return {conn};  // kECONNREFUSED on RST or dead port
  }
  return {InstallNetSocket(static_cast<int>(conn))};
}

// --- memory syscalls -----------------------------------------------------

SyscallResult GuestKernel::SysMmap(Process& proc, const SyscallRequest& req) {
  uint64_t length = (req.arg0 + kPageSize - 1) & ~(kPageSize - 1);
  uint64_t prot = req.arg1;
  bool populate = (req.arg2 & kMapPopulate) != 0;
  bool file_shared = (req.arg2 & kMapShared) != 0;
  bool file_private = (req.arg2 & kMapPrivate) != 0;
  if (length == 0 || (file_shared && file_private)) {
    return {kEINVAL};
  }
  Vma area{.prot = prot, .kind = VmaKind::kAnon};
  if (file_shared || file_private) {
    FileDesc* fd = proc.fd(static_cast<int>(req.arg3));
    if (fd == nullptr ||
        (fd->kind != FdKind::kTmpfsFile && fd->kind != FdKind::kBlkFile)) {
      return {kEBADF};
    }
    area.kind = VmaKind::kFile;
    area.file_ino = fd->ino;
    area.cow = file_private;  // private file mappings copy on first write
  }
  uint64_t start = proc.vmas.FindFree(proc.mmap_hint, length);
  area.start = start;
  area.end = start + length;
  proc.vmas.Insert(area);
  proc.mmap_hint = start + length;
  if (populate) {
    Vma* vma = proc.vmas.Find(start);
    bool oom = false;
    port_.BeginPteBatch();
    for (uint64_t va = start; va < start + length; va += kPageSize) {
      if (!FaultInPage(proc, *vma, va, /*write=*/true)) {
        oom = true;
        break;
      }
    }
    port_.EndPteBatch();
    if (oom) {
      // Unwind the partial population and fail the mmap with ENOMEM —
      // the container keeps running (blast-radius containment).
      UnmapRange(proc, start, start + length);
      proc.vmas.Remove(start, start + length);
      ctx_.RecordEvent(PathEvent::kGuestOom);
      return {kENOMEM};
    }
  }
  return {static_cast<int64_t>(start)};
}

SyscallResult GuestKernel::SysMunmap(Process& proc, const SyscallRequest& req) {
  uint64_t start = req.arg0 & ~(kPageSize - 1);
  uint64_t length = (req.arg1 + kPageSize - 1) & ~(kPageSize - 1);
  UnmapRange(proc, start, start + length);
  proc.vmas.Remove(start, start + length);
  return {0};
}

SyscallResult GuestKernel::SysMprotect(Process& proc, const SyscallRequest& req) {
  uint64_t start = req.arg0 & ~(kPageSize - 1);
  uint64_t length = (req.arg1 + kPageSize - 1) & ~(kPageSize - 1);
  uint64_t prot = req.arg2;
  if (!proc.vmas.Protect(start, start + length, prot)) {
    return {kEINVAL};
  }
  // Update already-present leaf PTEs to the new protection. Small ranges
  // update entries individually; large ranges batch (mmu-gather style).
  bool batch = length > 8 * kPageSize;
  if (batch) {
    port_.BeginPteBatch();
  }
  for (uint64_t va = start; va < start + length; va += kPageSize) {
    WalkResult walk = editor_.Walk(proc.pt_root, va);
    if (!walk.fault) {
      editor_.ProtectPage(proc.pt_root, va, PteFlagsFor(prot, /*cow_readonly=*/false), 0);
      port_.InvalidatePage(va);
    }
  }
  if (batch) {
    port_.EndPteBatch();
  }
  return {0};
}

SyscallResult GuestKernel::SysBrk(Process& proc, const SyscallRequest& req) {
  uint64_t new_brk = req.arg0;
  if (new_brk == 0) {
    return {static_cast<int64_t>(proc.brk)};
  }
  new_brk = (new_brk + kPageSize - 1) & ~(kPageSize - 1);
  if (new_brk < kUserHeapBase || new_brk >= kUserMmapBase) {
    return {kENOMEM};
  }
  if (new_brk > proc.brk) {
    proc.vmas.Insert(Vma{.start = proc.brk,
                         .end = new_brk,
                         .prot = kProtRead | kProtWrite,
                         .kind = VmaKind::kHeap});
  } else if (new_brk < proc.brk) {
    UnmapRange(proc, new_brk, proc.brk);
    proc.vmas.Remove(new_brk, proc.brk);
  }
  proc.brk = new_brk;
  return {static_cast<int64_t>(new_brk)};
}

// --- process syscalls ----------------------------------------------------

SyscallResult GuestKernel::SysFork(Process& proc) {
  int child_pid = NewProcessSlot();
  Process& child = *procs_.Get(child_pid);
  child.parent = proc.pid;
  child.pt_root = NewAddressSpace();
  child.vmas = proc.vmas;
  child.brk = proc.brk;
  child.mmap_hint = proc.mmap_hint;
  child.fds = proc.fds;
  for (FileDesc& fd : child.fds) {
    if (fd.kind == FdKind::kChannelRead || fd.kind == FdKind::kChannelWrite ||
        fd.kind == FdKind::kChannelBoth) {
      auto it = channels_.find(fd.channel);
      if (it != channels_.end()) {
        it->second.AddRef();
      }
    }
  }
  ClonePagesCow(proc, child);
  return {child_pid};
}

SyscallResult GuestKernel::SysExecve(Process& proc) {
  // Replace the address space with a fresh image.
  TeardownAddressSpace(proc);
  proc.vmas.Clear();
  proc.pt_root = NewAddressSpace();
  proc.brk = kUserHeapBase;
  proc.mmap_hint = kUserMmapBase;
  proc.vmas.Insert(Vma{.start = kUserTextBase,
                       .end = kUserTextBase + kTextPages * kPageSize,
                       .prot = kProtRead | kProtExec,
                       .kind = VmaKind::kText});
  proc.vmas.Insert(Vma{.start = kUserStackTop - kStackPages * kPageSize,
                       .end = kUserStackTop,
                       .prot = kProtRead | kProtWrite,
                       .kind = VmaKind::kStack});
  // Loading the binary populates the text pages immediately.
  Vma* text = proc.vmas.Find(kUserTextBase);
  port_.BeginPteBatch();
  for (int i = 0; i < kTextPages; ++i) {
    FaultInPage(proc, *text, kUserTextBase + static_cast<uint64_t>(i) * kPageSize, false);
  }
  port_.EndPteBatch();
  // The new image runs in the (possibly reloaded) address space.
  if (proc.pid == current_pid_) {
    port_.LoadAddressSpace(proc.pt_root, proc.asid);
  }
  return {0};
}

SyscallResult GuestKernel::SysExit(Process& proc, const SyscallRequest& req) {
  proc.exit_code = static_cast<int>(req.arg0);
  for (FileDesc& fd : proc.fds) {
    if (fd.kind != FdKind::kFree) {
      CloseFd(proc, fd);
    }
  }
  TeardownAddressSpace(proc);
  proc.vmas.Clear();
  proc.state = ProcState::kZombie;
  if (proc.pid == current_pid_) {
    current_pid_ = -1;
    Schedule();
  }
  return {0};
}

SyscallResult GuestKernel::SysWaitpid(Process& proc, const SyscallRequest& req) {
  int want = static_cast<int>(static_cast<int64_t>(req.arg0));
  // Ascending-pid sweep: with several reapable zombies, waitpid(-1)
  // returns the lowest pid — deterministic by construction.
  bool have_child = false;
  int reaped = -1;
  procs_.ForEach([&](Process& child) {
    if (child.parent != proc.pid || reaped >= 0) {
      return;
    }
    have_child = true;
    if (child.state == ProcState::kZombie && (want <= 0 || want == child.pid)) {
      reaped = child.pid;
    }
  });
  if (reaped >= 0) {
    procs_.Erase(reaped);
    return {reaped};
  }
  return {have_child ? 0 : kECHILD};
}

}  // namespace cki
