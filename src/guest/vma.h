// Virtual memory areas of a guest process.
#ifndef SRC_GUEST_VMA_H_
#define SRC_GUEST_VMA_H_

#include <cstdint>
#include <map>
#include <optional>

#include "src/guest/syscall.h"

namespace cki {

enum class VmaKind : uint8_t { kAnon, kFile, kStack, kText, kHeap };

struct Vma {
  uint64_t start = 0;  // inclusive, page aligned
  uint64_t end = 0;    // exclusive, page aligned
  uint64_t prot = kProtRead | kProtWrite;
  VmaKind kind = VmaKind::kAnon;
  bool cow = false;    // pages currently copy-on-write (after fork)
  int file_ino = -1;   // backing tmpfs inode for kFile
  uint64_t file_offset = 0;

  uint64_t pages() const { return (end - start) >> 12; }
  bool Contains(uint64_t va) const { return va >= start && va < end; }
};

// Ordered, non-overlapping list of VMAs keyed by start address.
class VmaList {
 public:
  // Inserts a new area; the caller guarantees [start,end) is free
  // (FindFree provides such ranges).
  void Insert(Vma vma) { areas_[vma.start] = vma; }

  // The VMA containing `va`, or nullptr.
  Vma* Find(uint64_t va);
  const Vma* Find(uint64_t va) const;

  // Removes areas (and trims partial overlaps) in [start, end).
  void Remove(uint64_t start, uint64_t end);

  // Updates the protection of [start, end), splitting areas as needed.
  // Returns false if part of the range is unmapped.
  bool Protect(uint64_t start, uint64_t end, uint64_t prot);

  // Lowest free gap of `bytes` at or above `hint` (page aligned).
  uint64_t FindFree(uint64_t hint, uint64_t bytes) const;

  size_t count() const { return areas_.size(); }
  const std::map<uint64_t, Vma>& areas() const { return areas_; }
  std::map<uint64_t, Vma>& mutable_areas() { return areas_; }
  void Clear() { areas_.clear(); }

 private:
  std::map<uint64_t, Vma> areas_;
};

}  // namespace cki

#endif  // SRC_GUEST_VMA_H_
