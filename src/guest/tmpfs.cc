#include "src/guest/tmpfs.h"

#include <algorithm>

#include "src/hw/phys_mem.h"

namespace cki {

int Tmpfs::OpenOrCreate(const std::string& path) {
  auto it = by_path_.find(path);
  if (it != by_path_.end()) {
    return it->second;
  }
  int ino = next_ino_++;
  by_path_[path] = ino;
  inodes_[ino] = TmpfsInode{.ino = ino, .name = path};
  return ino;
}

int Tmpfs::Lookup(const std::string& path) const {
  auto it = by_path_.find(path);
  return it == by_path_.end() ? -1 : it->second;
}

TmpfsInode* Tmpfs::Get(int ino) {
  auto it = inodes_.find(ino);
  return it == inodes_.end() ? nullptr : &it->second;
}

const TmpfsInode* Tmpfs::Get(int ino) const {
  return const_cast<Tmpfs*>(this)->Get(ino);
}

int64_t Tmpfs::Resize(int ino, uint64_t size) {
  TmpfsInode* node = Get(ino);
  if (node == nullptr) {
    return 0;
  }
  uint64_t new_blocks = (size + kPageSize - 1) / kPageSize;
  int64_t delta = static_cast<int64_t>(new_blocks) - static_cast<int64_t>(node->blocks);
  node->blocks = new_blocks;
  node->size = size;
  return delta;
}

bool Tmpfs::Unlink(const std::string& path) {
  auto it = by_path_.find(path);
  if (it == by_path_.end()) {
    return false;
  }
  inodes_.erase(it->second);
  by_path_.erase(it);
  return true;
}

std::vector<TmpfsInode> Tmpfs::SortedInodes() const {
  std::vector<TmpfsInode> nodes;
  nodes.reserve(inodes_.size());
  for (const auto& [ino, node] : inodes_) {
    (void)ino;
    nodes.push_back(node);
  }
  std::sort(nodes.begin(), nodes.end(),
            [](const TmpfsInode& a, const TmpfsInode& b) { return a.ino < b.ino; });
  return nodes;
}

void Tmpfs::Restore(std::vector<TmpfsInode> nodes, int next_ino) {
  by_path_.clear();
  inodes_.clear();
  next_ino_ = next_ino;
  for (TmpfsInode& node : nodes) {
    by_path_[node.name] = node.ino;
    inodes_[node.ino] = std::move(node);
  }
}

}  // namespace cki
