// In-memory filesystem of the model guest kernel.
//
// The paper's SQLite benchmark stores the database on tmpfs so file I/O
// exercises only the syscall path (no virtio). Files are block lists; data
// content is modeled by length, and copies are charged by the cost model at
// the call site.
#ifndef SRC_GUEST_TMPFS_H_
#define SRC_GUEST_TMPFS_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

namespace cki {

struct TmpfsInode {
  int ino = -1;
  std::string name;
  uint64_t size = 0;      // bytes
  uint64_t blocks = 0;    // 4 KiB blocks currently allocated
  uint64_t mtime_ns = 0;
};

class Tmpfs {
 public:
  // Returns the inode number; creates the file if absent.
  int OpenOrCreate(const std::string& path);

  // Looks up an existing file; -1 if absent.
  int Lookup(const std::string& path) const;

  TmpfsInode* Get(int ino);
  const TmpfsInode* Get(int ino) const;

  // Extends/truncates to `size`, returning how many 4 KiB blocks were
  // (de)allocated (the kernel charges allocation work per block).
  int64_t Resize(int ino, uint64_t size);

  bool Unlink(const std::string& path);

  size_t file_count() const { return by_path_.size(); }

  // --- snapshot support (src/snap) --------------------------------------
  // Inodes sorted by number: the canonical serialization order.
  std::vector<TmpfsInode> SortedInodes() const;
  int next_ino() const { return next_ino_; }
  // Rebuilds the filesystem from a deserialized inode list (paths are
  // re-indexed from the inode names).
  void Restore(std::vector<TmpfsInode> nodes, int next_ino);

 private:
  std::unordered_map<std::string, int> by_path_;
  std::unordered_map<int, TmpfsInode> inodes_;
  int next_ino_ = 1;
};

}  // namespace cki

#endif  // SRC_GUEST_TMPFS_H_
