// The seam between the (shared) model guest kernel and the container engine
// it runs under. Every privileged effect of the guest kernel — page-table
// stores, physical page allocation, host invocations, address-space loads —
// flows through this interface, and each container design (RunC, HVM, PVM,
// CKI) implements it with its own mechanism and cost:
//
//               StorePte            LoadAddressSpace      Hypercall
//   RunC/HVM    direct store        mov cr3               n/a / vmcall exit
//   PVM         VM exit + shadow-   hypercall + shadow    exit round trip
//               PTE emulation       root switch
//   CKI         KSM call checked    KSM call validating   switcher (PKS +
//               by the PTP monitor  the declared root     CR3, no L0)
#ifndef SRC_GUEST_ENGINE_PORT_H_
#define SRC_GUEST_ENGINE_PORT_H_

#include <cstdint>
#include <string_view>

namespace cki {

// Host services reachable via hypercall (the paravirtual interface).
enum class HypercallOp : uint8_t {
  kNop = 0,        // empty hypercall (microbenchmarks)
  kPauseVcpu,      // hlt replacement
  kSetTimer,       // wrmsr(TSC_DEADLINE) replacement
  kSendIpi,        // wrmsr(ICR) replacement
  kVirtioKick,     // queue notification (MMIO replacement in CKI)
  kYield,
  kLogByte,        // debug console
  kCount,
};

std::string_view HypercallOpName(HypercallOp op);

// Returned by the page-allocation hooks when the engine's memory budget is
// exhausted: the guest kernel propagates ENOMEM instead of the machine
// aborting. 0 cannot serve as the sentinel — it is a valid guest PA.
inline constexpr uint64_t kNoPage = ~0ull;

class EnginePort {
 public:
  virtual ~EnginePort() = default;

  // --- page tables -----------------------------------------------------
  // Reads/stores a guest page-table entry. Addresses are in the guest's
  // physical space (hPA for RunC/CKI, gPA for HVM/PVM).
  virtual uint64_t ReadPte(uint64_t pte_pa) = 0;
  virtual bool StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) = 0;

  // Brackets a bulk page-table operation (fork, exec, exit, munmap of a
  // range). Engines may batch their mechanism: PVM amortizes VM exits over
  // the batch, CKI holds the KSM gate open across the stores.
  virtual void BeginPteBatch() {}
  virtual void EndPteBatch() {}

  // --- physical memory ---------------------------------------------------
  // Allocates/frees one zeroed data page, returning its guest-visible PA.
  virtual uint64_t AllocDataPage() = 0;
  virtual void FreeDataPage(uint64_t pa) = 0;
  // Allocates a 2 MiB-aligned contiguous run backing a huge mapping.
  // Only meaningful when huge_pages_enabled().
  virtual uint64_t AllocDataHugePage() { return 0; }
  // Allocates a page-table page. Under CKI this *declares* the PTP to the
  // monitor (type + level recorded, PTE re-keyed to the PTP domain).
  virtual uint64_t AllocPtp(int level) = 0;
  // Releases a page-table page on address-space teardown (undeclared
  // under CKI after the monitor checks it is no longer referenced).
  virtual void FreePtp(uint64_t pa, int level) = 0;

  // Whether the configuration backs VM memory with 2 MiB mappings
  // (the "2M" variants in Figure 12 / Table 4).
  virtual bool huge_pages_enabled() const { return false; }

  // --- control ---------------------------------------------------------
  // Invokes host-kernel functionality. Returns an op-defined value.
  virtual uint64_t Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) = 0;

  // Switches to another process's address space (the guest's CR3 load).
  virtual void LoadAddressSpace(uint64_t root_pa, uint16_t asid) = 0;

  // Flushes one page translation after an unmap/protect (invlpg — directly
  // executable in every design; PCID confines it to the container).
  virtual void InvalidatePage(uint64_t va) = 0;

  // --- copy-on-write clones (src/snap) ---------------------------------
  // True when the frame at guest-visible `pa` is shared with another
  // container (a CoW clone sibling). The kernel's CoW fault path must
  // then copy even if its own refcount says "sole owner".
  virtual bool FrameShared(uint64_t pa) const {
    (void)pa;
    return false;
  }

  // Shootdown after breaking cross-container sharing at `va`: flushes the
  // page across the whole container's PCID range (engines charge the IPI
  // cost). Defaults to a plain single-PCID invalidation.
  virtual void CowBreakShootdown(uint64_t va) { InvalidatePage(va); }
};

}  // namespace cki

#endif  // SRC_GUEST_ENGINE_PORT_H_
