// Memory management of the model guest kernel: address-space construction,
// demand paging, copy-on-write, and teardown. All page-table stores go
// through the EnginePort seam.
#include <cassert>

#include "src/guest/guest_kernel.h"
#include "src/hw/pte.h"
#include "src/obs/trace_scope.h"

namespace cki {

uint64_t GuestKernel::PteFlagsFor(uint64_t prot, bool cow_readonly) const {
  uint64_t flags = kPteP | kPteU;
  if ((prot & kProtWrite) != 0 && !cow_readonly) {
    flags |= kPteW;
  }
  if ((prot & kProtExec) == 0) {
    flags |= kPteNx;
  }
  return flags;
}

uint64_t GuestKernel::NewAddressSpace() {
  uint64_t root = port_.AllocPtp(kPtLevels);
  MapKernelImage(root);
  return root;
}

void GuestKernel::MapKernelImage(uint64_t root) {
  // The kernel image and its static data are shared by all processes of the
  // container: same physical pages mapped supervisor-only in every root.
  // Kernel text must stay read-only + executable (the CKI monitor enforces
  // that no *new* kernel-executable mappings appear after boot).
  static constexpr int kKernelImagePages = 8;
  if (kernel_image_pas_.empty()) {
    kernel_image_pas_.reserve(kKernelImagePages);
    for (int i = 0; i < kKernelImagePages; ++i) {
      uint64_t pa = port_.AllocDataPage();
      if (pa == kNoPage) {
        ctx_.RecordEvent(PathEvent::kGuestOom);
        break;  // map what we got; the image is shared, later roots reuse it
      }
      kernel_image_pas_.push_back(pa);
    }
  }
  for (size_t i = 0; i < kernel_image_pas_.size(); ++i) {
    uint64_t va = kKernelBase + static_cast<uint64_t>(i) * kPageSize;
    bool text = i < kKernelImagePages / 2;
    uint64_t flags = kPteP | (text ? 0 : (kPteW | kPteNx));
    editor_.MapPage(root, va, kernel_image_pas_[i], flags, /*pkey=*/0,
                    PageSize::k4K);
  }
}

void GuestKernel::MapUserPage(Process& proc, uint64_t va, uint64_t pa, uint64_t prot,
                              bool cow_readonly) {
  editor_.MapPage(proc.pt_root, va, pa, PteFlagsFor(prot, cow_readonly), /*pkey=*/0,
                  PageSize::k4K);
}

void GuestKernel::RefPage(uint64_t pa) { page_refs_[pa]++; }

void GuestKernel::UnrefPage(uint64_t pa) {
  auto it = page_refs_.find(pa);
  int refs = (it == page_refs_.end()) ? 1 : it->second;
  if (refs <= 1) {
    if (it != page_refs_.end()) {
      page_refs_.erase(it);
    }
    port_.FreeDataPage(pa);
  } else {
    it->second = refs - 1;
  }
}

bool GuestKernel::HandlePageFault(uint64_t va, bool write) {
  page_faults_++;
  Process& proc = current();
  Vma* vma = proc.vmas.Find(va);
  if (vma == nullptr) {
    return false;  // SIGSEGV
  }
  if (write && (vma->prot & kProtWrite) == 0) {
    return false;  // protection violation against the VMA itself
  }
  uint64_t page_va = va & ~(kPageSize - 1);
  WalkResult walk = editor_.Walk(proc.pt_root, page_va);
  if (!walk.fault && write && !PteWritable(walk.leaf_pte) && vma->cow) {
    return HandleCowFault(proc, *vma, page_va);
  }
  if (!walk.fault && write && !PteWritable(walk.leaf_pte) && !vma->cow &&
      vma->kind == VmaKind::kFile && IsBlkfsIno(vma->file_ino) && blkfs_ != nullptr) {
    // Clean shared blkfs mapping hit by a store: dirty-tracking refault
    // (shared maps start read-only so writeback can re-protect them).
    return HandleBlkfsDirtyFault(proc, *vma, page_va);
  }
  if (!walk.fault) {
    // Spurious fault (e.g. stale TLB after another vCPU mapped it): done.
    return true;
  }
  return FaultInPage(proc, *vma, page_va, write);
}

uint64_t GuestKernel::FilePageFor(int ino, uint64_t block) {
  auto key = std::make_pair(ino, block);
  auto it = file_pages_.find(key);
  if (it != file_pages_.end()) {
    return it->second;
  }
  if (IsBlkfsIno(ino)) {
    // Read-through: blkfs fills the page from the layer store and pins it
    // here via PinFilePage (so the entry exists when this returns).
    return blkfs_ != nullptr ? blkfs_->PageForMap(ino - kBlkfsInoBase, block) : kNoPage;
  }
  uint64_t pa = port_.AllocDataPage();
  if (pa == kNoPage) {
    return kNoPage;  // page-cache miss under OOM; caller fails the fault
  }
  file_pages_[key] = pa;
  RefPage(pa);  // the cache's own pin
  return pa;
}

void GuestKernel::PinFilePage(int ino, uint64_t block, uint64_t pa) {
  auto key = std::make_pair(ino, block);
  assert(file_pages_.find(key) == file_pages_.end() && "page already cached");
  file_pages_[key] = pa;
  RefPage(pa);
}

void GuestKernel::UnpinFilePage(int ino, uint64_t block) {
  auto it = file_pages_.find(std::make_pair(ino, block));
  if (it == file_pages_.end()) {
    return;
  }
  uint64_t pa = it->second;
  file_pages_.erase(it);
  UnrefPage(pa);  // frees the frame when no mapping still holds it
}

int GuestKernel::PageRefs(uint64_t pa) const {
  auto it = page_refs_.find(pa);
  return it == page_refs_.end() ? 0 : it->second;
}

void GuestKernel::ReplaceFilePage(int ino, uint64_t block, uint64_t old_pa,
                                  uint64_t new_pa) {
  auto it = file_pages_.find(std::make_pair(ino, block));
  assert(it != file_pages_.end() && it->second == old_pa && "stale replace");
  it->second = new_pa;
  // Rmap walk: repoint every process mapping of (ino, block). Ascending
  // pid plus VMA start order keeps the shootdown sequence deterministic.
  int moved = 0;
  procs_.ForEach([&](Process& proc) {
    if (proc.pt_root == 0) {
      return;
    }
    for (auto& [start, vma] : proc.vmas.mutable_areas()) {
      (void)start;
      if (vma.kind != VmaKind::kFile || vma.file_ino != ino) {
        continue;
      }
      uint64_t byte_off = block << kPageShift;
      if (byte_off < vma.file_offset) {
        continue;
      }
      uint64_t va = vma.start + (byte_off - vma.file_offset);
      if (va >= vma.end) {
        continue;
      }
      WalkResult walk = editor_.Walk(proc.pt_root, va);
      if (walk.fault || PteAddr(walk.leaf_pte) != old_pa) {
        continue;  // not mapped, or already privatized by a CoW break
      }
      // Preserve writability: a mapping that had already taken its dirty
      // fault stays writable on the new frame.
      bool was_writable = PteWritable(walk.leaf_pte);
      uint64_t flags = PteFlagsFor(vma.prot, /*cow_readonly=*/!was_writable);
      editor_.MapPage(proc.pt_root, va, new_pa, flags, /*pkey=*/0, PageSize::k4K);
      port_.CowBreakShootdown(va);
      moved++;
    }
  });
  // Move the cache pin plus the mapping refs, then release the old frame
  // (the engine drops a cross-container share instead of freeing if one
  // exists).
  page_refs_[new_pa] = moved + 1;
  page_refs_.erase(old_pa);
  port_.FreeDataPage(old_pa);
}

void GuestKernel::WriteProtectFilePage(int ino, uint64_t block, uint64_t pa) {
  procs_.ForEach([&](Process& proc) {
    if (proc.pt_root == 0) {
      return;
    }
    for (auto& [start, vma] : proc.vmas.mutable_areas()) {
      (void)start;
      if (vma.kind != VmaKind::kFile || vma.file_ino != ino) {
        continue;
      }
      uint64_t byte_off = block << kPageShift;
      if (byte_off < vma.file_offset) {
        continue;
      }
      uint64_t va = vma.start + (byte_off - vma.file_offset);
      if (va >= vma.end) {
        continue;
      }
      WalkResult walk = editor_.Walk(proc.pt_root, va);
      if (walk.fault || PteAddr(walk.leaf_pte) != pa || !PteWritable(walk.leaf_pte)) {
        continue;
      }
      editor_.ProtectPage(proc.pt_root, va, PteFlagsFor(vma.prot, /*cow_readonly=*/true),
                          /*pkey=*/0);
      port_.InvalidatePage(va);
    }
  });
}

bool GuestKernel::FaultInPage(Process& proc, Vma& vma, uint64_t va, bool write) {
  (void)write;
  TraceScope obs_scope(ctx_, "mm/fault_in");
  // Demand fill: VMA lookup, page allocation, zeroing/fill, and PTE
  // construction. The calibrated handler-core cost covers all of that
  // (Fig 10a: 840 ns of the 1,000 ns native fault).
  ctx_.ChargeWork(ctx_.cost().pgfault_handler_core);
  if (vma.kind == VmaKind::kFile && vma.file_ino >= 0) {
    // File-backed: map the shared page-cache page. Private (CoW) mappings
    // start read-only; the existing CoW path copies on the first write.
    // Shared blkfs mappings also start read-only when faulted by a load,
    // so stores refault into the dirty-tracking path; a write fault dirties
    // (and CoW-breaks) the cache page right here.
    uint64_t block = (va - vma.start + vma.file_offset) >> kPageShift;
    bool blk = IsBlkfsIno(vma.file_ino) && blkfs_ != nullptr;
    bool dirty_now = blk && write && !vma.cow && (vma.prot & kProtWrite) != 0;
    uint64_t pa = dirty_now
                      ? blkfs_->DirtyMappedPage(vma.file_ino - kBlkfsInoBase, block)
                      : FilePageFor(vma.file_ino, block);
    if (pa == kNoPage) {
      ctx_.RecordEvent(PathEvent::kGuestOom);
      return false;
    }
    RefPage(pa);
    bool cow_readonly = vma.cow || (blk && !dirty_now);
    MapUserPage(proc, va, pa, vma.prot, cow_readonly);
    return true;
  }
  uint64_t pa = port_.AllocDataPage();
  if (pa == kNoPage) {
    ctx_.RecordEvent(PathEvent::kGuestOom);
    return false;
  }
  MapUserPage(proc, va, pa, vma.prot, /*cow_readonly=*/false);
  return true;
}

bool GuestKernel::HandleCowFault(Process& proc, Vma& vma, uint64_t va) {
  ctx_.ChargeWork(ctx_.cost().pgfault_handler_core);
  WalkResult walk = editor_.Walk(proc.pt_root, va);
  if (walk.fault) {
    return false;
  }
  uint64_t shared_pa = PteAddr(walk.leaf_pte);
  // A frame can be shared intra-kernel (page_refs_, after fork) or across
  // containers (host-level refcount, after a CoW clone) — the engine knows
  // about the latter, the kernel only about the former.
  bool external = port_.FrameShared(shared_pa);
  auto it = page_refs_.find(shared_pa);
  int refs = (it == page_refs_.end()) ? 1 : it->second;
  if (refs > 1 || external) {
    // Copy the page and remap writable.
    uint64_t new_pa = port_.AllocDataPage();
    if (new_pa == kNoPage) {
      ctx_.RecordEvent(PathEvent::kGuestOom);
      return false;
    }
    ctx_.ChargeWork(ctx_.cost().copy_per_4k);
    if (refs > 1) {
      it->second = refs - 1;
    } else {
      // Last local mapping of an externally shared frame: drop our share
      // (the engine's FreeDataPage guard keeps siblings' frames alive).
      if (it != page_refs_.end()) {
        page_refs_.erase(it);
      }
      port_.FreeDataPage(shared_pa);
    }
    MapUserPage(proc, va, new_pa, vma.prot, /*cow_readonly=*/false);
  } else {
    // Sole owner: just restore write permission.
    if (it != page_refs_.end()) {
      page_refs_.erase(it);
    }
    editor_.ProtectPage(proc.pt_root, va, PteFlagsFor(vma.prot, false), /*pkey=*/0);
  }
  if (external) {
    port_.CowBreakShootdown(va);  // siblings may cache the old mapping
  } else {
    port_.InvalidatePage(va);
  }
  return true;
}

bool GuestKernel::HandleBlkfsDirtyFault(Process& proc, Vma& vma, uint64_t va) {
  ctx_.ChargeWork(ctx_.cost().pgfault_handler_core);
  uint64_t block = (va - vma.start + vma.file_offset) >> kPageShift;
  // Blkfs dirties the cache page; if the frame was shared across
  // containers it allocates a private copy and the ReplaceFilePage rmap
  // walk has already remapped this PTE (writable, see was_writable there).
  uint64_t pa = blkfs_->DirtyMappedPage(vma.file_ino - kBlkfsInoBase, block);
  if (pa == kNoPage) {
    ctx_.RecordEvent(PathEvent::kGuestOom);
    return false;
  }
  WalkResult walk = editor_.Walk(proc.pt_root, va);
  if (walk.fault) {
    return false;
  }
  if (!PteWritable(walk.leaf_pte)) {
    editor_.ProtectPage(proc.pt_root, va, PteFlagsFor(vma.prot, /*cow_readonly=*/false),
                        /*pkey=*/0);
    port_.InvalidatePage(va);
  }
  return true;
}

void GuestKernel::UnmapRange(Process& proc, uint64_t start, uint64_t end) {
  port_.BeginPteBatch();
  for (uint64_t va = start; va < end; va += kPageSize) {
    WalkResult walk = editor_.Walk(proc.pt_root, va);
    if (walk.fault) {
      continue;
    }
    uint64_t pa = PteAddr(walk.leaf_pte);
    editor_.UnmapPage(proc.pt_root, va);
    port_.InvalidatePage(va);
    UnrefPage(pa);
  }
  port_.EndPteBatch();
}

int GuestKernel::ClonePagesCow(Process& parent, Process& child) {
  TraceScope obs_scope(ctx_, "mm/clone_cow");
  // Collect the parent's user-half leaves first (editing while iterating
  // the radix tree would invalidate the traversal).
  struct LeafInfo {
    uint64_t va;
    uint64_t pte;
  };
  std::vector<LeafInfo> leaves;
  editor_.ForEachLeaf(parent.pt_root, [&](uint64_t va, uint64_t pte, uint64_t, int level) {
    if (va < kKernelBase && level == 1) {
      leaves.push_back({va, pte});
    }
  });
  port_.BeginPteBatch();
  for (const LeafInfo& leaf : leaves) {
    uint64_t pa = PteAddr(leaf.pte);
    bool writable = PteWritable(leaf.pte);
    if (writable) {
      // Demote the parent to read-only so its next write copies.
      editor_.ProtectPage(parent.pt_root, leaf.va,
                          (leaf.pte & ~(kPteW | kPteAddrMask | kPtePkeyMask)) | kPteP, 0);
      port_.InvalidatePage(leaf.va);
    }
    uint64_t child_flags = (leaf.pte & ~(kPteW | kPteAddrMask | kPtePkeyMask)) | kPteP;
    editor_.MapPage(child.pt_root, leaf.va, pa, child_flags, /*pkey=*/0, PageSize::k4K);
    // Both mappings now share the frame.
    auto it = page_refs_.find(pa);
    if (it == page_refs_.end()) {
      page_refs_[pa] = 2;
    } else {
      it->second++;
    }
  }
  port_.EndPteBatch();
  // Mark every writable VMA copy-on-write in both processes.
  for (VmaList* list : {&child.vmas, &parent.vmas}) {
    for (auto& [start, vma] : list->mutable_areas()) {
      (void)start;
      if ((vma.prot & kProtWrite) != 0) {
        vma.cow = true;
      }
    }
  }
  return static_cast<int>(leaves.size());
}

void GuestKernel::TeardownAddressSpace(Process& proc) {
  TraceScope obs_scope(ctx_, "mm/teardown");
  // Free user data pages, then the page-table pages themselves
  // (post-order walk over the radix tree).
  struct LeafInfo {
    uint64_t va;
    uint64_t pte;
  };
  std::vector<LeafInfo> leaves;
  editor_.ForEachLeaf(proc.pt_root, [&](uint64_t va, uint64_t pte, uint64_t, int level) {
    if (va < kKernelBase && level == 1) {
      leaves.push_back({va, pte});
    }
  });
  port_.BeginPteBatch();
  for (const LeafInfo& leaf : leaves) {
    editor_.UnmapPage(proc.pt_root, leaf.va);
    port_.InvalidatePage(leaf.va);
    UnrefPage(PteAddr(leaf.pte));
  }
  FreeTableTree(proc.pt_root, kPtLevels);
  port_.EndPteBatch();
  proc.pt_root = 0;
}

void GuestKernel::FreeTableTree(uint64_t table_pa, int level) {
  // Post-order: clear each entry (unlinking the child) before releasing
  // the child table, so the CKI monitor's reference counts stay exact.
  for (int i = 0; i < kPtEntries; ++i) {
    uint64_t slot = table_pa + static_cast<uint64_t>(i) * 8;
    uint64_t entry = port_.ReadPte(slot);
    if (!PtePresent(entry)) {
      continue;
    }
    if (level > 1 && !PteHuge(entry)) {
      uint64_t child = PteAddr(entry);
      port_.StorePte(slot, 0, level, 0);
      FreeTableTree(child, level - 1);
    } else {
      port_.StorePte(slot, 0, level, 0);
    }
  }
  port_.FreePtp(table_pa, level);
}

}  // namespace cki
