// Pipes and AF_UNIX socket pairs of the model guest kernel (lmbench's
// `pipe` and `AF_UNIX` latency tests ping-pong a token through these).
#ifndef SRC_GUEST_IPC_H_
#define SRC_GUEST_IPC_H_

#include <cstdint>
#include <deque>

namespace cki {

enum class ChannelKind : uint8_t { kPipe, kUnixSocket };

// A unidirectional (pipe) or bidirectional (socketpair) byte channel.
// Content is modeled by message lengths.
class IpcChannel {
 public:
  explicit IpcChannel(ChannelKind kind, uint64_t capacity = 65536)
      : kind_(kind), capacity_(capacity) {}

  // Restore constructor (src/snap): rebuilds a channel from serialized
  // state; buffered_ is recomputed from the message list.
  IpcChannel(ChannelKind kind, uint64_t capacity, int refs, std::deque<uint64_t> messages)
      : kind_(kind), capacity_(capacity), refs_(refs), messages_(std::move(messages)) {
    for (uint64_t m : messages_) {
      buffered_ += m;
    }
  }

  ChannelKind kind() const { return kind_; }

  // Returns bytes accepted (0 if the buffer is full -> writer must block).
  uint64_t Write(uint64_t bytes) {
    uint64_t take = bytes;
    if (buffered_ + take > capacity_) {
      take = capacity_ - buffered_;
    }
    if (take > 0) {
      messages_.push_back(take);
      buffered_ += take;
    }
    return take;
  }

  // Returns bytes read (0 if empty -> reader must block).
  uint64_t Read(uint64_t max_bytes) {
    uint64_t got = 0;
    while (got < max_bytes && !messages_.empty()) {
      uint64_t take = messages_.front();
      if (take > max_bytes - got) {
        messages_.front() -= max_bytes - got;
        take = max_bytes - got;
      } else {
        messages_.pop_front();
      }
      got += take;
    }
    buffered_ -= got;
    return got;
  }

  uint64_t buffered() const { return buffered_; }
  bool readable() const { return buffered_ > 0; }

  void AddRef() { refs_++; }
  // Returns true when the channel should be destroyed.
  bool Release() { return --refs_ == 0; }

  // --- snapshot support (src/snap) --------------------------------------
  uint64_t capacity() const { return capacity_; }
  int refs() const { return refs_; }
  const std::deque<uint64_t>& messages() const { return messages_; }

 private:
  ChannelKind kind_;
  uint64_t capacity_;
  uint64_t buffered_ = 0;
  int refs_ = 0;
  std::deque<uint64_t> messages_;
};

}  // namespace cki

#endif  // SRC_GUEST_IPC_H_
