#include "src/guest/vma.h"

#include <algorithm>
#include <vector>

#include "src/hw/phys_mem.h"

namespace cki {

Vma* VmaList::Find(uint64_t va) {
  auto it = areas_.upper_bound(va);
  if (it == areas_.begin()) {
    return nullptr;
  }
  --it;
  return it->second.Contains(va) ? &it->second : nullptr;
}

const Vma* VmaList::Find(uint64_t va) const {
  return const_cast<VmaList*>(this)->Find(va);
}

void VmaList::Remove(uint64_t start, uint64_t end) {
  std::vector<Vma> to_reinsert;
  auto it = areas_.lower_bound(start);
  // Check the area starting before `start` that may overlap into the range.
  if (it != areas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > start) {
      Vma before = prev->second;
      Vma left = before;
      left.end = start;
      areas_.erase(prev);
      if (left.start < left.end) {
        to_reinsert.push_back(left);
      }
      if (before.end > end) {
        Vma right = before;
        right.start = end;
        to_reinsert.push_back(right);
      }
    }
  }
  // Erase all areas starting inside [start, end), keeping any tail.
  it = areas_.lower_bound(start);
  while (it != areas_.end() && it->second.start < end) {
    Vma v = it->second;
    it = areas_.erase(it);
    if (v.end > end) {
      Vma right = v;
      right.start = end;
      to_reinsert.push_back(right);
    }
  }
  for (const Vma& v : to_reinsert) {
    areas_[v.start] = v;
  }
}

bool VmaList::Protect(uint64_t start, uint64_t end, uint64_t prot) {
  // Verify full coverage first.
  uint64_t cursor = start;
  while (cursor < end) {
    const Vma* v = Find(cursor);
    if (v == nullptr) {
      return false;
    }
    cursor = v->end;
  }
  // Split/retag. Collect affected areas, remove, reinsert pieces.
  std::vector<Vma> pieces;
  cursor = start;
  while (cursor < end) {
    Vma* v = Find(cursor);
    Vma whole = *v;
    areas_.erase(whole.start);
    if (whole.start < start) {
      Vma left = whole;
      left.end = start;
      pieces.push_back(left);
    }
    Vma mid = whole;
    mid.start = std::max(whole.start, start);
    mid.end = std::min(whole.end, end);
    mid.prot = prot;
    pieces.push_back(mid);
    if (whole.end > end) {
      Vma right = whole;
      right.start = end;
      pieces.push_back(right);
    }
    cursor = whole.end;
  }
  for (const Vma& p : pieces) {
    areas_[p.start] = p;
  }
  return true;
}

uint64_t VmaList::FindFree(uint64_t hint, uint64_t bytes) const {
  uint64_t candidate = hint;
  auto it = areas_.lower_bound(candidate);
  // Walk forward over any overlapping areas.
  if (it != areas_.begin()) {
    auto prev = std::prev(it);
    if (prev->second.end > candidate) {
      candidate = prev->second.end;
      it = areas_.lower_bound(candidate);
    }
  }
  while (it != areas_.end() && it->second.start < candidate + bytes) {
    candidate = it->second.end;
    ++it;
  }
  return candidate;
}

}  // namespace cki
