// Snapshot / restore / copy-on-write clone of the model guest kernel
// (DESIGN.md §10). The serialized form is PA-independent: physical frames
// are renumbered with logical ids in a deterministic traversal order, so
// checkpoint -> restore -> checkpoint reproduces a byte-identical stream
// even though the restored container lives in different host frames.
#include <algorithm>
#include <cassert>

#include "src/guest/guest_kernel.h"
#include "src/hw/pte.h"
#include "src/snap/snap_stream.h"

namespace cki {

namespace {

struct SnapLeaf {
  uint64_t va = 0;
  uint64_t pte = 0;
};

// User-half 4K leaves of one address space, ascending VA: the canonical
// per-process page order. Kernel-half leaves are skipped — MapKernelImage
// rebuilds the (container-local) kernel image on restore.
std::vector<SnapLeaf> UserLeaves(PageTableEditor& editor, uint64_t root) {
  std::vector<SnapLeaf> leaves;
  editor.ForEachLeaf(root, [&](uint64_t va, uint64_t pte, uint64_t, int level) {
    if (va < kKernelBase && level == 1) {
      leaves.push_back({va, pte});
    }
  });
  std::sort(leaves.begin(), leaves.end(),
            [](const SnapLeaf& a, const SnapLeaf& b) { return a.va < b.va; });
  return leaves;
}

}  // namespace

void GuestKernel::SnapshotTo(SnapWriter& w,
                             const std::function<void(uint64_t pa, SnapWriter& w)>& frame_writer) {
  // --- kernel scalars ----------------------------------------------------
  w.PutI64(next_pid_);
  w.PutI64(current_pid_);
  w.PutU16(next_asid_);
  w.PutI64(next_channel_);
  w.PutU64(page_faults_);
  w.PutU64(syscalls_);
  w.PutU64(net_trace_.trace_id);
  w.PutU64(net_trace_.span_id);

  // --- tmpfs -------------------------------------------------------------
  w.PutI64(tmpfs_.next_ino());
  std::vector<TmpfsInode> nodes = tmpfs_.SortedInodes();
  w.PutU32(static_cast<uint32_t>(nodes.size()));
  for (const TmpfsInode& node : nodes) {
    w.PutI64(node.ino);
    std::vector<uint8_t> name(node.name.begin(), node.name.end());
    w.PutBlob(name);
    w.PutU64(node.size);
    w.PutU64(node.blocks);
    w.PutU64(node.mtime_ns);
  }

  // --- IPC channels ------------------------------------------------------
  std::vector<int> channel_ids;
  channel_ids.reserve(channels_.size());
  for (const auto& [id, ch] : channels_) {
    (void)ch;
    channel_ids.push_back(id);
  }
  std::sort(channel_ids.begin(), channel_ids.end());
  w.PutU32(static_cast<uint32_t>(channel_ids.size()));
  for (int id : channel_ids) {
    const IpcChannel& ch = channels_.at(id);
    w.PutI64(id);
    w.PutU8(static_cast<uint8_t>(ch.kind()));
    w.PutU64(ch.capacity());
    w.PutI64(ch.refs());
    w.PutU32(static_cast<uint32_t>(ch.messages().size()));
    for (uint64_t m : ch.messages()) {
      w.PutU64(m);
    }
  }

  // --- logical frame numbering -------------------------------------------
  // Page-cache pages first (file_pages_ is a std::map, so (ino, block)
  // order), then each process's user leaves ascending VA — dedup by PA so
  // a shared frame gets exactly one id and one content record.
  std::unordered_map<uint64_t, uint64_t> frame_id;
  std::vector<uint64_t> frame_pas;
  auto assign = [&](uint64_t pa) {
    if (frame_id.find(pa) == frame_id.end()) {
      frame_id[pa] = frame_pas.size();
      frame_pas.push_back(pa);
    }
  };
  for (const auto& [key, pa] : file_pages_) {
    (void)key;
    assign(pa);
  }
  std::vector<int> pids = procs_.Pids();
  std::unordered_map<int, std::vector<SnapLeaf>> proc_leaves;
  for (int pid : pids) {
    Process& proc = *procs_.Get(pid);
    if (proc.pt_root == 0) {
      proc_leaves[pid] = {};
      continue;
    }
    proc_leaves[pid] = UserLeaves(editor_, proc.pt_root);
    for (const SnapLeaf& leaf : proc_leaves[pid]) {
      assign(PteAddr(leaf.pte));
    }
  }

  // --- page cache map ----------------------------------------------------
  w.PutU32(static_cast<uint32_t>(file_pages_.size()));
  for (const auto& [key, pa] : file_pages_) {
    w.PutI64(key.first);
    w.PutU64(key.second);
    w.PutU64(frame_id.at(pa));
  }

  // --- frame contents -----------------------------------------------------
  w.PutU32(static_cast<uint32_t>(frame_pas.size()));
  for (uint64_t pa : frame_pas) {
    frame_writer(pa, w);
  }

  // --- processes ----------------------------------------------------------
  w.PutU32(static_cast<uint32_t>(pids.size()));
  for (int pid : pids) {
    const Process& proc = *procs_.Get(pid);
    w.PutI64(proc.pid);
    w.PutI64(proc.parent);
    w.PutU8(static_cast<uint8_t>(proc.state));
    w.PutI64(proc.exit_code);
    w.PutU16(proc.asid);
    w.PutU64(proc.brk);
    w.PutU64(proc.mmap_hint);
    w.PutBool(proc.pt_root != 0);
    w.PutU32(static_cast<uint32_t>(proc.fds.size()));
    for (const FileDesc& fd : proc.fds) {
      w.PutU8(static_cast<uint8_t>(fd.kind));
      w.PutI64(fd.ino);
      w.PutU64(fd.offset);
      w.PutI64(fd.channel);
      w.PutI64(fd.net_conn);
      w.PutBool(fd.direct);
    }
    w.PutU32(static_cast<uint32_t>(proc.vmas.areas().size()));
    for (const auto& [start, vma] : proc.vmas.areas()) {
      (void)start;
      w.PutU64(vma.start);
      w.PutU64(vma.end);
      w.PutU64(vma.prot);
      w.PutU8(static_cast<uint8_t>(vma.kind));
      w.PutBool(vma.cow);
      w.PutI64(vma.file_ino);
      w.PutU64(vma.file_offset);
    }
    const std::vector<SnapLeaf>& leaves = proc_leaves.at(pid);
    w.PutU32(static_cast<uint32_t>(leaves.size()));
    for (const SnapLeaf& leaf : leaves) {
      w.PutU64(leaf.va);
      w.PutU64(frame_id.at(PteAddr(leaf.pte)));
      w.PutBool(PteWritable(leaf.pte));
      w.PutBool(PteUser(leaf.pte));
      w.PutBool(PteNoExec(leaf.pte));
    }
  }

  // --- shared-page refcounts ----------------------------------------------
  std::vector<std::pair<uint64_t, int64_t>> refs;
  refs.reserve(page_refs_.size());
  for (const auto& [pa, n] : page_refs_) {
    auto it = frame_id.find(pa);
    if (it != frame_id.end()) {
      refs.push_back({it->second, n});
    }
  }
  std::sort(refs.begin(), refs.end());
  w.PutU32(static_cast<uint32_t>(refs.size()));
  for (const auto& [fid, n] : refs) {
    w.PutU64(fid);
    w.PutI64(n);
  }
}

void GuestKernel::ResetForImage() {
  // Teardown through the port (unlike KillAllProcesses): the engine stays
  // healthy, so every user page and PTP must be returned one by one.
  std::vector<int> pids = procs_.Pids();
  for (int pid : pids) {
    Process& proc = *procs_.Get(pid);
    if (proc.pt_root != 0) {
      TeardownAddressSpace(proc);
    }
  }
  procs_.Clear();
  current_pid_ = -1;
  // Release the page cache's own pins last (mapped file pages survive
  // process teardown exactly because of these).
  for (const auto& [key, pa] : file_pages_) {
    (void)key;
    UnrefPage(pa);
  }
  file_pages_.clear();
  page_refs_.clear();
  channels_.clear();
  tmpfs_ = Tmpfs{};
  next_pid_ = 1;
  next_asid_ = 1;
  next_channel_ = 1;
}

bool GuestKernel::RestoreFrom(SnapReader& r,
                              const std::function<bool(uint64_t pa, SnapReader& r)>& frame_filler) {
  ResetForImage();

  // --- kernel scalars ----------------------------------------------------
  int64_t next_pid = r.GetI64();
  int64_t current_pid = r.GetI64();
  uint16_t next_asid = r.GetU16();
  int64_t next_channel = r.GetI64();
  page_faults_ = r.GetU64();
  syscalls_ = r.GetU64();
  net_trace_.trace_id = r.GetU64();
  net_trace_.span_id = r.GetU64();

  // --- tmpfs -------------------------------------------------------------
  int64_t next_ino = r.GetI64();
  uint64_t n_inodes = r.GetCount(8 + 4 + 8 + 8 + 8);
  std::vector<TmpfsInode> nodes;
  nodes.reserve(n_inodes);
  for (uint64_t i = 0; i < n_inodes && r.ok(); ++i) {
    TmpfsInode node;
    node.ino = static_cast<int>(r.GetI64());
    std::vector<uint8_t> name = r.GetBlob();
    node.name.assign(name.begin(), name.end());
    node.size = r.GetU64();
    node.blocks = r.GetU64();
    node.mtime_ns = r.GetU64();
    nodes.push_back(std::move(node));
  }
  if (!r.ok()) {
    return false;
  }
  tmpfs_.Restore(std::move(nodes), static_cast<int>(next_ino));

  // --- IPC channels ------------------------------------------------------
  uint64_t n_channels = r.GetCount(8 + 1 + 8 + 8 + 4);
  for (uint64_t i = 0; i < n_channels && r.ok(); ++i) {
    int id = static_cast<int>(r.GetI64());
    ChannelKind kind = static_cast<ChannelKind>(r.GetU8());
    uint64_t capacity = r.GetU64();
    int chan_refs = static_cast<int>(r.GetI64());
    uint64_t n_msgs = r.GetCount(8);
    std::deque<uint64_t> messages;
    for (uint64_t m = 0; m < n_msgs && r.ok(); ++m) {
      messages.push_back(r.GetU64());
    }
    channels_.emplace(id, IpcChannel(kind, capacity, chan_refs, std::move(messages)));
  }
  if (!r.ok()) {
    return false;
  }

  // --- page cache map ----------------------------------------------------
  uint64_t n_files = r.GetCount(8 + 8 + 8);
  std::vector<std::tuple<int, uint64_t, uint64_t>> file_entries;
  file_entries.reserve(n_files);
  for (uint64_t i = 0; i < n_files && r.ok(); ++i) {
    int ino = static_cast<int>(r.GetI64());
    uint64_t block = r.GetU64();
    uint64_t fid = r.GetU64();
    file_entries.push_back({ino, block, fid});
  }

  // --- frame contents -----------------------------------------------------
  // Allocate a fresh data page per logical frame through the port, then let
  // the engine-specific filler materialize the content. An OOM here fails
  // the restore (the caller reports it; nothing crashes).
  uint64_t n_frames = r.GetCount(1);
  std::vector<uint64_t> frame_pa(n_frames, kNoPage);
  for (uint64_t i = 0; i < n_frames && r.ok(); ++i) {
    uint64_t pa = port_.AllocDataPage();
    if (pa == kNoPage) {
      ctx_.RecordEvent(PathEvent::kGuestOom);
      r.MarkCorrupt();
      break;
    }
    frame_pa[i] = pa;
    if (!frame_filler(pa, r)) {
      r.MarkCorrupt();
      break;
    }
  }
  if (!r.ok()) {
    return false;
  }

  auto resolve = [&](uint64_t fid) -> uint64_t {
    if (fid >= frame_pa.size()) {
      r.MarkCorrupt();
      return kNoPage;
    }
    return frame_pa[fid];
  };
  for (const auto& [ino, block, fid] : file_entries) {
    uint64_t pa = resolve(fid);
    if (pa == kNoPage) {
      return false;
    }
    file_pages_[{ino, block}] = pa;
  }

  // --- processes ----------------------------------------------------------
  uint64_t n_procs = r.GetCount(8 * 5 + 2 + 1 + 4 * 3);
  for (uint64_t i = 0; i < n_procs && r.ok(); ++i) {
    auto proc = std::make_unique<Process>();
    proc->pid = static_cast<int>(r.GetI64());
    proc->parent = static_cast<int>(r.GetI64());
    proc->state = static_cast<ProcState>(r.GetU8());
    proc->exit_code = static_cast<int>(r.GetI64());
    proc->asid = r.GetU16();
    proc->brk = r.GetU64();
    proc->mmap_hint = r.GetU64();
    bool has_root = r.GetBool();
    uint64_t n_fds = r.GetCount(1 + 8 + 8 + 8 + 8 + 1);
    for (uint64_t f = 0; f < n_fds && r.ok(); ++f) {
      FileDesc fd;
      fd.kind = static_cast<FdKind>(r.GetU8());
      fd.ino = static_cast<int>(r.GetI64());
      fd.offset = r.GetU64();
      fd.channel = static_cast<int>(r.GetI64());
      fd.net_conn = static_cast<int>(r.GetI64());
      fd.direct = r.GetBool();
      proc->fds.push_back(fd);
    }
    uint64_t n_vmas = r.GetCount(8 * 3 + 1 + 1 + 8 + 8);
    for (uint64_t v = 0; v < n_vmas && r.ok(); ++v) {
      Vma vma;
      vma.start = r.GetU64();
      vma.end = r.GetU64();
      vma.prot = r.GetU64();
      vma.kind = static_cast<VmaKind>(r.GetU8());
      vma.cow = r.GetBool();
      vma.file_ino = static_cast<int>(r.GetI64());
      vma.file_offset = r.GetU64();
      proc->vmas.Insert(vma);
    }
    uint64_t n_leaves = r.GetCount(8 + 8 + 3);
    if (!r.ok()) {
      return false;
    }
    // Torn-down address spaces (zombies) stay torn down; everyone else
    // gets a fresh radix tree with the kernel image, then the leaves.
    if (has_root) {
      proc->pt_root = NewAddressSpace();
    } else if (n_leaves > 0) {
      r.MarkCorrupt();  // leaves without an address space cannot be honest
      return false;
    }
    port_.BeginPteBatch();
    for (uint64_t l = 0; l < n_leaves && r.ok(); ++l) {
      uint64_t va = r.GetU64();
      uint64_t fid = r.GetU64();
      bool writable = r.GetBool();
      bool user = r.GetBool();
      bool nx = r.GetBool();
      uint64_t pa = resolve(fid);
      if (pa == kNoPage) {
        break;
      }
      uint64_t flags = kPteP | (writable ? kPteW : 0) | (user ? kPteU : 0) | (nx ? kPteNx : 0);
      editor_.MapPage(proc->pt_root, va, pa, flags, /*pkey=*/0, PageSize::k4K);
      ctx_.ChargeWork(ctx_.cost().snap_page_restore);
    }
    port_.EndPteBatch();
    if (!r.ok()) {
      // Half-built address space: tear it down so the engine's frame
      // accounting stays exact even on a rejected stream.
      if (proc->pt_root != 0) {
        int pid = proc->pid;
        Process* adopted = procs_.Adopt(std::move(proc));
        TeardownAddressSpace(*adopted);
        procs_.Erase(pid);
      }
      return false;
    }
    procs_.Adopt(std::move(proc));
  }

  // --- shared-page refcounts ----------------------------------------------
  uint64_t n_refs = r.GetCount(8 + 8);
  for (uint64_t i = 0; i < n_refs && r.ok(); ++i) {
    uint64_t fid = r.GetU64();
    int64_t count = r.GetI64();
    uint64_t pa = resolve(fid);
    if (pa == kNoPage) {
      return false;
    }
    page_refs_[pa] = static_cast<int>(count);
  }
  if (!r.ok()) {
    return false;
  }

  next_pid_ = static_cast<int>(next_pid);
  next_asid_ = next_asid;
  next_channel_ = static_cast<int>(next_channel);
  current_pid_ = static_cast<int>(current_pid);
  Process* cur = process(current_pid_);
  if (cur != nullptr && cur->pt_root != 0) {
    port_.LoadAddressSpace(cur->pt_root, cur->asid);
  } else {
    current_pid_ = -1;
  }
  return true;
}

void GuestKernel::CloneFrom(GuestKernel& parent,
                            const std::function<uint64_t(uint64_t parent_pa)>& adopt) {
  ResetForImage();

  // --- copyable kernel state ---------------------------------------------
  next_pid_ = parent.next_pid_;
  next_asid_ = parent.next_asid_;
  next_channel_ = parent.next_channel_;
  page_faults_ = parent.page_faults_;
  syscalls_ = parent.syscalls_;
  net_trace_ = parent.net_trace_;
  tmpfs_ = parent.tmpfs_;
  channels_ = parent.channels_;

  // --- frame adoption (dedup: one shared frame -> one clone PA) ----------
  std::unordered_map<uint64_t, uint64_t> xlate;
  auto translate = [&](uint64_t parent_pa) {
    auto it = xlate.find(parent_pa);
    if (it != xlate.end()) {
      return it->second;
    }
    uint64_t pa = adopt(parent_pa);
    xlate[parent_pa] = pa;
    return pa;
  };

  for (const auto& [key, pa] : parent.file_pages_) {
    file_pages_[key] = translate(pa);
  }

  // --- processes: map every parent user page read-only in the clone and
  // demote the parent's writable mappings, so the first write on either
  // side takes a CoW fault that breaks the cross-container sharing.
  std::vector<int> pids = parent.procs_.Pids();
  for (int pid : pids) {
    Process& src = *parent.procs_.Get(pid);
    auto proc = std::make_unique<Process>();
    proc->pid = src.pid;
    proc->parent = src.parent;
    proc->state = src.state;
    proc->exit_code = src.exit_code;
    proc->asid = src.asid;
    proc->brk = src.brk;
    proc->mmap_hint = src.mmap_hint;
    proc->fds = src.fds;
    proc->vmas = src.vmas;
    if (src.pt_root != 0) {
      proc->pt_root = NewAddressSpace();
      std::vector<SnapLeaf> leaves = UserLeaves(parent.editor_, src.pt_root);
      port_.BeginPteBatch();
      parent.port_.BeginPteBatch();
      for (const SnapLeaf& leaf : leaves) {
        uint64_t parent_pa = PteAddr(leaf.pte);
        uint64_t clone_pa = translate(parent_pa);
        uint64_t ro_flags = (leaf.pte & ~(kPteW | kPteAddrMask | kPtePkeyMask)) | kPteP;
        if (PteWritable(leaf.pte)) {
          parent.editor_.ProtectPage(src.pt_root, leaf.va, ro_flags, /*pkey=*/0);
          parent.port_.InvalidatePage(leaf.va);
        }
        editor_.MapPage(proc->pt_root, leaf.va, clone_pa, ro_flags, /*pkey=*/0, PageSize::k4K);
        ctx_.ChargeWork(ctx_.cost().snap_clone_page);
      }
      parent.port_.EndPteBatch();
      port_.EndPteBatch();
    }
    // Writable VMAs become copy-on-write in both containers.
    for (VmaList* list : {&proc->vmas, &src.vmas}) {
      for (auto& [start, vma] : list->mutable_areas()) {
        (void)start;
        if ((vma.prot & kProtWrite) != 0) {
          vma.cow = true;
        }
      }
    }
    procs_.Adopt(std::move(proc));
  }

  // --- refcounts mirror the parent's, translated --------------------------
  for (const auto& [pa, n] : parent.page_refs_) {
    auto it = xlate.find(pa);
    if (it != xlate.end()) {
      page_refs_[it->second] = n;
    }
  }

  current_pid_ = parent.current_pid_;
  Process* cur = process(current_pid_);
  if (cur != nullptr && cur->pt_root != 0) {
    port_.LoadAddressSpace(cur->pt_root, cur->asid);
  } else {
    current_pid_ = -1;
  }
}

}  // namespace cki
