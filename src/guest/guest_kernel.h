// The model guest kernel: processes, virtual memory with demand paging and
// copy-on-write, a syscall layer, tmpfs, pipes/sockets, and a round-robin
// scheduler. One instance runs inside each secure container (and the same
// code acts as the host kernel for OS-level RunC containers).
//
// All privileged effects flow through the EnginePort seam, so the identical
// kernel runs under RunC, HVM, PVM and CKI — exactly the paper's setting
// where every design boots the same (para-virtualized) Linux.
#ifndef SRC_GUEST_GUEST_KERNEL_H_
#define SRC_GUEST_GUEST_KERNEL_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/guest/engine_port.h"
#include "src/guest/ipc.h"
#include "src/obs/trace_context.h"
#include "src/guest/process.h"
#include "src/guest/syscall.h"
#include "src/guest/tmpfs.h"
#include "src/hw/page_table.h"
#include "src/sim/context.h"

namespace cki {

class SnapReader;
class SnapWriter;

// Interface the kernel's network syscalls (sendto/recvfrom/epoll) delegate
// to; wired to a virtio-net frontend by the container runtime, or to a
// loopback stub when no device is attached.
class NetPort {
 public:
  virtual ~NetPort() = default;
  // Transmits `bytes`; returns bytes sent.
  virtual uint64_t Transmit(int conn, uint64_t bytes) = 0;
  // Receives up to `max_bytes` from `conn`; 0 if nothing pending.
  virtual uint64_t Receive(int conn, uint64_t max_bytes) = 0;
  // True if any connection has pending data (epoll readiness).
  virtual bool HasPending() const = 0;

  // --- connection layer (optional; defaults for ports without one) --------
  // Binds `service`; returns a listener handle or negative errno.
  virtual int64_t Listen(uint16_t service, int backlog) {
    (void)service;
    (void)backlog;
    return kEINVAL;
  }
  // Pops one established connection off the listener's backlog; returns the
  // connection id, kEAGAIN if none pending, or another negative errno.
  virtual int64_t Accept(int64_t handle) {
    (void)handle;
    return kEINVAL;
  }
  // Connects to `service` on `dst_port`; returns the connection id or a
  // negative errno (kECONNREFUSED if nothing accepts).
  virtual int64_t Connect(int dst_port, uint16_t service) {
    (void)dst_port;
    (void)service;
    return kEINVAL;
  }
  virtual void CloseConn(int conn) { (void)conn; }
};

// Interface the kernel's block-file syscalls and page-cache fill path
// delegate to; wired to the src/blkfs subsystem by the container runtime
// (the NetPort pattern applied to storage). Inode numbers here are
// blkfs-local; the kernel offsets fds and VMAs into the kBlkfsInoBase
// range so tmpfs and blkfs share one inode namespace.
class BlkfsPort {
 public:
  virtual ~BlkfsPort() = default;
  // Opens (creating if absent) the blkfs file named by `name_arg`;
  // returns the blkfs-local inode or a negative errno.
  virtual int64_t Open(uint64_t name_arg) = 0;
  virtual int64_t FileSize(int ino) const = 0;
  // Reads/writes `bytes` at `offset` through the page cache, or around it
  // when `direct`. Returns bytes moved or a negative errno.
  virtual int64_t Read(int ino, uint64_t offset, uint64_t bytes, bool direct) = 0;
  virtual int64_t Write(int ino, uint64_t offset, uint64_t bytes, bool direct) = 0;
  // Writes back the inode's dirty pages and issues the flush barrier.
  virtual int64_t Fsync(int ino) = 0;
  // Page-cache page backing `block` of `ino`, read in (and pinned in the
  // kernel page cache via PinFilePage) on miss. kNoPage on OOM/I/O error.
  virtual uint64_t PageForMap(int ino, uint64_t block) = 0;
  // Marks a mapped page dirty on a shared-mapping write fault, breaking
  // cross-container frame sharing first. Returns the (possibly new)
  // backing page, or kNoPage on OOM.
  virtual uint64_t DirtyMappedPage(int ino, uint64_t block) = 0;
};

// Inodes at or above this value belong to the blkfs port; below, tmpfs.
// (FileDesc::ino and Vma::file_ino carry the offset form, so the existing
// snapshot stream and VMA machinery need no new discriminator field.)
inline constexpr int kBlkfsInoBase = 1 << 20;
inline constexpr bool IsBlkfsIno(int ino) { return ino >= kBlkfsInoBase; }

class GuestKernel {
 public:
  GuestKernel(SimContext& ctx, EnginePort& port);

  // --- process lifecycle ------------------------------------------------
  // Creates the initial process (fresh address space, text + stack VMAs).
  int CreateInitProcess();
  Process* process(int pid);
  Process& current();
  int current_pid() const { return current_pid_; }

  // Scheduler: switches to `pid` (address-space load + switch cost).
  void SwitchTo(int pid);
  // Picks the next runnable process (round robin) and switches to it.
  // Returns the pid switched to, or -1 if none.
  int Schedule();

  // Fault-domain teardown: drops every process and all kernel bookkeeping
  // WITHOUT touching the EnginePort. The engine's fault path bulk-reclaims
  // the container's frames afterwards, so freeing pages one by one here
  // would both double-free and re-enter the (possibly faulted) engine.
  void KillAllProcesses();

  // --- entry points the engine drives ------------------------------------
  // Executes a syscall on behalf of the current process. The engine has
  // already charged the design-specific entry path; handler work and its
  // privileged effects are charged here (through the port).
  SyscallResult HandleSyscall(const SyscallRequest& req);

  // Resolves a user page fault at `va` for the current process: demand
  // paging, copy-on-write, or file-backed fill. Returns false for an
  // invalid access (SIGSEGV).
  bool HandlePageFault(uint64_t va, bool write);

  // --- services wired by the runtime ------------------------------------
  void set_net(NetPort* net) { net_ = net; }
  void set_blkfs(BlkfsPort* blkfs) { blkfs_ = blkfs; }
  BlkfsPort* blkfs() { return blkfs_; }
  Tmpfs& tmpfs() { return tmpfs_; }

  // --- page-cache cooperation with src/blkfs ------------------------------
  // The blkfs page cache stores its pages in the kernel's file_pages_ map
  // (under kBlkfsInoBase-offset inodes), so snapshot/clone/restore and the
  // pin bookkeeping treat tmpfs and blkfs pages identically. `ino` is the
  // offset (kernel-visible) inode in all of these.
  // Inserts `pa` as the cache page of (ino, block) and takes the cache pin.
  void PinFilePage(int ino, uint64_t block, uint64_t pa);
  // Drops the cache entry and its pin; frees the page if unmapped.
  void UnpinFilePage(int ino, uint64_t block);
  // Current refcount of `pa` (1 = cache pin only, safe to evict).
  int PageRefs(uint64_t pa) const;
  // CoW-break rmap: repoints the cache entry and every process mapping of
  // (ino, block) from `old_pa` to `new_pa`, moving the refs; frees old_pa
  // through the port (which drops a cross-container share if present).
  void ReplaceFilePage(int ino, uint64_t block, uint64_t old_pa, uint64_t new_pa);
  // Writeback rmap: demotes every writable mapping of (ino, block) to
  // read-only so the next store refaults into the dirty-tracking path.
  void WriteProtectFilePage(int ino, uint64_t block, uint64_t pa);
  const std::map<std::pair<int, uint64_t>, uint64_t>& file_pages() const {
    return file_pages_;
  }

  // Installs an accepted network connection as a socket fd of the current
  // process (models accept() on a listening virtio-net backed socket).
  int InstallNetSocket(int conn_id);

  // Ambient causal request identity (DESIGN.md §11): adopted by the NIC on
  // receive, stamped onto every transmit, carried through snapshot/
  // restore/clone — a migrated container keeps the request it was serving.
  const TraceContext& net_trace() const { return net_trace_; }
  void set_net_trace(const TraceContext& tc) { net_trace_ = tc; }

  // --- introspection ------------------------------------------------------
  // Pids of all processes that still own an address space.
  std::vector<int> LivePids() const;
  uint64_t total_page_faults() const { return page_faults_; }
  uint64_t total_syscalls() const { return syscalls_; }
  size_t live_processes() const;
  PageTableEditor& editor() { return editor_; }

  // Per-syscall handler body cost (beyond the generic entry/exit path).
  SimNanos HandlerCost(Sys s) const;

  // --- snapshot / clone (guest_snapshot.cc) -------------------------------
  // Serializes all kernel state in a deterministic, PA-independent order.
  // Physical frames are renumbered with logical ids; `frame_writer` emits
  // the content of one frame (zero flag + words) given its physical address.
  void SnapshotTo(SnapWriter& w,
                  const std::function<void(uint64_t pa, SnapWriter& w)>& frame_writer);

  // Rebuilds the kernel from a snapshot stream: tears down the boot-time
  // init process, recreates processes/VMAs/page tables through the engine
  // port, and calls `frame_filler` to materialize each frame's content
  // (returns false on corrupt frame records). Returns false if the stream
  // is corrupt (the reader's sticky flag is also set).
  bool RestoreFrom(SnapReader& r,
                   const std::function<bool(uint64_t pa, SnapReader& r)>& frame_filler);

  // Copy-on-write fork of an entire container: copies kernel bookkeeping
  // from `parent`, maps every parent user page read-only in this kernel via
  // `adopt` (parent PA -> this-engine PA, sharing the host frame), and
  // write-protects the parent's own writable mappings.
  void CloneFrom(GuestKernel& parent,
                 const std::function<uint64_t(uint64_t parent_pa)>& adopt);

 private:
  // Drops every process, channel, tmpfs file and refcount (through the
  // port, unlike KillAllProcesses) so Restore/Clone start from a blank
  // kernel while keeping the booted kernel image mapped.
  void ResetForImage();

  // --- memory management (guest_kernel_mm.cc) -----------------------------
  uint64_t NewAddressSpace();
  void MapKernelImage(uint64_t root);
  // Page-cache page backing block `block` of inode `ino` (allocated and
  // pinned on first use).
  uint64_t FilePageFor(int ino, uint64_t block);
  void MapUserPage(Process& proc, uint64_t va, uint64_t pa, uint64_t prot, bool cow_readonly);
  bool FaultInPage(Process& proc, Vma& vma, uint64_t va, bool write);
  bool HandleCowFault(Process& proc, Vma& vma, uint64_t va);
  // Write fault on a clean shared blkfs mapping: dirty-tracking refault.
  bool HandleBlkfsDirtyFault(Process& proc, Vma& vma, uint64_t va);
  void UnmapRange(Process& proc, uint64_t start, uint64_t end);
  void TeardownAddressSpace(Process& proc);
  void FreeTableTree(uint64_t table_pa, int level);
  int ClonePagesCow(Process& parent, Process& child);
  uint64_t PteFlagsFor(uint64_t prot, bool cow_readonly) const;
  void RefPage(uint64_t pa);
  // Decrements the refcount; frees the page at zero.
  void UnrefPage(uint64_t pa);

  // --- syscall implementations (guest_kernel.cc) --------------------------
  SyscallResult SysRead(Process& proc, const SyscallRequest& req);
  SyscallResult SysWrite(Process& proc, const SyscallRequest& req);
  SyscallResult SysOpen(Process& proc, const SyscallRequest& req);
  SyscallResult SysClose(Process& proc, const SyscallRequest& req);
  SyscallResult SysStat(Process& proc, const SyscallRequest& req);
  SyscallResult SysFsync(Process& proc, const SyscallRequest& req);
  SyscallResult SysMmap(Process& proc, const SyscallRequest& req);
  SyscallResult SysMunmap(Process& proc, const SyscallRequest& req);
  SyscallResult SysMprotect(Process& proc, const SyscallRequest& req);
  SyscallResult SysBrk(Process& proc, const SyscallRequest& req);
  SyscallResult SysFork(Process& proc);
  SyscallResult SysExecve(Process& proc);
  SyscallResult SysExit(Process& proc, const SyscallRequest& req);
  SyscallResult SysWaitpid(Process& proc, const SyscallRequest& req);
  SyscallResult SysPipe(Process& proc);
  SyscallResult SysSocketpair(Process& proc);
  SyscallResult SysEpollWait(Process& proc, const SyscallRequest& req);
  SyscallResult SysSendRecv(Process& proc, const SyscallRequest& req, bool send);
  SyscallResult SysListen(Process& proc, const SyscallRequest& req);
  SyscallResult SysAccept(Process& proc, const SyscallRequest& req);
  SyscallResult SysConnect(Process& proc, const SyscallRequest& req);

  void CloseFd(Process& proc, FileDesc& fd);
  int NewProcessSlot();

  SimContext& ctx_;
  EnginePort& port_;
  PageTableEditor editor_;

  ProcessTable procs_;  // pid-indexed slab, ascending-pid sweeps
  int next_pid_ = 1;
  int current_pid_ = -1;
  uint16_t next_asid_ = 1;

  Tmpfs tmpfs_;
  std::unordered_map<int, IpcChannel> channels_;
  int next_channel_ = 1;
  NetPort* net_ = nullptr;
  BlkfsPort* blkfs_ = nullptr;

  // Shared-page refcounts (copy-on-write).
  std::unordered_map<uint64_t, int> page_refs_;
  // Physical pages of the (container-shared) kernel image.
  std::vector<uint64_t> kernel_image_pas_;
  // Page cache: (inode, block) -> physical page. The cache holds one
  // reference so mapped file pages survive process unmaps.
  std::map<std::pair<int, uint64_t>, uint64_t> file_pages_;

  uint64_t page_faults_ = 0;
  uint64_t syscalls_ = 0;
  TraceContext net_trace_;
};

}  // namespace cki

#endif  // SRC_GUEST_GUEST_KERNEL_H_
