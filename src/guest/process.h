// Process state of the model guest kernel.
#ifndef SRC_GUEST_PROCESS_H_
#define SRC_GUEST_PROCESS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "src/guest/vma.h"

namespace cki {

enum class FdKind : uint8_t {
  kFree = 0,
  kTmpfsFile,
  kChannelRead,   // pipe read end
  kChannelWrite,  // pipe write end
  kChannelBoth,   // socketpair end
  kNetSocket,     // virtio-net backed socket
  kNetListen,     // listening socket (accept pops connections)
  kBlkFile,       // block-backed file through the blkfs page cache
};

struct FileDesc {
  FdKind kind = FdKind::kFree;
  int ino = -1;         // tmpfs inode, or kBlkfsInoBase + blkfs inode
  uint64_t offset = 0;  // file position
  int channel = -1;     // ipc channel id
  int net_conn = -1;    // network connection id
  bool direct = false;  // O_DIRECT: blkfs I/O bypasses the page cache
};

enum class ProcState : uint8_t { kRunnable, kBlocked, kZombie, kDead };

// Guest user address-space layout.
inline constexpr uint64_t kUserTextBase = 0x0000'0000'0040'0000;
inline constexpr uint64_t kUserHeapBase = 0x0000'0000'1000'0000;
inline constexpr uint64_t kUserMmapBase = 0x0000'7f00'0000'0000;
inline constexpr uint64_t kUserStackTop = 0x0000'7fff'ff00'0000;
inline constexpr uint64_t kKernelBase = 0x0000'8000'0000'0000;  // bit 47 half

inline constexpr int kTextPages = 16;
inline constexpr int kStackPages = 8;

struct Process {
  int pid = -1;
  int parent = -1;
  ProcState state = ProcState::kRunnable;
  int exit_code = 0;

  uint64_t pt_root = 0;  // guest-physical address of the PML4
  uint16_t asid = 0;     // address-space id -> PCID within the container

  VmaList vmas;
  uint64_t brk = kUserHeapBase;
  uint64_t mmap_hint = kUserMmapBase;
  std::vector<FileDesc> fds;

  FileDesc* fd(int n) {
    if (n < 0 || static_cast<size_t>(n) >= fds.size() || fds[n].kind == FdKind::kFree) {
      return nullptr;
    }
    return &fds[static_cast<size_t>(n)];
  }

  int AllocFd() {
    for (size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].kind == FdKind::kFree) {
        return static_cast<int>(i);
      }
    }
    fds.push_back(FileDesc{});
    return static_cast<int>(fds.size() - 1);
  }
};

// Pid-indexed process slab (DESIGN.md §14). Pids come from a monotonic
// counter starting at 1, so the table is a flat vector indexed by
// pid - 1: lookup is a bounds check plus a load, and every sweep walks
// ascending pid *by construction*. That order is behavior — SysWaitpid
// reaps the lowest-pid matching zombie — so it must never come from
// hash-map iteration (the container-order regression tests pin this).
class ProcessTable {
 public:
  // Takes ownership of a process whose pid field is already set.
  Process* Adopt(std::unique_ptr<Process> proc) {
    size_t idx = static_cast<size_t>(proc->pid - 1);
    if (idx >= slots_.size()) {
      slots_.resize(idx + 1);
    }
    if (slots_[idx] == nullptr) {
      live_++;
    }
    slots_[idx] = std::move(proc);
    return slots_[idx].get();
  }

  Process* Get(int pid) const {
    size_t idx = static_cast<size_t>(pid) - 1;
    return pid >= 1 && idx < slots_.size() ? slots_[idx].get() : nullptr;
  }

  void Erase(int pid) {
    size_t idx = static_cast<size_t>(pid) - 1;
    if (pid >= 1 && idx < slots_.size() && slots_[idx] != nullptr) {
      slots_[idx].reset();
      live_--;
    }
  }

  void Clear() {
    slots_.clear();
    live_ = 0;
  }

  size_t size() const { return live_; }

  // Live pids, ascending by construction — no sort step.
  std::vector<int> Pids() const {
    std::vector<int> pids;
    pids.reserve(live_);
    for (const auto& slot : slots_) {
      if (slot != nullptr) {
        pids.push_back(slot->pid);
      }
    }
    return pids;
  }

  // Visits every live process in ascending pid order.
  template <typename F>
  void ForEach(F f) const {
    for (const auto& slot : slots_) {
      if (slot != nullptr) {
        f(*slot);
      }
    }
  }

 private:
  std::vector<std::unique_ptr<Process>> slots_;  // index = pid - 1
  size_t live_ = 0;
};

}  // namespace cki

#endif  // SRC_GUEST_PROCESS_H_
