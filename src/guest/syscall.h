// The syscall surface of the model guest kernel.
//
// The set covers what the paper's benchmarks exercise: lmbench micro ops
// (read/write/stat/pagefault/fork/execve/context switch/pipe/AF_UNIX),
// SQLite-style file I/O on tmpfs, and the socket path of the key-value
// stores. Semantics are functional (real fds, real tmpfs blocks, real VMA
// bookkeeping); data payloads are modeled by length, not by bytes.
#ifndef SRC_GUEST_SYSCALL_H_
#define SRC_GUEST_SYSCALL_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace cki {

enum class Sys : uint8_t {
  kGetpid = 0,
  kRead,
  kWrite,
  kPread,
  kPwrite,
  kOpen,
  kClose,
  kStat,
  kFstat,
  kFsync,
  kMmap,
  kMunmap,
  kMprotect,
  kBrk,
  kFork,
  kExecve,
  kExit,
  kWaitpid,
  kPipe,
  kSocketpair,
  kSchedYield,
  kEpollWait,
  kSendto,
  kRecvfrom,
  kGettimeofday,
  kListen,
  kAccept,
  kConnect,
  kCount,
};

// Canonical syscall names, indexed by Sys value; the static_assert makes
// adding a Sys entry without naming it a compile error (same pattern as
// kPathEventNames).
inline constexpr auto kSysNames = std::to_array<std::string_view>({
    "getpid",
    "read",
    "write",
    "pread",
    "pwrite",
    "open",
    "close",
    "stat",
    "fstat",
    "fsync",
    "mmap",
    "munmap",
    "mprotect",
    "brk",
    "fork",
    "execve",
    "exit",
    "waitpid",
    "pipe",
    "socketpair",
    "sched_yield",
    "epoll_wait",
    "sendto",
    "recvfrom",
    "gettimeofday",
    "listen",
    "accept",
    "connect",
});
static_assert(kSysNames.size() == static_cast<size_t>(Sys::kCount),
              "every Sys up to kCount must have a name in kSysNames");

inline std::string_view SysName(Sys s) {
  size_t i = static_cast<size_t>(s);
  return i < kSysNames.size() ? kSysNames[i] : std::string_view("unknown");
}

struct SyscallRequest {
  Sys no = Sys::kGetpid;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
  uint64_t arg3 = 0;
};

// Negative values are -errno, mirroring the Linux convention.
struct SyscallResult {
  int64_t value = 0;

  bool ok() const { return value >= 0; }
};

// errno values used by the model kernel.
inline constexpr int64_t kEIO = -5;
inline constexpr int64_t kEBADF = -9;
inline constexpr int64_t kENOMEM = -12;
inline constexpr int64_t kEFAULT = -14;
inline constexpr int64_t kEINVAL = -22;
inline constexpr int64_t kENOENT = -2;
inline constexpr int64_t kEAGAIN = -11;
inline constexpr int64_t kECHILD = -10;
inline constexpr int64_t kESRCH = -3;
inline constexpr int64_t kEADDRINUSE = -98;
inline constexpr int64_t kECONNREFUSED = -111;
// Listener exists but its accept backlog is momentarily full — transient,
// retryable (src/resil classifies it), unlike kECONNREFUSED's "no listener".
inline constexpr int64_t kEBUSY = -16;
// Private-range status (like ERESTARTSYS): the container was killed by its
// fault domain; no guest code observes it because no guest code runs again.
inline constexpr int64_t kEKILLED = -512;

// mmap/mprotect protection bits.
inline constexpr uint64_t kProtRead = 1;
inline constexpr uint64_t kProtWrite = 2;
inline constexpr uint64_t kProtExec = 4;

// mmap flag bits (SyscallRequest::arg2). File mappings take the fd in arg3.
inline constexpr uint64_t kMapPopulate = 1;
inline constexpr uint64_t kMapShared = 2;   // file-backed, shared page cache
inline constexpr uint64_t kMapPrivate = 4;  // file-backed, copy-on-write

// open(2) flag bits (SyscallRequest::arg1). Default (0) opens a tmpfs
// file; kOpenBlkfs routes the name to the block-backed filesystem
// (src/blkfs) and kOpenDirect additionally bypasses its page cache
// (O_DIRECT — device I/O per request, no cached pages, no readahead).
inline constexpr uint64_t kOpenBlkfs = 1;
inline constexpr uint64_t kOpenDirect = 2;

}  // namespace cki

#endif  // SRC_GUEST_SYSCALL_H_
