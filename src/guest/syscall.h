// The syscall surface of the model guest kernel.
//
// The set covers what the paper's benchmarks exercise: lmbench micro ops
// (read/write/stat/pagefault/fork/execve/context switch/pipe/AF_UNIX),
// SQLite-style file I/O on tmpfs, and the socket path of the key-value
// stores. Semantics are functional (real fds, real tmpfs blocks, real VMA
// bookkeeping); data payloads are modeled by length, not by bytes.
#ifndef SRC_GUEST_SYSCALL_H_
#define SRC_GUEST_SYSCALL_H_

#include <cstdint>
#include <string_view>

namespace cki {

enum class Sys : uint8_t {
  kGetpid = 0,
  kRead,
  kWrite,
  kPread,
  kPwrite,
  kOpen,
  kClose,
  kStat,
  kFstat,
  kFsync,
  kMmap,
  kMunmap,
  kMprotect,
  kBrk,
  kFork,
  kExecve,
  kExit,
  kWaitpid,
  kPipe,
  kSocketpair,
  kSchedYield,
  kEpollWait,
  kSendto,
  kRecvfrom,
  kGettimeofday,
  kCount,
};

std::string_view SysName(Sys s);

struct SyscallRequest {
  Sys no = Sys::kGetpid;
  uint64_t arg0 = 0;
  uint64_t arg1 = 0;
  uint64_t arg2 = 0;
  uint64_t arg3 = 0;
};

// Negative values are -errno, mirroring the Linux convention.
struct SyscallResult {
  int64_t value = 0;

  bool ok() const { return value >= 0; }
};

// errno values used by the model kernel.
inline constexpr int64_t kEBADF = -9;
inline constexpr int64_t kENOMEM = -12;
inline constexpr int64_t kEFAULT = -14;
inline constexpr int64_t kEINVAL = -22;
inline constexpr int64_t kENOENT = -2;
inline constexpr int64_t kEAGAIN = -11;
inline constexpr int64_t kECHILD = -10;
inline constexpr int64_t kESRCH = -3;

// mmap/mprotect protection bits.
inline constexpr uint64_t kProtRead = 1;
inline constexpr uint64_t kProtWrite = 2;
inline constexpr uint64_t kProtExec = 4;

// mmap flag bits (SyscallRequest::arg2). File mappings take the fd in arg3.
inline constexpr uint64_t kMapPopulate = 1;
inline constexpr uint64_t kMapShared = 2;   // file-backed, shared page cache
inline constexpr uint64_t kMapPrivate = 4;  // file-backed, copy-on-write

}  // namespace cki

#endif  // SRC_GUEST_SYSCALL_H_
