#include "src/blkfs/blk_frontend.h"

#include "src/fault/fault_injector.h"

namespace cki {

std::vector<BlkReadOutcome> BlkFrontend::ReadBlocks(const uint64_t* blocks, size_t n) {
  std::vector<BlkReadOutcome> out;
  out.reserve(n);
  bool submitted = false;
  uint64_t batch_grants = 0;
  for (size_t i = 0; i < n; ++i) {
    uint64_t block = blocks[i];
    BlkReadOutcome o;
    o.block = block;
    BlkResolution res = store_.Resolve(view_, block);
    ctx_.ChargeWork(ctx_.cost().blkfs_layer_resolve * res.chain_steps);
    o.tag = res.tag;
    o.from_delta = res.from_delta;
    if (injector_ != nullptr && injector_->InjectBlkfsIoError()) {
      engine_.machine().faults().Note({FaultKind::kBlkfsIoError, engine_.id(), block});
      o.io_error = true;
      io_errors_++;
      out.push_back(o);
      continue;
    }
    if (!res.from_delta && res.base_present) {
      // Base block: materialize once machine-wide, then every view maps
      // the same host frame. A fresh frame still costs the device read
      // that fills it; a seasoned one is a pure grant.
      bool fresh = false;
      o.shared_host_pa = store_.MaterializeBase(view_, block, &fresh);
      if (fresh) {
        device_.SubmitRead(block * kBlkSectorsPerBlock, kBlkSectorsPerBlock);
        submitted = true;
      } else {
        batch_grants++;
      }
    } else {
      // Delta blocks and holes past the base extent live in the
      // container's own pages: a plain device read.
      device_.SubmitRead(block * kBlkSectorsPerBlock, kBlkSectorsPerBlock);
      submitted = true;
    }
    out.push_back(o);
  }
  if (submitted) {
    device_.Poll();
  }
  if (batch_grants > 0) {
    // One doorbell-priced grant hypercall for the whole batch, plus the
    // per-block share-map bookkeeping (no storage latency: the frames
    // are already resident).
    ctx_.Charge(engine_.KickCost(), PathEvent::kVirtioKick);
    ctx_.ChargeWork(ctx_.cost().blkfs_base_share_map * batch_grants);
    grants_ += batch_grants;
    grant_kicks_++;
  }
  return out;
}

void BlkFrontend::WriteBlock(uint64_t block, uint64_t tag) {
  store_.WriteDelta(view_, block, tag);
  device_.WriteSectorTag(block * kBlkSectorsPerBlock, tag);
  device_.SubmitWrite(block * kBlkSectorsPerBlock, kBlkSectorsPerBlock);
}

}  // namespace cki
