// Block-backed filesystem with a real page cache for the model guest
// kernel (DESIGN.md §15). This is the guest half of src/blkfs: it
// implements the kernel's BlkfsPort — read/write/fsync plus the mmap
// cooperation hooks — on top of a per-container BlkFrontend (layer-chain
// resolution + virtio-blk) and the kernel's own file_pages_ registry.
//
// Cache structure: a fanout-64 radix tree over (inode, block) keys whose
// leaves own the page metadata, plus an LRU list for eviction. The
// kernel's file_pages_ map is the single source of truth for the backing
// physical pages (the cache pins them via PinFilePage), so snapshot,
// restore and CoW clone carry cache pages with no blkfs-specific frame
// bookkeeping — after either, RebuildCacheFromKernel re-derives the radix
// from the kernel map.
//
// Dirty tracking is epoch-based: writes dirty pages in place and every
// `writeback_epoch`-th dirty event triggers a batched asynchronous
// writeback (no barrier). fsync() writes back the inode's dirty pages and
// then forces the device FLUSH barrier — the exact path the WAL benchmark
// prices. O_DIRECT bypasses the cache entirely in both directions.
//
// Determinism contract: every cache event folds (op, ino, block, tag)
// into an FNV-1a trace hash — never a physical address — so the hash is
// bit-identical across thread counts and across engines that renumber
// frames (DESIGN.md §14).
#ifndef SRC_BLKFS_BLKFS_H_
#define SRC_BLKFS_BLKFS_H_

#include <array>
#include <cstdint>
#include <list>
#include <map>
#include <memory>
#include <vector>

#include "src/blkfs/blk_frontend.h"
#include "src/blkfs/blkfs_ops.h"
#include "src/guest/guest_kernel.h"
#include "src/runtime/engine.h"
#include "src/sim/fnv.h"

namespace cki {

class MetricsRegistry;
class SnapReader;
class SnapWriter;

struct BlkfsConfig {
  uint64_t cache_pages = 256;     // eviction target (pinned pages may exceed)
  uint64_t readahead_window = 8;  // blocks prefetched on a sequential miss
  uint64_t writeback_epoch = 64;  // dirty events per async writeback batch
  int queue_depth = 8;            // virtio queue depth of the frontend
};

// One file of a template image: `blocks` base blocks whose content tags
// derive from `tag_seed`.
struct BlkfsFileSpec {
  uint64_t name = 0;
  uint64_t blocks = 0;
  uint64_t tag_seed = 0;
};

struct BlkfsImageSpec {
  std::vector<BlkfsFileSpec> files;
};

// Content tag of base block `index` of a file seeded with `seed`.
constexpr uint64_t BlkfsImageTag(uint64_t seed, uint64_t index) {
  return FnvMix64(FnvMix64(kFnvOffsetBasis, seed), index);
}

// Registers the template image described by `spec` (files laid out
// sequentially from device block 0) and returns its image id. Dedups:
// building the same spec twice returns the same id.
int BuildBlkfsImage(LayerStore& store, const BlkfsImageSpec& spec);

// Cached-page metadata (radix leaf). The backing frame is pinned in the
// kernel's file_pages_ map; `pa` mirrors that entry.
struct BlkfsPage {
  int ino = -1;
  uint64_t block = 0;
  uint64_t pa = kNoPage;
  bool dirty = false;
  uint64_t pending_tag = 0;  // content tag the next writeback will persist
  std::list<uint64_t>::iterator lru;
};

// Fanout-64 radix tree over (ino, block) keys, leaves owning BlkfsPage.
// Height grows on demand; traversal visits keys in ascending order by
// construction (the determinism property a hash map could not give).
class BlkfsPageRadix {
 public:
  BlkfsPageRadix() : root_(new Node) {}
  ~BlkfsPageRadix() { FreeNode(root_, height_); }

  BlkfsPageRadix(const BlkfsPageRadix&) = delete;
  BlkfsPageRadix& operator=(const BlkfsPageRadix&) = delete;

  BlkfsPage* Find(uint64_t key) const;
  // Returns the leaf for `key`, creating it (value-initialized) on miss.
  BlkfsPage* Insert(uint64_t key);
  // Deletes the leaf and prunes emptied interior nodes.
  void Erase(uint64_t key);
  size_t size() const { return size_; }

  // Visits every leaf in ascending key order.
  template <typename F>
  void ForEach(F f) const {
    Walk(root_, height_, f);
  }

 private:
  static constexpr int kShift = 6;
  static constexpr int kFanout = 1 << kShift;
  struct Node {
    std::array<void*, kFanout> slots{};
    int count = 0;  // occupied slots (prune signal)
  };

  // True while `key` needs more levels than the tree currently has.
  bool Overflows(uint64_t key) const {
    return height_ * kShift < 64 && (key >> (height_ * kShift)) != 0;
  }
  bool EraseRec(Node* n, int height, uint64_t key);
  static void FreeNode(Node* n, int height);

  template <typename F>
  static void Walk(const Node* n, int height, F& f) {
    for (int i = 0; i < kFanout; ++i) {
      void* child = n->slots[static_cast<size_t>(i)];
      if (child == nullptr) {
        continue;
      }
      if (height == 1) {
        f(*static_cast<BlkfsPage*>(child));
      } else {
        Walk(static_cast<const Node*>(child), height - 1, f);
      }
    }
  }

  Node* root_;
  int height_ = 1;
  size_t size_ = 0;
};

struct BlkfsCounters {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t readahead = 0;
  uint64_t writebacks = 0;
  uint64_t evictions = 0;
  uint64_t fsyncs = 0;
  uint64_t direct_reads = 0;
  uint64_t direct_writes = 0;
  uint64_t base_shares = 0;
  uint64_t cow_breaks = 0;
};

// The per-container filesystem. Construct after engine.Boot() (it
// registers itself as the kernel's BlkfsPort); destroy before the engine.
class Blkfs final : public BlkfsPort {
 public:
  // Boots on `image_id` with the matching layout `spec` (the same spec
  // that built the image — files are addressed by their spec names).
  Blkfs(ContainerEngine& engine, LayerStore& store, int image_id, const BlkfsImageSpec& spec,
        const BlkfsConfig& cfg = {});
  ~Blkfs() override;

  Blkfs(const Blkfs&) = delete;
  Blkfs& operator=(const Blkfs&) = delete;

  // --- BlkfsPort (the kernel's storage seam) ------------------------------
  int64_t Open(uint64_t name_arg) override;
  int64_t FileSize(int ino) const override;
  int64_t Read(int ino, uint64_t offset, uint64_t bytes, bool direct) override;
  int64_t Write(int ino, uint64_t offset, uint64_t bytes, bool direct) override;
  int64_t Fsync(int ino) override;
  uint64_t PageForMap(int ino, uint64_t block) override;
  uint64_t DirtyMappedPage(int ino, uint64_t block) override;

  void set_injector(FaultInjector* injector) { frontend_.set_injector(injector); }

  // Writes back every dirty page and issues the flush barrier (the
  // checkpoint/clone quiesce point).
  void FlushAll();

  // --- introspection -------------------------------------------------------
  uint64_t trace_hash() const { return trace_hash_; }
  const BlkfsCounters& counters() const { return counters_; }
  const VirtioBlkStats& device_stats() const { return frontend_.stats(); }
  BlkFrontend& frontend() { return frontend_; }
  const BlkfsConfig& config() const { return cfg_; }
  size_t cached_pages() const { return cache_.size(); }
  uint64_t dirty_pages() const { return dirty_count_; }
  // Counters as "blkfs/..." metrics (BenchObsSink / --metrics-csv).
  void ExportMetrics(MetricsRegistry& metrics) const;

  // --- snapshot / clone (CKISNAP1 rides; DESIGN.md §10, §15) ---------------
  // Serializes config, image tags, delta, inode table and trace hash
  // (after FlushAll — a checkpoint is crash-consistent by construction).
  void SnapCapture(SnapWriter& w);
  // Rebuilds a Blkfs for a restored engine: re-registers the image
  // (dedup), replays the delta, re-derives the cache from the restored
  // kernel's file_pages_. Null if the stream is corrupt.
  static std::unique_ptr<Blkfs> Restore(ContainerEngine& engine, LayerStore& store,
                                        SnapReader& r);
  // CoW fork alongside CloneContainer: flushes the parent, clones the
  // delta view, re-derives the cache from the clone kernel's (shared,
  // read-only) file pages.
  static std::unique_ptr<Blkfs> Clone(ContainerEngine& clone_engine, Blkfs& parent);

 private:
  struct Inode {
    int ino = -1;
    uint64_t name = 0;
    uint64_t size = 0;        // bytes
    uint64_t base_start = 0;  // first device block of the base extent
    uint64_t base_blocks = 0;
    // File blocks past the base extent, allocated on first write.
    std::map<uint64_t, uint64_t> extra;  // file block -> device block
    uint64_t next_seq = 0;               // readahead sequential-run hint
  };

  // Raw constructor for Restore/Clone: adopts an already-open view.
  Blkfs(ContainerEngine& engine, LayerStore& store, int view_id, const BlkfsConfig& cfg);

  static uint64_t Key(int ino, uint64_t block) {
    return (static_cast<uint64_t>(static_cast<uint32_t>(ino)) << 32) | (block & 0xffffffffull);
  }

  // Cache lookup + miss fill (with readahead) for one page. `fill` false
  // skips the device read (whole-block overwrite). On failure returns
  // nullptr with last_error_ set (kEIO / kENOMEM).
  BlkfsPage* EnsurePage(int ino, uint64_t block, bool fill);
  // Device block backing file block `fblock`; allocates past-base blocks
  // when `alloc`, else kNoPage for unwritten holes.
  uint64_t DeviceBlockFor(Inode& node, uint64_t fblock, bool alloc);
  // Breaks cross-container sharing of a cached page before dirtying it.
  bool CowBreak(BlkfsPage& page);
  void MarkDirty(BlkfsPage& page);
  // Writes back dirty pages (of `only_ino`, or all when -1), ascending
  // key order, asynchronously (callers Drain/Barrier).
  void WritebackDirty(int only_ino);
  // Evicts cold unpinned pages until at/below capacity. `keep_key` (the
  // page about to be returned to a caller) is never evicted.
  void EvictToCapacity(uint64_t keep_key);
  void Touch(BlkfsPage& page) { lru_.splice(lru_.end(), lru_, page.lru); }
  void Trace(BlkfsOp op, uint64_t ino, uint64_t block, uint64_t tag) {
    uint64_t words[4] = {static_cast<uint64_t>(op), ino, block, tag};
    trace_hash_ = FnvMixWords(trace_hash_, words, 4);
  }
  // Re-derives radix + LRU from the kernel's file_pages_ (restore/clone).
  void RebuildCacheFromKernel();

  ContainerEngine& engine_;
  SimContext& ctx_;
  GuestKernel& kernel_;
  BlkfsConfig cfg_;
  BlkFrontend frontend_;
  std::map<uint64_t, int> names_;  // file name -> local inode
  std::vector<Inode> inodes_;
  uint64_t next_device_block_ = 0;
  BlkfsPageRadix cache_;
  std::list<uint64_t> lru_;  // cache keys, front = coldest
  uint64_t dirty_count_ = 0;
  uint64_t write_seq_ = 0;  // monotonic write stamp (feeds content tags)
  uint64_t trace_hash_ = kFnvOffsetBasis;
  BlkfsCounters counters_;
  int64_t last_error_ = 0;
};

// Rebuilds a restored container's filesystem from the stream's blkfs blob
// (RestoreOutcome::blkfs_state). Null when the stream carried no blkfs
// section or the blob is corrupt.
std::unique_ptr<Blkfs> RestoreBlkfsState(ContainerEngine& engine, LayerStore& store,
                                         const std::vector<uint8_t>& blob);

}  // namespace cki

#endif  // SRC_BLKFS_BLKFS_H_
