// Per-container block frontend: glues one container's layer-store view to
// its virtio-blk device (DESIGN.md §15).
//
// Reads resolve through the view's layer chain. Three outcomes per block:
//   * delta hit / unmaterialized base / fresh hole — a real device read,
//     batched through the virtio queue (doorbell + completion interrupt
//     amortized per queue-depth batch, as the device model prices it);
//   * materialized base — a *share grant*: the host hands the container a
//     reference to the already-resident image frame. No device I/O; the
//     batch pays one doorbell-priced grant hypercall plus the per-block
//     share-map cost.
// Writes always land in the view's private delta (and the device model's
// sector tags), submitted asynchronously; Barrier() is the fsync path.
//
// Chaos: blkfs_io_error_rate arms a per-device-read advisory fault —
// surfaced to the caller as an io_error outcome (-EIO at the syscall
// layer), noted on the fault bus, never a kill.
#ifndef SRC_BLKFS_BLK_FRONTEND_H_
#define SRC_BLKFS_BLK_FRONTEND_H_

#include <cstdint>
#include <vector>

#include "src/blkfs/layer_store.h"
#include "src/host/virtio_blk.h"
#include "src/runtime/engine.h"

namespace cki {

class FaultInjector;

// Device blocks are 4 KiB = 8 virtio sectors.
inline constexpr uint64_t kBlkSectorsPerBlock = 8;

// Outcome of one block read through the layer chain.
struct BlkReadOutcome {
  uint64_t block = 0;
  uint64_t tag = 0;
  // Shared host frame to adopt instead of filling a private page; kNoPage
  // when the read was served by device I/O (or errored).
  uint64_t shared_host_pa = kNoPage;
  bool from_delta = false;
  bool io_error = false;
};

class BlkFrontend {
 public:
  // Takes ownership of `view_id` (closed on destruction). The caller
  // opens the view — OpenView for a boot, CloneView for a CoW fork.
  BlkFrontend(ContainerEngine& engine, LayerStore& store, int view_id, int queue_depth = 8)
      : engine_(engine),
        ctx_(engine.machine().ctx()),
        store_(store),
        view_(view_id),
        device_(engine, queue_depth) {}
  ~BlkFrontend() { store_.CloseView(view_); }

  BlkFrontend(const BlkFrontend&) = delete;
  BlkFrontend& operator=(const BlkFrontend&) = delete;

  void set_injector(FaultInjector* injector) { injector_ = injector; }
  int view() const { return view_; }

  // Resolves and reads `n` device blocks as one batch: device reads go
  // through the virtio queue (completed before return), materialized base
  // blocks come back as share grants. Outcomes are in input order.
  std::vector<BlkReadOutcome> ReadBlocks(const uint64_t* blocks, size_t n);

  // Records a block write in the view's delta and submits the device
  // write (asynchronous; Drain()/Barrier() completes it).
  void WriteBlock(uint64_t block, uint64_t tag);

  // Completes all pending device requests (writeback batching).
  void Drain() { device_.Poll(); }
  // fsync barrier: completes everything, then a priced FLUSH round trip.
  void Barrier() { device_.Flush(); }

  const VirtioBlkStats& stats() const { return device_.stats(); }
  LayerStore& store() { return store_; }
  uint64_t grants() const { return grants_; }
  uint64_t grant_kicks() const { return grant_kicks_; }
  uint64_t io_errors() const { return io_errors_; }

 private:
  ContainerEngine& engine_;
  SimContext& ctx_;
  LayerStore& store_;
  int view_;
  VirtioBlkDevice device_;
  FaultInjector* injector_ = nullptr;
  uint64_t grants_ = 0;
  uint64_t grant_kicks_ = 0;
  uint64_t io_errors_ = 0;
};

}  // namespace cki

#endif  // SRC_BLKFS_BLK_FRONTEND_H_
