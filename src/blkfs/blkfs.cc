#include "src/blkfs/blkfs.h"

#include <cassert>
#include <utility>

#include "src/obs/metrics_registry.h"
#include "src/snap/snap_stream.h"

namespace cki {

// --- radix tree --------------------------------------------------------------

BlkfsPage* BlkfsPageRadix::Find(uint64_t key) const {
  if (Overflows(key)) {
    return nullptr;
  }
  Node* cur = root_;
  for (int h = height_; h > 1; --h) {
    void* child = cur->slots[(key >> ((h - 1) * kShift)) & (kFanout - 1)];
    if (child == nullptr) {
      return nullptr;
    }
    cur = static_cast<Node*>(child);
  }
  return static_cast<BlkfsPage*>(cur->slots[key & (kFanout - 1)]);
}

BlkfsPage* BlkfsPageRadix::Insert(uint64_t key) {
  while (Overflows(key)) {
    Node* n = new Node;
    n->slots[0] = root_;
    n->count = 1;
    root_ = n;
    height_++;
  }
  Node* cur = root_;
  for (int h = height_; h > 1; --h) {
    size_t idx = (key >> ((h - 1) * kShift)) & (kFanout - 1);
    if (cur->slots[idx] == nullptr) {
      cur->slots[idx] = new Node;
      cur->count++;
    }
    cur = static_cast<Node*>(cur->slots[idx]);
  }
  size_t idx = key & (kFanout - 1);
  if (cur->slots[idx] == nullptr) {
    cur->slots[idx] = new BlkfsPage;
    cur->count++;
    size_++;
  }
  return static_cast<BlkfsPage*>(cur->slots[idx]);
}

bool BlkfsPageRadix::EraseRec(Node* n, int height, uint64_t key) {
  size_t idx = (key >> ((height - 1) * kShift)) & (kFanout - 1);
  void* child = n->slots[idx];
  if (child == nullptr) {
    return false;
  }
  if (height == 1) {
    delete static_cast<BlkfsPage*>(child);
    n->slots[idx] = nullptr;
    n->count--;
    size_--;
    return true;
  }
  Node* c = static_cast<Node*>(child);
  if (!EraseRec(c, height - 1, key)) {
    return false;
  }
  if (c->count == 0) {
    delete c;
    n->slots[idx] = nullptr;
    n->count--;
  }
  return true;
}

void BlkfsPageRadix::Erase(uint64_t key) {
  if (!Overflows(key)) {
    EraseRec(root_, height_, key);
  }
}

void BlkfsPageRadix::FreeNode(Node* n, int height) {
  for (size_t i = 0; i < kFanout; ++i) {
    void* child = n->slots[i];
    if (child == nullptr) {
      continue;
    }
    if (height == 1) {
      delete static_cast<BlkfsPage*>(child);
    } else {
      FreeNode(static_cast<Node*>(child), height - 1);
    }
  }
  delete n;
}

// --- image building ----------------------------------------------------------

int BuildBlkfsImage(LayerStore& store, const BlkfsImageSpec& spec) {
  std::vector<uint64_t> tags;
  for (const BlkfsFileSpec& f : spec.files) {
    for (uint64_t b = 0; b < f.blocks; ++b) {
      tags.push_back(BlkfsImageTag(f.tag_seed, b));
    }
  }
  return store.RegisterImage(std::move(tags));
}

// --- lifecycle ---------------------------------------------------------------

Blkfs::Blkfs(ContainerEngine& engine, LayerStore& store, int view_id, const BlkfsConfig& cfg)
    : engine_(engine),
      ctx_(engine.machine().ctx()),
      kernel_(engine.kernel()),
      cfg_(cfg),
      frontend_(engine, store, view_id, cfg.queue_depth) {
  kernel_.set_blkfs(this);
}

Blkfs::Blkfs(ContainerEngine& engine, LayerStore& store, int image_id, const BlkfsImageSpec& spec,
             const BlkfsConfig& cfg)
    : Blkfs(engine, store, store.OpenView(image_id, engine.id()), cfg) {
  uint64_t start = 0;
  for (const BlkfsFileSpec& f : spec.files) {
    int ino = static_cast<int>(inodes_.size());
    Inode node;
    node.ino = ino;
    node.name = f.name;
    node.size = f.blocks * kPageSize;
    node.base_start = start;
    node.base_blocks = f.blocks;
    names_[f.name] = ino;
    inodes_.push_back(std::move(node));
    start += f.blocks;
  }
  next_device_block_ = start;
}

Blkfs::~Blkfs() { kernel_.set_blkfs(nullptr); }

// --- syscall surface ---------------------------------------------------------

int64_t Blkfs::Open(uint64_t name_arg) {
  auto it = names_.find(name_arg);
  if (it != names_.end()) {
    return it->second;
  }
  int ino = static_cast<int>(inodes_.size());
  Inode node;
  node.ino = ino;
  node.name = name_arg;
  names_[name_arg] = ino;
  inodes_.push_back(std::move(node));
  return ino;
}

int64_t Blkfs::FileSize(int ino) const {
  if (ino < 0 || static_cast<size_t>(ino) >= inodes_.size()) {
    return kEBADF;
  }
  return static_cast<int64_t>(inodes_[static_cast<size_t>(ino)].size);
}

int64_t Blkfs::Read(int ino, uint64_t offset, uint64_t bytes, bool direct) {
  if (ino < 0 || static_cast<size_t>(ino) >= inodes_.size()) {
    return kEBADF;
  }
  Inode& node = inodes_[static_cast<size_t>(ino)];
  if (bytes == 0 || offset >= node.size) {
    return 0;
  }
  if (bytes > node.size - offset) {
    bytes = node.size - offset;
  }
  uint64_t first = offset >> kPageShift;
  uint64_t last = (offset + bytes - 1) >> kPageShift;
  if (direct) {
    // O_DIRECT: device I/O per request, no cached pages, no readahead.
    // (Pending buffered dirty data is not flushed first — mixing modes
    // without fsync is as undefined here as on a real kernel.)
    std::vector<uint64_t> devs;
    for (uint64_t fb = first; fb <= last; ++fb) {
      uint64_t dev = DeviceBlockFor(node, fb, /*alloc=*/false);
      if (dev != kNoPage) {
        devs.push_back(dev);  // unwritten holes read as zeros, no I/O
      }
      counters_.direct_reads++;
      Trace(BlkfsOp::kDirectRead, static_cast<uint64_t>(ino), fb, 0);
    }
    if (!devs.empty()) {
      std::vector<BlkReadOutcome> outs = frontend_.ReadBlocks(devs.data(), devs.size());
      for (const BlkReadOutcome& o : outs) {
        if (o.io_error) {
          return kEIO;
        }
      }
    }
    return static_cast<int64_t>(bytes);
  }
  for (uint64_t fb = first; fb <= last; ++fb) {
    if (EnsurePage(ino, fb, /*fill=*/true) == nullptr) {
      return last_error_;
    }
  }
  Trace(BlkfsOp::kRead, static_cast<uint64_t>(ino), first, bytes);
  return static_cast<int64_t>(bytes);
}

int64_t Blkfs::Write(int ino, uint64_t offset, uint64_t bytes, bool direct) {
  if (ino < 0 || static_cast<size_t>(ino) >= inodes_.size()) {
    return kEBADF;
  }
  if (bytes == 0) {
    return 0;
  }
  Inode& node = inodes_[static_cast<size_t>(ino)];
  uint64_t end = offset + bytes;
  if (end > node.size) {
    node.size = end;
  }
  uint64_t first = offset >> kPageShift;
  uint64_t last = (end - 1) >> kPageShift;
  if (direct) {
    for (uint64_t fb = first; fb <= last; ++fb) {
      uint64_t dev = DeviceBlockFor(node, fb, /*alloc=*/true);
      uint64_t tag = FnvMix64(FnvMix64(kFnvOffsetBasis, Key(ino, fb)), ++write_seq_);
      frontend_.WriteBlock(dev, tag);
      counters_.direct_writes++;
      Trace(BlkfsOp::kDirectWrite, static_cast<uint64_t>(ino), fb, tag);
      // Keep the cache coherent with the device: overlapping clean
      // unmapped pages drop; dirty ones must not resurface stale data
      // in a later writeback.
      uint64_t key = Key(ino, fb);
      BlkfsPage* m = cache_.Find(key);
      if (m != nullptr) {
        if (m->dirty) {
          m->dirty = false;
          m->pending_tag = 0;
          dirty_count_--;
        }
        if (kernel_.PageRefs(m->pa) == 1) {
          kernel_.UnpinFilePage(kBlkfsInoBase + ino, fb);
          lru_.erase(m->lru);
          cache_.Erase(key);
        }
      }
    }
    frontend_.Drain();
    return static_cast<int64_t>(bytes);
  }
  for (uint64_t fb = first; fb <= last; ++fb) {
    uint64_t block_start = fb << kPageShift;
    bool whole = offset <= block_start && end >= block_start + kPageSize;
    BlkfsPage* m = EnsurePage(ino, fb, /*fill=*/!whole);
    if (m == nullptr) {
      return last_error_;
    }
    if (engine_.FrameShared(m->pa) && !CowBreak(*m)) {
      return last_error_;
    }
    MarkDirty(*m);
  }
  Trace(BlkfsOp::kWrite, static_cast<uint64_t>(ino), first, bytes);
  return static_cast<int64_t>(bytes);
}

int64_t Blkfs::Fsync(int ino) {
  if (ino < 0 || static_cast<size_t>(ino) >= inodes_.size()) {
    return kEBADF;
  }
  WritebackDirty(ino);
  frontend_.Barrier();
  counters_.fsyncs++;
  Trace(BlkfsOp::kFsync, static_cast<uint64_t>(ino), 0, write_seq_);
  return 0;
}

void Blkfs::FlushAll() {
  WritebackDirty(-1);
  frontend_.Barrier();
}

// --- mmap cooperation --------------------------------------------------------

uint64_t Blkfs::PageForMap(int ino, uint64_t block) {
  if (ino < 0 || static_cast<size_t>(ino) >= inodes_.size()) {
    return kNoPage;
  }
  BlkfsPage* m = EnsurePage(ino, block, /*fill=*/true);
  return m != nullptr ? m->pa : kNoPage;
}

uint64_t Blkfs::DirtyMappedPage(int ino, uint64_t block) {
  if (ino < 0 || static_cast<size_t>(ino) >= inodes_.size()) {
    return kNoPage;
  }
  BlkfsPage* m = EnsurePage(ino, block, /*fill=*/true);
  if (m == nullptr) {
    return kNoPage;
  }
  if (engine_.FrameShared(m->pa) && !CowBreak(*m)) {
    return kNoPage;
  }
  MarkDirty(*m);
  return m->pa;
}

// --- cache internals ---------------------------------------------------------

uint64_t Blkfs::DeviceBlockFor(Inode& node, uint64_t fblock, bool alloc) {
  if (fblock < node.base_blocks) {
    return node.base_start + fblock;
  }
  auto it = node.extra.find(fblock);
  if (it != node.extra.end()) {
    return it->second;
  }
  if (!alloc) {
    return kNoPage;
  }
  uint64_t dev = next_device_block_++;
  node.extra[fblock] = dev;
  return dev;
}

BlkfsPage* Blkfs::EnsurePage(int ino, uint64_t block, bool fill) {
  ctx_.ChargeWork(ctx_.cost().blkfs_cache_lookup);
  uint64_t key = Key(ino, block);
  if (BlkfsPage* m = cache_.Find(key)) {
    counters_.hits++;
    Touch(*m);
    // Hits extend the sequential run too, so a stream that alternates
    // prefetched hits and window-boundary misses keeps its readahead.
    inodes_[static_cast<size_t>(ino)].next_seq = block + 1;
    Trace(BlkfsOp::kCacheHit, static_cast<uint64_t>(ino), block, 0);
    return m;
  }
  counters_.misses++;
  Inode& node = inodes_[static_cast<size_t>(ino)];
  // The miss batch: the faulting block, plus the readahead window when
  // the access continues the inode's sequential run.
  struct Want {
    uint64_t fblock = 0;
    uint64_t dev = kNoPage;
    bool readahead = false;
  };
  std::vector<Want> want;
  want.push_back({block, fill ? DeviceBlockFor(node, block, false) : kNoPage, false});
  if (fill && want[0].dev != kNoPage && block == node.next_seq && cfg_.readahead_window > 0) {
    uint64_t size_blocks = (node.size + kPageSize - 1) >> kPageShift;
    for (uint64_t r = 1; r <= cfg_.readahead_window; ++r) {
      uint64_t fb = block + r;
      if (fb >= size_blocks || cache_.Find(Key(ino, fb)) != nullptr) {
        break;
      }
      uint64_t dev = DeviceBlockFor(node, fb, false);
      if (dev == kNoPage) {
        break;  // a hole ends the run
      }
      want.push_back({fb, dev, true});
    }
  }
  node.next_seq = block + 1;
  std::vector<uint64_t> devs;
  for (const Want& w : want) {
    if (w.dev != kNoPage) {
      devs.push_back(w.dev);
    }
  }
  std::vector<BlkReadOutcome> outs;
  if (!devs.empty()) {
    outs = frontend_.ReadBlocks(devs.data(), devs.size());
  }
  size_t oi = 0;
  BlkfsPage* primary = nullptr;
  for (const Want& w : want) {
    uint64_t pa = kNoPage;
    uint64_t tag = 0;
    if (w.dev != kNoPage) {
      const BlkReadOutcome& o = outs[oi++];
      if (o.io_error) {
        if (!w.readahead) {
          last_error_ = kEIO;
          return nullptr;
        }
        continue;  // readahead errors drop the prefetch, nothing more
      }
      tag = o.tag;
      if (o.shared_host_pa != kNoPage) {
        // Materialized base block: adopt the shared host frame instead
        // of filling a private copy — the cross-container dedup.
        pa = engine_.AdoptSharedFrame(o.shared_host_pa);
        counters_.base_shares++;
        Trace(BlkfsOp::kBaseShare, static_cast<uint64_t>(ino), w.fblock, tag);
      }
    }
    if (pa == kNoPage) {
      pa = engine_.AllocDataPage();
      if (pa == kNoPage) {
        if (!w.readahead) {
          last_error_ = kENOMEM;
          return nullptr;
        }
        continue;
      }
    }
    BlkfsPage* m = cache_.Insert(Key(ino, w.fblock));
    m->ino = ino;
    m->block = w.fblock;
    m->pa = pa;
    m->dirty = false;
    m->pending_tag = 0;
    lru_.push_back(Key(ino, w.fblock));
    m->lru = std::prev(lru_.end());
    kernel_.PinFilePage(kBlkfsInoBase + ino, w.fblock, pa);
    if (w.readahead) {
      counters_.readahead++;
      Trace(BlkfsOp::kReadahead, static_cast<uint64_t>(ino), w.fblock, tag);
    } else {
      Trace(BlkfsOp::kCacheMiss, static_cast<uint64_t>(ino), w.fblock, tag);
      primary = m;
    }
  }
  EvictToCapacity(key);
  return primary;
}

bool Blkfs::CowBreak(BlkfsPage& page) {
  uint64_t new_pa = engine_.AllocDataPage();
  if (new_pa == kNoPage) {
    last_error_ = kENOMEM;
    return false;
  }
  ctx_.ChargeWork(ctx_.cost().copy_per_4k);
  // Repoints the kernel cache entry and every process mapping, moves the
  // refs, and releases the shared frame through the engine.
  kernel_.ReplaceFilePage(kBlkfsInoBase + page.ino, page.block, page.pa, new_pa);
  page.pa = new_pa;
  counters_.cow_breaks++;
  Trace(BlkfsOp::kCowBreak, static_cast<uint64_t>(page.ino), page.block, 0);
  return true;
}

void Blkfs::MarkDirty(BlkfsPage& page) {
  if (!page.dirty) {
    page.dirty = true;
    dirty_count_++;
  }
  page.pending_tag = FnvMix64(FnvMix64(kFnvOffsetBasis, Key(page.ino, page.block)), ++write_seq_);
  if (dirty_count_ >= cfg_.writeback_epoch) {
    // Epoch writeback: batched and asynchronous — no barrier; only
    // fsync pays the flush.
    WritebackDirty(-1);
    frontend_.Drain();
  }
}

void Blkfs::WritebackDirty(int only_ino) {
  cache_.ForEach([&](BlkfsPage& m) {
    if (!m.dirty || (only_ino >= 0 && m.ino != only_ino)) {
      return;
    }
    Inode& node = inodes_[static_cast<size_t>(m.ino)];
    uint64_t dev = DeviceBlockFor(node, m.block, /*alloc=*/true);
    ctx_.ChargeWork(ctx_.cost().blkfs_writeback_page);
    frontend_.WriteBlock(dev, m.pending_tag);
    Trace(BlkfsOp::kWriteback, static_cast<uint64_t>(m.ino), m.block, m.pending_tag);
    m.dirty = false;
    m.pending_tag = 0;
    dirty_count_--;
    counters_.writebacks++;
    // Demote writable mappings so the next store refaults into the
    // dirty-tracking path.
    kernel_.WriteProtectFilePage(kBlkfsInoBase + m.ino, m.block, m.pa);
  });
}

void Blkfs::EvictToCapacity(uint64_t keep_key) {
  while (cache_.size() > cfg_.cache_pages) {
    bool evicted = false;
    for (auto it = lru_.begin(); it != lru_.end(); ++it) {
      uint64_t key = *it;
      if (key == keep_key) {
        continue;
      }
      BlkfsPage* m = cache_.Find(key);
      assert(m != nullptr);
      if (kernel_.PageRefs(m->pa) != 1) {
        continue;  // mapped by a process: pinned, skip
      }
      if (m->dirty) {
        Inode& node = inodes_[static_cast<size_t>(m->ino)];
        ctx_.ChargeWork(ctx_.cost().blkfs_writeback_page);
        frontend_.WriteBlock(DeviceBlockFor(node, m->block, true), m->pending_tag);
        Trace(BlkfsOp::kWriteback, static_cast<uint64_t>(m->ino), m->block, m->pending_tag);
        m->dirty = false;
        dirty_count_--;
        counters_.writebacks++;
        frontend_.Drain();
      }
      counters_.evictions++;
      Trace(BlkfsOp::kEvict, static_cast<uint64_t>(m->ino), m->block, 0);
      // Dropping the pin frees the page through the port (and releases
      // a cross-container share if this was an adopted base frame).
      kernel_.UnpinFilePage(kBlkfsInoBase + m->ino, m->block);
      lru_.erase(it);
      cache_.Erase(key);
      evicted = true;
      break;
    }
    if (!evicted) {
      break;  // everything resident is mapped: over capacity is allowed
    }
  }
}

void Blkfs::RebuildCacheFromKernel() {
  for (const auto& [key, pa] : kernel_.file_pages()) {
    if (!IsBlkfsIno(key.first)) {
      continue;
    }
    int ino = key.first - kBlkfsInoBase;
    uint64_t k = Key(ino, key.second);
    BlkfsPage* m = cache_.Insert(k);
    m->ino = ino;
    m->block = key.second;
    m->pa = pa;
    lru_.push_back(k);
    m->lru = std::prev(lru_.end());
  }
}

// --- metrics -----------------------------------------------------------------

void Blkfs::ExportMetrics(MetricsRegistry& metrics) const {
  metrics.Inc("blkfs/cache_hit", counters_.hits);
  metrics.Inc("blkfs/cache_miss", counters_.misses);
  metrics.Inc("blkfs/readahead", counters_.readahead);
  metrics.Inc("blkfs/writeback", counters_.writebacks);
  metrics.Inc("blkfs/evict", counters_.evictions);
  metrics.Inc("blkfs/fsync", counters_.fsyncs);
  metrics.Inc("blkfs/direct_read", counters_.direct_reads);
  metrics.Inc("blkfs/direct_write", counters_.direct_writes);
  metrics.Inc("blkfs/base_share", counters_.base_shares);
  metrics.Inc("blkfs/cow_break", counters_.cow_breaks);
  metrics.Inc("blkfs/io_error", frontend_.io_errors());
  metrics.Inc("blkfs/dev_reads", device_stats().reads);
  metrics.Inc("blkfs/dev_writes", device_stats().writes);
  metrics.Inc("blkfs/dev_flushes", device_stats().flushes);
}

// --- snapshot / clone --------------------------------------------------------

void Blkfs::SnapCapture(SnapWriter& w) {
  FlushAll();
  w.PutU64(cfg_.cache_pages);
  w.PutU64(cfg_.readahead_window);
  w.PutU64(cfg_.writeback_epoch);
  w.PutU32(static_cast<uint32_t>(cfg_.queue_depth));
  w.PutU64(write_seq_);
  w.PutU64(next_device_block_);
  w.PutU64(trace_hash_);
  LayerStore& store = frontend_.store();
  const BlkImage& image = store.image(store.image_of(frontend_.view()));
  w.PutU32(static_cast<uint32_t>(image.block_tags.size()));
  for (uint64_t tag : image.block_tags) {
    w.PutU64(tag);
  }
  const std::map<uint64_t, uint64_t>& delta = store.delta(frontend_.view());
  w.PutU32(static_cast<uint32_t>(delta.size()));
  for (const auto& [block, tag] : delta) {
    w.PutU64(block);
    w.PutU64(tag);
  }
  w.PutU32(static_cast<uint32_t>(inodes_.size()));
  for (const Inode& node : inodes_) {
    w.PutU64(node.name);
    w.PutU64(node.size);
    w.PutU64(node.base_start);
    w.PutU64(node.base_blocks);
    w.PutU64(node.next_seq);
    w.PutU32(static_cast<uint32_t>(node.extra.size()));
    for (const auto& [fb, dev] : node.extra) {
      w.PutU64(fb);
      w.PutU64(dev);
    }
  }
}

std::unique_ptr<Blkfs> Blkfs::Restore(ContainerEngine& engine, LayerStore& store, SnapReader& r) {
  BlkfsConfig cfg;
  cfg.cache_pages = r.GetU64();
  cfg.readahead_window = r.GetU64();
  cfg.writeback_epoch = r.GetU64();
  cfg.queue_depth = static_cast<int>(r.GetU32());
  uint64_t write_seq = r.GetU64();
  uint64_t next_device_block = r.GetU64();
  uint64_t trace_hash = r.GetU64();
  uint64_t n_tags = r.GetCount(8);
  std::vector<uint64_t> tags;
  tags.reserve(n_tags);
  for (uint64_t i = 0; i < n_tags && r.ok(); ++i) {
    tags.push_back(r.GetU64());
  }
  if (!r.ok()) {
    return nullptr;
  }
  // Re-attach, don't copy: an identical image dedups to the machine's
  // existing record (and its already-materialized frames).
  int image_id = store.RegisterImage(std::move(tags));
  int view = store.OpenView(image_id, engine.id());
  std::unique_ptr<Blkfs> fs(new Blkfs(engine, store, view, cfg));
  uint64_t n_delta = r.GetCount(8 + 8);
  for (uint64_t i = 0; i < n_delta && r.ok(); ++i) {
    uint64_t block = r.GetU64();
    uint64_t tag = r.GetU64();
    store.WriteDelta(view, block, tag);
  }
  uint64_t n_inodes = r.GetCount(8 * 5 + 4);
  for (uint64_t i = 0; i < n_inodes && r.ok(); ++i) {
    Inode node;
    node.ino = static_cast<int>(i);
    node.name = r.GetU64();
    node.size = r.GetU64();
    node.base_start = r.GetU64();
    node.base_blocks = r.GetU64();
    node.next_seq = r.GetU64();
    uint64_t n_extra = r.GetCount(8 + 8);
    for (uint64_t e = 0; e < n_extra && r.ok(); ++e) {
      uint64_t fb = r.GetU64();
      uint64_t dev = r.GetU64();
      node.extra[fb] = dev;
    }
    fs->names_[node.name] = node.ino;
    fs->inodes_.push_back(std::move(node));
  }
  if (!r.ok()) {
    return nullptr;
  }
  fs->write_seq_ = write_seq;
  fs->next_device_block_ = next_device_block;
  fs->trace_hash_ = trace_hash;
  fs->RebuildCacheFromKernel();
  return fs;
}

std::unique_ptr<Blkfs> RestoreBlkfsState(ContainerEngine& engine, LayerStore& store,
                                         const std::vector<uint8_t>& blob) {
  SnapReader r(blob);
  if (!r.GetBool() || !r.ok()) {
    return nullptr;
  }
  std::unique_ptr<Blkfs> fs = Blkfs::Restore(engine, store, r);
  return r.ok() ? std::move(fs) : nullptr;
}

std::unique_ptr<Blkfs> Blkfs::Clone(ContainerEngine& clone_engine, Blkfs& parent) {
  // Quiesce first: the clone forks a crash-consistent state (all dirty
  // pages written back to the parent's delta, which the clone copies).
  parent.FlushAll();
  LayerStore& store = parent.frontend_.store();
  int view = store.CloneView(parent.frontend_.view(), clone_engine.id());
  std::unique_ptr<Blkfs> fs(new Blkfs(clone_engine, store, view, parent.cfg_));
  fs->names_ = parent.names_;
  fs->inodes_ = parent.inodes_;
  fs->next_device_block_ = parent.next_device_block_;
  fs->write_seq_ = parent.write_seq_;
  fs->trace_hash_ = parent.trace_hash_;
  fs->RebuildCacheFromKernel();
  return fs;
}

}  // namespace cki
