#include "src/blkfs/layer_store.h"

#include <cassert>
#include <utility>

#include "src/host/machine.h"
#include "src/sim/fnv.h"

namespace cki {

int LayerStore::RegisterImage(std::vector<uint64_t> block_tags) {
  uint64_t hash = FnvMixWords(kFnvOffsetBasis, block_tags.data(), block_tags.size());
  for (size_t i = 0; i < images_.size(); ++i) {
    if (images_[i].content_hash == hash && images_[i].block_tags == block_tags) {
      return static_cast<int>(i);
    }
  }
  BlkImage image;
  image.frames.assign(block_tags.size(), kNoPage);
  image.block_tags = std::move(block_tags);
  image.content_hash = hash;
  images_.push_back(std::move(image));
  return static_cast<int>(images_.size() - 1);
}

int LayerStore::OpenView(int image_id, OwnerId owner) {
  assert(image_id >= 0 && static_cast<size_t>(image_id) < images_.size());
  int id = next_view_++;
  views_[id] = View{image_id, owner, {}};
  return id;
}

int LayerStore::CloneView(int view_id, OwnerId owner) {
  const View& parent = views_.at(view_id);
  int id = next_view_++;
  views_[id] = View{parent.image_id, owner, parent.delta};
  return id;
}

void LayerStore::CloseView(int view_id) { views_.erase(view_id); }

BlkResolution LayerStore::Resolve(int view_id, uint64_t block) const {
  const View& view = views_.at(view_id);
  BlkResolution res;
  auto it = view.delta.find(block);
  if (it != view.delta.end()) {
    res.tag = it->second;
    res.from_delta = true;
    res.chain_steps = 1;
    return res;
  }
  res.chain_steps = 2;
  const BlkImage& image = images_[static_cast<size_t>(view.image_id)];
  if (block < image.block_tags.size()) {
    res.base_present = true;
    res.tag = image.block_tags[block];
    res.host_pa = image.frames[block];
  }
  return res;
}

uint64_t LayerStore::MaterializeBase(int view_id, uint64_t block, bool* fresh) {
  const View& view = views_.at(view_id);
  BlkImage& image = images_[static_cast<size_t>(view.image_id)];
  assert(block < image.frames.size());
  if (image.frames[block] == kNoPage) {
    // Host-owned: survives any container kill; reclaimed only with the
    // machine. This is the single shared copy of the base block.
    image.frames[block] = machine_.frames().AllocFrame(kHostOwner);
    image.materialized++;
    if (fresh != nullptr) {
      *fresh = true;
    }
  } else if (fresh != nullptr) {
    *fresh = false;
  }
  return image.frames[block];
}

void LayerStore::WriteDelta(int view_id, uint64_t block, uint64_t tag) {
  views_.at(view_id).delta[block] = tag;
}

const std::map<uint64_t, uint64_t>& LayerStore::delta(int view_id) const {
  return views_.at(view_id).delta;
}

int LayerStore::image_of(int view_id) const { return views_.at(view_id).image_id; }

}  // namespace cki
