// Host-side layered block store (DESIGN.md §15): content-addressed,
// copy-on-write block layers backing the virtio-blk path.
//
// An *image* is an immutable base layer — one content tag per 4 KiB device
// block — registered once per machine and deduplicated by content hash, so
// ten thousand containers booted from the same template reference a single
// image record. A *view* is one container's stack on top of an image: reads
// resolve through the container's private delta first (overlayfs-style),
// then fall through to the base; writes always land in the delta, never in
// the image.
//
// Base blocks materialize lazily into *host-owned* physical frames
// (kHostOwner, so container kills never reclaim them). Once a block is
// materialized, every subsequent reader maps the same host frame via a
// FrameAllocator share record instead of paying device I/O — the
// cross-container dedup that makes N containers from one template cost
// roughly one image plus their dirty blocks.
//
// Determinism: images and views live in std::vector / std::map with
// monotonic integer ids, so every sweep iterates in id order. No host PA
// ever feeds a trace hash (the blkfs hash contract folds tags, not PAs).
#ifndef SRC_BLKFS_LAYER_STORE_H_
#define SRC_BLKFS_LAYER_STORE_H_

#include <cstdint>
#include <map>
#include <vector>

#include "src/guest/engine_port.h"
#include "src/host/frame_allocator.h"

namespace cki {

class Machine;

// An immutable base layer: one content tag per device block.
struct BlkImage {
  std::vector<uint64_t> block_tags;
  // Host frame backing each block; kNoPage until first materialized.
  std::vector<uint64_t> frames;
  uint64_t content_hash = 0;  // FNV-1a over block_tags (dedup key)
  uint64_t materialized = 0;  // frames allocated so far
};

// Outcome of resolving one device block through a view's layer chain.
struct BlkResolution {
  uint64_t tag = 0;
  bool from_delta = false;
  // True when the block lies inside the image's base extent (whether or
  // not its frame is materialized yet).
  bool base_present = false;
  // Shared host frame of a materialized base block; kNoPage otherwise.
  uint64_t host_pa = kNoPage;
  // Layers walked: 1 = delta hit, 2 = fell through to the base.
  int chain_steps = 1;
};

class LayerStore {
 public:
  explicit LayerStore(Machine& machine) : machine_(machine) {}

  LayerStore(const LayerStore&) = delete;
  LayerStore& operator=(const LayerStore&) = delete;

  // Registers a base image; returns its id. An image with identical
  // content (same FNV-1a over the tags) dedups to the existing id — this
  // is what makes restore-on-another-machine re-attach instead of copy.
  int RegisterImage(std::vector<uint64_t> block_tags);

  // Opens a fresh (empty-delta) view of `image_id` for `owner`.
  int OpenView(int image_id, OwnerId owner);
  // CoW fork: the clone starts with a copy of the parent's delta.
  int CloneView(int view_id, OwnerId owner);
  void CloseView(int view_id);

  BlkResolution Resolve(int view_id, uint64_t block) const;

  // Host frame for a base block, allocating a host-owned frame on first
  // use. `fresh` (optional) reports whether this call materialized it —
  // a fresh frame still needs one device read to fill; a seasoned one is
  // a pure share grant.
  uint64_t MaterializeBase(int view_id, uint64_t block, bool* fresh = nullptr);

  // Records a block write in the view's private delta.
  void WriteDelta(int view_id, uint64_t block, uint64_t tag);

  const std::map<uint64_t, uint64_t>& delta(int view_id) const;
  int image_of(int view_id) const;
  const BlkImage& image(int image_id) const { return images_[static_cast<size_t>(image_id)]; }
  size_t image_count() const { return images_.size(); }
  size_t view_count() const { return views_.size(); }
  // Host frames currently backing `image_id` (the dedup audit: this is
  // the whole machine's cost for the base layer, however many views).
  uint64_t materialized_frames(int image_id) const {
    return images_[static_cast<size_t>(image_id)].materialized;
  }

 private:
  struct View {
    int image_id = -1;
    OwnerId owner = kHostOwner;
    std::map<uint64_t, uint64_t> delta;  // device block -> content tag
  };

  Machine& machine_;
  std::vector<BlkImage> images_;
  std::map<int, View> views_;  // id order == open order (deterministic)
  int next_view_ = 1;
};

}  // namespace cki

#endif  // SRC_BLKFS_LAYER_STORE_H_
