// Operation vocabulary of the blkfs subsystem (DESIGN.md §15). Every
// guest-visible page-cache / block-layer event is one of these ops; the
// Blkfs trace hash folds (op, ino, block, tag) tuples over this enum, and
// the bench/chaos flags accept the names below.
#ifndef SRC_BLKFS_BLKFS_OPS_H_
#define SRC_BLKFS_BLKFS_OPS_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace cki {

enum class BlkfsOp : uint8_t {
  kRead = 0,       // cached read through the page cache
  kWrite,          // cached write (dirty a page)
  kCacheHit,       // page-cache lookup hit
  kCacheMiss,      // page-cache lookup miss (read-through)
  kReadahead,      // page prefetched by the sequential window
  kWriteback,      // dirty page pushed into the delta layer
  kFsync,          // durability barrier (writeback + flush)
  kEvict,          // clean page dropped for capacity
  kDirectRead,     // O_DIRECT read around the cache
  kDirectWrite,    // O_DIRECT write around the cache
  kBaseShare,      // base-image frame mapped from a sibling (dedup hit)
  kCowBreak,       // shared cache page privatized on first store
  kCount,
};

// Compile-checked name table (house style of kSysNames / kFaultKindNames):
// adding an op without a name, or renaming out of sync, fails the build.
inline constexpr auto kBlkfsOpNames = std::to_array<std::string_view>({
    "read",
    "write",
    "cache_hit",
    "cache_miss",
    "readahead",
    "writeback",
    "fsync",
    "evict",
    "direct_read",
    "direct_write",
    "base_share",
    "cow_break",
});
static_assert(kBlkfsOpNames.size() == static_cast<size_t>(BlkfsOp::kCount),
              "every BlkfsOp needs a name in kBlkfsOpNames");

inline constexpr std::string_view BlkfsOpName(BlkfsOp op) {
  return kBlkfsOpNames[static_cast<size_t>(op)];
}

// Reverse lookup for CLI flags; kCount when the name is unknown.
inline constexpr BlkfsOp BlkfsOpFromName(std::string_view name) {
  for (size_t i = 0; i < kBlkfsOpNames.size(); ++i) {
    if (kBlkfsOpNames[i] == name) {
      return static_cast<BlkfsOp>(i);
    }
  }
  return BlkfsOp::kCount;
}

}  // namespace cki

#endif  // SRC_BLKFS_BLKFS_OPS_H_
