// Process-like LibOS container (paper section 2.4.3, Figure 3 "Proc-like
// LibOS", e.g. Nabla containers). The library OS is linked into the same
// address space as the application:
//   * "syscalls" are plain function calls — the fastest possible path;
//   * there is NO user/kernel isolation inside the container: application
//     code can corrupt libOS state directly (the security weakness CKI's
//     Table 1 flags);
//   * compatibility is limited: no multi-processing (fork/execve fail).
#ifndef SRC_VIRT_LIBOS_ENGINE_H_
#define SRC_VIRT_LIBOS_ENGINE_H_

#include "src/runtime/engine.h"

namespace cki {

class LibOsEngine : public ContainerEngine {
 public:
  explicit LibOsEngine(Machine& machine);

  std::string_view name() const override { return "LibOS"; }
  RuntimeKind kind() const override { return RuntimeKind::kLibOs; }

  void SnapCaptureState(SnapWriter& w) const override;
  void SnapApplyState(SnapReader& r) override;

  SimNanos KickCost() const override;
  SimNanos DeviceInterruptCost() const override;

  // The Table-1 security gap, demonstrable: application code reaching the
  // libOS's internal state. Returns true if the access *succeeds* (it
  // does — same address space, same privilege).
  bool AppCanTouchLibOsState();

  // --- EnginePort ------------------------------------------------------
  uint64_t ReadPte(uint64_t pte_pa) override;
  bool StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) override;
  uint64_t AllocDataPage() override;
  void FreeDataPage(uint64_t pa) override;
  uint64_t AllocPtp(int level) override;
  void FreePtp(uint64_t pa, int level) override;
  uint64_t Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
  void LoadAddressSpace(uint64_t root_pa, uint16_t asid) override;
  void InvalidatePage(uint64_t va) override;

 protected:
  SyscallResult DoUserSyscall(const SyscallRequest& req) override;
  TouchResult DoUserTouch(uint64_t va, bool write) override;
  uint64_t DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;

 private:
  // LibOS state page mapped user-accessible (the whole point of the test).
  static constexpr uint64_t kLibOsStateVa = 0x0000'6000'0000'0000;
  void MapLibOsState();

  bool state_mapped_ = false;
};

}  // namespace cki

#endif  // SRC_VIRT_LIBOS_ENGINE_H_
