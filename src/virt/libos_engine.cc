#include "src/virt/libos_engine.h"

#include "src/obs/trace_scope.h"
#include "src/snap/snap_stream.h"

namespace cki {

namespace {
// A libOS "syscall" is a call through a function-pointer table.
constexpr SimNanos kFnCallOverhead = 8;
}  // namespace

LibOsEngine::LibOsEngine(Machine& machine) : ContainerEngine(machine) {
  AllocPcids(16);
}

void LibOsEngine::MapLibOsState() {
  if (state_mapped_) {
    return;
  }
  state_mapped_ = true;
  // The libOS's own bookkeeping lives in the application's address space,
  // user-accessible — that is the design.
  Process& proc = kernel_->current();
  uint64_t page = AllocDataPage();
  kernel_->editor().MapPage(proc.pt_root, kLibOsStateVa, page, kPteP | kPteW | kPteU | kPteNx,
                            0, PageSize::k4K);
  proc.vmas.Insert(Vma{.start = kLibOsStateVa,
                       .end = kLibOsStateVa + kPageSize,
                       .prot = kProtRead | kProtWrite,
                       .kind = VmaKind::kAnon});
}

SyscallResult LibOsEngine::DoUserSyscall(const SyscallRequest& req) {
  // Compatibility limit: a single-process container.
  if (req.no == Sys::kFork || req.no == Sys::kExecve) {
    return {kEINVAL};
  }
  // No ring crossing at all: a function call into the linked libOS.
  SyscallScope obs_scope(ctx_, id_, SysName(req.no));
  ctx_.ChargeWork(kFnCallOverhead);
  ctx_.ChargeWork(ctx_.cost().syscall_handler_min);
  return kernel_->HandleSyscall(req);
}

TouchResult LibOsEngine::DoUserTouch(uint64_t va, bool write) {
  TraceScope obs_scope(ctx_, id_, "touch");
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kUser);
  AccessIntent intent = write ? AccessIntent::Write() : AccessIntent::Read();
  const CostModel& c = ctx_.cost();
  for (int attempt = 0; attempt < 4; ++attempt) {
    Fault f = cpu.Access(va, intent);
    if (!f) {
      return TouchResult::kOk;
    }
    if (f.type != FaultType::kPageNotPresent && f.type != FaultType::kPageProtection) {
      return TouchResult::kSegv;
    }
    // The unikernel process's faults are handled by the host kernel.
    TraceScope fault_scope(ctx_, "fault");
    ctx_.Charge(c.fault_delivery, PathEvent::kPageFault);
    cpu.set_cpl(Cpl::kKernel);
    bool resolved = kernel_->HandlePageFault(va, write);
    ctx_.ChargeWork(c.iret_native);
    cpu.set_cpl(Cpl::kUser);
    if (!resolved) {
      return TouchResult::kSegv;
    }
  }
  return TouchResult::kSegv;
}

bool LibOsEngine::AppCanTouchLibOsState() {
  MapLibOsState();
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kUser);
  // Application code writing libOS internals: same address space, user
  // mapping, no protection boundary. It simply works — the weakness.
  Fault f = cpu.Access(kLibOsStateVa, AccessIntent::Write());
  return f.ok();
}

uint64_t LibOsEngine::DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  return Hypercall(op, a0, a1);
}

uint64_t LibOsEngine::Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  (void)op;
  (void)a0;
  (void)a1;
  // LibOS -> host requests are host syscalls from the unikernel process.
  TraceScope obs_scope(ctx_, "hypercall");
  ctx_.RecordEvent(PathEvent::kHypercall);
  ctx_.Charge(ctx_.cost().mode_switch, PathEvent::kModeSwitch);
  ctx_.ChargeWork(ctx_.cost().hypercall_dispatch);
  ctx_.Charge(ctx_.cost().mode_switch, PathEvent::kModeSwitch);
  return 0;
}

SimNanos LibOsEngine::KickCost() const {
  return 2 * ctx_.cost().mode_switch + ctx_.cost().hypercall_dispatch;
}

SimNanos LibOsEngine::DeviceInterruptCost() const {
  return ctx_.cost().hw_interrupt_delivery;
}

uint64_t LibOsEngine::ReadPte(uint64_t pte_pa) { return machine_.mem().ReadU64(pte_pa); }

bool LibOsEngine::StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) {
  (void)level;
  (void)va;
  ctx_.Charge(ctx_.cost().pte_write_native, PathEvent::kPteUpdate);
  machine_.mem().WriteU64(pte_pa, value);
  return true;
}

uint64_t LibOsEngine::AllocDataPage() { return machine_.frames().AllocFrame(id_); }

void LibOsEngine::FreeDataPage(uint64_t pa) {
  if (ReleaseSharedDataFrame(pa)) {
    return;  // clone-shared frame: the allocator kept it for siblings
  }
  machine_.frames().FreeFrame(pa);
}

uint64_t LibOsEngine::AllocPtp(int level) {
  (void)level;
  return machine_.frames().AllocFrame(id_);
}

void LibOsEngine::FreePtp(uint64_t pa, int level) {
  (void)level;
  machine_.frames().FreeFrame(pa);
}

void LibOsEngine::LoadAddressSpace(uint64_t root_pa, uint16_t asid) {
  ctx_.Charge(ctx_.cost().cr3_write_raw, PathEvent::kCr3Switch);
  machine_.cpu().LoadCr3(MakeCr3(root_pa, static_cast<uint16_t>(pcid_base_ + (asid & 0xF))));
}

void LibOsEngine::InvalidatePage(uint64_t va) {
  // The libOS runs in user mode: invlpg would #GP. Memory-management
  // operations are host syscalls underneath (mmap/mprotect), and the host
  // kernel performs the TLB maintenance.
  machine_.cpu().tlb().InvalidatePage(Cr3Pcid(machine_.cpu().cr3()), va);
}

void LibOsEngine::SnapCaptureState(SnapWriter& w) const { w.PutBool(state_mapped_); }

void LibOsEngine::SnapApplyState(SnapReader& r) {
  // The state page travels as an ordinary VMA + leaf in the kernel
  // section; only the "already mapped" latch is engine-side.
  state_mapped_ = r.GetBool();
}

}  // namespace cki
