// PVM: software-based virtualization (SOSP'23), the state-of-the-art secure
// container design without virtualization hardware.
//
// The guest kernel is deprivileged to user mode in its own address space.
// Application syscalls and exceptions trap to the host kernel first and are
// redirected into the guest kernel (two extra mode switches and two extra
// mitigated CR3 switches per syscall). Memory keeps the two-stage
// gVA -> gPA -> hPA abstraction via shadow paging: hardware runs on host-
// maintained shadow tables, and every guest PTE update is a para-virtual
// exit plus shadow-PTE emulation (sections 2.4.2, 7.1).
#ifndef SRC_VIRT_PVM_ENGINE_H_
#define SRC_VIRT_PVM_ENGINE_H_


#include "src/hw/page_table.h"
#include "src/runtime/engine.h"
#include "src/runtime/gfn_map.h"

namespace cki {

class PvmEngine : public ContainerEngine {
 public:
  explicit PvmEngine(Machine& machine);

  std::string_view name() const override { return nested() ? "PVM-NST" : "PVM-BM"; }
  RuntimeKind kind() const override { return RuntimeKind::kPvm; }

  // --- snapshot hooks --------------------------------------------------
  void SnapCaptureConfig(SnapWriter& w) const override;
  void SnapApplyConfig(SnapReader& r) override;
  uint64_t HostFrameFor(uint64_t pa) const override;
  uint64_t EnsureHostFrame(uint64_t pa) override;
  uint64_t AdoptSharedFrame(uint64_t host_pa) override;

  SimNanos KickCost() const override;
  SimNanos DeviceInterruptCost() const override;
  SimNanos VirtioEmulationExtra() const override;

  void set_cold_faults(bool cold) { cold_faults_ = cold; }

  // Statistics for tests: how many shadow entries exist / hidden fills ran.
  uint64_t shadow_fills() const { return shadow_fills_; }
  uint64_t spt_emulations() const { return spt_emulations_; }

  // --- EnginePort ------------------------------------------------------
  uint64_t ReadPte(uint64_t pte_pa) override;
  bool StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) override;
  void BeginPteBatch() override;
  void EndPteBatch() override;
  uint64_t AllocDataPage() override;
  void FreeDataPage(uint64_t pa) override;
  uint64_t AllocPtp(int level) override;
  void FreePtp(uint64_t pa, int level) override;
  uint64_t Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
  void LoadAddressSpace(uint64_t root_pa, uint16_t asid) override;
  void InvalidatePage(uint64_t va) override;

 protected:
  SyscallResult DoUserSyscall(const SyscallRequest& req) override;
  TouchResult DoUserTouch(uint64_t va, bool write) override;
  uint64_t DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
  void OnKill() override;

 private:
  // One PVM "VM exit" round trip: host entry/exit without virtualization
  // hardware (2 mode switches + 2 mitigated CR3 switches + save/restore).
  void ChargePvmExit();
  // Charges the extra redirection legs of a syscall (no full exit).
  void ChargeSyscallRedirect();

  uint64_t Backing(uint64_t gpa, bool create);
  uint64_t GuestPhysAlloc();
  // Shadow root for a guest process root, created on demand.
  uint64_t ShadowRoot(uint64_t guest_root);
  // Mirrors a guest leaf update into the shadow table when the update
  // belongs to the currently loaded address space.
  void SyncShadowLeaf(uint64_t guest_root, uint64_t va, uint64_t guest_pte);

  PageTableEditor shadow_editor_;
  // gPA pages are bump-allocated densely from page 1, so the gPA -> hPA
  // backing table is a direct-indexed vector, not a hash map.
  GfnMap backing_;
  // guest root -> shadow root (hPA), in creation order. A plain vector:
  // a guest has a handful of processes, and StorePte scans this on every
  // leaf update — insertion order makes that scan deterministic (an
  // unordered_map here would hand iteration order to the hash function;
  // see the container-order regression test).
  std::vector<std::pair<uint64_t, uint64_t>> shadow_roots_;
  std::vector<uint64_t> guest_free_list_;
  // gPA page 0 is reserved: the first allocation is the init PML4, and
  // pt_root == 0 is the guest kernel's "no address space" sentinel.
  uint64_t guest_ram_next_ = 1;
  bool cold_faults_ = false;
  bool in_batch_ = false;
  int batch_pending_ = 0;

  uint64_t shadow_fills_ = 0;
  uint64_t spt_emulations_ = 0;
};

}  // namespace cki

#endif  // SRC_VIRT_PVM_ENGINE_H_
