#include "src/virt/pvm_engine.h"

#include "src/obs/trace_scope.h"
#include "src/snap/snap_stream.h"

namespace cki {

PvmEngine::PvmEngine(Machine& machine)
    : ContainerEngine(machine),
      shadow_editor_(machine.mem(),
                     [&machine](int /*level*/) { return machine.frames().AllocFrame(kHostOwner); },
                     [&machine](uint64_t pte_pa, uint64_t value, int, uint64_t) {
                       machine.mem().WriteU64(pte_pa, value);
                       return true;
                     }) {
  AllocPcids(256);
  fast_touch_ = true;  // DoUserTouch prologue is the canonical hit sequence
}

uint64_t PvmEngine::GuestPhysAlloc() {
  if (!guest_free_list_.empty()) {
    uint64_t gpa = guest_free_list_.back();
    guest_free_list_.pop_back();
    return gpa;
  }
  return (guest_ram_next_++) * kPageSize;
}

uint64_t PvmEngine::Backing(uint64_t gpa, bool create) {
  uint64_t gfn = gpa >> kPageShift;
  if (uint64_t hpa = backing_.Get(gfn); hpa != 0) {
    return hpa | (gpa & (kPageSize - 1));
  }
  if (!create) {
    // The guest referenced a gPA the host never assigned it: a protection
    // violation that kills this container, not the machine.
    machine_.faults().Raise(
        FaultReport{FaultKind::kProtectionViolation, id_, gpa});
  }
  if (cold_faults_) {
    // Fresh backing: the host resolves the gPA through the hypervisor
    // process's VMA and allocates memory — the expensive part of Table 2's
    // cold faults (two extra host round trips plus lookup work).
    ChargePvmExit();
    ChargePvmExit();
    ctx_.ChargeWork(ctx_.cost().pvm_cold_backing_work);
  }
  uint64_t hpa = machine_.frames().AllocFrame(id_);
  backing_.Set(gfn, hpa);
  return hpa | (gpa & (kPageSize - 1));
}

void PvmEngine::ChargePvmExit() {
  const CostModel& c = ctx_.cost();
  ctx_.Charge(c.mode_switch, PathEvent::kModeSwitch);
  ctx_.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  ctx_.ChargeWork(c.pvm_exit_extra);
  ctx_.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  ctx_.Charge(c.mode_switch, PathEvent::kModeSwitch);
  if (nested()) {
    ctx_.ChargeWork(c.pvm_nested_delta);
  }
  ctx_.RecordEvent(PathEvent::kVmExit);
}

void PvmEngine::ChargeSyscallRedirect() {
  // One leg of syscall redirection: host -> guest kernel (or back): one
  // extra mode switch plus one mitigated page-table switch.
  const CostModel& c = ctx_.cost();
  ctx_.Charge(c.mode_switch, PathEvent::kModeSwitch);
  ctx_.Charge(c.Cr3SwitchMitigated(), PathEvent::kCr3Switch);
}

uint64_t PvmEngine::ShadowRoot(uint64_t guest_root) {
  for (const auto& [root, shadow] : shadow_roots_) {
    if (root == guest_root) {
      return shadow;
    }
  }
  uint64_t shadow = machine_.frames().AllocFrame(kHostOwner);
  shadow_roots_.emplace_back(guest_root, shadow);
  return shadow;
}

void PvmEngine::SyncShadowLeaf(uint64_t guest_root, uint64_t va, uint64_t guest_pte) {
  uint64_t shadow_root = 0;
  for (const auto& [root, shadow] : shadow_roots_) {
    if (root == guest_root) {
      shadow_root = shadow;
      break;
    }
  }
  if (shadow_root == 0) {
    return;  // never activated: the shadow will be built lazily on faults
  }
  if (!PtePresent(guest_pte)) {
    shadow_editor_.UnmapPage(shadow_root, va);
    // The guest kernel follows each unmap with invlpg (paravirt contract),
    // which the engine applies to the hardware TLB via InvalidatePage.
    return;
  }
  uint64_t hpa = Backing(PteAddr(guest_pte), /*create=*/true) & kPteAddrMask;
  uint64_t flags = guest_pte & ~(kPteAddrMask | kPtePkeyMask);
  shadow_editor_.MapPage(shadow_root, va, hpa, flags, /*pkey=*/0, PageSize::k4K);
  // Hidden fill: this rewrite of a live shadow leaf has no architectural
  // shootdown (the guest never sees it), so the CPU's software walk cache
  // must be told explicitly (DESIGN.md §14).
  machine_.cpu().InvalidateWalkCache();
  shadow_fills_++;
}

SyscallResult PvmEngine::DoUserSyscall(const SyscallRequest& req) {
  // App -> host kernel -> (mode + page-table switch) -> user-mode guest
  // kernel -> handler -> (switch back) -> host -> app. Fig 10b: 336 ns.
  SyscallScope obs_scope(ctx_, id_, SysName(req.no));
  Cpu& cpu = machine_.cpu();
  ctx_.Charge(ctx_.cost().syscall_entry, PathEvent::kSyscallEntry);
  cpu.SyscallEntry();
  ChargeSyscallRedirect();  // host -> guest kernel address space
  ctx_.ChargeWork(ctx_.cost().syscall_handler_min);
  SyscallResult result = kernel_->HandleSyscall(req);
  ChargeSyscallRedirect();  // guest kernel -> host
  ctx_.Charge(ctx_.cost().sysret_exit, PathEvent::kSyscallExit);
  cpu.Sysret(/*requested_if=*/true);
  return result;
}

TouchResult PvmEngine::DoUserTouch(uint64_t va, bool write) {
  TraceScope obs_scope(ctx_, id_, "touch");
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kUser);
  AccessIntent intent = write ? AccessIntent::Write() : AccessIntent::Read();
  const CostModel& c = ctx_.cost();
  for (int attempt = 0; attempt < 6; ++attempt) {
    Fault f = cpu.Access(va, intent);
    if (!f) {
      return TouchResult::kOk;
    }
    if (f.type != FaultType::kPageNotPresent && f.type != FaultType::kPageProtection) {
      return TouchResult::kSegv;
    }
    // Every fault first traps to the host kernel, which walks the guest
    // page table to classify it (true guest fault vs stale shadow entry).
    TraceScope fault_scope(ctx_, "fault");
    ctx_.Charge(c.fault_delivery, PathEvent::kPageFault);
    cpu.set_cpl(Cpl::kKernel);
    uint64_t guest_root = kernel_->current().pt_root;
    WalkResult guest_walk = kernel_->editor().Walk(guest_root, va);
    bool stale_shadow = !guest_walk.fault && (!f.was_write || PteWritable(guest_walk.leaf_pte));
    if (stale_shadow) {
      // The guest mapping exists; only the shadow entry is missing.
      TraceScope fill_scope(ctx_, "spt/fill");
      ctx_.Charge(c.spt_hidden_fill, PathEvent::kShadowPtUpdate);
      SyncShadowLeaf(guest_root, va & ~(kPageSize - 1), guest_walk.leaf_pte);
      cpu.set_cpl(Cpl::kUser);
      continue;
    }
    // Redirect into the user-mode guest kernel (exception injection).
    ChargePvmExit();
    ctx_.ChargeWork(c.pvm_exception_inject);
    ctx_.ChargeWork(c.pvm_guest_handler_extra);
    bool resolved = kernel_->HandlePageFault(va, write);
    // Return to the faulting application via the host kernel.
    ChargePvmExit();
    cpu.set_cpl(Cpl::kUser);
    if (!resolved) {
      return TouchResult::kSegv;
    }
  }
  return TouchResult::kSegv;
}

uint64_t PvmEngine::DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  return Hypercall(op, a0, a1);
}

void PvmEngine::OnKill() {
  // Drop the gPA->hPA and shadow maps before the owner sweep reclaims the
  // backing frames (the host-owned shadow tables themselves stay with the
  // host allocator; see DESIGN.md section 8).
  backing_.Clear();
  shadow_roots_.clear();
  guest_free_list_.clear();
  in_batch_ = false;
  batch_pending_ = 0;
}

uint64_t PvmEngine::Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  (void)op;
  (void)a0;
  (void)a1;
  TraceScope obs_scope(ctx_, "hypercall");
  ctx_.RecordEvent(PathEvent::kHypercall);
  ChargePvmExit();
  return 0;
}

SimNanos PvmEngine::KickCost() const {
  const CostModel& c = ctx_.cost();
  SimNanos exit_cost = 2 * c.mode_switch + 2 * c.Cr3SwitchMitigated() + c.pvm_exit_extra +
                       (nested() ? c.pvm_nested_delta : 0);
  return exit_cost;
}

SimNanos PvmEngine::DeviceInterruptCost() const {
  const CostModel& c = ctx_.cost();
  // The host owns hardware interrupts natively; injecting into the
  // user-mode guest costs one redirection leg each way plus the injection.
  return 2 * (c.mode_switch + c.Cr3SwitchMitigated()) + c.virq_inject;
}

SimNanos PvmEngine::VirtioEmulationExtra() const {
  // PVM keeps the MMIO-based virtio frontend: ISR status read, used-ring
  // notification toggles and the avail-ring doorbell are emulated MMIO
  // traps (CKI replaced all of these with one hypercall, section 5).
  const CostModel& c = ctx_.cost();
  SimNanos exit_cost = 2 * c.mode_switch + 2 * c.Cr3SwitchMitigated() + c.pvm_exit_extra +
                       (nested() ? c.pvm_nested_delta : 0);
  return 7 * (exit_cost + c.virtio_kick_mmio);
}

uint64_t PvmEngine::ReadPte(uint64_t pte_pa) {
  return machine_.mem().ReadU64(Backing(pte_pa, /*create=*/false));
}

bool PvmEngine::StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) {
  TraceScope obs_scope(ctx_, "spt/emulate");
  const CostModel& c = ctx_.cost();
  if (in_batch_) {
    ctx_.Charge(c.spt_emulation_batched, PathEvent::kShadowPtUpdate);
    if (++batch_pending_ >= 32) {
      ChargePvmExit();
      batch_pending_ = 0;
    }
  } else {
    // Para-virtual PTE update: exit to host + shadow emulation (walk,
    // decode, SPTE generation). Fig 10a: 466 + 1,828 ns.
    ChargePvmExit();
    ctx_.Charge(c.spt_emulation, PathEvent::kShadowPtUpdate);
  }
  spt_emulations_++;
  machine_.mem().WriteU64(Backing(pte_pa, /*create=*/false), value);
  ctx_.RecordEvent(PathEvent::kPteUpdate);
  // Eagerly mirror leaf updates that belong to a known address space.
  if (level == 1) {
    for (const auto& [guest_root, shadow_root] : shadow_roots_) {
      (void)shadow_root;
      std::optional<uint64_t> slot = kernel_->editor().FindLeafSlot(guest_root, va);
      if (slot.has_value() && *slot == pte_pa) {
        SyncShadowLeaf(guest_root, va & ~(kPageSize - 1), value);
        break;
      }
    }
  }
  return true;
}

void PvmEngine::BeginPteBatch() {
  in_batch_ = true;
  batch_pending_ = 0;
}

void PvmEngine::EndPteBatch() {
  if (batch_pending_ > 0) {
    ChargePvmExit();
  }
  in_batch_ = false;
  batch_pending_ = 0;
}

uint64_t PvmEngine::AllocDataPage() { return GuestPhysAlloc(); }

void PvmEngine::FreeDataPage(uint64_t pa) {
  if (ReleaseSharedDataFrame(pa)) {
    // Shared host frame stays with its remaining holders; unbind our gPA
    // (shadow leaves were already cleared by the preceding unmap).
    backing_.Erase(pa >> kPageShift);
  }
  guest_free_list_.push_back(pa);
}

uint64_t PvmEngine::AllocPtp(int level) {
  (void)level;
  uint64_t gpa = GuestPhysAlloc();
  Backing(gpa, /*create=*/true);
  return gpa;
}

void PvmEngine::FreePtp(uint64_t pa, int level) {
  (void)level;
  guest_free_list_.push_back(pa);
}

void PvmEngine::LoadAddressSpace(uint64_t root_pa, uint16_t asid) {
  // A guest process switch is a hypercall: the host locates the shadow
  // root for the new guest root and loads it.
  ChargePvmExit();
  ctx_.ChargeWork(ctx_.cost().pvm_shadow_root_switch);
  uint64_t shadow_root = ShadowRoot(root_pa);
  ctx_.Charge(ctx_.cost().cr3_write_raw, PathEvent::kCr3Switch);
  machine_.cpu().LoadCr3(
      MakeCr3(shadow_root, static_cast<uint16_t>(pcid_base_ + (asid & 0xFF))));
}

void PvmEngine::InvalidatePage(uint64_t va) { machine_.cpu().Invlpg(va); }

void PvmEngine::SnapCaptureConfig(SnapWriter& w) const { w.PutBool(cold_faults_); }

void PvmEngine::SnapApplyConfig(SnapReader& r) { cold_faults_ = r.GetBool(); }

uint64_t PvmEngine::HostFrameFor(uint64_t pa) const {
  uint64_t hpa = backing_.Get(pa >> kPageShift);
  if (hpa == 0) {
    return kNoPage;  // never-touched gPA: all-zero by construction
  }
  return hpa | (pa & (kPageSize - 1));
}

uint64_t PvmEngine::EnsureHostFrame(uint64_t pa) { return Backing(pa, /*create=*/true); }

uint64_t PvmEngine::AdoptSharedFrame(uint64_t host_pa) {
  machine_.frames().ShareFrame(host_pa, id_);
  uint64_t gpa = GuestPhysAlloc();
  // Shadow leaves resolve gPA -> hPA through backing_, so wiring the map
  // entry is all the adoption the shadow stage needs.
  backing_.Set(gpa >> kPageShift, host_pa);
  return gpa;
}

}  // namespace cki
