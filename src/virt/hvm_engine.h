// HVM: hardware-assisted virtualization (the Kata Containers baseline).
//
// The guest runs in VMX non-root mode with two-stage translation: guest
// page tables map gVA -> gPA, the host's EPT maps gPA -> hPA. Syscalls and
// guest page faults stay inside the guest; EPT violations and hypercalls
// cause VM exits. Under nested deployment every VM exit of the (L2)
// container bounces through the L0 hypervisor, and EPT-violation handling
// requires shadow-EPT emulation by L0 (sections 2.4.1, 7.1).
#ifndef SRC_VIRT_HVM_ENGINE_H_
#define SRC_VIRT_HVM_ENGINE_H_

#include "src/hw/ept.h"
#include "src/runtime/engine.h"
#include "src/runtime/gfn_map.h"

namespace cki {

class HvmEngine : public ContainerEngine {
 public:
  explicit HvmEngine(Machine& machine);

  std::string_view name() const override { return nested() ? "HVM-NST" : "HVM-BM"; }
  RuntimeKind kind() const override { return RuntimeKind::kHvm; }

  void Boot() override;

  // --- snapshot hooks --------------------------------------------------
  void SnapCaptureConfig(SnapWriter& w) const override;
  void SnapApplyConfig(SnapReader& r) override;
  uint64_t HostFrameFor(uint64_t pa) const override;
  uint64_t EnsureHostFrame(uint64_t pa) override;
  uint64_t AdoptSharedFrame(uint64_t host_pa) override;

  // True when the deployment is impossible (nested container requested but
  // the IaaS VM has no nested virtualization). Boot() then does nothing.
  bool deployment_unavailable() const { return deployment_unavailable_; }

  SimNanos KickCost() const override;
  SimNanos DeviceInterruptCost() const override;
  SimNanos VirtioEmulationExtra() const override;

  // Table-2 style "cold" faults: fresh memory whose host backing must also
  // be allocated (one extra management exit per fault).
  void set_cold_faults(bool cold) { cold_faults_ = cold; }
  // Backs EPT mappings with 2 MiB pages (the "2M" configurations).
  void set_ept_huge_pages(bool huge) { ept_huge_pages_ = huge; }

  const Ept& ept() const { return ept_; }

  // --- EnginePort ------------------------------------------------------
  uint64_t ReadPte(uint64_t pte_pa) override;
  bool StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) override;
  uint64_t AllocDataPage() override;
  void FreeDataPage(uint64_t pa) override;
  uint64_t AllocPtp(int level) override;
  void FreePtp(uint64_t pa, int level) override;
  uint64_t Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
  void LoadAddressSpace(uint64_t root_pa, uint16_t asid) override;
  void InvalidatePage(uint64_t va) override;

 protected:
  SyscallResult DoUserSyscall(const SyscallRequest& req) override;
  TouchResult DoUserTouch(uint64_t va, bool write) override;
  uint64_t DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
  void OnKill() override;

 private:
  // One VM exit round trip, bare-metal or nested as configured.
  void ChargeVmExit();
  // Handles an EPT violation at guest-physical address `gpa`.
  void HandleEptViolation(uint64_t gpa);
  // Host-physical address backing `gpa`; allocates (and EPT-maps) when
  // `create` is set. Absent and !create kills the container.
  uint64_t Backing(uint64_t gpa, bool create);
  uint64_t GuestPhysAlloc();

  // Both gPA arenas are bump-allocated from their region base, so the
  // gPA -> hPA backing tables are direct-indexed vectors (one per
  // region), not hash maps: the EPT-violation path resolves backing with
  // a bounds check and a load.
  static constexpr uint64_t kDataGfnBase = (1ull << 40) >> kPageShift;
  GfnMap& BackingMapFor(uint64_t gfn) {
    return gfn >= kDataGfnBase ? data_backing_ : ram_backing_;
  }
  const GfnMap& BackingMapFor(uint64_t gfn) const {
    return gfn >= kDataGfnBase ? data_backing_ : ram_backing_;
  }

  Ept ept_;
  GfnMap ram_backing_;                  // table/RAM arena (gfn 1+)
  GfnMap data_backing_{kDataGfnBase};   // data arena
  std::vector<uint64_t> guest_free_list_;
  std::vector<uint64_t> data_free_list_;
  // Bump pointer in gPA space (page index). gPA page 0 is never handed
  // out: the first allocation is the init PML4, and pt_root == 0 is the
  // guest kernel's "no address space" sentinel.
  uint64_t guest_ram_next_ = 1;
  // Data pages come from a separate gPA arena so 2 MiB EPT backing never
  // covers (and corrupts) page-table pages.
  uint64_t data_gpa_next_ = kDataGfnBase;
  bool cold_faults_ = false;
  bool ept_huge_pages_ = false;
  bool deployment_unavailable_ = false;
};

}  // namespace cki

#endif  // SRC_VIRT_HVM_ENGINE_H_
