// gVisor-style userspace kernel (paper section 2.4.3, Figure 3 "Userspace
// Kernel"). The container runs on a private Sentry — a kernel
// re-implementation living in a separate host process:
//   * syscalls are redirected to the Sentry via Systrap: the host kernel
//     traps the syscall and switches to the Sentry process (inter-process
//     communication), which is much slower than a native syscall;
//   * application page faults are handled by the HOST kernel directly
//     (Sentry backs app memory with host mmap), avoiding shadow paging;
//   * no virtualization hardware is involved, and nested deployment works.
#ifndef SRC_VIRT_GVISOR_ENGINE_H_
#define SRC_VIRT_GVISOR_ENGINE_H_

#include "src/runtime/engine.h"

namespace cki {

class GvisorEngine : public ContainerEngine {
 public:
  explicit GvisorEngine(Machine& machine);

  std::string_view name() const override { return "gVisor"; }
  RuntimeKind kind() const override { return RuntimeKind::kGvisor; }

  SimNanos KickCost() const override;
  SimNanos DeviceInterruptCost() const override;
  SimNanos VirtioEmulationExtra() const override;

  // Cost of one Systrap round trip (app -> host -> Sentry -> host -> app).
  SimNanos SystrapCost() const;

  // --- EnginePort ------------------------------------------------------
  uint64_t ReadPte(uint64_t pte_pa) override;
  bool StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) override;
  uint64_t AllocDataPage() override;
  void FreeDataPage(uint64_t pa) override;
  uint64_t AllocPtp(int level) override;
  void FreePtp(uint64_t pa, int level) override;
  uint64_t Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
  void LoadAddressSpace(uint64_t root_pa, uint16_t asid) override;
  void InvalidatePage(uint64_t va) override;

 protected:
  SyscallResult DoUserSyscall(const SyscallRequest& req) override;
  TouchResult DoUserTouch(uint64_t va, bool write) override;
  uint64_t DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
};

}  // namespace cki

#endif  // SRC_VIRT_GVISOR_ENGINE_H_
