#include "src/virt/hvm_engine.h"

#include "src/obs/trace_scope.h"
#include "src/snap/snap_stream.h"

namespace cki {

HvmEngine::HvmEngine(Machine& machine)
    : ContainerEngine(machine),
      ept_(machine.mem(),
           [this](int /*level*/) { return machine_.frames().AllocFrame(kHostOwner); }) {
  AllocPcids(256);
  fast_touch_ = true;  // DoUserTouch prologue is the canonical hit sequence
}

void HvmEngine::Boot() {
  if (nested() && !machine_.config().nested_virt_available) {
    // HVM needs VMX/SVM inside the IaaS VM; without it the container
    // simply cannot start (the paper's nested-cloud compatibility gap).
    deployment_unavailable_ = true;
    return;
  }
  machine_.cpu().set_ept(&ept_);
  ContainerEngine::Boot();
}

uint64_t HvmEngine::GuestPhysAlloc() {
  if (!guest_free_list_.empty()) {
    uint64_t gpa = guest_free_list_.back();
    guest_free_list_.pop_back();
    return gpa;
  }
  return (guest_ram_next_++) * kPageSize;
}

uint64_t HvmEngine::Backing(uint64_t gpa, bool create) {
  uint64_t gfn = gpa >> kPageShift;
  if (uint64_t hpa = BackingMapFor(gfn).Get(gfn); hpa != 0) {
    return hpa | (gpa & (kPageSize - 1));
  }
  if (!create) {
    // An EPT reference to a gPA the host never assigned: protection
    // violation, container-fatal only.
    machine_.faults().Raise(
        FaultReport{FaultKind::kProtectionViolation, id_, gpa});
  }
  uint64_t hpa = machine_.frames().AllocFrame(id_);
  BackingMapFor(gfn).Set(gfn, hpa);
  ept_.Map(gfn << kPageShift, hpa, PageSize::k4K);
  return hpa | (gpa & (kPageSize - 1));
}

void HvmEngine::ChargeVmExit() {
  const CostModel& c = ctx_.cost();
  if (nested()) {
    // L2 exit: four L0 world-switch legs plus shadow-VMCS synchronization.
    for (int i = 0; i < 4; ++i) {
      ctx_.Charge(c.l0_world_switch, PathEvent::kL0WorldSwitch);
    }
    ctx_.Charge(c.vmcs_shadow_sync, PathEvent::kNestedVmExit);
  } else {
    ctx_.Charge(c.vmexit_roundtrip_bm, PathEvent::kVmExit);
  }
}

void HvmEngine::HandleEptViolation(uint64_t gpa) {
  TraceScope obs_scope(ctx_, "ept/violation");
  const CostModel& c = ctx_.cost();
  ctx_.RecordEvent(PathEvent::kEptViolation, gpa);
  if (nested()) {
    // The violation exits to L0, which resumes L1; L1's shadow-EPT update
    // (vmread/vmwrite/INVEPT) traps back to L0 several times (sec 7.1:
    // a nested EPT fault costs ~4 nested exits plus emulation work).
    for (int i = 0; i < c.shadow_ept_fault_exits; ++i) {
      ChargeVmExit();
    }
    ctx_.ChargeWork(c.shadow_ept_emulation);
  } else {
    ChargeVmExit();
    ctx_.ChargeWork(c.ept_violation_work);
  }
  if (cold_faults_) {
    // Fresh memory: the host also allocates backing storage (one more
    // management exit), making Table 2's cold faults heavier than the
    // warmed faults of Fig 10a. The allocation is L1-local, so even under
    // nesting this is a bare-metal-priced exit.
    ctx_.Charge(c.vmexit_roundtrip_bm, PathEvent::kVmExit);
    ctx_.ChargeWork(c.hvm_cold_backing_work);
  }
  if (ept_huge_pages_) {
    // Back the whole 2 MiB region at once: one violation per 512 pages.
    uint64_t gpa_base = gpa & ~(kHugePageSize - 1);
    PhysSegment seg = machine_.frames().AllocSegment(kHugePageSize / kPageSize, id_);
    for (uint64_t i = 0; i < kHugePageSize / kPageSize; ++i) {
      uint64_t gfn = (gpa_base >> kPageShift) + i;
      BackingMapFor(gfn).Set(gfn, seg.base + i * kPageSize);
    }
    ept_.Map(gpa_base, seg.base, PageSize::k2M);
  } else {
    Backing(gpa, /*create=*/true);
  }
}

SyscallResult HvmEngine::DoUserSyscall(const SyscallRequest& req) {
  // Native-speed syscalls inside the guest: no VM exit involved.
  SyscallScope obs_scope(ctx_, id_, SysName(req.no));
  Cpu& cpu = machine_.cpu();
  ctx_.Charge(ctx_.cost().syscall_entry, PathEvent::kSyscallEntry);
  cpu.SyscallEntry();
  ctx_.ChargeWork(ctx_.cost().syscall_handler_min);
  SyscallResult result = kernel_->HandleSyscall(req);
  ctx_.Charge(ctx_.cost().sysret_exit, PathEvent::kSyscallExit);
  cpu.Sysret(/*requested_if=*/true);
  return result;
}

TouchResult HvmEngine::DoUserTouch(uint64_t va, bool write) {
  TraceScope obs_scope(ctx_, id_, "touch");
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kUser);
  AccessIntent intent = write ? AccessIntent::Write() : AccessIntent::Read();
  const CostModel& c = ctx_.cost();
  // A fresh page typically needs both a guest #PF and then an EPT
  // violation on the retry; bound the loop defensively.
  for (int attempt = 0; attempt < 6; ++attempt) {
    Fault f = cpu.Access(va, intent);
    if (!f) {
      return TouchResult::kOk;
    }
    switch (f.type) {
      case FaultType::kPageNotPresent:
      case FaultType::kPageProtection: {
        // Guest-internal fault: delivered and handled entirely in the L2
        // guest kernel (slightly heavier than native, Fig 10a).
        TraceScope fault_scope(ctx_, "fault");
        ctx_.Charge(c.fault_delivery, PathEvent::kPageFault);
        cpu.set_cpl(Cpl::kKernel);
        ctx_.ChargeWork(c.hvm_guest_handler_extra);
        if (nested()) {
          ctx_.ChargeWork(c.hvm_nested_guest_handler_extra);
        }
        bool resolved = kernel_->HandlePageFault(va, write);
        ctx_.ChargeWork(c.iret_native);
        cpu.set_cpl(Cpl::kUser);
        if (!resolved) {
          return TouchResult::kSegv;
        }
        break;
      }
      case FaultType::kEptViolation:
        HandleEptViolation(f.va);
        break;
      default:
        return TouchResult::kSegv;
    }
  }
  return TouchResult::kSegv;
}

uint64_t HvmEngine::DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  return Hypercall(op, a0, a1);
}

void HvmEngine::OnKill() {
  // Drop gPA bookkeeping before the owner sweep reclaims the backing
  // frames (the host-owned EPT table pages stay with the host allocator).
  ram_backing_.Clear();
  data_backing_.Clear();
  guest_free_list_.clear();
  data_free_list_.clear();
}

uint64_t HvmEngine::Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  (void)a0;
  (void)a1;
  TraceScope obs_scope(ctx_, "hypercall");
  ctx_.RecordEvent(PathEvent::kHypercall);
  ChargeVmExit();
  ctx_.ChargeWork(ctx_.cost().hypercall_dispatch);
  (void)op;
  return 0;
}

SimNanos HvmEngine::KickCost() const {
  const CostModel& c = ctx_.cost();
  SimNanos exit_cost = nested() ? c.NestedExitRoundtrip() : c.vmexit_roundtrip_bm;
  return exit_cost + c.virtio_kick_mmio;
}

SimNanos HvmEngine::DeviceInterruptCost() const {
  const CostModel& c = ctx_.cost();
  // Bare metal: hardware assists (APICv-style injection) keep delivery to
  // one exit plus the injection. Nested: the injection and the guest's EOI
  // write are both L0-mediated cycles.
  if (nested()) {
    return 2 * c.NestedExitRoundtrip() + c.virq_inject;
  }
  return c.vmexit_roundtrip_bm + c.virq_inject;
}

SimNanos HvmEngine::VirtioEmulationExtra() const {
  // Bare metal: vhost + EVENT_IDX suppression elide the frontend's MMIO
  // register traffic. Nested: ISR reads, notification toggles and ring
  // index accesses each bounce through L0.
  const CostModel& c = ctx_.cost();
  if (!nested()) {
    return 0;
  }
  return 4 * (c.NestedExitRoundtrip() + c.virtio_kick_mmio);
}

uint64_t HvmEngine::ReadPte(uint64_t pte_pa) {
  return machine_.mem().ReadU64(Backing(pte_pa, /*create=*/false));
}

bool HvmEngine::StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) {
  (void)level;
  (void)va;
  // With EPT the guest manages its own tables: a direct store, no exit.
  ctx_.Charge(ctx_.cost().pte_write_native, PathEvent::kPteUpdate);
  machine_.mem().WriteU64(Backing(pte_pa, /*create=*/false), value);
  return true;
}

uint64_t HvmEngine::AllocDataPage() {
  // Backing is left lazy: the first user access raises an EPT violation
  // ("the newly allocated gPA is not mapped in the EPT", sec 7.1).
  if (!data_free_list_.empty()) {
    uint64_t gpa = data_free_list_.back();
    data_free_list_.pop_back();
    return gpa;
  }
  return (data_gpa_next_++) * kPageSize;
}

void HvmEngine::FreeDataPage(uint64_t pa) {
  if (ReleaseSharedDataFrame(pa)) {
    // The shared host frame stays with its remaining holders; the gPA is
    // ours alone, so unbind it and recycle (backing re-materializes
    // lazily if the gPA is reused).
    data_backing_.Erase(pa >> kPageShift);
    ept_.Unmap(pa & ~(kPageSize - 1));
    data_free_list_.push_back(pa);
    return;
  }
  data_free_list_.push_back(pa);
}

uint64_t HvmEngine::AllocPtp(int level) {
  (void)level;
  uint64_t gpa = GuestPhysAlloc();
  // Page-table pages are written immediately by the guest kernel, so their
  // backing exists by construction (they come from already-touched RAM).
  Backing(gpa, /*create=*/true);
  return gpa;
}

void HvmEngine::FreePtp(uint64_t pa, int level) {
  (void)level;
  guest_free_list_.push_back(pa);
}

void HvmEngine::LoadAddressSpace(uint64_t root_pa, uint16_t asid) {
  // Guest CR3 loads do not exit under EPT.
  ctx_.Charge(ctx_.cost().cr3_write_raw, PathEvent::kCr3Switch);
  machine_.cpu().LoadCr3(MakeCr3(root_pa, static_cast<uint16_t>(pcid_base_ + (asid & 0xFF))));
}

void HvmEngine::InvalidatePage(uint64_t va) { machine_.cpu().Invlpg(va); }

void HvmEngine::SnapCaptureConfig(SnapWriter& w) const {
  w.PutBool(cold_faults_);
  w.PutBool(ept_huge_pages_);
}

void HvmEngine::SnapApplyConfig(SnapReader& r) {
  cold_faults_ = r.GetBool();
  ept_huge_pages_ = r.GetBool();
}

uint64_t HvmEngine::HostFrameFor(uint64_t pa) const {
  uint64_t gfn = pa >> kPageShift;
  uint64_t hpa = BackingMapFor(gfn).Get(gfn);
  if (hpa == 0) {
    return kNoPage;  // lazily backed gPA: all-zero by construction
  }
  return hpa | (pa & (kPageSize - 1));
}

uint64_t HvmEngine::EnsureHostFrame(uint64_t pa) { return Backing(pa, /*create=*/true); }

uint64_t HvmEngine::AdoptSharedFrame(uint64_t host_pa) {
  machine_.frames().ShareFrame(host_pa, id_);
  uint64_t gpa = AllocDataPage();
  data_backing_.Set(gpa >> kPageShift, host_pa);
  // Map eagerly: Backing() short-circuits on an existing entry, so a later
  // EPT violation would spin instead of installing this mapping.
  ept_.Map(gpa & ~(kPageSize - 1), host_pa, PageSize::k4K);
  return gpa;
}

}  // namespace cki
