#include "src/virt/gvisor_engine.h"

#include "src/obs/trace_scope.h"

namespace cki {

namespace {
// Sentry-side IPC rendezvous work per Systrap redirection (scheduling the
// Sentry task, shared-memory argument marshaling). With the ~2x(mode+CR3)
// switch costs this lands an empty syscall at ~2.2 us — the order the
// Systrap release notes report against a ~90 ns native syscall.
constexpr SimNanos kSystrapIpcWork = 1700;
// Sentry's re-implemented handlers run slower than native kernel paths.
constexpr SimNanos kSentryHandlerExtra = 180;
// Sentry netstack (user-space TCP/IP) per-packet surcharge.
constexpr SimNanos kNetstackExtra = 2200;
}  // namespace

GvisorEngine::GvisorEngine(Machine& machine) : ContainerEngine(machine) {
  AllocPcids(256);
}

SimNanos GvisorEngine::SystrapCost() const {
  const CostModel& c = ctx_.cost();
  // Trap to host, context switch to the Sentry process, and back.
  return 2 * c.mode_switch + 2 * c.Cr3SwitchMitigated() + kSystrapIpcWork;
}

SyscallResult GvisorEngine::DoUserSyscall(const SyscallRequest& req) {
  SyscallScope obs_scope(ctx_, id_, SysName(req.no));
  Cpu& cpu = machine_.cpu();
  ctx_.Charge(ctx_.cost().syscall_entry, PathEvent::kSyscallEntry);
  cpu.SyscallEntry();
  // Systrap: host redirects into the Sentry process.
  ctx_.Charge(ctx_.cost().mode_switch, PathEvent::kModeSwitch);
  ctx_.Charge(ctx_.cost().Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  ctx_.ChargeWork(kSystrapIpcWork);
  ctx_.ChargeWork(ctx_.cost().syscall_handler_min + kSentryHandlerExtra);
  SyscallResult result = kernel_->HandleSyscall(req);
  ctx_.Charge(ctx_.cost().Cr3SwitchMitigated(), PathEvent::kCr3Switch);
  ctx_.Charge(ctx_.cost().mode_switch, PathEvent::kModeSwitch);
  ctx_.Charge(ctx_.cost().sysret_exit, PathEvent::kSyscallExit);
  cpu.Sysret(/*requested_if=*/true);
  return result;
}

TouchResult GvisorEngine::DoUserTouch(uint64_t va, bool write) {
  TraceScope obs_scope(ctx_, id_, "touch");
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kUser);
  AccessIntent intent = write ? AccessIntent::Write() : AccessIntent::Read();
  const CostModel& c = ctx_.cost();
  for (int attempt = 0; attempt < 4; ++attempt) {
    Fault f = cpu.Access(va, intent);
    if (!f) {
      return TouchResult::kOk;
    }
    if (f.type != FaultType::kPageNotPresent && f.type != FaultType::kPageProtection) {
      return TouchResult::kSegv;
    }
    // The host kernel handles application page faults directly (the
    // design's trick for avoiding shadow paging, sec 2.4.3); the Sentry
    // only sees faults for ranges it has not host-mmapped yet, which our
    // model folds into a small surcharge.
    TraceScope fault_scope(ctx_, "fault");
    ctx_.Charge(c.fault_delivery, PathEvent::kPageFault);
    cpu.set_cpl(Cpl::kKernel);
    ctx_.ChargeWork(kSentryHandlerExtra / 2);
    bool resolved = kernel_->HandlePageFault(va, write);
    ctx_.ChargeWork(c.iret_native);
    cpu.set_cpl(Cpl::kUser);
    if (!resolved) {
      return TouchResult::kSegv;
    }
  }
  return TouchResult::kSegv;
}

uint64_t GvisorEngine::DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  return Hypercall(op, a0, a1);
}

uint64_t GvisorEngine::Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  (void)op;
  (void)a0;
  (void)a1;
  // Sentry -> host requests are ordinary host syscalls from the Sentry
  // process (one ring crossing, no address-space switch needed).
  TraceScope obs_scope(ctx_, "hypercall");
  ctx_.RecordEvent(PathEvent::kHypercall);
  ctx_.Charge(ctx_.cost().mode_switch, PathEvent::kModeSwitch);
  ctx_.ChargeWork(ctx_.cost().hypercall_dispatch);
  ctx_.Charge(ctx_.cost().mode_switch, PathEvent::kModeSwitch);
  return 0;
}

SimNanos GvisorEngine::KickCost() const {
  // Sentry writes to the host network via a host syscall.
  return 2 * ctx_.cost().mode_switch + ctx_.cost().hypercall_dispatch;
}

SimNanos GvisorEngine::DeviceInterruptCost() const {
  // Host wakes the Sentry (process switch) to deliver packets.
  return 2 * (ctx_.cost().mode_switch + ctx_.cost().Cr3SwitchMitigated()) +
         ctx_.cost().virq_inject;
}

SimNanos GvisorEngine::VirtioEmulationExtra() const {
  // No virtio at all — but every packet crosses the Sentry netstack.
  return kNetstackExtra;
}

uint64_t GvisorEngine::ReadPte(uint64_t pte_pa) { return machine_.mem().ReadU64(pte_pa); }

bool GvisorEngine::StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) {
  (void)level;
  (void)va;
  // The host kernel manages the real page tables (Sentry uses host mmap):
  // native store.
  ctx_.Charge(ctx_.cost().pte_write_native, PathEvent::kPteUpdate);
  machine_.mem().WriteU64(pte_pa, value);
  return true;
}

uint64_t GvisorEngine::AllocDataPage() { return machine_.frames().AllocFrame(id_); }

void GvisorEngine::FreeDataPage(uint64_t pa) {
  if (ReleaseSharedDataFrame(pa)) {
    return;  // clone-shared frame: the allocator kept it for siblings
  }
  machine_.frames().FreeFrame(pa);
}

uint64_t GvisorEngine::AllocPtp(int level) {
  (void)level;
  return machine_.frames().AllocFrame(id_);
}

void GvisorEngine::FreePtp(uint64_t pa, int level) {
  (void)level;
  machine_.frames().FreeFrame(pa);
}

void GvisorEngine::LoadAddressSpace(uint64_t root_pa, uint16_t asid) {
  // Sentry asks the host to switch stubs/address spaces: a host syscall.
  ctx_.Charge(ctx_.cost().mode_switch, PathEvent::kModeSwitch);
  ctx_.Charge(ctx_.cost().cr3_write_raw, PathEvent::kCr3Switch);
  machine_.cpu().LoadCr3(MakeCr3(root_pa, static_cast<uint16_t>(pcid_base_ + (asid & 0xFF))));
  ctx_.Charge(ctx_.cost().mode_switch, PathEvent::kModeSwitch);
}

void GvisorEngine::InvalidatePage(uint64_t va) { machine_.cpu().Invlpg(va); }

}  // namespace cki
