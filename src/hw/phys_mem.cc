#include "src/hw/phys_mem.h"

#include <cassert>
#include <cstdio>
#include <string>

#include "src/fault/fault_domain.h"

namespace cki {

void PhysMem::InstallFrame(uint64_t pa) { installed_.insert(FrameIndex(pa)); }

void PhysMem::InstallRange(uint64_t base, uint64_t pages) {
  assert((base & (kPageSize - 1)) == 0 && "range must be page aligned");
  if (pages == 0) {
    return;
  }
  installed_ranges_.emplace_back(FrameIndex(base), FrameIndex(base) + pages - 1);
}

bool PhysMem::HasFrame(uint64_t pa) const {
  uint64_t idx = FrameIndex(pa);
  if (installed_.count(idx) != 0) {
    return true;
  }
  for (const auto& [first, last] : installed_ranges_) {
    if (idx >= first && idx <= last) {
      return true;
    }
  }
  return false;
}

void PhysMem::CheckInstalled(uint64_t pa) const {
  if (!HasFrame(pa)) {
    // An access outside installed DRAM is a simulator-usage bug, not a
    // guest fault: surface it as the host-fatal exception so the harness
    // can report it instead of dying with the process.
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(pa));
    throw FatalHostError(std::string("PhysMem: access to uninstalled frame at pa=") + buf);
  }
}

PhysMem::Page& PhysMem::MaterializePage(uint64_t pa) {
  uint64_t idx = FrameIndex(pa);
  auto it = pages_.find(idx);
  if (it == pages_.end()) {
    CheckInstalled(pa);
    auto page = std::make_unique<Page>();
    page->fill(0);
    it = pages_.emplace(idx, std::move(page)).first;
  }
  return *it->second;
}

uint64_t PhysMem::ReadU64(uint64_t pa) const {
  assert((pa & 7) == 0 && "unaligned 64-bit physical read");
  auto it = pages_.find(FrameIndex(pa));
  if (it == pages_.end()) {
    CheckInstalled(pa);
    return 0;  // installed but never written: reads as zero
  }
  return (*it->second)[(pa & (kPageSize - 1)) >> 3];
}

void PhysMem::WriteU64(uint64_t pa, uint64_t value) {
  assert((pa & 7) == 0 && "unaligned 64-bit physical write");
  MaterializePage(pa)[(pa & (kPageSize - 1)) >> 3] = value;
}

void PhysMem::ZeroFrame(uint64_t pa) {
  auto it = pages_.find(FrameIndex(pa));
  if (it != pages_.end()) {
    it->second->fill(0);
  }
}

}  // namespace cki
