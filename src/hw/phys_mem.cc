#include "src/hw/phys_mem.h"

#include <cstdio>
#include <string>

#include "src/fault/fault_domain.h"

namespace cki {

const PhysMem::Node* PhysMem::OverflowNodeFor(uint64_t node_idx) const {
  if (overflow_.empty()) {
    return nullptr;
  }
  auto it = overflow_.find(node_idx);
  return it != overflow_.end() ? it->second.get() : nullptr;
}

PhysMem::Node& PhysMem::EnsureNode(uint64_t frame_idx) {
  uint64_t n = frame_idx >> kNodeShift;
  if (n < kMaxDirectNodes) {
    if (n >= nodes_.size()) {
      nodes_.resize(static_cast<size_t>(n) + 1);
    }
    if (!nodes_[n]) {
      nodes_[n] = std::make_unique<Node>();
    }
    return *nodes_[n];
  }
  auto& slot = overflow_[n];
  if (!slot) {
    slot = std::make_unique<Node>();
  }
  return *slot;
}

void PhysMem::InstallFrame(uint64_t pa) {
  uint64_t idx = FrameIndex(pa);
  EnsureNode(idx).installed.set(idx & kNodeMask);
}

void PhysMem::InstallRange(uint64_t base, uint64_t pages) {
  assert((base & (kPageSize - 1)) == 0 && "range must be page aligned");
  if (pages == 0) {
    return;
  }
  // O(1) regardless of range size: membership is resolved lazily by
  // InstalledSlow and memoized into node bitmaps on first touch.
  installed_ranges_.emplace_back(FrameIndex(base), FrameIndex(base) + pages - 1);
}

bool PhysMem::InstalledSlow(uint64_t frame_idx) const {
  for (const auto& [first, last] : installed_ranges_) {
    if (frame_idx >= first && frame_idx <= last) {
      return true;
    }
  }
  return false;
}

bool PhysMem::HasFrame(uint64_t pa) const {
  uint64_t idx = FrameIndex(pa);
  const Node* node = NodeFor(idx);
  if (node != nullptr && node->installed.test(idx & kNodeMask)) {
    return true;
  }
  return InstalledSlow(idx);
}

void PhysMem::CheckInstalled(uint64_t pa) const {
  if (!HasFrame(pa)) {
    // An access outside installed DRAM is a simulator-usage bug, not a
    // guest fault: surface it as the host-fatal exception so the harness
    // can report it instead of dying with the process.
    char buf[20];
    std::snprintf(buf, sizeof(buf), "0x%llx", static_cast<unsigned long long>(pa));
    throw FatalHostError(std::string("PhysMem: access to uninstalled frame at pa=") + buf);
  }
}

PhysMem::Page& PhysMem::MaterializePage(uint64_t pa) {
  CheckInstalled(pa);
  uint64_t idx = FrameIndex(pa);
  Node& node = EnsureNode(idx);
  node.installed.set(idx & kNodeMask);  // memoize range membership
  Page*& slot = node.pages[idx & kNodeMask];
  if (slot == nullptr) {
    if (arena_free_ == 0) {
      arena_.emplace_back(new Page[kArenaChunkPages]());  // value-init: zeroed
      arena_free_ = kArenaChunkPages;
    }
    slot = &arena_.back()[kArenaChunkPages - arena_free_];
    arena_free_--;
    materialized_++;
  }
  return *slot;
}

uint64_t PhysMem::ReadSlow(uint64_t pa) const {
  CheckInstalled(pa);
  return 0;  // installed but never written: reads as zero
}

void PhysMem::WriteSlow(uint64_t pa, uint64_t value) {
  MaterializePage(pa)[(pa & (kPageSize - 1)) >> 3] = value;
}

void PhysMem::ZeroFrame(uint64_t pa) {
  uint64_t idx = FrameIndex(pa);
  Node* node = NodeFor(idx);
  if (node != nullptr) {
    Page* page = node->pages[idx & kNodeMask];
    if (page != nullptr) {
      page->fill(0);
    }
  }
}

}  // namespace cki
