#include "src/hw/fault.h"

namespace cki {

std::string_view FaultTypeName(FaultType t) {
  switch (t) {
    case FaultType::kNone:
      return "none";
    case FaultType::kPageNotPresent:
      return "page_not_present";
    case FaultType::kPageProtection:
      return "page_protection";
    case FaultType::kPageKeyViolation:
      return "page_key_violation";
    case FaultType::kEptViolation:
      return "ept_violation";
    case FaultType::kGeneralProtection:
      return "general_protection";
    case FaultType::kPrivInstrBlocked:
      return "priv_instr_blocked";
    case FaultType::kInvalidOpcode:
      return "invalid_opcode";
    case FaultType::kTripleFault:
      return "triple_fault";
  }
  return "unknown";
}

}  // namespace cki
