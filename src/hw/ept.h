// Second-stage (extended) page tables for hardware-assisted virtualization.
//
// Real EPT entries use an R/W/X bit layout that differs from ordinary PTEs;
// the simulator reuses the PTE encoding (P == readable) since nothing here
// depends on the exact bit positions — only on the structure: a 4-level
// radix tree from guest-physical to host-physical addresses, walked (and
// charged) once per guest level during a two-dimensional translation.
#ifndef SRC_HW_EPT_H_
#define SRC_HW_EPT_H_

#include <array>
#include <cstdint>
#include <functional>

#include "src/hw/fault.h"
#include "src/hw/page_table.h"
#include "src/hw/phys_mem.h"

namespace cki {

class Ept {
 public:
  // `alloc` provides zeroed host frames for EPT table pages.
  Ept(PhysMem& mem, PtpAllocFn alloc);

  uint64_t root_pa() const { return root_pa_; }

  // Maps gpa -> hpa (4K or 2M). Direct stores: the EPT belongs to the
  // (trusted) hypervisor, no monitor hook is needed.
  bool Map(uint64_t gpa, uint64_t hpa, PageSize size);
  bool Unmap(uint64_t gpa);

  // Translates a guest-physical address. A miss is an EPT violation.
  WalkResult Translate(uint64_t gpa) const;

  uint64_t mapped_pages() const { return mapped_pages_; }

  // Monotonic count of mapping changes; consumers caching translation
  // results (the CPU walk cache, this EPT's own cache) key on it.
  uint64_t generation() const { return gen_; }

 private:
  // Direct-mapped translation cache over successful walks: a 2D TLB miss
  // performs up to five EPT walks (four table pages + the data page) over
  // the same handful of hot gPA pages. Entries carry the full WalkResult
  // (including mem_refs) so a hit is indistinguishable from a re-walk;
  // any Map/Unmap bumps the generation, invalidating everything in O(1).
  // Purely host-side state — never charged, never hashed (DESIGN.md §14).
  struct CacheEntry {
    uint64_t tag = 0;  // gpa page + 1; 0 = empty
    uint64_t gen = 0;
    WalkResult walk;
  };
  static constexpr size_t kCacheEntries = 4096;  // power of two

  PhysMem& mem_;
  PtpAllocFn alloc_;
  PageTableEditor editor_;
  uint64_t root_pa_;
  uint64_t mapped_pages_ = 0;
  mutable std::array<CacheEntry, kCacheEntries> cache_{};
  uint64_t gen_ = 1;
};

}  // namespace cki

#endif  // SRC_HW_EPT_H_
