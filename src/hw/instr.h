// Privileged-instruction model and the CKI hardware extension that gates
// them on PKRS (paper section 4.1, Table 3).
//
// The extension: while PKRS is non-zero (i.e. a deprivileged guest kernel is
// running), executing any *destructive* privileged instruction raises a
// fault that traps to the host kernel. Harmless privileged instructions
// remain executable to keep the fast paths fast.
#ifndef SRC_HW_INSTR_H_
#define SRC_HW_INSTR_H_

#include <cstdint>
#include <string_view>

namespace cki {

enum class PrivInstr : uint8_t {
  // System registers (boot-time only in a container guest; KSM calls).
  kLidt = 0,   // load IDTR
  kLgdt,       // load GDTR
  kLtr,        // load task register
  // Model-specific registers (timer, IPI -> hypercalls).
  kRdmsr,
  kWrmsr,
  // Control registers.
  kMovFromCr,  // read CR0/CR4 (harmless)
  kMovToCr0,   // KSM call (init, TS-bit toggling for lazy FPU)
  kMovToCr4,   // KSM call
  kMovToCr3,   // KSM call (address-space switch)
  kClac,       // toggle AC bit, harmless
  kStac,
  // TLB state.
  kInvlpg,     // allowed: PCID isolation confines the flush
  kInvpcid,    // blocked: could flush other containers' contexts
  // Syscall / exception plumbing.
  kSwapgs,     // allowed for syscall performance (OPT3)
  kSysret,     // allowed, with the IF-enforcement extension
  kIret,       // blocked: can rewrite segment state; KSM call
  // Others.
  kHlt,        // blocked: replaced by a vCPU-pause hypercall
  kSti,        // blocked: interrupt state lives in memory
  kCli,
  kPopf,       // blocked: can clear IF
  kInOut,      // port I/O, unused in a para-virtualized guest
  kSmsw,       // legacy/system-management, unused
  kWrpkrs,     // the new instruction; allowed (it is the gate primitive)
  kVmcall,     // hypercall entry (not privileged per se; modeled here)
  kCount,
};

std::string_view PrivInstrName(PrivInstr i);

// Architectural blocked set of the CKI extension: true if executing `i`
// with non-zero PKRS must trap. Mirrors Table 3 exactly.
bool BlockedWhenPkrsNonzero(PrivInstr i);

// Feature toggles of the proposed hardware extension. A stock CPU has all
// of them off; a CKI CPU has all of them on. Individual toggles let tests
// demonstrate which attack each sub-feature stops.
struct CkiHwExtensions {
  bool pks_priv_gating = false;    // block destructive priv instrs if PKRS != 0
  bool wrpkrs_instruction = false; // dedicated PKRS write (vs wrmsr)
  bool idt_pks_switch = false;     // hw interrupt delivery zeroes PKRS
  bool iret_pks_restore = false;   // iret may restore a saved PKRS
  bool sysret_if_enforce = false;  // sysret keeps IF=1 when PKRS != 0

  static CkiHwExtensions None() { return CkiHwExtensions{}; }
  static CkiHwExtensions All() {
    return CkiHwExtensions{.pks_priv_gating = true,
                           .wrpkrs_instruction = true,
                           .idt_pks_switch = true,
                           .iret_pks_restore = true,
                           .sysret_if_enforce = true};
  }
};

// The simulated opcode byte pattern of wrpkrs, used by the binary-rewriting
// scanner (section 4.1): all wrpkrs occurrences — including unaligned ones —
// must be eliminated from guest kernel code outside registered gates.
inline constexpr uint8_t kWrpkrsOpcode[3] = {0x0F, 0x01, 0xEF};
inline constexpr size_t kWrpkrsOpcodeLen = 3;

}  // namespace cki

#endif  // SRC_HW_INSTR_H_
