// Construction and walking of 4-level x86-64 page tables stored in simulated
// physical memory.
//
// Reads and stores of page-table entries go through caller-provided hooks.
// Those hooks are the architectural seams the four container designs differ
// on:
//   RunC / HVM guest : direct load/store (HVM reads via its gPA->hPA backing)
//   PVM guest        : store triggers a VM exit + shadow-PTE emulation
//   CKI guest        : store is a KSM call validated by the page-table
//                      monitor (the guest's own PKS view has PTPs read-only)
#ifndef SRC_HW_PAGE_TABLE_H_
#define SRC_HW_PAGE_TABLE_H_

#include <cstdint>
#include <functional>
#include <optional>

#include "src/hw/fault.h"
#include "src/hw/phys_mem.h"
#include "src/hw/pte.h"

namespace cki {

// Reads the 64-bit entry at (guest-)physical address `pa`.
using PteReadFn = std::function<uint64_t(uint64_t pa)>;

// Allocates a zeroed 4 KiB frame for a page-table page and returns its PA.
// `level` is the table level the new page will serve (3 = PDPT ... 1 = PT).
using PtpAllocFn = std::function<uint64_t(int level)>;

// Stores `value` into the PTE at physical address `pte_pa` (which sits at
// table `level` and maps `va`). Returns false if the store was rejected
// (e.g. the CKI monitor refused the update).
using PteStoreFn = std::function<bool(uint64_t pte_pa, uint64_t value, int level, uint64_t va)>;

enum class PageSize : uint8_t { k4K, k2M };

// Result of a translation walk.
struct WalkResult {
  Fault fault;            // fault.ok() when translation succeeded
  uint64_t pa = 0;        // translated physical address
  uint64_t leaf_pte = 0;  // the leaf entry
  uint64_t leaf_pte_pa = 0;
  int leaf_level = 1;     // 1 = 4K leaf, 2 = 2M leaf
  int mem_refs = 0;       // table references performed
};

// Structural navigation over a table rooted at `root_pa`. Stateless apart
// from the injected hooks.
class PageTableEditor {
 public:
  PageTableEditor(PteReadFn read, PtpAllocFn alloc, PteStoreFn store);
  // Convenience: read directly from simulated physical memory.
  PageTableEditor(PhysMem& mem, PtpAllocFn alloc, PteStoreFn store);

  // Maps `va` -> `pa` with the given leaf flags/key, creating intermediate
  // tables as needed (intermediate entries get P|W|U so leaf bits govern).
  // Returns false if any PTE store was rejected.
  bool MapPage(uint64_t root_pa, uint64_t va, uint64_t pa, uint64_t flags, uint32_t pkey,
               PageSize size);

  // Clears the leaf entry for `va`. Returns false if unmapped or rejected.
  bool UnmapPage(uint64_t root_pa, uint64_t va);

  // Rewrites the leaf entry for `va` with new flags/key, keeping the PA.
  bool ProtectPage(uint64_t root_pa, uint64_t va, uint64_t flags, uint32_t pkey);

  // Walks using this editor's read hook (correct address space for the
  // owning kernel, e.g. gPA under HVM).
  WalkResult Walk(uint64_t root_pa, uint64_t va) const;

  // Returns the PA of the leaf PTE slot for `va` if all intermediate levels
  // are present (the leaf itself may be non-present).
  std::optional<uint64_t> FindLeafSlot(uint64_t root_pa, uint64_t va) const;

  // Invokes `fn(va, leaf_pte, leaf_pte_pa, level)` for every present leaf
  // under `root_pa`. Used by fork()-style address-space cloning.
  void ForEachLeaf(uint64_t root_pa,
                   const std::function<void(uint64_t va, uint64_t pte, uint64_t pte_pa,
                                            int level)>& fn) const;

 private:
  // Descends to the table that holds the leaf for `va`; creates missing
  // levels when `create` is set. Returns the PA of the leaf slot, or
  // nullopt on missing level (when !create) or rejected store.
  std::optional<uint64_t> Descend(uint64_t root_pa, uint64_t va, int leaf_level, bool create);

  void ForEachLeafRecurse(uint64_t table_pa, int level, uint64_t va_base,
                          const std::function<void(uint64_t, uint64_t, uint64_t, int)>& fn) const;

  PteReadFn read_;
  PtpAllocFn alloc_;
  PteStoreFn store_;
};

// Pure translation over a read hook. Performs no permission checks (the CPU
// applies those per access intent) but counts the memory references so
// TLB-miss costs can be charged.
WalkResult WalkPageTableFn(const PteReadFn& read, uint64_t root_pa, uint64_t va);

// Convenience overload reading from simulated physical memory.
WalkResult WalkPageTable(const PhysMem& mem, uint64_t root_pa, uint64_t va);

}  // namespace cki

#endif  // SRC_HW_PAGE_TABLE_H_
