// The simulated CPU core: privilege mode, control registers, PKS/PKU
// registers, the PCID-tagged TLB, one- and two-stage address translation,
// privileged-instruction execution, and interrupt delivery — including all
// five CKI hardware extensions (section 4 / 5 of the paper).
#ifndef SRC_HW_CPU_H_
#define SRC_HW_CPU_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/hw/ept.h"
#include "src/hw/fault.h"
#include "src/hw/idt.h"
#include "src/hw/instr.h"
#include "src/hw/page_table.h"
#include "src/hw/phys_mem.h"
#include "src/hw/pks.h"
#include "src/hw/tlb.h"
#include "src/sim/context.h"

namespace cki {

enum class Cpl : uint8_t { kKernel = 0, kUser = 3 };

struct AccessIntent {
  bool write = false;
  bool exec = false;

  static AccessIntent Read() { return {}; }
  static AccessIntent Write() { return {.write = true}; }
  static AccessIntent Exec() { return {.write = false, .exec = true}; }
};

// Result of delivering an interrupt/exception through the IDT.
struct InterruptEntry {
  Fault fault;               // kTripleFault when delivery itself failed
  uint32_t handler_tag = 0;  // which handler the IDT selected
  uint32_t saved_pkrs = 0;   // PKRS at delivery (CKI ext saves it for iret)
  bool pks_switched = false; // the IDT extension zeroed PKRS
};

class Cpu {
 public:
  Cpu(SimContext& ctx, PhysMem& mem, CkiHwExtensions ext = CkiHwExtensions::None());

  // --- register & mode accessors -------------------------------------------
  Cpl cpl() const { return cpl_; }
  void set_cpl(Cpl cpl) { cpl_ = cpl; }
  uint64_t cr3() const { return cr3_; }
  uint32_t pkrs() const { return pkrs_; }
  uint32_t pkru() const { return pkru_; }
  void set_pkru(uint32_t v) { pkru_ = v; }  // wrpkru: unprivileged
  // Trusted/hardware-internal PKRS update with no instruction cost (e.g.
  // the restore leg of an extended sysret/iret sequence).
  void SetPkrsDirect(uint32_t v) { pkrs_ = v; }
  bool interrupts_enabled() const { return if_; }
  void set_interrupts_enabled(bool on) { if_ = on; }
  uint64_t gs_base() const { return gs_base_; }
  uint64_t kernel_gs_base() const { return kernel_gs_base_; }
  void set_kernel_gs_base(uint64_t v) { kernel_gs_base_ = v; }
  const CkiHwExtensions& extensions() const { return ext_; }

  void set_idt(const Idt* idt) { idt_ = idt; }
  // Active second-stage translation (nullptr = one-stage). Engines set this
  // when entering VMX non-root mode.
  void set_ept(const Ept* ept) { ept_ = ept; }
  const Ept* ept() const { return ept_; }

  Tlb& tlb() { return tlb_; }
  const Tlb& tlb() const { return tlb_; }

  // Raw CR3 load used by trusted software (host kernel / KSM / hypervisor).
  // With PCIDs enabled a CR3 write does not flush the TLB.
  void LoadCr3(uint64_t cr3) { cr3_ = cr3; }

  // Marks the current kernel stack usable/unusable. A malicious guest can
  // point RSP at garbage; interrupt delivery without IST then triple
  // faults (section 4.4, "Prevent interrupt stack manipulation").
  void set_stack_valid(bool valid) { stack_valid_ = valid; }
  bool stack_valid() const { return stack_valid_; }

  // --- memory access ---------------------------------------------------------
  // Translates and permission-checks an access to `va`, charging TLB/walk
  // costs. On success fills the TLB and sets A/D bits in the leaf PTE.
  // The returned fault (if any) is what the executing kernel must handle.
  Fault Access(uint64_t va, AccessIntent intent);

  // Like Access but also reports the translated PA (for device DMA etc.).
  Fault AccessTranslate(uint64_t va, AccessIntent intent, uint64_t* out_pa);

  // Clean-TLB-hit fast path (DESIGN.md §14). Commits exactly the side
  // effects Access() has for a no-fault TLB hit — the TLB hit counter and
  // the kTlbHit event — and returns true. Every other outcome (TLB miss,
  // any permission/key fault) returns false with ZERO side effects; the
  // caller must then run the full Access() path, which re-probes and
  // produces the identical event, counter, and cost stream it always
  // did. Inline so the workload loop pays one probe, not two virtual
  // calls plus a Fault round-trip, for the ~70% of touches that hit.
  bool TryUserTouchFast(uint64_t va, AccessIntent intent) {
    const TlbEntry* hit = tlb_.Probe(Cr3Pcid(cr3_), va);
    if (hit == nullptr) {
      return false;
    }
    if (CheckLeafPermissions(hit->flags, hit->pkey, va, intent, /*from_tlb=*/true)) {
      return false;
    }
    tlb_.CountHit();
    ctx_.RecordEvent(PathEvent::kTlbHit, va);
    return true;
  }

  // --- privileged instructions -----------------------------------------------
  // Executes a privileged instruction subject to CPL and the CKI PKS-gating
  // extension. Returns the fault the hardware would raise, if any.
  Fault ExecPriv(PrivInstr instr);

  // wrpkrs: the proposed dedicated PKRS-write instruction. #UD without the
  // extension, #GP in user mode, otherwise writes PKRS. Reads back the new
  // value so gate code can implement the anti-ROP check.
  Fault Wrpkrs(uint32_t value);

  // Legacy PKRS write via wrmsr (stock PKS hardware). Subject to the wrmsr
  // blocking rule under PKS gating.
  Fault WrpkrsViaMsr(uint32_t value);

  // swapgs: exchanges gs_base with kernel_gs_base. Allowed in the CKI guest
  // (Table 3) — which is exactly why the KSM must not trust kernel_gs.
  Fault Swapgs();

  // invlpg: flushes one page of the *current PCID only* — PCID contexts
  // confine a malicious guest's flushes to itself.
  Fault Invlpg(uint64_t va);

  // sysret to user mode. With the CKI extension, IF is forced on when PKRS
  // is non-zero (a deprivileged kernel must not leave interrupts masked).
  Fault Sysret(bool requested_if);

  // syscall entry from user mode (IA32_STAR): enters kernel mode. Which
  // handler runs is the engine's concern; hardware just switches mode.
  void SyscallEntry() { cpl_ = Cpl::kKernel; }

  // iret executed by *trusted* code (KSM / host). Restores CPL and, with
  // the extension, a chosen PKRS value. (An untrusted guest attempting
  // iret goes through ExecPriv and gets blocked.)
  void IretTrusted(Cpl return_cpl, std::optional<uint32_t> restore_pkrs);

  // Delivers vector `vector` through the installed IDT. `hardware`
  // distinguishes external interrupts (which the CKI extension re-keys)
  // from software `int N` (which must NOT re-key — that is the
  // anti-forgery property).
  InterruptEntry DeliverInterrupt(uint8_t vector, bool hardware);

  // Host-side cache maintenance: drops every cached walk (O(1), via a
  // generation bump). Required when trusted software rewrites a live leaf
  // PTE without an architectural TLB shootdown (the one known case is
  // PVM's hidden shadow fill; everything else pairs PTE stores with
  // invlpg/INVPCID, which the cache observes via Tlb::shootdown_gen).
  // Never charged: real hardware has no such cache (DESIGN.md §14).
  void InvalidateWalkCache() { walk_inval_gen_++; }

 private:
  // Two-dimensional walk: guest page tables hold gPAs; every table access
  // and the final data page go through the active EPT.
  WalkResult WalkCurrent(uint64_t va) const;
  Fault CheckLeafPermissions(uint64_t flags, uint32_t pkey, uint64_t va, AccessIntent intent,
                             bool from_tlb) const;

  // Software walk cache (DESIGN.md §14): a TLB miss repeats the same 1D/2D
  // walk over the same hot pages, and translations can only change behind
  // a TLB shootdown or an EPT mapping change. Each entry therefore records
  // the (cr3, Tlb::shootdown_gen, ept identity + generation) under which it
  // was filled; a hit with all four unchanged is bit-identical to
  // re-walking. Costs are still charged per miss exactly as before — this
  // caches the host-side table reads, never the simulated behavior. The
  // cached leaf_pte mirrors memory (A/D updates write through).
  struct WalkCacheEntry {
    uint64_t tag = 0;  // va page + 1; 0 = empty
    uint64_t cr3 = 0;
    uint64_t tlb_gen = 0;  // Tlb::shootdown_gen + walk_inval_gen at fill
    uint64_t ept_gen = 0;
    const Ept* ept = nullptr;
    WalkResult walk;
  };
  static constexpr size_t kWalkCacheEntries = 4096;  // power of two

  SimContext& ctx_;
  PhysMem& mem_;
  CkiHwExtensions ext_;
  Tlb tlb_;
  mutable std::vector<WalkCacheEntry> walk_cache_{std::vector<WalkCacheEntry>(kWalkCacheEntries)};
  // Bumped by InvalidateWalkCache. Summed with Tlb::shootdown_gen for the
  // cache key: both only grow, so the sum changes whenever either does.
  uint64_t walk_inval_gen_ = 0;

  Cpl cpl_ = Cpl::kKernel;
  uint64_t cr3_ = 0;
  uint32_t pkrs_ = 0;
  uint32_t pkru_ = 0;
  bool if_ = true;
  uint64_t gs_base_ = 0;
  uint64_t kernel_gs_base_ = 0;
  bool stack_valid_ = true;

  const Idt* idt_ = nullptr;
  const Ept* ept_ = nullptr;
};

}  // namespace cki

#endif  // SRC_HW_CPU_H_
