// Memory Protection Keys state (PKU for user pages, PKS for supervisor
// pages) and the access-rights evaluation the MMU applies after a
// translation succeeds.
//
// A protection-key register (PKRU/PKRS) holds two bits per key:
//   AD (access disable) at bit 2k, WD (write disable) at bit 2k+1.
#ifndef SRC_HW_PKS_H_
#define SRC_HW_PKS_H_

#include <cstdint>

namespace cki {

inline constexpr int kNumPkeys = 16;

// Builds a key-rights register value denying the listed rights.
inline constexpr uint32_t PkAccessDisable(int key) { return 1u << (2 * key); }
inline constexpr uint32_t PkWriteDisable(int key) { return 1u << (2 * key + 1); }

// True if an access of the given kind to a page tagged `key` is permitted
// under register value `pkr`.
inline constexpr bool PkAllows(uint32_t pkr, uint32_t key, bool is_write) {
  if ((pkr & PkAccessDisable(static_cast<int>(key))) != 0) {
    return false;
  }
  if (is_write && (pkr & PkWriteDisable(static_cast<int>(key))) != 0) {
    return false;
  }
  return true;
}

// --- CKI's PKS domain assignment (section 3.3 / 4.3) -----------------------
// Within each secure container's address space only three supervisor
// domains are used, so the 16-key limit never constrains container count:
//   key 0: guest-kernel pages (always accessible in kernel mode)
//   key 1: KSM code/data, per-vCPU areas, IDT, gate code
//   key 2: declared page-table pages (read-only for the guest)
inline constexpr uint32_t kPkeyGuest = 0;
inline constexpr uint32_t kPkeyKsm = 1;
inline constexpr uint32_t kPkeyPtp = 2;

// PKRS value while the deprivileged guest kernel runs: no access to KSM
// memory, read-only access to page-table pages.
inline constexpr uint32_t kPkrsGuest = PkAccessDisable(kPkeyKsm) | PkWriteDisable(kPkeyPtp);
// PKRS value while the KSM (or host) runs: unrestricted.
inline constexpr uint32_t kPkrsMonitor = 0;

}  // namespace cki

#endif  // SRC_HW_PKS_H_
