// Interrupt descriptor table with IST support and the CKI extension that
// switches PKRS to zero on *hardware* interrupt delivery (section 4.4,
// "Prevent interrupt forgery").
#ifndef SRC_HW_IDT_H_
#define SRC_HW_IDT_H_

#include <array>
#include <cstdint>

namespace cki {

inline constexpr int kIdtVectors = 256;
inline constexpr int kNumIstStacks = 8;  // IST index 0 = "no IST"

// Architectural exception vectors used by the simulator.
inline constexpr uint8_t kVecGeneralProtection = 13;
inline constexpr uint8_t kVecPageFault = 14;
// Device vectors (host-assigned).
inline constexpr uint8_t kVecTimer = 32;
inline constexpr uint8_t kVecVirtioNet = 33;
inline constexpr uint8_t kVecVirtioBlk = 34;

struct IdtGate {
  bool present = false;
  uint32_t handler_tag = 0;  // opaque id the kernel uses to dispatch
  uint8_t ist_index = 0;     // 0 = use current stack; 1..7 = IST stack
  // CKI extension bit: deliver with PKRS forced to zero (hardware
  // interrupts only; software `int` leaves PKRS unchanged).
  bool pks_switch = false;
};

class Idt {
 public:
  void SetGate(uint8_t vector, IdtGate gate) { gates_[vector] = gate; }
  const IdtGate& gate(uint8_t vector) const { return gates_[vector]; }

  // Interrupt stack table: virtual addresses of per-vector stacks. A zero
  // address means "not configured".
  void SetIstStack(int index, uint64_t stack_top_va) { ist_[index] = stack_top_va; }
  uint64_t ist_stack(int index) const { return ist_[index]; }

 private:
  std::array<IdtGate, kIdtVectors> gates_{};
  std::array<uint64_t, kNumIstStacks> ist_{};
};

}  // namespace cki

#endif  // SRC_HW_IDT_H_
