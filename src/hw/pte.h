// x86-64 page-table entry layout, including the protection-key bits that
// MPK/PKS repurpose (bits 62:59) and the NX bit. The simulator stores and
// walks entries in exactly this encoding.
#ifndef SRC_HW_PTE_H_
#define SRC_HW_PTE_H_

#include <cstdint>

namespace cki {

// Flag bits, Intel SDM Vol 3A table 4-19.
inline constexpr uint64_t kPteP = 1ULL << 0;    // present
inline constexpr uint64_t kPteW = 1ULL << 1;    // writable
inline constexpr uint64_t kPteU = 1ULL << 2;    // user accessible
inline constexpr uint64_t kPteA = 1ULL << 5;    // accessed
inline constexpr uint64_t kPteD = 1ULL << 6;    // dirty
inline constexpr uint64_t kPtePs = 1ULL << 7;   // page size (2 MiB leaf at L2)
inline constexpr uint64_t kPteG = 1ULL << 8;    // global
inline constexpr uint64_t kPteNx = 1ULL << 63;  // no-execute

inline constexpr uint64_t kPteAddrMask = 0x000FFFFFFFFFF000ULL;
inline constexpr int kPtePkeyShift = 59;
inline constexpr uint64_t kPtePkeyMask = 0xFULL << kPtePkeyShift;

// Number of levels in a 4-level (48-bit VA) radix table: PML4, PDPT, PD, PT.
inline constexpr int kPtLevels = 4;
// Entries per table page.
inline constexpr int kPtEntries = 512;

// Builds an entry from a physical address, flag bits, and a protection key.
inline constexpr uint64_t MakePte(uint64_t pa, uint64_t flags, uint32_t pkey = 0) {
  return (pa & kPteAddrMask) | flags | (static_cast<uint64_t>(pkey & 0xF) << kPtePkeyShift);
}

inline constexpr uint64_t PteAddr(uint64_t pte) { return pte & kPteAddrMask; }
inline constexpr uint32_t PtePkey(uint64_t pte) {
  return static_cast<uint32_t>((pte & kPtePkeyMask) >> kPtePkeyShift);
}
inline constexpr bool PtePresent(uint64_t pte) { return (pte & kPteP) != 0; }
inline constexpr bool PteWritable(uint64_t pte) { return (pte & kPteW) != 0; }
inline constexpr bool PteUser(uint64_t pte) { return (pte & kPteU) != 0; }
inline constexpr bool PteHuge(uint64_t pte) { return (pte & kPtePs) != 0; }
inline constexpr bool PteNoExec(uint64_t pte) { return (pte & kPteNx) != 0; }

// Index of `va` at table level `level` (level 4 = PML4 ... level 1 = PT).
inline constexpr int PtIndex(uint64_t va, int level) {
  return static_cast<int>((va >> (12 + 9 * (level - 1))) & 0x1FF);
}

// CR3 carries the root-table physical address plus a 12-bit PCID.
inline constexpr uint64_t MakeCr3(uint64_t root_pa, uint16_t pcid) {
  return (root_pa & kPteAddrMask) | (pcid & 0xFFF);
}
inline constexpr uint64_t Cr3Root(uint64_t cr3) { return cr3 & kPteAddrMask; }
inline constexpr uint16_t Cr3Pcid(uint64_t cr3) { return static_cast<uint16_t>(cr3 & 0xFFF); }

}  // namespace cki

#endif  // SRC_HW_PTE_H_
