#include "src/hw/page_table.h"

#include <utility>

namespace cki {

PageTableEditor::PageTableEditor(PteReadFn read, PtpAllocFn alloc, PteStoreFn store)
    : read_(std::move(read)), alloc_(std::move(alloc)), store_(std::move(store)) {}

PageTableEditor::PageTableEditor(PhysMem& mem, PtpAllocFn alloc, PteStoreFn store)
    : PageTableEditor([&mem](uint64_t pa) { return mem.ReadU64(pa); }, std::move(alloc),
                      std::move(store)) {}

std::optional<uint64_t> PageTableEditor::Descend(uint64_t root_pa, uint64_t va, int leaf_level,
                                                 bool create) {
  uint64_t table_pa = root_pa;
  for (int level = kPtLevels; level > leaf_level; --level) {
    uint64_t slot_pa = table_pa + static_cast<uint64_t>(PtIndex(va, level)) * 8;
    uint64_t entry = read_(slot_pa);
    if (!PtePresent(entry)) {
      if (!create) {
        return std::nullopt;
      }
      uint64_t new_table = alloc_(level - 1);
      entry = MakePte(new_table, kPteP | kPteW | kPteU);
      if (!store_(slot_pa, entry, level, va)) {
        return std::nullopt;
      }
    } else if (PteHuge(entry)) {
      // A huge leaf already covers this range; cannot descend past it.
      return std::nullopt;
    }
    table_pa = PteAddr(entry);
  }
  return table_pa + static_cast<uint64_t>(PtIndex(va, leaf_level)) * 8;
}

bool PageTableEditor::MapPage(uint64_t root_pa, uint64_t va, uint64_t pa, uint64_t flags,
                              uint32_t pkey, PageSize size) {
  int leaf_level = (size == PageSize::k2M) ? 2 : 1;
  uint64_t leaf_flags = flags | (size == PageSize::k2M ? kPtePs : 0);
  std::optional<uint64_t> slot = Descend(root_pa, va, leaf_level, /*create=*/true);
  if (!slot.has_value()) {
    return false;
  }
  return store_(*slot, MakePte(pa, leaf_flags, pkey), leaf_level, va);
}

bool PageTableEditor::UnmapPage(uint64_t root_pa, uint64_t va) {
  WalkResult walk = Walk(root_pa, va);
  if (walk.fault) {
    return false;
  }
  return store_(walk.leaf_pte_pa, 0, walk.leaf_level, va);
}

bool PageTableEditor::ProtectPage(uint64_t root_pa, uint64_t va, uint64_t flags, uint32_t pkey) {
  WalkResult walk = Walk(root_pa, va);
  if (walk.fault) {
    return false;
  }
  uint64_t huge_bit = walk.leaf_pte & kPtePs;
  return store_(walk.leaf_pte_pa, MakePte(PteAddr(walk.leaf_pte), flags | huge_bit, pkey),
                walk.leaf_level, va);
}

WalkResult PageTableEditor::Walk(uint64_t root_pa, uint64_t va) const {
  return WalkPageTableFn(read_, root_pa, va);
}

std::optional<uint64_t> PageTableEditor::FindLeafSlot(uint64_t root_pa, uint64_t va) const {
  uint64_t table_pa = root_pa;
  for (int level = kPtLevels; level > 1; --level) {
    uint64_t slot_pa = table_pa + static_cast<uint64_t>(PtIndex(va, level)) * 8;
    uint64_t entry = read_(slot_pa);
    if (!PtePresent(entry)) {
      return std::nullopt;
    }
    if (PteHuge(entry)) {
      return slot_pa;
    }
    table_pa = PteAddr(entry);
  }
  return table_pa + static_cast<uint64_t>(PtIndex(va, 1)) * 8;
}

void PageTableEditor::ForEachLeafRecurse(
    uint64_t table_pa, int level, uint64_t va_base,
    const std::function<void(uint64_t, uint64_t, uint64_t, int)>& fn) const {
  uint64_t span = 1ULL << (12 + 9 * (level - 1));  // VA covered per entry
  for (int i = 0; i < kPtEntries; ++i) {
    uint64_t slot_pa = table_pa + static_cast<uint64_t>(i) * 8;
    uint64_t entry = read_(slot_pa);
    if (!PtePresent(entry)) {
      continue;
    }
    uint64_t va = va_base + static_cast<uint64_t>(i) * span;
    bool is_leaf = (level == 1) || (level == 2 && PteHuge(entry));
    if (is_leaf) {
      fn(va, entry, slot_pa, level);
    } else if (level > 1) {
      ForEachLeafRecurse(PteAddr(entry), level - 1, va, fn);
    }
  }
}

void PageTableEditor::ForEachLeaf(
    uint64_t root_pa,
    const std::function<void(uint64_t, uint64_t, uint64_t, int)>& fn) const {
  ForEachLeafRecurse(root_pa, kPtLevels, 0, fn);
}

WalkResult WalkPageTableFn(const PteReadFn& read, uint64_t root_pa, uint64_t va) {
  WalkResult result;
  uint64_t table_pa = root_pa;
  for (int level = kPtLevels; level >= 1; --level) {
    uint64_t slot_pa = table_pa + static_cast<uint64_t>(PtIndex(va, level)) * 8;
    result.mem_refs++;
    uint64_t entry = read(slot_pa);
    if (!PtePresent(entry)) {
      result.fault = Fault{.type = FaultType::kPageNotPresent, .va = va};
      return result;
    }
    bool is_leaf = (level == 1) || (level == 2 && PteHuge(entry));
    if (is_leaf) {
      result.leaf_pte = entry;
      result.leaf_pte_pa = slot_pa;
      result.leaf_level = level;
      uint64_t offset_mask = (level == 2) ? (kHugePageSize - 1) : (kPageSize - 1);
      result.pa = (PteAddr(entry) & ~offset_mask) | (va & offset_mask);
      return result;
    }
    table_pa = PteAddr(entry);
  }
  // Unreachable: level 1 always terminates above.
  result.fault = Fault{.type = FaultType::kPageNotPresent, .va = va};
  return result;
}

WalkResult WalkPageTable(const PhysMem& mem, uint64_t root_pa, uint64_t va) {
  // Same algorithm as WalkPageTableFn, but reading simulated memory
  // directly: this overload is the translation hot path (every 1D TLB miss
  // and every EPT level of a 2D miss), and wrapping `mem` in a fresh
  // std::function per call used to dominate the walk cost (DESIGN.md §14).
  WalkResult result;
  uint64_t table_pa = root_pa;
  for (int level = kPtLevels; level >= 1; --level) {
    uint64_t slot_pa = table_pa + static_cast<uint64_t>(PtIndex(va, level)) * 8;
    result.mem_refs++;
    uint64_t entry = mem.ReadU64(slot_pa);
    if (!PtePresent(entry)) {
      result.fault = Fault{.type = FaultType::kPageNotPresent, .va = va};
      return result;
    }
    bool is_leaf = (level == 1) || (level == 2 && PteHuge(entry));
    if (is_leaf) {
      result.leaf_pte = entry;
      result.leaf_pte_pa = slot_pa;
      result.leaf_level = level;
      uint64_t offset_mask = (level == 2) ? (kHugePageSize - 1) : (kPageSize - 1);
      result.pa = (PteAddr(entry) & ~offset_mask) | (va & offset_mask);
      return result;
    }
    table_pa = PteAddr(entry);
  }
  result.fault = Fault{.type = FaultType::kPageNotPresent, .va = va};
  return result;
}

}  // namespace cki
