// Sparse simulated physical memory.
//
// Page tables (guest and EPT) are stored as real 64-bit entries in this
// memory, so translation in the simulator works by actually walking tables,
// not by consulting a side map. Frames must be installed before use, but
// backing storage materializes lazily on the first write — installing a
// multi-gigabyte segment is O(1).
//
// Layout (DESIGN.md §14): a two-level direct-indexed page directory
// replaces the old hash maps. Frame index >> kNodeShift selects a Node
// (one pointer load from a flat vector); the low bits select the Page
// pointer and installed bit inside the node. ReadU64/WriteU64 are inline
// and touch no hash or allocator on the hot path. Page backing comes from
// a bump arena (pages are never individually freed — frames are recycled
// by zeroing, so the arena only grows to the high-water mark).
#ifndef SRC_HW_PHYS_MEM_H_
#define SRC_HW_PHYS_MEM_H_

#include <array>
#include <bitset>
#include <cassert>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

namespace cki {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kHugePageSize = 2 * 1024 * 1024;  // 2 MiB
inline constexpr uint64_t kHugePageShift = 21;

class PhysMem {
 public:
  // Installs (and zeroes) the 4 KiB frame containing `pa`. Idempotent.
  void InstallFrame(uint64_t pa);

  // Installs `pages` consecutive frames starting at page-aligned `base`.
  // O(1): backing materializes on first write.
  void InstallRange(uint64_t base, uint64_t pages);

  // True if the frame containing `pa` has been installed.
  bool HasFrame(uint64_t pa) const;

  // 64-bit loads/stores at physical addresses. The frame must be installed;
  // accessing an uninstalled frame indicates a simulator bug and aborts.
  uint64_t ReadU64(uint64_t pa) const {
    assert((pa & 7) == 0 && "unaligned 64-bit physical read");
    uint64_t idx = pa >> kPageShift;
    const Node* node = NodeFor(idx);
    if (node != nullptr) {
      const Page* page = node->pages[idx & kNodeMask];
      if (page != nullptr) {
        return (*page)[(pa & (kPageSize - 1)) >> 3];
      }
    }
    return ReadSlow(pa);  // installed but never written: reads as zero
  }

  void WriteU64(uint64_t pa, uint64_t value) {
    assert((pa & 7) == 0 && "unaligned 64-bit physical write");
    uint64_t idx = pa >> kPageShift;
    Node* node = NodeFor(idx);
    if (node != nullptr) {
      Page* page = node->pages[idx & kNodeMask];
      if (page != nullptr) {
        (*page)[(pa & (kPageSize - 1)) >> 3] = value;
        return;
      }
    }
    WriteSlow(pa, value);
  }

  // Zeroes an installed frame (clear_page()).
  void ZeroFrame(uint64_t pa);

  size_t materialized_frames() const { return materialized_; }

 private:
  using Page = std::array<uint64_t, kPageSize / sizeof(uint64_t)>;

  // A node covers kNodeFrames consecutive frames (16 MiB of simulated
  // RAM): page pointers plus the installed bitmap for its slice.
  static constexpr uint64_t kNodeShift = 12;
  static constexpr uint64_t kNodeFrames = 1ull << kNodeShift;  // 4096
  static constexpr uint64_t kNodeMask = kNodeFrames - 1;
  // Direct-indexed directory up to this many nodes (64 TiB of PA space);
  // anything beyond (pathological test addresses) lands in overflow_.
  static constexpr uint64_t kMaxDirectNodes = 1ull << 22;

  struct Node {
    std::array<Page*, kNodeFrames> pages{};  // null until materialized
    std::bitset<kNodeFrames> installed;      // per-frame install bits
  };

  static uint64_t FrameIndex(uint64_t pa) { return pa >> kPageShift; }

  const Node* NodeFor(uint64_t frame_idx) const {
    uint64_t n = frame_idx >> kNodeShift;
    if (n < nodes_.size()) {
      return nodes_[n].get();
    }
    return OverflowNodeFor(n);
  }
  Node* NodeFor(uint64_t frame_idx) {
    return const_cast<Node*>(static_cast<const PhysMem*>(this)->NodeFor(frame_idx));
  }
  const Node* OverflowNodeFor(uint64_t node_idx) const;
  Node& EnsureNode(uint64_t frame_idx);

  bool InstalledSlow(uint64_t frame_idx) const;  // checks lazy ranges too
  uint64_t ReadSlow(uint64_t pa) const;
  void WriteSlow(uint64_t pa, uint64_t value);
  void CheckInstalled(uint64_t pa) const;
  Page& MaterializePage(uint64_t pa);

  std::vector<std::unique_ptr<Node>> nodes_;  // direct index: frame_idx >> kNodeShift
  std::unordered_map<uint64_t, std::unique_ptr<Node>> overflow_;
  std::vector<std::pair<uint64_t, uint64_t>> installed_ranges_;  // [first, last] frame index

  // Bump arena for page backing. Chunks are value-initialized (zeroed);
  // pages are handed out once and recycled only via ZeroFrame.
  static constexpr size_t kArenaChunkPages = 512;  // 2 MiB per chunk
  std::vector<std::unique_ptr<Page[]>> arena_;
  size_t arena_free_ = 0;  // unused pages at the tail of arena_.back()
  size_t materialized_ = 0;
};

}  // namespace cki

#endif  // SRC_HW_PHYS_MEM_H_
