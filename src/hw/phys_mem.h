// Sparse simulated physical memory.
//
// Page tables (guest and EPT) are stored as real 64-bit entries in this
// memory, so translation in the simulator works by actually walking tables,
// not by consulting a side map. Frames must be installed before use, but
// backing storage materializes lazily on the first write — installing a
// multi-gigabyte segment is O(1).
#ifndef SRC_HW_PHYS_MEM_H_
#define SRC_HW_PHYS_MEM_H_

#include <array>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace cki {

inline constexpr uint64_t kPageSize = 4096;
inline constexpr uint64_t kPageShift = 12;
inline constexpr uint64_t kHugePageSize = 2 * 1024 * 1024;  // 2 MiB
inline constexpr uint64_t kHugePageShift = 21;

class PhysMem {
 public:
  // Installs (and zeroes) the 4 KiB frame containing `pa`. Idempotent.
  void InstallFrame(uint64_t pa);

  // Installs `pages` consecutive frames starting at page-aligned `base`.
  // O(1): backing materializes on first write.
  void InstallRange(uint64_t base, uint64_t pages);

  // True if the frame containing `pa` has been installed.
  bool HasFrame(uint64_t pa) const;

  // 64-bit loads/stores at physical addresses. The frame must be installed;
  // accessing an uninstalled frame indicates a simulator bug and aborts.
  uint64_t ReadU64(uint64_t pa) const;
  void WriteU64(uint64_t pa, uint64_t value);

  // Zeroes an installed frame (clear_page()).
  void ZeroFrame(uint64_t pa);

  size_t materialized_frames() const { return pages_.size(); }

 private:
  using Page = std::array<uint64_t, kPageSize / sizeof(uint64_t)>;

  static uint64_t FrameIndex(uint64_t pa) { return pa >> kPageShift; }

  void CheckInstalled(uint64_t pa) const;
  Page& MaterializePage(uint64_t pa);

  std::unordered_set<uint64_t> installed_;
  std::vector<std::pair<uint64_t, uint64_t>> installed_ranges_;  // [first, last] frame index
  std::unordered_map<uint64_t, std::unique_ptr<Page>> pages_;
};

}  // namespace cki

#endif  // SRC_HW_PHYS_MEM_H_
