#include "src/hw/tlb.h"

#include "src/hw/phys_mem.h"

namespace cki {

Tlb::Tlb(int sets, int ways)
    : sets_(sets),
      ways_(ways),
      entries_(static_cast<size_t>(sets) * static_cast<size_t>(ways)),
      next_victim_(static_cast<size_t>(sets), 0) {}

size_t Tlb::SetIndex(uint64_t vpn) const {
  return static_cast<size_t>(vpn % static_cast<uint64_t>(sets_));
}

std::optional<TlbEntry> Tlb::Lookup(uint16_t pcid, uint64_t va) const {
  // Probe both the 4K VPN and the 2M VPN, mirroring a unified TLB that
  // stores both leaf sizes.
  uint64_t vpn4k = va >> kPageShift;
  uint64_t vpn2m = va >> kHugePageShift;
  for (bool huge : {false, true}) {
    uint64_t vpn = huge ? vpn2m : vpn4k;
    size_t base = SetIndex(vpn) * static_cast<size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
      const TlbEntry& e = entries_[base + static_cast<size_t>(w)];
      if (e.valid && e.pcid == pcid && e.huge == huge && e.vpn == vpn) {
        hits_++;
        return e;
      }
    }
  }
  misses_++;
  return std::nullopt;
}

TlbEntry* Tlb::FindSlot(uint16_t pcid, uint64_t vpn, bool huge) {
  size_t base = SetIndex(vpn) * static_cast<size_t>(ways_);
  // Reuse a matching or invalid way first.
  for (int w = 0; w < ways_; ++w) {
    TlbEntry& e = entries_[base + static_cast<size_t>(w)];
    if (!e.valid || (e.pcid == pcid && e.huge == huge && e.vpn == vpn)) {
      return &e;
    }
  }
  // Round-robin eviction.
  size_t set = SetIndex(vpn);
  uint32_t victim = next_victim_[set];
  next_victim_[set] = (victim + 1) % static_cast<uint32_t>(ways_);
  return &entries_[base + victim];
}

void Tlb::Insert(uint16_t pcid, uint64_t va, uint64_t pa, uint64_t flags, uint32_t pkey,
                 bool huge) {
  uint64_t vpn = huge ? (va >> kHugePageShift) : (va >> kPageShift);
  uint64_t pfn = huge ? (pa >> kHugePageShift) : (pa >> kPageShift);
  TlbEntry* slot = FindSlot(pcid, vpn, huge);
  *slot = TlbEntry{
      .valid = true, .pcid = pcid, .vpn = vpn, .pfn = pfn, .flags = flags, .pkey = pkey,
      .huge = huge};
}

void Tlb::InvalidatePage(uint16_t pcid, uint64_t va) {
  uint64_t vpn4k = va >> kPageShift;
  uint64_t vpn2m = va >> kHugePageShift;
  for (bool huge : {false, true}) {
    uint64_t vpn = huge ? vpn2m : vpn4k;
    size_t base = SetIndex(vpn) * static_cast<size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
      TlbEntry& e = entries_[base + static_cast<size_t>(w)];
      if (e.valid && e.pcid == pcid && e.huge == huge && e.vpn == vpn) {
        e.valid = false;
      }
    }
  }
}

void Tlb::InvalidatePcid(uint16_t pcid) {
  for (TlbEntry& e : entries_) {
    if (e.valid && e.pcid == pcid) {
      e.valid = false;
    }
  }
}

void Tlb::InvalidatePcidRange(uint16_t base, uint16_t count) {
  uint32_t end = static_cast<uint32_t>(base) + count;
  for (TlbEntry& e : entries_) {
    if (e.valid && e.pcid >= base && e.pcid < end) {
      e.valid = false;
    }
  }
}

void Tlb::InvalidatePagePcidRange(uint16_t base, uint16_t count, uint64_t va) {
  uint32_t end = static_cast<uint32_t>(base) + count;
  uint64_t vpn4k = va >> kPageShift;
  uint64_t vpn2m = va >> kHugePageShift;
  for (bool huge : {false, true}) {
    uint64_t vpn = huge ? vpn2m : vpn4k;
    size_t set_base = SetIndex(vpn) * static_cast<size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
      TlbEntry& e = entries_[set_base + static_cast<size_t>(w)];
      if (e.valid && e.pcid >= base && e.pcid < end && e.huge == huge && e.vpn == vpn) {
        e.valid = false;
      }
    }
  }
}

void Tlb::FlushAll() {
  for (TlbEntry& e : entries_) {
    e.valid = false;
  }
}

size_t Tlb::ValidCount() const {
  size_t n = 0;
  for (const TlbEntry& e : entries_) {
    n += e.valid ? 1 : 0;
  }
  return n;
}

size_t Tlb::ValidCountForPcid(uint16_t pcid) const {
  size_t n = 0;
  for (const TlbEntry& e : entries_) {
    n += (e.valid && e.pcid == pcid) ? 1 : 0;
  }
  return n;
}

}  // namespace cki
