#include "src/hw/tlb.h"

#include "src/hw/phys_mem.h"

namespace cki {

Tlb::Tlb(int sets, int ways)
    : sets_(sets),
      ways_(ways),
      pow2_sets_(sets > 0 && (sets & (sets - 1)) == 0),
      set_mask_(static_cast<size_t>(sets) - 1),
      tags_(static_cast<size_t>(sets) * static_cast<size_t>(ways), 0),
      entries_(static_cast<size_t>(sets) * static_cast<size_t>(ways)),
      next_victim_(static_cast<size_t>(sets), 0) {}

const TlbEntry* Tlb::Lookup(uint16_t pcid, uint64_t va) const {
  // Probe both the 4K VPN and the 2M VPN, mirroring a unified TLB that
  // stores both leaf sizes (the match loop lives in Probe, shared with
  // the clean-hit fast path). The 2M probe is skipped outright while no
  // valid huge entry exists anywhere — the common case for 4K-only
  // workloads — which cannot change the outcome: a probe of a
  // huge-entry-free TLB can only miss.
  if (const TlbEntry* entry = Probe(pcid, va)) {
    hits_++;
    return entry;
  }
  misses_++;
  return nullptr;
}

size_t Tlb::FindSlot(uint16_t pcid, uint64_t vpn, bool huge) {
  size_t base = SetIndex(vpn) * static_cast<size_t>(ways_);
  // Reuse a matching or invalid way first.
  uint64_t want = PackTag(pcid, vpn, huge);
  for (int w = 0; w < ways_; ++w) {
    uint64_t tag = tags_[base + static_cast<size_t>(w)];
    if (tag == 0 || tag == want) {
      return base + static_cast<size_t>(w);
    }
  }
  // Round-robin eviction.
  size_t set = SetIndex(vpn);
  uint32_t victim = next_victim_[set];
  uint32_t next = victim + 1;
  next_victim_[set] = next == static_cast<uint32_t>(ways_) ? 0 : next;
  return base + victim;
}

void Tlb::ClearSlot(size_t slot) {
  if (tags_[slot] != 0 && entries_[slot].huge) {
    huge_valid_--;
  }
  tags_[slot] = 0;
  entries_[slot].valid = false;
}

void Tlb::Insert(uint16_t pcid, uint64_t va, uint64_t pa, uint64_t flags, uint32_t pkey,
                 bool huge) {
  uint64_t vpn = huge ? (va >> kHugePageShift) : (va >> kPageShift);
  uint64_t pfn = huge ? (pa >> kHugePageShift) : (pa >> kPageShift);
  size_t slot = FindSlot(pcid, vpn, huge);
  if (tags_[slot] != 0 && entries_[slot].huge) {
    huge_valid_--;  // overwriting (evicting or refreshing) a huge entry
  }
  tags_[slot] = PackTag(pcid, vpn, huge);
  entries_[slot] = TlbEntry{
      .valid = true, .pcid = pcid, .vpn = vpn, .pfn = pfn, .flags = flags, .pkey = pkey,
      .huge = huge};
  if (huge) {
    huge_valid_++;
  }
}

void Tlb::InvalidatePage(uint16_t pcid, uint64_t va) {
  shootdown_gen_++;
  uint64_t vpn4k = va >> kPageShift;
  uint64_t vpn2m = va >> kHugePageShift;
  for (bool huge : {false, true}) {
    uint64_t vpn = huge ? vpn2m : vpn4k;
    size_t base = SetIndex(vpn) * static_cast<size_t>(ways_);
    uint64_t want = PackTag(pcid, vpn, huge);
    for (int w = 0; w < ways_; ++w) {
      if (tags_[base + static_cast<size_t>(w)] == want) {
        ClearSlot(base + static_cast<size_t>(w));
      }
    }
  }
}

void Tlb::InvalidatePcid(uint16_t pcid) {
  shootdown_gen_++;
  for (size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] != 0 && entries_[i].pcid == pcid) {
      ClearSlot(i);
    }
  }
}

void Tlb::InvalidatePcidRange(uint16_t base, uint16_t count) {
  shootdown_gen_++;
  uint32_t end = static_cast<uint32_t>(base) + count;
  for (size_t i = 0; i < tags_.size(); ++i) {
    if (tags_[i] != 0 && entries_[i].pcid >= base && entries_[i].pcid < end) {
      ClearSlot(i);
    }
  }
}

void Tlb::InvalidatePagePcidRange(uint16_t base, uint16_t count, uint64_t va) {
  shootdown_gen_++;
  uint32_t end = static_cast<uint32_t>(base) + count;
  uint64_t vpn4k = va >> kPageShift;
  uint64_t vpn2m = va >> kHugePageShift;
  for (bool huge : {false, true}) {
    uint64_t vpn = huge ? vpn2m : vpn4k;
    size_t set_base = SetIndex(vpn) * static_cast<size_t>(ways_);
    for (int w = 0; w < ways_; ++w) {
      size_t i = set_base + static_cast<size_t>(w);
      const TlbEntry& e = entries_[i];
      if (tags_[i] != 0 && e.pcid >= base && e.pcid < end && e.huge == huge && e.vpn == vpn) {
        ClearSlot(i);
      }
    }
  }
}

void Tlb::FlushAll() {
  shootdown_gen_++;
  for (size_t i = 0; i < tags_.size(); ++i) {
    tags_[i] = 0;
    entries_[i].valid = false;
  }
  huge_valid_ = 0;
}

size_t Tlb::ValidCount() const {
  size_t n = 0;
  for (uint64_t tag : tags_) {
    n += tag != 0 ? 1 : 0;
  }
  return n;
}

size_t Tlb::ValidCountForPcid(uint16_t pcid) const {
  size_t n = 0;
  for (size_t i = 0; i < tags_.size(); ++i) {
    n += (tags_[i] != 0 && entries_[i].pcid == pcid) ? 1 : 0;
  }
  return n;
}

}  // namespace cki
