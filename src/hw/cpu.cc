#include "src/hw/cpu.h"

#include "src/obs/trace_scope.h"

namespace cki {

Cpu::Cpu(SimContext& ctx, PhysMem& mem, CkiHwExtensions ext)
    : ctx_(ctx), mem_(mem), ext_(ext) {}

WalkResult Cpu::WalkCurrent(uint64_t va) const {
  uint64_t root = Cr3Root(cr3_);
  if (ept_ == nullptr) {
    return WalkPageTable(mem_, root, va);
  }
  // Two-stage: the guest's tables hold guest-physical addresses; each table
  // page and the final data page must translate through the EPT.
  WalkResult result;
  uint64_t table_gpa = root;
  for (int level = kPtLevels; level >= 1; --level) {
    WalkResult ept_walk = ept_->Translate(table_gpa);
    result.mem_refs += ept_walk.mem_refs;
    if (ept_walk.fault) {
      result.fault = ept_walk.fault;  // EPT violation on a table page
      return result;
    }
    uint64_t slot_hpa = ept_walk.pa + static_cast<uint64_t>(PtIndex(va, level)) * 8;
    result.mem_refs++;
    uint64_t entry = mem_.ReadU64(slot_hpa);
    if (!PtePresent(entry)) {
      result.fault = Fault{.type = FaultType::kPageNotPresent, .va = va};
      return result;
    }
    bool is_leaf = (level == 1) || (level == 2 && PteHuge(entry));
    if (is_leaf) {
      result.leaf_pte = entry;
      result.leaf_pte_pa = slot_hpa;
      result.leaf_level = level;
      uint64_t offset_mask = (level == 2) ? (kHugePageSize - 1) : (kPageSize - 1);
      uint64_t data_gpa = (PteAddr(entry) & ~offset_mask) | (va & offset_mask);
      WalkResult data_walk = ept_->Translate(data_gpa);
      result.mem_refs += data_walk.mem_refs;
      if (data_walk.fault) {
        result.fault = data_walk.fault;  // EPT violation on the data page
        return result;
      }
      result.pa = data_walk.pa;
      return result;
    }
    table_gpa = PteAddr(entry);
  }
  result.fault = Fault{.type = FaultType::kPageNotPresent, .va = va};
  return result;
}

Fault Cpu::CheckLeafPermissions(uint64_t flags, uint32_t pkey, uint64_t va, AccessIntent intent,
                                bool /*from_tlb*/) const {
  bool user_mode = (cpl_ == Cpl::kUser);
  bool page_user = (flags & kPteU) != 0;
  if (user_mode && !page_user) {
    return Fault{.type = FaultType::kPageProtection,
                 .va = va,
                 .was_write = intent.write,
                 .was_user = true,
                 .was_exec = intent.exec};
  }
  if (intent.write && (flags & kPteW) == 0) {
    return Fault{.type = FaultType::kPageProtection,
                 .va = va,
                 .was_write = true,
                 .was_user = user_mode,
                 .was_exec = false};
  }
  if (intent.exec && (flags & kPteNx) != 0) {
    return Fault{.type = FaultType::kPageProtection,
                 .va = va,
                 .was_write = false,
                 .was_user = user_mode,
                 .was_exec = true};
  }
  // Protection keys: PKU governs user pages, PKS governs supervisor pages.
  // Instruction fetches are not subject to protection keys.
  if (!intent.exec && pkey != 0) {
    uint32_t pkr = page_user ? pkru_ : pkrs_;
    if (!PkAllows(pkr, pkey, intent.write)) {
      return Fault{.type = FaultType::kPageKeyViolation,
                   .va = va,
                   .was_write = intent.write,
                   .was_user = user_mode,
                   .was_exec = false};
    }
  }
  return Fault::None();
}

Fault Cpu::Access(uint64_t va, AccessIntent intent) {
  return AccessTranslate(va, intent, nullptr);
}

Fault Cpu::AccessTranslate(uint64_t va, AccessIntent intent, uint64_t* out_pa) {
  uint16_t pcid = Cr3Pcid(cr3_);
  if (const TlbEntry* hit = tlb_.Lookup(pcid, va)) {
    ctx_.RecordEvent(PathEvent::kTlbHit, va);
    Fault f = CheckLeafPermissions(hit->flags, hit->pkey, va, intent, /*from_tlb=*/true);
    if (f) {
      return f;
    }
    if (out_pa != nullptr) {
      uint64_t offset_mask = hit->huge ? (kHugePageSize - 1) : (kPageSize - 1);
      *out_pa = (hit->pfn << (hit->huge ? kHugePageShift : kPageShift)) | (va & offset_mask);
    }
    return Fault::None();
  }

  // TLB miss: walk, charging per-reference cost (two-dimensional when an
  // EPT is active).
  bool two_dim = (ept_ != nullptr);
  TraceScope walk_scope(ctx_, "mmu/page_walk");
  ctx_.RecordEvent(PathEvent::kTlbMiss, va);
  ctx_.Charge(ctx_.cost().WalkCost(two_dim),
              two_dim ? PathEvent::kPageWalk2D : PathEvent::kPageWalk1D);
  uint64_t page = va >> kPageShift;
  uint64_t ept_gen = two_dim ? ept_->generation() : 0;
  // Slot index mixes cr3 so distinct address spaces with identical VA
  // layouts (sibling containers) spread over the cache instead of
  // thrashing one slot per page.
  size_t slot = static_cast<size_t>(page ^ ((cr3_ * 0x9E3779B97F4A7C15ULL) >> 40)) &
                (kWalkCacheEntries - 1);
  WalkCacheEntry& wce = walk_cache_[slot];
  uint64_t gen_key = tlb_.shootdown_gen() + walk_inval_gen_;
  WalkResult walk;
  if (wce.tag == page + 1 && wce.cr3 == cr3_ && wce.ept == ept_ &&
      wce.tlb_gen == gen_key && wce.ept_gen == ept_gen) {
    walk = wce.walk;
    walk.pa = (walk.pa & ~(kPageSize - 1)) | (va & (kPageSize - 1));
  } else {
    walk = WalkCurrent(va);
    if (!walk.fault) {
      wce.tag = page + 1;
      wce.cr3 = cr3_;
      wce.ept = ept_;
      wce.tlb_gen = gen_key;
      wce.ept_gen = ept_gen;
      wce.walk = walk;
    }
  }
  if (walk.fault) {
    walk.fault.was_write = intent.write;
    walk.fault.was_user = (cpl_ == Cpl::kUser);
    walk.fault.was_exec = intent.exec;
    return walk.fault;
  }
  Fault f = CheckLeafPermissions(walk.leaf_pte, PtePkey(walk.leaf_pte), va, intent,
                                 /*from_tlb=*/false);
  if (f) {
    return f;
  }
  // Set accessed/dirty bits in the leaf entry; the walk cache entry (which
  // the lines above made current for this page) mirrors the write.
  uint64_t updated = walk.leaf_pte | kPteA | (intent.write ? kPteD : 0);
  if (updated != walk.leaf_pte) {
    mem_.WriteU64(walk.leaf_pte_pa, updated);
    wce.walk.leaf_pte = updated;
  }
  tlb_.Insert(pcid, va, walk.pa, walk.leaf_pte & ~kPteAddrMask, PtePkey(walk.leaf_pte),
              walk.leaf_level == 2);
  if (out_pa != nullptr) {
    *out_pa = walk.pa;
  }
  return Fault::None();
}

Fault Cpu::ExecPriv(PrivInstr instr) {
  if (cpl_ == Cpl::kUser) {
    return Fault{.type = FaultType::kGeneralProtection, .was_user = true};
  }
  if (ext_.pks_priv_gating && pkrs_ != 0 && BlockedWhenPkrsNonzero(instr)) {
    ctx_.RecordEvent(PathEvent::kPrivInstrTrap);
    return Fault{.type = FaultType::kPrivInstrBlocked};
  }
  return Fault::None();
}

Fault Cpu::Wrpkrs(uint32_t value) {
  if (!ext_.wrpkrs_instruction) {
    return Fault{.type = FaultType::kInvalidOpcode};
  }
  if (cpl_ == Cpl::kUser) {
    return Fault{.type = FaultType::kGeneralProtection, .was_user = true};
  }
  // wrpkrs itself is never blocked by the gating extension (Table 3): it is
  // the very instruction switch gates are built from.
  pkrs_ = value;
  ctx_.Charge(ctx_.cost().pks_switch, PathEvent::kPksSwitch);
  return Fault::None();
}

Fault Cpu::WrpkrsViaMsr(uint32_t value) {
  Fault f = ExecPriv(PrivInstr::kWrmsr);
  if (f) {
    return f;
  }
  pkrs_ = value;
  ctx_.Charge(ctx_.cost().pks_switch, PathEvent::kPksSwitch);
  return Fault::None();
}

Fault Cpu::Swapgs() {
  Fault f = ExecPriv(PrivInstr::kSwapgs);
  if (f) {
    return f;
  }
  std::swap(gs_base_, kernel_gs_base_);
  return Fault::None();
}

Fault Cpu::Invlpg(uint64_t va) {
  Fault f = ExecPriv(PrivInstr::kInvlpg);
  if (f) {
    return f;
  }
  tlb_.InvalidatePage(Cr3Pcid(cr3_), va);
  return Fault::None();
}

Fault Cpu::Sysret(bool requested_if) {
  Fault f = ExecPriv(PrivInstr::kSysret);
  if (f) {
    return f;
  }
  if (ext_.sysret_if_enforce && pkrs_ != 0) {
    // Extension: a deprivileged kernel cannot return to user mode with
    // interrupts masked (DoS prevention, section 4.1).
    if_ = true;
  } else {
    if_ = requested_if;
  }
  cpl_ = Cpl::kUser;
  return Fault::None();
}

void Cpu::IretTrusted(Cpl return_cpl, std::optional<uint32_t> restore_pkrs) {
  cpl_ = return_cpl;
  if (restore_pkrs.has_value() && ext_.iret_pks_restore) {
    pkrs_ = *restore_pkrs;
  }
  if_ = true;
}

InterruptEntry Cpu::DeliverInterrupt(uint8_t vector, bool hardware) {
  InterruptEntry entry;
  if (idt_ == nullptr || !idt_->gate(vector).present) {
    entry.fault = Fault{.type = FaultType::kTripleFault};
    return entry;
  }
  const IdtGate& gate = idt_->gate(vector);
  // Stack selection: without IST the CPU pushes onto the current stack; a
  // corrupted stack pointer then triple faults. IST forces a known-good
  // stack configured by trusted software.
  if (gate.ist_index == 0) {
    if (cpl_ == Cpl::kKernel && !stack_valid_) {
      entry.fault = Fault{.type = FaultType::kTripleFault};
      return entry;
    }
  } else if (idt_->ist_stack(gate.ist_index) == 0) {
    entry.fault = Fault{.type = FaultType::kTripleFault};
    return entry;
  }
  entry.handler_tag = gate.handler_tag;
  entry.saved_pkrs = pkrs_;
  // CKI extension: hardware-interrupt delivery saves PKRS and zeroes it, so
  // interrupt gates contain no wrpkrs a guest could abuse; software `int`
  // leaves PKRS untouched (anti-forgery, section 4.4).
  if (ext_.idt_pks_switch && gate.pks_switch && hardware) {
    pkrs_ = 0;
    entry.pks_switched = true;
  }
  cpl_ = Cpl::kKernel;
  if_ = false;
  return entry;
}

}  // namespace cki
