// PCID-tagged translation lookaside buffer.
//
// CKI isolates each secure container and the host in different PCID
// contexts, so a malicious guest's INVLPG can only flush its own entries
// (section 4.1). The TLB model implements exactly those semantics:
// lookups match on (pcid, vpn), INVLPG invalidates one page within one
// PCID, INVPCID-single drops a whole context, and a non-PCID CR3 write
// flushes everything.
#ifndef SRC_HW_TLB_H_
#define SRC_HW_TLB_H_

#include <cstdint>
#include <optional>
#include <vector>

namespace cki {

struct TlbEntry {
  bool valid = false;
  uint16_t pcid = 0;
  uint64_t vpn = 0;      // virtual page number (of the base page size)
  uint64_t pfn = 0;      // physical frame number
  uint64_t flags = 0;    // leaf PTE flags (W/U/NX) + pkey, cached
  uint32_t pkey = 0;
  bool huge = false;     // 2 MiB entry
};

class Tlb {
 public:
  // `sets` x `ways` entries; defaults approximate a modern dTLB's reach.
  explicit Tlb(int sets = 128, int ways = 8);

  // Finds the entry translating `va` under `pcid`, considering huge pages.
  std::optional<TlbEntry> Lookup(uint16_t pcid, uint64_t va) const;

  void Insert(uint16_t pcid, uint64_t va, uint64_t pa, uint64_t flags, uint32_t pkey, bool huge);

  // INVLPG: drops the translation of one page in one PCID context.
  void InvalidatePage(uint16_t pcid, uint64_t va);

  // INVPCID (single-context): drops every entry of one PCID.
  void InvalidatePcid(uint16_t pcid);

  // Drops every entry whose PCID falls in [base, base + count) — the
  // whole PCID range of a killed container, in one pass.
  void InvalidatePcidRange(uint16_t base, uint16_t count);

  // Drops the translation of one page in every PCID of [base, base +
  // count): the cross-address-space shootdown when a copy-on-write break
  // rewrites a PTE that sibling processes of one container may cache.
  void InvalidatePagePcidRange(uint16_t base, uint16_t count, uint64_t va);

  // Full flush (CR3 write without CR4.PCIDE, or INVPCID all-context).
  void FlushAll();

  // Count of currently valid entries (diagnostics / tests).
  size_t ValidCount() const;

  // Count of valid entries belonging to `pcid` (tests the isolation claim).
  size_t ValidCountForPcid(uint16_t pcid) const;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetCounters() { hits_ = misses_ = 0; }

 private:
  size_t SetIndex(uint64_t vpn) const;
  TlbEntry* FindSlot(uint16_t pcid, uint64_t vpn, bool huge);

  int sets_;
  int ways_;
  std::vector<TlbEntry> entries_;  // sets_ * ways_, set-major
  std::vector<uint32_t> next_victim_;  // per-set round robin
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace cki

#endif  // SRC_HW_TLB_H_
