// PCID-tagged translation lookaside buffer.
//
// CKI isolates each secure container and the host in different PCID
// contexts, so a malicious guest's INVLPG can only flush its own entries
// (section 4.1). The TLB model implements exactly those semantics:
// lookups match on (pcid, vpn), INVLPG invalidates one page within one
// PCID, INVPCID-single drops a whole context, and a non-PCID CR3 write
// flushes everything.
//
// Layout (DESIGN.md §14): the match loop runs over a packed tag array —
// one uint64 per way encoding (vpn, pcid, huge, valid) — so a set probe
// touches one cache line instead of six; the full TlbEntry payload lives
// in a parallel array read only on a hit. A global count of valid huge
// entries skips the 2 MiB probe entirely for workloads that never map
// huge pages. None of this changes hit/miss outcomes or counters.
#ifndef SRC_HW_TLB_H_
#define SRC_HW_TLB_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "src/hw/phys_mem.h"

namespace cki {

struct TlbEntry {
  bool valid = false;
  uint16_t pcid = 0;
  uint64_t vpn = 0;      // virtual page number (of the base page size)
  uint64_t pfn = 0;      // physical frame number
  uint64_t flags = 0;    // leaf PTE flags (W/U/NX) + pkey, cached
  uint32_t pkey = 0;
  bool huge = false;     // 2 MiB entry
};

class Tlb {
 public:
  // `sets` x `ways` entries; defaults approximate a modern dTLB's reach.
  explicit Tlb(int sets = 128, int ways = 8);

  // Finds the entry translating `va` under `pcid`, considering huge pages.
  // Returns a pointer into the TLB (no copy — the hot path reads two
  // fields), valid until the next Insert/invalidate; nullptr on a miss.
  const TlbEntry* Lookup(uint16_t pcid, uint64_t va) const;

  // Side-effect-free probe: Lookup's match logic without the hit/miss
  // counters. The clean-hit fast path (Cpu::TryUserTouchFast) uses it so
  // a probe that does not commit — e.g. the entry hits but permissions
  // fault, sending the access back through the full path — leaves no
  // trace; the full path then counts the one hit exactly as before.
  const TlbEntry* Probe(uint16_t pcid, uint64_t va) const {
    uint64_t vpn4k = va >> kPageShift;
    size_t base = SetIndex(vpn4k) * static_cast<size_t>(ways_);
    uint64_t want = PackTag(pcid, vpn4k, false);
    for (int w = 0; w < ways_; ++w) {
      if (tags_[base + static_cast<size_t>(w)] == want) {
        return &entries_[base + static_cast<size_t>(w)];
      }
    }
    if (huge_valid_ != 0) {
      uint64_t vpn2m = va >> kHugePageShift;
      base = SetIndex(vpn2m) * static_cast<size_t>(ways_);
      want = PackTag(pcid, vpn2m, true);
      for (int w = 0; w < ways_; ++w) {
        if (tags_[base + static_cast<size_t>(w)] == want) {
          return &entries_[base + static_cast<size_t>(w)];
        }
      }
    }
    return nullptr;
  }

  // Commits the counter side effect of a Probe the caller acted on.
  void CountHit() const { hits_++; }

  void Insert(uint16_t pcid, uint64_t va, uint64_t pa, uint64_t flags, uint32_t pkey, bool huge);

  // INVLPG: drops the translation of one page in one PCID context.
  void InvalidatePage(uint16_t pcid, uint64_t va);

  // INVPCID (single-context): drops every entry of one PCID.
  void InvalidatePcid(uint16_t pcid);

  // Drops every entry whose PCID falls in [base, base + count) — the
  // whole PCID range of a killed container, in one pass.
  void InvalidatePcidRange(uint16_t base, uint16_t count);

  // Drops the translation of one page in every PCID of [base, base +
  // count): the cross-address-space shootdown when a copy-on-write break
  // rewrites a PTE that sibling processes of one container may cache.
  void InvalidatePagePcidRange(uint16_t base, uint16_t count, uint64_t va);

  // Full flush (CR3 write without CR4.PCIDE, or INVPCID all-context).
  void FlushAll();

  // Count of currently valid entries (diagnostics / tests).
  size_t ValidCount() const;

  // Count of valid entries belonging to `pcid` (tests the isolation claim).
  size_t ValidCountForPcid(uint16_t pcid) const;

  uint64_t hits() const { return hits_; }
  uint64_t misses() const { return misses_; }
  void ResetCounters() { hits_ = misses_ = 0; }

  // Monotonic count of invalidation operations (any granularity). The
  // CPU's software walk cache keys on this: translations can only change
  // behind a shootdown, so "no shootdown since" proves a cached walk is
  // still what the tables would produce (DESIGN.md §14).
  uint64_t shootdown_gen() const { return shootdown_gen_; }

 private:
  // Packed way tag: vpn in the high bits, then pcid, the huge bit, and a
  // valid bit in bit 0 so an all-zero word can never match a probe.
  static uint64_t PackTag(uint16_t pcid, uint64_t vpn, bool huge) {
    return (vpn << 18) | (static_cast<uint64_t>(pcid) << 2) | (huge ? 2u : 0u) | 1u;
  }

  size_t SetIndex(uint64_t vpn) const {
    return pow2_sets_ ? static_cast<size_t>(vpn) & set_mask_
                      : static_cast<size_t>(vpn % static_cast<uint64_t>(sets_));
  }

  size_t FindSlot(uint16_t pcid, uint64_t vpn, bool huge);
  void ClearSlot(size_t slot);

  int sets_;
  int ways_;
  bool pow2_sets_;
  size_t set_mask_;
  std::vector<uint64_t> tags_;         // sets_ * ways_, set-major (match loop)
  std::vector<TlbEntry> entries_;      // parallel payload, read on hit
  std::vector<uint32_t> next_victim_;  // per-set round robin
  size_t huge_valid_ = 0;              // valid 2 MiB entries; 0 => skip 2M probe
  uint64_t shootdown_gen_ = 1;
  mutable uint64_t hits_ = 0;
  mutable uint64_t misses_ = 0;
};

}  // namespace cki

#endif  // SRC_HW_TLB_H_
