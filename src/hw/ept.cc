#include "src/hw/ept.h"

#include <utility>

namespace cki {

Ept::Ept(PhysMem& mem, PtpAllocFn alloc)
    : mem_(mem),
      alloc_(std::move(alloc)),
      editor_(mem, alloc_,
              [&mem](uint64_t pte_pa, uint64_t value, int /*level*/, uint64_t /*va*/) {
                mem.WriteU64(pte_pa, value);
                return true;
              }),
      root_pa_(alloc_(kPtLevels)) {}

bool Ept::Map(uint64_t gpa, uint64_t hpa, PageSize size) {
  bool ok = editor_.MapPage(root_pa_, gpa, hpa, kPteP | kPteW | kPteU, /*pkey=*/0, size);
  if (ok) {
    mapped_pages_++;
    gen_++;  // O(1) cache invalidation
  }
  return ok;
}

bool Ept::Unmap(uint64_t gpa) {
  bool ok = editor_.UnmapPage(root_pa_, gpa);
  if (ok && mapped_pages_ > 0) {
    mapped_pages_--;
  }
  gen_++;
  return ok;
}

WalkResult Ept::Translate(uint64_t gpa) const {
  uint64_t page = gpa >> kPageShift;
  CacheEntry& slot = cache_[page & (kCacheEntries - 1)];
  if (slot.tag == page + 1 && slot.gen == gen_) {
    WalkResult result = slot.walk;
    result.pa = (result.pa & ~(kPageSize - 1)) | (gpa & (kPageSize - 1));
    return result;
  }
  WalkResult result = WalkPageTable(mem_, root_pa_, gpa);
  if (result.fault) {
    result.fault.type = FaultType::kEptViolation;
    result.fault.va = gpa;
    return result;  // only successful walks are cached
  }
  slot.tag = page + 1;
  slot.gen = gen_;
  slot.walk = result;
  return result;
}

}  // namespace cki
