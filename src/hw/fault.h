// Architectural fault descriptions returned by the simulated MMU and CPU.
// Faults are values, not C++ exceptions: the engines (host kernel, KSM,
// hypervisors) handle them as part of normal control flow.
#ifndef SRC_HW_FAULT_H_
#define SRC_HW_FAULT_H_

#include <cstdint>
#include <string_view>

namespace cki {

enum class FaultType : uint8_t {
  kNone = 0,
  kPageNotPresent,      // #PF, P=0
  kPageProtection,      // #PF, permission (W/U/NX) violation
  kPageKeyViolation,    // #PF, protection-key (PKU/PKS) violation
  kEptViolation,        // second-stage translation fault (VM exit)
  kGeneralProtection,   // #GP
  kPrivInstrBlocked,    // CKI extension: privileged instruction w/ PKRS != 0
  kInvalidOpcode,       // #UD (e.g. wrpkrs on a CPU without the extension)
  kTripleFault,         // unrecoverable (bad interrupt stack etc.)
};

struct Fault {
  FaultType type = FaultType::kNone;
  uint64_t va = 0;          // faulting virtual address (page faults)
  bool was_write = false;   // access type that faulted
  bool was_user = false;    // CPL at fault time
  bool was_exec = false;

  bool ok() const { return type == FaultType::kNone; }
  explicit operator bool() const { return !ok(); }  // true when faulted

  static Fault None() { return Fault{}; }
};

std::string_view FaultTypeName(FaultType t);

}  // namespace cki

#endif  // SRC_HW_FAULT_H_
