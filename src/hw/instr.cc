#include "src/hw/instr.h"

namespace cki {

std::string_view PrivInstrName(PrivInstr i) {
  switch (i) {
    case PrivInstr::kLidt:
      return "lidt";
    case PrivInstr::kLgdt:
      return "lgdt";
    case PrivInstr::kLtr:
      return "ltr";
    case PrivInstr::kRdmsr:
      return "rdmsr";
    case PrivInstr::kWrmsr:
      return "wrmsr";
    case PrivInstr::kMovFromCr:
      return "mov reg, crN";
    case PrivInstr::kMovToCr0:
      return "mov cr0, reg";
    case PrivInstr::kMovToCr4:
      return "mov cr4, reg";
    case PrivInstr::kMovToCr3:
      return "mov cr3, reg";
    case PrivInstr::kClac:
      return "clac";
    case PrivInstr::kStac:
      return "stac";
    case PrivInstr::kInvlpg:
      return "invlpg";
    case PrivInstr::kInvpcid:
      return "invpcid";
    case PrivInstr::kSwapgs:
      return "swapgs";
    case PrivInstr::kSysret:
      return "sysret";
    case PrivInstr::kIret:
      return "iret";
    case PrivInstr::kHlt:
      return "hlt";
    case PrivInstr::kSti:
      return "sti";
    case PrivInstr::kCli:
      return "cli";
    case PrivInstr::kPopf:
      return "popf";
    case PrivInstr::kInOut:
      return "in/out";
    case PrivInstr::kSmsw:
      return "smsw";
    case PrivInstr::kWrpkrs:
      return "wrpkrs";
    case PrivInstr::kVmcall:
      return "vmcall";
    case PrivInstr::kCount:
      break;
  }
  return "unknown";
}

bool BlockedWhenPkrsNonzero(PrivInstr i) {
  switch (i) {
    // Blocked (Table 3, "Blocked? Yes").
    case PrivInstr::kLidt:
    case PrivInstr::kLgdt:
    case PrivInstr::kLtr:
    case PrivInstr::kRdmsr:
    case PrivInstr::kWrmsr:
    case PrivInstr::kMovToCr0:
    case PrivInstr::kMovToCr4:
    case PrivInstr::kMovToCr3:
    case PrivInstr::kInvpcid:
    case PrivInstr::kIret:
    case PrivInstr::kSti:
    case PrivInstr::kCli:
    case PrivInstr::kPopf:
    case PrivInstr::kInOut:
    case PrivInstr::kSmsw:
      return true;
    // HLT is listed "No" in Table 3 (replaced with a pause-vCPU hypercall
    // by the para-virtualized guest); executing it is not destructive.
    case PrivInstr::kHlt:
    // Not blocked (Table 3, "Blocked? No").
    case PrivInstr::kMovFromCr:
    case PrivInstr::kClac:
    case PrivInstr::kStac:
    case PrivInstr::kInvlpg:
    case PrivInstr::kSwapgs:
    case PrivInstr::kSysret:
    case PrivInstr::kWrpkrs:
    case PrivInstr::kVmcall:
      return false;
    case PrivInstr::kCount:
      break;
  }
  return false;
}

}  // namespace cki
