#include "src/sim/trace.h"

namespace cki {

std::string_view PathEventName(PathEvent e) {
  switch (e) {
    case PathEvent::kSyscallEntry:
      return "syscall_entry";
    case PathEvent::kSyscallExit:
      return "syscall_exit";
    case PathEvent::kModeSwitch:
      return "mode_switch";
    case PathEvent::kCr3Switch:
      return "cr3_switch";
    case PathEvent::kPksSwitch:
      return "pks_switch";
    case PathEvent::kKsmCall:
      return "ksm_call";
    case PathEvent::kHypercall:
      return "hypercall";
    case PathEvent::kVmExit:
      return "vm_exit";
    case PathEvent::kNestedVmExit:
      return "nested_vm_exit";
    case PathEvent::kL0WorldSwitch:
      return "l0_world_switch";
    case PathEvent::kPageFault:
      return "page_fault";
    case PathEvent::kEptViolation:
      return "ept_violation";
    case PathEvent::kShadowPtUpdate:
      return "shadow_pt_update";
    case PathEvent::kPteUpdate:
      return "pte_update";
    case PathEvent::kTlbMiss:
      return "tlb_miss";
    case PathEvent::kTlbHit:
      return "tlb_hit";
    case PathEvent::kPageWalk1D:
      return "page_walk_1d";
    case PathEvent::kPageWalk2D:
      return "page_walk_2d";
    case PathEvent::kHwInterrupt:
      return "hw_interrupt";
    case PathEvent::kVirqInject:
      return "virq_inject";
    case PathEvent::kVirtioKick:
      return "virtio_kick";
    case PathEvent::kPrivInstrTrap:
      return "priv_instr_trap";
    case PathEvent::kSecurityViolation:
      return "security_violation";
    case PathEvent::kContextSwitch:
      return "context_switch";
    case PathEvent::kCount:
      break;
  }
  return "unknown";
}

}  // namespace cki
