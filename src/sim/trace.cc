#include "src/sim/trace.h"

namespace cki {

std::string_view PathEventName(PathEvent e) {
  size_t i = static_cast<size_t>(e);
  return i < kPathEventNames.size() ? kPathEventNames[i] : std::string_view("unknown");
}

std::optional<PathEvent> PathEventFromName(std::string_view name) {
  for (size_t i = 0; i < kPathEventNames.size(); ++i) {
    if (kPathEventNames[i] == name) {
      return static_cast<PathEvent>(i);
    }
  }
  return std::nullopt;
}

}  // namespace cki
