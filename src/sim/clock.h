// Virtual time base for the CKI simulator.
//
// Every mechanism in the simulation (page walks, privilege switches, VM
// exits, device processing) advances a shared SimClock instead of consuming
// wall time. Benchmarks then report simulated nanoseconds, which makes every
// run deterministic and independent of the machine the simulator runs on.
#ifndef SRC_SIM_CLOCK_H_
#define SRC_SIM_CLOCK_H_

#include <cstdint>

namespace cki {

// Simulated nanoseconds. Signed-free on purpose: time never goes backwards.
using SimNanos = uint64_t;

// A monotonically increasing virtual clock.
class SimClock {
 public:
  SimClock() = default;

  // Advances virtual time by `ns` nanoseconds.
  void Advance(SimNanos ns) { now_ns_ += ns; }

  // Current virtual time since simulation start.
  SimNanos now() const { return now_ns_; }

  // Resets to t=0. Only benchmark harnesses should call this between runs.
  void Reset() { now_ns_ = 0; }

 private:
  SimNanos now_ns_ = 0;
};

// RAII measurement of a region of simulated time.
class ScopedTimer {
 public:
  explicit ScopedTimer(const SimClock& clock) : clock_(clock), start_(clock.now()) {}

  SimNanos elapsed() const { return clock_.now() - start_; }

 private:
  const SimClock& clock_;
  SimNanos start_;
};

}  // namespace cki

#endif  // SRC_SIM_CLOCK_H_
