// The one xorshift64* seed-fold / seed-split / stream implementation.
//
// Three subsystems grew the same scheme independently — SimCluster's
// per-shard seed split, FaultInjector's chaos decision stream, and the
// workload drivers' derived seeds. This header is the single source of
// truth for all of them, so "decorrelated streams that are a pure
// function of (root seed, index)" means the exact same bits everywhere:
//
//   * FoldSeed        — maps any user seed (including 0) onto a valid
//                       nonzero xorshift64* state, the same way for every
//                       consumer.
//   * XorShift64Step  — one raw state transition.
//   * SplitSeed       — the SimCluster per-shard split: advance the
//                       folded root `index`+1 steps and emit the
//                       star-multiplied output (never 0). Pure function,
//                       no global state, no wall clock.
//   * XorShift64Star  — the streaming form FaultInjector and the arrival
//                       processes draw from: fold once, then
//                       step-and-multiply per draw.
//
// Determinism contract: everything here is a pure function of its
// arguments / constructor seed. Two streams built from SplitSeed(root, i)
// and SplitSeed(root, j), i != j, are decorrelated; the same (root, i)
// reproduces the same stream on any thread, in any order, at any shard
// count (DESIGN.md §9).
#ifndef SRC_SIM_SEED_SPLIT_H_
#define SRC_SIM_SEED_SPLIT_H_

#include <cstdint>

namespace cki {

// The golden-ratio fold constant shared by every seeded subsystem.
inline constexpr uint64_t kSeedFoldConstant = 0x9e3779b97f4a7c15ULL;
// The xorshift64* output multiplier (Vigna's M32 constant).
inline constexpr uint64_t kXorShiftStarMultiplier = 0x2545F4914F6CDD1DULL;

// Maps an arbitrary user seed onto a valid (nonzero) xorshift64* state.
inline constexpr uint64_t FoldSeed(uint64_t seed) {
  uint64_t x = seed ^ kSeedFoldConstant;
  return x != 0 ? x : kSeedFoldConstant;
}

// One raw xorshift64 state transition (state must be nonzero).
inline constexpr uint64_t XorShift64Step(uint64_t x) {
  x ^= x >> 12;
  x ^= x << 25;
  x ^= x >> 27;
  return x;
}

// Deterministic per-index seed split: advance the folded root `index`+1
// steps; the star-multiplied output of the final step is the derived
// seed (never 0, so it can seed another fold/stream directly).
inline constexpr uint64_t SplitSeed(uint64_t root_seed, uint32_t index) {
  uint64_t x = FoldSeed(root_seed);
  for (uint32_t i = 0; i <= index; ++i) {
    x = XorShift64Step(x);
  }
  uint64_t seed = x * kXorShiftStarMultiplier;
  return seed != 0 ? seed : kSeedFoldConstant;
}

// The streaming form: fold once at construction, then one step + star
// multiply per draw. Value type; copying forks the stream.
class XorShift64Star {
 public:
  explicit XorShift64Star(uint64_t seed) : state_(FoldSeed(seed)) {}

  uint64_t Next() {
    state_ = XorShift64Step(state_);
    return state_ * kXorShiftStarMultiplier;
  }

  // Uniform double in [0, 1) from the top 53 bits of one draw.
  double NextUnit() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

 private:
  uint64_t state_;
};

}  // namespace cki

#endif  // SRC_SIM_SEED_SPLIT_H_
