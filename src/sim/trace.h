// Event tracing for the simulator.
//
// Every architectural event of interest (mode switch, VM exit, PKS switch,
// page walk, ...) is recorded on a TraceLog. Tests use the counters to
// assert path composition — e.g. that a PVM page fault really performs six
// context switches, or that a CKI syscall performs none — independently of
// the latency numbers.
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <array>
#include <cstdint>
#include <string_view>
#include <vector>

namespace cki {

enum class PathEvent : uint8_t {
  kSyscallEntry = 0,
  kSyscallExit,
  kModeSwitch,        // extra ring crossing (PVM redirection)
  kCr3Switch,         // address-space switch
  kPksSwitch,         // wrpkrs in a CKI gate
  kKsmCall,           // KSM call gate round trip
  kHypercall,         // guest -> host kernel request
  kVmExit,            // hardware VM exit (bare-metal)
  kNestedVmExit,      // L2 exit with L0 intervention
  kL0WorldSwitch,     // one L0 entry/exit leg under nesting
  kPageFault,         // guest user page fault
  kEptViolation,      // second-stage fault
  kShadowPtUpdate,    // SPT/SPTE emulation event
  kPteUpdate,         // any PTE store
  kTlbMiss,
  kTlbHit,
  kPageWalk1D,
  kPageWalk2D,
  kHwInterrupt,
  kVirqInject,
  kVirtioKick,
  kPrivInstrTrap,     // blocked privileged instruction attempted
  kSecurityViolation, // isolation breach attempt detected & stopped
  kContextSwitch,     // guest process switch
  kCount,             // sentinel
};

// Human-readable name for an event (for test failure messages and dumps).
std::string_view PathEventName(PathEvent e);

class TraceLog {
 public:
  void Record(PathEvent e) { counts_[static_cast<size_t>(e)]++; }

  uint64_t Count(PathEvent e) const { return counts_[static_cast<size_t>(e)]; }

  uint64_t TotalEvents() const {
    uint64_t total = 0;
    for (uint64_t c : counts_) {
      total += c;
    }
    return total;
  }

  void Clear() { counts_.fill(0); }

  // Snapshot arithmetic: lets a test compute the events attributable to a
  // single operation as (after - before).
  std::array<uint64_t, static_cast<size_t>(PathEvent::kCount)> Snapshot() const {
    return counts_;
  }

 private:
  std::array<uint64_t, static_cast<size_t>(PathEvent::kCount)> counts_{};
};

// Convenience: difference in a single counter between two snapshots.
inline uint64_t CountDelta(
    const std::array<uint64_t, static_cast<size_t>(PathEvent::kCount)>& before,
    const TraceLog& log, PathEvent e) {
  return log.Count(e) - before[static_cast<size_t>(e)];
}

}  // namespace cki

#endif  // SRC_SIM_TRACE_H_
