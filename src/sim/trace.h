// Event tracing for the simulator.
//
// Every architectural event of interest (mode switch, VM exit, PKS switch,
// page walk, ...) is recorded on a TraceLog. Tests use the counters to
// assert path composition — e.g. that a PVM page fault really performs six
// context switches, or that a CKI syscall performs none — independently of
// the latency numbers.
#ifndef SRC_SIM_TRACE_H_
#define SRC_SIM_TRACE_H_

#include <array>
#include <cstdint>
#include <optional>
#include <string_view>
#include <vector>

namespace cki {

enum class PathEvent : uint8_t {
  kSyscallEntry = 0,
  kSyscallExit,
  kModeSwitch,        // extra ring crossing (PVM redirection)
  kCr3Switch,         // address-space switch
  kPksSwitch,         // wrpkrs in a CKI gate
  kKsmCall,           // KSM call gate round trip
  kHypercall,         // guest -> host kernel request
  kVmExit,            // hardware VM exit (bare-metal)
  kNestedVmExit,      // L2 exit with L0 intervention
  kL0WorldSwitch,     // one L0 entry/exit leg under nesting
  kPageFault,         // guest user page fault
  kEptViolation,      // second-stage fault
  kShadowPtUpdate,    // SPT/SPTE emulation event
  kPteUpdate,         // any PTE store
  kTlbMiss,
  kTlbHit,
  kPageWalk1D,
  kPageWalk2D,
  kHwInterrupt,
  kVirqInject,
  kVirtioKick,
  kPrivInstrTrap,     // blocked privileged instruction attempted
  kSecurityViolation, // isolation breach attempt detected & stopped
  kContextSwitch,     // guest process switch
  kGuestOom,          // guest allocation failed; ENOMEM propagated
  kContainerKill,     // fault domain killed a container
  kCount,             // sentinel
};

// Canonical event names, indexed by event value. Keeping this a constexpr
// table (instead of a switch) lets the static_assert below prove at compile
// time that adding a PathEvent without naming it is impossible.
inline constexpr auto kPathEventNames = std::to_array<std::string_view>({
    "syscall_entry",
    "syscall_exit",
    "mode_switch",
    "cr3_switch",
    "pks_switch",
    "ksm_call",
    "hypercall",
    "vm_exit",
    "nested_vm_exit",
    "l0_world_switch",
    "page_fault",
    "ept_violation",
    "shadow_pt_update",
    "pte_update",
    "tlb_miss",
    "tlb_hit",
    "page_walk_1d",
    "page_walk_2d",
    "hw_interrupt",
    "virq_inject",
    "virtio_kick",
    "priv_instr_trap",
    "security_violation",
    "context_switch",
    "guest_oom",
    "container_kill",
});
static_assert(kPathEventNames.size() == static_cast<size_t>(PathEvent::kCount),
              "every PathEvent up to kCount must have a name in kPathEventNames");

// Human-readable name for an event (for test failure messages and dumps).
std::string_view PathEventName(PathEvent e);

// Inverse of PathEventName; nullopt for unknown names.
std::optional<PathEvent> PathEventFromName(std::string_view name);

class TraceLog {
 public:
  void Record(PathEvent e) { counts_[static_cast<size_t>(e)]++; }

  uint64_t Count(PathEvent e) const { return counts_[static_cast<size_t>(e)]; }

  uint64_t TotalEvents() const {
    uint64_t total = 0;
    for (uint64_t c : counts_) {
      total += c;
    }
    return total;
  }

  void Clear() { counts_.fill(0); }

  // Snapshot arithmetic: lets a test compute the events attributable to a
  // single operation as (after - before).
  std::array<uint64_t, static_cast<size_t>(PathEvent::kCount)> Snapshot() const {
    return counts_;
  }

 private:
  std::array<uint64_t, static_cast<size_t>(PathEvent::kCount)> counts_{};
};

// Convenience: difference in a single counter between two snapshots.
inline uint64_t CountDelta(
    const std::array<uint64_t, static_cast<size_t>(PathEvent::kCount)>& before,
    const TraceLog& log, PathEvent e) {
  return log.Count(e) - before[static_cast<size_t>(e)];
}

}  // namespace cki

#endif  // SRC_SIM_TRACE_H_
