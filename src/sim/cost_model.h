// Primitive latency costs for the CKI simulator.
//
// The paper evaluates on an AMD EPYC-9654 testbed; absolute latencies cannot
// transfer to a simulation, so we calibrate *primitive* costs once against
// the paper's own published microbenchmarks (Table 2, Figure 10, section 7.1)
// and let every composed path — syscalls, page faults, hypercalls, VM exits,
// I/O round trips — be *measured* from the simulated control flow. Each
// constant below cites the paper numbers it was derived from; DESIGN.md
// section 4 shows the full derivation.
#ifndef SRC_SIM_COST_MODEL_H_
#define SRC_SIM_COST_MODEL_H_

#include <cstdint>

#include "src/sim/clock.h"

namespace cki {

// All values are simulated nanoseconds.
struct CostModel {
  // --- Ring crossings and kernel entry ---------------------------------
  // Native syscall round trip (syscall entry + getpid handler + sysret),
  // Fig 10b: RunC/HVM/CKI all measure ~90 ns.
  SimNanos syscall_entry = 25;
  SimNanos syscall_handler_min = 40;  // the cheapest handler body (getpid)
  SimNanos sysret_exit = 25;

  // One extra CPU mode switch (ring 0 <-> ring 3 with state save/restore)
  // on PVM's redirection path. Derived: PVM syscall 336 ns =
  // CKI-wo-OPT2 238 ns + 2 mode switches  =>  49 ns each (Fig 10b).
  SimNanos mode_switch = 49;

  // --- Address-space switching ------------------------------------------
  // CR3 write including PTI page-table swap + IBRS barrier, as charged on
  // host<->guest transitions of software virtualization. Derived:
  // CKI-wo-OPT2 238 ns = CKI 90 ns + 2 switches  =>  74 ns each (Fig 10b).
  SimNanos cr3_write_raw = 40;        // bare mov-to-CR3 (PCID, no flush)
  SimNanos pti_overhead = 24;         // page-table isolation swap
  SimNanos ibrs_overhead = 10;        // indirect-branch mitigation write

  // --- PKS (protection keys, supervisor) --------------------------------
  // One wrpkrs + post-write check inside a CKI gate. Derived:
  // CKI-wo-OPT3 syscall 153 ns = 90 + 2 PKS switches => ~31.5 ns each.
  SimNanos pks_switch = 32;

  // A KSM call gate round trip beyond the two PKS switches: secure-stack
  // switch + dispatch. Fig 10a: CKI page fault spends 77 ns total in the
  // two KSM calls (PTE update 45 + iret 32).
  SimNanos ksm_dispatch = 6;
  SimNanos ksm_pte_validate = 7;      // descriptor + invariant checks
  SimNanos ksm_iret_work = 17;        // KSM-side iret emulation (frame checks)

  // --- Exceptions --------------------------------------------------------
  // Hardware exception delivery into a kernel-mode handler (IDT vector,
  // stack push). Part of the 1,000 ns native page fault (Table 2: RunC).
  SimNanos fault_delivery = 150;
  // Native anonymous-page fault handler body: VMA lookup, page allocation,
  // PTE construction. RunC page fault = 150 + 840 + iret 10 = 1,000 ns.
  SimNanos pgfault_handler_core = 840;
  SimNanos iret_native = 10;

  // --- Hardware virtualization (HVM) -------------------------------------
  // Bare-metal VM exit round trip (VMCS save/restore, world switch).
  // Derived from the 1,088 ns empty hypercall (Table 2: HVM BM).
  SimNanos vmexit_roundtrip_bm = 1050;
  SimNanos hypercall_dispatch = 38;
  // Host-side EPT violation handling work (allocate backing, fill EPT),
  // excluding the exit itself. Fig 10a: HVM-BM EPT fault = 2,093 ns
  // = 1,050 exit + 1,043 handling.
  SimNanos ept_violation_work = 1043;
  // HVM guest fault handler is slightly heavier than native (gPA
  // allocation in a fresh guest): Fig 10a reports 1,164 ns.
  SimNanos hvm_guest_handler_extra = 164;

  // --- Nested virtualization ---------------------------------------------
  // One L2 VM exit under nesting: L2 -> L0 trap, L0 resumes L1, L1 handles,
  // L1 vmresume traps L0, L0 resumes L2, plus shadow-VMCS synchronization.
  // Derived from the 6,746 ns empty nested hypercall (Table 2: HVM NST):
  // 6,746 = nested exit 6,708 + dispatch 38.
  SimNanos l0_world_switch = 900;     // each L0 entry/exit leg (x4)
  SimNanos vmcs_shadow_sync = 3108;   // L1 VMCS read/write emulation by L0
  // Extra emulation work per shadow-EPT fault beyond the nested exits
  // (page walks, SPTE generation in L0). Fig 10a: HVM-NST EPT fault
  // 30,881 ns = 4 nested exits (26,832) + 4,049 ns emulation.
  SimNanos shadow_ept_emulation = 4049;
  int shadow_ept_fault_exits = 4;
  // L2 guest fault handling observes extra slowdown under nesting
  // (Fig 10a: 1,684 ns handler vs 1,164 bare-metal => +520).
  SimNanos hvm_nested_guest_handler_extra = 520;

  // --- Software virtualization (PVM) --------------------------------------
  // PVM "VM exit" is a host round trip without virtualization hardware:
  // 2 mode switches + 2 mitigated CR3 switches + dispatch/save-restore.
  // Table 2: empty PVM hypercall 466 ns (BM) / 486 ns (NST).
  SimNanos pvm_exit_extra = 220;      // 466 - 2*49 - 2*74 = 220
  SimNanos pvm_nested_delta = 20;     // NST adds 20 ns (486 vs 466)
  // Exception injection from host into the user-mode guest kernel.
  SimNanos pvm_exception_inject = 134;
  // User-mode guest kernel runs its fault handler slightly slower than a
  // native ring-0 kernel (Fig 10a: PVM handler 1,065 ns vs native 990).
  SimNanos pvm_guest_handler_extra = 75;
  // Shadow-paging emulation per guest PTE update: guest page-table walk,
  // instruction decoding, SPTE generation. Fig 10a: 1,828 ns.
  SimNanos spt_emulation = 1828;
  // Per-PTE cost inside a batched para-virtual update (fork/exec/exit
  // amortize the exit over many entries, Xen-multicall style).
  SimNanos spt_emulation_batched = 150;
  // Host-side refill of a stale shadow entry when the guest mapping already
  // exists (e.g. first touches of a forked child's inherited pages).
  SimNanos spt_hidden_fill = 900;
  // Host bookkeeping to locate/switch the shadow root on a guest process
  // switch (beyond the exit itself).
  SimNanos pvm_shadow_root_switch = 200;
  // Extra host work when the fault also needs fresh backing memory (VMA
  // lookup in the hypervisor process, gPA->hPA association). Makes the
  // cold-fault path of Table 2 (6,727 ns) heavier than the warm path of
  // Fig 10a (4,407 ns).
  SimNanos pvm_cold_backing_work = 1388;
  // HVM equivalent: one extra backing-allocation exit under cold faults
  // (Table 2: 4,347 ns vs Fig 10a: 3,257 ns => +1,090).
  SimNanos hvm_cold_backing_work = 40;

  // --- CKI ---------------------------------------------------------------
  // CKI page fault (Fig 10a, 1,067 ns): fault_delivery + handler 840 +
  // KSM PTE-update call 45 + KSM iret call 32. CKI's handler body is the
  // native one because the guest fills host-physical addresses directly.
  // (No separate constants needed: composed from the gate primitives.)
  // CKI hypercall (sec 7.1: 390 ns): 390 = 2 PKS switches (64) + 2 mitigated
  // CR3 switches (148) + save/restore (140) + dispatch (38).
  SimNanos cki_switcher_save_restore = 140;

  // --- TLB / page walks ----------------------------------------------------
  // Cost of one page-table memory reference during a walk (PTEs are mostly
  // cache resident; the paper's GUPS numbers imply ~1 ns per reference).
  SimNanos walk_mem_ref = 1;
  // References for a native 4-level walk and a two-dimensional (EPT) walk.
  int walk_refs_1d = 4;
  int walk_refs_2d = 24;  // (4+1) guest levels x 4 EPT refs + 4 guest refs

  // --- Interrupts / virtio ---------------------------------------------------
  SimNanos hw_interrupt_delivery = 300;   // external interrupt to host
  SimNanos virq_inject = 120;             // virtual interrupt into guest
  SimNanos virtio_kick_mmio = 180;        // MMIO doorbell decode (HVM)
  SimNanos virtio_host_service = 900;     // backend processing per batch
  SimNanos virtio_guest_service = 350;    // frontend per-buffer handling
  SimNanos net_stack_per_packet = 1400;   // guest TCP/IP stack traversal
  SimNanos copy_per_4k = 180;             // data copy bandwidth proxy

  // --- Generic kernel work ----------------------------------------------------
  SimNanos pte_write_native = 5;          // direct PTE store
  SimNanos context_switch_kernel = 990;   // native process switch (lmbench)
  SimNanos page_zero_4k = 250;            // clear_page() on first touch

  // --- Fault domains -----------------------------------------------------------
  // Killing a container: fixed host bookkeeping (deregistration, PCID-range
  // flush, port detach) plus a per-frame sweep cost for returning its
  // frames to the allocator (free-list push + owner-map erase).
  SimNanos fault_kill_fixed = 15000;
  SimNanos fault_reclaim_per_frame = 30;

  // --- Snapshot / clone (src/snap) ---------------------------------------------
  // Checkpoint/restore move page-sized records through a serializer
  // (bounds checks + hash folding dominate; Quark reports ~100-200 ns/4K
  // for its snapshot streams). Clones only install a write-protected PTE
  // per shared page; the CoW break pays an IPI-priced shootdown across
  // the container's PCID range.
  SimNanos snap_fixed = 2000;             // per checkpoint/restore/clone op
  SimNanos snap_page_capture = 120;       // serialize one 4 KiB frame record
  SimNanos snap_page_restore = 150;       // deserialize + install one frame
  SimNanos snap_clone_page = 40;          // share + write-protect one page
  SimNanos cow_break_ipi = 700;           // cross-PCID shootdown on CoW break

  // --- Block filesystem / page cache (src/blkfs, DESIGN.md §15) ----------------
  // Guest page-cache bookkeeping per lookup: radix descent plus metadata
  // update, a handful of cache-resident references (cf. walk_mem_ref with
  // LRU/dirty maintenance on top).
  SimNanos blkfs_cache_lookup = 40;
  // Host-side layer resolution per chain step (delta-map probe or base
  // image index load; overlayfs lookup-per-layer analog).
  SimNanos blkfs_layer_resolve = 60;
  // Granting an already-materialized base-image frame to another
  // container: a share record plus mapping bookkeeping, no storage access
  // (the cross-tenant dedup fast path, amortized over a grant batch).
  SimNanos blkfs_base_share_map = 300;
  // Pushing one dirty page into the container's delta layer: tag update
  // and request construction; the device round trip is charged separately
  // through the virtio path.
  SimNanos blkfs_writeback_page = 90;

  // Returns the model calibrated against the paper (the defaults above).
  static CostModel Calibrated() { return CostModel{}; }

  // Composed helper: one mitigated CR3 switch (PTI + IBRS included).
  SimNanos Cr3SwitchMitigated() const { return cr3_write_raw + pti_overhead + ibrs_overhead; }

  // Composed helper: a 4 KiB-page walk with the given dimensionality.
  SimNanos WalkCost(bool two_dimensional) const {
    return walk_mem_ref * static_cast<SimNanos>(two_dimensional ? walk_refs_2d : walk_refs_1d);
  }

  // Composed helper: one full nested (L2) VM exit round trip.
  SimNanos NestedExitRoundtrip() const { return 4 * l0_world_switch + vmcs_shadow_sync; }
};

}  // namespace cki

#endif  // SRC_SIM_COST_MODEL_H_
