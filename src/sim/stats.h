// Small statistics helpers used by the measurement harness.
#ifndef SRC_SIM_STATS_H_
#define SRC_SIM_STATS_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

namespace cki {

// Accumulates samples and reports summary statistics. Stores raw samples so
// percentiles are exact; benchmark sample counts stay small enough for that.
class Stats {
 public:
  void Add(double sample) {
    samples_.push_back(sample);
    sorted_ = false;
  }

  size_t count() const { return samples_.size(); }

  double Sum() const {
    double s = 0;
    for (double v : samples_) {
      s += v;
    }
    return s;
  }

  double Mean() const { return samples_.empty() ? 0.0 : Sum() / static_cast<double>(count()); }

  double Min() const {
    return samples_.empty() ? 0.0 : *std::min_element(samples_.begin(), samples_.end());
  }

  double Max() const {
    return samples_.empty() ? 0.0 : *std::max_element(samples_.begin(), samples_.end());
  }

  // Exact percentile over the recorded samples, p in [0, 100]. Const: the
  // sample buffer doubles as a lazily sorted cache, which is not observable
  // state.
  double Percentile(double p) const {
    if (samples_.empty()) {
      return 0.0;
    }
    EnsureSorted();
    double rank = (p / 100.0) * static_cast<double>(samples_.size() - 1);
    size_t lo = static_cast<size_t>(rank);
    size_t hi = std::min(lo + 1, samples_.size() - 1);
    double frac = rank - static_cast<double>(lo);
    return samples_[lo] + (samples_[hi] - samples_[lo]) * frac;
  }

  double Stddev() const {
    if (samples_.size() < 2) {
      return 0.0;
    }
    double mean = Mean();
    double acc = 0;
    for (double v : samples_) {
      acc += (v - mean) * (v - mean);
    }
    return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
  }

  void Clear() {
    samples_.clear();
    sorted_ = false;
  }

 private:
  void EnsureSorted() const {
    if (!sorted_) {
      std::sort(samples_.begin(), samples_.end());
      sorted_ = true;
    }
  }

  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
};

}  // namespace cki

#endif  // SRC_SIM_STATS_H_
