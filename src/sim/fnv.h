// Canonical FNV-1a hashing for every determinism digest in the simulator.
//
// Multiple subsystems chain deterministic trace digests — the cluster
// shard hash, the vswitch packet trace, the fault bus, the gray-failure
// and fault injectors, snapshot streams, causal trace ids. They must all
// use the *same* mixing function (byte-wise FNV-1a over little-endian
// u64 words) so digests composed across subsystems stay comparable and a
// refactor can never silently change one copy of the constants. This
// header is the single definition; DESIGN.md §14 lists it as part of the
// determinism contract.
//
// FnvMixWords is the batched form for hot paths (the vswitch hashes six
// words per forwarded frame): one call, same bit-identical result as six
// chained FnvMix64 calls.
#ifndef SRC_SIM_FNV_H_
#define SRC_SIM_FNV_H_

#include <cstddef>
#include <cstdint>

namespace cki {

inline constexpr uint64_t kFnvOffsetBasis = 0xcbf29ce484222325ULL;
inline constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

// FNV-1a over one byte, continuing from `h`.
inline constexpr uint64_t FnvMixByte(uint64_t h, uint8_t b) {
  return (h ^ b) * kFnvPrime;
}

// FNV-1a over the 8 bytes of `v` (little-endian), continuing from `h`.
inline constexpr uint64_t FnvMix64(uint64_t h, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    h = FnvMixByte(h, static_cast<uint8_t>(v >> (i * 8)));
  }
  return h;
}

// Batched FNV-1a over `n` u64 words, continuing from `h`. Bit-identical
// to chaining FnvMix64 over the words in order.
inline constexpr uint64_t FnvMixWords(uint64_t h, const uint64_t* words, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h = FnvMix64(h, words[i]);
  }
  return h;
}

// FNV-1a over a raw byte range, continuing from `h` (snapshot streams).
inline uint64_t FnvMixBytes(uint64_t h, const uint8_t* data, size_t n) {
  for (size_t i = 0; i < n; ++i) {
    h = FnvMixByte(h, data[i]);
  }
  return h;
}

}  // namespace cki

#endif  // SRC_SIM_FNV_H_
