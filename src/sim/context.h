// Shared simulation context: the virtual clock, the calibrated cost model,
// and the event trace. One SimContext is threaded through every hardware and
// software component of a simulated machine.
#ifndef SRC_SIM_CONTEXT_H_
#define SRC_SIM_CONTEXT_H_

#include "src/obs/observability.h"
#include "src/sim/clock.h"
#include "src/sim/cost_model.h"
#include "src/sim/trace.h"

namespace cki {

class SimContext {
 public:
  SimContext() : cost_(CostModel::Calibrated()) {}
  explicit SimContext(const CostModel& cost) : cost_(cost) {}

  SimClock& clock() { return clock_; }
  const SimClock& clock() const { return clock_; }
  const CostModel& cost() const { return cost_; }
  CostModel& mutable_cost() { return cost_; }
  TraceLog& trace() { return trace_; }
  const TraceLog& trace() const { return trace_; }
  Observability& obs() { return obs_; }
  const Observability& obs() const { return obs_; }

  // Charges `ns` of simulated time and records the event that caused it.
  void Charge(SimNanos ns, PathEvent e) {
    clock_.Advance(ns);
    trace_.Record(e);
    obs_.OnEvent(clock_.now(), e);
  }

  // Records an event that consumes no simulated time on its own (its cost
  // is charged elsewhere or is purely informational). Prefer this over
  // trace().Record() so the flight recorder sees the event too.
  void RecordEvent(PathEvent e, uint64_t arg = 0) {
    trace_.Record(e);
    obs_.OnEvent(clock_.now(), e, arg);
  }

  // Charges time with no associated architectural event (plain work).
  void ChargeWork(SimNanos ns) { clock_.Advance(ns); }

 private:
  SimClock clock_;
  CostModel cost_;
  TraceLog trace_;
  Observability obs_;
};

}  // namespace cki

#endif  // SRC_SIM_CONTEXT_H_
