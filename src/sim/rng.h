// Deterministic pseudo-random number generator for workload drivers.
//
// splitmix64: tiny, fast, well distributed, and fully reproducible across
// platforms (unlike std::mt19937 seeded via std::random_device).
#ifndef SRC_SIM_RNG_H_
#define SRC_SIM_RNG_H_

#include <cstdint>

namespace cki {

class Rng {
 public:
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL) : state_(seed) {}

  uint64_t Next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

  // Uniform in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound) { return Next() % bound; }

  // Uniform double in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * (1.0 / 9007199254740992.0);
  }

  // Bernoulli trial with probability p of returning true.
  bool NextBool(double p) { return NextDouble() < p; }

 private:
  uint64_t state_;
};

}  // namespace cki

#endif  // SRC_SIM_RNG_H_
