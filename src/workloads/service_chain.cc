#include "src/workloads/service_chain.h"

#include <algorithm>
#include <vector>

#include "src/net/load_gen.h"
#include "src/net/vswitch.h"
#include "src/obs/trace_scope.h"
#include "src/sim/rng.h"

namespace cki {

ChainResult RunServiceChain(ContainerEngine& proxy, ContainerEngine& backend,
                            const ChainConfig& config) {
  SimContext& ctx = proxy.machine().ctx();
  int conc = std::max(1, config.concurrency);
  int batch = std::clamp(conc, 1, 24);

  VSwitch sw(ctx);
  VirtNic proxy_nic(proxy, sw, "proxy0", NicConfig{.tx_batch = batch});
  VirtNic backend_nic(backend, sw, "backend0", NicConfig{.tx_batch = batch});
  LoadGenerator gen(ctx, sw, "client");
  proxy.kernel().set_net(&proxy_nic);
  backend.kernel().set_net(&backend_nic);

  constexpr uint16_t kProxyService = 80;
  constexpr uint16_t kBackendService = 6379;

  uint64_t upfd = 0;         // proxy -> backend connection (proxy side)
  uint64_t backend_fd = 0;   // the same connection, backend side
  std::vector<int> flows;    // client flows
  std::vector<uint64_t> proxy_fds;
  {
    TraceScope setup_scope(ctx, "chain/setup");
    SyscallResult blfd = backend.UserSyscall(
        SyscallRequest{.no = Sys::kListen, .arg0 = kBackendService, .arg1 = 128});
    SyscallResult plfd = proxy.UserSyscall(
        SyscallRequest{.no = Sys::kListen, .arg0 = kProxyService, .arg1 = 128});
    SyscallResult up = proxy.UserSyscall(
        SyscallRequest{.no = Sys::kConnect,
                       .arg0 = static_cast<uint64_t>(backend_nic.port()),
                       .arg1 = kBackendService});
    upfd = static_cast<uint64_t>(up.value);
    SyscallResult bfd = backend.UserSyscall(
        SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(blfd.value)});
    backend_fd = static_cast<uint64_t>(bfd.value);
    for (int c = 0; c < conc; ++c) {
      flows.push_back(static_cast<int>(gen.Connect(proxy_nic.port(), kProxyService)));
      SyscallResult sock = proxy.UserSyscall(
          SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(plfd.value)});
      proxy_fds.push_back(static_cast<uint64_t>(sock.value));
    }
  }

  Rng rng(config.seed);
  SimNanos start = ctx.clock().now();
  int remaining = config.total_requests;
  uint64_t served = 0;
  while (remaining > 0) {
    int n = std::min(conc, remaining);
    {
      TraceScope obs_scope(ctx, 0, "chain/client");
      for (int c = 0; c < n; ++c) {
        gen.SendRequests(flows[static_cast<size_t>(c)], 1,
                         config.request_bytes + rng.NextBelow(64));
      }
    }
    {
      // Inbound leg: terminate the client connection, query the backend.
      TraceScope obs_scope(ctx, proxy.id(), "chain/proxy");
      for (int c = 0; c < n; ++c) {
        proxy.UserSyscall(SyscallRequest{.no = Sys::kEpollWait});
        proxy.UserSyscall(SyscallRequest{.no = Sys::kRecvfrom,
                                         .arg0 = proxy_fds[static_cast<size_t>(c)],
                                         .arg1 = config.request_bytes + 64});
        for (int s = 0; s < config.proxy_syscalls; ++s) {
          proxy.UserSyscall(SyscallRequest{
              .no = (s % 2 == 0) ? Sys::kStat : Sys::kGettimeofday, .arg0 = 555});
        }
        ctx.ChargeWork(config.proxy_compute);
        proxy.UserSyscall(SyscallRequest{
            .no = Sys::kSendto, .arg0 = upfd, .arg1 = config.upstream_bytes});
      }
      proxy_nic.Flush();
    }
    {
      TraceScope obs_scope(ctx, backend.id(), "chain/backend");
      for (int c = 0; c < n; ++c) {
        backend.UserSyscall(SyscallRequest{.no = Sys::kEpollWait});
        backend.UserSyscall(SyscallRequest{
            .no = Sys::kRecvfrom, .arg0 = backend_fd, .arg1 = config.upstream_bytes});
        ctx.ChargeWork(config.backend_compute);
        backend.UserSyscall(SyscallRequest{
            .no = Sys::kSendto, .arg0 = backend_fd, .arg1 = config.response_bytes});
      }
      backend_nic.Flush();
    }
    {
      // Outbound leg: relay the backend responses to the clients.
      TraceScope obs_scope(ctx, proxy.id(), "chain/proxy");
      for (int c = 0; c < n; ++c) {
        proxy.UserSyscall(SyscallRequest{.no = Sys::kEpollWait});
        proxy.UserSyscall(SyscallRequest{
            .no = Sys::kRecvfrom, .arg0 = upfd, .arg1 = config.response_bytes});
        proxy.UserSyscall(SyscallRequest{.no = Sys::kSendto,
                                         .arg0 = proxy_fds[static_cast<size_t>(c)],
                                         .arg1 = config.response_bytes});
      }
      proxy_nic.Flush();
    }
    {
      TraceScope obs_scope(ctx, 0, "chain/client");
      for (int c = 0; c < n; ++c) {
        served += gen.TakeResponses(flows[static_cast<size_t>(c)]);
      }
    }
    if (ctx.obs().enabled()) {
      // Round-boundary SLO gauges: resident frames per container. Fed here
      // (not per op) because OwnedFrames walks the frame table.
      SimNanos now = ctx.clock().now();
      FrameAllocator& frames = proxy.machine().frames();
      ctx.obs().SloSetGauge(proxy.id(), now, frames.OwnedFrames(proxy.id()));
      ctx.obs().SloSetGauge(backend.id(), now, frames.OwnedFrames(backend.id()));
    }
    remaining -= n;
  }
  SimNanos elapsed = ctx.clock().now() - start;
  if (ctx.obs().enabled()) {
    proxy_nic.ExportMetrics(ctx.obs().metrics());
    backend_nic.ExportMetrics(ctx.obs().metrics());
    sw.ExportMetrics(ctx.obs().metrics());
  }
  proxy.kernel().set_net(nullptr);
  backend.kernel().set_net(nullptr);

  ChainResult result;
  result.elapsed_ns = elapsed;
  result.served = served;
  double secs = static_cast<double>(elapsed) * 1e-9;
  result.requests_per_sec = (secs > 0) ? static_cast<double>(served) / secs : 0;
  result.avg_latency_ns =
      (served > 0) ? static_cast<double>(elapsed) / static_cast<double>(served) : 0;
  result.proxy_nic = proxy_nic.stats();
  result.backend_nic = backend_nic.stats();
  result.switch_packets = sw.packets_forwarded();
  result.trace_hash = sw.trace_hash();
  result.matched_traces = gen.matched_responses();
  result.last_trace_id = gen.last_request_trace();
  return result;
}

}  // namespace cki
