#include "src/workloads/blkfs_workload.h"

namespace cki {

namespace {

struct CounterSnapshot {
  BlkfsCounters cache;
  VirtioBlkStats dev;
};

CounterSnapshot Snap(const Blkfs& fs) { return {fs.counters(), fs.device_stats()}; }

void FillDeltas(BlkfsRunResult& r, const CounterSnapshot& before, const Blkfs& fs) {
  const BlkfsCounters& c = fs.counters();
  const VirtioBlkStats& d = fs.device_stats();
  r.hits = c.hits - before.cache.hits;
  r.misses = c.misses - before.cache.misses;
  r.readahead = c.readahead - before.cache.readahead;
  r.writebacks = c.writebacks - before.cache.writebacks;
  r.base_shares = c.base_shares - before.cache.base_shares;
  r.dev_reads = d.reads - before.dev.reads;
  r.dev_writes = d.writes - before.dev.writes;
  r.dev_flushes = d.flushes - before.dev.flushes;
}

}  // namespace

BlkfsRunResult RunBlkfsWal(ContainerEngine& engine, Blkfs& fs, int transactions,
                           uint64_t wal_name) {
  SimContext& ctx = engine.machine().ctx();
  BlkfsRunResult result;
  SyscallResult open = engine.UserSyscall(
      SyscallRequest{.no = Sys::kOpen, .arg0 = wal_name, .arg1 = kOpenBlkfs});
  if (!open.ok()) {
    return result;
  }
  uint64_t fd = static_cast<uint64_t>(open.value);
  CounterSnapshot before = Snap(fs);

  SimNanos start = ctx.clock().now();
  for (int txn = 0; txn < transactions; ++txn) {
    // Log record into a 64-page circular window, then the durability
    // barrier: writeback of the dirty page + device FLUSH.
    engine.UserSyscall(SyscallRequest{.no = Sys::kPwrite,
                                      .arg0 = fd,
                                      .arg1 = kPageSize,
                                      .arg2 = (static_cast<uint64_t>(txn) % 64) * kPageSize});
    ctx.ChargeWork(2500);  // transaction body
    engine.UserSyscall(SyscallRequest{.no = Sys::kFsync, .arg0 = fd});
  }
  result.elapsed = ctx.clock().now() - start;

  engine.UserSyscall(SyscallRequest{.no = Sys::kClose, .arg0 = fd});
  FillDeltas(result, before, fs);
  double secs = static_cast<double>(result.elapsed) * 1e-9;
  result.ops_per_sec = secs > 0 ? static_cast<double>(transactions) / secs : 0;
  return result;
}

BlkfsRunResult RunBlkfsScan(ContainerEngine& engine, Blkfs& fs, uint64_t file_name,
                            uint64_t blocks) {
  SimContext& ctx = engine.machine().ctx();
  BlkfsRunResult result;
  SyscallResult open = engine.UserSyscall(
      SyscallRequest{.no = Sys::kOpen, .arg0 = file_name, .arg1 = kOpenBlkfs});
  if (!open.ok()) {
    return result;
  }
  uint64_t fd = static_cast<uint64_t>(open.value);
  CounterSnapshot before = Snap(fs);

  SimNanos start = ctx.clock().now();
  for (uint64_t b = 0; b < blocks; ++b) {
    engine.UserSyscall(SyscallRequest{
        .no = Sys::kPread, .arg0 = fd, .arg1 = kPageSize, .arg2 = b * kPageSize});
    ctx.ChargeWork(300);  // per-page processing in user space
  }
  result.elapsed = ctx.clock().now() - start;

  engine.UserSyscall(SyscallRequest{.no = Sys::kClose, .arg0 = fd});
  FillDeltas(result, before, fs);
  double secs = static_cast<double>(result.elapsed) * 1e-9;
  result.ops_per_sec = secs > 0 ? static_cast<double>(blocks) / secs : 0;
  return result;
}

}  // namespace cki
