// Storage workloads over the block-backed filesystem (src/blkfs): the
// WAL-commit loop and sequential scan of blk_workload.h, rebuilt on real
// files so every access pays (or saves) what the page cache decides —
// cache hits, readahead, epoch writeback, and the fsync barrier path.
// Results carry the cache-counter deltas so benches can print hit/miss/
// writeback columns next to ops/sec.
#ifndef SRC_WORKLOADS_BLKFS_WORKLOAD_H_
#define SRC_WORKLOADS_BLKFS_WORKLOAD_H_

#include "src/blkfs/blkfs.h"
#include "src/runtime/engine.h"

namespace cki {

struct BlkfsRunResult {
  SimNanos elapsed = 0;
  double ops_per_sec = 0;
  // Cache-counter deltas over the run.
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t readahead = 0;
  uint64_t writebacks = 0;
  uint64_t base_shares = 0;
  // Device-side deltas.
  uint64_t dev_reads = 0;
  uint64_t dev_writes = 0;
  uint64_t dev_flushes = 0;
};

// WAL commit loop on a blkfs file: per transaction one page write to the
// log window plus fsync (writeback + flush barrier — nothing batches).
BlkfsRunResult RunBlkfsWal(ContainerEngine& engine, Blkfs& fs, int transactions = 200,
                           uint64_t wal_name = 0x6c6177 /* "wal" */);

// Sequential scan of `blocks` pages of `file_name` through the cache: a
// cold pass streams through readahead; a warm pass over the same trace
// should be all hits (the bench gate).
BlkfsRunResult RunBlkfsScan(ContainerEngine& engine, Blkfs& fs, uint64_t file_name,
                            uint64_t blocks);

}  // namespace cki

#endif  // SRC_WORKLOADS_BLKFS_WORKLOAD_H_
