#include "src/workloads/cve_data.h"

namespace cki {

const std::vector<CveClass>& CveClasses() {
  // Counts derived from the percentages of Figure 2 (209 CVEs total).
  static const std::vector<CveClass> classes = {
      {"out-of-bound R/W", 83, true},     // 39.9%
      {"use-after-free", 42, true},       // 20.2%
      {"null dereference", 27, true},     // 12.8%
      {"other mem. corruption", 13, true},// 6.4%
      {"logic error", 17, true},          // 8.0%
      {"memory leakage", 12, true},       // 5.9%
      {"kernel panic", 6, true},          // 2.7%
      {"deadlock/deadloop", 3, true},     // 1.6%
      {"information leakage", 6, false},  // 2.7% (the only non-DoS class)
  };
  return classes;
}

double DosShare() {
  int dos = 0;
  int total = 0;
  for (const CveClass& c : CveClasses()) {
    total += c.count;
    if (c.dos_capable) {
      dos += c.count;
    }
  }
  return total > 0 ? static_cast<double>(dos) / static_cast<double>(total) : 0;
}

bool ContainedByKernelSeparation(const CveClass& c) {
  // A compromised guest kernel only takes down its own container.
  (void)c;
  return true;
}

bool ContainedByKernelSharing(const CveClass& c) {
  // Enclaves protect confidentiality/integrity of container data, but a
  // DoS against the shared kernel takes everything down.
  return !c.dos_capable;
}

}  // namespace cki
