// I/O-intensive server applications for Figure 5: nginx (static & proxy),
// httpd, redis, memcached, netperf (TX & RR), sqlite on tmpfs. Each is
// modeled by its per-request syscall mix, network round trips, payload and
// compute; all traffic flows as real packets through a vswitch port and the
// container's VirtNic, so the designs' kick/interrupt costs apply.
#ifndef SRC_WORKLOADS_IO_APPS_H_
#define SRC_WORKLOADS_IO_APPS_H_

#include <string_view>
#include <vector>

#include "src/runtime/engine.h"

namespace cki {

struct IoAppSpec {
  std::string_view name;
  int requests = 2000;
  int syscalls_per_req = 4;     // beyond the recv/send pair
  int net_round_trips = 1;      // 0 = transmit-only streaming (netperf TX)
  uint64_t bytes_per_req = 8192;
  SimNanos compute_per_req = 8000;
  int concurrency = 16;         // in-flight requests (batch amortization)
};

const std::vector<IoAppSpec>& IoAppSuite();

// Returns throughput in requests (or segments) per second.
double RunIoApp(ContainerEngine& engine, const IoAppSpec& spec);

}  // namespace cki

#endif  // SRC_WORKLOADS_IO_APPS_H_
