// sqlite-bench (leveldb's db_bench_sqlite3) workload model for Figures 14
// and 15. The database lives on tmpfs, so each operation exercises only the
// syscall path (file reads/writes/fsync) plus heap growth (page faults as
// the B-tree and page cache grow) — no virtualized I/O.
//
// Per-pattern signatures: average syscalls per operation (the bottom strip
// of Figure 14), fresh heap pages per 1,000 operations, and SQL engine
// compute. Batch variants amortize journal syscalls across a transaction.
#ifndef SRC_WORKLOADS_SQLITE_BENCH_H_
#define SRC_WORKLOADS_SQLITE_BENCH_H_

#include <string_view>
#include <vector>

#include "src/runtime/engine.h"

namespace cki {

struct SqlitePattern {
  std::string_view name;
  int ops = 4000;
  double syscalls_per_op = 1.0;  // pwrite/pread/fsync mix on the db file
  double write_fraction = 1.0;   // of those syscalls, share that are writes
  int fresh_pages_per_kop = 0;   // heap/page-cache growth faults
  SimNanos compute_per_op = 0;   // SQL parsing, B-tree work in user space
};

const std::vector<SqlitePattern>& SqliteSuite();

struct SqliteResult {
  double ops_per_sec = 0;
  double syscalls_per_sec = 0;
};

// Runs one pattern; `warm` performs an untimed first pass so one-time
// memory-backing costs settle (the paper runs each case twice to ignore
// HVM's EPT warm-up).
SqliteResult RunSqlitePattern(ContainerEngine& engine, const SqlitePattern& pattern,
                              bool warm = true, uint64_t seed = 11);

// Same pattern with the database on the block-backed filesystem
// (src/blkfs) instead of tmpfs: reads and writes go through the page
// cache, and a journal barrier (fsync) lands every 50 write syscalls.
// Requires a Blkfs port attached to the engine's kernel.
SqliteResult RunSqlitePatternBlkfs(ContainerEngine& engine, const SqlitePattern& pattern,
                                   bool warm = true, uint64_t seed = 11);

}  // namespace cki

#endif  // SRC_WORKLOADS_SQLITE_BENCH_H_
