#include "src/workloads/lmbench.h"

#include <functional>

namespace cki {

namespace {

// Warms the current process image so fork() has a realistic number of
// pages to clone (text + stack + a small heap).
void WarmProcessImage(ContainerEngine& engine) {
  for (int i = 0; i < kTextPages; ++i) {
    engine.UserTouch(kUserTextBase + static_cast<uint64_t>(i) * kPageSize, false);
  }
  for (int i = 1; i <= kStackPages; ++i) {
    engine.UserTouch(kUserStackTop - static_cast<uint64_t>(i) * kPageSize, true);
  }
  uint64_t heap = engine.MmapAnon(24 * kPageSize, /*populate=*/true);
  (void)heap;
}

SimNanos MeasureLoop(ContainerEngine& engine, int iters, const std::function<void()>& body) {
  SimContext& ctx = engine.machine().ctx();
  SimNanos start = ctx.clock().now();
  for (int i = 0; i < iters; ++i) {
    body();
  }
  return (ctx.clock().now() - start) / static_cast<SimNanos>(iters);
}

int ForkChild(ContainerEngine& engine) {
  SyscallResult r = engine.UserSyscall(SyscallRequest{.no = Sys::kFork});
  return static_cast<int>(r.value);
}

}  // namespace

std::string_view LmbenchOpName(LmbenchOp op) {
  switch (op) {
    case LmbenchOp::kRead:
      return "read";
    case LmbenchOp::kWrite:
      return "write";
    case LmbenchOp::kStat:
      return "stat";
    case LmbenchOp::kProtFault:
      return "prot fault";
    case LmbenchOp::kPageFault:
      return "page fault";
    case LmbenchOp::kForkExit:
      return "fork/exit";
    case LmbenchOp::kForkExecve:
      return "fork/execve";
    case LmbenchOp::kCtxSwitch2p:
      return "ctxsw 2p/0k";
    case LmbenchOp::kPipe:
      return "pipe";
    case LmbenchOp::kAfUnix:
      return "AF_UNIX";
    case LmbenchOp::kCount:
      break;
  }
  return "unknown";
}

const std::vector<LmbenchOp>& LmbenchSuite() {
  static const std::vector<LmbenchOp> suite = {
      LmbenchOp::kRead,       LmbenchOp::kWrite,      LmbenchOp::kStat,
      LmbenchOp::kProtFault,  LmbenchOp::kPageFault,  LmbenchOp::kForkExit,
      LmbenchOp::kForkExecve, LmbenchOp::kCtxSwitch2p, LmbenchOp::kPipe,
      LmbenchOp::kAfUnix,
  };
  return suite;
}

SimNanos RunLmbenchOp(ContainerEngine& engine, LmbenchOp op) {
  GuestKernel& kernel = engine.kernel();
  switch (op) {
    case LmbenchOp::kRead: {
      SyscallResult fd = engine.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 901});
      engine.UserSyscall(
          SyscallRequest{.no = Sys::kWrite, .arg0 = static_cast<uint64_t>(fd.value), .arg1 = 64});
      return MeasureLoop(engine, 128, [&] {
        engine.UserSyscall(SyscallRequest{.no = Sys::kPread,
                                          .arg0 = static_cast<uint64_t>(fd.value),
                                          .arg1 = 1,
                                          .arg2 = 0});
      });
    }
    case LmbenchOp::kWrite: {
      SyscallResult fd = engine.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 902});
      engine.UserSyscall(
          SyscallRequest{.no = Sys::kWrite, .arg0 = static_cast<uint64_t>(fd.value), .arg1 = 64});
      return MeasureLoop(engine, 128, [&] {
        engine.UserSyscall(SyscallRequest{.no = Sys::kPwrite,
                                          .arg0 = static_cast<uint64_t>(fd.value),
                                          .arg1 = 1,
                                          .arg2 = 0});
      });
    }
    case LmbenchOp::kStat: {
      engine.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 903});
      return MeasureLoop(engine, 128, [&] {
        engine.UserSyscall(SyscallRequest{.no = Sys::kStat, .arg0 = 903});
      });
    }
    case LmbenchOp::kProtFault: {
      uint64_t page = engine.MmapAnon(kPageSize, /*populate=*/true);
      engine.UserSyscall(SyscallRequest{
          .no = Sys::kMprotect, .arg0 = page, .arg1 = kPageSize, .arg2 = kProtRead});
      return MeasureLoop(engine, 64, [&] { engine.UserTouch(page, /*write=*/true); });
    }
    case LmbenchOp::kPageFault: {
      constexpr int kChunk = 64;
      return MeasureLoop(engine, 8, [&] {
               uint64_t base = engine.MmapAnon(kChunk * kPageSize, false);
               for (int i = 0; i < kChunk; ++i) {
                 engine.UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
               }
             }) /
             kChunk;
    }
    case LmbenchOp::kForkExit: {
      WarmProcessImage(engine);
      int parent = kernel.current_pid();
      return MeasureLoop(engine, 8, [&] {
        int child = ForkChild(engine);
        kernel.SwitchTo(child);
        engine.UserSyscall(SyscallRequest{.no = Sys::kExit, .arg0 = 0});
        // SysExit schedules back to the parent.
        (void)parent;
        engine.UserSyscall(SyscallRequest{.no = Sys::kWaitpid, .arg0 = 0});
      });
    }
    case LmbenchOp::kForkExecve: {
      WarmProcessImage(engine);
      return MeasureLoop(engine, 8, [&] {
        int child = ForkChild(engine);
        kernel.SwitchTo(child);
        engine.UserSyscall(SyscallRequest{.no = Sys::kExecve});
        engine.UserSyscall(SyscallRequest{.no = Sys::kExit, .arg0 = 0});
        engine.UserSyscall(SyscallRequest{.no = Sys::kWaitpid, .arg0 = 0});
      });
    }
    case LmbenchOp::kCtxSwitch2p: {
      int child = ForkChild(engine);
      (void)child;
      // Two runnable processes; each yield switches to the other.
      return MeasureLoop(engine, 64, [&] {
        engine.UserSyscall(SyscallRequest{.no = Sys::kSchedYield});
      });
    }
    case LmbenchOp::kPipe: {
      SyscallResult p1 = engine.UserSyscall(SyscallRequest{.no = Sys::kPipe});
      SyscallResult p2 = engine.UserSyscall(SyscallRequest{.no = Sys::kPipe});
      uint64_t r1 = static_cast<uint64_t>(p1.value) & 0xFFFF;
      uint64_t w1 = static_cast<uint64_t>(p1.value) >> 16;
      uint64_t r2 = static_cast<uint64_t>(p2.value) & 0xFFFF;
      uint64_t w2 = static_cast<uint64_t>(p2.value) >> 16;
      int parent = kernel.current_pid();
      int child = ForkChild(engine);
      // One round trip: parent->child on pipe 1, child->parent on pipe 2.
      return MeasureLoop(engine, 64, [&] {
        engine.UserSyscall(SyscallRequest{.no = Sys::kWrite, .arg0 = w1, .arg1 = 1});
        kernel.SwitchTo(child);
        engine.UserSyscall(SyscallRequest{.no = Sys::kRead, .arg0 = r1, .arg1 = 1});
        engine.UserSyscall(SyscallRequest{.no = Sys::kWrite, .arg0 = w2, .arg1 = 1});
        kernel.SwitchTo(parent);
        engine.UserSyscall(SyscallRequest{.no = Sys::kRead, .arg0 = r2, .arg1 = 1});
      });
    }
    case LmbenchOp::kAfUnix: {
      SyscallResult sp = engine.UserSyscall(SyscallRequest{.no = Sys::kSocketpair});
      uint64_t s0 = static_cast<uint64_t>(sp.value) & 0xFFFF;
      uint64_t s1 = static_cast<uint64_t>(sp.value) >> 16;
      int parent = kernel.current_pid();
      int child = ForkChild(engine);
      return MeasureLoop(engine, 64, [&] {
        engine.UserSyscall(SyscallRequest{.no = Sys::kSendto, .arg0 = s0, .arg1 = 1});
        kernel.SwitchTo(child);
        engine.UserSyscall(SyscallRequest{.no = Sys::kRecvfrom, .arg0 = s1, .arg1 = 1});
        engine.UserSyscall(SyscallRequest{.no = Sys::kSendto, .arg0 = s1, .arg1 = 1});
        kernel.SwitchTo(parent);
        engine.UserSyscall(SyscallRequest{.no = Sys::kRecvfrom, .arg0 = s0, .arg1 = 1});
      });
    }
    case LmbenchOp::kCount:
      break;
  }
  return 0;
}

}  // namespace cki
