// The container-exploitable Linux kernel CVE dataset of Figure 2:
// 209 CVEs from 2022-2023 classified by security effect, and whether each
// class can mount a denial-of-service attack. Motivates the VM-level
// (kernel-separation) design: 97.3% of the CVEs can DoS a shared kernel,
// which enclave-based (kernel-sharing) containers cannot contain.
#ifndef SRC_WORKLOADS_CVE_DATA_H_
#define SRC_WORKLOADS_CVE_DATA_H_

#include <string_view>
#include <vector>

namespace cki {

struct CveClass {
  std::string_view effect;
  int count;           // of 209 total
  bool dos_capable;    // can break/starve a shared kernel
};

inline constexpr int kCveTotal = 209;

const std::vector<CveClass>& CveClasses();

// Share (0..1) of CVEs that enable DoS.
double DosShare();

// Containment comparison: a kernel-separation design contains every class
// (a compromised guest kernel is discarded with its container); a
// kernel-sharing (enclave) design cannot contain the DoS-capable ones.
bool ContainedByKernelSeparation(const CveClass& c);
bool ContainedByKernelSharing(const CveClass& c);

}  // namespace cki

#endif  // SRC_WORKLOADS_CVE_DATA_H_
