#include "src/workloads/io_apps.h"

#include <algorithm>

#include "src/net/load_gen.h"
#include "src/net/virt_nic.h"
#include "src/net/vswitch.h"

namespace cki {

const std::vector<IoAppSpec>& IoAppSuite() {
  static const std::vector<IoAppSpec> suite = {
      // Static file serving: accept/stat/open/sendfile-ish syscall chain.
      {.name = "nginx(static)", .requests = 2000, .syscalls_per_req = 6, .net_round_trips = 1,
       .bytes_per_req = 8192, .compute_per_req = 7000, .concurrency = 16},
      // Reverse proxy: a second upstream round trip per request.
      {.name = "nginx(proxy)", .requests = 1500, .syscalls_per_req = 10, .net_round_trips = 2,
       .bytes_per_req = 8192, .compute_per_req = 10000, .concurrency = 16},
      {.name = "httpd", .requests = 1500, .syscalls_per_req = 8, .net_round_trips = 1,
       .bytes_per_req = 8192, .compute_per_req = 16000, .concurrency = 16},
      {.name = "redis", .requests = 3000, .syscalls_per_req = 1, .net_round_trips = 1,
       .bytes_per_req = 500, .compute_per_req = 12000, .concurrency = 16},
      {.name = "memcached", .requests = 3000, .syscalls_per_req = 1, .net_round_trips = 1,
       .bytes_per_req = 500, .compute_per_req = 1800, .concurrency = 16},
      // Bulk streaming: one send per 16 KiB segment, kicks amortized.
      {.name = "netperf(TX)", .requests = 4000, .syscalls_per_req = 0, .net_round_trips = 0,
       .bytes_per_req = 16384, .compute_per_req = 1200, .concurrency = 32},
      // 1-byte ping-pong: every transaction pays a kick and an interrupt.
      {.name = "netperf(RR)", .requests = 3000, .syscalls_per_req = 0, .net_round_trips = 1,
       .bytes_per_req = 1, .compute_per_req = 800, .concurrency = 1},
      // SQLite on tmpfs: pure syscall path, no virtio (random writes).
      {.name = "sqlite(tmpfs)", .requests = 3000, .syscalls_per_req = 3, .net_round_trips = 0,
       .bytes_per_req = 200, .compute_per_req = 2700, .concurrency = 1},
  };
  return suite;
}

double RunIoApp(ContainerEngine& engine, const IoAppSpec& spec) {
  SimContext& ctx = engine.machine().ctx();
  GuestKernel& kernel = engine.kernel();

  int batch = std::max(1, std::min(spec.concurrency, 24));
  // The served traffic flows through a real switch port now: the app
  // listens, the load generator connects, the app accepts.
  VSwitch sw(ctx);
  VirtNic nic(engine, sw, "eth0", NicConfig{.tx_batch = batch});
  LoadGenerator gen(ctx, sw, "client");
  kernel.set_net(&nic);

  constexpr uint16_t kService = 80;
  SyscallResult lfd = engine.UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = kService, .arg1 = 128});
  int64_t flow = gen.Connect(nic.port(), kService);
  SyscallResult sock = engine.UserSyscall(
      SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
  uint64_t sockfd = static_cast<uint64_t>(sock.value);
  SyscallResult file = engine.UserSyscall(SyscallRequest{.no = Sys::kOpen, .arg0 = 555});
  uint64_t filefd = static_cast<uint64_t>(file.value);
  engine.UserSyscall(SyscallRequest{.no = Sys::kWrite, .arg0 = filefd, .arg1 = 16 * kPageSize});

  SimNanos start = ctx.clock().now();
  if (spec.net_round_trips == 0 && spec.syscalls_per_req == 0) {
    // netperf TX: transmit-only streaming.
    for (int i = 0; i < spec.requests; ++i) {
      engine.UserSyscall(SyscallRequest{
          .no = Sys::kSendto, .arg0 = sockfd, .arg1 = spec.bytes_per_req});
      ctx.ChargeWork(spec.compute_per_req);
    }
    nic.Flush();
  } else if (spec.net_round_trips == 0) {
    // sqlite-style: syscalls only.
    for (int i = 0; i < spec.requests; ++i) {
      for (int s = 0; s < spec.syscalls_per_req; ++s) {
        engine.UserSyscall(SyscallRequest{.no = (s % 2 == 0) ? Sys::kPwrite : Sys::kPread,
                                          .arg0 = filefd,
                                          .arg1 = spec.bytes_per_req,
                                          .arg2 = 0});
      }
      ctx.ChargeWork(spec.compute_per_req);
    }
  } else {
    int remaining = spec.requests;
    while (remaining > 0) {
      int in_flight = std::min(batch, remaining);
      gen.SendRequests(static_cast<int>(flow), in_flight, 256);
      for (int r = 0; r < in_flight; ++r) {
        engine.UserSyscall(SyscallRequest{.no = Sys::kEpollWait});
        engine.UserSyscall(SyscallRequest{.no = Sys::kRecvfrom, .arg0 = sockfd, .arg1 = 256});
        // Application syscall chain (stat/open/read of the served file...).
        for (int s = 0; s < spec.syscalls_per_req; ++s) {
          engine.UserSyscall(SyscallRequest{.no = (s % 3 == 0) ? Sys::kStat : Sys::kPread,
                                            .arg0 = (s % 3 == 0) ? 555 : filefd,
                                            .arg1 = 512,
                                            .arg2 = 0});
        }
        // Upstream round trips beyond the first (proxying): the upstream's
        // response is injected by the generator, like the origin answering.
        for (int t = 1; t < spec.net_round_trips; ++t) {
          engine.UserSyscall(SyscallRequest{.no = Sys::kSendto, .arg0 = sockfd, .arg1 = 256});
          gen.SendRequests(static_cast<int>(flow), 1, spec.bytes_per_req);
          engine.UserSyscall(SyscallRequest{
              .no = Sys::kRecvfrom, .arg0 = sockfd, .arg1 = spec.bytes_per_req});
        }
        ctx.ChargeWork(spec.compute_per_req);
        engine.UserSyscall(SyscallRequest{
            .no = Sys::kSendto, .arg0 = sockfd, .arg1 = spec.bytes_per_req});
      }
      // Round tail: responses below the batch threshold still go out.
      nic.Flush();
      gen.TakeResponses(static_cast<int>(flow));
      remaining -= in_flight;
    }
  }
  SimNanos elapsed = ctx.clock().now() - start;
  if (ctx.obs().enabled()) {
    nic.ExportMetrics(ctx.obs().metrics());
    sw.ExportMetrics(ctx.obs().metrics());
  }
  kernel.set_net(nullptr);

  double secs = static_cast<double>(elapsed) * 1e-9;
  return (secs > 0) ? static_cast<double>(spec.requests) / secs : 0;
}

}  // namespace cki
