// Multi-container service chain for the cluster benchmarks:
//
//   load generator -> nginx-style proxy container -> redis-style backend
//
// Both containers live on one simulated machine and talk through the shared
// vswitch, so every request pays each container's kick/interrupt/syscall
// costs twice (in and out) per hop — cross-container amplification of the
// designs' overheads, measurable per hop via the obs spans
// `chain/client`, `chain/proxy`, `chain/backend` (setup is under
// `chain/setup`, outside the measured loop).
#ifndef SRC_WORKLOADS_SERVICE_CHAIN_H_
#define SRC_WORKLOADS_SERVICE_CHAIN_H_

#include "src/net/virt_nic.h"
#include "src/runtime/engine.h"

namespace cki {

struct ChainConfig {
  int concurrency = 16;        // in-flight requests (per-round batch)
  int total_requests = 2000;
  uint64_t request_bytes = 256;    // client -> proxy (plus seeded jitter)
  uint64_t upstream_bytes = 500;   // proxy -> backend query
  uint64_t response_bytes = 2048;  // backend -> proxy -> client
  int proxy_syscalls = 4;          // per-request proxy syscall chain
  SimNanos proxy_compute = 3000;
  SimNanos backend_compute = 12000;
  uint64_t seed = 1;  // jitters request sizes; same seed => same packet trace
};

struct ChainResult {
  double requests_per_sec = 0;
  double avg_latency_ns = 0;  // pipeline time per served request
  SimNanos elapsed_ns = 0;
  uint64_t served = 0;
  NicStats proxy_nic;
  NicStats backend_nic;
  uint64_t switch_packets = 0;
  uint64_t trace_hash = 0;  // deterministic packet-trace digest

  // Causal-trace integrity: responses whose trace id matched a request the
  // generator minted. Equal to `served` iff every request kept its
  // identity across loadgen -> proxy -> backend -> proxy -> loadgen.
  uint64_t matched_traces = 0;
  uint64_t last_trace_id = 0;  // identity of the last request minted
};

// Both engines must be booted on the same Machine (shared clock/switch).
ChainResult RunServiceChain(ContainerEngine& proxy, ContainerEngine& backend,
                            const ChainConfig& config);

}  // namespace cki

#endif  // SRC_WORKLOADS_SERVICE_CHAIN_H_
