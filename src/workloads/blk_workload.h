// Storage workloads over the virtio-blk device: a WAL-style database commit
// loop (write + fsync per transaction) and a sequential scan. The fsync
// path cannot batch, so it exposes the per-exit cost of each design the way
// netperf-RR exposes it on the network side.
#ifndef SRC_WORKLOADS_BLK_WORKLOAD_H_
#define SRC_WORKLOADS_BLK_WORKLOAD_H_

#include "src/host/virtio_blk.h"
#include "src/runtime/engine.h"

namespace cki {

struct BlkResult {
  double ops_per_sec = 0;
  uint64_t kicks = 0;
  uint64_t interrupts = 0;
};

// WAL commit loop: per transaction, write `wal_sectors` to the log, fsync,
// then every 16 transactions checkpoint 32 sectors to the main file.
BlkResult RunWalCommit(ContainerEngine& engine, int transactions = 500, int wal_sectors = 8);

// Sequential scan: large batched reads (queue depth amortizes the exits).
BlkResult RunSequentialScan(ContainerEngine& engine, int requests = 2000, int sectors = 256);

}  // namespace cki

#endif  // SRC_WORKLOADS_BLK_WORKLOAD_H_
