#include "src/workloads/sqlite_bench.h"

#include "src/sim/rng.h"

namespace cki {

const std::vector<SqlitePattern>& SqliteSuite() {
  static const std::vector<SqlitePattern> suite = {
      // Individual INSERTs: journal write + db write + fsync per op.
      {.name = "fillseq", .ops = 4000, .syscalls_per_op = 3.0, .write_fraction = 0.9,
       .fresh_pages_per_kop = 60, .compute_per_op = 2600},
      // Batched transaction: syscalls amortized; growth faults remain.
      {.name = "fillseqbatch", .ops = 4000, .syscalls_per_op = 0.15, .write_fraction = 0.9,
       .fresh_pages_per_kop = 60, .compute_per_op = 1300},
      {.name = "fillrandom", .ops = 4000, .syscalls_per_op = 3.0, .write_fraction = 0.9,
       .fresh_pages_per_kop = 70, .compute_per_op = 2700},
      {.name = "fillrandbatch", .ops = 4000, .syscalls_per_op = 1.2, .write_fraction = 0.9,
       .fresh_pages_per_kop = 40, .compute_per_op = 1500},
      // Overwrites reuse pages: fewer growth faults, but random-page journal
      // traffic keeps the syscall rate up.
      {.name = "overwritebatch", .ops = 4000, .syscalls_per_op = 1.2, .write_fraction = 0.9,
       .fresh_pages_per_kop = 30, .compute_per_op = 1700},
      // Reads: cursor iteration, page cache warm.
      {.name = "readseq", .ops = 6000, .syscalls_per_op = 0.05, .write_fraction = 0.0,
       .fresh_pages_per_kop = 0, .compute_per_op = 1050},
      {.name = "readrandom", .ops = 6000, .syscalls_per_op = 0.1, .write_fraction = 0.0,
       .fresh_pages_per_kop = 2, .compute_per_op = 2150},
  };
  return suite;
}

namespace {

SqliteResult RunOnce(ContainerEngine& engine, const SqlitePattern& p, uint64_t seed,
                     bool on_blkfs) {
  SimContext& ctx = engine.machine().ctx();
  Rng rng(seed);

  SyscallResult db = engine.UserSyscall(SyscallRequest{
      .no = Sys::kOpen, .arg0 = 777, .arg1 = on_blkfs ? kOpenBlkfs : 0});
  uint64_t dbfd = static_cast<uint64_t>(db.value);
  // Pre-size the database file so reads find data.
  engine.UserSyscall(SyscallRequest{.no = Sys::kWrite, .arg0 = dbfd, .arg1 = 64 * kPageSize});

  int growth_pages = p.fresh_pages_per_kop * p.ops / 1000;
  uint64_t heap = 0;
  if (growth_pages > 0) {
    heap = engine.MmapAnon(static_cast<uint64_t>(growth_pages) * kPageSize, false);
  }
  int grown = 0;
  double syscall_budget = 0;
  uint64_t syscalls_done = 0;
  int writes_since_sync = 0;

  SimNanos start = ctx.clock().now();
  for (int op = 0; op < p.ops; ++op) {
    syscall_budget += p.syscalls_per_op;
    while (syscall_budget >= 1.0) {
      syscall_budget -= 1.0;
      syscalls_done++;
      bool is_write = rng.NextBool(p.write_fraction);
      uint64_t off = rng.NextBelow(64) * kPageSize;
      engine.UserSyscall(SyscallRequest{.no = is_write ? Sys::kPwrite : Sys::kPread,
                                        .arg0 = dbfd,
                                        .arg1 = 200,
                                        .arg2 = off});
      // On real storage the journal must hit the device: barrier every
      // 50 write syscalls (tmpfs runs keep the pure-memory path).
      if (on_blkfs && is_write && ++writes_since_sync >= 50) {
        writes_since_sync = 0;
        syscalls_done++;
        engine.UserSyscall(SyscallRequest{.no = Sys::kFsync, .arg0 = dbfd});
      }
    }
    // Heap growth of the SQL engine / page cache.
    int target = growth_pages * (op + 1) / p.ops;
    while (grown < target) {
      engine.UserTouch(heap + static_cast<uint64_t>(grown) * kPageSize, true);
      grown++;
    }
    ctx.ChargeWork(p.compute_per_op);
  }
  SimNanos elapsed = ctx.clock().now() - start;

  if (growth_pages > 0) {
    engine.UserSyscall(SyscallRequest{.no = Sys::kMunmap,
                                      .arg0 = heap,
                                      .arg1 = static_cast<uint64_t>(growth_pages) * kPageSize});
  }
  engine.UserSyscall(SyscallRequest{.no = Sys::kClose, .arg0 = dbfd});

  SqliteResult result;
  double secs = static_cast<double>(elapsed) * 1e-9;
  result.ops_per_sec = (secs > 0) ? static_cast<double>(p.ops) / secs : 0;
  result.syscalls_per_sec = (secs > 0) ? static_cast<double>(syscalls_done) / secs : 0;
  return result;
}

}  // namespace

SqliteResult RunSqlitePattern(ContainerEngine& engine, const SqlitePattern& pattern, bool warm,
                              uint64_t seed) {
  if (warm) {
    // Untimed pass: backing memory gets allocated and freed; the timed pass
    // reuses it (the paper runs every case twice for the same reason).
    RunOnce(engine, pattern, seed, /*on_blkfs=*/false);
  }
  return RunOnce(engine, pattern, seed + 1, /*on_blkfs=*/false);
}

SqliteResult RunSqlitePatternBlkfs(ContainerEngine& engine, const SqlitePattern& pattern,
                                   bool warm, uint64_t seed) {
  if (warm) {
    RunOnce(engine, pattern, seed, /*on_blkfs=*/true);
  }
  return RunOnce(engine, pattern, seed + 1, /*on_blkfs=*/true);
}

}  // namespace cki
