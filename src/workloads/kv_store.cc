#include "src/workloads/kv_store.h"

#include <algorithm>

namespace cki {

namespace {

// In-flight requests never exceed what the NIC queue exposes per interrupt.
constexpr int kMaxBatch = 24;
// RX interrupt coalescing: NAPI-style polling picks up at most this many
// requests per interrupt even under heavy load.
constexpr int kRxCoalesce = 4;

SimNanos AppWorkPerRequest(KvKind kind) {
  switch (kind) {
    case KvKind::kMemcached:
      // Hash computation, item lookup/update, response assembly.
      return 1500;
    case KvKind::kRedis:
      // RESP parsing, dict ops, object management in one event loop.
      return 22000;
  }
  return 0;
}

}  // namespace

KvResult RunKvBenchmark(ContainerEngine& engine, const KvConfig& config) {
  SimContext& ctx = engine.machine().ctx();
  GuestKernel& kernel = engine.kernel();

  int batch = std::clamp(config.clients, 1, kMaxBatch);
  // Responses are request/response packets: each sendto rings the TX
  // doorbell (virtio-net notifies per packet on an otherwise-empty queue).
  VirtioNetAdapter adapter(engine, /*tx_batch=*/1);
  kernel.set_net(&adapter);
  constexpr int kConn = 1;
  int sockfd = kernel.InstallNetSocket(kConn);

  SimNanos start = ctx.clock().now();
  int remaining = config.total_requests;
  uint64_t served = 0;
  while (remaining > 0) {
    int in_flight = std::min(batch, remaining);
    // The NIC raises one interrupt per coalesced chunk.
    for (int submitted = 0; submitted < in_flight; submitted += kRxCoalesce) {
      adapter.ClientSubmitBatch(kConn, std::min(kRxCoalesce, in_flight - submitted),
                                config.value_bytes);
    }
    // Server event loop: drain everything the interrupt announced.
    while (true) {
      SyscallResult ready = engine.UserSyscall(SyscallRequest{.no = Sys::kEpollWait});
      if (!ready.ok() || ready.value == 0) {
        break;
      }
      SyscallResult got = engine.UserSyscall(SyscallRequest{
          .no = Sys::kRecvfrom, .arg0 = static_cast<uint64_t>(sockfd),
          .arg1 = config.value_bytes});
      if (!got.ok()) {
        break;
      }
      ctx.ChargeWork(AppWorkPerRequest(config.kind));
      engine.UserSyscall(SyscallRequest{.no = Sys::kSendto,
                                        .arg0 = static_cast<uint64_t>(sockfd),
                                        .arg1 = config.value_bytes});
      served++;
    }
    adapter.ClientCollect(kConn);
    remaining -= in_flight;
  }
  SimNanos elapsed = ctx.clock().now() - start;
  kernel.set_net(nullptr);

  KvResult result;
  double secs = static_cast<double>(elapsed) * 1e-9;
  result.requests_per_sec = (secs > 0) ? static_cast<double>(served) / secs : 0;
  result.interrupts = adapter.stats().interrupts;
  result.kicks = adapter.stats().kicks;
  return result;
}

}  // namespace cki
