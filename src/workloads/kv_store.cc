#include "src/workloads/kv_store.h"

#include <algorithm>
#include <vector>

#include "src/net/load_gen.h"
#include "src/net/virt_nic.h"
#include "src/net/vswitch.h"
#include "src/obs/trace_scope.h"

namespace cki {

namespace {

// Per-client connections are capped at what the server's accept loop keeps
// hot; beyond this, extra memtier clients share connections (and the
// amortization curve flattens, as in Figure 16).
constexpr int kMaxConns = 24;

SimNanos AppWorkPerRequest(KvKind kind) {
  switch (kind) {
    case KvKind::kMemcached:
      // Hash computation, item lookup/update, response assembly.
      return 1500;
    case KvKind::kRedis:
      // RESP parsing, dict ops, object management in one event loop.
      return 22000;
  }
  return 0;
}

}  // namespace

KvResult RunKvBenchmark(ContainerEngine& engine, const KvConfig& config) {
  SimContext& ctx = engine.machine().ctx();
  GuestKernel& kernel = engine.kernel();

  int conns = std::clamp(config.clients, 1, kMaxConns);
  // Responses are request/response packets: each sendto rings the TX
  // doorbell (virtio-net notifies per packet on an otherwise-empty queue).
  // RX interrupts are NAPI-coalesced: one interrupt wakes the event loop,
  // which drains every request the batch delivered.
  VSwitch sw(ctx);
  VirtNic nic(engine, sw, "kv0", NicConfig{.tx_batch = 1});
  LoadGenerator gen(ctx, sw, "memtier");
  kernel.set_net(&nic);

  const uint16_t service = (config.kind == KvKind::kMemcached) ? 11211 : 6379;
  SyscallResult lfd = engine.UserSyscall(
      SyscallRequest{.no = Sys::kListen, .arg0 = service, .arg1 = 128});
  std::vector<int> flows;
  std::vector<uint64_t> sockfds;
  for (int i = 0; i < conns; ++i) {
    int64_t flow = gen.Connect(nic.port(), service);
    SyscallResult sock = engine.UserSyscall(
        SyscallRequest{.no = Sys::kAccept, .arg0 = static_cast<uint64_t>(lfd.value)});
    flows.push_back(static_cast<int>(flow));
    sockfds.push_back(static_cast<uint64_t>(sock.value));
  }

  SimNanos start = ctx.clock().now();
  int remaining = config.total_requests;
  uint64_t served = 0;
  while (remaining > 0) {
    // One in-flight request per connection (closed loop).
    int in_flight = std::min(conns, remaining);
    for (int i = 0; i < in_flight; ++i) {
      gen.SendRequests(flows[static_cast<size_t>(i)], 1, config.value_bytes);
    }
    // Server event loop: drain everything the interrupt announced.
    while (true) {
      SyscallResult ready = engine.UserSyscall(SyscallRequest{.no = Sys::kEpollWait});
      if (!ready.ok() || ready.value == 0) {
        break;
      }
      for (int i = 0; i < in_flight; ++i) {
        SyscallResult got = engine.UserSyscall(SyscallRequest{
            .no = Sys::kRecvfrom, .arg0 = sockfds[static_cast<size_t>(i)],
            .arg1 = config.value_bytes});
        if (!got.ok()) {
          continue;
        }
        {
          // Store logic runs outside the syscall spans; give it its own
          // phase so observed root spans still sum to the measured time.
          TraceScope app_scope(ctx, engine.id(), "kv/app");
          ctx.ChargeWork(AppWorkPerRequest(config.kind));
        }
        engine.UserSyscall(SyscallRequest{.no = Sys::kSendto,
                                          .arg0 = sockfds[static_cast<size_t>(i)],
                                          .arg1 = config.value_bytes});
        served++;
      }
    }
    remaining -= in_flight;
  }
  SimNanos elapsed = ctx.clock().now() - start;
  if (ctx.obs().enabled()) {
    nic.ExportMetrics(ctx.obs().metrics());
    sw.ExportMetrics(ctx.obs().metrics());
  }
  kernel.set_net(nullptr);

  KvResult result;
  double secs = static_cast<double>(elapsed) * 1e-9;
  result.requests_per_sec = (secs > 0) ? static_cast<double>(served) / secs : 0;
  result.interrupts = nic.stats().interrupts;
  result.kicks = nic.stats().kicks;
  return result;
}

}  // namespace cki
