// TLB-miss-intensive applications for Table 4: GUPS (HPCC RandomAccess)
// and BTree lookups over a resident set far larger than TLB reach. These
// isolate the two-dimensional page-walk penalty of HVM: the data is warm
// (no faults), but nearly every access misses the TLB.
#ifndef SRC_WORKLOADS_TLB_APPS_H_
#define SRC_WORKLOADS_TLB_APPS_H_

#include "src/runtime/engine.h"

namespace cki {

struct TlbAppResult {
  SimNanos elapsed = 0;
  uint64_t tlb_misses = 0;
  uint64_t tlb_hits = 0;
};

// GUPS: `updates` random read-modify-writes over a `table_pages` region.
// The paper's table is 45 GB; the simulated region just needs to exceed TLB
// reach by the same margin (miss rate ~1).
TlbAppResult RunGups(ContainerEngine& engine, int updates = 200000, int table_pages = 65536,
                     uint64_t seed = 7);

// BTree lookup phase over a pre-built large tree: each lookup costs one
// descent (compute) and roughly one TLB miss.
TlbAppResult RunBtreeLookup(ContainerEngine& engine, int lookups = 150000,
                            int tree_pages = 65536, uint64_t seed = 8);

}  // namespace cki

#endif  // SRC_WORKLOADS_TLB_APPS_H_
