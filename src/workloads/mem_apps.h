// Page-fault-intensive application models (PARSEC / vmitosis-style) for
// Figures 4, 12 and 13.
//
// Each application is characterized by the memory-system signature that the
// paper's evaluation actually exercises:
//   fresh_pages      demand-faulted pages (allocation/initialization phase)
//   churn_ops        page-protection churn (mprotect-style PTE updates
//                    without faults: rebalancing, remapping, GC-like work)
//   warm_accesses    random accesses over the resident region (TLB traffic)
//   work_per_*       app compute attached to each op
//   base_compute_ns  compute independent of the memory system
// The relative weights were derived from the paper's per-app overheads
// (HVM-NST +28~226%, HVM-BM +2~21%, PVM +6~73%, CKI <3% vs RunC).
#ifndef SRC_WORKLOADS_MEM_APPS_H_
#define SRC_WORKLOADS_MEM_APPS_H_

#include <string_view>
#include <vector>

#include "src/runtime/engine.h"

namespace cki {

struct MemAppSpec {
  std::string_view name;
  int fresh_pages = 0;
  int churn_ops = 0;
  int warm_accesses = 0;
  SimNanos work_per_fault = 0;
  SimNanos work_per_access = 0;
  SimNanos base_compute_ns = 0;
};

// The six applications of Figure 4 / Figure 12.
const std::vector<MemAppSpec>& MemoryAppSuite();

// Runs one application inside the container; returns its simulated latency.
SimNanos RunMemApp(ContainerEngine& engine, const MemAppSpec& spec, uint64_t seed = 1);

// Figure 13a: BTree with a given lookup:insert ratio (total ops fixed).
// Inserts allocate fresh pages (faults + PTE churn); lookups only read.
SimNanos RunBtreeRatio(ContainerEngine& engine, double lookup_per_insert, int total_ops = 20000,
                       uint64_t seed = 2);

// Figure 13b: XSBench with a given particle count. Initialization faults a
// fixed grid; each particle performs warm lookups.
SimNanos RunXsbenchParticles(ContainerEngine& engine, int particles, int grid_pages = 1500,
                             uint64_t seed = 3);

}  // namespace cki

#endif  // SRC_WORKLOADS_MEM_APPS_H_
