#include "src/workloads/mem_apps.h"

#include "src/sim/rng.h"

namespace cki {

const std::vector<MemAppSpec>& MemoryAppSuite() {
  // fresh_pages sets the fault share (drives the HVM columns), churn_ops
  // sets the PTE-update share (drives the PVM column); warm accesses and
  // compute fill in the app's RunC baseline. See DESIGN.md.
  static const std::vector<MemAppSpec> suite = {
      // B-tree store: insert-heavy; node splits/rebalancing churn PTEs.
      {.name = "btree", .fresh_pages = 2000, .churn_ops = 8700, .warm_accesses = 200000,
       .work_per_fault = 150, .work_per_access = 230, .base_compute_ns = 1900000},
      // Monte-Carlo neutron transport: large fault-heavy init phase.
      {.name = "xsbench", .fresh_pages = 4000, .churn_ops = 2000, .warm_accesses = 150000,
       .work_per_fault = 120, .work_per_access = 300, .base_compute_ns = 5000000},
      // Cache-unfriendly graph annealing: warm random traffic dominates.
      {.name = "canneal", .fresh_pages = 1000, .churn_ops = 3850, .warm_accesses = 300000,
       .work_per_fault = 100, .work_per_access = 140, .base_compute_ns = 7600000},
      // Dedup: hash-table growth, many remaps/unmaps.
      {.name = "dedup", .fresh_pages = 2500, .churn_ops = 13300, .warm_accesses = 180000,
       .work_per_fault = 140, .work_per_access = 200, .base_compute_ns = 10600000},
      // Fluidanimate: compute bound, few faults.
      {.name = "fluidanimate", .fresh_pages = 600, .churn_ops = 1330, .warm_accesses = 250000,
       .work_per_fault = 100, .work_per_access = 180, .base_compute_ns = 8000000},
      // Frequent-itemset mining: moderate faults.
      {.name = "freqmine", .fresh_pages = 860, .churn_ops = 2050, .warm_accesses = 220000,
       .work_per_fault = 110, .work_per_access = 190, .base_compute_ns = 9300000},
  };
  return suite;
}

SimNanos RunMemApp(ContainerEngine& engine, const MemAppSpec& spec, uint64_t seed) {
  SimContext& ctx = engine.machine().ctx();
  Rng rng(seed);
  SimNanos start = ctx.clock().now();

  // Phase 1: allocation — every page demand-faults through the design's
  // full fault path.
  uint64_t bytes = static_cast<uint64_t>(spec.fresh_pages) * kPageSize;
  uint64_t base = engine.MmapAnon(bytes, /*populate=*/false);
  for (int i = 0; i < spec.fresh_pages; ++i) {
    engine.UserTouch(base + static_cast<uint64_t>(i) * kPageSize, /*write=*/true);
    ctx.ChargeWork(spec.work_per_fault);
  }

  // Phase 2: page-protection churn — PTE updates with no fault, taken
  // through the design's PTE-update mechanism (direct store / VM exit +
  // shadow emulation / KSM call).
  for (int i = 0; i < spec.churn_ops; ++i) {
    uint64_t page = base + (rng.NextBelow(static_cast<uint64_t>(spec.fresh_pages))) * kPageSize;
    uint64_t prot = (i % 2 == 0) ? kProtRead : (kProtRead | kProtWrite);
    engine.UserSyscall(SyscallRequest{
        .no = Sys::kMprotect, .arg0 = page, .arg1 = kPageSize, .arg2 = prot});
  }
  // Leave everything writable for phase 3.
  engine.UserSyscall(SyscallRequest{
      .no = Sys::kMprotect, .arg0 = base, .arg1 = bytes, .arg2 = kProtRead | kProtWrite});

  // Phase 3: warm random accesses (TLB traffic over the resident set).
  for (int i = 0; i < spec.warm_accesses; ++i) {
    uint64_t va = base + rng.NextBelow(bytes - 8);
    engine.UserTouch(va, /*write=*/false);
    ctx.ChargeWork(spec.work_per_access);
  }

  ctx.ChargeWork(spec.base_compute_ns);
  return ctx.clock().now() - start;
}

SimNanos RunBtreeRatio(ContainerEngine& engine, double lookup_per_insert, int total_ops,
                       uint64_t seed) {
  SimContext& ctx = engine.machine().ctx();
  Rng rng(seed);
  SimNanos start = ctx.clock().now();

  int inserts = static_cast<int>(total_ops / (1.0 + lookup_per_insert));
  if (inserts < 1) {
    inserts = 1;
  }
  int lookups = total_ops - inserts;

  // Grow-as-you-insert region: a node page holds several entries, so a
  // fresh page faults in once per few inserts; splits add PTE churn.
  constexpr int kEntriesPerPage = 4;
  int grow_pages = inserts / kEntriesPerPage + 1;
  uint64_t base = engine.MmapAnon(static_cast<uint64_t>(grow_pages) * kPageSize, false);
  for (int i = 0; i < inserts; ++i) {
    engine.UserTouch(base + static_cast<uint64_t>(i / kEntriesPerPage) * kPageSize, true);
    ctx.ChargeWork(650);  // key insertion + node write
    if (i % 16 == 0) {
      engine.UserSyscall(SyscallRequest{.no = Sys::kMprotect,
                                        .arg0 = base +
                                                static_cast<uint64_t>(i / kEntriesPerPage) *
                                                    kPageSize,
                                        .arg1 = kPageSize,
                                        .arg2 = kProtRead | kProtWrite});
    }
  }
  for (int i = 0; i < lookups; ++i) {
    uint64_t page = rng.NextBelow(static_cast<uint64_t>(grow_pages));
    engine.UserTouch(base + page * kPageSize, false);
    ctx.ChargeWork(480);  // tree descent
  }
  return ctx.clock().now() - start;
}

SimNanos RunXsbenchParticles(ContainerEngine& engine, int particles, int grid_pages,
                             uint64_t seed) {
  SimContext& ctx = engine.machine().ctx();
  Rng rng(seed);
  SimNanos start = ctx.clock().now();

  // Initialization: generate the nuclide grid (fault-heavy).
  uint64_t bytes = static_cast<uint64_t>(grid_pages) * kPageSize;
  uint64_t base = engine.MmapAnon(bytes, false);
  for (int i = 0; i < grid_pages; ++i) {
    engine.UserTouch(base + static_cast<uint64_t>(i) * kPageSize, true);
    ctx.ChargeWork(400);  // data generation
  }
  // Calculation: per-particle cross-section lookups over the warm grid.
  for (int p = 0; p < particles; ++p) {
    for (int l = 0; l < 16; ++l) {
      engine.UserTouch(base + rng.NextBelow(bytes - 8), false);
      ctx.ChargeWork(130);
    }
  }
  return ctx.clock().now() - start;
}

}  // namespace cki
