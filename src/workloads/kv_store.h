// In-memory key-value store servers (memcached- and Redis-like) driven by a
// memtier-style load generator for Figure 16 (and the redis/memcached
// columns of Figure 5).
//
// The server runs inside the container: it listens on the service port,
// accepts one connection per client, and per request epoll-waits, reads the
// request from its VirtNic-backed socket, executes the store logic, and
// writes the response. More clients keep more requests in flight, so
// doorbells and NAPI-coalesced interrupts are amortized — this is what
// bends the throughput curves of Figure 16.
#ifndef SRC_WORKLOADS_KV_STORE_H_
#define SRC_WORKLOADS_KV_STORE_H_

#include "src/runtime/engine.h"

namespace cki {

enum class KvKind : uint8_t {
  kMemcached,  // light per-request work: hash lookup + slab copy
  kRedis,      // heavier single-threaded core: protocol parse, dict, RESP
};

struct KvConfig {
  KvKind kind = KvKind::kMemcached;
  int clients = 16;           // memtier concurrency
  int total_requests = 4000;
  uint64_t value_bytes = 500;  // paper: 500-byte data, 1:1 read/write
};

struct KvResult {
  double requests_per_sec = 0;
  uint64_t interrupts = 0;
  uint64_t kicks = 0;
};

KvResult RunKvBenchmark(ContainerEngine& engine, const KvConfig& config);

}  // namespace cki

#endif  // SRC_WORKLOADS_KV_STORE_H_
