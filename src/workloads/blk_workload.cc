#include "src/workloads/blk_workload.h"

namespace cki {

BlkResult RunWalCommit(ContainerEngine& engine, int transactions, int wal_sectors) {
  SimContext& ctx = engine.machine().ctx();
  VirtioBlkDevice blk(engine, /*queue_depth=*/8);

  SimNanos start = ctx.clock().now();
  for (int txn = 0; txn < transactions; ++txn) {
    // Transaction body: syscall into the guest kernel + log record build.
    engine.UserSyscall(SyscallRequest{.no = Sys::kPwrite, .arg0 = 0, .arg1 = 512, .arg2 = 0});
    ctx.ChargeWork(2500);
    blk.SubmitWrite(static_cast<uint64_t>(txn) * 8, static_cast<uint64_t>(wal_sectors));
    blk.Flush();  // durability barrier: one full submit/complete round trip
    if (txn % 16 == 15) {
      blk.SubmitWrite(1'000'000 + static_cast<uint64_t>(txn), 32);
    }
  }
  blk.Poll();
  SimNanos elapsed = ctx.clock().now() - start;

  BlkResult result;
  double secs = static_cast<double>(elapsed) * 1e-9;
  result.ops_per_sec = secs > 0 ? static_cast<double>(transactions) / secs : 0;
  result.kicks = blk.stats().kicks;
  result.interrupts = blk.stats().interrupts;
  return result;
}

BlkResult RunSequentialScan(ContainerEngine& engine, int requests, int sectors) {
  SimContext& ctx = engine.machine().ctx();
  VirtioBlkDevice blk(engine, /*queue_depth=*/16);

  SimNanos start = ctx.clock().now();
  for (int i = 0; i < requests; ++i) {
    blk.SubmitRead(static_cast<uint64_t>(i) * static_cast<uint64_t>(sectors),
                   static_cast<uint64_t>(sectors));
    ctx.ChargeWork(1500);  // per-extent processing in the guest
  }
  blk.Poll();
  SimNanos elapsed = ctx.clock().now() - start;

  BlkResult result;
  double secs = static_cast<double>(elapsed) * 1e-9;
  result.ops_per_sec = secs > 0 ? static_cast<double>(requests) / secs : 0;
  result.kicks = blk.stats().kicks;
  result.interrupts = blk.stats().interrupts;
  return result;
}

}  // namespace cki
