// lmbench micro-operation suite (Figure 11): read, write, stat, prot fault,
// page fault, fork/exit, fork/execve, context switch (2p/0k), pipe latency,
// AF_UNIX latency. Each op runs through the container's full syscall /
// fault / scheduling mechanisms.
#ifndef SRC_WORKLOADS_LMBENCH_H_
#define SRC_WORKLOADS_LMBENCH_H_

#include <string_view>
#include <vector>

#include "src/runtime/engine.h"

namespace cki {

enum class LmbenchOp : uint8_t {
  kRead = 0,
  kWrite,
  kStat,
  kProtFault,
  kPageFault,
  kForkExit,
  kForkExecve,
  kCtxSwitch2p,
  kPipe,
  kAfUnix,
  kCount,
};

std::string_view LmbenchOpName(LmbenchOp op);

// All ops, in figure order.
const std::vector<LmbenchOp>& LmbenchSuite();

// Average latency (ns) of one operation.
SimNanos RunLmbenchOp(ContainerEngine& engine, LmbenchOp op);

}  // namespace cki

#endif  // SRC_WORKLOADS_LMBENCH_H_
