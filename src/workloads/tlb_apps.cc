#include "src/workloads/tlb_apps.h"

#include "src/sim/rng.h"

namespace cki {

namespace {

TlbAppResult RunRandomAccess(ContainerEngine& engine, int ops, int table_pages, bool write,
                             SimNanos work_per_op, uint64_t seed) {
  SimContext& ctx = engine.machine().ctx();
  Rng rng(seed);

  // Build phase (not measured): populate the table so the measured phase
  // sees no faults — only translation traffic.
  uint64_t bytes = static_cast<uint64_t>(table_pages) * kPageSize;
  uint64_t base = engine.MmapAnon(bytes, /*populate=*/true);
  // Warm pass (untimed): faults, EPT backing and shadow entries all settle
  // so the measured phase isolates translation costs.
  for (int i = 0; i < table_pages; ++i) {
    engine.UserTouch(base + static_cast<uint64_t>(i) * kPageSize, write);
  }

  Tlb& tlb = engine.machine().cpu().tlb();
  tlb.ResetCounters();
  SimNanos start = ctx.clock().now();
  for (int i = 0; i < ops; ++i) {
    engine.UserTouch(base + rng.NextBelow(bytes - 8), write);
    ctx.ChargeWork(work_per_op);
  }
  TlbAppResult result;
  result.elapsed = ctx.clock().now() - start;
  result.tlb_misses = tlb.misses();
  result.tlb_hits = tlb.hits();
  return result;
}

}  // namespace

TlbAppResult RunGups(ContainerEngine& engine, int updates, int table_pages, uint64_t seed) {
  // ~81 ns of update work per access; the rest is the page walk. Calibrated
  // so RunC vs HVM reproduces the 54.9 s vs 67.8 s gap of Table 4.
  return RunRandomAccess(engine, updates, table_pages, /*write=*/true, 81, seed);
}

TlbAppResult RunBtreeLookup(ContainerEngine& engine, int lookups, int tree_pages, uint64_t seed) {
  // A descent costs ~300 ns of compute and roughly one terminal TLB miss.
  return RunRandomAccess(engine, lookups, tree_pages, /*write=*/false, 300, seed);
}

}  // namespace cki
