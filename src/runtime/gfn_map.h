// Direct-indexed guest-frame map (DESIGN.md §14).
//
// The engines' gPA->hPA backing tables key on guest frame numbers that a
// bump allocator hands out densely from a per-region base, so a flat
// vector indexed by (gfn - base) replaces the former hash maps: lookups on
// the fault path become one bounds check plus one load, and there is no
// hash-table iteration order anywhere a sweep could accidentally depend
// on. Host frame addresses are never 0 (the frame range starts high), so
// 0 doubles as the "absent" sentinel.
#ifndef SRC_RUNTIME_GFN_MAP_H_
#define SRC_RUNTIME_GFN_MAP_H_

#include <cstdint>
#include <vector>

namespace cki {

class GfnMap {
 public:
  explicit GfnMap(uint64_t base_gfn = 0) : base_(base_gfn) {}

  // Host address backing `gfn`; 0 when absent.
  uint64_t Get(uint64_t gfn) const {
    uint64_t idx = gfn - base_;
    return idx < slots_.size() ? slots_[idx] : 0;
  }

  void Set(uint64_t gfn, uint64_t hpa) {
    uint64_t idx = gfn - base_;
    if (idx >= slots_.size()) {
      uint64_t grown = slots_.size() * 2;
      slots_.resize(idx + 1 > grown ? idx + 1 : grown, 0);
    }
    slots_[idx] = hpa;
  }

  void Erase(uint64_t gfn) {
    uint64_t idx = gfn - base_;
    if (idx < slots_.size()) {
      slots_[idx] = 0;
    }
  }

  void Clear() { slots_.clear(); }

 private:
  uint64_t base_;
  std::vector<uint64_t> slots_;
};

}  // namespace cki

#endif  // SRC_RUNTIME_GFN_MAP_H_
