#include "src/runtime/runtime.h"

#include "src/cki/cki_engine.h"
#include "src/runtime/native_engine.h"
#include "src/virt/gvisor_engine.h"
#include "src/virt/hvm_engine.h"
#include "src/virt/libos_engine.h"
#include "src/virt/pvm_engine.h"

namespace cki {

std::string_view RuntimeKindName(RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kRunc:
      return "RunC";
    case RuntimeKind::kHvm:
      return "HVM";
    case RuntimeKind::kPvm:
      return "PVM";
    case RuntimeKind::kCki:
      return "CKI";
    case RuntimeKind::kCkiNoOpt2:
      return "CKI-wo-OPT2";
    case RuntimeKind::kCkiNoOpt3:
      return "CKI-wo-OPT3";
    case RuntimeKind::kGvisor:
      return "gVisor";
    case RuntimeKind::kLibOs:
      return "LibOS";
  }
  return "unknown";
}

MachineConfig MachineConfigFor(RuntimeKind kind, Deployment deployment, const CostModel& cost) {
  MachineConfig config;
  config.cost = cost;
  config.deployment = deployment;
  switch (kind) {
    case RuntimeKind::kCki:
    case RuntimeKind::kCkiNoOpt2:
    case RuntimeKind::kCkiNoOpt3:
      config.extensions = CkiHwExtensions::All();
      break;
    default:
      config.extensions = CkiHwExtensions::None();
      break;
  }
  return config;
}

std::unique_ptr<ContainerEngine> MakeEngine(Machine& machine, RuntimeKind kind) {
  switch (kind) {
    case RuntimeKind::kRunc:
      return std::make_unique<NativeEngine>(machine);
    case RuntimeKind::kHvm:
      return std::make_unique<HvmEngine>(machine);
    case RuntimeKind::kPvm:
      return std::make_unique<PvmEngine>(machine);
    case RuntimeKind::kCki:
      return std::make_unique<CkiEngine>(machine);
    case RuntimeKind::kCkiNoOpt2:
      return std::make_unique<CkiEngine>(machine, CkiAblation::kNoOpt2);
    case RuntimeKind::kCkiNoOpt3:
      return std::make_unique<CkiEngine>(machine, CkiAblation::kNoOpt3);
    case RuntimeKind::kGvisor:
      return std::make_unique<GvisorEngine>(machine);
    case RuntimeKind::kLibOs:
      return std::make_unique<LibOsEngine>(machine);
  }
  return nullptr;
}

Testbed::Testbed(RuntimeKind kind, Deployment deployment, const CostModel& cost) : kind_(kind) {
  machine_ = std::make_unique<Machine>(MachineConfigFor(kind, deployment, cost));
  engine_ = MakeEngine(*machine_, kind);
  engine_->Boot();
  // Benchmarks measure from a clean clock after boot.
  machine_->ctx().clock().Reset();
  machine_->ctx().trace().Clear();
}

}  // namespace cki
