#include "src/runtime/native_engine.h"

#include "src/obs/trace_scope.h"

namespace cki {

NativeEngine::NativeEngine(Machine& machine) : ContainerEngine(machine) {
  AllocPcids(256);
  fast_touch_ = true;  // DoUserTouch prologue is the canonical hit sequence
}

SyscallResult NativeEngine::DoUserSyscall(const SyscallRequest& req) {
  // Native path: syscall -> ring-0 handler -> sysret. 90 ns plus handler.
  SyscallScope obs_scope(ctx_, id_, SysName(req.no));
  Cpu& cpu = machine_.cpu();
  ctx_.Charge(ctx_.cost().syscall_entry, PathEvent::kSyscallEntry);
  cpu.SyscallEntry();
  ctx_.ChargeWork(ctx_.cost().syscall_handler_min);
  SyscallResult result = kernel_->HandleSyscall(req);
  ctx_.Charge(ctx_.cost().sysret_exit, PathEvent::kSyscallExit);
  cpu.Sysret(/*requested_if=*/true);
  return result;
}

TouchResult NativeEngine::DoUserTouch(uint64_t va, bool write) {
  TraceScope obs_scope(ctx_, id_, "touch");
  Cpu& cpu = machine_.cpu();
  cpu.set_cpl(Cpl::kUser);
  AccessIntent intent = write ? AccessIntent::Write() : AccessIntent::Read();
  for (int attempt = 0; attempt < 4; ++attempt) {
    Fault f = cpu.Access(va, intent);
    if (!f) {
      return TouchResult::kOk;
    }
    if (f.type != FaultType::kPageNotPresent && f.type != FaultType::kPageProtection) {
      return TouchResult::kSegv;
    }
    // Native fault: delivery straight into the kernel handler, iret back.
    TraceScope fault_scope(ctx_, "fault");
    ctx_.Charge(ctx_.cost().fault_delivery, PathEvent::kPageFault);
    cpu.set_cpl(Cpl::kKernel);
    bool resolved = kernel_->HandlePageFault(va, write);
    ctx_.ChargeWork(ctx_.cost().iret_native);
    cpu.set_cpl(Cpl::kUser);
    if (!resolved) {
      return TouchResult::kSegv;
    }
  }
  return TouchResult::kSegv;
}

uint64_t NativeEngine::DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  // No hypervisor below an OS-level container; the operation is a no-op.
  (void)op;
  (void)a0;
  (void)a1;
  return 0;
}

SimNanos NativeEngine::KickCost() const {
  // The "device" is the host's own network stack: a function call.
  return 0;
}

SimNanos NativeEngine::DeviceInterruptCost() const {
  return ctx_.cost().hw_interrupt_delivery;
}

uint64_t NativeEngine::ReadPte(uint64_t pte_pa) { return machine_.mem().ReadU64(pte_pa); }

bool NativeEngine::StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) {
  (void)level;
  (void)va;
  ctx_.Charge(ctx_.cost().pte_write_native, PathEvent::kPteUpdate);
  machine_.mem().WriteU64(pte_pa, value);
  return true;
}

uint64_t NativeEngine::AllocDataPage() { return machine_.frames().AllocFrame(id_); }

void NativeEngine::FreeDataPage(uint64_t pa) {
  if (ReleaseSharedDataFrame(pa)) {
    return;  // clone-shared frame: the allocator kept it for siblings
  }
  machine_.frames().FreeFrame(pa);
}

uint64_t NativeEngine::AllocPtp(int level) {
  (void)level;
  return machine_.frames().AllocFrame(id_);
}

void NativeEngine::FreePtp(uint64_t pa, int level) {
  (void)level;
  machine_.frames().FreeFrame(pa);
}

uint64_t NativeEngine::Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  // No hypervisor: the guest-kernel-side request is a no-op too.
  (void)op;
  (void)a0;
  (void)a1;
  return 0;
}

void NativeEngine::LoadAddressSpace(uint64_t root_pa, uint16_t asid) {
  ctx_.Charge(ctx_.cost().cr3_write_raw, PathEvent::kCr3Switch);
  machine_.cpu().LoadCr3(MakeCr3(root_pa, static_cast<uint16_t>(pcid_base_ + (asid & 0xFF))));
}

void NativeEngine::InvalidatePage(uint64_t va) { machine_.cpu().Invlpg(va); }

}  // namespace cki
