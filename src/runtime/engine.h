// Base class for container engines. An engine binds a model guest kernel to
// one of the four isolation mechanisms (RunC, HVM, PVM, CKI) on a shared
// Machine, implements the EnginePort seam with that design's mechanism and
// costs, and exposes the user-visible operations the workloads drive.
//
// Every engine is also a fault domain: the public entry points are
// non-virtual wrappers that refuse work once the container has been killed
// and convert the ContainerKilled unwind of this engine's own faults into
// an error return — so a fault in one container can never take down the
// caller, the Machine, or a neighbor engine.
#ifndef SRC_RUNTIME_ENGINE_H_
#define SRC_RUNTIME_ENGINE_H_

#include <memory>
#include <string_view>

#include "src/guest/engine_port.h"
#include "src/guest/guest_kernel.h"
#include "src/host/machine.h"

namespace cki {

class FaultInjector;
class SnapReader;
class SnapWriter;

enum class TouchResult : uint8_t { kOk, kSegv, kKilled };

// The evaluated container designs (lives here so engines can name their
// own kind; runtime.h builds its factory over the same enum).
enum class RuntimeKind : uint8_t {
  kRunc = 0,    // OS-level container
  kHvm,         // Kata-style, hardware virtualization
  kPvm,         // software virtualization (shadow paging)
  kCki,         // this paper
  kCkiNoOpt2,   // ablation: + page-table switches on syscalls
  kCkiNoOpt3,   // ablation: sysret/swapgs blocked
  kGvisor,      // userspace kernel (Systrap redirection)
  kLibOs,       // process-like library OS (no U/K isolation)
};

class ContainerEngine : public EnginePort {
 public:
  explicit ContainerEngine(Machine& machine)
      : machine_(machine), ctx_(machine.ctx()), id_(machine.AllocOwnerId()) {}
  ~ContainerEngine() override;

  ContainerEngine(const ContainerEngine&) = delete;
  ContainerEngine& operator=(const ContainerEngine&) = delete;

  virtual std::string_view name() const = 0;

  // Which evaluated design this engine implements (checkpoint streams
  // record it so Restore can rebuild the right engine anywhere).
  virtual RuntimeKind kind() const = 0;

  // Boots the container: registers its fault domain, then engine-specific
  // setup, then the guest kernel and its init process.
  virtual void Boot();

  GuestKernel& kernel() { return *kernel_; }
  Machine& machine() { return machine_; }
  OwnerId id() const { return id_; }
  bool nested() const { return machine_.nested(); }

  // False once this container's fault domain has killed it.
  bool alive() const { return !killed_; }
  // Base/size of this engine's hardware PCID range (TLB-isolation tests
  // and the clone path's cross-address-space shootdowns).
  uint16_t pcid_base() const { return pcid_base_; }
  uint16_t pcid_count() const { return pcid_count_; }

  // Arms deterministic fault injection on this engine's guest-facing
  // paths (PKS violations on touches; engines add their own sites).
  void set_injector(FaultInjector* injector) { injector_ = injector; }

  // Kills this container in place: engine hook, guest process teardown,
  // PCID-range TLB flush, frame reclamation. Idempotent; never throws.
  // Invoked by the fault domain handler and directly by chaos drivers.
  void KillFromFault();

  // --- user-visible operations (what workloads drive) -----------------------
  // A syscall from the current container process, through the design's full
  // entry/exit path. Returns kEKILLED once the container is dead.
  SyscallResult UserSyscall(const SyscallRequest& req);

  // A user-mode memory access, through the MMU; faults are carried through
  // the design's full delivery/handling/return path.
  //
  // Clean-hit fast path (DESIGN.md §14): engines whose DoUserTouch
  // prologue is exactly {touch scope, cpl := user, Access} opt in via
  // fast_touch_. For those, a committed TLB hit with no fault is
  // bit-identical to the full path whenever observability is disabled
  // (the touch span is the only thing the full path would add, and a
  // disabled hub records nothing). A live injector, a killed container,
  // an enabled hub, a miss, or any fault falls through to the full
  // wrapper — which re-runs the access from scratch, side effects
  // untouched (TryUserTouchFast commits nothing on failure).
  TouchResult UserTouch(uint64_t va, bool write) {
    if (fast_touch_ && !killed_ && injector_ == nullptr && !ctx_.obs().enabled()) {
      Cpu& cpu = machine_.cpu();
      cpu.set_cpl(Cpl::kUser);
      if (cpu.TryUserTouchFast(va, write ? AccessIntent::Write() : AccessIntent::Read())) {
        return TouchResult::kOk;
      }
    }
    return UserTouchSlow(va, write);
  }

  // A guest-kernel-level request to the host (the "empty hypercall" of the
  // microbenchmarks). RunC has no hypervisor, so its engine returns 0 cost.
  uint64_t GuestHypercall(HypercallOp op, uint64_t a0 = 0, uint64_t a1 = 0);

  // --- virtio path primitives (I/O workloads) -------------------------------
  // Cost of one queue notification from guest to host (doorbell).
  virtual SimNanos KickCost() const = 0;
  // Cost of delivering one device interrupt to the guest (host -> guest).
  virtual SimNanos DeviceInterruptCost() const = 0;
  // Cost of acknowledging a device interrupt (EOI / queue-unmask write)
  // once the guest drains the RX ring. For virtualized designs the write
  // traps like a doorbell; RunC overrides this to 0.
  virtual SimNanos InterruptAckCost() const { return KickCost(); }
  // Extra per-request device-emulation work of this design's virtio stack.
  virtual SimNanos VirtioEmulationExtra() const { return 0; }

  // Convenience: allocate + populate an anonymous user mapping and return
  // its base VA (drives mmap through the syscall path).
  uint64_t MmapAnon(uint64_t bytes, bool populate);

  // --- snapshot hooks (src/snap; DESIGN.md §10) -------------------------
  // Engine construction parameters, captured into / applied from the
  // stream's config blob. Apply runs on a fresh engine BEFORE Boot().
  virtual void SnapCaptureConfig(SnapWriter& w) const { (void)w; }
  virtual void SnapApplyConfig(SnapReader& r) { (void)r; }
  // Mutable engine state (virtual IF, pending virqs, ...), captured after
  // the kernel section and applied after the kernel has been rebuilt.
  virtual void SnapCaptureState(SnapWriter& w) const { (void)w; }
  virtual void SnapApplyState(SnapReader& r) { (void)r; }

  // Host PA backing the guest-visible `pa`; identity for designs without
  // a second translation stage. kNoPage when no backing exists yet (lazy
  // HVM/PVM pages — their content is all-zero by construction).
  virtual uint64_t HostFrameFor(uint64_t pa) const { return pa; }
  // Like HostFrameFor but materializes missing backing (restore fill-in).
  virtual uint64_t EnsureHostFrame(uint64_t pa) { return pa; }

  // Clone support: registers this engine as a sharer of `host_pa` and
  // returns the guest-visible PA it must be mapped under. HVM/PVM mint a
  // fresh gPA wired to the shared host frame.
  virtual uint64_t AdoptSharedFrame(uint64_t host_pa);

  // --- EnginePort (CoW sharing; see engine_port.h) ----------------------
  bool FrameShared(uint64_t pa) const override;
  void CowBreakShootdown(uint64_t va) override;

 protected:
  // First line of every engine's FreeDataPage: true when `pa` was a
  // cross-container shared frame whose release the allocator handled
  // (share dropped or primacy transferred) — the engine must NOT recycle
  // it into any free list.
  bool ReleaseSharedDataFrame(uint64_t pa);

  // Design-specific implementations behind the fault-domain wrappers.
  virtual SyscallResult DoUserSyscall(const SyscallRequest& req) = 0;
  virtual TouchResult DoUserTouch(uint64_t va, bool write) = 0;
  virtual uint64_t DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) = 0;

  // Engine-specific teardown run first on a kill (drop monitor state,
  // shadow roots, ...). Must not call back into guest code.
  virtual void OnKill() {}

  // Claims this engine's hardware PCID range (recorded so the kill path
  // can flush exactly this container's TLB contexts).
  void AllocPcids(uint16_t count) {
    pcid_base_ = machine_.AllocPcidRange(count);
    pcid_count_ = count;
  }

  Machine& machine_;
  SimContext& ctx_;
  OwnerId id_;
  std::unique_ptr<GuestKernel> kernel_;
  uint16_t pcid_base_ = 0;
  uint16_t pcid_count_ = 0;
  FaultInjector* injector_ = nullptr;
  // Opt-in for the clean-hit touch fast path (see UserTouch). An engine
  // may set this ONLY if its DoUserTouch does nothing on a no-fault hit
  // beyond the canonical {touch scope, cpl := user, Access} sequence.
  bool fast_touch_ = false;

 private:
  // The full fault-domain path: injector hook, DoUserTouch dispatch,
  // ContainerKilled unwind. Every touch took this route before the
  // fast path existed; misses and faults still do.
  TouchResult UserTouchSlow(uint64_t va, bool write);

  bool killed_ = false;
};

}  // namespace cki

#endif  // SRC_RUNTIME_ENGINE_H_
