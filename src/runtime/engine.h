// Base class for container engines. An engine binds a model guest kernel to
// one of the four isolation mechanisms (RunC, HVM, PVM, CKI) on a shared
// Machine, implements the EnginePort seam with that design's mechanism and
// costs, and exposes the user-visible operations the workloads drive.
#ifndef SRC_RUNTIME_ENGINE_H_
#define SRC_RUNTIME_ENGINE_H_

#include <memory>
#include <string_view>

#include "src/guest/engine_port.h"
#include "src/guest/guest_kernel.h"
#include "src/host/machine.h"

namespace cki {

enum class TouchResult : uint8_t { kOk, kSegv };

class ContainerEngine : public EnginePort {
 public:
  explicit ContainerEngine(Machine& machine)
      : machine_(machine), ctx_(machine.ctx()), id_(machine.AllocOwnerId()) {}
  ~ContainerEngine() override = default;

  ContainerEngine(const ContainerEngine&) = delete;
  ContainerEngine& operator=(const ContainerEngine&) = delete;

  virtual std::string_view name() const = 0;

  // Boots the container: engine-specific setup, then the guest kernel and
  // its init process.
  virtual void Boot();

  GuestKernel& kernel() { return *kernel_; }
  Machine& machine() { return machine_; }
  OwnerId id() const { return id_; }
  bool nested() const { return machine_.nested(); }

  // --- user-visible operations (what workloads drive) -----------------------
  // A syscall from the current container process, through the design's full
  // entry/exit path.
  virtual SyscallResult UserSyscall(const SyscallRequest& req) = 0;

  // A user-mode memory access, through the MMU; faults are carried through
  // the design's full delivery/handling/return path.
  virtual TouchResult UserTouch(uint64_t va, bool write) = 0;

  // A guest-kernel-level request to the host (the "empty hypercall" of the
  // microbenchmarks). RunC has no hypervisor, so its engine returns 0 cost.
  virtual uint64_t GuestHypercall(HypercallOp op, uint64_t a0 = 0, uint64_t a1 = 0) = 0;

  // --- virtio path primitives (I/O workloads) -------------------------------
  // Cost of one queue notification from guest to host (doorbell).
  virtual SimNanos KickCost() const = 0;
  // Cost of delivering one device interrupt to the guest (host -> guest).
  virtual SimNanos DeviceInterruptCost() const = 0;
  // Cost of acknowledging a device interrupt (EOI / queue-unmask write)
  // once the guest drains the RX ring. For virtualized designs the write
  // traps like a doorbell; RunC overrides this to 0.
  virtual SimNanos InterruptAckCost() const { return KickCost(); }
  // Extra per-request device-emulation work of this design's virtio stack.
  virtual SimNanos VirtioEmulationExtra() const { return 0; }

  // Convenience: allocate + populate an anonymous user mapping and return
  // its base VA (drives mmap through the syscall path).
  uint64_t MmapAnon(uint64_t bytes, bool populate);

 protected:
  Machine& machine_;
  SimContext& ctx_;
  OwnerId id_;
  std::unique_ptr<GuestKernel> kernel_;
};

}  // namespace cki

#endif  // SRC_RUNTIME_ENGINE_H_
