// RunC: the OS-level container baseline. Container processes are ordinary
// host processes — syscalls enter the (host) kernel natively, page faults
// are handled natively, page tables are written directly, and there is no
// hypervisor underneath.
#ifndef SRC_RUNTIME_NATIVE_ENGINE_H_
#define SRC_RUNTIME_NATIVE_ENGINE_H_

#include "src/runtime/engine.h"

namespace cki {

class NativeEngine : public ContainerEngine {
 public:
  explicit NativeEngine(Machine& machine);

  std::string_view name() const override { return "RunC"; }
  RuntimeKind kind() const override { return RuntimeKind::kRunc; }

  SimNanos KickCost() const override;
  SimNanos DeviceInterruptCost() const override;
  SimNanos InterruptAckCost() const override { return 0; }

  // --- EnginePort ------------------------------------------------------
  uint64_t ReadPte(uint64_t pte_pa) override;
  bool StorePte(uint64_t pte_pa, uint64_t value, int level, uint64_t va) override;
  uint64_t AllocDataPage() override;
  void FreeDataPage(uint64_t pa) override;
  uint64_t AllocPtp(int level) override;
  void FreePtp(uint64_t pa, int level) override;
  uint64_t Hypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
  void LoadAddressSpace(uint64_t root_pa, uint16_t asid) override;
  void InvalidatePage(uint64_t va) override;

 protected:
  SyscallResult DoUserSyscall(const SyscallRequest& req) override;
  TouchResult DoUserTouch(uint64_t va, bool write) override;
  uint64_t DoGuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) override;
};

}  // namespace cki

#endif  // SRC_RUNTIME_NATIVE_ENGINE_H_
