#include "src/runtime/engine.h"

namespace cki {

void ContainerEngine::Boot() {
  kernel_ = std::make_unique<GuestKernel>(ctx_, *this);
  kernel_->CreateInitProcess();
}

uint64_t ContainerEngine::MmapAnon(uint64_t bytes, bool populate) {
  SyscallResult r = UserSyscall(SyscallRequest{.no = Sys::kMmap,
                                               .arg0 = bytes,
                                               .arg1 = kProtRead | kProtWrite,
                                               .arg2 = populate ? 1u : 0u});
  return r.ok() ? static_cast<uint64_t>(r.value) : 0;
}

}  // namespace cki
