#include "src/runtime/engine.h"

#include <string>

#include "src/fault/fault_injector.h"
#include "src/obs/trace_scope.h"

namespace cki {

ContainerEngine::~ContainerEngine() {
  machine_.faults().UnregisterDomain(id_);
  // Teardown leak check: frames still owned at destruction are reported
  // as a metric, never an abort (the machine reclaims them anyway).
  // Shared (clone) holdings count too — a destroyed clone that never ran
  // its kill sweep would otherwise pin siblings' frames invisibly.
  uint64_t leaked =
      machine_.frames().OwnedFrames(id_) + machine_.frames().SharedFrames(id_);
  if (leaked > 0) {
    machine_.faults().NoteLeak(id_, leaked);
  }
}

void ContainerEngine::Boot() {
  machine_.faults().RegisterDomain(id_, std::string(name()),
                                   [this] { KillFromFault(); });
  kernel_ = std::make_unique<GuestKernel>(ctx_, *this);
  kernel_->CreateInitProcess();
}

void ContainerEngine::KillFromFault() {
  if (killed_) {
    return;
  }
  killed_ = true;
  {
    TraceScope kill_scope(ctx_, id_, "fault/kill");
    OnKill();
    if (kernel_) {
      kernel_->KillAllProcesses();
    }
    ctx_.ChargeWork(ctx_.cost().fault_kill_fixed);
  }
  TraceScope reclaim_scope(ctx_, id_, "fault/reclaim");
  machine_.cpu().tlb().InvalidatePcidRange(pcid_base_, pcid_count_);
  uint64_t reclaimed = machine_.frames().ReclaimOwner(id_);
  machine_.faults().NoteReclaim(id_, reclaimed);
  ctx_.ChargeWork(ctx_.cost().fault_reclaim_per_frame *
                  static_cast<SimNanos>(reclaimed));
}

SyscallResult ContainerEngine::UserSyscall(const SyscallRequest& req) {
  if (killed_) {
    return SyscallResult{kEKILLED};
  }
  try {
    return DoUserSyscall(req);
  } catch (const ContainerKilled& killed) {
    if (killed.owner() != id_) {
      throw;  // mis-routed kill: a bug, not a guest fault
    }
    return SyscallResult{kEKILLED};
  }
}

TouchResult ContainerEngine::UserTouchSlow(uint64_t va, bool write) {
  if (killed_) {
    return TouchResult::kKilled;
  }
  try {
    if (injector_ != nullptr && injector_->InjectPksViolation()) {
      machine_.faults().Raise(
          FaultReport{FaultKind::kPksTrap, id_, va});
    }
    return DoUserTouch(va, write);
  } catch (const ContainerKilled& killed) {
    if (killed.owner() != id_) {
      throw;
    }
    return TouchResult::kKilled;
  }
}

uint64_t ContainerEngine::GuestHypercall(HypercallOp op, uint64_t a0, uint64_t a1) {
  if (killed_) {
    return 0;
  }
  try {
    return DoGuestHypercall(op, a0, a1);
  } catch (const ContainerKilled& killed) {
    if (killed.owner() != id_) {
      throw;
    }
    return 0;
  }
}

uint64_t ContainerEngine::AdoptSharedFrame(uint64_t host_pa) {
  // Identity-mapped designs map the shared host frame directly; the share
  // record is what keeps sibling kills from freeing it underneath us.
  machine_.frames().ShareFrame(host_pa, id_);
  return host_pa;
}

bool ContainerEngine::FrameShared(uint64_t pa) const {
  uint64_t hpa = HostFrameFor(pa);
  if (hpa == kNoPage) {
    return false;
  }
  return machine_.frames().IsShared(hpa);
}

void ContainerEngine::CowBreakShootdown(uint64_t va) {
  // Breaking cross-container sharing rewrites a PTE that any PCID of this
  // container may have cached: IPI-priced shootdown over the whole range.
  ctx_.ChargeWork(ctx_.cost().cow_break_ipi);
  machine_.cpu().tlb().InvalidatePagePcidRange(pcid_base_, pcid_count_, va);
}

bool ContainerEngine::ReleaseSharedDataFrame(uint64_t pa) {
  uint64_t hpa = HostFrameFor(pa);
  if (hpa == kNoPage) {
    return false;
  }
  return machine_.frames().ReleaseShare(hpa, id_);
}

uint64_t ContainerEngine::MmapAnon(uint64_t bytes, bool populate) {
  SyscallResult r = UserSyscall(SyscallRequest{.no = Sys::kMmap,
                                               .arg0 = bytes,
                                               .arg1 = kProtRead | kProtWrite,
                                               .arg2 = populate ? 1u : 0u});
  return r.ok() ? static_cast<uint64_t>(r.value) : 0;
}

}  // namespace cki
