// Factory for booted container runtimes: pairs a Machine (with the right
// hardware extensions) with a container engine, mirroring the paper's
// evaluated configurations.
#ifndef SRC_RUNTIME_RUNTIME_H_
#define SRC_RUNTIME_RUNTIME_H_

#include <memory>
#include <string_view>
#include <vector>

#include "src/runtime/engine.h"

namespace cki {

// RuntimeKind itself lives in engine.h (engines name their own kind;
// snapshot streams record it).
std::string_view RuntimeKindName(RuntimeKind kind);

// A booted single-container testbed: machine + engine, ready for workloads.
class Testbed {
 public:
  Testbed(RuntimeKind kind, Deployment deployment,
          const CostModel& cost = CostModel::Calibrated());

  ContainerEngine& engine() { return *engine_; }
  Machine& machine() { return *machine_; }
  SimContext& ctx() { return machine_->ctx(); }
  RuntimeKind kind() const { return kind_; }

  // Simulated time consumed by `fn` (single run).
  template <typename Fn>
  SimNanos Measure(Fn&& fn) {
    SimNanos before = ctx().clock().now();
    fn();
    return ctx().clock().now() - before;
  }

 private:
  RuntimeKind kind_;
  std::unique_ptr<Machine> machine_;
  std::unique_ptr<ContainerEngine> engine_;
};

// Creates an engine of `kind` on an existing machine (multi-container
// setups). The machine must have the CKI extensions for CKI kinds.
std::unique_ptr<ContainerEngine> MakeEngine(Machine& machine, RuntimeKind kind);

// The machine configuration each runtime expects.
MachineConfig MachineConfigFor(RuntimeKind kind, Deployment deployment,
                               const CostModel& cost = CostModel::Calibrated());

}  // namespace cki

#endif  // SRC_RUNTIME_RUNTIME_H_
