// Result tables for the benchmark harness: aligned text output plus
// normalization helpers matching how the paper presents each figure
// (latency normalized to the slowest/baseline, throughput normalized to
// the best).
#ifndef SRC_METRICS_REPORT_H_
#define SRC_METRICS_REPORT_H_

#include <iosfwd>
#include <string>
#include <vector>

namespace cki {

// How MergeRows combines two cells that share a row label. kMean is the
// weighted mean: each row carries a merge weight (how many source rows it
// already aggregates), so merging shard tables of different sizes gives
// the same mean a single flat table would.
enum class MergeOp : uint8_t { kSum, kMin, kMax, kMean };

class ReportTable {
 public:
  ReportTable(std::string title, std::string row_header, std::vector<std::string> columns);

  // `weight` seeds the row's merge weight for MergeOp::kMean (e.g. the
  // number of samples the row's values average over).
  void AddRow(const std::string& label, std::vector<double> values, uint64_t weight = 1);

  // Folds `other` into this table cell-wise: rows whose label already
  // exists are combined value-by-value with `op`; new labels are appended
  // in `other`'s row order. Tables must share the column layout (checked
  // by count). Cluster runs call this once per shard in shard-index
  // order, so the merged table is bit-identical at any thread count.
  // Every merge accumulates row weights; kMean uses them to average.
  void MergeRows(const ReportTable& other, MergeOp op = MergeOp::kSum);

  // Returns a copy whose values are divided column-wise by the values of
  // row `baseline_label`. With `invert`, the ratio is baseline/value
  // (throughput-style: higher is better).
  ReportTable NormalizedTo(const std::string& baseline_label, bool invert = false) const;

  // Prints an aligned table. `precision` controls fractional digits.
  void Print(std::ostream& os, int precision = 1) const;

  // Emits `title.csv`-style lines (comma separated) for plotting.
  void PrintCsv(std::ostream& os) const;

  // Emits the same row/column model as one JSON object:
  //   {"title":..,"row_header":..,"columns":[..],
  //    "rows":[{"label":..,"values":[..]},..]}
  void PrintJson(std::ostream& os) const;

  const std::vector<std::string>& columns() const { return columns_; }
  double ValueAt(const std::string& row_label, size_t col) const;
  // The row's accumulated merge weight (throws like ValueAt on a missing
  // label).
  uint64_t WeightAt(const std::string& row_label) const;
  size_t row_count() const { return rows_.size(); }

 private:
  struct Row {
    std::string label;
    std::vector<double> values;
    uint64_t weight = 1;  // source rows aggregated into this one (kMean)
  };

  std::string title_;
  std::string row_header_;
  std::vector<std::string> columns_;
  std::vector<Row> rows_;
};

}  // namespace cki

#endif  // SRC_METRICS_REPORT_H_
