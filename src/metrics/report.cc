#include "src/metrics/report.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>
#include <ostream>
#include <stdexcept>

#include "src/obs/json_util.h"

namespace cki {

ReportTable::ReportTable(std::string title, std::string row_header,
                         std::vector<std::string> columns)
    : title_(std::move(title)), row_header_(std::move(row_header)), columns_(std::move(columns)) {}

void ReportTable::AddRow(const std::string& label, std::vector<double> values, uint64_t weight) {
  rows_.push_back(Row{label, std::move(values), weight == 0 ? 1 : weight});
}

void ReportTable::MergeRows(const ReportTable& other, MergeOp op) {
  if (other.columns_.size() != columns_.size()) {
    throw std::invalid_argument("MergeRows: column count mismatch (" +
                                std::to_string(columns_.size()) + " vs " +
                                std::to_string(other.columns_.size()) + ")");
  }
  for (const Row& incoming : other.rows_) {
    Row* mine = nullptr;
    for (Row& row : rows_) {
      if (row.label == incoming.label) {
        mine = &row;
        break;
      }
    }
    if (mine == nullptr) {
      rows_.push_back(incoming);
      continue;
    }
    mine->values.resize(std::max(mine->values.size(), incoming.values.size()), 0.0);
    const double wa = static_cast<double>(mine->weight);
    const double wb = static_cast<double>(incoming.weight);
    for (size_t i = 0; i < incoming.values.size(); ++i) {
      switch (op) {
        case MergeOp::kSum:
          mine->values[i] += incoming.values[i];
          break;
        case MergeOp::kMin:
          mine->values[i] = std::min(mine->values[i], incoming.values[i]);
          break;
        case MergeOp::kMax:
          mine->values[i] = std::max(mine->values[i], incoming.values[i]);
          break;
        case MergeOp::kMean:
          // Weighted by how many source rows each side already
          // aggregates, so merge order cannot change the result beyond
          // float associativity — and shard-index-order merging (the
          // cluster contract) makes even that bit-stable.
          mine->values[i] = (mine->values[i] * wa + incoming.values[i] * wb) / (wa + wb);
          break;
      }
    }
    mine->weight += incoming.weight;
  }
}

uint64_t ReportTable::WeightAt(const std::string& row_label) const {
  for (const Row& row : rows_) {
    if (row.label == row_label) {
      return row.weight;
    }
  }
  throw std::out_of_range("no such row: " + row_label);
}

double ReportTable::ValueAt(const std::string& row_label, size_t col) const {
  for (const Row& row : rows_) {
    if (row.label == row_label) {
      return col < row.values.size() ? row.values[col] : 0.0;
    }
  }
  std::string have;
  for (const Row& row : rows_) {
    if (!have.empty()) {
      have += ", ";
    }
    have += row.label;
  }
  throw std::out_of_range("no such row: " + row_label + " (available rows: " +
                          (have.empty() ? "<none>" : have) + ")");
}

ReportTable ReportTable::NormalizedTo(const std::string& baseline_label, bool invert) const {
  const Row* base = nullptr;
  for (const Row& row : rows_) {
    if (row.label == baseline_label) {
      base = &row;
      break;
    }
  }
  ReportTable out(title_ + (invert ? " (normalized, higher=better)" : " (normalized)"),
                  row_header_, columns_);
  if (base == nullptr) {
    return out;
  }
  for (const Row& row : rows_) {
    std::vector<double> norm(row.values.size(), 0.0);
    for (size_t i = 0; i < row.values.size() && i < base->values.size(); ++i) {
      double b = base->values[i];
      double v = row.values[i];
      if (invert) {
        norm[i] = (b > 0) ? v / b : 0.0;  // throughput relative to baseline
      } else {
        norm[i] = (b > 0) ? v / b : 0.0;  // latency relative to baseline
      }
    }
    out.AddRow(row.label, std::move(norm));
  }
  return out;
}

void ReportTable::Print(std::ostream& os, int precision) const {
  size_t label_width = row_header_.size();
  for (const Row& row : rows_) {
    label_width = std::max(label_width, row.label.size());
  }
  std::vector<size_t> widths(columns_.size());
  for (size_t i = 0; i < columns_.size(); ++i) {
    widths[i] = std::max<size_t>(columns_[i].size(), 10);
  }

  std::ios_base::fmtflags saved_flags = os.flags();
  std::streamsize saved_precision = os.precision();
  os << "== " << title_ << " ==\n";
  os << std::left << std::setw(static_cast<int>(label_width + 2)) << row_header_;
  for (size_t i = 0; i < columns_.size(); ++i) {
    os << std::right << std::setw(static_cast<int>(widths[i] + 2)) << columns_[i];
  }
  os << "\n";
  os << std::fixed << std::setprecision(precision);
  for (const Row& row : rows_) {
    os << std::left << std::setw(static_cast<int>(label_width + 2)) << row.label;
    for (size_t i = 0; i < columns_.size(); ++i) {
      double v = i < row.values.size() ? row.values[i] : 0.0;
      os << std::right << std::setw(static_cast<int>(widths[i] + 2)) << v;
    }
    os << "\n";
  }
  os.flags(saved_flags);
  os.precision(saved_precision);
  os << "\n";
}

void ReportTable::PrintCsv(std::ostream& os) const {
  os << row_header_;
  for (const std::string& col : columns_) {
    os << "," << col;
  }
  os << "\n";
  for (const Row& row : rows_) {
    os << row.label;
    for (size_t i = 0; i < columns_.size(); ++i) {
      os << "," << (i < row.values.size() ? row.values[i] : 0.0);
    }
    os << "\n";
  }
}

void ReportTable::PrintJson(std::ostream& os) const {
  os << "{\"title\":";
  WriteJsonString(os, title_);
  os << ",\"row_header\":";
  WriteJsonString(os, row_header_);
  os << ",\"columns\":[";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i > 0) {
      os << ",";
    }
    WriteJsonString(os, columns_[i]);
  }
  os << "],\"rows\":[";
  for (size_t r = 0; r < rows_.size(); ++r) {
    if (r > 0) {
      os << ",";
    }
    os << "{\"label\":";
    WriteJsonString(os, rows_[r].label);
    os << ",\"values\":[";
    for (size_t i = 0; i < columns_.size(); ++i) {
      if (i > 0) {
        os << ",";
      }
      os << (i < rows_[r].values.size() ? rows_[r].values[i] : 0.0);
    }
    os << "]}";
  }
  os << "]}";
}

}  // namespace cki
