// Parallel multi-machine scale-out runner: a simulated fleet.
//
// A SimCluster shards N fully independent simulated machines ("shards")
// across a bounded pool of OS threads. Each shard owns everything it
// touches — its Machine, virtual clock, engines, workloads, observability
// hub — so shards share no mutable state and the simulation stays
// single-threaded *per shard* (the FaultBus / engine "not thread-safe"
// contracts are never violated: no object is ever reached from two
// threads).
//
// Determinism contract (the vswitch.h / fault_injector.h contract lifted
// to fleet level):
//
//  * Per-shard seeds are split from one root seed with the same
//    xorshift64* scheme FaultInjector uses, so shard k's seed depends
//    only on (root_seed, k) — never on thread count, scheduling order,
//    or sibling shards.
//  * Results are collected into a slot per shard and merged in shard-
//    index order after the pool joins, so every merged artifact
//    (metrics, histograms, report rows, the cluster trace hash) is
//    bit-identical regardless of how many threads ran the shards or in
//    which order they finished.
//  * A shard that dies — FatalHostError from its own machine, or any
//    other exception escaping the body — is recorded as a failed
//    ShardResult; sibling shards are untouched (per-shard blast radius,
//    the DESIGN.md §8 invariant applied across machines).
//
// Thread-safety: SimCluster::Run is itself single-threaded to call (one
// call at a time per SimCluster); the body runs concurrently on pool
// threads and must only touch shard-local state plus the read-only
// captures of the caller. ShardResult/ClusterResult are plain values
// owned by the caller after Run returns.
#ifndef SRC_CLUSTER_SIM_CLUSTER_H_
#define SRC_CLUSTER_SIM_CLUSTER_H_

#include <cstdint>
#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "src/obs/metrics_registry.h"
#include "src/obs/observability.h"
#include "src/sim/clock.h"

namespace cki {

struct ClusterConfig {
  // Number of independent simulated machines to run.
  uint32_t shards = 1;
  // Worker OS threads; clamped to [1, shards]. Thread count changes
  // wall-clock time only, never results.
  uint32_t threads = 1;
  // Root of the deterministic per-shard seed split.
  uint64_t root_seed = 1;
};

// Handed to the shard body: identity plus the deterministic seed every
// shard-local RNG / FaultInjector must derive from.
struct ShardTask {
  uint32_t index = 0;   // shard index in [0, shards)
  uint32_t shards = 1;  // total shard count of this run
  uint64_t seed = 1;    // SimCluster::ShardSeed(root_seed, index)
};

// Everything one shard hands back. Owned by the shard thread while the
// body runs, then moved into the caller's ClusterResult — after Run
// returns, exactly one thread (the caller) can see it.
struct ShardResult {
  uint32_t index = 0;
  bool ok = true;
  std::string error;  // exception message when !ok

  // Simulated nanoseconds the shard's virtual clock advanced.
  SimNanos sim_ns = 0;

  // Named scalar results; merged key-wise in shard-index order.
  std::map<std::string, double> values;

  // Shard-local metrics (counters + histograms), merged in shard-index
  // order by ClusterResult::MergedMetrics.
  MetricsRegistry metrics;

  // The shard machine's detached observability hub
  // (Observability::Detach), so --trace-out keeps working under
  // parallelism: each shard becomes its own process track.
  Observability obs;

  // Folds `v` into this shard's FNV-1a determinism digest. Mix every
  // result that must be reproduction-stable (per-op latencies, injector
  // and fault-bus hashes, packet hashes, ...), in a fixed order.
  void HashMix(uint64_t v);
  uint64_t trace_hash() const { return trace_hash_; }

 private:
  uint64_t trace_hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

// The merged outcome of one cluster run. Shards are ordered by index.
class ClusterResult {
 public:
  explicit ClusterResult(std::vector<ShardResult> shards) : shards_(std::move(shards)) {}

  const std::vector<ShardResult>& shards() const { return shards_; }
  size_t shard_count() const { return shards_.size(); }
  size_t failed_count() const;
  bool all_ok() const { return failed_count() == 0; }

  // Total simulated ns across shards (shards run concurrently in the
  // fiction too, so this is aggregate machine-time, not latency).
  SimNanos TotalSimNs() const;

  // Sum of `values[name]` over successful shards, in shard-index order
  // (bit-stable float accumulation).
  double SumValue(const std::string& name) const;

  // All successful shards' metrics merged in shard-index order.
  MetricsRegistry MergedMetrics() const;

  // Cluster-level FNV-1a determinism digest: per-shard
  // (index, ok, sim_ns, trace_hash) in shard-index order. Two runs with
  // the same root seed and workload produce the same digest at any
  // thread count.
  uint64_t trace_hash() const;

 private:
  std::vector<ShardResult> shards_;
};

// The runner. Construction is cheap; threads live only inside Run.
class SimCluster {
 public:
  using ShardBody = std::function<ShardResult(const ShardTask&)>;

  explicit SimCluster(const ClusterConfig& config);

  const ClusterConfig& config() const { return config_; }

  // Runs `body` once per shard on the pool and returns the merged,
  // index-ordered results. Exceptions escaping the body fail only that
  // shard. Call from one thread at a time.
  ClusterResult Run(const ShardBody& body) const;

  // Deterministic seed for shard `shard_index` under `root_seed`:
  // xorshift64* advanced index+1 steps from the folded root (the
  // FaultInjector scheme), so distinct shards get decorrelated streams
  // and the mapping is pure — no global state, no wall clock.
  static uint64_t ShardSeed(uint64_t root_seed, uint32_t shard_index);

 private:
  ClusterConfig config_;
};

}  // namespace cki

#endif  // SRC_CLUSTER_SIM_CLUSTER_H_
