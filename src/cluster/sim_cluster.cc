#include "src/cluster/sim_cluster.h"

#include <algorithm>
#include <atomic>
#include <exception>
#include <thread>
#include <utility>

#include "src/sim/fnv.h"
#include "src/sim/seed_split.h"

namespace cki {

void ShardResult::HashMix(uint64_t v) { trace_hash_ = FnvMix64(trace_hash_, v); }

size_t ClusterResult::failed_count() const {
  size_t n = 0;
  for (const ShardResult& s : shards_) {
    n += s.ok ? 0 : 1;
  }
  return n;
}

SimNanos ClusterResult::TotalSimNs() const {
  SimNanos total = 0;
  for (const ShardResult& s : shards_) {
    total += s.sim_ns;
  }
  return total;
}

double ClusterResult::SumValue(const std::string& name) const {
  double sum = 0;
  for (const ShardResult& s : shards_) {
    if (!s.ok) {
      continue;
    }
    auto it = s.values.find(name);
    if (it != s.values.end()) {
      sum += it->second;
    }
  }
  return sum;
}

MetricsRegistry ClusterResult::MergedMetrics() const {
  MetricsRegistry merged;
  for (const ShardResult& s : shards_) {
    if (s.ok) {
      merged.Merge(s.metrics);
    }
  }
  return merged;
}

uint64_t ClusterResult::trace_hash() const {
  uint64_t hash = kFnvOffsetBasis;
  for (const ShardResult& s : shards_) {
    hash = FnvMix64(hash, s.index);
    hash = FnvMix64(hash, s.ok ? 1 : 0);
    hash = FnvMix64(hash, s.sim_ns);
    hash = FnvMix64(hash, s.trace_hash());
  }
  return hash;
}

SimCluster::SimCluster(const ClusterConfig& config) : config_(config) {
  if (config_.shards == 0) {
    config_.shards = 1;
  }
  config_.threads = std::clamp(config_.threads, 1u, config_.shards);
}

uint64_t SimCluster::ShardSeed(uint64_t root_seed, uint32_t shard_index) {
  // The shared fold+split scheme (src/sim/seed_split.h): FaultInjector
  // streams and shard seeds derive from the exact same bits.
  return SplitSeed(root_seed, shard_index);
}

ClusterResult SimCluster::Run(const ShardBody& body) const {
  const uint32_t n = config_.shards;
  // One pre-sized slot per shard: each is written by exactly one worker
  // and read only after every worker joined, so no lock is needed.
  std::vector<ShardResult> slots(n);
  std::atomic<uint32_t> next{0};

  auto worker = [&]() {
    for (;;) {
      uint32_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) {
        return;
      }
      ShardTask task{i, n, ShardSeed(config_.root_seed, i)};
      ShardResult result;
      try {
        result = body(task);
      } catch (const std::exception& e) {
        result = ShardResult{};
        result.ok = false;
        result.error = e.what();
      } catch (...) {
        result = ShardResult{};
        result.ok = false;
        result.error = "unknown exception";
      }
      result.index = i;  // the slot is authoritative even if the body forgot
      // Obs self-accounting rides the shard's metrics (obs/self/*), so the
      // merged cluster report states what observing the fleet cost.
      // Shard-local and deterministic: merged counters stay bit-identical
      // at any thread count.
      if (result.obs.has_data()) {
        result.obs.ExportSelfMetrics(result.metrics);
        result.obs.ExportSloMetrics(result.metrics);
      }
      slots[i] = std::move(result);
    }
  };

  const uint32_t workers = std::min(config_.threads, n);
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(workers);
    for (uint32_t t = 0; t < workers; ++t) {
      pool.emplace_back(worker);
    }
    for (std::thread& t : pool) {
      t.join();
    }
  }
  return ClusterResult(std::move(slots));
}

}  // namespace cki
