#include "src/host/frame_allocator.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/fault/fault_domain.h"

namespace cki {

FrameAllocator::FrameAllocator(PhysMem& mem, uint64_t base, uint64_t pages)
    : mem_(mem), base_(base), total_pages_(pages), bump_(0) {
  assert((base & (kPageSize - 1)) == 0 && "frame range must be page aligned");
}

FrameAllocator::OwnerNode& FrameAllocator::EnsureNode(uint64_t idx) {
  uint64_t n = idx >> kNodeShift;
  if (n >= nodes_.size()) {
    nodes_.resize(n + 1);
  }
  if (nodes_[n] == nullptr) {
    nodes_[n] = std::make_unique<OwnerNode>();
  }
  return *nodes_[n];
}

uint64_t FrameAllocator::AllocFrame(OwnerId owner) {
  uint64_t pa;
  if (!free_list_.empty()) {
    pa = free_list_.back();
    free_list_.pop_back();
    mem_.ZeroFrame(pa);
  } else {
    if (bump_ >= total_pages_) {
      // Exhaustion is attributed to the requesting owner: the fault bus
      // kills that container (or throws FatalHostError for the host).
      if (bus_ != nullptr) {
        bus_->Raise(FaultReport{FaultKind::kFrameExhausted, owner, total_pages_});
      }
      throw FatalHostError("FrameAllocator: out of physical memory (" +
                           std::to_string(total_pages_) + " frames)");
    }
    pa = base_ + bump_ * kPageSize;
    bump_++;
    mem_.InstallFrame(pa);
  }
  uint64_t idx = FrameIndex(pa);
  EnsureNode(idx).owner[idx & (kNodeFrames - 1)] = owner;
  allocated_++;
  return pa;
}

FreeResult FrameAllocator::FreeFrame(uint64_t pa) {
  uint64_t idx = FrameIndex(pa);
  OwnerNode* node = NodeFor(idx);
  uint64_t off = idx & (kNodeFrames - 1);
  if (node == nullptr || node->owner[off] == kNoOwner) {
    double_frees_++;
    if (bus_ != nullptr) {
      bus_->Note(FaultReport{FaultKind::kDoubleFree, kHostOwner, pa});
    }
    return FreeResult::kDoubleFree;
  }
  if (shares_.count(idx) != 0) {
    // Sharers still map this frame: transfer primacy instead of freeing
    // (the safety net behind ReleaseShare-aware engine free paths).
    TransferPrimary(idx);
    return FreeResult::kOk;
  }
  node->owner[off] = kNoOwner;
  node->carved[off] = false;
  free_list_.push_back(pa);
  allocated_--;
  return FreeResult::kOk;
}

PhysSegment FrameAllocator::AllocSegment(uint64_t pages, OwnerId owner) {
  // Contiguity comes from the bump region; freed singleton frames are not
  // coalesced (mirrors the fragmentation limitation the paper notes).
  if (bump_ + pages > total_pages_) {
    if (bus_ != nullptr) {
      bus_->Raise(FaultReport{FaultKind::kSegmentExhausted, owner, pages});
    }
    throw FatalHostError("FrameAllocator: cannot carve contiguous segment of " +
                         std::to_string(pages) + " pages");
  }
  PhysSegment seg{.base = base_ + bump_ * kPageSize, .pages = pages};
  mem_.InstallRange(seg.base, pages);
  segments_.emplace_back(seg, owner);
  bump_ += pages;
  allocated_ += pages;
  return seg;
}

uint64_t FrameAllocator::ReclaimOwner(OwnerId owner) {
  // Drop the dying holder's *shares* first, so primacy transfers below
  // never hand a frame to the owner being reclaimed.
  std::vector<uint64_t> share_keys;
  for (const auto& [idx, holders] : shares_) {
    (void)holders;
    share_keys.push_back(idx);
  }
  std::sort(share_keys.begin(), share_keys.end());
  for (uint64_t idx : share_keys) {
    auto it = shares_.find(idx);
    auto& holders = it->second;
    holders.erase(std::remove(holders.begin(), holders.end(), owner), holders.end());
    if (holders.empty()) {
      shares_.erase(it);
    }
  }

  // Singleton frames: the direct-indexed table iterates in ascending frame
  // order by construction, so the free list (and thus every later
  // allocation) is deterministic with no sort step. Frames a sibling clone
  // still shares are transferred, not freed.
  uint64_t freed = 0;
  for (size_t n = 0; n < nodes_.size(); ++n) {
    OwnerNode* node = nodes_[n].get();
    if (node == nullptr) {
      continue;
    }
    for (uint64_t off = 0; off < kNodeFrames; ++off) {
      if (node->owner[off] != owner) {
        continue;
      }
      uint64_t idx = (static_cast<uint64_t>(n) << kNodeShift) | off;
      if (shares_.count(idx) != 0) {
        TransferPrimary(idx);
        continue;
      }
      node->owner[off] = kNoOwner;
      node->carved[off] = false;
      free_list_.push_back(base_ + idx * kPageSize);
      freed++;
    }
  }

  // Delegated segments: return every page, drop the ownership record.
  // Pages carved out by an earlier transfer belong to another container
  // now; pages with live sharers transfer instead of freeing.
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second == owner) {
      const PhysSegment& seg = it->first;
      for (uint64_t i = 0; i < seg.pages; ++i) {
        uint64_t idx = FrameIndex(seg.base + i * kPageSize);
        OwnerNode* node = NodeFor(idx);
        uint64_t off = idx & (kNodeFrames - 1);
        if (node != nullptr && node->owner[off] != kNoOwner) {
          node->carved[off] = false;  // segment record goes away; owner rules now
          continue;
        }
        if (auto sh = shares_.find(idx); sh != shares_.end()) {
          EnsureNode(idx).owner[off] = sh->second.front();
          sh->second.erase(sh->second.begin());
          if (sh->second.empty()) {
            shares_.erase(sh);
          }
          continue;
        }
        free_list_.push_back(base_ + idx * kPageSize);
        freed++;
      }
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  allocated_ -= freed;
  return freed;
}

uint64_t FrameAllocator::OwnedFrames(OwnerId owner) const {
  uint64_t n = 0;
  for (const auto& node : nodes_) {
    if (node == nullptr) {
      continue;
    }
    for (uint64_t off = 0; off < kNodeFrames; ++off) {
      if (node->owner[off] == owner) {
        n++;
      }
    }
  }
  for (const auto& [seg, seg_owner] : segments_) {
    if (seg_owner == owner) {
      n += seg.pages;
      // Carved pages were transferred to another container; they are
      // counted through their singleton owner slot instead.
      for (uint64_t i = 0; i < seg.pages; ++i) {
        uint64_t idx = FrameIndex(seg.base + i * kPageSize);
        const OwnerNode* node = NodeFor(idx);
        if (node != nullptr && node->carved[idx & (kNodeFrames - 1)]) {
          n--;
        }
      }
    }
  }
  return n;
}

OwnerId FrameAllocator::OwnerOf(uint64_t pa) const {
  OwnerId owner = OwnerSlot(FrameIndex(pa));
  if (owner != kNoOwner) {
    return owner;
  }
  for (const auto& [seg, seg_owner] : segments_) {
    if (seg.Contains(pa)) {
      return seg_owner;
    }
  }
  return kHostOwner;
}

void FrameAllocator::ShareFrame(uint64_t pa, OwnerId sharer) {
  shares_[FrameIndex(pa)].push_back(sharer);
}

void FrameAllocator::TransferPrimary(uint64_t idx) {
  auto sh = shares_.find(idx);
  assert(sh != shares_.end() && !sh->second.empty());
  OwnerId next = sh->second.front();
  sh->second.erase(sh->second.begin());
  if (sh->second.empty()) {
    shares_.erase(sh);
  }
  OwnerNode& node = EnsureNode(idx);
  uint64_t off = idx & (kNodeFrames - 1);
  if (node.owner[off] == kNoOwner) {
    // The primary held this page through a delegated segment: carve it out
    // so the segment's sweep and leak count skip it from now on.
    node.carved[off] = true;
  }
  node.owner[off] = next;
}

bool FrameAllocator::ReleaseShare(uint64_t pa, OwnerId holder) {
  uint64_t idx = FrameIndex(pa);
  auto sh = shares_.find(idx);
  bool is_primary = OwnerOf(pa) == holder;
  if (sh != shares_.end() && !is_primary) {
    auto& holders = sh->second;
    auto it = std::find(holders.begin(), holders.end(), holder);
    if (it != holders.end()) {
      holders.erase(it);
      if (holders.empty()) {
        shares_.erase(sh);
      }
      return true;
    }
    return false;  // shared, but not by this holder: normal-free path
  }
  if (!is_primary || sh == shares_.end()) {
    return false;
  }
  TransferPrimary(idx);
  return true;
}

bool FrameAllocator::IsShared(uint64_t pa) const {
  return shares_.count(FrameIndex(pa)) != 0;
}

bool FrameAllocator::OwnedOrSharedBy(uint64_t pa, OwnerId holder) const {
  if (OwnerOf(pa) == holder) {
    return true;
  }
  auto sh = shares_.find(FrameIndex(pa));
  if (sh == shares_.end()) {
    return false;
  }
  return std::find(sh->second.begin(), sh->second.end(), holder) != sh->second.end();
}

uint64_t FrameAllocator::SharedFrames(OwnerId holder) const {
  uint64_t n = 0;
  for (const auto& [idx, holders] : shares_) {
    (void)idx;
    n += static_cast<uint64_t>(
        std::count(holders.begin(), holders.end(), holder));
  }
  return n;
}

}  // namespace cki
