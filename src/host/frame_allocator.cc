#include "src/host/frame_allocator.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/fault/fault_domain.h"

namespace cki {

FrameAllocator::FrameAllocator(PhysMem& mem, uint64_t base, uint64_t pages)
    : mem_(mem), base_(base), total_pages_(pages), bump_(0) {
  assert((base & (kPageSize - 1)) == 0 && "frame range must be page aligned");
}

uint64_t FrameAllocator::AllocFrame(OwnerId owner) {
  uint64_t pa;
  if (!free_list_.empty()) {
    pa = free_list_.back();
    free_list_.pop_back();
    mem_.ZeroFrame(pa);
  } else {
    if (bump_ >= total_pages_) {
      // Exhaustion is attributed to the requesting owner: the fault bus
      // kills that container (or throws FatalHostError for the host).
      if (bus_ != nullptr) {
        bus_->Raise(FaultReport{FaultKind::kFrameExhausted, owner, total_pages_});
      }
      throw FatalHostError("FrameAllocator: out of physical memory (" +
                           std::to_string(total_pages_) + " frames)");
    }
    pa = base_ + bump_ * kPageSize;
    bump_++;
    mem_.InstallFrame(pa);
  }
  owner_[pa >> kPageShift] = owner;
  allocated_++;
  return pa;
}

FreeResult FrameAllocator::FreeFrame(uint64_t pa) {
  auto it = owner_.find(pa >> kPageShift);
  if (it == owner_.end()) {
    double_frees_++;
    if (bus_ != nullptr) {
      bus_->Note(FaultReport{FaultKind::kDoubleFree, kHostOwner, pa});
    }
    return FreeResult::kDoubleFree;
  }
  owner_.erase(it);
  free_list_.push_back(pa);
  allocated_--;
  return FreeResult::kOk;
}

PhysSegment FrameAllocator::AllocSegment(uint64_t pages, OwnerId owner) {
  // Contiguity comes from the bump region; freed singleton frames are not
  // coalesced (mirrors the fragmentation limitation the paper notes).
  if (bump_ + pages > total_pages_) {
    if (bus_ != nullptr) {
      bus_->Raise(FaultReport{FaultKind::kSegmentExhausted, owner, pages});
    }
    throw FatalHostError("FrameAllocator: cannot carve contiguous segment of " +
                         std::to_string(pages) + " pages");
  }
  PhysSegment seg{.base = base_ + bump_ * kPageSize, .pages = pages};
  mem_.InstallRange(seg.base, pages);
  segments_.emplace_back(seg, owner);
  bump_ += pages;
  allocated_ += pages;
  return seg;
}

uint64_t FrameAllocator::ReclaimOwner(OwnerId owner) {
  // Singleton frames: collect, sort, then free. owner_ is an unordered
  // map, so without the sort the free-list order (and thus every later
  // allocation) would depend on hash-table iteration order.
  std::vector<uint64_t> keys;
  for (const auto& [key, frame_owner] : owner_) {
    if (frame_owner == owner) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  for (uint64_t key : keys) {
    owner_.erase(key);
    free_list_.push_back(key << kPageShift);
  }
  uint64_t reclaimed = keys.size();

  // Delegated segments: return every page, drop the ownership record.
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second == owner) {
      const PhysSegment& seg = it->first;
      for (uint64_t i = 0; i < seg.pages; ++i) {
        free_list_.push_back(seg.base + i * kPageSize);
      }
      reclaimed += seg.pages;
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  allocated_ -= reclaimed;
  return reclaimed;
}

uint64_t FrameAllocator::OwnedFrames(OwnerId owner) const {
  uint64_t n = 0;
  for (const auto& [key, frame_owner] : owner_) {
    (void)key;
    if (frame_owner == owner) {
      n++;
    }
  }
  for (const auto& [seg, seg_owner] : segments_) {
    if (seg_owner == owner) {
      n += seg.pages;
    }
  }
  return n;
}

OwnerId FrameAllocator::OwnerOf(uint64_t pa) const {
  auto it = owner_.find(pa >> kPageShift);
  if (it != owner_.end()) {
    return it->second;
  }
  for (const auto& [seg, owner] : segments_) {
    if (seg.Contains(pa)) {
      return owner;
    }
  }
  return kHostOwner;
}

}  // namespace cki
