#include "src/host/frame_allocator.h"

#include <cassert>
#include <cstdio>
#include <cstdlib>

namespace cki {

FrameAllocator::FrameAllocator(PhysMem& mem, uint64_t base, uint64_t pages)
    : mem_(mem), base_(base), total_pages_(pages), bump_(0) {
  assert((base & (kPageSize - 1)) == 0 && "frame range must be page aligned");
}

uint64_t FrameAllocator::AllocFrame(OwnerId owner) {
  uint64_t pa;
  if (!free_list_.empty()) {
    pa = free_list_.back();
    free_list_.pop_back();
    mem_.ZeroFrame(pa);
  } else {
    if (bump_ >= total_pages_) {
      std::fprintf(stderr, "FrameAllocator: out of physical memory (%llu frames)\n",
                   static_cast<unsigned long long>(total_pages_));
      std::abort();
    }
    pa = base_ + bump_ * kPageSize;
    bump_++;
    mem_.InstallFrame(pa);
  }
  owner_[pa >> kPageShift] = owner;
  allocated_++;
  return pa;
}

void FrameAllocator::FreeFrame(uint64_t pa) {
  auto it = owner_.find(pa >> kPageShift);
  if (it == owner_.end()) {
    std::fprintf(stderr, "FrameAllocator: double free or foreign frame 0x%llx\n",
                 static_cast<unsigned long long>(pa));
    std::abort();
  }
  owner_.erase(it);
  free_list_.push_back(pa);
  allocated_--;
}

PhysSegment FrameAllocator::AllocSegment(uint64_t pages, OwnerId owner) {
  // Contiguity comes from the bump region; freed singleton frames are not
  // coalesced (mirrors the fragmentation limitation the paper notes).
  if (bump_ + pages > total_pages_) {
    std::fprintf(stderr, "FrameAllocator: cannot carve contiguous segment of %llu pages\n",
                 static_cast<unsigned long long>(pages));
    std::abort();
  }
  PhysSegment seg{.base = base_ + bump_ * kPageSize, .pages = pages};
  mem_.InstallRange(seg.base, pages);
  segments_.emplace_back(seg, owner);
  bump_ += pages;
  allocated_ += pages;
  return seg;
}

OwnerId FrameAllocator::OwnerOf(uint64_t pa) const {
  auto it = owner_.find(pa >> kPageShift);
  if (it != owner_.end()) {
    return it->second;
  }
  for (const auto& [seg, owner] : segments_) {
    if (seg.Contains(pa)) {
      return owner;
    }
  }
  return kHostOwner;
}

}  // namespace cki
