#include "src/host/frame_allocator.h"

#include <algorithm>
#include <cassert>
#include <string>

#include "src/fault/fault_domain.h"

namespace cki {

FrameAllocator::FrameAllocator(PhysMem& mem, uint64_t base, uint64_t pages)
    : mem_(mem), base_(base), total_pages_(pages), bump_(0) {
  assert((base & (kPageSize - 1)) == 0 && "frame range must be page aligned");
}

uint64_t FrameAllocator::AllocFrame(OwnerId owner) {
  uint64_t pa;
  if (!free_list_.empty()) {
    pa = free_list_.back();
    free_list_.pop_back();
    mem_.ZeroFrame(pa);
  } else {
    if (bump_ >= total_pages_) {
      // Exhaustion is attributed to the requesting owner: the fault bus
      // kills that container (or throws FatalHostError for the host).
      if (bus_ != nullptr) {
        bus_->Raise(FaultReport{FaultKind::kFrameExhausted, owner, total_pages_});
      }
      throw FatalHostError("FrameAllocator: out of physical memory (" +
                           std::to_string(total_pages_) + " frames)");
    }
    pa = base_ + bump_ * kPageSize;
    bump_++;
    mem_.InstallFrame(pa);
  }
  owner_[pa >> kPageShift] = owner;
  allocated_++;
  return pa;
}

FreeResult FrameAllocator::FreeFrame(uint64_t pa) {
  auto it = owner_.find(pa >> kPageShift);
  if (it == owner_.end()) {
    double_frees_++;
    if (bus_ != nullptr) {
      bus_->Note(FaultReport{FaultKind::kDoubleFree, kHostOwner, pa});
    }
    return FreeResult::kDoubleFree;
  }
  if (shares_.count(pa >> kPageShift) != 0) {
    // Sharers still map this frame: transfer primacy instead of freeing
    // (the safety net behind ReleaseShare-aware engine free paths).
    TransferPrimary(pa >> kPageShift);
    return FreeResult::kOk;
  }
  owner_.erase(it);
  carved_.erase(pa >> kPageShift);
  free_list_.push_back(pa);
  allocated_--;
  return FreeResult::kOk;
}

PhysSegment FrameAllocator::AllocSegment(uint64_t pages, OwnerId owner) {
  // Contiguity comes from the bump region; freed singleton frames are not
  // coalesced (mirrors the fragmentation limitation the paper notes).
  if (bump_ + pages > total_pages_) {
    if (bus_ != nullptr) {
      bus_->Raise(FaultReport{FaultKind::kSegmentExhausted, owner, pages});
    }
    throw FatalHostError("FrameAllocator: cannot carve contiguous segment of " +
                         std::to_string(pages) + " pages");
  }
  PhysSegment seg{.base = base_ + bump_ * kPageSize, .pages = pages};
  mem_.InstallRange(seg.base, pages);
  segments_.emplace_back(seg, owner);
  bump_ += pages;
  allocated_ += pages;
  return seg;
}

uint64_t FrameAllocator::ReclaimOwner(OwnerId owner) {
  // Drop the dying holder's *shares* first, so primacy transfers below
  // never hand a frame to the owner being reclaimed.
  std::vector<uint64_t> share_keys;
  for (const auto& [idx, holders] : shares_) {
    (void)holders;
    share_keys.push_back(idx);
  }
  std::sort(share_keys.begin(), share_keys.end());
  for (uint64_t idx : share_keys) {
    auto it = shares_.find(idx);
    auto& holders = it->second;
    holders.erase(std::remove(holders.begin(), holders.end(), owner), holders.end());
    if (holders.empty()) {
      shares_.erase(it);
    }
  }

  // Singleton frames: collect, sort, then free. owner_ is an unordered
  // map, so without the sort the free-list order (and thus every later
  // allocation) would depend on hash-table iteration order. Frames a
  // sibling clone still shares are transferred, not freed.
  std::vector<uint64_t> keys;
  for (const auto& [key, frame_owner] : owner_) {
    if (frame_owner == owner) {
      keys.push_back(key);
    }
  }
  std::sort(keys.begin(), keys.end());
  uint64_t freed = 0;
  for (uint64_t key : keys) {
    if (shares_.count(key) != 0) {
      TransferPrimary(key);
      continue;
    }
    owner_.erase(key);
    carved_.erase(key);
    free_list_.push_back(key << kPageShift);
    freed++;
  }

  // Delegated segments: return every page, drop the ownership record.
  // Pages carved out by an earlier transfer belong to another container
  // now; pages with live sharers transfer instead of freeing.
  for (auto it = segments_.begin(); it != segments_.end();) {
    if (it->second == owner) {
      const PhysSegment& seg = it->first;
      for (uint64_t i = 0; i < seg.pages; ++i) {
        uint64_t idx = (seg.base + i * kPageSize) >> kPageShift;
        if (owner_.count(idx) != 0) {
          carved_.erase(idx);  // segment record goes away; owner_ rules now
          continue;
        }
        if (auto sh = shares_.find(idx); sh != shares_.end()) {
          owner_[idx] = sh->second.front();
          sh->second.erase(sh->second.begin());
          if (sh->second.empty()) {
            shares_.erase(sh);
          }
          continue;
        }
        free_list_.push_back(idx << kPageShift);
        freed++;
      }
      it = segments_.erase(it);
    } else {
      ++it;
    }
  }
  allocated_ -= freed;
  return freed;
}

uint64_t FrameAllocator::OwnedFrames(OwnerId owner) const {
  uint64_t n = 0;
  for (const auto& [key, frame_owner] : owner_) {
    (void)key;
    if (frame_owner == owner) {
      n++;
    }
  }
  for (const auto& [seg, seg_owner] : segments_) {
    if (seg_owner == owner) {
      n += seg.pages;
      // Carved pages were transferred to another container; they are
      // counted through their owner_ entry instead.
      for (const auto& [idx, carved] : carved_) {
        (void)carved;
        if (seg.Contains(idx << kPageShift)) {
          n--;
        }
      }
    }
  }
  return n;
}

OwnerId FrameAllocator::OwnerOf(uint64_t pa) const {
  auto it = owner_.find(pa >> kPageShift);
  if (it != owner_.end()) {
    return it->second;
  }
  for (const auto& [seg, owner] : segments_) {
    if (seg.Contains(pa)) {
      return owner;
    }
  }
  return kHostOwner;
}

void FrameAllocator::ShareFrame(uint64_t pa, OwnerId sharer) {
  shares_[pa >> kPageShift].push_back(sharer);
}

void FrameAllocator::TransferPrimary(uint64_t idx) {
  auto sh = shares_.find(idx);
  assert(sh != shares_.end() && !sh->second.empty());
  OwnerId next = sh->second.front();
  sh->second.erase(sh->second.begin());
  if (sh->second.empty()) {
    shares_.erase(sh);
  }
  if (owner_.count(idx) == 0) {
    // The primary held this page through a delegated segment: carve it out
    // so the segment's sweep and leak count skip it from now on.
    carved_[idx] = true;
  }
  owner_[idx] = next;
}

bool FrameAllocator::ReleaseShare(uint64_t pa, OwnerId holder) {
  uint64_t idx = pa >> kPageShift;
  auto sh = shares_.find(idx);
  bool is_primary = OwnerOf(pa) == holder;
  if (sh != shares_.end() && !is_primary) {
    auto& holders = sh->second;
    auto it = std::find(holders.begin(), holders.end(), holder);
    if (it != holders.end()) {
      holders.erase(it);
      if (holders.empty()) {
        shares_.erase(sh);
      }
      return true;
    }
    return false;  // shared, but not by this holder: normal-free path
  }
  if (!is_primary || sh == shares_.end()) {
    return false;
  }
  TransferPrimary(idx);
  return true;
}

bool FrameAllocator::IsShared(uint64_t pa) const {
  return shares_.count(pa >> kPageShift) != 0;
}

bool FrameAllocator::OwnedOrSharedBy(uint64_t pa, OwnerId holder) const {
  if (OwnerOf(pa) == holder) {
    return true;
  }
  auto sh = shares_.find(pa >> kPageShift);
  if (sh == shares_.end()) {
    return false;
  }
  return std::find(sh->second.begin(), sh->second.end(), holder) != sh->second.end();
}

uint64_t FrameAllocator::SharedFrames(OwnerId holder) const {
  uint64_t n = 0;
  for (const auto& [idx, holders] : shares_) {
    (void)idx;
    n += static_cast<uint64_t>(
        std::count(holders.begin(), holders.end(), holder));
  }
  return n;
}

}  // namespace cki
