#include "src/host/vcpu_sched.h"

#include <algorithm>

#include "src/obs/trace_scope.h"

namespace cki {

uint64_t VcpuScheduler::Run(uint64_t max_slices) {
  uint64_t slices = 0;
  bool any_runnable = true;
  size_t cursor = 0;
  while (any_runnable && slices < max_slices) {
    any_runnable = false;
    for (size_t i = 0; i < tasks_.size(); ++i) {
      VcpuTask& task = tasks_[(cursor + i) % tasks_.size()];
      if (task.done) {
        continue;
      }
      if (!task.engine->alive()) {
        // Killed by its fault domain since the last slice: retire the vCPU
        // without entering the (torn-down) guest.
        task.done = true;
        continue;
      }
      any_runnable = true;
      slices++;
      task.slices++;

      // Resume: the host loads the vCPU context and enters the guest
      // (charged as one virtual-interrupt-style resume).
      TraceScope slice_scope(ctx_, task.engine->id(), "vcpu/slice");
      ctx_.ChargeWork(ctx_.cost().virq_inject);
      SimNanos slice_start = ctx_.clock().now();
      bool wants_more = true;
      try {
        while (wants_more && ctx_.clock().now() - slice_start < timeslice_) {
          wants_more = task.step();
        }
      } catch (const ContainerKilled&) {
        // The step tripped a container-fatal fault; the engine is already
        // torn down. The scheduler (and every other vCPU) keeps running.
        wants_more = false;
      }
      task.cpu_time += ctx_.clock().now() - slice_start;
      if (!wants_more) {
        task.done = true;
      } else {
        // Timer fired: the interrupt exits the guest through its design's
        // path regardless of what the guest was doing (CKI guarantees the
        // guest could not mask or monopolize it).
        task.preemptions++;
        ctx_.Charge(task.engine->DeviceInterruptCost(), PathEvent::kHwInterrupt);
      }
      cursor = (cursor + i + 1) % tasks_.size();
      break;  // round robin: one slice, then reconsider
    }
  }
  return slices;
}

double VcpuScheduler::FairnessRatio() const {
  SimNanos min_time = 0;
  SimNanos max_time = 0;
  bool first = true;
  for (const VcpuTask& task : tasks_) {
    if (first) {
      min_time = max_time = task.cpu_time;
      first = false;
    } else {
      min_time = std::min(min_time, task.cpu_time);
      max_time = std::max(max_time, task.cpu_time);
    }
  }
  if (max_time == 0) {
    return 1.0;
  }
  return static_cast<double>(min_time) / static_cast<double>(max_time);
}

}  // namespace cki
