#include "src/host/virtio_blk.h"

namespace cki {

void VirtioBlkDevice::SubmitRead(uint64_t lba, uint64_t sectors) {
  (void)lba;
  stats_.reads++;
  pending_++;
  pending_sectors_ += sectors;
  if (pending_ >= queue_depth_) {
    Poll();
  }
}

void VirtioBlkDevice::SubmitWrite(uint64_t lba, uint64_t sectors) {
  (void)lba;
  stats_.writes++;
  pending_++;
  pending_sectors_ += sectors;
  if (pending_ >= queue_depth_) {
    Poll();
  }
}

void VirtioBlkDevice::CompleteBatch(int requests) {
  if (requests <= 0) {
    return;
  }
  // Doorbell: one design-priced kick for the batch.
  ctx_.Charge(engine_.KickCost(), PathEvent::kVirtioKick);
  stats_.kicks++;
  // Backend service + storage access time.
  ctx_.ChargeWork(ctx_.cost().virtio_host_service);
  ctx_.ChargeWork(kBlkWriteLatency + pending_sectors_ * kBlkPerSector);
  // Completion interrupt back into the guest.
  ctx_.Charge(engine_.DeviceInterruptCost(), PathEvent::kVirqInject);
  stats_.interrupts++;
  // Frontend handles the completions.
  ctx_.ChargeWork(ctx_.cost().virtio_guest_service * static_cast<SimNanos>(requests));
  ctx_.ChargeWork(engine_.VirtioEmulationExtra());
  pending_ = 0;
  pending_sectors_ = 0;
}

void VirtioBlkDevice::Poll() { CompleteBatch(pending_); }

void VirtioBlkDevice::Flush() {
  // Drain the queue first, then the barrier itself (unbatchable).
  Poll();
  stats_.flushes++;
  ctx_.Charge(engine_.KickCost(), PathEvent::kVirtioKick);
  stats_.kicks++;
  ctx_.ChargeWork(kBlkFlushLatency);
  ctx_.Charge(engine_.DeviceInterruptCost(), PathEvent::kVirqInject);
  stats_.interrupts++;
  ctx_.ChargeWork(engine_.VirtioEmulationExtra());
}

}  // namespace cki
