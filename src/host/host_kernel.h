// The host-kernel service layer behind the paravirtual interface: hypercall
// dispatch with real semantics (one-shot timers, vCPU pause/resume, IPIs,
// pv-clock) and the virtual-interrupt plumbing the engines call into.
//
// The engines own the *transition* cost (exit/switcher/redirect); this
// layer owns what the host does once a request arrives — so its behavior
// is identical for every container design, exactly as one host kernel
// serves all of them.
#ifndef SRC_HOST_HOST_KERNEL_H_
#define SRC_HOST_HOST_KERNEL_H_

#include <cstdint>
#include <queue>
#include <vector>

#include "src/guest/engine_port.h"
#include "src/sim/context.h"

namespace cki {

// A pending one-shot timer.
struct TimerEvent {
  SimNanos deadline = 0;
  int vcpu = 0;

  bool operator>(const TimerEvent& other) const { return deadline > other.deadline; }
};

class HostKernel {
 public:
  explicit HostKernel(SimContext& ctx, int n_vcpus = 1)
      : ctx_(ctx), paused_(static_cast<size_t>(n_vcpus), false),
        pending_ipi_(static_cast<size_t>(n_vcpus), 0) {}

  // Dispatches a hypercall that has already paid its transition cost.
  // Returns the op-specific result value.
  uint64_t Dispatch(HypercallOp op, uint64_t a0, uint64_t a1, int vcpu = 0);

  // Fires every timer whose deadline has passed; returns the vCPUs to
  // interrupt (each becomes a virtual timer interrupt).
  std::vector<int> ExpireTimers();

  // pv-clock: guest-readable time (ns since host boot).
  SimNanos PvClockNow() const { return ctx_.clock().now(); }

  bool vcpu_paused(int vcpu) const { return paused_[static_cast<size_t>(vcpu)]; }
  // A wakeup event (timer/IPI/device) resumes a paused vCPU.
  void WakeVcpu(int vcpu) { paused_[static_cast<size_t>(vcpu)] = false; }
  uint64_t pending_ipis(int vcpu) const { return pending_ipi_[static_cast<size_t>(vcpu)]; }
  // Consumes one pending IPI; returns false if none.
  bool TakeIpi(int vcpu);

  size_t armed_timers() const { return timers_.size(); }
  uint64_t dispatched() const { return dispatched_; }

 private:
  SimContext& ctx_;
  std::priority_queue<TimerEvent, std::vector<TimerEvent>, std::greater<TimerEvent>> timers_;
  std::vector<bool> paused_;
  std::vector<uint64_t> pending_ipi_;
  uint64_t dispatched_ = 0;
};

}  // namespace cki

#endif  // SRC_HOST_HOST_KERNEL_H_
