// A simulated machine: one CPU, physical memory, a frame allocator, and the
// shared simulation context. Container engines and the host kernel are
// constructed on top of one Machine.
#ifndef SRC_HOST_MACHINE_H_
#define SRC_HOST_MACHINE_H_

#include <cstdint>

#include "src/fault/fault_domain.h"
#include "src/host/frame_allocator.h"
#include "src/hw/cpu.h"
#include "src/hw/instr.h"
#include "src/hw/phys_mem.h"
#include "src/sim/context.h"

namespace cki {

// Where the container platform runs: directly on hardware, or inside an
// IaaS VM (so every hardware VM exit of a container bounces through L0).
enum class Deployment : uint8_t { kBareMetal, kNested };

struct MachineConfig {
  CkiHwExtensions extensions = CkiHwExtensions::None();
  CostModel cost = CostModel::Calibrated();
  Deployment deployment = Deployment::kBareMetal;
  // Whether the (L0) IaaS provider exposes hardware-assisted nested
  // virtualization to this VM. Several clouds disable it to shrink the L0
  // attack surface (sec 2.4.1) — HVM containers then cannot deploy at all,
  // while PVM/CKI/gVisor need no virtualization hardware.
  bool nested_virt_available = true;
  // Simulated physical memory size (sparse, so large defaults are cheap).
  uint64_t phys_pages = 8ull * 1024 * 1024;  // 32 GiB
  uint64_t phys_base = 0x1'0000'0000;        // leave low memory unused
};

class Machine {
 public:
  explicit Machine(const MachineConfig& config = MachineConfig{})
      : config_(config),
        ctx_(config.cost),
        cpu_(ctx_, mem_, config.extensions),
        frames_(mem_, config.phys_base, config.phys_pages),
        faults_(ctx_) {
    frames_.set_fault_bus(&faults_);
  }

  SimContext& ctx() { return ctx_; }
  // Hands out hardware PCID ranges so each container gets its own context
  // block (the TLB-isolation requirement of section 4.1).
  uint16_t AllocPcidRange(uint16_t count) {
    uint16_t base = next_pcid_;
    next_pcid_ = static_cast<uint16_t>(next_pcid_ + count);
    return base;
  }
  // Hands out container/owner ids (0 is the host kernel).
  OwnerId AllocOwnerId() { return next_owner_++; }

  PhysMem& mem() { return mem_; }
  Cpu& cpu() { return cpu_; }
  FrameAllocator& frames() { return frames_; }
  FaultBus& faults() { return faults_; }
  const FaultBus& faults() const { return faults_; }
  Deployment deployment() const { return config_.deployment; }
  bool nested() const { return config_.deployment == Deployment::kNested; }
  const MachineConfig& config() const { return config_; }

 private:
  MachineConfig config_;
  SimContext ctx_;
  PhysMem mem_;
  Cpu cpu_;
  FrameAllocator frames_;
  FaultBus faults_;
  uint16_t next_pcid_ = 1;  // PCID 0 belongs to the host kernel
  OwnerId next_owner_ = 1;
};

}  // namespace cki

#endif  // SRC_HOST_MACHINE_H_
