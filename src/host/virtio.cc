#include "src/host/virtio.h"

#include "src/obs/trace_scope.h"

namespace cki {

VirtioNetAdapter::VirtioNetAdapter(ContainerEngine& engine, int tx_batch)
    : engine_(engine),
      ctx_(engine.machine().ctx()),
      // A private point-to-point fabric: no hop latency, no serialization
      // charge, deep queues — the adapter models only the device costs, as
      // it always did.
      sw_(ctx_, LinkConfig{.hop_latency = 0, .bytes_per_ns = 0, .port_queue_capacity = 4096}),
      client_port_(sw_.AttachPort(client_, "client")),
      nic_(engine, sw_, "virtio0",
           NicConfig{.tx_batch = tx_batch, .rx_ring = 4096, .irq_per_batch = true}) {}

void VirtioNetAdapter::EnsureConn(int conn) {
  // Legacy adapter connections are implicit: no handshake.
  nic_.OpenRawFlow(conn, client_port_);
}

void VirtioNetAdapter::ClientSubmitBatch(int conn, int count, uint64_t bytes) {
  if (count <= 0) {
    return;
  }
  TraceScope obs_scope(ctx_, engine_.id(), "virtio/deliver");
  EnsureConn(conn);
  // Backend places the buffers into the queue and notifies the guest once.
  ctx_.ChargeWork(ctx_.cost().virtio_host_service);
  for (int i = 0; i < count; ++i) {
    sw_.Send(Packet{.src = client_port_,
                    .dst = nic_.port(),
                    .flow = conn,
                    .kind = PacketKind::kData,
                    .bytes = bytes});
  }
  nic_.CompleteBatch();
}

uint64_t VirtioNetAdapter::ClientCollect(int conn) { return client_.Collect(conn); }

uint64_t VirtioNetAdapter::Transmit(int conn, uint64_t bytes) {
  EnsureConn(conn);
  return nic_.Transmit(conn, bytes);
}

uint64_t VirtioNetAdapter::Receive(int conn, uint64_t max_bytes) {
  return nic_.Receive(conn, max_bytes);
}

bool VirtioNetAdapter::HasPending() const { return nic_.HasPending(); }

VirtioStats VirtioNetAdapter::stats() const {
  const NicStats& n = nic_.stats();
  return VirtioStats{.kicks = n.kicks,
                     .interrupts = n.interrupts,
                     .rx_requests = n.rx_packets,
                     .tx_responses = n.tx_packets};
}

bool VirtioNetAdapter::ClientPort::DeliverFrame(const Packet& p) {
  if (p.kind == PacketKind::kData) {
    responses_[p.flow]++;
  }
  return true;
}

uint64_t VirtioNetAdapter::ClientPort::Collect(int conn) {
  auto it = responses_.find(conn);
  if (it == responses_.end()) {
    return 0;
  }
  uint64_t n = it->second;
  it->second = 0;
  return n;
}

}  // namespace cki
