#include "src/host/virtio.h"

#include "src/obs/trace_scope.h"

namespace cki {

void VirtioNetAdapter::ClientSubmitBatch(int conn, int count, uint64_t bytes) {
  if (count <= 0) {
    return;
  }
  TraceScope obs_scope(ctx_, engine_.id(), "virtio/deliver");
  Conn& c = conns_[conn];
  for (int i = 0; i < count; ++i) {
    c.rx.push_back(bytes);
  }
  stats_.rx_requests += static_cast<uint64_t>(count);
  // Backend places the buffers into the queue and notifies the guest once.
  ctx_.ChargeWork(ctx_.cost().virtio_host_service);
  ctx_.Charge(engine_.DeviceInterruptCost(), PathEvent::kVirqInject);
  stats_.interrupts++;
}

uint64_t VirtioNetAdapter::ClientCollect(int conn) {
  auto it = conns_.find(conn);
  if (it == conns_.end()) {
    return 0;
  }
  uint64_t n = it->second.tx.size();
  it->second.tx.clear();
  return n;
}

void VirtioNetAdapter::Kick() {
  TraceScope obs_scope(ctx_, engine_.id(), "virtio/kick");
  ctx_.Charge(engine_.KickCost(), PathEvent::kVirtioKick);
  ctx_.ChargeWork(ctx_.cost().virtio_host_service);
  stats_.kicks++;
  tx_pending_ = 0;
}

uint64_t VirtioNetAdapter::Transmit(int conn, uint64_t bytes) {
  Conn& c = conns_[conn];
  c.tx.push_back(bytes);
  stats_.tx_responses++;
  ctx_.ChargeWork(ctx_.cost().virtio_guest_service);
  // Frontend bookkeeping that remains MMIO-based in some designs.
  ctx_.ChargeWork(engine_.VirtioEmulationExtra());
  if (++tx_pending_ >= tx_batch_) {
    Kick();
  }
  return bytes;
}

uint64_t VirtioNetAdapter::Receive(int conn, uint64_t max_bytes) {
  auto it = conns_.find(conn);
  if (it == conns_.end() || it->second.rx.empty()) {
    return 0;
  }
  uint64_t bytes = it->second.rx.front();
  it->second.rx.pop_front();
  ctx_.ChargeWork(ctx_.cost().virtio_guest_service);
  if (bytes > max_bytes) {
    bytes = max_bytes;
  }
  return bytes;
}

bool VirtioNetAdapter::HasPending() const {
  for (const auto& [conn, c] : conns_) {
    (void)conn;
    if (!c.rx.empty()) {
      return true;
    }
  }
  return false;
}

}  // namespace cki
