// Host-kernel vCPU scheduling for collocated containers.
//
// The host owns all hardware interrupts (paper section 3.3): it programs
// the timer, and when the slice expires the interrupt travels through the
// running container's interrupt path (the design-specific exit: CKI's
// forgery-proof gate, PVM's host redirect, HVM's VM exit) back to the host
// scheduler, which picks the next vCPU and resumes it.
//
// This is where CKI's DoS defenses become end-to-end visible: a container
// cannot keep the CPU because it can neither mask interrupts (cli blocked,
// in-memory IF, sysret IF-enforcement) nor monopolize the interrupt path
// (gates in KSM memory, IST stacks).
#ifndef SRC_HOST_VCPU_SCHED_H_
#define SRC_HOST_VCPU_SCHED_H_

#include <functional>
#include <string>
#include <vector>

#include "src/runtime/engine.h"

namespace cki {

// One schedulable vCPU: a container engine plus the work it wants to run.
// `step` performs a small unit of guest work and returns false when the
// vCPU has nothing left to do.
struct VcpuTask {
  ContainerEngine* engine = nullptr;
  std::function<bool()> step;
  std::string label;

  // accounting (filled by the scheduler)
  SimNanos cpu_time = 0;       // guest time actually granted
  uint64_t slices = 0;         // times scheduled
  uint64_t preemptions = 0;    // timer-driven involuntary switches
  bool done = false;
};

class VcpuScheduler {
 public:
  // `timeslice`: timer period. A vCPU that still wants to run when the
  // timer fires is preempted (paying its design's interrupt-exit cost).
  explicit VcpuScheduler(SimContext& ctx, SimNanos timeslice = 1'000'000)
      : ctx_(ctx), timeslice_(timeslice) {}

  void Add(VcpuTask task) { tasks_.push_back(std::move(task)); }

  // Round-robin until every task reports done (or `max_slices` elapses,
  // guarding against runaway guests). Returns the number of slices run.
  uint64_t Run(uint64_t max_slices = 1'000'000);

  const std::vector<VcpuTask>& tasks() const { return tasks_; }

  // Fairness metric: max/min granted CPU time across unfinished-equal
  // tasks (1.0 = perfectly fair).
  double FairnessRatio() const;

 private:
  SimContext& ctx_;
  SimNanos timeslice_;
  std::vector<VcpuTask> tasks_;
};

}  // namespace cki

#endif  // SRC_HOST_VCPU_SCHED_H_
