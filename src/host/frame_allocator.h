// Host physical-frame allocator.
//
// Besides single 4 KiB frames it supports contiguous multi-page segments:
// CKI delegates contiguous host-physical segments to each secure container
// so the guest kernel can place host-physical addresses into PTEs directly
// (section 4.3). The allocator tracks per-frame ownership so the page-table
// monitor can verify that a guest maps only memory it owns.
#ifndef SRC_HOST_FRAME_ALLOCATOR_H_
#define SRC_HOST_FRAME_ALLOCATOR_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "src/hw/phys_mem.h"

namespace cki {

// Identifies who owns a physical frame. 0 = host kernel.
using OwnerId = uint32_t;
inline constexpr OwnerId kHostOwner = 0;

struct PhysSegment {
  uint64_t base = 0;
  uint64_t pages = 0;

  uint64_t end() const { return base + pages * kPageSize; }
  bool Contains(uint64_t pa) const { return pa >= base && pa < end(); }
};

class FrameAllocator {
 public:
  // Manages physical range [base, base + pages * 4K).
  FrameAllocator(PhysMem& mem, uint64_t base, uint64_t pages);

  // Allocates one zeroed frame for `owner`. Returns its PA.
  uint64_t AllocFrame(OwnerId owner);

  // Releases a frame back to the free list.
  void FreeFrame(uint64_t pa);

  // Allocates a contiguous segment of `pages` zeroed frames for `owner`.
  PhysSegment AllocSegment(uint64_t pages, OwnerId owner);

  // Owner of the frame containing `pa`; kHostOwner if never allocated.
  OwnerId OwnerOf(uint64_t pa) const;

  uint64_t allocated_frames() const { return allocated_; }
  uint64_t total_frames() const { return total_pages_; }

 private:
  PhysMem& mem_;
  uint64_t base_;
  uint64_t total_pages_;
  uint64_t bump_;  // next-never-allocated frame index
  std::vector<uint64_t> free_list_;
  std::unordered_map<uint64_t, OwnerId> owner_;  // frame index -> owner
  std::vector<std::pair<PhysSegment, OwnerId>> segments_;
  uint64_t allocated_ = 0;
};

}  // namespace cki

#endif  // SRC_HOST_FRAME_ALLOCATOR_H_
