// Host physical-frame allocator.
//
// Besides single 4 KiB frames it supports contiguous multi-page segments:
// CKI delegates contiguous host-physical segments to each secure container
// so the guest kernel can place host-physical addresses into PTEs directly
// (section 4.3). The allocator tracks per-frame ownership so the page-table
// monitor can verify that a guest maps only memory it owns — and so a
// killed container's frames can be reclaimed in one owner sweep.
//
// Copy-on-write clones (src/snap) add *shared* frames: a frame keeps one
// primary owner plus a list of sharer containers (ShareFrame). Releasing
// or reclaiming a sharer only drops its share; releasing/reclaiming the
// primary while sharers remain transfers primacy to the first sharer
// instead of freeing — so killing one clone never frees frames a sibling
// still maps. Invariants in DESIGN.md §10.
#ifndef SRC_HOST_FRAME_ALLOCATOR_H_
#define SRC_HOST_FRAME_ALLOCATOR_H_

#include <array>
#include <bitset>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "src/hw/phys_mem.h"

namespace cki {

class FaultBus;

// Identifies who owns a physical frame. 0 = host kernel.
using OwnerId = uint32_t;
inline constexpr OwnerId kHostOwner = 0;

// Outcome of FreeFrame: a double free is counted and reported to the fault
// bus instead of aborting the machine.
enum class FreeResult : uint8_t { kOk, kDoubleFree };

struct PhysSegment {
  uint64_t base = 0;
  uint64_t pages = 0;

  uint64_t end() const { return base + pages * kPageSize; }
  bool Contains(uint64_t pa) const { return pa >= base && pa < end(); }
};

class FrameAllocator {
 public:
  // Manages physical range [base, base + pages * 4K).
  FrameAllocator(PhysMem& mem, uint64_t base, uint64_t pages);

  // Routes exhaustion and double-free reports through the machine's fault
  // bus (container-attributable faults kill the owner; host faults throw).
  void set_fault_bus(FaultBus* bus) { bus_ = bus; }

  // Allocates one zeroed frame for `owner`. Returns its PA. On exhaustion
  // the fault bus kills `owner` (host owner => FatalHostError).
  uint64_t AllocFrame(OwnerId owner);

  // Releases a frame back to the free list. Freeing a frame that is not
  // allocated is counted (and noted on the fault bus), not fatal.
  FreeResult FreeFrame(uint64_t pa);

  // Allocates a contiguous segment of `pages` zeroed frames for `owner`.
  PhysSegment AllocSegment(uint64_t pages, OwnerId owner);

  // Reclaims every frame and segment owned by `owner` (the kill sweep).
  // Singleton frames return to the free list in ascending PA order so
  // allocation order stays deterministic. Frames with live sharers are
  // transferred to their first sharer instead of freed, and the dying
  // owner's own shares are dropped everywhere. Returns the freed count.
  uint64_t ReclaimOwner(OwnerId owner);

  // Frames (singletons + segment pages) currently owned by `owner` —
  // the teardown leak check. Segment pages carved out by a CoW transfer
  // count toward their new owner, not the segment's.
  uint64_t OwnedFrames(OwnerId owner) const;

  // Owner of the frame containing `pa`; kHostOwner if never allocated.
  OwnerId OwnerOf(uint64_t pa) const;

  // --- copy-on-write sharing (src/snap clones) --------------------------
  // Registers `sharer` as an additional holder of the (allocated) frame.
  // One share per (frame, clone) — the clone's guest-side refcounts cover
  // multiple mappings inside the clone.
  void ShareFrame(uint64_t pa, OwnerId sharer);

  // Drops `holder`'s interest in a shared frame. Returns true when the
  // call handled the release (a share was dropped, or primacy transferred
  // to a remaining sharer); false means the frame is not shared and the
  // caller should free it through the normal path.
  bool ReleaseShare(uint64_t pa, OwnerId holder);

  // True while at least one sharer (beyond the primary owner) holds `pa`.
  bool IsShared(uint64_t pa) const;

  // True when `holder` is the primary owner of `pa` or one of its sharers
  // (the PTP monitor's mapping check for clones).
  bool OwnedOrSharedBy(uint64_t pa, OwnerId holder) const;

  // Number of frames `holder` holds only as a sharer (leak audit).
  uint64_t SharedFrames(OwnerId holder) const;

  uint64_t allocated_frames() const { return allocated_; }
  uint64_t total_frames() const { return total_pages_; }
  uint64_t double_frees() const { return double_frees_; }

 private:
  // Singleton-frame ownership lives in a direct-indexed two-level table
  // (DESIGN.md §14): frames allocate bump-ordered from the range base, so
  // only the low nodes ever materialize even though the range covers
  // gigabytes. Direct indexing makes owner lookups O(1) pointer math and —
  // more importantly — makes every sweep (ReclaimOwner, OwnedFrames)
  // iterate in ascending frame order *by construction*, so free-list order
  // can never depend on hash-map iteration order.
  static constexpr uint64_t kNodeShift = 12;  // frames per node = 4096
  static constexpr uint64_t kNodeFrames = 1ull << kNodeShift;
  // kHostOwner (0) is a real owner; the "no singleton record" sentinel
  // must be distinct.
  static constexpr OwnerId kNoOwner = 0xFFFFFFFFu;
  struct OwnerNode {
    std::array<OwnerId, kNodeFrames> owner;
    // Segment pages whose primacy was transferred away from the segment
    // owner (excluded from the segment's sweep and leak count).
    std::bitset<kNodeFrames> carved;
    OwnerNode() { owner.fill(kNoOwner); }
  };

  // Local frame index (0-based within the managed range) for `pa`.
  uint64_t FrameIndex(uint64_t pa) const { return (pa - base_) >> kPageShift; }

  OwnerNode* NodeFor(uint64_t idx) const {
    uint64_t n = idx >> kNodeShift;
    return n < nodes_.size() ? nodes_[n].get() : nullptr;
  }
  OwnerNode& EnsureNode(uint64_t idx);

  // Owner slot for local index `idx`; kNoOwner when absent.
  OwnerId OwnerSlot(uint64_t idx) const {
    const OwnerNode* node = NodeFor(idx);
    return node != nullptr ? node->owner[idx & (kNodeFrames - 1)] : kNoOwner;
  }

  // Moves primacy of frame `idx` to the first sharer, carving the page
  // out of its segment when the primary was a segment owner.
  void TransferPrimary(uint64_t idx);

  PhysMem& mem_;
  uint64_t base_;
  uint64_t total_pages_;
  uint64_t bump_;  // next-never-allocated frame index
  std::vector<uint64_t> free_list_;
  std::vector<std::unique_ptr<OwnerNode>> nodes_;  // local idx -> owner
  std::vector<std::pair<PhysSegment, OwnerId>> segments_;
  // local frame index -> sharers beyond the primary owner (insertion
  // order; the first entry inherits primacy on transfer). Sparse: only
  // CoW-cloned frames appear.
  std::unordered_map<uint64_t, std::vector<OwnerId>> shares_;
  uint64_t allocated_ = 0;
  uint64_t double_frees_ = 0;
  FaultBus* bus_ = nullptr;
};

}  // namespace cki

#endif  // SRC_HOST_FRAME_ALLOCATOR_H_
