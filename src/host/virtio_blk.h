// Virtio-blk device model: the storage path of a secure container. Reads
// and writes are submitted as requests; each submission rings the doorbell
// (design-priced kick), the backend performs the storage access, and the
// completion comes back as a device interrupt. fsync() forces a flush
// barrier (submission + completion with no batching).
#ifndef SRC_HOST_VIRTIO_BLK_H_
#define SRC_HOST_VIRTIO_BLK_H_

#include <cstdint>
#include <unordered_map>

#include "src/runtime/engine.h"

namespace cki {

struct VirtioBlkStats {
  uint64_t reads = 0;
  uint64_t writes = 0;
  uint64_t flushes = 0;
  uint64_t kicks = 0;
  uint64_t interrupts = 0;
};

class VirtioBlkDevice {
 public:
  // `queue_depth`: requests coalesced per doorbell/completion under load.
  VirtioBlkDevice(ContainerEngine& engine, int queue_depth = 8)
      : engine_(engine), ctx_(engine.machine().ctx()),
        queue_depth_(queue_depth < 1 ? 1 : queue_depth) {}

  // Asynchronous read/write of `sectors` 512-byte sectors at `lba`.
  // Requests accumulate in the queue; Poll() or Flush() completes them.
  void SubmitRead(uint64_t lba, uint64_t sectors);
  void SubmitWrite(uint64_t lba, uint64_t sectors);

  // Completes everything pending (one kick + storage latency + one
  // completion interrupt per queue-depth batch).
  void Poll();

  // fsync semantics: barrier — submit FLUSH, wait for completion.
  void Flush();

  // Simulated device storage contents by sector (for integrity tests).
  void WriteSectorTag(uint64_t lba, uint64_t tag) { sector_tags_[lba] = tag; }
  uint64_t ReadSectorTag(uint64_t lba) const {
    auto it = sector_tags_.find(lba);
    return it == sector_tags_.end() ? 0 : it->second;
  }

  const VirtioBlkStats& stats() const { return stats_; }

 private:
  void CompleteBatch(int requests);

  ContainerEngine& engine_;
  SimContext& ctx_;
  int queue_depth_;
  int pending_ = 0;
  uint64_t pending_sectors_ = 0;
  std::unordered_map<uint64_t, uint64_t> sector_tags_;
  VirtioBlkStats stats_;
};

// Storage latency constants (NVMe-class device behind the backend).
inline constexpr SimNanos kBlkReadLatency = 12'000;
inline constexpr SimNanos kBlkWriteLatency = 9'000;
inline constexpr SimNanos kBlkFlushLatency = 25'000;
inline constexpr SimNanos kBlkPerSector = 120;

}  // namespace cki

#endif  // SRC_HOST_VIRTIO_BLK_H_
