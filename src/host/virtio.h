// Virtio-net device model connecting an external load generator (the
// "memtier" side, running outside the container) to the guest kernel's
// network syscalls.
//
// Since the src/net subsystem landed, this adapter is a thin point-to-point
// facade over the real packet path: a private two-port VSwitch connects a
// client port (the load generator side) to one VirtNic. The device charges
// the architectural costs where they occur in each container design:
//   * one device interrupt per delivered batch  (engine.DeviceInterruptCost)
//   * one doorbell kick per transmitted batch   (engine.KickCost)
//   * per-request frontend/backend service work and, for designs that kept
//     an MMIO-based frontend, the per-request emulation extra.
// RunC containers short-circuit the device: their sockets are host sockets.
#ifndef SRC_HOST_VIRTIO_H_
#define SRC_HOST_VIRTIO_H_

#include <deque>
#include <unordered_map>

#include "src/net/load_gen.h"
#include "src/net/virt_nic.h"
#include "src/runtime/engine.h"

namespace cki {

struct VirtioStats {
  uint64_t kicks = 0;
  uint64_t interrupts = 0;
  uint64_t rx_requests = 0;
  uint64_t tx_responses = 0;
};

class VirtioNetAdapter : public NetPort {
 public:
  // `tx_batch` models interrupt coalescing / NAPI-style batching: with more
  // concurrent clients, more responses share one kick.
  explicit VirtioNetAdapter(ContainerEngine& engine, int tx_batch = 1);

  // --- load-generator (host) side -----------------------------------------
  // Delivers `count` requests of `bytes` each into connection `conn` as one
  // batch: one backend service + one guest interrupt.
  void ClientSubmitBatch(int conn, int count, uint64_t bytes);

  // Collects and discards buffered responses; returns how many. Responses
  // reach the client only after a kick — use Flush() for tails below the
  // batch threshold.
  uint64_t ClientCollect(int conn);

  // --- guest (NetPort) side --------------------------------------------------
  uint64_t Transmit(int conn, uint64_t bytes) override;
  uint64_t Receive(int conn, uint64_t max_bytes) override;
  bool HasPending() const override;

  // Kicks out any responses still buffered below the batch threshold.
  void Flush() { nic_.Flush(); }

  VirtioStats stats() const;
  // Applies immediately: buffered responses already at or above the new
  // threshold are kicked out, not stranded.
  void set_tx_batch(int tx_batch) { nic_.set_tx_batch(tx_batch); }

  VSwitch& vswitch() { return sw_; }
  VirtNic& nic() { return nic_; }

  // Dumps kick/interrupt/packet counters (NIC + switch ports).
  void ExportMetrics(MetricsRegistry& metrics) const {
    nic_.ExportMetrics(metrics);
    sw_.ExportMetrics(metrics);
  }

 private:
  // Collects client-bound frames per connection (the memtier process).
  class ClientPort : public NetDevice {
   public:
    bool DeliverFrame(const Packet& p) override;
    uint64_t Collect(int conn);

   private:
    std::unordered_map<int, uint64_t> responses_;
  };

  void EnsureConn(int conn);

  ContainerEngine& engine_;
  SimContext& ctx_;
  VSwitch sw_;
  ClientPort client_;
  int client_port_;
  VirtNic nic_;
};

}  // namespace cki

#endif  // SRC_HOST_VIRTIO_H_
