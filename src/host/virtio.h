// Virtio-net device model connecting an external load generator (the
// "memtier" side, running outside the container) to the guest kernel's
// network syscalls.
//
// The device charges the architectural costs where they occur in each
// container design:
//   * one device interrupt per delivered batch  (engine.DeviceInterruptCost)
//   * one doorbell kick per transmitted batch   (engine.KickCost)
//   * per-request frontend/backend service work and, for designs that kept
//     an MMIO-based frontend, the per-request emulation extra.
// RunC containers short-circuit the device: their sockets are host sockets.
#ifndef SRC_HOST_VIRTIO_H_
#define SRC_HOST_VIRTIO_H_

#include <deque>
#include <unordered_map>

#include "src/runtime/engine.h"

namespace cki {

struct VirtioStats {
  uint64_t kicks = 0;
  uint64_t interrupts = 0;
  uint64_t rx_requests = 0;
  uint64_t tx_responses = 0;
};

class VirtioNetAdapter : public NetPort {
 public:
  // `tx_batch` models interrupt coalescing / NAPI-style batching: with more
  // concurrent clients, more responses share one kick.
  VirtioNetAdapter(ContainerEngine& engine, int tx_batch = 1)
      : engine_(engine), ctx_(engine.machine().ctx()), tx_batch_(tx_batch < 1 ? 1 : tx_batch) {}

  // --- load-generator (host) side -----------------------------------------
  // Delivers `count` requests of `bytes` each into connection `conn` as one
  // batch: one backend service + one guest interrupt.
  void ClientSubmitBatch(int conn, int count, uint64_t bytes);

  // Collects and discards buffered responses; returns how many.
  uint64_t ClientCollect(int conn);

  // --- guest (NetPort) side --------------------------------------------------
  uint64_t Transmit(int conn, uint64_t bytes) override;
  uint64_t Receive(int conn, uint64_t max_bytes) override;
  bool HasPending() const override;

  const VirtioStats& stats() const { return stats_; }
  void set_tx_batch(int tx_batch) { tx_batch_ = tx_batch < 1 ? 1 : tx_batch; }

 private:
  struct Conn {
    std::deque<uint64_t> rx;     // pending request sizes (guest-bound)
    std::deque<uint64_t> tx;     // buffered response sizes (client-bound)
  };

  void Kick();

  ContainerEngine& engine_;
  SimContext& ctx_;
  int tx_batch_;
  int tx_pending_ = 0;  // responses since last kick
  std::unordered_map<int, Conn> conns_;
  VirtioStats stats_;
};

}  // namespace cki

#endif  // SRC_HOST_VIRTIO_H_
