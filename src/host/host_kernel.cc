#include "src/host/host_kernel.h"

namespace cki {

uint64_t HostKernel::Dispatch(HypercallOp op, uint64_t a0, uint64_t a1, int vcpu) {
  dispatched_++;
  switch (op) {
    case HypercallOp::kNop:
      return 0;
    case HypercallOp::kPauseVcpu:
      // The hlt replacement: the vCPU blocks until the next wake event.
      paused_[static_cast<size_t>(vcpu)] = true;
      return 0;
    case HypercallOp::kSetTimer: {
      // a0: deadline in ns of pv-clock time (0 cancels nothing here — a
      // fresh one-shot timer is armed per call, TSC-deadline style).
      timers_.push(TimerEvent{.deadline = a0, .vcpu = vcpu});
      return 0;
    }
    case HypercallOp::kSendIpi: {
      // a0: destination vCPU.
      size_t dest = static_cast<size_t>(a0);
      if (dest < pending_ipi_.size()) {
        pending_ipi_[dest]++;
        paused_[dest] = false;  // IPIs wake halted vCPUs
        return 0;
      }
      return ~0ull;
    }
    case HypercallOp::kVirtioKick:
      // Device queues are modeled by the virtio adapters; account only.
      return 0;
    case HypercallOp::kYield:
      return 0;
    case HypercallOp::kLogByte:
      return a1;
    case HypercallOp::kCount:
      break;
  }
  return ~0ull;
}

std::vector<int> HostKernel::ExpireTimers() {
  std::vector<int> fired;
  while (!timers_.empty() && timers_.top().deadline <= ctx_.clock().now()) {
    fired.push_back(timers_.top().vcpu);
    WakeVcpu(timers_.top().vcpu);
    timers_.pop();
  }
  return fired;
}

bool HostKernel::TakeIpi(int vcpu) {
  size_t v = static_cast<size_t>(vcpu);
  if (pending_ipi_[v] == 0) {
    return false;
  }
  pending_ipi_[v]--;
  return true;
}

}  // namespace cki
