#include "src/net/virt_nic.h"

#include <algorithm>

#include "src/fault/fault_injector.h"
#include "src/obs/trace_scope.h"
#include "src/snap/snap_stream.h"

namespace cki {

VirtNic::VirtNic(ContainerEngine& engine, VSwitch& sw, std::string name, NicConfig config)
    : engine_(engine),
      sw_(sw),
      ctx_(engine.machine().ctx()),
      name_(std::move(name)),
      config_(config),
      port_(sw_.AttachPort(*this, name_)) {
  if (config_.tx_batch < 1) {
    config_.tx_batch = 1;
  }
  // Unplug automatically when the owning container's fault domain dies.
  kill_hook_token_ =
      engine_.machine().faults().AddKillHook(engine_.id(), [this] { Detach(); });
}

VirtNic::~VirtNic() { engine_.machine().faults().RemoveKillHook(kill_hook_token_); }

void VirtNic::Detach() {
  if (detached_) {
    return;
  }
  detached_ = true;
  sw_.DetachPort(port_);
  tx_ring_.clear();
  flows_.clear();
  listeners_.clear();
  connect_results_.clear();
  rx_buffered_ = 0;
  irq_pending_ = false;
}

// --- TX path ---------------------------------------------------------------

uint64_t VirtNic::Transmit(int conn, uint64_t bytes) {
  if (detached_) {
    return 0;
  }
  auto it = flows_.find(conn);
  if (it == flows_.end()) {
    return 0;
  }
  // Frontend: fill the descriptor, plus the MMIO-register extra of designs
  // that kept an emulated virtio frontend.
  ctx_.ChargeWork(ctx_.cost().virtio_guest_service);
  ctx_.ChargeWork(engine_.VirtioEmulationExtra());
  it->second.tx_flow_bytes += bytes;
  stats_.tx_packets++;
  stats_.tx_bytes += bytes;
  // Stamp the guest's ambient request trace onto the frame, with a fresh
  // span id derived from (port, tx sequence) — deterministic, no clock.
  TraceContext tc = engine_.kernel().net_trace();
  tx_ring_.push_back(Packet{.src = port_,
                            .dst = it->second.peer,
                            .flow = conn,
                            .kind = PacketKind::kData,
                            .bytes = bytes,
                            .trace_id = tc.trace_id,
                            .span_id = DeriveSpanId(
                                tc, (static_cast<uint64_t>(port_) << 32) ^ stats_.tx_packets)});
  if (static_cast<int>(tx_ring_.size()) >= config_.tx_batch) {
    Kick();
  }
  return bytes;
}

void VirtNic::Kick() {
  TraceScope obs_scope(ctx_, "nic/kick");
  ctx_.Charge(engine_.KickCost(), PathEvent::kVirtioKick);
  // Backend processes the whole available queue per notification.
  ctx_.ChargeWork(ctx_.cost().virtio_host_service);
  stats_.kicks++;
  std::deque<Packet> out;
  out.swap(tx_ring_);  // delivery can re-enter this NIC (e.g. SYN-ACK back)
  for (const Packet& p : out) {
    sw_.Send(p);
  }
}

void VirtNic::Flush() {
  if (tx_ring_.empty()) {
    return;
  }
  TraceScope obs_scope(ctx_, "nic/flush");
  Kick();
}

void VirtNic::set_tx_batch(int tx_batch) {
  config_.tx_batch = tx_batch < 1 ? 1 : tx_batch;
  if (static_cast<int>(tx_ring_.size()) >= config_.tx_batch) {
    Kick();
  }
}

// --- RX path ---------------------------------------------------------------

uint64_t VirtNic::Receive(int conn, uint64_t max_bytes) {
  auto it = flows_.find(conn);
  if (it == flows_.end() || it->second.rx.empty()) {
    return 0;
  }
  RxFrame frame = it->second.rx.front();
  it->second.rx.pop_front();
  rx_buffered_--;
  ctx_.ChargeWork(ctx_.cost().virtio_guest_service);
  // The guest adopts the frame's causal identity: every syscall and TX
  // from here on belongs to this request, until the next receive.
  if (frame.trace.active()) {
    engine_.kernel().set_net_trace(frame.trace);
    ctx_.obs().RecordFlowPoint(ctx_.clock().now(), TraceRecordKind::kFlowStep,
                               frame.trace.trace_id);
  }
  // The freed descriptor may let switch-queued frames in.
  sw_.DrainPort(port_);
  AckIrqIfDrained();
  return std::min(frame.bytes, max_bytes);
}

bool VirtNic::HasPending() const {
  for (const auto& [flow, state] : flows_) {
    (void)flow;
    if (!state.rx.empty()) {
      return true;
    }
  }
  for (const auto& [service, listener] : listeners_) {
    (void)service;
    if (!listener.pending.empty()) {
      return true;
    }
  }
  return false;
}

void VirtNic::RaiseIrq() {
  if (irq_pending_) {
    stats_.coalesced_frames++;
    return;
  }
  irq_pending_ = true;
  stats_.interrupts++;
  TraceScope obs_scope(ctx_, "nic/irq");
  ctx_.Charge(engine_.DeviceInterruptCost(), PathEvent::kVirqInject);
}

void VirtNic::AckIrqIfDrained() {
  if (config_.irq_per_batch || !irq_pending_ || rx_buffered_ > 0) {
    return;
  }
  for (const auto& [service, listener] : listeners_) {
    (void)service;
    if (!listener.pending.empty()) {
      return;  // accept readiness keeps the IRQ asserted
    }
  }
  irq_pending_ = false;
  stats_.irq_acks++;
  // EOI / queue-unmask write re-arming the device.
  ctx_.ChargeWork(engine_.InterruptAckCost());
}

void VirtNic::CompleteBatch() {
  stats_.interrupts++;
  TraceScope obs_scope(ctx_, "nic/irq");
  ctx_.Charge(engine_.DeviceInterruptCost(), PathEvent::kVirqInject);
}

// --- connection layer ------------------------------------------------------

int64_t VirtNic::Listen(uint16_t service, int backlog) {
  if (listeners_.count(service) != 0) {
    return kEADDRINUSE;
  }
  listeners_[service] = Listener{.backlog = backlog < 1 ? 1 : backlog};
  return service;
}

int64_t VirtNic::Accept(int64_t handle) {
  auto it = listeners_.find(static_cast<uint16_t>(handle));
  if (it == listeners_.end()) {
    return kEBADF;
  }
  if (it->second.pending.empty()) {
    return kEAGAIN;
  }
  int flow = it->second.pending.front();
  it->second.pending.pop_front();
  stats_.accepted_conns++;
  AckIrqIfDrained();
  return flow;
}

int64_t VirtNic::Connect(int dst_port, uint16_t service) {
  if (detached_) {
    return kECONNREFUSED;
  }
  int flow = sw_.AllocFlow();
  connect_results_[flow] = kEAGAIN;  // in progress
  flows_[flow] = FlowState{.peer = dst_port};
  ctx_.ChargeWork(ctx_.cost().virtio_guest_service);
  tx_ring_.push_back(
      Packet{.src = port_, .dst = dst_port, .flow = flow, .service = service,
             .kind = PacketKind::kSyn});
  // The SYN rides its own kick; the answer is back (frame delivery is
  // synchronous on the shared clock) by the time Flush returns.
  Flush();
  int64_t result = connect_results_[flow];
  connect_results_.erase(flow);
  if (result == kEAGAIN) {
    result = kECONNREFUSED;  // nothing answered (dead port)
  }
  if (result < 0) {
    flows_.erase(flow);
    return result;
  }
  return flow;
}

void VirtNic::CloseConn(int conn) {
  auto it = flows_.find(conn);
  if (it == flows_.end()) {
    return;
  }
  ctx_.ChargeWork(ctx_.cost().virtio_guest_service);
  sw_.Send(Packet{.src = port_, .dst = it->second.peer, .flow = conn, .kind = PacketKind::kFin});
  rx_buffered_ -= it->second.rx.size();
  flows_.erase(it);
  AckIrqIfDrained();
}

void VirtNic::OpenRawFlow(int flow, int peer_port) {
  flows_.emplace(flow, FlowState{.peer = peer_port});
}

// --- switch side -----------------------------------------------------------

bool VirtNic::DeliverFrame(const Packet& p) {
  switch (p.kind) {
    case PacketKind::kSyn: {
      auto it = listeners_.find(p.service);
      if (it == listeners_.end() ||
          static_cast<int>(it->second.pending.size()) >= it->second.backlog) {
        // The RST names its reason: backlog-full is a transient the client
        // may retry (kEBUSY); no-listener is structural (kECONNREFUSED).
        uint16_t reason = it == listeners_.end() ? kRstNoListener : kRstBacklogFull;
        stats_.refused_conns++;
        sw_.Send(Packet{.src = port_, .dst = p.src, .flow = p.flow, .service = reason,
                        .kind = PacketKind::kRst});
        return true;
      }
      flows_[p.flow] = FlowState{.peer = p.src};
      it->second.pending.push_back(p.flow);
      sw_.Send(Packet{.src = port_, .dst = p.src, .flow = p.flow, .kind = PacketKind::kSynAck});
      if (!config_.irq_per_batch) {
        RaiseIrq();  // accept readiness
      }
      return true;
    }
    case PacketKind::kSynAck: {
      auto it = connect_results_.find(p.flow);
      if (it != connect_results_.end()) {
        it->second = 0;
      }
      return true;
    }
    case PacketKind::kRst: {
      auto it = connect_results_.find(p.flow);
      if (it != connect_results_.end()) {
        it->second = p.service == kRstBacklogFull ? kEBUSY : kECONNREFUSED;
      }
      return true;
    }
    case PacketKind::kData: {
      auto it = flows_.find(p.flow);
      if (it == flows_.end()) {
        stats_.rx_drops++;
        return true;  // consumed and dropped, like a closed TCP port
      }
      if (injector_ != nullptr && injector_->InjectVirtioCorruption()) {
        // A corrupted RX descriptor is a container-fatal device error.
        // Kill (not Raise): we are on the *sender's* stack here, and the
        // sender must keep running — only this NIC's owner dies.
        stats_.rx_drops++;
        engine_.machine().faults().Kill({FaultKind::kVirtioRingCorruption, engine_.id(),
                                         static_cast<uint64_t>(p.flow)});
        return true;  // `it` is dead: Detach() cleared flows_ under us
      }
      if (p.deadline_ns != 0) {
        // Admission control: a frame whose deadline cannot be met given
        // the queue already ahead of it is shed here, before it costs the
        // guest anything. Consumed-and-dropped (like an unknown flow), so
        // the switch does not requeue a doomed frame.
        SimNanos now = ctx_.clock().now();
        SimNanos eta = now + static_cast<SimNanos>(rx_buffered_) * config_.rx_est_service_ns;
        if (eta > static_cast<SimNanos>(p.deadline_ns)) {
          stats_.rx_sheds++;
          return true;
        }
      }
      if (rx_buffered_ >= config_.rx_ring) {
        // Overload is a pressure signal, not a kill: the switch queues.
        // The overrun also lands in the owner's SLO window as a gauge so
        // dashboards and shedding policies see backpressure (satellite of
        // DESIGN.md §13).
        stats_.overloads++;
        engine_.machine().faults().Note(
            {FaultKind::kNicOverload, engine_.id(), static_cast<uint64_t>(rx_buffered_)});
        ctx_.obs().SloIncOverload(engine_.id(), ctx_.clock().now());
        return false;  // ring full: the switch queues (or drops) the frame
      }
      it->second.rx.push_back(
          RxFrame{.bytes = p.bytes, .trace = TraceContext{p.trace_id, p.span_id}});
      it->second.rx_flow_bytes += p.bytes;
      rx_buffered_++;
      stats_.rx_packets++;
      stats_.rx_bytes += p.bytes;
      if (!config_.irq_per_batch) {
        RaiseIrq();
      }
      return true;
    }
    case PacketKind::kFin: {
      auto it = flows_.find(p.flow);
      if (it != flows_.end()) {
        rx_buffered_ -= it->second.rx.size();
        flows_.erase(it);
      }
      return true;
    }
    case PacketKind::kCount:
      break;
  }
  return true;
}

void VirtNic::ExportMetrics(MetricsRegistry& metrics) const {
  std::string prefix = "net/nic/" + name_ + "/";
  metrics.Inc(prefix + "kicks", stats_.kicks);
  metrics.Inc(prefix + "interrupts", stats_.interrupts);
  metrics.Inc(prefix + "coalesced", stats_.coalesced_frames);
  metrics.Inc(prefix + "irq_acks", stats_.irq_acks);
  metrics.Inc(prefix + "tx_pkts", stats_.tx_packets);
  metrics.Inc(prefix + "rx_pkts", stats_.rx_packets);
  metrics.Inc(prefix + "tx_bytes", stats_.tx_bytes);
  metrics.Inc(prefix + "rx_bytes", stats_.rx_bytes);
  metrics.Inc(prefix + "rx_drops", stats_.rx_drops);
  metrics.Inc(prefix + "rx_sheds", stats_.rx_sheds);
  metrics.Inc(prefix + "overloads", stats_.overloads);
  metrics.Inc(prefix + "refused", stats_.refused_conns);
  metrics.Inc(prefix + "accepted", stats_.accepted_conns);
}

void VirtNic::SnapCapture(SnapWriter& w) const {
  w.PutI64(config_.tx_batch);
  w.PutU64(config_.rx_ring);
  w.PutBool(config_.irq_per_batch);
  w.PutU64(stats_.kicks);
  w.PutU64(stats_.interrupts);
  w.PutU64(stats_.coalesced_frames);
  w.PutU64(stats_.irq_acks);
  w.PutU64(stats_.tx_packets);
  w.PutU64(stats_.rx_packets);
  w.PutU64(stats_.tx_bytes);
  w.PutU64(stats_.rx_bytes);
  w.PutU64(stats_.rx_drops);
  w.PutU64(stats_.rx_sheds);
  w.PutU64(stats_.overloads);
  w.PutU64(stats_.refused_conns);
  w.PutU64(stats_.accepted_conns);
}

void VirtNic::SnapApply(SnapReader& r) {
  config_.tx_batch = static_cast<int>(r.GetI64());
  config_.rx_ring = static_cast<size_t>(r.GetU64());
  config_.irq_per_batch = r.GetBool();
  if (config_.tx_batch < 1) {
    config_.tx_batch = 1;
  }
  stats_.kicks = r.GetU64();
  stats_.interrupts = r.GetU64();
  stats_.coalesced_frames = r.GetU64();
  stats_.irq_acks = r.GetU64();
  stats_.tx_packets = r.GetU64();
  stats_.rx_packets = r.GetU64();
  stats_.tx_bytes = r.GetU64();
  stats_.rx_bytes = r.GetU64();
  stats_.rx_drops = r.GetU64();
  stats_.rx_sheds = r.GetU64();
  stats_.overloads = r.GetU64();
  stats_.refused_conns = r.GetU64();
  stats_.accepted_conns = r.GetU64();
}

}  // namespace cki
