// The host virtual switch: the point-to-point virtio link generalized to a
// cluster fabric. Devices (container NICs, load generators) attach to
// numbered ports; forwarding a frame charges a configurable per-hop latency
// plus serialization time, and frames a destination cannot take immediately
// wait in that port's bounded egress FIFO (overflow is a counted drop).
//
// The switch is engine-neutral on purpose: hop costs are identical for every
// container design, so throughput differences between engines come only from
// the kick/interrupt/syscall costs their NICs charge — the same separation
// the paper's I/O evaluation relies on.
//
// Determinism: forwarding order is the call order of the (single-clocked)
// simulation, and `trace_hash()` chains every forwarded frame into one
// FNV-1a digest, so two runs with the same seed must produce bit-identical
// packet traces (tests/net_test.cc asserts this).
#ifndef SRC_NET_VSWITCH_H_
#define SRC_NET_VSWITCH_H_

#include <deque>
#include <string>
#include <vector>

#include "src/net/packet.h"
#include "src/obs/metrics_registry.h"
#include "src/sim/context.h"

namespace cki {

class FaultInjector;
class GrayFault;

// A device attached to one switch port (a VirtNic or a load generator).
class NetDevice {
 public:
  virtual ~NetDevice() = default;
  // Hands the device one frame. Returning false means the device cannot
  // take it now (RX ring full); the switch then queues or drops the frame.
  virtual bool DeliverFrame(const Packet& p) = 0;
};

struct LinkConfig {
  SimNanos hop_latency = 250;        // store-and-forward latency per frame
  uint64_t bytes_per_ns = 12;        // serialization rate (~100 Gb/s); 0 = infinite
  size_t port_queue_capacity = 256;  // frames buffered toward a busy port
};

struct SwitchPortStats {
  uint64_t tx_packets = 0;  // frames sent from this port
  uint64_t tx_bytes = 0;
  uint64_t rx_packets = 0;  // frames delivered into this port's device
  uint64_t rx_bytes = 0;
  uint64_t queued = 0;      // frames that had to wait in the egress FIFO
  uint64_t drops = 0;       // frames lost to FIFO overflow
};

class VSwitch {
 public:
  explicit VSwitch(SimContext& ctx, LinkConfig link = LinkConfig{}) : ctx_(ctx), link_(link) {}

  VSwitch(const VSwitch&) = delete;
  VSwitch& operator=(const VSwitch&) = delete;

  // Attaches `dev` and returns its port number (also its network address).
  int AttachPort(NetDevice& dev, std::string name);

  // Detaches the device behind `port` (its container was killed): queued
  // frames are counted as drops, and future frames toward the port
  // black-hole instead of reaching a dead device.
  void DetachPort(int port);

  // Arms deterministic packet drop/duplication (chaos testing).
  void set_injector(FaultInjector* injector) { injector_ = injector; }

  // Arms gray degradation (src/fault/gray_fault.h): while episodes are
  // open, hop latency is inflated, serialization rate is divided, and
  // frames are intermittently swallowed by the blackhole.
  void set_gray(GrayFault* gray) { gray_ = gray; }

  // Forwards `p` from p.src to p.dst, charging the hop. Returns false only
  // when the frame was dropped (destination busy and its FIFO full).
  bool Send(const Packet& p);

  // Re-offers queued frames to `port`'s device; NICs call this after the
  // guest drains ring space.
  void DrainPort(int port);

  // Hands out switch-global connection (flow) ids.
  int AllocFlow() { return next_flow_++; }

  size_t ports() const { return ports_.size(); }
  const std::string& port_name(int port) const { return ports_.at(static_cast<size_t>(port)).name; }
  const SwitchPortStats& port_stats(int port) const {
    return ports_.at(static_cast<size_t>(port)).stats;
  }
  size_t port_queue_depth(int port) const {
    return ports_.at(static_cast<size_t>(port)).queue.size();
  }
  const LinkConfig& link() const { return link_; }

  uint64_t packets_forwarded() const { return forwarded_; }
  uint64_t injected_drops() const { return injected_drops_; }
  uint64_t injected_dups() const { return injected_dups_; }
  uint64_t gray_drops() const { return gray_drops_; }
  // Order-sensitive FNV-1a digest over every forwarded frame.
  uint64_t trace_hash() const { return trace_hash_; }

  // Dumps per-port counters as `net/<port-name>/<counter>` plus
  // `net/switch/packets` (what --json-out benchmark runs export).
  void ExportMetrics(MetricsRegistry& metrics) const;

 private:
  struct PortState {
    NetDevice* dev = nullptr;
    std::string name;
    std::deque<Packet> queue;  // egress FIFO toward this port
    SwitchPortStats stats;
  };

  void Absorb(const Packet& p);  // hash + forwarded bookkeeping
  // Deliver-or-queue toward `dst`; false only when the frame was dropped.
  bool Offer(PortState& dst, const Packet& p);

  SimContext& ctx_;
  LinkConfig link_;
  std::vector<PortState> ports_;
  FaultInjector* injector_ = nullptr;
  GrayFault* gray_ = nullptr;
  int next_flow_ = 1;
  uint64_t forwarded_ = 0;
  uint64_t injected_drops_ = 0;
  uint64_t injected_dups_ = 0;
  uint64_t gray_drops_ = 0;
  uint64_t trace_hash_ = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
};

}  // namespace cki

#endif  // SRC_NET_VSWITCH_H_
