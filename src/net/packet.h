// Packet-level model of the cluster network.
//
// Frames carry no payload bytes, only lengths (like every other data path in
// the simulator), but connection setup/teardown and flow identification are
// real: a SYN names the destination service, the listener answers SYN-ACK or
// RST, and data frames are routed by a switch-global flow id. This is enough
// structure for backlog overflow, refused connections, per-flow byte
// accounting, and deterministic packet traces.
#ifndef SRC_NET_PACKET_H_
#define SRC_NET_PACKET_H_

#include <array>
#include <cstdint>
#include <string_view>

namespace cki {

enum class PacketKind : uint8_t {
  kSyn = 0,  // connection request (carries the destination service)
  kSynAck,   // connection accepted by the listener
  kRst,      // connection refused (no listener / backlog overflow)
  kData,     // payload frame, length modeled by `bytes`
  kFin,      // connection teardown
  kCount,    // sentinel
};

// Canonical kind names, indexed by value; the static_assert makes adding a
// PacketKind without naming it a compile error (PathEvent name-table
// pattern).
inline constexpr auto kPacketKindNames = std::to_array<std::string_view>({
    "syn",
    "syn_ack",
    "rst",
    "data",
    "fin",
});
static_assert(kPacketKindNames.size() == static_cast<size_t>(PacketKind::kCount),
              "every PacketKind up to kCount must have a name in kPacketKindNames");

inline std::string_view PacketKindName(PacketKind k) {
  size_t i = static_cast<size_t>(k);
  return i < kPacketKindNames.size() ? kPacketKindNames[i] : std::string_view("unknown");
}

// Reason carried in an RST's `service` field (otherwise unused on RST):
// distinguishes the structural refusal (no listener — fatal, retrying
// re-asks a void) from the transient one (backlog momentarily full —
// retryable; src/resil maps it to kEBUSY).
inline constexpr uint16_t kRstNoListener = 0;
inline constexpr uint16_t kRstBacklogFull = 1;

struct Packet {
  int src = -1;          // source switch port
  int dst = -1;          // destination switch port
  int flow = 0;          // connection id, unique per switch
  uint16_t service = 0;  // destination service (SYN), refusal reason (RST)
  PacketKind kind = PacketKind::kData;
  uint64_t bytes = 0;
  // Absolute simulated-time deadline for the request this frame belongs
  // to; 0 = none. Unlike trace_id/span_id below this IS part of the
  // switch's packet-trace digest: deadlines change behavior (RX admission
  // shedding, virt_nic.h), so a deadline divergence must fail replay.
  uint64_t deadline_ns = 0;
  // Causal request identity (src/obs/trace_context.h): minted by the load
  // generator, adopted by the receiving guest kernel, re-stamped on every
  // TX hop. 0 = untraced; the defaults keep every existing aggregate-init
  // site valid and cost nothing. Deliberately NOT part of the switch's
  // packet-trace digest (vswitch.cc HashFrame): identities annotate the
  // trace, they must never change it.
  uint64_t trace_id = 0;
  uint64_t span_id = 0;
};

}  // namespace cki

#endif  // SRC_NET_PACKET_H_
