#include "src/net/vswitch.h"

#include <iterator>

#include "src/fault/fault_injector.h"
#include "src/fault/gray_fault.h"
#include "src/obs/trace_scope.h"
#include "src/sim/fnv.h"

namespace cki {

namespace {

// Chains one forwarded frame into the running FNV-1a trace digest. The
// trace_id/span_id fields are deliberately excluded: causal identities
// annotate the packet trace but must never perturb it (the sampling
// determinism invariant of DESIGN.md §11 depends on this). deadline_ns is
// included — deadlines drive RX admission decisions, so they are behavior,
// not annotation.
uint64_t HashFrame(uint64_t h, const Packet& p) {
  const uint64_t words[] = {
      static_cast<uint64_t>(p.src),
      static_cast<uint64_t>(p.dst),
      static_cast<uint64_t>(p.flow),
      (static_cast<uint64_t>(p.service) << 8) | static_cast<uint64_t>(p.kind),
      p.bytes,
      p.deadline_ns,
  };
  return FnvMixWords(h, words, std::size(words));
}

}  // namespace

int VSwitch::AttachPort(NetDevice& dev, std::string name) {
  PortState port;
  port.dev = &dev;
  port.name = std::move(name);
  ports_.push_back(std::move(port));
  return static_cast<int>(ports_.size() - 1);
}

void VSwitch::Absorb(const Packet& p) {
  forwarded_++;
  trace_hash_ = HashFrame(trace_hash_, p);
}

void VSwitch::DetachPort(int port) {
  if (port < 0 || static_cast<size_t>(port) >= ports_.size()) {
    return;
  }
  PortState& dst = ports_[static_cast<size_t>(port)];
  dst.dev = nullptr;
  dst.stats.drops += dst.queue.size();
  dst.queue.clear();
}

bool VSwitch::Send(const Packet& p) {
  TraceScope obs_scope(ctx_, "net/hop");
  if (p.src >= 0 && static_cast<size_t>(p.src) < ports_.size()) {
    PortState& src = ports_[static_cast<size_t>(p.src)];
    src.stats.tx_packets++;
    src.stats.tx_bytes += p.bytes;
  }
  // Store-and-forward: fixed fabric latency plus serialization time. Open
  // gray episodes inflate the fixed hop and divide the serialization rate
  // — the link is alive, just worse.
  SimNanos now = ctx_.clock().now();
  SimNanos hop = link_.hop_latency;
  uint64_t rate = link_.bytes_per_ns;
  if (gray_ != nullptr) {
    hop = hop * gray_->LatencyMultX1000(now) / 1000;
    rate = rate / gray_->ThrottleDiv(now);
    if (link_.bytes_per_ns > 0 && rate == 0) {
      rate = 1;
    }
  }
  if (rate > 0) {
    hop += p.bytes / rate;
  }
  ctx_.ChargeWork(hop);
  if (p.dst < 0 || static_cast<size_t>(p.dst) >= ports_.size()) {
    if (p.src >= 0 && static_cast<size_t>(p.src) < ports_.size()) {
      ports_[static_cast<size_t>(p.src)].stats.drops++;
    }
    return false;
  }
  PortState& dst = ports_[static_cast<size_t>(p.dst)];
  if (dst.dev == nullptr) {
    // Detached port (container killed): frames toward it black-hole.
    dst.stats.drops++;
    return false;
  }
  Absorb(p);
  // Forwarded traced frame: one causal flow step on this hop, inside the
  // net/hop span so the exporter can bind the arrow to the slice.
  if (p.trace_id != 0) {
    ctx_.obs().RecordFlowPoint(ctx_.clock().now(), TraceRecordKind::kFlowStep, p.trace_id);
  }
  if (injector_ != nullptr && injector_->InjectPacketDrop()) {
    injected_drops_++;
    dst.stats.drops++;
    return false;
  }
  if (gray_ != nullptr && gray_->SwallowPacket(ctx_.clock().now())) {
    // Blackhole episode: the frame silently vanishes mid-fabric. No RST,
    // no signal — exactly the loss mode timeouts exist for.
    gray_drops_++;
    dst.stats.drops++;
    return false;
  }
  bool delivered = Offer(dst, p);
  if (delivered && injector_ != nullptr && injector_->InjectPacketDup()) {
    injected_dups_++;
    Absorb(p);  // the duplicate is part of the packet trace too
    Offer(dst, p);
  }
  return delivered;
}

bool VSwitch::Offer(PortState& dst, const Packet& p) {
  if (dst.dev == nullptr) {
    // Delivery of the original frame can kill (and detach) the very port
    // a duplicate is bound for.
    dst.stats.drops++;
    return false;
  }
  // Frames already waiting toward this port keep FIFO order.
  if (dst.queue.empty() && dst.dev->DeliverFrame(p)) {
    dst.stats.rx_packets++;
    dst.stats.rx_bytes += p.bytes;
    return true;
  }
  if (dst.queue.size() >= link_.port_queue_capacity) {
    dst.stats.drops++;
    return false;
  }
  dst.queue.push_back(p);
  dst.stats.queued++;
  return true;
}

void VSwitch::DrainPort(int port) {
  if (port < 0 || static_cast<size_t>(port) >= ports_.size()) {
    return;
  }
  PortState& dst = ports_[static_cast<size_t>(port)];
  while (dst.dev != nullptr && !dst.queue.empty()) {
    Packet p = dst.queue.front();  // by value: delivery may detach the port
    if (!dst.dev->DeliverFrame(p)) {
      return;
    }
    dst.stats.rx_packets++;
    dst.stats.rx_bytes += p.bytes;
    if (dst.queue.empty()) {
      break;  // delivery killed the container and flushed the queue
    }
    dst.queue.pop_front();
  }
}

void VSwitch::ExportMetrics(MetricsRegistry& metrics) const {
  metrics.Inc("net/switch/packets", forwarded_);
  metrics.Inc("net/switch/injected_drops", injected_drops_);
  metrics.Inc("net/switch/injected_dups", injected_dups_);
  metrics.Inc("net/switch/gray_drops", gray_drops_);
  for (const PortState& port : ports_) {
    std::string prefix = "net/port/" + port.name + "/";
    metrics.Inc(prefix + "tx_pkts", port.stats.tx_packets);
    metrics.Inc(prefix + "tx_bytes", port.stats.tx_bytes);
    metrics.Inc(prefix + "rx_pkts", port.stats.rx_packets);
    metrics.Inc(prefix + "rx_bytes", port.stats.rx_bytes);
    metrics.Inc(prefix + "queued", port.stats.queued);
    metrics.Inc(prefix + "drops", port.stats.drops);
  }
}

}  // namespace cki
