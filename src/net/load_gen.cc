#include "src/net/load_gen.h"

#include <algorithm>
#include <cmath>

#include "src/guest/syscall.h"
#include "src/obs/trace_scope.h"

namespace cki {

// --- ArrivalProcess ---------------------------------------------------------

ArrivalConfig ArrivalConfig::DiurnalBurst(uint64_t seed, double base_rate_per_sec) {
  ArrivalConfig c;
  c.seed = seed;
  c.base_rate_per_sec = base_rate_per_sec;
  // Two-peak day: quiet night, morning ramp, lunch dip, evening peak.
  c.diurnal = {0.2, 0.15, 0.3, 0.7, 1.0, 0.8, 0.6, 0.9, 1.2, 1.0, 0.5, 0.3};
  // Mostly calm with a short 4x flash crowd each cycle.
  c.burst = {1.0, 1.0, 1.0, 1.0, 4.0, 1.0, 1.0, 1.0};
  return c;
}

namespace {

// Multiplier of the repeating `table` at time `now` (1.0 when empty).
double TableAt(const std::vector<double>& table, SimNanos period_ns, SimNanos now) {
  if (table.empty() || period_ns == 0) {
    return 1.0;
  }
  SimNanos slot_ns = period_ns / table.size();
  if (slot_ns == 0) {
    slot_ns = 1;
  }
  return table[(now / slot_ns) % table.size()];
}

double TableMax(const std::vector<double>& table) {
  double m = 1.0;
  for (double v : table) {
    m = std::max(m, v);
  }
  return m;
}

}  // namespace

ArrivalProcess::ArrivalProcess(const ArrivalConfig& config)
    : config_(config), rng_(config.seed) {
  if (config_.base_rate_per_sec <= 0) {
    config_.base_rate_per_sec = 1;
  }
  peak_rate_per_sec_ =
      config_.base_rate_per_sec * TableMax(config_.diurnal) * TableMax(config_.burst);
}

double ArrivalProcess::MultiplierAt(SimNanos now) const {
  return TableAt(config_.diurnal, config_.diurnal_period_ns, now) *
         TableAt(config_.burst, config_.burst_period_ns, now);
}

SimNanos ArrivalProcess::NextArrival() {
  if (has_pending_) {
    has_pending_ = false;
    minted_++;
    return pending_;
  }
  // Thinning: candidates arrive as a homogeneous Poisson stream at the
  // peak rate; each survives with probability rate(t)/peak. Rejected
  // candidates still advance the candidate clock, so the surviving
  // sequence is exactly the non-homogeneous process.
  const double peak_per_ns = peak_rate_per_sec_ * 1e-9;
  for (;;) {
    double u = rng_.NextUnit();
    // Exponential inter-arrival at the peak rate, >= 1 ns so time moves.
    double gap_ns = -std::log(1.0 - u) / peak_per_ns;
    clock_ns_ += std::max<SimNanos>(1, static_cast<SimNanos>(gap_ns));
    if (rng_.NextUnit() * peak_rate_per_sec_ < RateAt(clock_ns_)) {
      minted_++;
      return clock_ns_;
    }
  }
}

size_t ArrivalProcess::DrainUntil(SimNanos until, std::vector<SimNanos>* out) {
  size_t n = 0;
  for (;;) {
    SimNanos t = NextArrival();
    if (t >= until) {
      // Push the overshooting arrival back for the next window.
      pending_ = t;
      has_pending_ = true;
      minted_--;
      return n;
    }
    out->push_back(t);
    n++;
  }
}

// --- LoadGenerator ----------------------------------------------------------

LoadGenerator::LoadGenerator(SimContext& ctx, VSwitch& sw, std::string name, uint64_t trace_seed)
    : ctx_(ctx),
      sw_(sw),
      name_(std::move(name)),
      port_(sw_.AttachPort(*this, name_)),
      trace_seed_(trace_seed) {}

int64_t LoadGenerator::Connect(int dst_port, uint16_t service) {
  int flow = sw_.AllocFlow();
  connect_results_[flow] = kEAGAIN;
  sw_.Send(Packet{.src = port_, .dst = dst_port, .flow = flow, .service = service,
                  .kind = PacketKind::kSyn});
  int64_t result = connect_results_[flow];
  connect_results_.erase(flow);
  if (result == kEAGAIN) {
    result = kECONNREFUSED;
  }
  if (result < 0) {
    return result;
  }
  flows_[flow] = FlowState{.peer = dst_port};
  return flow;
}

int64_t LoadGenerator::ConnectResil(int dst_port, uint16_t service, const ResilConfig& cfg,
                                    RetryBudget& budget) {
  int64_t r = Connect(dst_port, service);
  for (uint32_t attempt = 1; r < 0 && IsRetryableErrno(r) && attempt < cfg.max_attempts;
       ++attempt) {
    if (!budget.TryAcquire()) {
      break;  // bucket dry: no storm, surface the transient errno
    }
    // Backoff is simulated time, not wall time: the wait is charged to the
    // shared clock so the retry schedule replays bit-identically.
    ctx_.ChargeWork(BackoffNs(cfg, attempt));
    connect_retries_++;
    r = Connect(dst_port, service);
  }
  if (r >= 0) {
    budget.OnSuccess();
  }
  return r;
}

void LoadGenerator::SendRequests(int flow, int count, uint64_t bytes) {
  auto it = flows_.find(flow);
  if (it == flows_.end() || count <= 0) {
    return;
  }
  TraceScope obs_scope(ctx_, "loadgen/submit");
  // Client-side batch assembly (request formatting, socket writes).
  ctx_.ChargeWork(ctx_.cost().virtio_host_service);
  for (int i = 0; i < count; ++i) {
    TraceContext tc = MakeTraceContext(trace_seed_, ++trace_sequence_);
    outstanding_traces_.insert(tc.trace_id);
    last_request_trace_ = tc.trace_id;
    ctx_.obs().RecordFlowPoint(ctx_.clock().now(), TraceRecordKind::kFlowStart, tc.trace_id);
    sw_.Send(Packet{.src = port_, .dst = it->second.peer, .flow = flow,
                    .kind = PacketKind::kData, .bytes = bytes,
                    .deadline_ns = DeadlineFor(ctx_.clock().now()), .trace_id = tc.trace_id,
                    .span_id = tc.span_id});
    requests_sent_++;
  }
}

uint64_t LoadGenerator::PumpOpenLoop(int flow, ArrivalProcess& arrivals, SimNanos until,
                                     uint64_t bytes) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    return 0;
  }
  TraceScope obs_scope(ctx_, "loadgen/openloop");
  uint64_t sent = 0;
  std::vector<SimNanos> times;
  arrivals.DrainUntil(until, &times);
  for (SimNanos t : times) {
    (void)t;  // open loop: the schedule, not the response stream, paces us
    TraceContext tc = MakeTraceContext(trace_seed_, ++trace_sequence_);
    outstanding_traces_.insert(tc.trace_id);
    last_request_trace_ = tc.trace_id;
    ctx_.obs().RecordFlowPoint(ctx_.clock().now(), TraceRecordKind::kFlowStart, tc.trace_id);
    sw_.Send(Packet{.src = port_, .dst = it->second.peer, .flow = flow,
                    .kind = PacketKind::kData, .bytes = bytes,
                    .deadline_ns = DeadlineFor(ctx_.clock().now()), .trace_id = tc.trace_id,
                    .span_id = tc.span_id});
    requests_sent_++;
    sent++;
  }
  return sent;
}

uint64_t LoadGenerator::TakeResponses(int flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    return 0;
  }
  uint64_t n = it->second.responses;
  it->second.responses = 0;
  return n;
}

uint64_t LoadGenerator::response_bytes(int flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.response_bytes;
}

bool LoadGenerator::DeliverFrame(const Packet& p) {
  switch (p.kind) {
    case PacketKind::kSynAck: {
      auto it = connect_results_.find(p.flow);
      if (it != connect_results_.end()) {
        it->second = 0;
      }
      return true;
    }
    case PacketKind::kRst: {
      auto it = connect_results_.find(p.flow);
      if (it != connect_results_.end()) {
        it->second = p.service == kRstBacklogFull ? kEBUSY : kECONNREFUSED;
      }
      return true;
    }
    case PacketKind::kData: {
      auto it = flows_.find(p.flow);
      if (it == flows_.end()) {
        return true;
      }
      it->second.responses++;
      it->second.response_bytes += p.bytes;
      total_responses_++;
      // The response closes the request's causal chain iff it still
      // carries the identity this generator minted.
      if (p.trace_id != 0) {
        last_response_trace_ = p.trace_id;
        ctx_.obs().RecordFlowPoint(ctx_.clock().now(), TraceRecordKind::kFlowEnd, p.trace_id);
        if (outstanding_traces_.erase(p.trace_id) != 0) {
          matched_responses_++;
        }
      }
      return true;
    }
    case PacketKind::kSyn:
    case PacketKind::kFin:
    case PacketKind::kCount:
      break;
  }
  return true;  // the client's user-space buffers never push back
}

}  // namespace cki
