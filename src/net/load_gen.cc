#include "src/net/load_gen.h"

#include "src/guest/syscall.h"
#include "src/obs/trace_scope.h"

namespace cki {

LoadGenerator::LoadGenerator(SimContext& ctx, VSwitch& sw, std::string name, uint64_t trace_seed)
    : ctx_(ctx),
      sw_(sw),
      name_(std::move(name)),
      port_(sw_.AttachPort(*this, name_)),
      trace_seed_(trace_seed) {}

int64_t LoadGenerator::Connect(int dst_port, uint16_t service) {
  int flow = sw_.AllocFlow();
  connect_results_[flow] = kEAGAIN;
  sw_.Send(Packet{.src = port_, .dst = dst_port, .flow = flow, .service = service,
                  .kind = PacketKind::kSyn});
  int64_t result = connect_results_[flow];
  connect_results_.erase(flow);
  if (result == kEAGAIN) {
    result = kECONNREFUSED;
  }
  if (result < 0) {
    return result;
  }
  flows_[flow] = FlowState{.peer = dst_port};
  return flow;
}

void LoadGenerator::SendRequests(int flow, int count, uint64_t bytes) {
  auto it = flows_.find(flow);
  if (it == flows_.end() || count <= 0) {
    return;
  }
  TraceScope obs_scope(ctx_, "loadgen/submit");
  // Client-side batch assembly (request formatting, socket writes).
  ctx_.ChargeWork(ctx_.cost().virtio_host_service);
  for (int i = 0; i < count; ++i) {
    TraceContext tc = MakeTraceContext(trace_seed_, ++trace_sequence_);
    outstanding_traces_.insert(tc.trace_id);
    last_request_trace_ = tc.trace_id;
    ctx_.obs().RecordFlowPoint(ctx_.clock().now(), TraceRecordKind::kFlowStart, tc.trace_id);
    sw_.Send(Packet{.src = port_, .dst = it->second.peer, .flow = flow,
                    .kind = PacketKind::kData, .bytes = bytes, .trace_id = tc.trace_id,
                    .span_id = tc.span_id});
    requests_sent_++;
  }
}

uint64_t LoadGenerator::TakeResponses(int flow) {
  auto it = flows_.find(flow);
  if (it == flows_.end()) {
    return 0;
  }
  uint64_t n = it->second.responses;
  it->second.responses = 0;
  return n;
}

uint64_t LoadGenerator::response_bytes(int flow) const {
  auto it = flows_.find(flow);
  return it == flows_.end() ? 0 : it->second.response_bytes;
}

bool LoadGenerator::DeliverFrame(const Packet& p) {
  switch (p.kind) {
    case PacketKind::kSynAck: {
      auto it = connect_results_.find(p.flow);
      if (it != connect_results_.end()) {
        it->second = 0;
      }
      return true;
    }
    case PacketKind::kRst: {
      auto it = connect_results_.find(p.flow);
      if (it != connect_results_.end()) {
        it->second = kECONNREFUSED;
      }
      return true;
    }
    case PacketKind::kData: {
      auto it = flows_.find(p.flow);
      if (it == flows_.end()) {
        return true;
      }
      it->second.responses++;
      it->second.response_bytes += p.bytes;
      total_responses_++;
      // The response closes the request's causal chain iff it still
      // carries the identity this generator minted.
      if (p.trace_id != 0) {
        last_response_trace_ = p.trace_id;
        ctx_.obs().RecordFlowPoint(ctx_.clock().now(), TraceRecordKind::kFlowEnd, p.trace_id);
        if (outstanding_traces_.erase(p.trace_id) != 0) {
          matched_responses_++;
        }
      }
      return true;
    }
    case PacketKind::kSyn:
    case PacketKind::kFin:
    case PacketKind::kCount:
      break;
  }
  return true;  // the client's user-space buffers never push back
}

}  // namespace cki
