// Closed-loop load generator (the memtier/wrk side) attached to the vswitch
// as just another port. It speaks the same connection protocol as the NICs
// but runs outside any container: it pays host-side client work only, never
// an engine's kick/interrupt costs — so differences measured at the served
// containers are attributable to the container designs.
#ifndef SRC_NET_LOAD_GEN_H_
#define SRC_NET_LOAD_GEN_H_

#include <string>
#include <unordered_map>

#include "src/net/vswitch.h"

namespace cki {

class LoadGenerator : public NetDevice {
 public:
  LoadGenerator(SimContext& ctx, VSwitch& sw, std::string name);

  int port() const { return port_; }

  // Opens a connection to `service` on switch port `dst_port`. Returns the
  // flow id, or a negative errno (kECONNREFUSED) if refused.
  int64_t Connect(int dst_port, uint16_t service);

  // Injects `count` request frames of `bytes` each into `flow` as one
  // submission batch (one client-side service charge).
  void SendRequests(int flow, int count, uint64_t bytes);

  // Returns and resets the number of responses received on `flow` since the
  // last call.
  uint64_t TakeResponses(int flow);

  uint64_t total_responses() const { return total_responses_; }
  uint64_t response_bytes(int flow) const;
  uint64_t requests_sent() const { return requests_sent_; }

  // --- switch side (NetDevice) ---------------------------------------------
  bool DeliverFrame(const Packet& p) override;

 private:
  struct FlowState {
    int peer = -1;
    uint64_t responses = 0;       // since last TakeResponses
    uint64_t response_bytes = 0;  // lifetime byte accounting
  };

  SimContext& ctx_;
  VSwitch& sw_;
  std::string name_;
  int port_;

  std::unordered_map<int, FlowState> flows_;
  std::unordered_map<int, int64_t> connect_results_;
  uint64_t total_responses_ = 0;
  uint64_t requests_sent_ = 0;
};

}  // namespace cki

#endif  // SRC_NET_LOAD_GEN_H_
