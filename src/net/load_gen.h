// Closed-loop load generator (the memtier/wrk side) attached to the vswitch
// as just another port. It speaks the same connection protocol as the NICs
// but runs outside any container: it pays host-side client work only, never
// an engine's kick/interrupt costs — so differences measured at the served
// containers are attributable to the container designs.
//
// The generator is also the causal-trace boundary: it mints one
// TraceContext per request frame (pure function of `trace_seed` and a
// sequence counter — deterministic, never wall clock) and checks responses
// against the outstanding set, so "did request identity survive the whole
// chain" is a measurable property (matched_responses()).
#ifndef SRC_NET_LOAD_GEN_H_
#define SRC_NET_LOAD_GEN_H_

#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "src/net/vswitch.h"
#include "src/obs/trace_context.h"
#include "src/resil/resilience.h"
#include "src/sim/seed_split.h"

namespace cki {

// Deterministic open-loop arrival process: the traffic millions of
// simulated users would send, independent of how fast the service drains
// it. A non-homogeneous Poisson process over *simulated* time, realized by
// thinning: a homogeneous xorshift64*-driven stream at the peak rate,
// where each candidate survives with probability rate(t)/peak. The
// instantaneous rate is the base rate modulated by two repeating schedule
// tables — a slow `diurnal` cycle (the day/night curve) and a fast
// `burst` cycle (flash crowds) — both pure functions of simulated time.
//
// Determinism contract: the arrival sequence is a pure function of
// (config, seed); no wall clock, no service feedback, no global state.
// Two processes with seeds from SplitSeed(root, shard) are decorrelated
// but individually bit-reproducible at any thread count (DESIGN.md §9).
struct ArrivalConfig {
  double base_rate_per_sec = 50'000;  // mean arrival rate at multiplier 1.0
  // Rate multipliers cycled over their periods; empty tables mean 1.0.
  std::vector<double> diurnal;                  // day/night curve
  SimNanos diurnal_period_ns = 24'000'000;      // one simulated "day" (24 ms)
  std::vector<double> burst;                    // flash-crowd overlay
  SimNanos burst_period_ns = 3'000'000;
  uint64_t seed = 1;

  // The canonical fleet trace used by the orchestrator bench: a two-peak
  // diurnal curve with a 4x flash crowd riding on it.
  static ArrivalConfig DiurnalBurst(uint64_t seed, double base_rate_per_sec);
};

class ArrivalProcess {
 public:
  explicit ArrivalProcess(const ArrivalConfig& config);

  const ArrivalConfig& config() const { return config_; }

  // Instantaneous rate multiplier / absolute rate at `now`. Pure
  // functions of the config and `now` (table lookups, no RNG draws).
  double MultiplierAt(SimNanos now) const;
  double RateAt(SimNanos now) const { return config_.base_rate_per_sec * MultiplierAt(now); }
  double peak_rate_per_sec() const { return peak_rate_per_sec_; }

  // Time of the next arrival strictly after the previous one. Arrivals
  // are minted in nondecreasing time order, forever.
  SimNanos NextArrival();

  // Arrivals with t < `until`, appended to `out`; returns the count.
  // The first arrival at or past `until` is buffered, not lost.
  size_t DrainUntil(SimNanos until, std::vector<SimNanos>* out);

  uint64_t minted() const { return minted_; }

 private:
  ArrivalConfig config_;
  XorShift64Star rng_;
  double peak_rate_per_sec_ = 0;
  SimNanos clock_ns_ = 0;    // candidate-stream time
  SimNanos pending_ = 0;     // buffered arrival from DrainUntil
  bool has_pending_ = false;
  uint64_t minted_ = 0;
};

class LoadGenerator : public NetDevice {
 public:
  LoadGenerator(SimContext& ctx, VSwitch& sw, std::string name, uint64_t trace_seed = 0x6c67656e);

  int port() const { return port_; }

  // Opens a connection to `service` on switch port `dst_port`. Returns the
  // flow id, or a negative errno: kECONNREFUSED when nothing listens
  // (structural), kEBUSY when the listener's backlog is momentarily full
  // (transient — the retry layer may try again).
  int64_t Connect(int dst_port, uint16_t service);

  // Connect with the resilience layer armed: transient refusals
  // (IsRetryableErrno) are retried up to cfg.max_attempts with exponential
  // backoff charged to the simulated clock, each retry paid from `budget`.
  // Fatal refusals and an exhausted budget return the last errno.
  int64_t ConnectResil(int dst_port, uint16_t service, const ResilConfig& cfg,
                       RetryBudget& budget);

  // Deadline budget granted to every minted request frame: frames carry
  // deadline_ns = now + budget so downstream admission control (VirtNic)
  // can shed infeasible work. 0 (default) stamps no deadline.
  void set_deadline_budget_ns(SimNanos budget) { deadline_budget_ns_ = budget; }

  // Injects `count` request frames of `bytes` each into `flow` as one
  // submission batch (one client-side service charge). Every frame gets a
  // freshly minted TraceContext.
  void SendRequests(int flow, int count, uint64_t bytes);

  // Open-loop injection: mints and sends one request frame per arrival of
  // `arrivals` strictly before `until` (simulated ns). Unlike
  // SendRequests, the submission schedule comes from the arrival process
  // — not from responses — so traffic keeps coming whether or not the
  // service keeps up. Returns the number of requests injected.
  uint64_t PumpOpenLoop(int flow, ArrivalProcess& arrivals, SimNanos until, uint64_t bytes);

  // Returns and resets the number of responses received on `flow` since the
  // last call.
  uint64_t TakeResponses(int flow);

  uint64_t total_responses() const { return total_responses_; }
  uint64_t response_bytes(int flow) const;
  uint64_t requests_sent() const { return requests_sent_; }
  uint64_t connect_retries() const { return connect_retries_; }

  // --- causal-trace accounting ---------------------------------------------
  // Responses whose trace id matched an outstanding request of this
  // generator — equals requests served iff identity survived every hop.
  uint64_t matched_responses() const { return matched_responses_; }
  // Trace id of the most recently minted request / received response.
  uint64_t last_request_trace() const { return last_request_trace_; }
  uint64_t last_response_trace() const { return last_response_trace_; }

  // --- switch side (NetDevice) ---------------------------------------------
  bool DeliverFrame(const Packet& p) override;

 private:
  struct FlowState {
    int peer = -1;
    uint64_t responses = 0;       // since last TakeResponses
    uint64_t response_bytes = 0;  // lifetime byte accounting
  };

  uint64_t DeadlineFor(SimNanos now) const {
    return deadline_budget_ns_ > 0 ? static_cast<uint64_t>(now + deadline_budget_ns_) : 0;
  }

  SimContext& ctx_;
  VSwitch& sw_;
  std::string name_;
  int port_;
  uint64_t trace_seed_;
  SimNanos deadline_budget_ns_ = 0;
  uint64_t connect_retries_ = 0;

  std::unordered_map<int, FlowState> flows_;
  std::unordered_map<int, int64_t> connect_results_;
  std::unordered_set<uint64_t> outstanding_traces_;  // bounded by in-flight
  uint64_t total_responses_ = 0;
  uint64_t requests_sent_ = 0;
  uint64_t trace_sequence_ = 0;
  uint64_t matched_responses_ = 0;
  uint64_t last_request_trace_ = 0;
  uint64_t last_response_trace_ = 0;
};

}  // namespace cki

#endif  // SRC_NET_LOAD_GEN_H_
