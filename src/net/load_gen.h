// Closed-loop load generator (the memtier/wrk side) attached to the vswitch
// as just another port. It speaks the same connection protocol as the NICs
// but runs outside any container: it pays host-side client work only, never
// an engine's kick/interrupt costs — so differences measured at the served
// containers are attributable to the container designs.
//
// The generator is also the causal-trace boundary: it mints one
// TraceContext per request frame (pure function of `trace_seed` and a
// sequence counter — deterministic, never wall clock) and checks responses
// against the outstanding set, so "did request identity survive the whole
// chain" is a measurable property (matched_responses()).
#ifndef SRC_NET_LOAD_GEN_H_
#define SRC_NET_LOAD_GEN_H_

#include <string>
#include <unordered_map>
#include <unordered_set>

#include "src/net/vswitch.h"
#include "src/obs/trace_context.h"

namespace cki {

class LoadGenerator : public NetDevice {
 public:
  LoadGenerator(SimContext& ctx, VSwitch& sw, std::string name, uint64_t trace_seed = 0x6c67656e);

  int port() const { return port_; }

  // Opens a connection to `service` on switch port `dst_port`. Returns the
  // flow id, or a negative errno (kECONNREFUSED) if refused.
  int64_t Connect(int dst_port, uint16_t service);

  // Injects `count` request frames of `bytes` each into `flow` as one
  // submission batch (one client-side service charge). Every frame gets a
  // freshly minted TraceContext.
  void SendRequests(int flow, int count, uint64_t bytes);

  // Returns and resets the number of responses received on `flow` since the
  // last call.
  uint64_t TakeResponses(int flow);

  uint64_t total_responses() const { return total_responses_; }
  uint64_t response_bytes(int flow) const;
  uint64_t requests_sent() const { return requests_sent_; }

  // --- causal-trace accounting ---------------------------------------------
  // Responses whose trace id matched an outstanding request of this
  // generator — equals requests served iff identity survived every hop.
  uint64_t matched_responses() const { return matched_responses_; }
  // Trace id of the most recently minted request / received response.
  uint64_t last_request_trace() const { return last_request_trace_; }
  uint64_t last_response_trace() const { return last_response_trace_; }

  // --- switch side (NetDevice) ---------------------------------------------
  bool DeliverFrame(const Packet& p) override;

 private:
  struct FlowState {
    int peer = -1;
    uint64_t responses = 0;       // since last TakeResponses
    uint64_t response_bytes = 0;  // lifetime byte accounting
  };

  SimContext& ctx_;
  VSwitch& sw_;
  std::string name_;
  int port_;
  uint64_t trace_seed_;

  std::unordered_map<int, FlowState> flows_;
  std::unordered_map<int, int64_t> connect_results_;
  std::unordered_set<uint64_t> outstanding_traces_;  // bounded by in-flight
  uint64_t total_responses_ = 0;
  uint64_t requests_sent_ = 0;
  uint64_t trace_sequence_ = 0;
  uint64_t matched_responses_ = 0;
  uint64_t last_request_trace_ = 0;
  uint64_t last_response_trace_ = 0;
};

}  // namespace cki

#endif  // SRC_NET_LOAD_GEN_H_
