// Per-container virtio-net NIC attached to the host vswitch.
//
// The NIC is both sides of the seam: toward the guest kernel it is the
// NetPort behind sendto/recvfrom/listen/accept/connect, toward the switch it
// is a NetDevice port. Costs land where each container design pays them:
//   * TX doorbell kicks (engine.KickCost) — amortized over `tx_batch` frames
//   * RX interrupts (engine.DeviceInterruptCost) — NAPI-coalesced: a new
//     interrupt is raised only when none is pending; frames that arrive
//     while the guest is already polling are counted as coalesced
//   * interrupt acknowledge (engine.InterruptAckCost) when the RX ring
//     drains — the EOI/queue-unmask write that re-arms the device
//   * per-frame frontend service and the per-frame emulation extra of
//     designs that kept an MMIO-based frontend (engine.VirtioEmulationExtra).
//
// The connection layer is a minimal in-fabric TCP analogue: SYN names a
// service, the listener answers SYN-ACK (backlog permitting) or RST, and
// established flows are routed by a switch-global flow id.
#ifndef SRC_NET_VIRT_NIC_H_
#define SRC_NET_VIRT_NIC_H_

#include <deque>
#include <map>
#include <string>
#include <unordered_map>

#include "src/net/vswitch.h"
#include "src/obs/trace_context.h"
#include "src/runtime/engine.h"

namespace cki {

struct NicConfig {
  int tx_batch = 1;      // frames buffered per doorbell kick
  size_t rx_ring = 256;  // RX descriptors; full ring pushes back on the switch
  // Legacy virtio-adapter mode: every delivered batch raises its own
  // interrupt (CompleteBatch) instead of NAPI coalescing, and no
  // interrupt-acknowledge cost is charged.
  bool irq_per_batch = false;
  // Admission control (src/resil, DESIGN.md §13): estimated per-frame
  // guest service time used for the deadline-feasibility bound at RX. A
  // deadline-stamped data frame is shed (consumed and dropped, counted in
  // rx_sheds) when now + rx_buffered * est > deadline — serving it would
  // only waste capacity on an already-doomed request. 0 sheds only frames
  // whose deadline has already expired outright.
  SimNanos rx_est_service_ns = 0;
};

struct NicStats {
  uint64_t kicks = 0;
  uint64_t interrupts = 0;
  uint64_t coalesced_frames = 0;  // RX frames that rode an already-pending IRQ
  uint64_t irq_acks = 0;
  uint64_t tx_packets = 0;
  uint64_t rx_packets = 0;
  uint64_t tx_bytes = 0;
  uint64_t rx_bytes = 0;
  uint64_t rx_drops = 0;       // frames for unknown flows
  uint64_t rx_sheds = 0;       // frames shed: deadline infeasible at RX
  uint64_t overloads = 0;      // RX-ring overrun backpressure events
  uint64_t refused_conns = 0;  // SYNs answered with RST
  uint64_t accepted_conns = 0;
};

class VirtNic : public NetPort, public NetDevice {
 public:
  VirtNic(ContainerEngine& engine, VSwitch& sw, std::string name, NicConfig config = NicConfig{});
  ~VirtNic() override;

  int port() const { return port_; }
  const NicStats& stats() const { return stats_; }
  const std::string& name() const { return name_; }
  bool detached() const { return detached_; }

  // Unplugs the NIC from the switch and drops all in-flight state. Runs
  // automatically (via a FaultBus kill hook) when the owning container is
  // killed; idempotent.
  void Detach();

  // Arms deterministic virtio descriptor corruption (chaos testing).
  void set_injector(FaultInjector* injector) { injector_ = injector; }

  // --- guest side (NetPort) ----------------------------------------------
  uint64_t Transmit(int conn, uint64_t bytes) override;
  uint64_t Receive(int conn, uint64_t max_bytes) override;
  bool HasPending() const override;
  int64_t Listen(uint16_t service, int backlog) override;
  int64_t Accept(int64_t handle) override;
  int64_t Connect(int dst_port, uint16_t service) override;
  void CloseConn(int conn) override;

  // Rings the doorbell for any buffered TX frames (benchmark tails below
  // the batch threshold would otherwise never reach the wire).
  void Flush();
  // Re-evaluates buffered frames against the new threshold immediately, so
  // lowering the batch size cannot strand them.
  void set_tx_batch(int tx_batch);
  int tx_pending() const { return static_cast<int>(tx_ring_.size()); }

  // Opens an established flow without a handshake (legacy virtio-adapter
  // connections are implicit).
  void OpenRawFlow(int flow, int peer_port);

  // Legacy mode: raises one interrupt for a just-delivered batch.
  void CompleteBatch();

  // --- switch side (NetDevice) ---------------------------------------------
  bool DeliverFrame(const Packet& p) override;

  // Dumps counters as `net/nic/<name>/<counter>`.
  void ExportMetrics(MetricsRegistry& metrics) const;

  // --- snapshot (src/snap; DESIGN.md §10) ----------------------------------
  // Captures/applies NIC config + traffic counters. Live flows, listeners
  // and ring contents are NOT migrated — like a live migration dropping
  // established TCP state, a restored container re-listens/re-connects.
  void SnapCapture(SnapWriter& w) const;
  void SnapApply(SnapReader& r);

 private:
  // One guest-bound frame parked in the RX ring: its size plus the causal
  // identity it carries, so the guest adopts the request's trace when it
  // actually receives the frame (not when the switch delivered it).
  struct RxFrame {
    uint64_t bytes = 0;
    TraceContext trace;
  };

  struct FlowState {
    int peer = -1;                // switch port of the other end
    std::deque<RxFrame> rx;       // pending frames, guest-bound
    uint64_t rx_flow_bytes = 0;   // per-flow byte accounting
    uint64_t tx_flow_bytes = 0;
  };

  struct Listener {
    int backlog = 0;
    std::deque<int> pending;  // established flows awaiting Accept
  };

  void Kick();
  void RaiseIrq();
  void AckIrqIfDrained();

  ContainerEngine& engine_;
  VSwitch& sw_;
  SimContext& ctx_;
  std::string name_;
  NicConfig config_;
  int port_;
  FaultInjector* injector_ = nullptr;
  uint64_t kill_hook_token_ = 0;
  bool detached_ = false;

  std::deque<Packet> tx_ring_;  // frames buffered until the next kick
  size_t rx_buffered_ = 0;      // frames across all flow RX queues
  bool irq_pending_ = false;

  std::unordered_map<int, FlowState> flows_;
  std::map<uint16_t, Listener> listeners_;
  // Handshake results keyed by flow: set by SYN-ACK/RST delivery while
  // Connect()'s kick is still on the stack (delivery is synchronous).
  std::unordered_map<int, int64_t> connect_results_;

  NicStats stats_;
};

}  // namespace cki

#endif  // SRC_NET_VIRT_NIC_H_
