// End-to-end paravirtual timer flow: the guest kernel arms a timer via
// hypercall (wrmsr is blocked, Table 3), halts via the pause-vCPU hypercall
// (hlt replacement), the host expires the timer and injects a virtual
// interrupt — honoring the guest's in-memory interrupt flag.
#include <gtest/gtest.h>

#include "src/cki/cki_engine.h"
#include "src/host/host_kernel.h"
#include "src/hw/pks.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

class TimerIntegrationTest : public ::testing::Test {
 protected:
  TimerIntegrationTest()
      : bed_(RuntimeKind::kCki, Deployment::kBareMetal), host_(bed_.ctx(), /*n_vcpus=*/1) {}

  CkiEngine& engine() { return static_cast<CkiEngine&>(bed_.engine()); }

  // The guest issues a hypercall; the engine charges the gate, the host
  // layer provides the semantics.
  uint64_t GuestHypercall(HypercallOp op, uint64_t a0 = 0, uint64_t a1 = 0) {
    engine().GuestHypercall(op, a0, a1);  // transition cost + trace
    return host_.Dispatch(op, a0, a1, /*vcpu=*/0);
  }

  Testbed bed_;
  HostKernel host_;
};

TEST_F(TimerIntegrationTest, TimerTickWakesHaltedGuest) {
  SimNanos deadline = bed_.ctx().clock().now() + 50'000;
  GuestHypercall(HypercallOp::kSetTimer, deadline);
  GuestHypercall(HypercallOp::kPauseVcpu);
  ASSERT_TRUE(host_.vcpu_paused(0));

  // Host idles until the deadline.
  bed_.ctx().ChargeWork(60'000);
  std::vector<int> fired = host_.ExpireTimers();
  ASSERT_EQ(fired.size(), 1u);
  EXPECT_FALSE(host_.vcpu_paused(0));
  // Injection honors the virtual IF and reaches the guest.
  EXPECT_TRUE(engine().InjectVirq(kVecTimer));
  EXPECT_EQ(engine().delivered_virqs(), 1u);
}

TEST_F(TimerIntegrationTest, MaskedGuestGetsTickAfterUnmask) {
  SimNanos deadline = bed_.ctx().clock().now() + 10'000;
  GuestHypercall(HypercallOp::kSetTimer, deadline);
  engine().GuestSetVirtualIf(false);  // guest critical section
  bed_.ctx().ChargeWork(20'000);
  for (int vcpu : host_.ExpireTimers()) {
    engine().InjectVirq(vcpu == 0 ? kVecTimer : kVecTimer);
  }
  EXPECT_EQ(engine().delivered_virqs(), 0u);
  EXPECT_EQ(engine().pending_virqs(), 1u);
  engine().GuestSetVirtualIf(true);  // leaves the critical section
  EXPECT_EQ(engine().delivered_virqs(), 1u);
}

TEST_F(TimerIntegrationTest, HltInstructionItselfNeedsNoTrap) {
  // Table 3: hlt is NOT blocked — the pv guest replaces it with the pause
  // hypercall, but executing it is harmless.
  Cpu& cpu = bed_.machine().cpu();
  cpu.set_cpl(Cpl::kKernel);
  cpu.SetPkrsDirect(kPkrsGuest);
  EXPECT_TRUE(cpu.ExecPriv(PrivInstr::kHlt).ok());
}

TEST_F(TimerIntegrationTest, CrossVcpuIpiFlow) {
  HostKernel smp_host(bed_.ctx(), /*n_vcpus=*/2);
  // vCPU 1 halts; vCPU 0 sends it an IPI (wrmsr ICR is blocked; the guest
  // uses the hypercall, Table 3).
  smp_host.Dispatch(HypercallOp::kPauseVcpu, 0, 0, /*vcpu=*/1);
  engine().GuestHypercall(HypercallOp::kSendIpi, /*dest=*/1, 0);
  smp_host.Dispatch(HypercallOp::kSendIpi, 1, 0, /*vcpu=*/0);
  EXPECT_FALSE(smp_host.vcpu_paused(1));
  EXPECT_TRUE(smp_host.TakeIpi(1));
}

}  // namespace
}  // namespace cki
