// Tests for the future-work extensions (paper section 9) and the host vCPU
// scheduler: driver sandboxing via PKS domains, in-kernel PKS-domain apps,
// timer-driven preemption (end-to-end DoS freedom), and virtio-blk.
#include <gtest/gtest.h>

#include "src/cki/cki_engine.h"
#include "src/cki/driver_sandbox.h"
#include "src/cki/kernel_app.h"
#include "src/host/vcpu_sched.h"
#include "src/host/virtio_blk.h"
#include "src/runtime/runtime.h"

namespace cki {
namespace {

// --- driver sandbox ----------------------------------------------------------

class DriverSandboxTest : public ::testing::Test {
 protected:
  DriverSandboxTest()
      : machine_(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal)),
        sandbox_(machine_) {}

  Machine machine_;
  DriverSandbox sandbox_;
};

TEST_F(DriverSandboxTest, DriverRunsAndReturns) {
  int id = sandbox_.RegisterDriver("nic", [](uint64_t req) { return req * 2; });
  ASSERT_GE(id, 0);
  EXPECT_EQ(sandbox_.CallDriver(id, 21), 42u);
  EXPECT_EQ(sandbox_.calls(), 1u);
  // The gate returned the CPU to full kernel rights.
  EXPECT_EQ(machine_.cpu().pkrs(), kPkrsMonitor);
}

TEST_F(DriverSandboxTest, DriverCannotTouchKernelPrivateData) {
  int id = sandbox_.RegisterDriver("gpu", [](uint64_t) { return 0; });
  EXPECT_EQ(sandbox_.ProbeAccessFromDriver(id, sandbox_.kernel_private_va(), false),
            FaultType::kPageKeyViolation);
  EXPECT_EQ(sandbox_.ProbeAccessFromDriver(id, sandbox_.kernel_private_va(), true),
            FaultType::kPageKeyViolation);
  // Its own page is fine.
  EXPECT_EQ(sandbox_.ProbeAccessFromDriver(id, sandbox_.driver_page_va(id), true),
            FaultType::kNone);
}

TEST_F(DriverSandboxTest, DriversAreIsolatedFromEachOther) {
  int nic = sandbox_.RegisterDriver("nic", [](uint64_t) { return 0; });
  int gpu = sandbox_.RegisterDriver("gpu", [](uint64_t) { return 0; });
  EXPECT_EQ(sandbox_.ProbeAccessFromDriver(nic, sandbox_.driver_page_va(gpu), false),
            FaultType::kPageKeyViolation);
  EXPECT_EQ(sandbox_.ProbeAccessFromDriver(gpu, sandbox_.driver_page_va(nic), true),
            FaultType::kPageKeyViolation);
}

TEST_F(DriverSandboxTest, DriverPrivilegedInstructionsBlocked) {
  int id = sandbox_.RegisterDriver("rogue", [](uint64_t) { return 0; });
  // The same PKS-gating extension fires: PKRS != 0 inside the driver.
  EXPECT_EQ(sandbox_.ProbePrivInstrFromDriver(id, PrivInstr::kWrmsr),
            FaultType::kPrivInstrBlocked);
  EXPECT_EQ(sandbox_.ProbePrivInstrFromDriver(id, PrivInstr::kMovToCr3),
            FaultType::kPrivInstrBlocked);
  EXPECT_EQ(sandbox_.ProbePrivInstrFromDriver(id, PrivInstr::kCli),
            FaultType::kPrivInstrBlocked);
}

TEST_F(DriverSandboxTest, KeySpaceBoundsDriverCount) {
  int count = 0;
  while (sandbox_.RegisterDriver("d" + std::to_string(count), [](uint64_t) { return 0; }) >= 0) {
    count++;
    ASSERT_LT(count, 20);
  }
  EXPECT_EQ(count, 12) << "keys 4..15 -> 12 driver domains per address space";
}

TEST_F(DriverSandboxTest, GateIsAnOrderOfMagnitudeCheaperThanIpc) {
  EXPECT_LT(sandbox_.GateCost() * 10, sandbox_.MicrokernelIpcCost());
}

// --- in-kernel app -------------------------------------------------------------

TEST(InKernelAppTest, CallsWorkAndRestoreDomain) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  InKernelApp app(bed.machine(), bed.engine().kernel());
  SyscallResult r = app.Call(SyscallRequest{.no = Sys::kGetpid});
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(r.value, bed.engine().kernel().current_pid());
  EXPECT_EQ(bed.machine().cpu().pkrs(), app.app_pkrs());
  EXPECT_EQ(app.calls(), 1u);
}

TEST(InKernelAppTest, BeatsMitigatedSyscalls) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  InKernelApp app(bed.machine(), bed.engine().kernel());
  EXPECT_LT(app.InKernelCallCost(), app.ClassicMitigatedSyscallCost());
  // Against an unmitigated kernel the classic path is still competitive —
  // the mechanism targets mitigated/syscall-heavy deployments.
  EXPECT_NEAR(static_cast<double>(app.InKernelCallCost()),
              static_cast<double>(app.ClassicSyscallCost()), 20.0);
}

TEST(InKernelAppTest, AppDomainCannotTouchKsmMemory) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  auto& engine = static_cast<CkiEngine&>(bed.engine());
  InKernelApp app(bed.machine(), bed.engine().kernel());
  Cpu& cpu = bed.machine().cpu();
  cpu.set_cpl(Cpl::kKernel);
  cpu.SetPkrsDirect(app.app_pkrs());
  EXPECT_EQ(cpu.Access(engine.ksm().per_vcpu_area_va(), AccessIntent::Read()).type,
            FaultType::kPageKeyViolation);
  cpu.SetPkrsDirect(kPkrsMonitor);
}

// --- vCPU scheduler -------------------------------------------------------------

TEST(VcpuSchedulerTest, InterleavesTwoContainers) {
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  auto a = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, 8192);
  a->Boot();
  auto b = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, 8192);
  b->Boot();

  VcpuScheduler sched(machine.ctx(), /*timeslice=*/200'000);
  int a_work = 0;
  int b_work = 0;
  auto make_step = [&machine](CkiEngine* engine, int* counter) {
    return [&machine, engine, counter] {
      machine.cpu().SetPkrsDirect(kPkrsGuest);
      engine->LoadAddressSpace(engine->kernel().current().pt_root,
                               engine->kernel().current().asid);
      engine->UserSyscall(SyscallRequest{.no = Sys::kGetpid});
      machine.ctx().ChargeWork(50'000);
      return ++*counter < 20;
    };
  };
  sched.Add(VcpuTask{.engine = a.get(), .step = make_step(a.get(), &a_work), .label = "a"});
  sched.Add(VcpuTask{.engine = b.get(), .step = make_step(b.get(), &b_work), .label = "b"});
  sched.Run();
  EXPECT_EQ(a_work, 20);
  EXPECT_EQ(b_work, 20);
  EXPECT_GT(sched.tasks()[0].preemptions, 0u);
  EXPECT_GT(sched.FairnessRatio(), 0.8) << "equal work must get roughly equal CPU";
}

TEST(VcpuSchedulerTest, CpuHogCannotStarveVictim) {
  // The hog never finishes voluntarily; under CKI it also cannot mask the
  // timer (cli blocked, sysret IF-enforced), so the victim still runs.
  Machine machine(MachineConfigFor(RuntimeKind::kCki, Deployment::kBareMetal));
  auto hog = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, 8192);
  hog->Boot();
  auto victim = std::make_unique<CkiEngine>(machine, CkiAblation::kNone, 8192);
  victim->Boot();

  VcpuScheduler sched(machine.ctx(), /*timeslice=*/100'000);
  int victim_progress = 0;
  sched.Add(VcpuTask{.engine = hog.get(),
                     .step =
                         [&machine] {
                           // Attempt to disable interrupts, then spin.
                           machine.cpu().set_cpl(Cpl::kKernel);
                           machine.cpu().SetPkrsDirect(kPkrsGuest);
                           Fault f = machine.cpu().ExecPriv(PrivInstr::kCli);
                           EXPECT_EQ(f.type, FaultType::kPrivInstrBlocked);
                           machine.ctx().ChargeWork(60'000);
                           return true;  // never yields
                         },
                     .label = "hog"});
  sched.Add(VcpuTask{.engine = victim.get(),
                     .step =
                         [&machine, &victim_progress] {
                           machine.ctx().ChargeWork(40'000);
                           return ++victim_progress < 25;
                         },
                     .label = "victim"});
  sched.Run(/*max_slices=*/200);
  EXPECT_GE(victim_progress, 25) << "the victim must finish despite the hog";
  EXPECT_GT(sched.tasks()[0].preemptions, 10u) << "the hog keeps getting preempted";
}

// --- virtio-blk --------------------------------------------------------------------

TEST(VirtioBlkTest, BatchingAmortizesKicks) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  VirtioBlkDevice blk(bed.engine(), /*queue_depth=*/8);
  for (int i = 0; i < 32; ++i) {
    blk.SubmitWrite(static_cast<uint64_t>(i), 8);
  }
  blk.Poll();
  EXPECT_EQ(blk.stats().writes, 32u);
  EXPECT_LE(blk.stats().kicks, 5u);
}

TEST(VirtioBlkTest, FlushIsABarrier) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  VirtioBlkDevice blk(bed.engine(), 8);
  blk.SubmitWrite(0, 8);
  SimNanos before = bed.ctx().clock().now();
  blk.Flush();
  EXPECT_GE(bed.ctx().clock().now() - before, kBlkFlushLatency);
  EXPECT_EQ(blk.stats().flushes, 1u);
  EXPECT_GE(blk.stats().kicks, 2u);  // drain + barrier
}

TEST(VirtioBlkTest, SectorTagsRoundTrip) {
  Testbed bed(RuntimeKind::kCki, Deployment::kBareMetal);
  VirtioBlkDevice blk(bed.engine(), 4);
  blk.WriteSectorTag(77, 0xABCD);
  EXPECT_EQ(blk.ReadSectorTag(77), 0xABCDu);
  EXPECT_EQ(blk.ReadSectorTag(78), 0u);
}

TEST(VirtioBlkTest, NestedHvmPaysPerBarrier) {
  Testbed cki_bed(RuntimeKind::kCki, Deployment::kNested);
  Testbed hvm_bed(RuntimeKind::kHvm, Deployment::kNested);
  auto barrier_cost = [](Testbed& bed) {
    VirtioBlkDevice blk(bed.engine(), 8);
    SimNanos t0 = bed.ctx().clock().now();
    blk.SubmitWrite(0, 8);
    blk.Flush();
    return bed.ctx().clock().now() - t0;
  };
  EXPECT_GT(barrier_cost(hvm_bed), barrier_cost(cki_bed) + 20'000)
      << "each fsync costs HVM-NST multiple L0-mediated exits";
}

}  // namespace
}  // namespace cki
